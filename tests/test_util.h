#ifndef TANE_TESTS_TEST_UTIL_H_
#define TANE_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "core/fd.h"
#include "gtest/gtest.h"
#include "relation/relation.h"
#include "relation/relation_builder.h"
#include "util/status.h"

namespace tane {
namespace testing_util {

// Builds a relation from rows of string fields with generated column names
// col0..colN-1. Aborts the test on failure.
inline Relation MakeRelation(
    const std::vector<std::vector<std::string>>& rows, int num_columns) {
  StatusOr<Schema> schema = Schema::CreateUnnamed(num_columns);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  RelationBuilder builder(std::move(schema).value());
  for (const auto& row : rows) {
    Status status = builder.AddRow(row);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  StatusOr<Relation> relation = std::move(builder).Build();
  EXPECT_TRUE(relation.ok()) << relation.status().ToString();
  return std::move(relation).value();
}

// The example relation of the paper's Figure 1 (columns A, B, C, D).
inline Relation PaperFigure1Relation() {
  return MakeRelation(
      {
          {"1", "a", "$", "Flower"},
          {"1", "A", "L", "Tulip"},
          {"2", "A", "$", "Daffodil"},
          {"2", "A", "$", "Flower"},
          {"2", "b", "L", "Lily"},
          {"3", "b", "$", "Orchid"},
          {"3", "c", "L", "Flower"},
          {"3", "c", "#", "Rose"},
      },
      4);
}

// Renders FDs as "{0,1} -> 2" strings (raw indices) for diffable asserts.
inline std::vector<std::string> FdStrings(
    const std::vector<FunctionalDependency>& fds) {
  std::vector<std::string> out;
  out.reserve(fds.size());
  for (const FunctionalDependency& fd : fds) {
    out.push_back(fd.lhs.ToString() + " -> " + std::to_string(fd.rhs));
  }
  return out;
}

// True when `fds` contains lhs -> rhs.
inline bool ContainsFd(const std::vector<FunctionalDependency>& fds,
                       AttributeSet lhs, int rhs) {
  for (const FunctionalDependency& fd : fds) {
    if (fd.lhs == lhs && fd.rhs == rhs) return true;
  }
  return false;
}

}  // namespace testing_util
}  // namespace tane

#define TANE_ASSERT_OK(expr)                                 \
  do {                                                       \
    const ::tane::Status tane_test_status = (expr);          \
    ASSERT_TRUE(tane_test_status.ok()) << tane_test_status.ToString(); \
  } while (false)

#define TANE_ASSERT_OK_AND_ASSIGN(lhs, expr)        \
  auto TANE_STATUS_MACRO_CONCAT_(tane_test_sor_,    \
                                 __LINE__) = (expr);                    \
  ASSERT_TRUE(TANE_STATUS_MACRO_CONCAT_(tane_test_sor_, __LINE__).ok()) \
      << TANE_STATUS_MACRO_CONCAT_(tane_test_sor_, __LINE__)            \
             .status()                                                  \
             .ToString();                                               \
  lhs = std::move(TANE_STATUS_MACRO_CONCAT_(tane_test_sor_, __LINE__)).value()

#endif  // TANE_TESTS_TEST_UTIL_H_
