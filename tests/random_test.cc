#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace tane {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, ZeroSeedWorks) {
  Rng rng(0);
  // Must not be stuck at zero.
  uint64_t acc = 0;
  for (int i = 0; i < 16; ++i) acc |= rng.Next();
  EXPECT_NE(acc, 0u);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    EXPECT_NEAR(counts[bucket], kDraws / kBuckets, kDraws / kBuckets / 5);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ZipfSkewsTowardSmallCodes) {
  Rng rng(23);
  constexpr uint64_t kN = 20;
  int head = 0, total = 10000;
  for (int i = 0; i < total; ++i) {
    uint64_t v = rng.NextZipf(kN, 1.5);
    ASSERT_LT(v, kN);
    if (v < 2) ++head;
  }
  // Zipf(1.5): the first two codes carry well over a third of the mass.
  EXPECT_GT(head, total / 3);
}

TEST(RngTest, ZipfZeroSkewIsUniform) {
  Rng rng(29);
  int counts[5] = {0};
  for (int i = 0; i < 25000; ++i) ++counts[rng.NextZipf(5, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 800);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[i] = i;
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, values);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(SplitMix64Test, KnownFixedPointFree) {
  // Distinct inputs give distinct outputs in a small probe.
  EXPECT_NE(SplitMix64(0), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
}

}  // namespace
}  // namespace tane
