#include "relation/stats.h"

#include <cmath>

#include "gtest/gtest.h"
#include "relation/transforms.h"
#include "tests/test_util.h"

namespace tane {
namespace {

using testing_util::MakeRelation;

TEST(ComputeStatsTest, BasicCountsAndFlags) {
  Relation relation = MakeRelation(
      {{"k", "1", "x"}, {"k", "2", "x"}, {"k", "3", "y"}}, 3);
  RelationStats stats = ComputeStats(relation);
  EXPECT_EQ(stats.rows, 3);
  ASSERT_EQ(stats.columns.size(), 3u);

  const ColumnStats& constant = stats.columns[0];
  EXPECT_TRUE(constant.is_constant);
  EXPECT_FALSE(constant.is_unique);
  EXPECT_EQ(constant.distinct, 1);
  EXPECT_EQ(constant.top_value, "k");
  EXPECT_EQ(constant.top_count, 3);
  EXPECT_DOUBLE_EQ(constant.entropy_bits, 0.0);

  const ColumnStats& unique = stats.columns[1];
  EXPECT_TRUE(unique.is_unique);
  EXPECT_FALSE(unique.is_constant);
  EXPECT_EQ(unique.distinct, 3);
  EXPECT_NEAR(unique.entropy_bits, std::log2(3.0), 1e-12);

  const ColumnStats& mixed = stats.columns[2];
  EXPECT_FALSE(mixed.is_unique);
  EXPECT_FALSE(mixed.is_constant);
  EXPECT_EQ(mixed.distinct, 2);
  EXPECT_EQ(mixed.top_value, "x");
  EXPECT_EQ(mixed.top_count, 2);
  // H(2/3, 1/3).
  EXPECT_NEAR(mixed.entropy_bits,
              -(2.0 / 3) * std::log2(2.0 / 3) -
                  (1.0 / 3) * std::log2(1.0 / 3),
              1e-12);
}

TEST(ComputeStatsTest, HelperIndexLists) {
  Relation relation = MakeRelation(
      {{"k", "1", "x"}, {"k", "2", "x"}, {"k", "3", "y"}}, 3);
  RelationStats stats = ComputeStats(relation);
  EXPECT_EQ(stats.constant_columns(), std::vector<int>{0});
  EXPECT_EQ(stats.unique_columns(), std::vector<int>{1});
}

TEST(ComputeStatsTest, EmptyRelation) {
  Relation relation = MakeRelation({}, 2);
  RelationStats stats = ComputeStats(relation);
  EXPECT_EQ(stats.rows, 0);
  for (const ColumnStats& column : stats.columns) {
    EXPECT_EQ(column.distinct, 0);
    EXPECT_FALSE(column.is_constant);
    EXPECT_FALSE(column.is_unique);
  }
}

TEST(ComputeStatsTest, StaleDictionaryEntriesIgnored) {
  // distinct counts occurrences, not dictionary size.
  Relation base = MakeRelation({{"a"}, {"b"}, {"a"}, {"c"}}, 1);
  StatusOr<Relation> head = HeadRows(base, 3);  // "c" unused but in dict
  ASSERT_TRUE(head.ok());
  RelationStats stats = ComputeStats(*head);
  EXPECT_EQ(stats.columns[0].distinct, 2);
}

TEST(FormatStatsTest, RendersTable) {
  Relation relation = MakeRelation({{"k", "1"}, {"k", "2"}}, 2);
  const std::string table = FormatStats(ComputeStats(relation));
  EXPECT_NE(table.find("col0"), std::string::npos);
  EXPECT_NE(table.find("constant"), std::string::npos);
  EXPECT_NE(table.find("unique"), std::string::npos);
}

}  // namespace
}  // namespace tane
