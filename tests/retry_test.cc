#include "util/retry.h"

#include <chrono>
#include <vector>

#include "gtest/gtest.h"

namespace tane {
namespace {

// Policy whose sleeps are recorded instead of slept.
RetryPolicy CountingPolicy(std::vector<std::chrono::milliseconds>* sleeps) {
  RetryPolicy policy;
  policy.sleep = [sleeps](std::chrono::milliseconds d) {
    sleeps->push_back(d);
  };
  return policy;
}

TEST(RetryTest, SucceedsFirstTryWithoutSleeping) {
  std::vector<std::chrono::milliseconds> sleeps;
  int calls = 0;
  const Status status = RetryWithBackoff(CountingPolicy(&sleeps), [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryTest, RetriesTransientErrorUntilSuccess) {
  std::vector<std::chrono::milliseconds> sleeps;
  int calls = 0;
  const Status status = RetryWithBackoff(CountingPolicy(&sleeps), [&] {
    return ++calls < 3 ? Status::IoError("flaky") : Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeps.size(), 2u);
}

TEST(RetryTest, BackoffGrowsExponentiallyAndIsCapped) {
  std::vector<std::chrono::milliseconds> sleeps;
  RetryPolicy policy = CountingPolicy(&sleeps);
  policy.max_attempts = 6;
  policy.initial_backoff = std::chrono::milliseconds(1);
  policy.max_backoff = std::chrono::milliseconds(4);
  const Status status = RetryWithBackoff(
      policy, [] { return Status::IoError("always"); });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  ASSERT_EQ(sleeps.size(), 5u);  // attempts - 1
  EXPECT_EQ(sleeps[0], std::chrono::milliseconds(1));
  EXPECT_EQ(sleeps[1], std::chrono::milliseconds(2));
  EXPECT_EQ(sleeps[2], std::chrono::milliseconds(4));
  EXPECT_EQ(sleeps[3], std::chrono::milliseconds(4));  // capped
  EXPECT_EQ(sleeps[4], std::chrono::milliseconds(4));
}

TEST(RetryTest, ManyAttemptsNeverOverflowTheBackoff) {
  // Regression: the backoff used to grow past the cap internally (sleep
  // clamped, stored value not), so enough attempts pushed the doubling
  // through int64 range — undefined behaviour on the double→int64 cast and,
  // in practice, negative sleeps. The stored value now saturates at the cap.
  std::vector<std::chrono::milliseconds> sleeps;
  RetryPolicy policy = CountingPolicy(&sleeps);
  policy.max_attempts = 80;  // 2^80 ms would overflow a raw doubling
  policy.initial_backoff = std::chrono::milliseconds(1);
  policy.max_backoff = std::chrono::milliseconds(8);
  const Status status =
      RetryWithBackoff(policy, [] { return Status::IoError("always"); });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  ASSERT_EQ(sleeps.size(), 79u);
  for (const auto& sleep : sleeps) {
    EXPECT_GT(sleep.count(), 0);
    EXPECT_LE(sleep.count(), 8);
  }
  EXPECT_EQ(sleeps.back(), std::chrono::milliseconds(8));
}

TEST(RetryTest, JitterStaysWithinTheConfiguredBand) {
  std::vector<std::chrono::milliseconds> sleeps;
  RetryPolicy policy = CountingPolicy(&sleeps);
  policy.max_attempts = 30;
  policy.initial_backoff = std::chrono::milliseconds(100);
  policy.max_backoff = std::chrono::milliseconds(100);
  policy.jitter = 0.5;  // sleeps uniform in (50, 100]
  policy.jitter_seed = 7;
  const Status status =
      RetryWithBackoff(policy, [] { return Status::IoError("always"); });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  ASSERT_EQ(sleeps.size(), 29u);
  bool saw_variation = false;
  for (const auto& sleep : sleeps) {
    EXPECT_GE(sleep.count(), 50);
    EXPECT_LE(sleep.count(), 100);
    if (sleep != sleeps.front()) saw_variation = true;
  }
  EXPECT_TRUE(saw_variation);  // jitter actually perturbs the sequence
}

TEST(RetryTest, JitterIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    std::vector<std::chrono::milliseconds> sleeps;
    RetryPolicy policy = CountingPolicy(&sleeps);
    policy.max_attempts = 10;
    policy.initial_backoff = std::chrono::milliseconds(64);
    policy.max_backoff = std::chrono::milliseconds(1024);
    policy.jitter = 1.0;  // full jitter: (0, backoff]
    policy.jitter_seed = seed;
    (void)RetryWithBackoff(policy, [] { return Status::IoError("always"); });
    return sleeps;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
  for (const auto& sleep : run(42)) EXPECT_GT(sleep.count(), 0);
}

TEST(RetryTest, ZeroJitterKeepsExactBackoffSequence) {
  // jitter's default must not disturb callers that rely on exact sleeps.
  std::vector<std::chrono::milliseconds> sleeps;
  RetryPolicy policy = CountingPolicy(&sleeps);
  policy.max_attempts = 4;
  policy.initial_backoff = std::chrono::milliseconds(3);
  policy.max_backoff = std::chrono::milliseconds(100);
  (void)RetryWithBackoff(policy, [] { return Status::IoError("always"); });
  ASSERT_EQ(sleeps.size(), 3u);
  EXPECT_EQ(sleeps[0], std::chrono::milliseconds(3));
  EXPECT_EQ(sleeps[1], std::chrono::milliseconds(6));
  EXPECT_EQ(sleeps[2], std::chrono::milliseconds(12));
}

TEST(RetryTest, ExhaustsAttemptsAndReturnsLastError) {
  std::vector<std::chrono::milliseconds> sleeps;
  int calls = 0;
  const Status status = RetryWithBackoff(CountingPolicy(&sleeps), [&] {
    ++calls;
    return Status::IoError("persistent #" + std::to_string(calls));
  });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 4);  // default max_attempts
  EXPECT_NE(status.message().find("#4"), std::string::npos);
}

TEST(RetryTest, NonRetriableErrorSurfacesImmediately) {
  std::vector<std::chrono::milliseconds> sleeps;
  int calls = 0;
  const Status status = RetryWithBackoff(CountingPolicy(&sleeps), [&] {
    ++calls;
    return Status::InvalidArgument("deterministic");
  });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryTest, CustomRetriablePredicate) {
  std::vector<std::chrono::milliseconds> sleeps;
  RetryPolicy policy = CountingPolicy(&sleeps);
  policy.retriable = [](const Status& status) {
    return status.code() == StatusCode::kResourceExhausted;
  };
  int calls = 0;
  const Status status = RetryWithBackoff(policy, [&] {
    ++calls;
    return Status::ResourceExhausted("busy");
  });
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(calls, 4);
}

TEST(RetryTest, DefaultPredicateRetriesOnlyIoErrors) {
  EXPECT_TRUE(IsTransientIoError(Status::IoError("x")));
  EXPECT_FALSE(IsTransientIoError(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsTransientIoError(Status::OK()));
}

}  // namespace
}  // namespace tane
