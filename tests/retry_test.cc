#include "util/retry.h"

#include <chrono>
#include <vector>

#include "gtest/gtest.h"

namespace tane {
namespace {

// Policy whose sleeps are recorded instead of slept.
RetryPolicy CountingPolicy(std::vector<std::chrono::milliseconds>* sleeps) {
  RetryPolicy policy;
  policy.sleep = [sleeps](std::chrono::milliseconds d) {
    sleeps->push_back(d);
  };
  return policy;
}

TEST(RetryTest, SucceedsFirstTryWithoutSleeping) {
  std::vector<std::chrono::milliseconds> sleeps;
  int calls = 0;
  const Status status = RetryWithBackoff(CountingPolicy(&sleeps), [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryTest, RetriesTransientErrorUntilSuccess) {
  std::vector<std::chrono::milliseconds> sleeps;
  int calls = 0;
  const Status status = RetryWithBackoff(CountingPolicy(&sleeps), [&] {
    return ++calls < 3 ? Status::IoError("flaky") : Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeps.size(), 2u);
}

TEST(RetryTest, BackoffGrowsExponentiallyAndIsCapped) {
  std::vector<std::chrono::milliseconds> sleeps;
  RetryPolicy policy = CountingPolicy(&sleeps);
  policy.max_attempts = 6;
  policy.initial_backoff = std::chrono::milliseconds(1);
  policy.max_backoff = std::chrono::milliseconds(4);
  const Status status = RetryWithBackoff(
      policy, [] { return Status::IoError("always"); });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  ASSERT_EQ(sleeps.size(), 5u);  // attempts - 1
  EXPECT_EQ(sleeps[0], std::chrono::milliseconds(1));
  EXPECT_EQ(sleeps[1], std::chrono::milliseconds(2));
  EXPECT_EQ(sleeps[2], std::chrono::milliseconds(4));
  EXPECT_EQ(sleeps[3], std::chrono::milliseconds(4));  // capped
  EXPECT_EQ(sleeps[4], std::chrono::milliseconds(4));
}

TEST(RetryTest, ExhaustsAttemptsAndReturnsLastError) {
  std::vector<std::chrono::milliseconds> sleeps;
  int calls = 0;
  const Status status = RetryWithBackoff(CountingPolicy(&sleeps), [&] {
    ++calls;
    return Status::IoError("persistent #" + std::to_string(calls));
  });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 4);  // default max_attempts
  EXPECT_NE(status.message().find("#4"), std::string::npos);
}

TEST(RetryTest, NonRetriableErrorSurfacesImmediately) {
  std::vector<std::chrono::milliseconds> sleeps;
  int calls = 0;
  const Status status = RetryWithBackoff(CountingPolicy(&sleeps), [&] {
    ++calls;
    return Status::InvalidArgument("deterministic");
  });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryTest, CustomRetriablePredicate) {
  std::vector<std::chrono::milliseconds> sleeps;
  RetryPolicy policy = CountingPolicy(&sleeps);
  policy.retriable = [](const Status& status) {
    return status.code() == StatusCode::kResourceExhausted;
  };
  int calls = 0;
  const Status status = RetryWithBackoff(policy, [&] {
    ++calls;
    return Status::ResourceExhausted("busy");
  });
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(calls, 4);
}

TEST(RetryTest, DefaultPredicateRetriesOnlyIoErrors) {
  EXPECT_TRUE(IsTransientIoError(Status::IoError("x")));
  EXPECT_FALSE(IsTransientIoError(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsTransientIoError(Status::OK()));
}

}  // namespace
}  // namespace tane
