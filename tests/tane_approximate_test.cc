#include <algorithm>

#include "core/tane.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace tane {
namespace {

using testing_util::ContainsFd;
using testing_util::FdStrings;
using testing_util::MakeRelation;
using testing_util::PaperFigure1Relation;

StatusOr<DiscoveryResult> DiscoverApprox(const Relation& relation,
                                         double epsilon) {
  TaneConfig config;
  config.epsilon = epsilon;
  return Tane::Discover(relation, config);
}

TEST(TaneApproximateTest, EpsilonZeroMatchesExactMode) {
  StatusOr<DiscoveryResult> exact = Tane::Discover(PaperFigure1Relation());
  StatusOr<DiscoveryResult> approx =
      DiscoverApprox(PaperFigure1Relation(), 0.0);
  ASSERT_TRUE(exact.ok() && approx.ok());
  EXPECT_EQ(FdStrings(exact->fds), FdStrings(approx->fds));
}

TEST(TaneApproximateTest, SingleExceptionRow) {
  // col0 -> col1 has one exceptional row out of four: g3 = 0.25.
  Relation relation = MakeRelation(
      {{"x", "1"}, {"x", "1"}, {"x", "1"}, {"x", "2"}}, 2);
  StatusOr<DiscoveryResult> strict = DiscoverApprox(relation, 0.2);
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(ContainsFd(strict->fds, AttributeSet(), 1));
  EXPECT_FALSE(ContainsFd(strict->fds, AttributeSet::Of({0}), 1));

  StatusOr<DiscoveryResult> loose = DiscoverApprox(relation, 0.25);
  ASSERT_TRUE(loose.ok());
  // col0 is constant, so the minimal approximate dependency is {} -> col1.
  EXPECT_TRUE(ContainsFd(loose->fds, AttributeSet(), 1));
  for (const FunctionalDependency& fd : loose->fds) {
    EXPECT_LE(fd.error, 0.25 + 1e-12);
  }
}

TEST(TaneApproximateTest, ErrorsAreExactG3Values) {
  // From the error_test ground truth: g3({A} -> B) = 3/8 in Figure 1.
  StatusOr<DiscoveryResult> result =
      DiscoverApprox(PaperFigure1Relation(), 0.375);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const FunctionalDependency& fd : result->fds) {
    if (fd.lhs == AttributeSet::Of({0}) && fd.rhs == 1) {
      found = true;
      EXPECT_DOUBLE_EQ(fd.error, 3.0 / 8.0);
    }
  }
  EXPECT_TRUE(found) << ::testing::PrintToString(FdStrings(result->fds));
}

TEST(TaneApproximateTest, MinimalityHolds) {
  // No output dependency's lhs may contain another output lhs with the
  // same rhs.
  StatusOr<DiscoveryResult> result =
      DiscoverApprox(PaperFigure1Relation(), 0.25);
  ASSERT_TRUE(result.ok());
  for (const FunctionalDependency& a : result->fds) {
    for (const FunctionalDependency& b : result->fds) {
      if (a.rhs != b.rhs || a.lhs == b.lhs) continue;
      EXPECT_FALSE(a.lhs.IsProperSubsetOf(b.lhs))
          << a.lhs.ToString() << " subsumes " << b.lhs.ToString()
          << " for rhs " << a.rhs;
    }
  }
}

TEST(TaneApproximateTest, EpsilonOneMakesEverySingletonConstantLike) {
  // At ε = 1 every dependency is approximately valid, so the minimal ones
  // are exactly {} -> A for every attribute.
  StatusOr<DiscoveryResult> result =
      DiscoverApprox(PaperFigure1Relation(), 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_fds(), 4);
  for (int a = 0; a < 4; ++a) {
    EXPECT_TRUE(ContainsFd(result->fds, AttributeSet(), a));
  }
}

TEST(TaneApproximateTest, GrowingEpsilonNeverInvalidatesCoveredFds) {
  // Every dependency valid at ε1 is still (approximately) implied at
  // ε2 > ε1: its lhs contains some minimal lhs of the ε2 result.
  StatusOr<DiscoveryResult> tight =
      DiscoverApprox(PaperFigure1Relation(), 0.05);
  StatusOr<DiscoveryResult> loose =
      DiscoverApprox(PaperFigure1Relation(), 0.30);
  ASSERT_TRUE(tight.ok() && loose.ok());
  for (const FunctionalDependency& fd : tight->fds) {
    bool covered = false;
    for (const FunctionalDependency& wide : loose->fds) {
      if (wide.rhs == fd.rhs && fd.lhs.ContainsAll(wide.lhs)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << fd.lhs.ToString() << " -> " << fd.rhs;
  }
}

TEST(TaneApproximateTest, BoundsOnOffAgree) {
  for (double epsilon : {0.01, 0.1, 0.25, 0.5}) {
    TaneConfig with_bounds;
    with_bounds.epsilon = epsilon;
    with_bounds.use_g3_bounds = true;
    TaneConfig without_bounds;
    without_bounds.epsilon = epsilon;
    without_bounds.use_g3_bounds = false;
    StatusOr<DiscoveryResult> a =
        Tane::Discover(PaperFigure1Relation(), with_bounds);
    StatusOr<DiscoveryResult> b =
        Tane::Discover(PaperFigure1Relation(), without_bounds);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(FdStrings(a->fds), FdStrings(b->fds)) << "eps=" << epsilon;
  }
}

TEST(TaneApproximateTest, InexactErrorModeStillFindsSameFds) {
  TaneConfig config;
  config.epsilon = 0.25;
  config.compute_exact_errors = false;
  StatusOr<DiscoveryResult> fast =
      Tane::Discover(PaperFigure1Relation(), config);
  StatusOr<DiscoveryResult> exact =
      DiscoverApprox(PaperFigure1Relation(), 0.25);
  ASSERT_TRUE(fast.ok() && exact.ok());
  EXPECT_EQ(FdStrings(fast->fds), FdStrings(exact->fds));
  // Reported errors are upper bounds, still within the threshold.
  for (const FunctionalDependency& fd : fast->fds) {
    EXPECT_LE(fd.error, 0.25 + 1e-12);
  }
}

TEST(TaneApproximateTest, BoundsSkipScansOnCleanData) {
  // On a relation with an exactly-valid dependency chain, the e-based upper
  // bound proves many validities without a scan.
  Relation relation = MakeRelation(
      {{"a", "1", "x"}, {"a", "1", "x"}, {"b", "2", "y"}, {"c", "2", "y"}},
      3);
  TaneConfig config;
  config.epsilon = 0.3;
  config.compute_exact_errors = false;
  StatusOr<DiscoveryResult> result = Tane::Discover(relation, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.g3_scans_skipped, 0);
}

TEST(TaneApproximateTest, G2MeasureMatchesHandComputation) {
  // g2({A} -> B) = 1.0 in Figure 1 (every row is in a violating pair), so
  // {A} -> B only qualifies at ε = 1 under g2 — unlike g3 where 0.375
  // suffices.
  TaneConfig config;
  config.epsilon = 0.5;
  config.measure = ErrorMeasure::kG2;
  StatusOr<DiscoveryResult> result =
      Tane::Discover(PaperFigure1Relation(), config);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(ContainsFd(result->fds, AttributeSet::Of({0}), 1));
  for (const FunctionalDependency& fd : result->fds) {
    EXPECT_LE(fd.error, 0.5 + 1e-12);
  }
}

TEST(TaneApproximateTest, G1MeasureAdmitsMoreThanG2) {
  // g1 normalizes by |r|², so the same violations weigh much less:
  // g1({A} -> B) = 10/64 ≈ 0.156 in Figure 1.
  TaneConfig config;
  config.epsilon = 0.16;
  config.measure = ErrorMeasure::kG1;
  StatusOr<DiscoveryResult> result =
      Tane::Discover(PaperFigure1Relation(), config);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const FunctionalDependency& fd : result->fds) {
    if (fd.lhs == AttributeSet::Of({0}) && fd.rhs == 1) {
      found = true;
      EXPECT_NEAR(fd.error, 10.0 / 64.0, 1e-12);
    }
  }
  EXPECT_TRUE(found) << ::testing::PrintToString(FdStrings(result->fds));
}

TEST(TaneApproximateTest, AllMeasuresAgreeAtEpsilonZero) {
  for (ErrorMeasure measure :
       {ErrorMeasure::kG3, ErrorMeasure::kG2, ErrorMeasure::kG1}) {
    TaneConfig config;
    config.epsilon = 0.0;
    config.measure = measure;
    StatusOr<DiscoveryResult> result =
        Tane::Discover(PaperFigure1Relation(), config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->num_fds(), 6);
  }
}

// Validity is the exact integer comparison removals <= ⌊ε·|r|⌋. The two
// tests below pin both sides of that boundary; the old float comparison
// with an absolute 1e-9 slack could flip either one.
TEST(TaneApproximateTest, ValidAtExactlyFloorEpsilonNRemovals) {
  // col0 constant; col1 = 7×"a" plus 3 distinct values over 10 rows, so
  // g3 removals of {} -> col1 is exactly 3. With ε = 0.35, ⌊ε·10⌋ = 3 and
  // the dependency must be valid with error 3/10.
  Relation relation = MakeRelation(
      {{"k", "a"}, {"k", "a"}, {"k", "a"}, {"k", "a"}, {"k", "a"},
       {"k", "a"}, {"k", "a"}, {"k", "b"}, {"k", "c"}, {"k", "d"}},
      2);
  StatusOr<DiscoveryResult> result = DiscoverApprox(relation, 0.35);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(ContainsFd(result->fds, AttributeSet(), 1));
  for (const FunctionalDependency& fd : result->fds) {
    if (fd.lhs.empty() && fd.rhs == 1) {
      EXPECT_DOUBLE_EQ(fd.error, 0.3);
    }
  }
}

TEST(TaneApproximateTest, InvalidAtFloorEpsilonNPlusOneRemovals) {
  // col1 = 6×"a" plus 4 distinct values: removals = 4 = ⌊0.35·10⌋ + 1, so
  // {} -> col1 must NOT hold at ε = 0.35 (and must hold at ε = 0.4, where
  // the threshold reaches 4).
  Relation relation = MakeRelation(
      {{"k", "a"}, {"k", "a"}, {"k", "a"}, {"k", "a"}, {"k", "a"},
       {"k", "a"}, {"k", "b"}, {"k", "c"}, {"k", "d"}, {"k", "e"}},
      2);
  StatusOr<DiscoveryResult> strict = DiscoverApprox(relation, 0.35);
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(ContainsFd(strict->fds, AttributeSet(), 1));

  StatusOr<DiscoveryResult> loose = DiscoverApprox(relation, 0.4);
  ASSERT_TRUE(loose.ok());
  EXPECT_TRUE(ContainsFd(loose->fds, AttributeSet(), 1));
}

TEST(TaneApproximateTest, BoundaryExactUnderAllMeasures) {
  // g2's numerator is the violating-row count: the 4 rows of the split
  // class {a:3, b:1} violate, so {} -> col1 holds iff ⌊ε·4⌋ >= 4, i.e.
  // only at ε = 1. g3 removals = 1, so g3 accepts from ε = 0.25.
  Relation relation =
      MakeRelation({{"k", "a"}, {"k", "a"}, {"k", "a"}, {"k", "b"}}, 2);
  TaneConfig g2;
  g2.epsilon = 0.25;
  g2.measure = ErrorMeasure::kG2;
  StatusOr<DiscoveryResult> g2_result = Tane::Discover(relation, g2);
  ASSERT_TRUE(g2_result.ok());
  EXPECT_FALSE(ContainsFd(g2_result->fds, AttributeSet(), 1));

  StatusOr<DiscoveryResult> g3_result = DiscoverApprox(relation, 0.25);
  ASSERT_TRUE(g3_result.ok());
  EXPECT_TRUE(ContainsFd(g3_result->fds, AttributeSet(), 1));
}

TEST(TaneApproximateTest, ApproximateKeysStillExactKeys) {
  // Keys reported in approximate mode are exact keys regardless of ε.
  StatusOr<DiscoveryResult> result =
      DiscoverApprox(PaperFigure1Relation(), 0.25);
  ASSERT_TRUE(result.ok());
  for (AttributeSet key : result->keys) {
    EXPECT_TRUE(key == AttributeSet::Of({0, 3}) ||
                key == AttributeSet::Of({1, 3}))
        << key.ToString();
  }
}

}  // namespace
}  // namespace tane
