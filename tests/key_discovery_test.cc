#include "analysis/key_discovery.h"

#include "baselines/brute_force.h"
#include "core/tane.h"
#include "datasets/generators.h"
#include "gtest/gtest.h"
#include "partition/partition_builder.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace tane {
namespace {

using testing_util::MakeRelation;
using testing_util::PaperFigure1Relation;

TEST(KeyDiscoveryTest, PaperFigure1ExactKeys) {
  StatusOr<std::vector<DiscoveredKey>> keys =
      DiscoverKeys(PaperFigure1Relation());
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), 2u);
  EXPECT_EQ((*keys)[0].attributes, AttributeSet::Of({0, 3}));
  EXPECT_EQ((*keys)[1].attributes, AttributeSet::Of({1, 3}));
  EXPECT_DOUBLE_EQ((*keys)[0].error, 0.0);
}

TEST(KeyDiscoveryTest, MatchesTaneByProduct) {
  // Exact mode must agree with the keys TANE's key pruning collects.
  for (int seed = 0; seed < 6; ++seed) {
    StatusOr<Relation> relation = GenerateUniform(60, 5, 3, seed);
    ASSERT_TRUE(relation.ok());
    StatusOr<std::vector<DiscoveredKey>> keys = DiscoverKeys(*relation);
    ASSERT_TRUE(keys.ok());
    StatusOr<DiscoveryResult> tane_result = Tane::Discover(*relation);
    ASSERT_TRUE(tane_result.ok());
    std::vector<AttributeSet> key_sets;
    for (const DiscoveredKey& key : *keys) key_sets.push_back(key.attributes);
    EXPECT_EQ(key_sets, tane_result->keys) << "seed=" << seed;
  }
}

TEST(KeyDiscoveryTest, UniqueColumnIsTheOnlyKey) {
  Relation relation = MakeRelation({{"1", "x"}, {"2", "x"}, {"3", "y"}}, 2);
  StatusOr<std::vector<DiscoveredKey>> keys = DiscoverKeys(relation);
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), 1u);
  EXPECT_EQ((*keys)[0].attributes, AttributeSet::Singleton(0));
}

TEST(KeyDiscoveryTest, DuplicateRowsLeaveNoExactKeys) {
  Relation relation = MakeRelation({{"1", "x"}, {"1", "x"}, {"2", "y"}}, 2);
  StatusOr<std::vector<DiscoveredKey>> exact = DiscoverKeys(relation);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->empty());

  // One duplicated row out of three: removing it (1/3 of rows) makes col0 a
  // key, so at ε = 1/3 an approximate key appears.
  KeyDiscoveryOptions options;
  options.epsilon = 0.34;
  StatusOr<std::vector<DiscoveredKey>> approx =
      DiscoverKeys(relation, options);
  ASSERT_TRUE(approx.ok());
  ASSERT_FALSE(approx->empty());
  EXPECT_EQ((*approx)[0].attributes, AttributeSet::Singleton(0));
  EXPECT_NEAR((*approx)[0].error, 1.0 / 3.0, 1e-12);
}

TEST(KeyDiscoveryTest, ApproximateKeysAreMinimalAndValid) {
  Rng rng(99);
  std::vector<std::vector<std::string>> data;
  for (int i = 0; i < 80; ++i) {
    data.push_back({std::to_string(rng.NextBounded(10)),
                    std::to_string(rng.NextBounded(8)),
                    std::to_string(rng.NextBounded(4))});
  }
  Relation relation = MakeRelation(data, 3);
  KeyDiscoveryOptions options;
  options.epsilon = 0.1;
  StatusOr<std::vector<DiscoveredKey>> keys = DiscoverKeys(relation, options);
  ASSERT_TRUE(keys.ok());
  for (const DiscoveredKey& key : *keys) {
    // Valid: measured error within threshold and matching the partition.
    StrippedPartition partition =
        PartitionBuilder::ForAttributeSet(relation, key.attributes);
    EXPECT_NEAR(key.error,
                static_cast<double>(partition.Error()) / relation.num_rows(),
                1e-12);
    EXPECT_LE(key.error, 0.1 + 1e-9);
    // Minimal: every proper subset misses the threshold.
    for (int attribute : Members(key.attributes)) {
      StrippedPartition smaller = PartitionBuilder::ForAttributeSet(
          relation, key.attributes.Without(attribute));
      EXPECT_GT(static_cast<double>(smaller.Error()) / relation.num_rows(),
                0.1)
          << key.attributes.ToString();
    }
  }
}

TEST(KeyDiscoveryTest, MaxKeySizeBounds) {
  Relation relation = PaperFigure1Relation();
  KeyDiscoveryOptions options;
  options.max_key_size = 1;
  StatusOr<std::vector<DiscoveredKey>> keys = DiscoverKeys(relation, options);
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(keys->empty());  // Figure 1 keys have size 2
}

TEST(KeyDiscoveryTest, ValidatesOptions) {
  Relation relation = PaperFigure1Relation();
  KeyDiscoveryOptions bad;
  bad.epsilon = -1;
  EXPECT_FALSE(DiscoverKeys(relation, bad).ok());
  bad.epsilon = 0.5;
  bad.max_key_size = -1;
  EXPECT_FALSE(DiscoverKeys(relation, bad).ok());
}

TEST(KeyDiscoveryTest, EmptyRelationHasNoKeys) {
  Relation relation = MakeRelation({}, 2);
  StatusOr<std::vector<DiscoveredKey>> keys = DiscoverKeys(relation);
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(keys->empty());
}

}  // namespace
}  // namespace tane
