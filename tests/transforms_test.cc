#include "relation/transforms.h"

#include <set>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace tane {
namespace {

using testing_util::MakeRelation;

TEST(ConcatenateCopiesTest, RowCountScales) {
  Relation base = MakeRelation({{"a", "1"}, {"b", "2"}}, 2);
  StatusOr<Relation> scaled = ConcatenateCopies(base, 3);
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ(scaled->num_rows(), 6);
  EXPECT_EQ(scaled->num_columns(), 2);
}

TEST(ConcatenateCopiesTest, CopiesNeverAgreeAcrossCopies) {
  Relation base = MakeRelation({{"a"}, {"a"}, {"b"}}, 1);
  StatusOr<Relation> scaled = ConcatenateCopies(base, 2);
  ASSERT_TRUE(scaled.ok());
  // Within a copy, original agreement is preserved.
  EXPECT_TRUE(scaled->Agrees(0, 1, 0));
  EXPECT_TRUE(scaled->Agrees(3, 4, 0));
  // Across copies, the per-copy suffix breaks every agreement.
  for (int64_t t = 0; t < 3; ++t) {
    for (int64_t u = 3; u < 6; ++u) {
      EXPECT_FALSE(scaled->Agrees(t, u, 0))
          << "rows " << t << " and " << u << " should not agree";
    }
  }
}

TEST(ConcatenateCopiesTest, ValuesCarryCopySuffix) {
  Relation base = MakeRelation({{"x"}}, 1);
  StatusOr<Relation> scaled = ConcatenateCopies(base, 2);
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ(scaled->value(0, 0), "x#0");
  EXPECT_EQ(scaled->value(1, 0), "x#1");
}

TEST(ConcatenateCopiesTest, OneCopyPreservesPartitionStructure) {
  Relation base = MakeRelation({{"a"}, {"b"}, {"a"}}, 1);
  StatusOr<Relation> scaled = ConcatenateCopies(base, 1);
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ(scaled->num_rows(), 3);
  EXPECT_TRUE(scaled->Agrees(0, 2, 0));
  EXPECT_FALSE(scaled->Agrees(0, 1, 0));
}

TEST(ConcatenateCopiesTest, RejectsZeroCopies) {
  Relation base = MakeRelation({{"a"}}, 1);
  EXPECT_FALSE(ConcatenateCopies(base, 0).ok());
}

TEST(ProjectColumnsTest, SelectsAndReorders) {
  Relation base = MakeRelation({{"1", "x", "p"}, {"2", "y", "q"}}, 3);
  StatusOr<Relation> projected = ProjectColumns(base, {2, 0});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->num_columns(), 2);
  EXPECT_EQ(projected->schema().name(0), "col2");
  EXPECT_EQ(projected->value(0, 0), "p");
  EXPECT_EQ(projected->value(1, 1), "2");
}

TEST(ProjectColumnsTest, RejectsBadIndex) {
  Relation base = MakeRelation({{"1"}}, 1);
  EXPECT_FALSE(ProjectColumns(base, {1}).ok());
  EXPECT_FALSE(ProjectColumns(base, {-1}).ok());
}

TEST(HeadRowsTest, KeepsPrefix) {
  Relation base = MakeRelation({{"1"}, {"2"}, {"3"}}, 1);
  StatusOr<Relation> head = HeadRows(base, 2);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->num_rows(), 2);
  EXPECT_EQ(head->value(1, 0), "2");
}

TEST(HeadRowsTest, ClampsToAvailableRows) {
  Relation base = MakeRelation({{"1"}}, 1);
  StatusOr<Relation> head = HeadRows(base, 10);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->num_rows(), 1);
  EXPECT_FALSE(HeadRows(base, -1).ok());
}

TEST(SampleRowsTest, SampleSizeAndOrderPreserved) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 100; ++i) rows.push_back({std::to_string(i)});
  Relation base = MakeRelation(rows, 1);
  Rng rng(7);
  StatusOr<Relation> sample = SampleRows(base, 10, rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->num_rows(), 10);
  // Sampled rows appear in original order and are distinct.
  std::set<std::string> seen;
  int64_t prev = -1;
  for (int64_t row = 0; row < sample->num_rows(); ++row) {
    int64_t id = std::stoll(sample->value(row, 0));
    EXPECT_GT(id, prev);
    prev = id;
    EXPECT_TRUE(seen.insert(sample->value(row, 0)).second);
  }
}

TEST(SampleRowsTest, DeterministicInSeed) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 50; ++i) rows.push_back({std::to_string(i)});
  Relation base = MakeRelation(rows, 1);
  Rng rng_a(3), rng_b(3);
  StatusOr<Relation> a = SampleRows(base, 5, rng_a);
  StatusOr<Relation> b = SampleRows(base, 5, rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int64_t row = 0; row < 5; ++row) {
    EXPECT_EQ(a->value(row, 0), b->value(row, 0));
  }
}

TEST(CompactDictionariesTest, DropsUnusedEntriesKeepsStructure) {
  Relation base = MakeRelation({{"a"}, {"b"}, {"a"}, {"c"}}, 1);
  StatusOr<Relation> head = HeadRows(base, 3);  // value "c" now unused
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->column(0).cardinality(), 3);  // stale dictionary
  Relation compacted = CompactDictionaries(head.value());
  EXPECT_EQ(compacted.column(0).cardinality(), 2);
  EXPECT_EQ(compacted.value(0, 0), "a");
  EXPECT_EQ(compacted.value(1, 0), "b");
  EXPECT_TRUE(compacted.Agrees(0, 2, 0));
  EXPECT_FALSE(compacted.Agrees(0, 1, 0));
}

}  // namespace
}  // namespace tane
