// Robustness sweep for the CSV parser: arbitrary byte soup must never crash
// or corrupt state — every input either parses into a consistent relation
// or returns a clean error Status. Structured round-trip inputs must parse
// back exactly.

#include <string>

#include "gtest/gtest.h"
#include "relation/csv.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace tane {
namespace {

class CsvFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(CsvFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(GetParam() * 92821 + 3);
  // A byte palette heavy on CSV metacharacters.
  const std::string palette = "a,b\"\n\r;1 2\t\\x,,\"\"\n";
  for (int round = 0; round < 50; ++round) {
    std::string input;
    const int length = static_cast<int>(rng.NextBounded(200));
    for (int i = 0; i < length; ++i) {
      input += palette[rng.NextBounded(palette.size())];
    }
    for (bool header : {false, true}) {
      CsvOptions options;
      options.has_header = header;
      options.skip_malformed_rows = rng.NextBernoulli(0.5);
      StatusOr<Relation> relation = ReadCsvString(input, options);
      if (!relation.ok()) continue;  // clean rejection is fine
      // Whatever parsed must be internally consistent.
      for (int c = 0; c < relation->num_columns(); ++c) {
        for (int64_t row = 0; row < relation->num_rows(); ++row) {
          const int32_t code = relation->code(row, c);
          ASSERT_GE(code, 0);
          ASSERT_LT(code, relation->column(c).cardinality());
        }
      }
    }
  }
}

TEST_P(CsvFuzzTest, StructuredRoundTrip) {
  Rng rng(GetParam() * 1299709 + 11);
  const std::string palette = "ab,\"\n\r x;#\t'";
  const int cols = 1 + static_cast<int>(rng.NextBounded(5));
  StatusOr<Schema> schema = Schema::CreateUnnamed(cols);
  ASSERT_TRUE(schema.ok());
  RelationBuilder builder(std::move(schema).value());
  const int rows = static_cast<int>(rng.NextBounded(30));
  for (int i = 0; i < rows; ++i) {
    std::vector<std::string> fields;
    for (int c = 0; c < cols; ++c) {
      std::string field;
      const int length = static_cast<int>(rng.NextBounded(8));
      for (int k = 0; k < length; ++k) {
        field += palette[rng.NextBounded(palette.size())];
      }
      fields.push_back(field);
    }
    TANE_ASSERT_OK(builder.AddRow(fields));
  }
  StatusOr<Relation> original = std::move(builder).Build();
  ASSERT_TRUE(original.ok());

  StatusOr<Relation> reparsed = ReadCsvString(WriteCsvString(*original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->num_rows(), original->num_rows());
  ASSERT_EQ(reparsed->num_columns(), original->num_columns());
  for (int64_t row = 0; row < original->num_rows(); ++row) {
    for (int c = 0; c < cols; ++c) {
      EXPECT_EQ(reparsed->value(row, c), original->value(row, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace tane
