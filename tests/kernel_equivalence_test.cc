// Differential fuzz and determinism matrix for the runtime-dispatched
// partition kernels (src/partition/kernels/): the scalar kernel is the
// reference semantics, and every other kernel — plus every shape-dependent
// strategy inside PartitionProduct (direct probe vs gathered SoA stream,
// index-order vs touched-list emission, radix labeling) — must compute the
// exact same integer stream. Comparisons here are EXACT (operator==, not
// Canonicalized): emission order is part of the determinism contract.

#include <cstdint>
#include <string>
#include <vector>

#include "core/tane.h"
#include "gtest/gtest.h"
#include "partition/error.h"
#include "partition/kernels/kernels.h"
#include "partition/partition_builder.h"
#include "partition/product.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace tane {
namespace {

using testing_util::MakeRelation;
using testing_util::PaperFigure1Relation;

// Random relation whose columns deliberately cover the kernels' edge
// regimes: a constant column (one class covering every row), a near-key
// column (heavy singleton stripping, tiny surviving classes), and mid-range
// columns. Row counts are drawn odd-sized so SIMD lanes always see a
// ragged tail.
Relation FuzzRelation(Rng& rng, int64_t min_rows = 17) {
  const int64_t rows = min_rows + static_cast<int64_t>(rng.NextBounded(150));
  const int cols = 4;
  std::vector<std::vector<std::string>> data;
  data.reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    std::vector<std::string> row;
    row.push_back("const");                                     // 1 class
    row.push_back(std::to_string(rng.NextBounded(2)));          // 2 classes
    row.push_back(std::to_string(rng.NextBounded(1 + rows / 4)));
    row.push_back(std::to_string(rng.NextBounded(rows)));       // near-key
    data.push_back(std::move(row));
  }
  return MakeRelation(data, cols);
}

// All pairwise products of `relation`'s single-attribute partitions under
// `product`, exactly as computed (no canonicalization), both stripped and
// unstripped, with the second stripped sweep passing reuse tokens so the
// label-reuse fast path is exercised too.
std::vector<StrippedPartition> ProductSweep(const Relation& relation,
                                            PartitionProduct& product) {
  std::vector<StrippedPartition> out;
  for (const bool stripped : {true, false}) {
    for (int a = 0; a < relation.num_columns(); ++a) {
      StrippedPartition pa =
          PartitionBuilder::ForAttribute(relation, a, stripped);
      for (int b = 0; b < relation.num_columns(); ++b) {
        StrippedPartition pb =
            PartitionBuilder::ForAttribute(relation, b, stripped);
        // Same token for every `b`: after the first product the left
        // operand's labels are reused, covering the skip-relabel path.
        const uint64_t token = static_cast<uint64_t>(a) + 1;
        out.push_back(product.Multiply(pa, pb, token).value());
      }
    }
  }
  // Degenerate operands: the empty stripped partition (superkey) yields an
  // empty intersection with everything.
  StrippedPartition superkey(relation.num_rows());
  StrippedPartition p0 = PartitionBuilder::ForAttribute(relation, 0);
  out.push_back(product.Multiply(p0, superkey).value());
  out.push_back(product.Multiply(superkey, p0).value());
  return out;
}

class KernelEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelEquivalenceTest, MultiplyMatchesScalarOnFuzzedRelations) {
  Rng rng(GetParam());
  Relation relation = FuzzRelation(rng);

  PartitionProduct reference(relation.num_rows());
  reference.set_kernel(ResolveKernel(KernelKind::kScalar));
  const std::vector<StrippedPartition> expected =
      ProductSweep(relation, reference);

  for (const KernelOps* kernel : AvailableKernels()) {
    PartitionProduct product(relation.num_rows());
    product.set_kernel(kernel);
    const std::vector<StrippedPartition> actual =
        ProductSweep(relation, product);
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      // Exact CSR equality: same rows, same class boundaries, same order.
      EXPECT_EQ(expected[i], actual[i])
          << "kernel " << kernel->name << ", product " << i;
    }
  }
}

TEST_P(KernelEquivalenceTest, RadixGatherPathMatchesDirectPath) {
  Rng rng(1000 + GetParam());
  // The radix labeler only engages for operands with >= 256 member rows (on
  // top of the probe-size threshold forced to 0 below), so these relations
  // need to clear that floor.
  Relation relation = FuzzRelation(rng, /*min_rows=*/300);

  // The direct-probe scalar path is the reference...
  PartitionProduct reference(relation.num_rows());
  reference.set_kernel(ResolveKernel(KernelKind::kScalar));
  const std::vector<StrippedPartition> expected =
      ProductSweep(relation, reference);

  // ...and forcing the large-probe threshold to 0 routes every kernel
  // through the radix labeling pass AND the gathered SoA probe stream,
  // which normally only engage past the cache-size threshold.
  for (const KernelOps* kernel : AvailableKernels()) {
    PartitionProduct product(relation.num_rows());
    product.set_kernel(kernel);
    product.set_radix_min_probe_bytes_for_testing(0);
    const std::vector<StrippedPartition> actual =
        ProductSweep(relation, product);
    ASSERT_GT(product.radix_labelings_for_testing(), 0);
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i], actual[i])
          << "kernel " << kernel->name << " (radix+gather), product " << i;
    }
  }
}

TEST_P(KernelEquivalenceTest, G3CountsMatchScalarOnFuzzedRelations) {
  Rng rng(2000 + GetParam());
  Relation relation = FuzzRelation(rng);
  PartitionProduct product(relation.num_rows());

  G3Calculator reference(relation.num_rows());
  reference.set_kernel(ResolveKernel(KernelKind::kScalar));
  for (const KernelOps* kernel : AvailableKernels()) {
    G3Calculator g3(relation.num_rows());
    g3.set_kernel(kernel);
    for (int a = 0; a < relation.num_columns(); ++a) {
      for (int b = 0; b < relation.num_columns(); ++b) {
        if (a == b) continue;
        StrippedPartition lhs = PartitionBuilder::ForAttribute(relation, a);
        StrippedPartition both =
            product
                .Multiply(lhs, PartitionBuilder::ForAttribute(relation, b))
                .value();
        EXPECT_EQ(reference.RemovalCount(lhs, both).value(),
                  g3.RemovalCount(lhs, both).value())
            << "kernel " << kernel->name << ", " << a << " -> " << b;
        EXPECT_EQ(reference.ViolatingPairCount(lhs, both).value(),
                  g3.ViolatingPairCount(lhs, both).value())
            << "kernel " << kernel->name << ", " << a << " -> " << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelEquivalenceTest,
                         ::testing::Range(0, 8));

// Full-pipeline determinism: discovery output must be bit-identical across
// every available kernel × thread count × epsilon. The scalar single-thread
// run is the reference; fds (with exact error values), keys, and the
// work-counting stats must all match.
TEST(KernelDeterminismTest, DiscoveryIsBitIdenticalAcrossKernelsAndThreads) {
  Rng rng(99);
  Relation relation = FuzzRelation(rng);
  for (const double epsilon : {0.0, 0.05}) {
    TaneConfig reference_config;
    reference_config.epsilon = epsilon;
    reference_config.kernel = "scalar";
    reference_config.num_threads = 1;
    reference_config.parallel_min_window_rows = 0;
    const DiscoveryResult expected =
        Tane::Discover(relation, reference_config).value();

    for (const KernelOps* kernel : AvailableKernels()) {
      for (const int threads : {1, 2, 8}) {
        TaneConfig config;
        config.epsilon = epsilon;
        config.kernel = kernel->name;
        config.num_threads = threads;
        config.parallel_min_window_rows = 0;
        const DiscoveryResult actual =
            Tane::Discover(relation, config).value();
        const std::string where = std::string("kernel ") + kernel->name +
                                  ", threads " + std::to_string(threads) +
                                  ", epsilon " + std::to_string(epsilon);
        ASSERT_EQ(expected.fds.size(), actual.fds.size()) << where;
        for (size_t i = 0; i < expected.fds.size(); ++i) {
          EXPECT_EQ(expected.fds[i].lhs, actual.fds[i].lhs) << where;
          EXPECT_EQ(expected.fds[i].rhs, actual.fds[i].rhs) << where;
          EXPECT_EQ(expected.fds[i].error, actual.fds[i].error) << where;
        }
        EXPECT_EQ(expected.keys, actual.keys) << where;
        // Kernels change how the integer streams are computed, never how
        // much search the lattice does.
        EXPECT_EQ(expected.stats.partition_products,
                  actual.stats.partition_products)
            << where;
        EXPECT_EQ(expected.stats.g3_scans, actual.stats.g3_scans) << where;
      }
    }
  }
}

TEST(KernelDispatchTest, ResolveFallsBackToScalarForUnavailableKernels) {
  const KernelOps* scalar = ResolveKernel(KernelKind::kScalar);
  ASSERT_NE(scalar, nullptr);
  EXPECT_EQ(std::string(scalar->name), "scalar");
  // Auto always resolves to something usable.
  EXPECT_NE(ResolveKernel(KernelKind::kAuto), nullptr);
  // Explicitly requesting an ISA this CPU lacks degrades to scalar instead
  // of crashing; requesting an available one returns that kernel.
  for (const KernelKind kind : {KernelKind::kAvx2, KernelKind::kNeon}) {
    const KernelOps* resolved = ResolveKernel(kind);
    ASSERT_NE(resolved, nullptr);
    if (KernelIsAvailable(kind)) {
      EXPECT_EQ(resolved->kind, kind);
    } else {
      EXPECT_EQ(resolved, scalar);
    }
  }
  // The parser accepts exactly the documented names.
  EXPECT_TRUE(ParseKernelKind("auto").ok());
  EXPECT_TRUE(ParseKernelKind("scalar").ok());
  EXPECT_TRUE(ParseKernelKind("avx2").ok());
  EXPECT_TRUE(ParseKernelKind("neon").ok());
  EXPECT_FALSE(ParseKernelKind("sse9").ok());
  // The empty string means "not configured" and resolves to auto.
  ASSERT_TRUE(ParseKernelKind("").ok());
  EXPECT_EQ(ParseKernelKind("").value(), KernelKind::kAuto);
}

TEST(KernelDispatchTest, ConfigRejectsUnknownKernelName) {
  Relation relation = PaperFigure1Relation();
  TaneConfig config;
  config.kernel = "warp-drive";
  StatusOr<DiscoveryResult> result = Tane::Discover(relation, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tane
