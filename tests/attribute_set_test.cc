#include "lattice/attribute_set.h"

#include <vector>

#include "gtest/gtest.h"

namespace tane {
namespace {

TEST(AttributeSetTest, EmptySet) {
  AttributeSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0);
  EXPECT_EQ(set.mask(), 0u);
  EXPECT_FALSE(set.Contains(0));
}

TEST(AttributeSetTest, Singleton) {
  AttributeSet set = AttributeSet::Singleton(5);
  EXPECT_EQ(set.size(), 1);
  EXPECT_TRUE(set.Contains(5));
  EXPECT_FALSE(set.Contains(4));
  EXPECT_EQ(set.First(), 5);
}

TEST(AttributeSetTest, FullSet) {
  EXPECT_EQ(AttributeSet::FullSet(0).size(), 0);
  EXPECT_EQ(AttributeSet::FullSet(7).size(), 7);
  EXPECT_EQ(AttributeSet::FullSet(64).size(), 64);
  EXPECT_TRUE(AttributeSet::FullSet(64).Contains(63));
}

TEST(AttributeSetTest, OfInitializerList) {
  AttributeSet set = AttributeSet::Of({0, 2, 5});
  EXPECT_EQ(set.size(), 3);
  EXPECT_TRUE(set.Contains(0));
  EXPECT_FALSE(set.Contains(1));
  EXPECT_TRUE(set.Contains(2));
  EXPECT_TRUE(set.Contains(5));
}

TEST(AttributeSetTest, WithAndWithout) {
  AttributeSet set = AttributeSet::Of({1, 3});
  EXPECT_EQ(set.With(2), AttributeSet::Of({1, 2, 3}));
  EXPECT_EQ(set.Without(3), AttributeSet::Singleton(1));
  EXPECT_EQ(set.With(1), set);      // idempotent
  EXPECT_EQ(set.Without(2), set);   // removing a non-member is a no-op
}

TEST(AttributeSetTest, SetAlgebra) {
  AttributeSet a = AttributeSet::Of({0, 1, 2});
  AttributeSet b = AttributeSet::Of({2, 3});
  EXPECT_EQ(a.Union(b), AttributeSet::Of({0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), AttributeSet::Singleton(2));
  EXPECT_EQ(a.Difference(b), AttributeSet::Of({0, 1}));
  EXPECT_EQ(b.Difference(a), AttributeSet::Singleton(3));
}

TEST(AttributeSetTest, ContainsAllAndProperSubset) {
  AttributeSet super = AttributeSet::Of({0, 1, 2});
  AttributeSet sub = AttributeSet::Of({0, 2});
  EXPECT_TRUE(super.ContainsAll(sub));
  EXPECT_FALSE(sub.ContainsAll(super));
  EXPECT_TRUE(super.ContainsAll(super));
  EXPECT_TRUE(sub.IsProperSubsetOf(super));
  EXPECT_FALSE(super.IsProperSubsetOf(super));
  EXPECT_FALSE(super.IsProperSubsetOf(sub));
  EXPECT_TRUE(AttributeSet().IsProperSubsetOf(sub));
}

TEST(AttributeSetTest, ToIndices) {
  EXPECT_EQ(AttributeSet::Of({4, 1, 6}).ToIndices(),
            (std::vector<int>{1, 4, 6}));
  EXPECT_TRUE(AttributeSet().ToIndices().empty());
}

TEST(AttributeSetTest, MembersIteration) {
  std::vector<int> seen;
  for (int a : Members(AttributeSet::Of({0, 3, 63}))) seen.push_back(a);
  EXPECT_EQ(seen, (std::vector<int>{0, 3, 63}));
}

TEST(AttributeSetTest, MembersOfEmptySet) {
  for (int a : Members(AttributeSet())) {
    FAIL() << "unexpected member " << a;
  }
}

TEST(AttributeSetTest, ToStringRawIndices) {
  EXPECT_EQ(AttributeSet::Of({0, 2}).ToString(), "{0,2}");
  EXPECT_EQ(AttributeSet().ToString(), "{}");
}

TEST(AttributeSetTest, ToStringWithSchema) {
  StatusOr<Schema> schema = Schema::Create({"A", "B", "C", "D"});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(AttributeSet::Of({1, 2}).ToString(schema.value()), "{B,C}");
}

TEST(AttributeSetTest, OrderingByMask) {
  EXPECT_LT(AttributeSet::Singleton(0), AttributeSet::Singleton(1));
  EXPECT_LT(AttributeSet::Singleton(1), AttributeSet::Of({0, 1}));
}

TEST(AttributeSetTest, HashSpreadsValues) {
  AttributeSetHash hash;
  EXPECT_NE(hash(AttributeSet::Singleton(0)), hash(AttributeSet::Singleton(1)));
  EXPECT_NE(hash(AttributeSet::Of({0, 1})), hash(AttributeSet::Of({0, 2})));
}

TEST(AttributeSetTest, Bit63Roundtrip) {
  AttributeSet set = AttributeSet::Singleton(63);
  EXPECT_TRUE(set.Contains(63));
  EXPECT_EQ(set.size(), 1);
  EXPECT_EQ(set.ToIndices(), std::vector<int>{63});
  EXPECT_EQ(set.Without(63), AttributeSet());
}

}  // namespace
}  // namespace tane
