#include "core/partition_store.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "partition/partition_builder.h"
#include "tests/test_util.h"
#include "util/failpoint.h"

namespace tane {
namespace {

StrippedPartition SamplePartition() {
  return StrippedPartition::Create(8, {0, 1, 2, 3, 4}, {0, 2, 5}, true)
      .value();
}

TEST(SerializationTest, RoundTrip) {
  StrippedPartition original = SamplePartition();
  StatusOr<StrippedPartition> decoded =
      DeserializePartition(SerializePartition(original));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, original);
}

TEST(SerializationTest, RoundTripUnstripped) {
  StrippedPartition original = SamplePartition().Unstripped();
  StatusOr<StrippedPartition> decoded =
      DeserializePartition(SerializePartition(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
  EXPECT_FALSE(decoded->stripped());
}

TEST(SerializationTest, RoundTripEmpty) {
  StrippedPartition original(3);
  StatusOr<StrippedPartition> decoded =
      DeserializePartition(SerializePartition(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
}

TEST(SerializationTest, RejectsCorruptInput) {
  EXPECT_FALSE(DeserializePartition("").ok());
  EXPECT_FALSE(DeserializePartition("garbage").ok());
  std::string bytes = SerializePartition(SamplePartition());
  bytes[0] ^= 0xFF;  // break the magic
  EXPECT_FALSE(DeserializePartition(bytes).ok());
  std::string truncated =
      SerializePartition(SamplePartition()).substr(0, 20);
  EXPECT_FALSE(DeserializePartition(truncated).ok());
}

template <typename StoreFactory>
void ExercisePutGetRelease(StoreFactory make_store) {
  auto store = make_store();
  StrippedPartition partition = SamplePartition();
  StatusOr<int64_t> handle = store->Put(partition);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  StatusOr<StrippedPartition> loaded = store->Get(*handle);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, partition);
  TANE_ASSERT_OK(store->Release(*handle));
  EXPECT_FALSE(store->Get(*handle).ok());
  EXPECT_FALSE(store->Release(*handle).ok());
}

TEST(MemoryPartitionStoreTest, PutGetRelease) {
  ExercisePutGetRelease([] { return std::make_unique<MemoryPartitionStore>(); });
}

TEST(MemoryPartitionStoreTest, PeekBorrowsWithoutCopy) {
  MemoryPartitionStore store;
  StatusOr<int64_t> handle = store.Put(SamplePartition());
  ASSERT_TRUE(handle.ok());
  const StrippedPartition* borrowed = store.Peek(*handle);
  ASSERT_NE(borrowed, nullptr);
  EXPECT_EQ(*borrowed, SamplePartition());
  TANE_ASSERT_OK(store.Release(*handle));
  EXPECT_EQ(store.Peek(*handle), nullptr);
}

TEST(MemoryPartitionStoreTest, TracksResidentBytes) {
  MemoryPartitionStore store;
  EXPECT_EQ(store.resident_bytes(), 0);
  StatusOr<int64_t> handle = store.Put(SamplePartition());
  ASSERT_TRUE(handle.ok());
  EXPECT_GT(store.resident_bytes(), 0);
  TANE_ASSERT_OK(store.Release(*handle));
  EXPECT_EQ(store.resident_bytes(), 0);
  EXPECT_EQ(store.bytes_written(), 0);
}

TEST(DiskPartitionStoreTest, PutGetRelease) {
  ExercisePutGetRelease([] {
    StatusOr<std::unique_ptr<DiskPartitionStore>> store =
        DiskPartitionStore::Open();
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::move(store).value();
  });
}

TEST(DiskPartitionStoreTest, WritesBytesAndCleansUpDirectory) {
  std::string directory;
  {
    StatusOr<std::unique_ptr<DiskPartitionStore>> store =
        DiskPartitionStore::Open();
    ASSERT_TRUE(store.ok());
    directory = (*store)->directory();
    StatusOr<int64_t> handle = (*store)->Put(SamplePartition());
    ASSERT_TRUE(handle.ok());
    EXPECT_GT((*store)->bytes_written(), 0);
    EXPECT_TRUE(std::filesystem::exists(directory));
    // Peek never serves from disk.
    EXPECT_EQ((*store)->Peek(*handle), nullptr);
  }
  EXPECT_FALSE(std::filesystem::exists(directory));
}

TEST(DiskPartitionStoreTest, NamedDirectoryIsCreated) {
  const std::string directory =
      ::testing::TempDir() + "/tane_store_test_dir";
  std::filesystem::remove_all(directory);
  {
    StatusOr<std::unique_ptr<DiskPartitionStore>> store =
        DiskPartitionStore::Open(directory);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE(std::filesystem::exists(directory));
    StatusOr<int64_t> handle = (*store)->Put(SamplePartition());
    ASSERT_TRUE(handle.ok());
  }
  // The store created the directory, so it owns and removes it.
  EXPECT_FALSE(std::filesystem::exists(directory));
}

TEST(DiskPartitionStoreTest, ManyPartitions) {
  StatusOr<std::unique_ptr<DiskPartitionStore>> store =
      DiskPartitionStore::Open();
  ASSERT_TRUE(store.ok());
  std::vector<int64_t> handles;
  for (int i = 0; i < 20; ++i) {
    StatusOr<int64_t> handle = (*store)->Put(SamplePartition());
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  for (int64_t handle : handles) {
    StatusOr<StrippedPartition> loaded = (*store)->Get(handle);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(*loaded, SamplePartition());
    TANE_ASSERT_OK((*store)->Release(handle));
  }
}

// A retry policy that records backoff waits instead of sleeping, keeping
// the persistent-failure tests fast.
RetryPolicy NoSleepPolicy(int* sleep_count = nullptr) {
  RetryPolicy policy;
  policy.sleep = [sleep_count](std::chrono::milliseconds) {
    if (sleep_count != nullptr) ++*sleep_count;
  };
  return policy;
}

int CountDirectoryEntries(const std::string& directory) {
  int count = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(directory)) {
    ++count;
  }
  return count;
}

class DiskStoreFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kCompiledIn) {
      GTEST_SKIP() << "built without TANE_ENABLE_FAILPOINTS";
    }
  }
  void TearDown() override { failpoint::ClearAll(); }
};

TEST_F(DiskStoreFaultTest, CorruptedSegmentByteIsCaughtByChecksum) {
  StatusOr<std::unique_ptr<DiskPartitionStore>> store =
      DiskPartitionStore::Open();
  ASSERT_TRUE(store.ok());
  StatusOr<int64_t> handle = (*store)->Put(SamplePartition());
  ASSERT_TRUE(handle.ok());

  // Flip one payload byte on disk, past the 4-byte checksum header.
  const std::string segment =
      (std::filesystem::path((*store)->directory()) / "seg0.bin").string();
  ASSERT_TRUE(std::filesystem::exists(segment));
  {
    std::fstream file(segment,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(10);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(10);
    file.write(&byte, 1);
  }

  // Retries must not mask corruption: every attempt re-reads the same bad
  // bytes, so the checksum failure has to surface as a non-retried error.
  (*store)->set_retry_policy(NoSleepPolicy());
  StatusOr<StrippedPartition> loaded = (*store)->Get(*handle);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("checksum mismatch"),
            std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("seg0.bin"), std::string::npos);
}

TEST_F(DiskStoreFaultTest, TransientWriteErrorIsRetriedWithBackoff) {
  StatusOr<std::unique_ptr<DiskPartitionStore>> store =
      DiskPartitionStore::Open();
  ASSERT_TRUE(store.ok());
  int sleeps = 0;
  (*store)->set_retry_policy(NoSleepPolicy(&sleeps));
  failpoint::Arm("disk_store.put", {.skip = 0, .fail_times = 2});
  StatusOr<int64_t> handle = (*store)->Put(SamplePartition());
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_EQ(sleeps, 2);
  StatusOr<StrippedPartition> loaded = (*store)->Get(*handle);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, SamplePartition());
}

TEST_F(DiskStoreFaultTest, FailedPutLeavesNoStraySegmentFiles) {
  const std::string directory =
      ::testing::TempDir() + "/tane_store_fault_dir";
  std::filesystem::remove_all(directory);
  StatusOr<std::unique_ptr<DiskPartitionStore>> store =
      DiskPartitionStore::Open(directory);
  ASSERT_TRUE(store.ok());
  (*store)->set_retry_policy(NoSleepPolicy());

  failpoint::Arm("disk_store.put",
                 {.skip = 0, .fail_times = 1'000'000'000});
  StatusOr<int64_t> handle = (*store)->Put(SamplePartition());
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kIoError);
  EXPECT_NE(handle.status().message().find(directory), std::string::npos);
  // The torn segment was unlinked: the spill directory is empty again.
  EXPECT_EQ(CountDirectoryEntries(directory), 0);

  // The store stays usable once the fault clears.
  failpoint::ClearAll();
  StatusOr<int64_t> recovered = (*store)->Put(SamplePartition());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  StatusOr<StrippedPartition> loaded = (*store)->Get(*recovered);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, SamplePartition());
}

TEST_F(DiskStoreFaultTest, FailedWriteTruncatesButKeepsLiveRecords) {
  StatusOr<std::unique_ptr<DiskPartitionStore>> store =
      DiskPartitionStore::Open();
  ASSERT_TRUE(store.ok());
  (*store)->set_retry_policy(NoSleepPolicy());
  StatusOr<int64_t> first = (*store)->Put(SamplePartition());
  ASSERT_TRUE(first.ok());
  const int64_t durable_bytes = (*store)->disk_bytes();

  failpoint::Arm("disk_store.put",
                 {.skip = 0, .fail_times = 1'000'000'000});
  ASSERT_FALSE((*store)->Put(SamplePartition()).ok());
  failpoint::ClearAll();

  // The earlier record survived the neighbouring failure intact.
  EXPECT_EQ((*store)->disk_bytes(), durable_bytes);
  StatusOr<StrippedPartition> loaded = (*store)->Get(*first);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, SamplePartition());
}

TEST_F(DiskStoreFaultTest, FailedSegmentCreationLeavesNoFile) {
  const std::string directory =
      ::testing::TempDir() + "/tane_store_fault_open_dir";
  std::filesystem::remove_all(directory);
  StatusOr<std::unique_ptr<DiskPartitionStore>> store =
      DiskPartitionStore::Open(directory);
  ASSERT_TRUE(store.ok());
  failpoint::Arm("disk_store.open_segment", {.skip = 0, .fail_times = 1});
  ASSERT_FALSE((*store)->Put(SamplePartition()).ok());
  EXPECT_EQ(CountDirectoryEntries(directory), 0);
}

TEST(AutoPartitionStoreTest, StaysInMemoryUnderBudget) {
  AutoPartitionStore store(/*budget_bytes=*/1 << 20, "");
  StatusOr<int64_t> handle = store.Put(SamplePartition());
  ASSERT_TRUE(handle.ok());
  EXPECT_FALSE(store.spilled());
  EXPECT_GT(store.resident_bytes(), 0);
  EXPECT_EQ(store.bytes_written(), 0);
  // Peek serves straight from the in-memory inner store.
  EXPECT_NE(store.Peek(*handle), nullptr);
  StatusOr<StrippedPartition> loaded = store.Get(*handle);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, SamplePartition());
  TANE_ASSERT_OK(store.Release(*handle));
}

TEST(AutoPartitionStoreTest, SpillsOnceBudgetExceededAndHandlesSurvive) {
  AutoPartitionStore store(/*budget_bytes=*/1, "");
  std::vector<int64_t> handles;
  for (int i = 0; i < 5; ++i) {
    StatusOr<int64_t> handle = store.Put(SamplePartition());
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    handles.push_back(*handle);
  }
  EXPECT_TRUE(store.spilled());
  EXPECT_EQ(store.resident_bytes(), 0);
  EXPECT_GT(store.bytes_written(), 0);
  // Handles issued before the migration still resolve to their partitions.
  for (int64_t handle : handles) {
    StatusOr<StrippedPartition> loaded = store.Get(handle);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(*loaded, SamplePartition());
  }
  for (int64_t handle : handles) {
    TANE_ASSERT_OK(store.Release(handle));
  }
  EXPECT_FALSE(store.Get(handles[0]).ok());
}

TEST(AutoPartitionStoreTest, ZeroBudgetMeansUnlimited) {
  AutoPartitionStore store(/*budget_bytes=*/0, "");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Put(SamplePartition()).ok());
  }
  EXPECT_FALSE(store.spilled());
  EXPECT_EQ(store.bytes_written(), 0);
}

TEST(AutoPartitionStoreTest, PutGetRelease) {
  ExercisePutGetRelease(
      [] { return std::make_unique<AutoPartitionStore>(1 << 20, ""); });
  // And the same contract after degradation to disk.
  ExercisePutGetRelease(
      [] { return std::make_unique<AutoPartitionStore>(1, ""); });
}

}  // namespace
}  // namespace tane
