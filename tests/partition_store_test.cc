#include "core/partition_store.h"

#include <filesystem>

#include "gtest/gtest.h"
#include "partition/partition_builder.h"
#include "tests/test_util.h"

namespace tane {
namespace {

StrippedPartition SamplePartition() {
  return StrippedPartition::Create(8, {0, 1, 2, 3, 4}, {0, 2, 5}, true)
      .value();
}

TEST(SerializationTest, RoundTrip) {
  StrippedPartition original = SamplePartition();
  StatusOr<StrippedPartition> decoded =
      DeserializePartition(SerializePartition(original));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, original);
}

TEST(SerializationTest, RoundTripUnstripped) {
  StrippedPartition original = SamplePartition().Unstripped();
  StatusOr<StrippedPartition> decoded =
      DeserializePartition(SerializePartition(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
  EXPECT_FALSE(decoded->stripped());
}

TEST(SerializationTest, RoundTripEmpty) {
  StrippedPartition original(3);
  StatusOr<StrippedPartition> decoded =
      DeserializePartition(SerializePartition(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
}

TEST(SerializationTest, RejectsCorruptInput) {
  EXPECT_FALSE(DeserializePartition("").ok());
  EXPECT_FALSE(DeserializePartition("garbage").ok());
  std::string bytes = SerializePartition(SamplePartition());
  bytes[0] ^= 0xFF;  // break the magic
  EXPECT_FALSE(DeserializePartition(bytes).ok());
  std::string truncated =
      SerializePartition(SamplePartition()).substr(0, 20);
  EXPECT_FALSE(DeserializePartition(truncated).ok());
}

template <typename StoreFactory>
void ExercisePutGetRelease(StoreFactory make_store) {
  auto store = make_store();
  StrippedPartition partition = SamplePartition();
  StatusOr<int64_t> handle = store->Put(partition);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  StatusOr<StrippedPartition> loaded = store->Get(*handle);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, partition);
  TANE_ASSERT_OK(store->Release(*handle));
  EXPECT_FALSE(store->Get(*handle).ok());
  EXPECT_FALSE(store->Release(*handle).ok());
}

TEST(MemoryPartitionStoreTest, PutGetRelease) {
  ExercisePutGetRelease([] { return std::make_unique<MemoryPartitionStore>(); });
}

TEST(MemoryPartitionStoreTest, PeekBorrowsWithoutCopy) {
  MemoryPartitionStore store;
  StatusOr<int64_t> handle = store.Put(SamplePartition());
  ASSERT_TRUE(handle.ok());
  const StrippedPartition* borrowed = store.Peek(*handle);
  ASSERT_NE(borrowed, nullptr);
  EXPECT_EQ(*borrowed, SamplePartition());
  TANE_ASSERT_OK(store.Release(*handle));
  EXPECT_EQ(store.Peek(*handle), nullptr);
}

TEST(MemoryPartitionStoreTest, TracksResidentBytes) {
  MemoryPartitionStore store;
  EXPECT_EQ(store.resident_bytes(), 0);
  StatusOr<int64_t> handle = store.Put(SamplePartition());
  ASSERT_TRUE(handle.ok());
  EXPECT_GT(store.resident_bytes(), 0);
  TANE_ASSERT_OK(store.Release(*handle));
  EXPECT_EQ(store.resident_bytes(), 0);
  EXPECT_EQ(store.bytes_written(), 0);
}

TEST(DiskPartitionStoreTest, PutGetRelease) {
  ExercisePutGetRelease([] {
    StatusOr<std::unique_ptr<DiskPartitionStore>> store =
        DiskPartitionStore::Open();
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::move(store).value();
  });
}

TEST(DiskPartitionStoreTest, WritesBytesAndCleansUpDirectory) {
  std::string directory;
  {
    StatusOr<std::unique_ptr<DiskPartitionStore>> store =
        DiskPartitionStore::Open();
    ASSERT_TRUE(store.ok());
    directory = (*store)->directory();
    StatusOr<int64_t> handle = (*store)->Put(SamplePartition());
    ASSERT_TRUE(handle.ok());
    EXPECT_GT((*store)->bytes_written(), 0);
    EXPECT_TRUE(std::filesystem::exists(directory));
    // Peek never serves from disk.
    EXPECT_EQ((*store)->Peek(*handle), nullptr);
  }
  EXPECT_FALSE(std::filesystem::exists(directory));
}

TEST(DiskPartitionStoreTest, NamedDirectoryIsCreated) {
  const std::string directory =
      ::testing::TempDir() + "/tane_store_test_dir";
  std::filesystem::remove_all(directory);
  {
    StatusOr<std::unique_ptr<DiskPartitionStore>> store =
        DiskPartitionStore::Open(directory);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE(std::filesystem::exists(directory));
    StatusOr<int64_t> handle = (*store)->Put(SamplePartition());
    ASSERT_TRUE(handle.ok());
  }
  // The store created the directory, so it owns and removes it.
  EXPECT_FALSE(std::filesystem::exists(directory));
}

TEST(DiskPartitionStoreTest, ManyPartitions) {
  StatusOr<std::unique_ptr<DiskPartitionStore>> store =
      DiskPartitionStore::Open();
  ASSERT_TRUE(store.ok());
  std::vector<int64_t> handles;
  for (int i = 0; i < 20; ++i) {
    StatusOr<int64_t> handle = (*store)->Put(SamplePartition());
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  for (int64_t handle : handles) {
    StatusOr<StrippedPartition> loaded = (*store)->Get(handle);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(*loaded, SamplePartition());
    TANE_ASSERT_OK((*store)->Release(handle));
  }
}

}  // namespace
}  // namespace tane
