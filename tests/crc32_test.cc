#include "util/crc32.h"

#include <string>

#include "gtest/gtest.h"

namespace tane {
namespace {

TEST(Crc32Test, MatchesKnownVectors) {
  // Standard CRC-32 (IEEE) check values.
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string data(256, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  const uint32_t clean = Crc32(data);
  for (size_t byte : {size_t{0}, data.size() / 2, data.size() - 1}) {
    std::string corrupt = data;
    corrupt[byte] ^= 0x01;
    EXPECT_NE(Crc32(corrupt), clean) << "flip at byte " << byte;
  }
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "partition payload bytes";
  const uint32_t whole = Crc32(data);
  const uint32_t split = Crc32(data.substr(8), Crc32(data.substr(0, 8)));
  EXPECT_EQ(split, whole);
}

TEST(Crc32Test, SeedChangesResult) {
  EXPECT_NE(Crc32("abc", 0), Crc32("abc", 1));
}

}  // namespace
}  // namespace tane
