#include "lattice/level.h"

#include <algorithm>

#include "gtest/gtest.h"

namespace tane {
namespace {

std::vector<AttributeSet> Sets(std::initializer_list<AttributeSet> sets) {
  return std::vector<AttributeSet>(sets);
}

TEST(LevelIndexTest, FindAndContains) {
  std::vector<AttributeSet> sets = {AttributeSet::Of({0}),
                                    AttributeSet::Of({2})};
  LevelIndex index(sets);
  EXPECT_EQ(index.Find(AttributeSet::Of({0})), 0);
  EXPECT_EQ(index.Find(AttributeSet::Of({2})), 1);
  EXPECT_EQ(index.Find(AttributeSet::Of({1})), -1);
  EXPECT_TRUE(index.Contains(AttributeSet::Of({2})));
  EXPECT_FALSE(index.Contains(AttributeSet::Of({0, 2})));
  EXPECT_EQ(index.size(), 2u);
}

TEST(GenerateNextLevelTest, SingletonsToAllPairs) {
  std::vector<AttributeSet> level = {
      AttributeSet::Singleton(0), AttributeSet::Singleton(1),
      AttributeSet::Singleton(2)};
  std::vector<LevelCandidate> candidates = GenerateNextLevel(level);
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0].set, AttributeSet::Of({0, 1}));
  EXPECT_EQ(candidates[1].set, AttributeSet::Of({0, 2}));
  EXPECT_EQ(candidates[2].set, AttributeSet::Of({1, 2}));
}

TEST(GenerateNextLevelTest, ParentsAreTheJoinedSubsets) {
  std::vector<AttributeSet> level = {AttributeSet::Singleton(3),
                                     AttributeSet::Singleton(1)};
  std::vector<LevelCandidate> candidates = GenerateNextLevel(level);
  ASSERT_EQ(candidates.size(), 1u);
  const LevelCandidate& candidate = candidates[0];
  EXPECT_EQ(candidate.set, AttributeSet::Of({1, 3}));
  const AttributeSet parent_union =
      level[candidate.parent_a].Union(level[candidate.parent_b]);
  EXPECT_EQ(parent_union, candidate.set);
  EXPECT_NE(candidate.parent_a, candidate.parent_b);
}

TEST(GenerateNextLevelTest, RequiresAllSubsets) {
  // {0,1},{0,2} join to {0,1,2}, but {1,2} is missing from the level, so
  // the candidate must be suppressed.
  std::vector<AttributeSet> level = {AttributeSet::Of({0, 1}),
                                     AttributeSet::Of({0, 2})};
  EXPECT_TRUE(GenerateNextLevel(level).empty());
}

TEST(GenerateNextLevelTest, CompletePairLevelGivesTriples) {
  std::vector<AttributeSet> level = {
      AttributeSet::Of({0, 1}), AttributeSet::Of({0, 2}),
      AttributeSet::Of({1, 2}), AttributeSet::Of({1, 3}),
      AttributeSet::Of({2, 3}), AttributeSet::Of({0, 3})};
  std::vector<LevelCandidate> candidates = GenerateNextLevel(level);
  ASSERT_EQ(candidates.size(), 4u);
  EXPECT_EQ(candidates[0].set, AttributeSet::Of({0, 1, 2}));
  EXPECT_EQ(candidates[1].set, AttributeSet::Of({0, 1, 3}));
  EXPECT_EQ(candidates[2].set, AttributeSet::Of({0, 2, 3}));
  EXPECT_EQ(candidates[3].set, AttributeSet::Of({1, 2, 3}));
}

TEST(GenerateNextLevelTest, PartiallyPrunedPairLevel) {
  // Missing {1,2}: only {0,1,3} (from {0,1},{0,3},{1,3}) and {0,2,3}
  // survive the subset check.
  std::vector<AttributeSet> level = {
      AttributeSet::Of({0, 1}), AttributeSet::Of({0, 2}),
      AttributeSet::Of({1, 3}), AttributeSet::Of({2, 3}),
      AttributeSet::Of({0, 3})};
  std::vector<LevelCandidate> candidates = GenerateNextLevel(level);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].set, AttributeSet::Of({0, 1, 3}));
  EXPECT_EQ(candidates[1].set, AttributeSet::Of({0, 2, 3}));
}

TEST(GenerateNextLevelTest, EmptyAndSingletonLevels) {
  EXPECT_TRUE(GenerateNextLevel({}).empty());
  EXPECT_TRUE(GenerateNextLevel(Sets({AttributeSet::Of({0, 1})})).empty());
}

TEST(GenerateNextLevelTest, TopOfLatticeFromFullPairSet) {
  // All 2-subsets of {0,1,2} generate exactly the full set at level 3, and
  // from a single 3-set nothing follows.
  std::vector<AttributeSet> level = {AttributeSet::Of({0, 1}),
                                     AttributeSet::Of({0, 2}),
                                     AttributeSet::Of({1, 2})};
  std::vector<LevelCandidate> triples = GenerateNextLevel(level);
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].set, AttributeSet::Of({0, 1, 2}));
  EXPECT_TRUE(GenerateNextLevel(Sets({triples[0].set})).empty());
}

TEST(GenerateNextLevelTest, DeterministicOrder) {
  std::vector<AttributeSet> level = {
      AttributeSet::Singleton(2), AttributeSet::Singleton(0),
      AttributeSet::Singleton(1)};
  std::vector<LevelCandidate> a = GenerateNextLevel(level);
  std::vector<LevelCandidate> b = GenerateNextLevel(level);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].set, b[i].set);
    EXPECT_EQ(a[i].parent_a, b[i].parent_a);
    EXPECT_EQ(a[i].parent_b, b[i].parent_b);
  }
  EXPECT_TRUE(std::is_sorted(
      a.begin(), a.end(), [](const LevelCandidate& x, const LevelCandidate& y) {
        return x.set < y.set;
      }));
}

}  // namespace
}  // namespace tane
