// Cross-validation property tests: TANE (all configurations), FDEP, and the
// brute-force oracle must agree on randomly generated relations, and the
// outputs must satisfy the defining invariants of minimal-FD discovery.

#include <string>
#include <vector>

#include "baselines/brute_force.h"
#include "baselines/fdep.h"
#include "core/tane.h"
#include "datasets/generators.h"
#include "gtest/gtest.h"
#include "partition/error.h"
#include "partition/partition_builder.h"
#include "relation/transforms.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace tane {
namespace {

using testing_util::FdStrings;

// A deterministic family of small random relations with varied shape:
// different column counts, cardinalities, and skew, including derived
// (FD-planted) columns on odd seeds.
Relation RandomRelation(int seed) {
  Rng rng(seed * 7919 + 13);
  SyntheticSpec spec;
  spec.seed = seed + 1000;
  spec.rows = 10 + static_cast<int64_t>(rng.NextBounded(70));
  const int cols = 3 + static_cast<int>(rng.NextBounded(4));  // 3..6
  for (int c = 0; c < cols; ++c) {
    spec.base.push_back({"b" + std::to_string(c),
                         1 + static_cast<int64_t>(rng.NextBounded(6)),
                         rng.NextBernoulli(0.3) ? 1.0 : 0.0});
  }
  if (seed % 2 == 1) {
    spec.derived.push_back(
        {"d0",
         {0, 1},
         2 + static_cast<int64_t>(rng.NextBounded(3)),
         rng.NextBernoulli(0.5) ? 0.1 : 0.0});
  }
  StatusOr<Relation> relation = GenerateSynthetic(spec);
  EXPECT_TRUE(relation.ok()) << relation.status().ToString();
  return std::move(relation).value();
}

void ExpectValidMinimalComplete(const Relation& relation,
                                const DiscoveryResult& result,
                                double epsilon) {
  G3Calculator g3(relation.num_rows());
  // Validity: every output dependency has g3 <= epsilon, with the reported
  // error value.
  for (const FunctionalDependency& fd : result.fds) {
    StrippedPartition lhs = PartitionBuilder::ForAttributeSet(relation, fd.lhs);
    StrippedPartition joint =
        PartitionBuilder::ForAttributeSet(relation, fd.lhs.With(fd.rhs));
    const double error = g3.Error(lhs, joint).value();
    EXPECT_LE(error, epsilon + 1e-9)
        << fd.lhs.ToString() << " -> " << fd.rhs;
    EXPECT_NEAR(error, fd.error, 1e-12);
    EXPECT_FALSE(fd.lhs.Contains(fd.rhs)) << "trivial dependency emitted";
  }
  // Minimality: no output lhs contains another output lhs for the same rhs.
  for (const FunctionalDependency& a : result.fds) {
    for (const FunctionalDependency& b : result.fds) {
      if (a.rhs != b.rhs || a.lhs == b.lhs) continue;
      EXPECT_FALSE(a.lhs.IsProperSubsetOf(b.lhs));
    }
  }
}

class TaneVsOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(TaneVsOracleTest, ExactFdsMatchBruteForceAndFdep) {
  const Relation relation = RandomRelation(GetParam());
  StatusOr<DiscoveryResult> oracle = BruteForce::Discover(relation);
  ASSERT_TRUE(oracle.ok());
  StatusOr<DiscoveryResult> tane_result = Tane::Discover(relation);
  ASSERT_TRUE(tane_result.ok());
  StatusOr<DiscoveryResult> fdep_result = Fdep::Discover(relation);
  ASSERT_TRUE(fdep_result.ok());

  EXPECT_EQ(FdStrings(tane_result->fds), FdStrings(oracle->fds));
  EXPECT_EQ(FdStrings(fdep_result->fds), FdStrings(oracle->fds));
  ExpectValidMinimalComplete(relation, *tane_result, 0.0);
  // Keys agree with the oracle's independent key search.
  EXPECT_EQ(tane_result->keys, oracle->keys);
}

TEST_P(TaneVsOracleTest, AllPruningConfigurationsAgree) {
  const Relation relation = RandomRelation(GetParam());
  StatusOr<DiscoveryResult> baseline = Tane::Discover(relation);
  ASSERT_TRUE(baseline.ok());
  for (bool rhs_plus : {false, true}) {
    for (bool key_pruning : {false, true}) {
      for (bool stripped : {false, true}) {
        TaneConfig config;
        config.use_rhs_plus_pruning = rhs_plus;
        config.use_key_pruning = key_pruning;
        config.use_stripped_partitions = stripped;
        StatusOr<DiscoveryResult> result = Tane::Discover(relation, config);
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(FdStrings(result->fds), FdStrings(baseline->fds))
            << "rhs_plus=" << rhs_plus << " key=" << key_pruning
            << " stripped=" << stripped;
      }
    }
  }
  // The covered-rhs pruning and the Schlimmer-style partition
  // recomputation must not change results either.
  for (bool covered : {false, true}) {
    for (bool products : {false, true}) {
      TaneConfig config;
      config.use_covered_rhs_pruning = covered;
      config.use_partition_products = products;
      StatusOr<DiscoveryResult> result = Tane::Discover(relation, config);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(FdStrings(result->fds), FdStrings(baseline->fds))
          << "covered=" << covered << " products=" << products;
    }
  }
}

TEST_P(TaneVsOracleTest, ApproximateFdsMatchBruteForce) {
  const Relation relation = RandomRelation(GetParam());
  for (double epsilon : {0.02, 0.1, 0.3}) {
    StatusOr<DiscoveryResult> oracle =
        BruteForce::Discover(relation, epsilon);
    ASSERT_TRUE(oracle.ok());
    TaneConfig config;
    config.epsilon = epsilon;
    StatusOr<DiscoveryResult> result = Tane::Discover(relation, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(FdStrings(result->fds), FdStrings(oracle->fds))
        << "eps=" << epsilon << " seed=" << GetParam();
    ExpectValidMinimalComplete(relation, *result, epsilon);
  }
}

TEST_P(TaneVsOracleTest, AlternativeMeasuresMatchBruteForce) {
  const Relation relation = RandomRelation(GetParam());
  for (ErrorMeasure measure : {ErrorMeasure::kG2, ErrorMeasure::kG1}) {
    const double epsilon = measure == ErrorMeasure::kG1 ? 0.02 : 0.15;
    StatusOr<DiscoveryResult> oracle = BruteForce::Discover(
        relation, epsilon, kMaxAttributes, measure);
    ASSERT_TRUE(oracle.ok());
    TaneConfig config;
    config.epsilon = epsilon;
    config.measure = measure;
    StatusOr<DiscoveryResult> result = Tane::Discover(relation, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(FdStrings(result->fds), FdStrings(oracle->fds))
        << "measure=" << static_cast<int>(measure) << " seed=" << GetParam();
  }
}

TEST_P(TaneVsOracleTest, ApproximateWithoutBoundsMatches) {
  const Relation relation = RandomRelation(GetParam());
  TaneConfig with_bounds;
  with_bounds.epsilon = 0.15;
  TaneConfig without_bounds;
  without_bounds.epsilon = 0.15;
  without_bounds.use_g3_bounds = false;
  StatusOr<DiscoveryResult> a = Tane::Discover(relation, with_bounds);
  StatusOr<DiscoveryResult> b = Tane::Discover(relation, without_bounds);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(FdStrings(a->fds), FdStrings(b->fds));
}

TEST_P(TaneVsOracleTest, MaxLhsTruncationConsistent) {
  const Relation relation = RandomRelation(GetParam());
  for (int limit : {1, 2, 3}) {
    TaneConfig config;
    config.max_lhs_size = limit;
    StatusOr<DiscoveryResult> limited = Tane::Discover(relation, config);
    ASSERT_TRUE(limited.ok());
    StatusOr<DiscoveryResult> oracle =
        BruteForce::Discover(relation, 0.0, limit);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(FdStrings(limited->fds), FdStrings(oracle->fds))
        << "limit=" << limit << " seed=" << GetParam();
  }
}

TEST_P(TaneVsOracleTest, ScaledCopiesPreserveFdSet) {
  // The paper's ×n construction: rows from different copies never agree on
  // any attribute, so every dependency with a non-empty left-hand side is
  // preserved exactly. (Dependencies ∅ → A — constant columns — are the one
  // exception: the per-copy value suffix destroys them. The paper's UCI
  // datasets have no constant columns, hence its "the set of dependencies
  // is the same" claim.)
  const Relation relation = RandomRelation(GetParam());
  StatusOr<Relation> scaled = ConcatenateCopies(relation, 3);
  ASSERT_TRUE(scaled.ok());
  StatusOr<DiscoveryResult> base_fds = Tane::Discover(relation);
  StatusOr<DiscoveryResult> scaled_fds = Tane::Discover(*scaled);
  ASSERT_TRUE(base_fds.ok() && scaled_fds.ok());

  const bool base_has_constant_column =
      std::any_of(base_fds->fds.begin(), base_fds->fds.end(),
                  [](const FunctionalDependency& fd) {
                    return fd.lhs.empty();
                  });
  if (!base_has_constant_column) {
    EXPECT_EQ(FdStrings(base_fds->fds), FdStrings(scaled_fds->fds));
    return;
  }
  // With constant columns, the non-empty-lhs dependencies still transfer in
  // both directions.
  auto nonempty = [](const std::vector<FunctionalDependency>& fds) {
    std::vector<std::string> out;
    for (const FunctionalDependency& fd : fds) {
      if (!fd.lhs.empty()) {
        out.push_back(fd.lhs.ToString() + " -> " + std::to_string(fd.rhs));
      }
    }
    return out;
  };
  for (const FunctionalDependency& fd : base_fds->fds) {
    if (fd.lhs.empty()) continue;
    // Still valid in the scaled relation (possibly no longer minimal only
    // if a previously-constant column's new FDs subsume it — they cannot,
    // since new minimal lhs only appear for previously-constant rhs).
    StrippedPartition lhs =
        PartitionBuilder::ForAttributeSet(*scaled, fd.lhs);
    StrippedPartition joint =
        PartitionBuilder::ForAttributeSet(*scaled, fd.lhs.With(fd.rhs));
    EXPECT_EQ(lhs.Error(), joint.Error())
        << fd.lhs.ToString() << " -> " << fd.rhs;
  }
  (void)nonempty;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaneVsOracleTest, ::testing::Range(0, 20));

// Lemma 1: X -> A holds iff π_X refines π_{A}. Checked against the direct
// pairwise definition of FD validity.
class RefinementLemmaTest : public ::testing::TestWithParam<int> {};

TEST_P(RefinementLemmaTest, RefinesIffFdHolds) {
  const Relation relation = RandomRelation(GetParam());
  const int cols = relation.num_columns();
  for (int a = 0; a < cols; ++a) {
    for (int b = 0; b < cols; ++b) {
      if (a == b) continue;
      StrippedPartition pa = PartitionBuilder::ForAttribute(relation, a);
      StrippedPartition pb = PartitionBuilder::ForAttribute(relation, b);
      // Direct definition: all pairs agreeing on a also agree on b.
      bool holds = true;
      for (int64_t t = 0; t < relation.num_rows() && holds; ++t) {
        for (int64_t u = t + 1; u < relation.num_rows(); ++u) {
          if (relation.Agrees(t, u, a) && !relation.Agrees(t, u, b)) {
            holds = false;
            break;
          }
        }
      }
      EXPECT_EQ(pa.Refines(pb), holds) << "attrs " << a << " " << b;
      // Lemma 2 agrees as well.
      StrippedPartition joint = PartitionBuilder::ForAttributeSet(
          relation, AttributeSet::Of({a, b}));
      EXPECT_EQ(pa.Error() == joint.Error(), holds);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinementLemmaTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace tane
