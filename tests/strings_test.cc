#include "util/strings.h"

#include "gtest/gtest.h"

namespace tane {
namespace {

TEST(SplitStringTest, BasicSplit) {
  auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, KeepsEmptyFields) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitStringTest, NoSeparator) {
  auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitStringTest, EmptyInputGivesOneEmptyField) {
  auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\nx\r "), "x");
  EXPECT_EQ(StripWhitespace("x"), "x");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(JoinStringsTest, JoinsWithSeparator) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  int64_t value = 0;
  EXPECT_TRUE(ParseInt64("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(ParseInt64("-7", &value));
  EXPECT_EQ(value, -7);
  EXPECT_TRUE(ParseInt64("  13  ", &value));
  EXPECT_EQ(value, 13);
}

TEST(ParseInt64Test, RejectsGarbage) {
  int64_t value = 0;
  EXPECT_FALSE(ParseInt64("", &value));
  EXPECT_FALSE(ParseInt64("12x", &value));
  EXPECT_FALSE(ParseInt64("x12", &value));
  EXPECT_FALSE(ParseInt64("1.5", &value));
  EXPECT_FALSE(ParseInt64("99999999999999999999999", &value));
}

TEST(ParseDoubleTest, ParsesValidDoubles) {
  double value = 0;
  EXPECT_TRUE(ParseDouble("0.25", &value));
  EXPECT_DOUBLE_EQ(value, 0.25);
  EXPECT_TRUE(ParseDouble("-3e2", &value));
  EXPECT_DOUBLE_EQ(value, -300.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double value = 0;
  EXPECT_FALSE(ParseDouble("", &value));
  EXPECT_FALSE(ParseDouble("1.5abc", &value));
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--scale=full", "--scale="));
  EXPECT_FALSE(StartsWith("-s", "--scale="));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(FormatSecondsTest, MatchesPaperStyle) {
  EXPECT_EQ(FormatSeconds(0.76), "0.760");
  EXPECT_EQ(FormatSeconds(68.2), "68.20");
  EXPECT_EQ(FormatSeconds(1451.0), "1451");
  EXPECT_EQ(FormatSeconds(0.001), "0.0010");
}

TEST(FormatCountTest, PlainIntegers) {
  EXPECT_EQ(FormatCount(2730), "2730");
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(-3), "-3");
}

}  // namespace
}  // namespace tane
