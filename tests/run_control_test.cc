#include "util/run_control.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "core/tane.h"
#include "datasets/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace tane {
namespace {

using testing_util::FdStrings;
using testing_util::MakeRelation;

// A relation whose first column is a unique key, so level 1 already proves
// {col0} -> every other column via key pruning — a deadline that expires at
// the first level boundary still yields a non-empty partial result.
Relation KeyedRelation() {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 12; ++i) {
    rows.push_back({"id" + std::to_string(i), std::to_string(i % 3),
                    std::to_string((i / 3) % 2), std::to_string(i % 4)});
  }
  return MakeRelation(rows, 4);
}

bool IsSubset(const std::vector<std::string>& small,
              const std::vector<std::string>& big) {
  return std::all_of(small.begin(), small.end(), [&](const std::string& fd) {
    return std::find(big.begin(), big.end(), fd) != big.end();
  });
}

TEST(RunControllerTest, DefaultNeverStops) {
  RunController controller;
  EXPECT_FALSE(controller.ShouldStop());
  EXPECT_EQ(controller.stop_reason(), StopReason::kNone);
  EXPECT_FALSE(controller.has_deadline());
  EXPECT_EQ(controller.memory_budget_bytes(), 0);
}

TEST(RunControllerTest, ExpiredDeadlineStopsAndLatches) {
  RunController controller;
  controller.SetDeadlineAfter(std::chrono::milliseconds(0));
  EXPECT_TRUE(controller.ShouldStop());
  EXPECT_EQ(controller.stop_reason(), StopReason::kDeadline);
  // Latched: clearing the deadline afterwards does not un-stop the run.
  controller.ClearDeadline();
  EXPECT_TRUE(controller.ShouldStop());
  EXPECT_EQ(controller.stop_reason(), StopReason::kDeadline);
}

TEST(RunControllerTest, FutureDeadlineDoesNotStop) {
  RunController controller;
  controller.SetDeadlineAfter(std::chrono::hours(1));
  EXPECT_FALSE(controller.ShouldStop());
  EXPECT_EQ(controller.stop_reason(), StopReason::kNone);
}

TEST(RunControllerTest, CancelStopsAndWinsOverDeadline) {
  RunController controller;
  controller.SetDeadlineAfter(std::chrono::milliseconds(0));
  controller.RequestCancel();
  EXPECT_TRUE(controller.ShouldStop());
  EXPECT_EQ(controller.stop_reason(), StopReason::kCancelled);
}

TEST(RunControllerTest, StopReasonNames) {
  EXPECT_EQ(StopReasonToString(StopReason::kNone), "none");
  EXPECT_EQ(StopReasonToString(StopReason::kDeadline), "deadline");
  EXPECT_EQ(StopReasonToString(StopReason::kCancelled), "cancelled");
}

TEST(TaneDeadlineTest, ExpiredDeadlineReturnsPrefixCorrectPartialResult) {
  const Relation relation = KeyedRelation();
  TANE_ASSERT_OK_AND_ASSIGN(const DiscoveryResult full,
                            Tane::Discover(relation));
  ASSERT_EQ(full.completion, Completion::kComplete);

  RunController controller;
  controller.SetDeadlineAfter(std::chrono::milliseconds(0));
  TaneConfig config;
  config.run_controller = &controller;
  TANE_ASSERT_OK_AND_ASSIGN(const DiscoveryResult partial,
                            Tane::Discover(relation, config));

  EXPECT_EQ(partial.completion, Completion::kDeadlineExpired);
  EXPECT_FALSE(partial.complete());
  // Level 1 finishes before the first boundary check, so the unique column
  // has already been proven a key and emitted as dependencies.
  EXPECT_GE(partial.completed_levels, 1);
  EXPECT_LT(partial.completed_levels, full.completed_levels);
  EXPECT_FALSE(partial.fds.empty());
  EXPECT_LT(partial.num_fds(), full.num_fds());
  // Prefix correctness: everything emitted also appears in the full output.
  EXPECT_TRUE(IsSubset(FdStrings(partial.fds), FdStrings(full.fds)));
  for (const AttributeSet& key : partial.keys) {
    EXPECT_NE(std::find(full.keys.begin(), full.keys.end(), key),
              full.keys.end());
  }
}

TEST(TaneDeadlineTest, CompleteRunReportsCompleteAndAllLevels) {
  RunController controller;
  controller.SetDeadlineAfter(std::chrono::hours(1));
  TaneConfig config;
  config.run_controller = &controller;
  TANE_ASSERT_OK_AND_ASSIGN(
      const DiscoveryResult result,
      Tane::Discover(testing_util::PaperFigure1Relation(), config));
  EXPECT_EQ(result.completion, Completion::kComplete);
  EXPECT_EQ(result.completed_levels, result.stats.levels_processed);
  TANE_ASSERT_OK_AND_ASSIGN(
      const DiscoveryResult unbounded,
      Tane::Discover(testing_util::PaperFigure1Relation()));
  EXPECT_EQ(FdStrings(result.fds), FdStrings(unbounded.fds));
}

TEST(TaneCancelTest, PreCancelledRunReturnsPartialResult) {
  RunController controller;
  controller.RequestCancel();
  TaneConfig config;
  config.run_controller = &controller;
  TANE_ASSERT_OK_AND_ASSIGN(const DiscoveryResult result,
                            Tane::Discover(KeyedRelation(), config));
  EXPECT_EQ(result.completion, Completion::kCancelled);
  EXPECT_GE(result.completed_levels, 1);
  EXPECT_FALSE(result.fds.empty());
}

TEST(TaneMemoryBudgetTest, MemoryModeAbortsWithResourceExhausted) {
  RunController controller;
  controller.set_memory_budget_bytes(1);
  TaneConfig config;
  config.run_controller = &controller;  // storage stays kMemory
  const StatusOr<DiscoveryResult> result =
      Tane::Discover(KeyedRelation(), config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("kAuto"), std::string::npos);
}

TEST(TaneMemoryBudgetTest, AutoModeSpillsInsteadOfFailing) {
  TANE_ASSERT_OK_AND_ASSIGN(
      const Relation relation,
      GenerateUniform(/*rows=*/300, /*cols=*/7, /*cardinality=*/3,
                      /*seed=*/17));
  TANE_ASSERT_OK_AND_ASSIGN(const DiscoveryResult unbudgeted,
                            Tane::Discover(relation));
  ASSERT_GT(unbudgeted.stats.peak_partition_bytes, 0);

  RunController controller;
  // Far below the in-memory peak, so the budget must trip mid-run.
  controller.set_memory_budget_bytes(unbudgeted.stats.peak_partition_bytes /
                                     8);
  TaneConfig config;
  config.storage = StorageMode::kAuto;
  config.run_controller = &controller;
  TANE_ASSERT_OK_AND_ASSIGN(const DiscoveryResult degraded,
                            Tane::Discover(relation, config));

  EXPECT_EQ(degraded.completion, Completion::kComplete);
  EXPECT_TRUE(degraded.stats.degraded_to_disk);
  EXPECT_GT(degraded.stats.spill_bytes_written, 0);
  // The degraded run is a TANE run, not a different algorithm: identical
  // dependencies and keys.
  EXPECT_EQ(FdStrings(degraded.fds), FdStrings(unbudgeted.fds));
  EXPECT_EQ(degraded.keys, unbudgeted.keys);
}

TEST(TaneMemoryBudgetTest, AutoModeWithoutBudgetStaysInMemory) {
  TaneConfig config;
  config.storage = StorageMode::kAuto;
  TANE_ASSERT_OK_AND_ASSIGN(
      const DiscoveryResult result,
      Tane::Discover(testing_util::PaperFigure1Relation(), config));
  EXPECT_FALSE(result.stats.degraded_to_disk);
  EXPECT_EQ(result.stats.spill_bytes_written, 0);
  TANE_ASSERT_OK_AND_ASSIGN(
      const DiscoveryResult mem,
      Tane::Discover(testing_util::PaperFigure1Relation()));
  EXPECT_EQ(FdStrings(result.fds), FdStrings(mem.fds));
}

TEST(TaneMemoryBudgetTest, CompletionNamesAreStable) {
  EXPECT_EQ(CompletionToString(Completion::kComplete), "complete");
  EXPECT_EQ(CompletionToString(Completion::kDeadlineExpired),
            "deadline_expired");
  EXPECT_EQ(CompletionToString(Completion::kCancelled), "cancelled");
}

}  // namespace
}  // namespace tane
