#include "tools/cli.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace tane {
namespace cli {
namespace {

// Writes the Figure 1 relation to a temp CSV and returns the path.
std::string WriteFigure1Csv() {
  const std::string path = ::testing::TempDir() + "/tane_cli_fig1.csv";
  std::ofstream out(path);
  out << "A,B,C,D\n1,a,$,Flower\n1,x,L,Tulip\n2,x,$,Daffodil\n"
         "2,x,$,Flower\n2,b,L,Lily\n3,b,$,Orchid\n3,c,L,Flower\n3,c,#,Rose\n";
  return path;
}

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult RunCli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = Run(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(CliParseFdTest, ParsesNamedDependency) {
  Schema schema = Schema::Create({"city", "zip", "state"}).value();
  StatusOr<FunctionalDependency> fd = ParseFd("city,zip->state", schema);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fd->lhs, AttributeSet::Of({0, 1}));
  EXPECT_EQ(fd->rhs, 2);
}

TEST(CliParseFdTest, ParsesEmptyLhsAndWhitespace) {
  Schema schema = Schema::Create({"a", "b"}).value();
  StatusOr<FunctionalDependency> fd = ParseFd(" -> b", schema);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(fd->lhs.empty());
  EXPECT_EQ(fd->rhs, 1);
  StatusOr<FunctionalDependency> spaced = ParseFd(" a -> b ", schema);
  ASSERT_TRUE(spaced.ok());
  EXPECT_EQ(spaced->lhs, AttributeSet::Singleton(0));
}

TEST(CliParseFdTest, RejectsBadInput) {
  Schema schema = Schema::Create({"a", "b"}).value();
  EXPECT_FALSE(ParseFd("a,b", schema).ok());          // no arrow
  EXPECT_FALSE(ParseFd("zzz->b", schema).ok());       // unknown lhs
  EXPECT_FALSE(ParseFd("a->zzz", schema).ok());       // unknown rhs
  EXPECT_FALSE(ParseFd("a,b->b", schema).ok());       // trivial
}

TEST(CliJsonTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape("plain"), "plain");
}

TEST(CliTest, HelpPrintsUsage) {
  CliResult result = RunCli({"help"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("usage: tane"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  CliResult result = RunCli({"frobnicate"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, MissingCommandFails) {
  CliResult result = RunCli({});
  EXPECT_EQ(result.code, 2);
}

TEST(CliTest, DiscoverTextOutput) {
  const std::string path = WriteFigure1Csv();
  CliResult result = RunCli({"discover", path});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("6 minimal dependencies"), std::string::npos)
      << result.out;
  EXPECT_NE(result.out.find("{B,C} -> A"), std::string::npos);
  EXPECT_NE(result.out.find("key: {A,D}"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, DiscoverJsonOutput) {
  const std::string path = WriteFigure1Csv();
  CliResult result = RunCli({"discover", path, "--format=json"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("\"num_fds\": 6"), std::string::npos);
  EXPECT_NE(result.out.find("\"rhs\": \"A\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, DiscoverCsvOutputAndStats) {
  const std::string path = WriteFigure1Csv();
  CliResult result = RunCli({"discover", path, "--format=csv", "--stats"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("lhs,rhs,g3_error"), std::string::npos);
  EXPECT_NE(result.out.find("\"B;C\",A,0"), std::string::npos);
  EXPECT_NE(result.out.find("# levels="), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, DiscoverWithEpsilonAndMaxLhs) {
  const std::string path = WriteFigure1Csv();
  CliResult limited = RunCli({"discover", path, "--max-lhs=1"});
  EXPECT_EQ(limited.code, 0);
  EXPECT_NE(limited.out.find("0 minimal dependencies"), std::string::npos);
  CliResult approx = RunCli({"discover", path, "--epsilon=0.375"});
  EXPECT_EQ(approx.code, 0);
  EXPECT_NE(approx.out.find("(g3="), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, DiscoverDiskMode) {
  const std::string path = WriteFigure1Csv();
  CliResult result = RunCli({"discover", path, "--disk"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("6 minimal dependencies"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, DiscoverRejectsBadFlags) {
  const std::string path = WriteFigure1Csv();
  EXPECT_EQ(RunCli({"discover", path, "--epsilon=banana"}).code, 2);
  EXPECT_EQ(RunCli({"discover", path, "--format=xml"}).code, 2);
  EXPECT_EQ(RunCli({"discover", path, "--delimiter=ab"}).code, 2);
  EXPECT_EQ(RunCli({"discover", path, "--storage=floppy"}).code, 2);
  EXPECT_EQ(RunCli({"discover", path, "--deadline-ms=-1"}).code, 2);
  EXPECT_EQ(RunCli({"discover", path, "--memory-budget-mb=-1"}).code, 2);
  // Typo'd flags must fail loudly, not silently run without the limit.
  EXPECT_EQ(RunCli({"discover", path, "--memory-budget-md=64"}).code, 2);
  EXPECT_NE(RunCli({"discover", path, "--no-such-flag"})
                .err.find("unknown flag --no-such-flag"),
            std::string::npos);
  EXPECT_EQ(RunCli({"discover", "/does/not/exist.csv"}).code, 5);
  EXPECT_EQ(RunCli({"discover"}).code, 2);
  std::remove(path.c_str());
}

TEST(CliTest, ExitCodesAreDistinctPerStatusCode) {
  EXPECT_EQ(ExitCodeForStatus(Status::OK()), 0);
  EXPECT_EQ(ExitCodeForStatus(Status::InvalidArgument("x")), 2);
  EXPECT_EQ(ExitCodeForStatus(Status::NotFound("x")), 3);
  EXPECT_EQ(ExitCodeForStatus(Status::OutOfRange("x")), 4);
  EXPECT_EQ(ExitCodeForStatus(Status::IoError("x")), 5);
  EXPECT_EQ(ExitCodeForStatus(Status::FailedPrecondition("x")), 6);
  EXPECT_EQ(ExitCodeForStatus(Status::ResourceExhausted("x")), 7);
  EXPECT_EQ(ExitCodeForStatus(Status::Unimplemented("x")), 8);
  EXPECT_EQ(ExitCodeForStatus(Status::Internal("x")), 9);
}

TEST(CliTest, ErrorsGoToStderrNotStdout) {
  CliResult result = RunCli({"discover", "/does/not/exist.csv"});
  EXPECT_EQ(result.code, 5);
  EXPECT_TRUE(result.out.empty()) << result.out;
  EXPECT_NE(result.err.find("error:"), std::string::npos);
  EXPECT_NE(result.err.find("cannot open file"), std::string::npos);
}

TEST(CliTest, DiscoverStorageAutoAndBudget) {
  const std::string path = WriteFigure1Csv();
  CliResult explicit_auto = RunCli({"discover", path, "--storage=auto"});
  EXPECT_EQ(explicit_auto.code, 0) << explicit_auto.err;
  EXPECT_NE(explicit_auto.out.find("6 minimal dependencies"),
            std::string::npos);
  // A budget alone selects auto storage; a tiny dataset stays below any
  // whole-megabyte budget, so the run completes without spilling.
  CliResult budgeted =
      RunCli({"discover", path, "--memory-budget-mb=64", "--stats"});
  EXPECT_EQ(budgeted.code, 0) << budgeted.err;
  EXPECT_NE(budgeted.out.find("6 minimal dependencies"), std::string::npos);
  EXPECT_NE(budgeted.out.find("degraded_to_disk=0"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, DiscoverDeadlineExpiredPrintsPartialResult) {
  const std::string path = WriteFigure1Csv();
  // An already-expired deadline still completes level 1 before the first
  // boundary check, so the run reports a partial (not failed) result.
  CliResult result =
      RunCli({"discover", path, "--deadline-ms=1", "--format=json"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("\"completion\": "), std::string::npos);
  CliResult text = RunCli({"discover", path, "--deadline-ms=1"});
  EXPECT_EQ(text.code, 0);
  if (text.err.find("partial result") != std::string::npos) {
    EXPECT_NE(text.out.find("# partial result:"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(CliTest, KeysCommand) {
  const std::string path = WriteFigure1Csv();
  CliResult result = RunCli({"keys", path});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("2 minimal keys"), std::string::npos);
  EXPECT_NE(result.out.find("{A,D}"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, CheckCommand) {
  const std::string path = WriteFigure1Csv();
  CliResult exact = RunCli({"check", path, "--fd=B,C->A"});
  EXPECT_EQ(exact.code, 0) << exact.err;
  EXPECT_NE(exact.out.find("holds exactly"), std::string::npos);
  CliResult approx = RunCli({"check", path, "--fd=A->B"});
  EXPECT_EQ(approx.code, 0);
  EXPECT_NE(approx.out.find("0.375"), std::string::npos);
  EXPECT_EQ(RunCli({"check", path}).code, 2);  // missing --fd
  std::remove(path.c_str());
}

TEST(CliTest, ViolationsCommand) {
  const std::string path = WriteFigure1Csv();
  CliResult result = RunCli({"violations", path, "--fd=A->B", "--limit=2"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("3 exceptional rows"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, NormalizeCommand) {
  const std::string path = WriteFigure1Csv();
  CliResult result = RunCli({"normalize", path});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("# minimal cover"), std::string::npos);
  EXPECT_NE(result.out.find("# candidate keys"), std::string::npos);
  EXPECT_NE(result.out.find("# proposed decomposition"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, ProfileCommand) {
  const std::string path = WriteFigure1Csv();
  CliResult result = RunCli({"profile", path});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("8 rows, 4 columns"), std::string::npos);
  EXPECT_NE(result.out.find("distinct"), std::string::npos);
  EXPECT_NE(result.out.find("entropy"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, RulesCommand) {
  const std::string path = ::testing::TempDir() + "/tane_cli_rules.csv";
  {
    std::ofstream out(path);
    out << "city,country\nparis,fr\nparis,fr\nparis,fr\nberlin,de\n"
           "berlin,de\nrome,it\n";
  }
  CliResult result = RunCli({"rules", path, "--min-support=0.4",
                             "--min-confidence=0.9"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("city=paris => country=fr"), std::string::npos)
      << result.out;
  EXPECT_EQ(RunCli({"rules", path, "--min-support=2"}).code, 2);
  std::remove(path.c_str());
}

TEST(CliTest, GenerateCommand) {
  CliResult result =
      RunCli({"generate", "wbc", "--rows=50", "--seed=7", "--copies=2"});
  EXPECT_EQ(result.code, 0) << result.err;
  // Header plus 100 data rows.
  int lines = 0;
  for (char ch : result.out) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 101);
  EXPECT_NE(result.out.find("id,score0"), std::string::npos);
  EXPECT_EQ(RunCli({"generate", "nope"}).code, 3);
  EXPECT_EQ(RunCli({"generate"}).code, 2);
}

TEST(CliTest, NoHeaderOption) {
  const std::string path = ::testing::TempDir() + "/tane_cli_nohdr.csv";
  {
    std::ofstream out(path);
    out << "1,x\n2,y\n1,x\n";
  }
  CliResult result = RunCli({"discover", path, "--no-header"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("col0"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cli
}  // namespace tane
