#include "relation/relation.h"

#include "gtest/gtest.h"
#include "relation/relation_builder.h"
#include "tests/test_util.h"

namespace tane {
namespace {

using testing_util::MakeRelation;

TEST(RelationBuilderTest, EncodesStringsToDenseCodes) {
  Relation relation = MakeRelation(
      {{"x", "1"}, {"y", "1"}, {"x", "2"}}, 2);
  EXPECT_EQ(relation.num_rows(), 3);
  EXPECT_EQ(relation.num_columns(), 2);
  // First occurrence order: "x" -> 0, "y" -> 1.
  EXPECT_EQ(relation.code(0, 0), 0);
  EXPECT_EQ(relation.code(1, 0), 1);
  EXPECT_EQ(relation.code(2, 0), 0);
  EXPECT_EQ(relation.column(0).cardinality(), 2);
  EXPECT_EQ(relation.column(1).cardinality(), 2);
}

TEST(RelationBuilderTest, ValueRoundTrips) {
  Relation relation = MakeRelation({{"hello", "1"}, {"world", "2"}}, 2);
  EXPECT_EQ(relation.value(0, 0), "hello");
  EXPECT_EQ(relation.value(1, 0), "world");
  EXPECT_EQ(relation.value(1, 1), "2");
}

TEST(RelationBuilderTest, AgreesMatchesValueEquality) {
  Relation relation = MakeRelation({{"a"}, {"a"}, {"b"}}, 1);
  EXPECT_TRUE(relation.Agrees(0, 1, 0));
  EXPECT_FALSE(relation.Agrees(0, 2, 0));
}

TEST(RelationBuilderTest, RejectsWrongArity) {
  RelationBuilder builder(Schema::CreateUnnamed(2).value());
  EXPECT_FALSE(builder.AddRow(std::vector<std::string>{"only-one"}).ok());
  EXPECT_TRUE(builder.AddRow(std::vector<std::string>{"a", "b"}).ok());
}

TEST(RelationBuilderTest, AddEncodedRowExtendsDictionary) {
  RelationBuilder builder(Schema::CreateUnnamed(2).value());
  ASSERT_TRUE(builder.AddEncodedRow({3, 0}).ok());
  ASSERT_TRUE(builder.AddEncodedRow({1, 1}).ok());
  StatusOr<Relation> relation = std::move(builder).Build();
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->column(0).cardinality(), 4);  // codes 0..3 synthesized
  EXPECT_EQ(relation->code(0, 0), 3);
  EXPECT_EQ(relation->value(0, 0), "v3");
}

TEST(RelationBuilderTest, RejectsNegativeCode) {
  RelationBuilder builder(Schema::CreateUnnamed(1).value());
  EXPECT_FALSE(builder.AddEncodedRow({-1}).ok());
}

TEST(RelationCreateTest, ValidatesColumnCount) {
  Schema schema = Schema::CreateUnnamed(2).value();
  std::vector<Column> columns(1);
  EXPECT_FALSE(Relation::Create(schema, columns, 0).ok());
}

TEST(RelationCreateTest, ValidatesRowCount) {
  Schema schema = Schema::CreateUnnamed(1).value();
  Column column;
  column.codes = {0, 0};
  column.dictionary = {"a"};
  EXPECT_FALSE(Relation::Create(schema, {column}, 3).ok());
  EXPECT_TRUE(Relation::Create(schema, {column}, 2).ok());
}

TEST(RelationCreateTest, ValidatesCodeRange) {
  Schema schema = Schema::CreateUnnamed(1).value();
  Column column;
  column.codes = {0, 5};
  column.dictionary = {"a"};
  EXPECT_FALSE(Relation::Create(schema, {column}, 2).ok());
}

TEST(RelationTest, EmptyRelation) {
  Relation relation = MakeRelation({}, 3);
  EXPECT_EQ(relation.num_rows(), 0);
  EXPECT_EQ(relation.num_columns(), 3);
  EXPECT_EQ(relation.column(0).cardinality(), 0);
}

TEST(RelationTest, EstimatedBytesGrowsWithData) {
  Relation small = MakeRelation({{"a"}}, 1);
  Relation large = MakeRelation(
      {{"aaaaaaaaaaaaaaaa"}, {"bbbbbbbbbbbbbbbb"}, {"cccccccccccccccc"}}, 1);
  EXPECT_GT(large.EstimatedBytes(), small.EstimatedBytes());
}

}  // namespace
}  // namespace tane
