#include "util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace tane {
namespace {

TEST(ThreadPoolTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  pool.ParallelFor(kCount, [&](int, int64_t index) {
    visits[index].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, WorkerIdsStayInRange) {
  ThreadPool pool(3);
  std::atomic<bool> out_of_range{false};
  pool.ParallelFor(500, [&](int worker, int64_t) {
    if (worker < 0 || worker >= 3) out_of_range.store(true);
  });
  EXPECT_FALSE(out_of_range.load());
}

TEST(ThreadPoolTest, SingleThreadRunsEverythingOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  bool wrong_worker = false;
  int64_t sum = 0;
  pool.ParallelFor(100, [&](int worker, int64_t index) {
    // Safe without synchronization: the serial fast path runs inline.
    if (worker != 0) wrong_worker = true;
    sum += index;
  });
  EXPECT_FALSE(wrong_worker);
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(64, [&](int, int64_t index) {
      sum.fetch_add(index, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 63 * 64 / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, ZeroAndNegativeCountsAreNoops) {
  ThreadPool pool(2);
  int calls = 0;
  const ParallelForStats zero =
      pool.ParallelFor(0, [&](int, int64_t) { ++calls; });
  const ParallelForStats negative =
      pool.ParallelFor(-5, [&](int, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(zero.wall_seconds, 0.0);
  EXPECT_EQ(negative.busy_seconds, 0.0);
}

TEST(ThreadPoolTest, StatsAreNonNegativeAndBusyCoversWork) {
  ThreadPool pool(2);
  std::atomic<int64_t> sink{0};
  const ParallelForStats stats = pool.ParallelFor(2000, [&](int, int64_t i) {
    sink.fetch_add(i % 7, std::memory_order_relaxed);
  });
  EXPECT_GE(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.busy_seconds, 0.0);
}

TEST(ThreadPoolTest, MoreThreadsThanWork) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.ParallelFor(3, [&](int, int64_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 3);
}

}  // namespace
}  // namespace tane
