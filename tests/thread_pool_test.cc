#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace tane {
namespace {

TEST(WorkStealingDequeTest, OwnerPopsInLifoOrder) {
  WorkStealingDeque deque;
  for (int64_t i = 1; i <= 3; ++i) deque.Push(i);
  int64_t item = 0;
  ASSERT_TRUE(deque.Pop(&item));
  EXPECT_EQ(item, 3);
  ASSERT_TRUE(deque.Pop(&item));
  EXPECT_EQ(item, 2);
  ASSERT_TRUE(deque.Pop(&item));
  EXPECT_EQ(item, 1);
  EXPECT_FALSE(deque.Pop(&item));
}

TEST(WorkStealingDequeTest, ThievesStealInFifoOrder) {
  WorkStealingDeque deque;
  for (int64_t i = 1; i <= 3; ++i) deque.Push(i);
  int64_t item = 0;
  ASSERT_TRUE(deque.Steal(&item));
  EXPECT_EQ(item, 1);
  ASSERT_TRUE(deque.Steal(&item));
  EXPECT_EQ(item, 2);
  ASSERT_TRUE(deque.Steal(&item));
  EXPECT_EQ(item, 3);
  EXPECT_FALSE(deque.Steal(&item));
}

TEST(WorkStealingDequeTest, GrowsPastCapacityHint) {
  WorkStealingDeque deque(/*capacity_hint=*/2);
  constexpr int64_t kCount = 1000;
  for (int64_t i = 0; i < kCount; ++i) deque.Push(i);
  EXPECT_EQ(deque.size(), kCount);
  // LIFO pops return the full range despite multiple ring growths.
  for (int64_t expected = kCount - 1; expected >= 0; --expected) {
    int64_t item = -1;
    ASSERT_TRUE(deque.Pop(&item));
    EXPECT_EQ(item, expected);
  }
}

TEST(WorkStealingDequeTest, ResetEmptiesAndStaysUsable) {
  WorkStealingDeque deque(/*capacity_hint=*/4);
  for (int64_t i = 0; i < 100; ++i) deque.Push(i);
  deque.Reset(/*capacity_hint=*/8);
  int64_t item = 0;
  EXPECT_FALSE(deque.Pop(&item));
  EXPECT_EQ(deque.size(), 0);
  deque.Push(42);
  ASSERT_TRUE(deque.Pop(&item));
  EXPECT_EQ(item, 42);
}

// The steal-vs-pop race: an owner pushing and popping at the bottom while
// several thieves hammer the top. Every item must be claimed exactly once,
// across growth, the single-item Pop/Steal race, and lost-CAS retries. Run
// under the tsan preset this doubles as the memory-model check for the
// seq_cst Chase-Lev variant.
TEST(WorkStealingDequeTest, StealVsPopStressClaimsEveryItemExactlyOnce) {
  constexpr int64_t kItems = 20000;
  constexpr int kThieves = 3;
  WorkStealingDeque deque(/*capacity_hint=*/2);  // force growth mid-race
  std::vector<std::atomic<int>> claims(kItems);
  std::atomic<bool> owner_done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      int64_t item = -1;
      // Keep sweeping until the owner is done AND the deque reads empty:
      // Steal returning false can be a lost race, not exhaustion.
      while (!owner_done.load(std::memory_order_acquire) ||
             deque.size() > 0) {
        if (deque.Steal(&item)) {
          claims[item].fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
      while (deque.Steal(&item)) {
        claims[item].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The owner alternates burst-pushes with pops, like a worker executing
  // its own tasks while peers steal the oldest ones.
  int64_t next = 0;
  int64_t item = -1;
  while (next < kItems) {
    const int64_t burst = std::min<int64_t>(64, kItems - next);
    for (int64_t i = 0; i < burst; ++i) deque.Push(next++);
    for (int64_t i = 0; i < burst / 2; ++i) {
      if (deque.Pop(&item)) {
        claims[item].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  while (deque.Pop(&item)) {
    claims[item].fetch_add(1, std::memory_order_relaxed);
  }
  owner_done.store(true, std::memory_order_release);
  for (std::thread& thief : thieves) thief.join();

  for (int64_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(claims[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPoolTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  pool.ParallelFor(kCount, [&](int, int64_t index) {
    visits[index].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, WorkerIdsStayInRange) {
  ThreadPool pool(3);
  std::atomic<bool> out_of_range{false};
  pool.ParallelFor(500, [&](int worker, int64_t) {
    if (worker < 0 || worker >= 3) out_of_range.store(true);
  });
  EXPECT_FALSE(out_of_range.load());
}

TEST(ThreadPoolTest, SingleThreadRunsEverythingOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  bool wrong_worker = false;
  int64_t sum = 0;
  pool.ParallelFor(100, [&](int worker, int64_t index) {
    // Safe without synchronization: the serial fast path runs inline.
    if (worker != 0) wrong_worker = true;
    sum += index;
  });
  EXPECT_FALSE(wrong_worker);
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(64, [&](int, int64_t index) {
      sum.fetch_add(index, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 63 * 64 / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, ZeroAndNegativeCountsAreNoops) {
  ThreadPool pool(2);
  int calls = 0;
  const ParallelForStats zero =
      pool.ParallelFor(0, [&](int, int64_t) { ++calls; });
  const ParallelForStats negative =
      pool.ParallelFor(-5, [&](int, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(zero.wall_seconds, 0.0);
  EXPECT_EQ(negative.busy_seconds, 0.0);
}

TEST(ThreadPoolTest, StatsAreNonNegativeAndBusyCoversWork) {
  ThreadPool pool(2);
  std::atomic<int64_t> sink{0};
  const ParallelForStats stats = pool.ParallelFor(2000, [&](int, int64_t i) {
    sink.fetch_add(i % 7, std::memory_order_relaxed);
  });
  EXPECT_GE(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.busy_seconds, 0.0);
}

TEST(ThreadPoolTest, MoreThreadsThanWork) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.ParallelFor(3, [&](int, int64_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 3);
}

}  // namespace
}  // namespace tane
