// Runtime behavior of the annotated synchronization wrappers in
// util/mutex.h. The static side of the contract (TANE_GUARDED_BY etc.) is
// checked by the Clang `analysis` preset and the negative-compile cases in
// tests/negative_compile/; these tests verify the wrappers still behave
// like the std primitives they delegate to, under any compiler.

#include "util/mutex.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace tane {
namespace {

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIncrementsPerThread);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsWhenFree) {
  Mutex mu;
  mu.Lock();

  // Probe from another thread: TryLock on the same thread that holds a
  // std::mutex is undefined behavior, so the contention check must cross
  // threads.
  std::atomic<bool> acquired{true};
  std::thread probe([&] { acquired = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(acquired.load());

  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SharedMutexTest, WriterExcludesWriters) {
  SharedMutex mu;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        WriterMutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  ReaderMutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIncrementsPerThread);
}

TEST(SharedMutexTest, ReadersShareTheLock) {
  SharedMutex mu;
  mu.ReaderLock();

  // A second reader must get in while the first shared lock is held; run it
  // on another thread and require it to finish, which it cannot do if
  // ReaderLock were exclusive.
  std::atomic<bool> second_reader_done{false};
  std::thread reader([&] {
    ReaderMutexLock lock(&mu);
    second_reader_done = true;
  });
  reader.join();
  EXPECT_TRUE(second_reader_done.load());

  mu.ReaderUnlock();
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;

  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    observed = true;
  });

  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, WaitUntilReportsTimeout) {
  Mutex mu;
  CondVar cv;

  MutexLock lock(&mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  // Nobody notifies: the wait must eventually report a timeout. Spurious
  // wakeups may return false first, so loop until the deadline verdict.
  bool timed_out = false;
  while (!timed_out && std::chrono::steady_clock::now() < deadline) {
    timed_out = cv.WaitUntil(&mu, deadline);
  }
  EXPECT_TRUE(timed_out || std::chrono::steady_clock::now() >= deadline);
}

TEST(CondVarTest, WaitUntilReturnsFalseWhenNotified) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::atomic<bool> saw_notify{false};

  std::thread waiter([&] {
    MutexLock lock(&mu);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!ready) {
      if (cv.WaitUntil(&mu, deadline)) break;  // timeout: give up
    }
    saw_notify = ready;
  });

  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_TRUE(saw_notify.load());
}

}  // namespace
}  // namespace tane
