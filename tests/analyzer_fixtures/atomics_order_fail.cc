// Fixture: base atomics-contract checks, failing variants.
//   1. load with a defaulted (silent seq_cst) order
//   2. compare_exchange naming only the success order
//   3. operator-form access to a declared atomic (implicit seq_cst)
// analyzer-expect: atomics-contract=3
#include <atomic>

class Counter {
 public:
  int Read() {
    return hits_.load();  // missing memory_order
  }

  bool Latch() {
    int expected = 0;
    // single-order CAS: the failure order is silently derived
    return hits_.compare_exchange_strong(expected, 1,
                                         std::memory_order_acq_rel);
  }

  void Bump() {
    hits_++;  // operator form: seq_cst by definition
  }

 private:
  std::atomic<int> hits_{0};
};
