// Fixture: single-writer protocol — a cross-thread reader (a function
// that stores no atomic) taking the published word relaxed misses the
// writes that preceded publication.
// analyzer-expect: atomics-contract=1
// tane-atomics: single-writer(published_)
#include <atomic>
#include <cstdint>

class Stats {
 public:
  void Publish(int64_t v) {
    payload_.store(v, std::memory_order_relaxed);
    published_.store(1, std::memory_order_release);
  }

  int64_t ReadPublished() {
    if (published_.load(std::memory_order_relaxed) == 0) return 0;  // weak
    return payload_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> published_{0};
  std::atomic<int64_t> payload_{0};
};
