// Fixture: the full seqlock recipe. acq_rel begin-bump, release end-bump,
// acquire first read, acquire fence between the payload loads and the
// relaxed re-read.
// analyzer-expect: clean
// tane-atomics: seqlock(seq_)
#include <atomic>
#include <cstdint>

class Cell {
 public:
  void Write(int64_t v) {
    seq_.fetch_add(1, std::memory_order_acq_rel);
    value_.store(v, std::memory_order_relaxed);
    seq_.fetch_add(1, std::memory_order_release);
  }

  int64_t Read() {
    for (;;) {
      const uint64_t before = seq_.load(std::memory_order_acquire);
      const int64_t v = value_.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == before) return v;
    }
  }

 private:
  std::atomic<uint64_t> seq_{0};
  std::atomic<int64_t> value_{0};
};
