// Fixture: chase-lev demands seq_cst on every deque-word op; a relaxed
// bottom_ load on the hot Pop path is exactly the "clever" relaxation the
// protocol forbids (this repo runs the TSan-verifiable seq_cst variant).
// analyzer-expect: atomics-contract=1
// tane-atomics: chase-lev(top_,bottom_)
#include <atomic>
#include <cstdint>

class Deque {
 public:
  void Push(int64_t) {
    bottom_.store(bottom_.load(std::memory_order_seq_cst) + 1,
                  std::memory_order_seq_cst);
  }

  bool Pop() {
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;  // weak
    const int64_t t = top_.load(std::memory_order_seq_cst);
    return t < b;
  }

 private:
  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
};
