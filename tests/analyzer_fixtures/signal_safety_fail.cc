// Fixture: signal-safety violations inside a registered handler's call
// graph.
//   1. snprintf on the signal path (glibc locale machinery may allocate)
//   2. malloc via a helper the walk must follow (transitive edge)
//   3. a non-constinit function-local static (magic-static guard lock)
//   4. `new` on the signal path
// analyzer-expect: signal-safety=4
#include <csignal>
#include <cstdio>
#include <cstdlib>

namespace {

int* FormatCrash(int signo) {
  char buf[64];
  snprintf(buf, sizeof(buf), "sig %d", signo);        // stdio: unsafe
  return static_cast<int*>(malloc(sizeof(int)));      // allocates
}

const char* CrashLabel() {
  static const char* label = "crash";  // guarded magic static
  return label;
}

void CrashHandler(int signo) {
  FormatCrash(signo);
  CrashLabel();
  int* leak = new int(signo);  // allocates on the signal path
  (void)leak;
}

}  // namespace

void InstallCrashHandler() {
  signal(SIGSEGV, &CrashHandler);
}
