// Fixture: seqlock protocol violations.
//   1. writer's begin-bump is release (payload stores can hoist above it)
//   2. one reader loads the sequence word only once (torn reads pass)
//   3. another reader re-reads but has no acquire fence before the
//      re-read (the acquire on the re-read does not order prior loads)
// analyzer-expect: atomics-contract=3
// tane-atomics: seqlock(seq_)
#include <atomic>
#include <cstdint>

class Cell {
 public:
  void Write(int64_t v) {
    seq_.fetch_add(1, std::memory_order_release);  // begin-bump too weak
    value_.store(v, std::memory_order_relaxed);
    seq_.fetch_add(1, std::memory_order_release);
  }

  int64_t ReadOnce() {
    seq_.load(std::memory_order_acquire);  // never re-read
    return value_.load(std::memory_order_relaxed);
  }

  int64_t ReadNoFence() {
    for (;;) {
      const uint64_t before = seq_.load(std::memory_order_acquire);
      const int64_t v = value_.load(std::memory_order_relaxed);
      if (seq_.load(std::memory_order_acquire) == before) return v;
    }
  }

 private:
  std::atomic<uint64_t> seq_{0};
  std::atomic<int64_t> value_{0};
};
