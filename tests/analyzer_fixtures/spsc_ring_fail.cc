// Fixture: spsc-ring protocol violations.
//   1. producer publishes the head index with a relaxed store (slots
//      written before it are not published with it)
//   2. consumer reads the producer's head index relaxed (only the owner
//      of a word may re-read it relaxed)
// analyzer-expect: atomics-contract=2
// tane-atomics: spsc-ring(head_,tail_)
#include <atomic>
#include <cstdint>

class Ring {
 public:
  void Produce(int64_t v) {
    const uint64_t h = head_.load(std::memory_order_relaxed);  // own word
    slot_[h & 7] = v;
    head_.store(h + 1, std::memory_order_relaxed);  // must be release
  }

  bool Consume(int64_t* out) {
    const uint64_t t = tail_.load(std::memory_order_relaxed);  // own word
    const uint64_t h = head_.load(std::memory_order_relaxed);  // other side
    if (t == h) return false;
    *out = slot_[t & 7];
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

 private:
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> tail_{0};
  int64_t slot_[8] = {};
};
