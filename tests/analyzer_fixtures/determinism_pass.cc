// Fixture: the two sanctioned ways through a hash container in an
// output-affecting TU — wash the order out with a visible sort after the
// loop, or waive with the reason the order cannot reach the output.
// analyzer-path: src/core/determinism_fixture.cc
// analyzer-expect: clean
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

namespace tane {

std::vector<std::string> CollectNamesSorted(
    const std::unordered_map<int, std::string>& index) {
  std::vector<std::string> names;
  for (const auto& [id, name] : index) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

int64_t TotalLength(const std::unordered_map<int, std::string>& index) {
  int64_t total = 0;
  // Commutative fold: the visit order cannot reach the sum.
  // tane-analyzer: allow(determinism)
  for (const auto& [id, name] : index) {
    total += static_cast<int64_t>(name.size());
  }
  return total;
}

}  // namespace tane
