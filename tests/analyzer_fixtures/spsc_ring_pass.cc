// Fixture: conforming spsc-ring — each side re-reads its own index
// relaxed, reads the other side's index acquire, and publishes its own
// index with release.
// analyzer-expect: clean
// tane-atomics: spsc-ring(head_,tail_)
#include <atomic>
#include <cstdint>

class Ring {
 public:
  void Produce(int64_t v) {
    const uint64_t h = head_.load(std::memory_order_relaxed);  // own word
    slot_[h & 7] = v;
    head_.store(h + 1, std::memory_order_release);
  }

  bool Consume(int64_t* out) {
    const uint64_t t = tail_.load(std::memory_order_relaxed);  // own word
    const uint64_t h = head_.load(std::memory_order_acquire);
    if (t == h) return false;
    *out = slot_[t & 7];
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

 private:
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> tail_{0};
  int64_t slot_[8] = {};
};
