// Fixture: conforming handle discipline — one function pairs Acquire with
// Release in place, the other carries a waiver naming the releasing owner
// (the accessor-LRU pattern the real tane.cc uses).
// analyzer-path: src/core/tane.cc
// analyzer-expect: clean
#include <cstdint>

class PartitionStore {
 public:
  const int* Acquire(int64_t handle);
  void Release(int64_t handle);
  void ReleaseHandles();
};

int SumFirst(PartitionStore* store, int64_t handle) {
  const int* partition = store->Acquire(handle);
  const int value = partition != nullptr ? *partition : 0;
  store->Release(handle);
  return value;
}

int SumBorrowed(PartitionStore* store, int64_t handle) {
  // Borrowed via the level driver's accessor LRU; released in bulk by
  // ReleaseHandles at the level boundary.
  // tane-analyzer: allow(handle-discipline)
  const int* partition = store->Acquire(handle);
  return partition != nullptr ? *partition : 0;
}
