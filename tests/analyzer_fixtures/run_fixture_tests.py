#!/usr/bin/env python3
"""Fixture tests for tools/tane_analyzer.

Each `*_fail.cc` / `*_pass.cc` fixture in this directory is analyzed in
its own throwaway source tree, and the findings are compared against the
expectations the fixture declares in its header comments:

  // analyzer-path: src/core/tane.cc     where to place the fixture in the
                                         temp tree (default: src/fixture/
                                         <basename>) — the determinism and
                                         handle-discipline rules are scoped
                                         to specific directories/files
  // analyzer-expect: <rule>=<count>     exact finding count for a rule
  // analyzer-expect: clean              zero findings on every rule

Counts are exact in both directions: a missing finding is a regression in
the rule, an extra finding is a false positive in the frontend. Rules not
named by any expectation must report zero.

Run directly (`python3 run_fixture_tests.py`) or via ctest
(`analyzer_fixture_tests`).
"""

import os
import re
import shutil
import sys
import tempfile
import unittest

FIXTURE_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(FIXTURE_DIR))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

from tane_analyzer import driver  # noqa: E402  (path bootstrap above)

EXPECT_RE = re.compile(r"//\s*analyzer-expect:\s*([a-z-]+)(?:=(\d+))?")
PATH_RE = re.compile(r"//\s*analyzer-path:\s*(\S+)")

ALL_RULES = ("atomics-contract", "signal-safety", "determinism",
             "handle-discipline")


def parse_fixture(path):
    """Returns (dest_rel_path, {rule: count}) for one fixture file."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    dest = None
    match = PATH_RE.search(text)
    if match:
        dest = match.group(1)
    expectations = {}
    for rule, count in EXPECT_RE.findall(text):
        if rule == "clean":
            continue  # "clean" == no expectations at all
        if rule not in ALL_RULES:
            raise AssertionError(
                f"{os.path.basename(path)}: unknown rule `{rule}` in "
                "analyzer-expect header")
        expectations[rule] = int(count or 1)
    return dest, expectations


class AnalyzerFixtureTests(unittest.TestCase):
    maxDiff = None

    def analyze_fixture(self, name):
        src = os.path.join(FIXTURE_DIR, name)
        dest_rel, expectations = parse_fixture(src)
        if dest_rel is None:
            dest_rel = f"src/fixture/{name}"
        tree = tempfile.mkdtemp(prefix="tane_analyzer_fixture_")
        try:
            dest = os.path.join(tree, dest_rel)
            os.makedirs(os.path.dirname(dest), exist_ok=True)
            shutil.copyfile(src, dest)
            findings, _stats = driver.analyze_tree(tree, frontend="micro")
        finally:
            shutil.rmtree(tree, ignore_errors=True)
        counts = {rule: 0 for rule in ALL_RULES}
        for finding in findings:
            counts[finding.rule] += 1
        rendered = "\n".join(str(f) for f in findings)
        for rule in ALL_RULES:
            self.assertEqual(
                counts[rule], expectations.get(rule, 0),
                f"{name}: rule `{rule}` reported {counts[rule]} findings, "
                f"expected {expectations.get(rule, 0)}.\nAll findings:\n"
                f"{rendered or '  (none)'}")

    def test_fixture_inventory_is_paired(self):
        """Every rule family has at least one fail and one pass fixture,
        and every fail fixture has a pass twin."""
        names = sorted(n for n in os.listdir(FIXTURE_DIR)
                       if n.endswith(".cc"))
        fails = {n[:-len("_fail.cc")] for n in names
                 if n.endswith("_fail.cc")}
        passes = {n[:-len("_pass.cc")] for n in names
                  if n.endswith("_pass.cc")}
        self.assertEqual(fails, passes,
                         "fail/pass fixtures must come in pairs")
        self.assertTrue(fails, "no fixtures found")

    def test_fail_fixtures_expect_findings(self):
        """A `_fail.cc` fixture that expects zero findings is a typo."""
        for name in sorted(os.listdir(FIXTURE_DIR)):
            if not name.endswith("_fail.cc"):
                continue
            _dest, expectations = parse_fixture(
                os.path.join(FIXTURE_DIR, name))
            self.assertTrue(
                expectations,
                f"{name}: fail fixture declares no analyzer-expect counts")


def _add_fixture_cases():
    for name in sorted(os.listdir(FIXTURE_DIR)):
        if not name.endswith(".cc"):
            continue

        def case(self, name=name):
            self.analyze_fixture(name)

        setattr(AnalyzerFixtureTests,
                f"test_{name[:-3]}", case)


_add_fixture_cases()


if __name__ == "__main__":
    unittest.main(verbosity=2)
