// Fixture: conforming single-writer — the writer side relaxes freely
// (one thread cannot race itself), the cross-thread reader acquires the
// published word.
// analyzer-expect: clean
// tane-atomics: single-writer(published_)
#include <atomic>
#include <cstdint>

class Stats {
 public:
  void Publish(int64_t v) {
    payload_.store(v, std::memory_order_relaxed);
    published_.store(1, std::memory_order_release);
  }

  int64_t ReadPublished() {
    if (published_.load(std::memory_order_acquire) == 0) return 0;
    return payload_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> published_{0};
  std::atomic<int64_t> payload_{0};
};
