// Fixture: hash-order iteration in an output-affecting TU. The range-for
// over the unordered_map appends straight to the result vector with no
// re-sort, so the output order is the hash seed's whim.
// analyzer-path: src/core/determinism_fixture.cc
// analyzer-expect: determinism=1
#include <string>
#include <unordered_map>
#include <vector>

namespace tane {

std::vector<std::string> CollectNames(
    const std::unordered_map<int, std::string>& index) {
  std::vector<std::string> names;
  for (const auto& [id, name] : index) {
    names.push_back(name);
  }
  return names;
}

}  // namespace tane
