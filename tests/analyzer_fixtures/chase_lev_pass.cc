// Fixture: conforming chase-lev (all seq_cst) plus one deliberately
// relaxed quiescent op carrying a waiver — exercising the waiver
// mechanism inside a protocol check.
// analyzer-expect: clean
// tane-atomics: chase-lev(top_,bottom_)
#include <atomic>
#include <cstdint>

class Deque {
 public:
  void Push(int64_t) {
    bottom_.store(bottom_.load(std::memory_order_seq_cst) + 1,
                  std::memory_order_seq_cst);
  }

  bool Steal() {
    int64_t t = top_.load(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    return top_.compare_exchange_strong(t, t + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_seq_cst);
  }

  void Reset() {
    // Quiescent by contract: no concurrent Push/Steal during Reset.
    // tane-analyzer: allow(atomics-contract)
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(0, std::memory_order_seq_cst);
  }

 private:
  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
};
