// Fixture: a function in the scoped TU (mapped to src/core/tane.cc by the
// analyzer-path header) that acquires a partition handle and never
// releases it — the forgot-to-release-entirely class the rule exists for.
// analyzer-path: src/core/tane.cc
// analyzer-expect: handle-discipline=1
#include <cstdint>

class PartitionStore {
 public:
  const int* Acquire(int64_t handle);
  void Release(int64_t handle);
};

int SumFirst(PartitionStore* store, int64_t handle) {
  const int* partition = store->Acquire(handle);
  return partition != nullptr ? *partition : 0;  // handle leaks
}
