// Fixture: base atomics-contract checks, conforming variants. Every op
// names its order (seq_cst included — named is the contract, not weak),
// the CAS spells both orders, and no operator forms appear.
// analyzer-expect: clean
#include <atomic>

class Counter {
 public:
  int Read() {
    return hits_.load(std::memory_order_acquire);
  }

  bool Latch() {
    int expected = 0;
    return hits_.compare_exchange_strong(expected, 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

  void Bump() {
    hits_.fetch_add(1, std::memory_order_seq_cst);
  }

 private:
  std::atomic<int> hits_{0};
};
