// Fixture: a conforming handler — raw syscall wrappers, mem routines, a
// constinit static, and lock-free atomics (exempt by construction: they
// are the one async-signal-safe synchronization tool).
// analyzer-expect: clean
#include <atomic>
#include <csignal>
#include <cstring>
#include <unistd.h>

namespace {

std::atomic<int> g_last_signal{0};

const char* CrashLabel() {
  static constinit const char* label = "crash";  // constant-initialized
  return label;
}

void CrashHandler(int signo) {
  g_last_signal.store(signo, std::memory_order_relaxed);
  char buf[8];
  std::memset(buf, 0, sizeof(buf));
  std::memcpy(buf, CrashLabel(), 5);
  write(2, buf, std::strlen(buf));
  raise(signo);
}

}  // namespace

void InstallCrashHandler() {
  signal(SIGSEGV, &CrashHandler);
}
