#include "analysis/keys.h"

#include "core/tane.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace tane {
namespace {

TEST(CandidateKeysTest, SimpleKeyFromChain) {
  // 0 -> 1, 0 -> 2 over R = {0,1,2}: the only key is {0}.
  std::vector<FunctionalDependency> fds = {
      {AttributeSet::Of({0}), 1, 0.0}, {AttributeSet::Of({0}), 2, 0.0}};
  std::vector<AttributeSet> keys = CandidateKeys(3, fds);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], AttributeSet::Of({0}));
}

TEST(CandidateKeysTest, NoFdsMeansFullSetIsKey) {
  std::vector<AttributeSet> keys = CandidateKeys(3, {});
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], AttributeSet::FullSet(3));
}

TEST(CandidateKeysTest, MultipleKeysCyclicFds) {
  // 0 -> 1 and 1 -> 0, plus both determine 2: keys {0} and {1}.
  std::vector<FunctionalDependency> fds = {
      {AttributeSet::Of({0}), 1, 0.0},
      {AttributeSet::Of({1}), 0, 0.0},
      {AttributeSet::Of({0}), 2, 0.0}};
  std::vector<AttributeSet> keys = CandidateKeys(3, fds);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], AttributeSet::Of({0}));
  EXPECT_EQ(keys[1], AttributeSet::Of({1}));
}

TEST(CandidateKeysTest, CompositeKeys) {
  // {0,1} -> 2 over {0,1,2}: key is {0,1}.
  std::vector<FunctionalDependency> fds = {{AttributeSet::Of({0, 1}), 2, 0.0}};
  std::vector<AttributeSet> keys = CandidateKeys(3, fds);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], AttributeSet::Of({0, 1}));
}

TEST(CandidateKeysTest, MatchesTaneKeysOnFigure1) {
  // The logical keys derived from TANE's discovered FDs must coincide with
  // the instance keys TANE found via key pruning.
  StatusOr<DiscoveryResult> result =
      Tane::Discover(testing_util::PaperFigure1Relation());
  ASSERT_TRUE(result.ok());
  std::vector<AttributeSet> logical_keys = CandidateKeys(4, result->fds);
  EXPECT_EQ(logical_keys, result->keys);
}

TEST(CandidateKeysTest, ZeroAttributes) {
  EXPECT_TRUE(CandidateKeys(0, {}).empty());
}

TEST(IsSuperkeyUnderTest, Basics) {
  std::vector<FunctionalDependency> fds = {
      {AttributeSet::Of({0}), 1, 0.0}, {AttributeSet::Of({1}), 2, 0.0}};
  EXPECT_TRUE(IsSuperkeyUnder(AttributeSet::Of({0}), 3, fds));
  EXPECT_TRUE(IsSuperkeyUnder(AttributeSet::Of({0, 2}), 3, fds));
  EXPECT_FALSE(IsSuperkeyUnder(AttributeSet::Of({1}), 3, fds));
  EXPECT_FALSE(IsSuperkeyUnder(AttributeSet::Of({2}), 3, fds));
}

}  // namespace
}  // namespace tane
