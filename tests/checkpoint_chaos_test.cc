// Kill-and-resume chaos harness for the checkpoint subsystem.
//
// Each case spawns the real `tane` binary (TANE_CLI_BINARY, injected by the
// build) against a generated dataset with checkpointing on, arms a kill-mode
// failpoint through the TANE_FAILPOINT_KILL environment variable, and lets
// the child die by SIGKILL in the middle of checkpoint I/O — no destructors,
// no atexit, exactly like an OOM-kill. The parent then reruns with --resume
// and asserts the final output is byte-identical to an uninterrupted run.
// Every kill site is exercised at every occurrence count until the run
// outlives the failpoint, so a torn temp file, a missing fsync, an
// interrupted rename and a crashed unlink-of-older-levels are all proven
// recoverable.

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/run_snapshot.h"
#include "datasets/generators.h"
#include "gtest/gtest.h"
#include "relation/csv.h"
#include "util/failpoint.h"

#ifndef TANE_CLI_BINARY
#define TANE_CLI_BINARY ""
#endif

namespace tane {
namespace {

struct ChildResult {
  bool signaled = false;
  int signal = 0;
  int exit_code = -1;
};

// Runs the CLI binary with `args`, stdout to `stdout_path` (or /dev/null),
// optionally with TANE_FAILPOINT_KILL set. Returns how the child ended.
ChildResult RunCli(const std::vector<std::string>& args,
                   const std::string& stdout_path,
                   const std::string& kill_env = "") {
  const pid_t pid = fork();
  if (pid == 0) {
    const char* out_path =
        stdout_path.empty() ? "/dev/null" : stdout_path.c_str();
    const int out_fd = open(out_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    const int err_fd = open("/dev/null", O_WRONLY);
    if (out_fd < 0 || err_fd < 0) _exit(127);
    dup2(out_fd, STDOUT_FILENO);
    dup2(err_fd, STDERR_FILENO);
    if (!kill_env.empty()) {
      setenv("TANE_FAILPOINT_KILL", kill_env.c_str(), 1);
    } else {
      unsetenv("TANE_FAILPOINT_KILL");
    }
    std::vector<char*> argv;
    std::string binary = TANE_CLI_BINARY;
    argv.push_back(binary.data());
    std::vector<std::string> owned = args;
    for (std::string& arg : owned) argv.push_back(arg.data());
    argv.push_back(nullptr);
    execv(binary.c_str(), argv.data());
    _exit(126);
  }
  ChildResult result;
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  if (WIFSIGNALED(status)) {
    result.signaled = true;
    result.signal = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  }
  return result;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

class CheckpointChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kCompiledIn) {
      GTEST_SKIP() << "failpoints compiled out";
    }
    ASSERT_NE(std::string(TANE_CLI_BINARY), "");
    // Unique per test: ctest runs the cases as parallel processes, and a
    // shared root would let one SetUp wipe another's working files.
    root_ = ::testing::TempDir() + "/tane_chaos_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    ASSERT_TRUE(std::filesystem::create_directories(root_));
    csv_ = root_ + "/data.csv";
    StatusOr<Relation> relation =
        GenerateUniform(/*rows=*/300, /*cols=*/7, /*cardinality=*/3,
                        /*seed=*/23);
    ASSERT_TRUE(relation.ok()) << relation.status().ToString();
    std::ofstream out(csv_);
    WriteCsv(*relation, out);
    ASSERT_TRUE(out.good());
  }

  void TearDown() override {
    if (!root_.empty()) std::filesystem::remove_all(root_);
  }

  std::vector<std::string> DiscoverArgs(const std::string& checkpoint_dir,
                                        bool resume, int threads,
                                        double epsilon) const {
    std::vector<std::string> args = {"discover", csv_, "--format=json",
                                     "--threads=" + std::to_string(threads)};
    if (epsilon > 0) args.push_back("--epsilon=" + std::to_string(epsilon));
    if (!checkpoint_dir.empty()) {
      args.push_back("--checkpoint-dir=" + checkpoint_dir);
      args.push_back("--checkpoint-every-level");
    }
    if (resume) args.push_back("--resume");
    return args;
  }

  // The uninterrupted reference output for this (threads, epsilon) point.
  std::string Uninterrupted(int threads, double epsilon) {
    const std::string path = root_ + "/full.json";
    const ChildResult full =
        RunCli(DiscoverArgs("", false, threads, epsilon), path);
    EXPECT_FALSE(full.signaled);
    EXPECT_EQ(full.exit_code, 0);
    return ReadAll(path);
  }

  std::string root_;
  std::string csv_;
};

TEST_F(CheckpointChaosTest, SigkillAtEveryWriteSiteThenResumeMatches) {
  const std::string expected = Uninterrupted(/*threads=*/1, /*epsilon=*/0);
  const char* kSites[] = {"checkpoint.write_temp", "checkpoint.fsync",
                          "checkpoint.rename", "checkpoint.dir_fsync",
                          "checkpoint.unlink_old"};
  int kills = 0;
  for (const char* site : kSites) {
    // Kill at the 1st, 2nd, ... occurrence of the site until the run
    // finishes without being killed (the site stopped firing).
    for (int skip = 0; skip < 64; ++skip) {
      const std::string dir = root_ + "/ckpt_" + site + std::to_string(skip);
      const ChildResult crashed =
          RunCli(DiscoverArgs(dir, false, 1, 0), "",
                 std::string(site) + ":" + std::to_string(skip));
      if (!crashed.signaled) {
        // Outlived the failpoint: a complete run exits 0 and leaves no
        // snapshots to resume from.
        EXPECT_EQ(crashed.exit_code, 0) << site << " skip=" << skip;
        EXPECT_GT(skip, 0) << site << " never fired";
        break;
      }
      ASSERT_EQ(crashed.signal, SIGKILL);
      ++kills;

      const std::string resumed_path = dir + "_resumed.json";
      const ChildResult resumed =
          RunCli(DiscoverArgs(dir, true, 1, 0), resumed_path);
      EXPECT_FALSE(resumed.signaled);
      ASSERT_EQ(resumed.exit_code, 0) << site << " skip=" << skip;
      EXPECT_EQ(ReadAll(resumed_path), expected)
          << site << " skip=" << skip
          << ": resume after SIGKILL diverged from the uninterrupted run";
    }
  }
  EXPECT_GT(kills, 0) << "no kill site ever fired; harness is vacuous";
}

TEST_F(CheckpointChaosTest, ResumeAfterKillMatchesAcrossThreadsAndEpsilon) {
  for (const double epsilon : {0.0, 0.1}) {
    const std::string expected = Uninterrupted(/*threads=*/1, epsilon);
    // The reference is thread-invariant to begin with.
    EXPECT_EQ(Uninterrupted(/*threads=*/8, epsilon), expected);
    for (const int threads : {1, 8}) {
      const std::string dir =
          root_ + "/ckpt_t" + std::to_string(threads) + "_e" +
          std::to_string(static_cast<int>(epsilon * 10));
      const ChildResult crashed =
          RunCli(DiscoverArgs(dir, false, threads, epsilon), "",
                 "checkpoint.rename:1");
      ASSERT_TRUE(crashed.signaled);
      ASSERT_EQ(crashed.signal, SIGKILL);
      // Resume at a *different* thread count than the crashed run.
      const int resume_threads = threads == 1 ? 8 : 1;
      const std::string resumed_path = dir + "_resumed.json";
      const ChildResult resumed =
          RunCli(DiscoverArgs(dir, true, resume_threads, epsilon),
                 resumed_path);
      ASSERT_EQ(resumed.exit_code, 0);
      EXPECT_EQ(ReadAll(resumed_path), expected)
          << "threads=" << threads << " epsilon=" << epsilon;
    }
  }
}

TEST_F(CheckpointChaosTest, TruncatedSnapshotIsRejectedWithTheResumableCode) {
  const std::string dir = root_ + "/ckpt_truncated";
  std::vector<std::string> suspend = DiscoverArgs(dir, false, 1, 0);
  suspend.push_back("--stop-after-level=2");
  const ChildResult partial = RunCli(suspend, "");
  ASSERT_EQ(partial.exit_code, 10);

  StatusOr<RunSnapshot> snapshot = LoadLatestSnapshot(dir);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  const std::string path = SnapshotPath(dir, snapshot->completed_level);
  std::string bytes = ReadAll(path);
  bytes.resize(bytes.size() - bytes.size() / 3);
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

  const ChildResult rejected = RunCli(DiscoverArgs(dir, true, 1, 0), "");
  EXPECT_FALSE(rejected.signaled);
  EXPECT_EQ(rejected.exit_code, 10);
}

}  // namespace
}  // namespace tane
