// Edge-of-envelope tests: the widest supported schemas, degenerate
// configurations, and the disk store's segment lifecycle.

#include <filesystem>

#include "core/partition_store.h"
#include "core/tane.h"
#include "datasets/generators.h"
#include "datasets/paper_datasets.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace tane {
namespace {

using testing_util::ContainsFd;
using testing_util::FdStrings;

TEST(StressTest, SixtyFourAttributeRelation) {
  // The widest supported schema: 64 columns. Keep rows tiny so the lattice
  // collapses fast (most pairs are keys).
  StatusOr<Relation> relation = GenerateUniform(
      /*rows=*/30, /*cols=*/kMaxAttributes, /*cardinality=*/30, /*seed=*/3);
  ASSERT_TRUE(relation.ok());
  StatusOr<DiscoveryResult> result = Tane::Discover(*relation);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // With cardinality ~rows, most single columns are near-keys; sanity-check
  // structural invariants rather than exact counts.
  for (const FunctionalDependency& fd : result->fds) {
    EXPECT_FALSE(fd.lhs.Contains(fd.rhs));
    EXPECT_LT(fd.rhs, kMaxAttributes);
  }
  EXPECT_GT(result->num_fds(), 0);
}

TEST(StressTest, SixtyFiveColumnsRejected) {
  std::vector<std::string> names;
  for (int i = 0; i < 65; ++i) names.push_back("c" + std::to_string(i));
  EXPECT_FALSE(Schema::Create(names).ok());
}

TEST(StressTest, MaxLhsZeroFindsOnlyConstantColumns) {
  Relation relation = testing_util::MakeRelation(
      {{"k", "1"}, {"k", "2"}, {"k", "3"}}, 2);
  TaneConfig config;
  config.max_lhs_size = 0;
  StatusOr<DiscoveryResult> result = Tane::Discover(relation, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_fds(), 1);
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet(), 0));
}

TEST(StressTest, AllColumnsIdentical) {
  Relation relation = testing_util::MakeRelation(
      {{"a", "a", "a"}, {"b", "b", "b"}, {"a", "a", "a"}}, 3);
  StatusOr<DiscoveryResult> result = Tane::Discover(relation);
  ASSERT_TRUE(result.ok());
  // Every column determines every other: 6 singleton FDs.
  EXPECT_EQ(result->num_fds(), 6);
  for (const FunctionalDependency& fd : result->fds) {
    EXPECT_EQ(fd.lhs.size(), 1);
  }
}

TEST(StressTest, AllRowsIdentical) {
  Relation relation = testing_util::MakeRelation(
      {{"x", "y"}, {"x", "y"}, {"x", "y"}}, 2);
  StatusOr<DiscoveryResult> result = Tane::Discover(relation);
  ASSERT_TRUE(result.ok());
  // Both columns are constant.
  EXPECT_EQ(result->num_fds(), 2);
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet(), 0));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet(), 1));
  EXPECT_TRUE(result->keys.empty());  // duplicates leave no key
}

TEST(StressTest, WideRelationAgreesAcrossAllConfigs) {
  StatusOr<Relation> relation = GenerateUniform(
      /*rows=*/40, /*cols=*/24, /*cardinality=*/6, /*seed=*/8);
  ASSERT_TRUE(relation.ok());
  StatusOr<DiscoveryResult> baseline = Tane::Discover(*relation);
  ASSERT_TRUE(baseline.ok());
  TaneConfig disk;
  disk.storage = StorageMode::kDisk;
  StatusOr<DiscoveryResult> disk_result = Tane::Discover(*relation, disk);
  ASSERT_TRUE(disk_result.ok());
  EXPECT_EQ(FdStrings(disk_result->fds), FdStrings(baseline->fds));
  TaneConfig singletons;
  singletons.use_partition_products = false;
  StatusOr<DiscoveryResult> singleton_result =
      Tane::Discover(*relation, singletons);
  ASSERT_TRUE(singleton_result.ok());
  EXPECT_EQ(FdStrings(singleton_result->fds), FdStrings(baseline->fds));
}

TEST(StressTest, SchlimmerModeDoesMoreProducts) {
  StatusOr<Relation> relation = GenerateUniform(60, 8, 3, /*seed=*/21);
  ASSERT_TRUE(relation.ok());
  StatusOr<DiscoveryResult> products = Tane::Discover(*relation);
  TaneConfig config;
  config.use_partition_products = false;
  StatusOr<DiscoveryResult> singletons = Tane::Discover(*relation, config);
  ASSERT_TRUE(products.ok() && singletons.ok());
  EXPECT_EQ(FdStrings(products->fds), FdStrings(singletons->fds));
  EXPECT_GT(singletons->stats.partition_products,
            products->stats.partition_products);
}

TEST(DiskSegmentTest, SegmentsRotateAndAreReclaimed) {
  StatusOr<std::unique_ptr<DiskPartitionStore>> store =
      DiskPartitionStore::Open();
  ASSERT_TRUE(store.ok());

  // ~2 MB per partition; enough Puts forces several 32 MB segments.
  const int64_t rows = 500000;
  std::vector<int32_t> row_ids(rows);
  std::vector<int32_t> offsets = {0, static_cast<int32_t>(rows)};
  for (int64_t i = 0; i < rows; ++i) row_ids[i] = static_cast<int32_t>(i);
  StrippedPartition big =
      StrippedPartition::Create(rows, row_ids, offsets, true).value();

  std::vector<int64_t> handles;
  for (int i = 0; i < 40; ++i) {
    StatusOr<int64_t> handle = (*store)->Put(big);
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  const int64_t peak_disk = (*store)->disk_bytes();
  EXPECT_GT(peak_disk, 64 << 20);  // several segments live

  // Everything reads back correctly.
  StatusOr<StrippedPartition> loaded = (*store)->Get(handles[17]);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, big);

  // Releasing the first half reclaims their (sealed) segments.
  for (size_t i = 0; i < handles.size() / 2; ++i) {
    TANE_ASSERT_OK((*store)->Release(handles[i]));
  }
  EXPECT_LT((*store)->disk_bytes(), peak_disk);

  // The rest remain readable after reclamation.
  loaded = (*store)->Get(handles.back());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, big);
  for (size_t i = handles.size() / 2; i < handles.size(); ++i) {
    TANE_ASSERT_OK((*store)->Release(handles[i]));
  }
  EXPECT_EQ((*store)->disk_bytes(), 0);
}

TEST(DiskSegmentTest, InterleavedPutGetRelease) {
  StatusOr<std::unique_ptr<DiskPartitionStore>> store =
      DiskPartitionStore::Open();
  ASSERT_TRUE(store.ok());
  std::vector<std::pair<int64_t, StrippedPartition>> live;
  Rng rng(77);
  for (int step = 0; step < 200; ++step) {
    if (live.empty() || rng.NextBernoulli(0.6)) {
      // Put a small random partition.
      const int64_t rows = 10 + static_cast<int64_t>(rng.NextBounded(20));
      std::vector<int32_t> ids;
      for (int64_t i = 0; i < rows; ++i) {
        ids.push_back(static_cast<int32_t>(i));
      }
      StrippedPartition partition =
          StrippedPartition::Create(
              rows, ids, {0, static_cast<int32_t>(rows)}, true)
              .value();
      StatusOr<int64_t> handle = (*store)->Put(partition);
      ASSERT_TRUE(handle.ok());
      live.emplace_back(*handle, std::move(partition));
    } else {
      const size_t pick = rng.NextBounded(live.size());
      StatusOr<StrippedPartition> loaded = (*store)->Get(live[pick].first);
      ASSERT_TRUE(loaded.ok());
      EXPECT_EQ(*loaded, live[pick].second);
      TANE_ASSERT_OK((*store)->Release(live[pick].first));
      live.erase(live.begin() + pick);
    }
  }
  for (auto& [handle, partition] : live) {
    TANE_ASSERT_OK((*store)->Release(handle));
  }
  EXPECT_EQ((*store)->disk_bytes(), 0);
}

TEST(RegressionTest, PaperDatasetFdCountsPinned) {
  // Pin the default-seed stand-in N values so accidental generator changes
  // are caught. (These are the numbers EXPERIMENTS.md reports.)
  struct Expected {
    PaperDataset dataset;
    int64_t n;
  };
  const Expected expected[] = {
      {PaperDataset::kLymphography, 2550},
      {PaperDataset::kHepatitis, 6317},
      {PaperDataset::kWisconsinBreastCancer, 414},
      {PaperDataset::kChess, 1},
  };
  for (const Expected& e : expected) {
    StatusOr<Relation> relation = MakePaperDataset(e.dataset);
    ASSERT_TRUE(relation.ok());
    StatusOr<DiscoveryResult> result = Tane::Discover(*relation);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->num_fds(), e.n)
        << GetPaperDatasetInfo(e.dataset).name;
  }
}

}  // namespace
}  // namespace tane
