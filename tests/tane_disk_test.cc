#include <filesystem>
#include <string>

#include "core/tane.h"
#include "datasets/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "util/failpoint.h"

namespace tane {
namespace {

using testing_util::FdStrings;
using testing_util::PaperFigure1Relation;

TEST(TaneDiskTest, DiskModeMatchesMemoryModeOnPaperExample) {
  TaneConfig disk;
  disk.storage = StorageMode::kDisk;
  StatusOr<DiscoveryResult> disk_result =
      Tane::Discover(PaperFigure1Relation(), disk);
  ASSERT_TRUE(disk_result.ok()) << disk_result.status().ToString();
  StatusOr<DiscoveryResult> mem_result =
      Tane::Discover(PaperFigure1Relation());
  ASSERT_TRUE(mem_result.ok());
  EXPECT_EQ(FdStrings(disk_result->fds), FdStrings(mem_result->fds));
  EXPECT_EQ(disk_result->keys, mem_result->keys);
}

TEST(TaneDiskTest, DiskModeWritesSpillBytes) {
  TaneConfig disk;
  disk.storage = StorageMode::kDisk;
  StatusOr<DiscoveryResult> result =
      Tane::Discover(PaperFigure1Relation(), disk);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.spill_bytes_written, 0);
}

TEST(TaneDiskTest, NamedSpillDirectoryIsCleanedUp) {
  const std::string directory = ::testing::TempDir() + "/tane_disk_test_spill";
  std::filesystem::remove_all(directory);
  TaneConfig disk;
  disk.storage = StorageMode::kDisk;
  disk.spill_directory = directory;
  StatusOr<DiscoveryResult> result =
      Tane::Discover(PaperFigure1Relation(), disk);
  ASSERT_TRUE(result.ok());
  // The store created (and therefore owns and removed) the directory.
  EXPECT_FALSE(std::filesystem::exists(directory));
}

TEST(TaneDiskTest, DiskModeMatchesMemoryOnSyntheticData) {
  StatusOr<Relation> relation = GenerateUniform(
      /*rows=*/200, /*cols=*/6, /*cardinality=*/4, /*seed=*/11);
  ASSERT_TRUE(relation.ok());
  TaneConfig disk;
  disk.storage = StorageMode::kDisk;
  StatusOr<DiscoveryResult> disk_result = Tane::Discover(*relation, disk);
  StatusOr<DiscoveryResult> mem_result = Tane::Discover(*relation);
  ASSERT_TRUE(disk_result.ok() && mem_result.ok());
  EXPECT_EQ(FdStrings(disk_result->fds), FdStrings(mem_result->fds));
}

TEST(TaneDiskTest, DiskModeApproximateMatchesMemory) {
  StatusOr<Relation> relation = GenerateUniform(
      /*rows=*/120, /*cols=*/5, /*cardinality=*/3, /*seed=*/5);
  ASSERT_TRUE(relation.ok());
  for (double epsilon : {0.05, 0.2}) {
    TaneConfig disk;
    disk.storage = StorageMode::kDisk;
    disk.epsilon = epsilon;
    TaneConfig mem;
    mem.epsilon = epsilon;
    StatusOr<DiscoveryResult> disk_result = Tane::Discover(*relation, disk);
    StatusOr<DiscoveryResult> mem_result = Tane::Discover(*relation, mem);
    ASSERT_TRUE(disk_result.ok() && mem_result.ok());
    EXPECT_EQ(FdStrings(disk_result->fds), FdStrings(mem_result->fds))
        << "eps=" << epsilon;
  }
}

// Fault injection into the spill path of a full discovery run. These tests
// arm failpoints inside DiskPartitionStore (see util/failpoint.h); they are
// skipped when the build compiled the injection sites out.
class TaneSpillFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kCompiledIn) {
      GTEST_SKIP() << "built without TANE_ENABLE_FAILPOINTS";
    }
  }
  void TearDown() override { failpoint::ClearAll(); }
};

TEST_F(TaneSpillFaultTest, TransientSpillWriteErrorsAreRetriedToSuccess) {
  // Two failures is below the default four attempts, so the first spill
  // write recovers via backoff and the run must succeed end to end.
  failpoint::Arm("disk_store.put", {.skip = 0, .fail_times = 2});
  TaneConfig disk;
  disk.storage = StorageMode::kDisk;
  StatusOr<DiscoveryResult> result =
      Tane::Discover(PaperFigure1Relation(), disk);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(failpoint::HitCount("disk_store.put"), 3);

  StatusOr<DiscoveryResult> mem = Tane::Discover(PaperFigure1Relation());
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ(FdStrings(result->fds), FdStrings(mem->fds));
}

TEST_F(TaneSpillFaultTest, TransientSpillReadErrorsAreRetriedToSuccess) {
  failpoint::Arm("disk_store.get", {.skip = 0, .fail_times = 2});
  TaneConfig disk;
  disk.storage = StorageMode::kDisk;
  StatusOr<DiscoveryResult> result =
      Tane::Discover(PaperFigure1Relation(), disk);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  StatusOr<DiscoveryResult> mem = Tane::Discover(PaperFigure1Relation());
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ(FdStrings(result->fds), FdStrings(mem->fds));
}

TEST_F(TaneSpillFaultTest, PersistentWriteFailureSurfacesIoErrorWithPath) {
  const std::string directory =
      ::testing::TempDir() + "/tane_spill_fault_dir";
  std::filesystem::remove_all(directory);
  failpoint::Arm("disk_store.put",
                 {.skip = 0, .fail_times = 1'000'000'000});
  TaneConfig disk;
  disk.storage = StorageMode::kDisk;
  disk.spill_directory = directory;
  StatusOr<DiscoveryResult> result =
      Tane::Discover(PaperFigure1Relation(), disk);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  // The error names the spill path so operators can find the bad device.
  EXPECT_NE(result.status().message().find(directory), std::string::npos)
      << result.status().ToString();
  // Retries were actually attempted before giving up.
  EXPECT_GE(failpoint::HitCount("disk_store.put"), 4);
  // The failed run tore down its spill directory behind itself.
  EXPECT_FALSE(std::filesystem::exists(directory));
}

TEST_F(TaneSpillFaultTest, PersistentSegmentCreationFailureSurfaces) {
  failpoint::Arm("disk_store.open_segment",
                 {.skip = 0, .fail_times = 1'000'000'000});
  TaneConfig disk;
  disk.storage = StorageMode::kDisk;
  StatusOr<DiscoveryResult> result =
      Tane::Discover(PaperFigure1Relation(), disk);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(TaneDiskTest, MemoryModeResidencyExceedsDiskMode) {
  StatusOr<Relation> relation = GenerateUniform(
      /*rows=*/300, /*cols=*/7, /*cardinality=*/3, /*seed=*/17);
  ASSERT_TRUE(relation.ok());
  TaneConfig disk;
  disk.storage = StorageMode::kDisk;
  StatusOr<DiscoveryResult> disk_result = Tane::Discover(*relation, disk);
  StatusOr<DiscoveryResult> mem_result = Tane::Discover(*relation);
  ASSERT_TRUE(disk_result.ok() && mem_result.ok());
  // The disk variant keeps only an O(1) cache resident.
  EXPECT_LT(disk_result->stats.peak_partition_bytes,
            mem_result->stats.peak_partition_bytes);
}

}  // namespace
}  // namespace tane
