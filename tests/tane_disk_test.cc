#include <filesystem>

#include "core/tane.h"
#include "datasets/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace tane {
namespace {

using testing_util::FdStrings;
using testing_util::PaperFigure1Relation;

TEST(TaneDiskTest, DiskModeMatchesMemoryModeOnPaperExample) {
  TaneConfig disk;
  disk.storage = StorageMode::kDisk;
  StatusOr<DiscoveryResult> disk_result =
      Tane::Discover(PaperFigure1Relation(), disk);
  ASSERT_TRUE(disk_result.ok()) << disk_result.status().ToString();
  StatusOr<DiscoveryResult> mem_result =
      Tane::Discover(PaperFigure1Relation());
  ASSERT_TRUE(mem_result.ok());
  EXPECT_EQ(FdStrings(disk_result->fds), FdStrings(mem_result->fds));
  EXPECT_EQ(disk_result->keys, mem_result->keys);
}

TEST(TaneDiskTest, DiskModeWritesSpillBytes) {
  TaneConfig disk;
  disk.storage = StorageMode::kDisk;
  StatusOr<DiscoveryResult> result =
      Tane::Discover(PaperFigure1Relation(), disk);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.spill_bytes_written, 0);
}

TEST(TaneDiskTest, NamedSpillDirectoryIsCleanedUp) {
  const std::string directory = ::testing::TempDir() + "/tane_disk_test_spill";
  std::filesystem::remove_all(directory);
  TaneConfig disk;
  disk.storage = StorageMode::kDisk;
  disk.spill_directory = directory;
  StatusOr<DiscoveryResult> result =
      Tane::Discover(PaperFigure1Relation(), disk);
  ASSERT_TRUE(result.ok());
  // The store created (and therefore owns and removed) the directory.
  EXPECT_FALSE(std::filesystem::exists(directory));
}

TEST(TaneDiskTest, DiskModeMatchesMemoryOnSyntheticData) {
  StatusOr<Relation> relation = GenerateUniform(
      /*rows=*/200, /*cols=*/6, /*cardinality=*/4, /*seed=*/11);
  ASSERT_TRUE(relation.ok());
  TaneConfig disk;
  disk.storage = StorageMode::kDisk;
  StatusOr<DiscoveryResult> disk_result = Tane::Discover(*relation, disk);
  StatusOr<DiscoveryResult> mem_result = Tane::Discover(*relation);
  ASSERT_TRUE(disk_result.ok() && mem_result.ok());
  EXPECT_EQ(FdStrings(disk_result->fds), FdStrings(mem_result->fds));
}

TEST(TaneDiskTest, DiskModeApproximateMatchesMemory) {
  StatusOr<Relation> relation = GenerateUniform(
      /*rows=*/120, /*cols=*/5, /*cardinality=*/3, /*seed=*/5);
  ASSERT_TRUE(relation.ok());
  for (double epsilon : {0.05, 0.2}) {
    TaneConfig disk;
    disk.storage = StorageMode::kDisk;
    disk.epsilon = epsilon;
    TaneConfig mem;
    mem.epsilon = epsilon;
    StatusOr<DiscoveryResult> disk_result = Tane::Discover(*relation, disk);
    StatusOr<DiscoveryResult> mem_result = Tane::Discover(*relation, mem);
    ASSERT_TRUE(disk_result.ok() && mem_result.ok());
    EXPECT_EQ(FdStrings(disk_result->fds), FdStrings(mem_result->fds))
        << "eps=" << epsilon;
  }
}

TEST(TaneDiskTest, MemoryModeResidencyExceedsDiskMode) {
  StatusOr<Relation> relation = GenerateUniform(
      /*rows=*/300, /*cols=*/7, /*cardinality=*/3, /*seed=*/17);
  ASSERT_TRUE(relation.ok());
  TaneConfig disk;
  disk.storage = StorageMode::kDisk;
  StatusOr<DiscoveryResult> disk_result = Tane::Discover(*relation, disk);
  StatusOr<DiscoveryResult> mem_result = Tane::Discover(*relation);
  ASSERT_TRUE(disk_result.ok() && mem_result.ok());
  // The disk variant keeps only an O(1) cache resident.
  EXPECT_LT(disk_result->stats.peak_partition_bytes,
            mem_result->stats.peak_partition_bytes);
}

}  // namespace
}  // namespace tane
