#include "util/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/run_snapshot.h"
#include "core/tane.h"
#include "datasets/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "util/failpoint.h"

namespace tane {
namespace {

using testing_util::FdStrings;
using testing_util::PaperFigure1Relation;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

// ---------------------------------------------------------------------------
// Atomic file primitives

TEST(AtomicWriteFileTest, WritesAndReplacesWithoutLeavingTempFiles) {
  const std::string dir = TempPath("tane_ckpt_atomic");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  const std::string path = dir + "/artifact.json";

  TANE_ASSERT_OK(AtomicWriteFile(path, "first"));
  EXPECT_EQ(ReadAll(path), "first");
  TANE_ASSERT_OK(AtomicWriteFile(path, "second, longer contents"));
  EXPECT_EQ(ReadAll(path), "second, longer contents");

  // The temp file must be renamed away (success) — never left behind.
  int entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1);
  std::filesystem::remove_all(dir);
}

TEST(AtomicWriteFileTest, FailedWriteLeavesTheOldFileIntact) {
  if (!failpoint::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  const std::string dir = TempPath("tane_ckpt_atomic_fault");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  const std::string path = dir + "/artifact.json";
  TANE_ASSERT_OK(AtomicWriteFile(path, "durable"));

  for (const char* site :
       {"checkpoint.write_temp", "checkpoint.fsync", "checkpoint.rename"}) {
    failpoint::Arm(site, {});
    const Status status = AtomicWriteFile(path, "torn");
    failpoint::ClearAll();
    EXPECT_FALSE(status.ok()) << site;
    // The published artifact never shows the failed write, and the aborted
    // temp file is cleaned up.
    EXPECT_EQ(ReadAll(path), "durable") << site;
    int entries = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      (void)entry;
      ++entries;
    }
    EXPECT_EQ(entries, 1) << site;
  }
  std::filesystem::remove_all(dir);
}

TEST(ReadFileToStringTest, RoundTripsAndReportsMissingFiles) {
  const std::string path = TempPath("tane_ckpt_read.bin");
  std::string contents(100000, '\0');
  for (size_t i = 0; i < contents.size(); ++i) {
    contents[i] = static_cast<char>(i * 31);
  }
  TANE_ASSERT_OK(AtomicWriteFile(path, contents));
  TANE_ASSERT_OK_AND_ASSIGN(std::string read_back, ReadFileToString(path));
  EXPECT_EQ(read_back, contents);
  std::filesystem::remove(path);

  const StatusOr<std::string> missing = ReadFileToString(path);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// CRC framing

TEST(FrameTest, RoundTripsMultipleFrames) {
  std::string buffer;
  AppendFrame(&buffer, 1, "hello");
  AppendFrame(&buffer, 2, "");
  AppendFrame(&buffer, 7, std::string(4096, 'x'));

  std::string_view cursor = buffer;
  uint32_t tag = 0;
  std::string_view payload;
  TANE_ASSERT_OK(ReadFrame(&cursor, &tag, &payload));
  EXPECT_EQ(tag, 1u);
  EXPECT_EQ(payload, "hello");
  TANE_ASSERT_OK(ReadFrame(&cursor, &tag, &payload));
  EXPECT_EQ(tag, 2u);
  EXPECT_TRUE(payload.empty());
  TANE_ASSERT_OK(ReadFrame(&cursor, &tag, &payload));
  EXPECT_EQ(tag, 7u);
  EXPECT_EQ(payload.size(), 4096u);
  EXPECT_TRUE(cursor.empty());
}

TEST(FrameTest, DetectsTruncationAndCorruption) {
  std::string buffer;
  AppendFrame(&buffer, 3, "payload bytes");

  // Truncation at every prefix length must be detected, never crash.
  for (size_t len = 0; len < buffer.size(); ++len) {
    std::string_view cursor(buffer.data(), len);
    uint32_t tag = 0;
    std::string_view payload;
    const Status status = ReadFrame(&cursor, &tag, &payload);
    if (len == 0) continue;  // empty input: caller decides, still an error
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition) << len;
    EXPECT_TRUE(IsSnapshotCorruptStatus(status)) << status.ToString();
  }

  // A single flipped payload bit fails the CRC.
  std::string corrupted = buffer;
  corrupted.back() ^= 0x40;
  std::string_view cursor = corrupted;
  uint32_t tag = 0;
  std::string_view payload;
  const Status status = ReadFrame(&cursor, &tag, &payload);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(IsSnapshotCorruptStatus(status));
}

// ---------------------------------------------------------------------------
// Fingerprints

TEST(FingerprintTest, ConfigFingerprintTracksOutputAffectingFieldsOnly) {
  TaneConfig base;
  const uint32_t fp = ConfigFingerprint(base);

  // Execution knobs must not change the fingerprint: a checkpointed run
  // may resume on different hardware with a different storage plan.
  TaneConfig threads = base;
  threads.num_threads = 8;
  threads.storage = StorageMode::kDisk;
  threads.use_pli_cache = !base.use_pli_cache;
  threads.checkpoint_every_level = true;
  EXPECT_EQ(ConfigFingerprint(threads), fp);

  // Output-affecting fields must.
  TaneConfig epsilon = base;
  epsilon.epsilon = 0.1;
  EXPECT_NE(ConfigFingerprint(epsilon), fp);
  TaneConfig lhs = base;
  lhs.max_lhs_size = 3;
  EXPECT_NE(ConfigFingerprint(lhs), fp);
  TaneConfig pruning = base;
  pruning.use_key_pruning = !base.use_key_pruning;
  EXPECT_NE(ConfigFingerprint(pruning), fp);
}

TEST(FingerprintTest, DatasetFingerprintSeesContentNotFormatting) {
  const Relation a = PaperFigure1Relation();
  const Relation b = PaperFigure1Relation();
  EXPECT_EQ(DatasetFingerprint(a), DatasetFingerprint(b));
  EXPECT_EQ(DatasetFingerprint(a).rfind("crc32:", 0), 0u);

  const Relation other = testing_util::MakeRelation(
      {{"1", "a"}, {"2", "b"}}, 2);
  EXPECT_NE(DatasetFingerprint(a), DatasetFingerprint(other));
}

// ---------------------------------------------------------------------------
// Snapshot serialization

RunSnapshot MakeSnapshot() {
  RunSnapshot snapshot;
  snapshot.config_fingerprint = 0xabad1dea;
  snapshot.dataset_fingerprint = "crc32:deadbeef";
  snapshot.num_rows = 8;
  snapshot.num_columns = 4;
  snapshot.completed_level = 2;
  snapshot.fds.push_back({AttributeSet::FromMask(0x3), 2, 0});
  snapshot.fds.push_back({AttributeSet::FromMask(0x5), 1, 7});
  snapshot.keys.push_back(AttributeSet::FromMask(0xb));
  snapshot.counters.sets_generated = 41;
  snapshot.counters.validity_tests = 29;
  snapshot.counters.fds_emitted = 2;
  snapshot.counters.max_level_size = 6;
  LevelParallelStats level;
  level.level = 1;
  level.nodes = 4;
  level.wall_seconds = 0.5;
  snapshot.level_parallel.push_back(level);
  SnapshotNode node;
  node.set = AttributeSet::FromMask(0x6);
  node.cplus = AttributeSet::FromMask(0xf);
  node.error = 3;
  node.partition_bytes = std::string("\x01\x02\x00\x03partition", 13);
  snapshot.survivors.push_back(node);
  return snapshot;
}

TEST(RunSnapshotTest, SerializeDeserializeRoundTrip) {
  const RunSnapshot snapshot = MakeSnapshot();
  const std::string bytes = snapshot.Serialize();
  TANE_ASSERT_OK_AND_ASSIGN(RunSnapshot restored,
                            RunSnapshot::Deserialize(bytes));
  EXPECT_EQ(restored.config_fingerprint, snapshot.config_fingerprint);
  EXPECT_EQ(restored.dataset_fingerprint, snapshot.dataset_fingerprint);
  EXPECT_EQ(restored.num_rows, snapshot.num_rows);
  EXPECT_EQ(restored.num_columns, snapshot.num_columns);
  EXPECT_EQ(restored.completed_level, snapshot.completed_level);
  ASSERT_EQ(restored.fds.size(), 2u);
  EXPECT_EQ(restored.fds[1].lhs.mask(), snapshot.fds[1].lhs.mask());
  EXPECT_EQ(restored.fds[1].rhs, snapshot.fds[1].rhs);
  EXPECT_EQ(restored.fds[1].error, snapshot.fds[1].error);
  ASSERT_EQ(restored.keys.size(), 1u);
  EXPECT_EQ(restored.keys[0].mask(), snapshot.keys[0].mask());
  EXPECT_EQ(restored.counters.sets_generated, 41);
  EXPECT_EQ(restored.counters.max_level_size, 6);
  ASSERT_EQ(restored.level_parallel.size(), 1u);
  EXPECT_EQ(restored.level_parallel[0].nodes, 4);
  ASSERT_EQ(restored.survivors.size(), 1u);
  EXPECT_EQ(restored.survivors[0].set.mask(), 0x6u);
  EXPECT_EQ(restored.survivors[0].cplus.mask(), 0xfu);
  EXPECT_EQ(restored.survivors[0].error, 3);
  EXPECT_EQ(restored.survivors[0].partition_bytes,
            snapshot.survivors[0].partition_bytes);
}

TEST(RunSnapshotTest, EveryTruncationAndBitFlipIsDetected) {
  const std::string bytes = MakeSnapshot().Serialize();
  // Truncations (sampled; byte-at-a-time is quadratic but the image is
  // small enough).
  for (size_t len = 0; len < bytes.size(); len += 7) {
    const StatusOr<RunSnapshot> result =
        RunSnapshot::Deserialize(std::string_view(bytes.data(), len));
    EXPECT_FALSE(result.ok()) << "truncated to " << len;
    EXPECT_TRUE(IsSnapshotCorruptStatus(result.status()))
        << result.status().ToString();
  }
  // Trailing garbage.
  {
    const StatusOr<RunSnapshot> result =
        RunSnapshot::Deserialize(bytes + "junk");
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(IsSnapshotCorruptStatus(result.status()));
  }
  // Bit flips (sampled).
  for (size_t i = 0; i < bytes.size(); i += 11) {
    std::string mutated = bytes;
    mutated[i] ^= 0x10;
    const StatusOr<RunSnapshot> result = RunSnapshot::Deserialize(mutated);
    EXPECT_FALSE(result.ok()) << "bit flip at " << i;
  }
}

TEST(RunSnapshotTest, WriteLoadPicksLatestAndUnlinksOlder) {
  const std::string dir = TempPath("tane_ckpt_levels");
  std::filesystem::remove_all(dir);

  EXPECT_EQ(LoadLatestSnapshot(dir).status().code(), StatusCode::kNotFound);

  RunSnapshot snapshot = MakeSnapshot();
  snapshot.completed_level = 1;
  TANE_ASSERT_OK_AND_ASSIGN(int64_t bytes1, WriteSnapshot(dir, snapshot));
  EXPECT_GT(bytes1, 0);
  snapshot.completed_level = 2;
  snapshot.counters.sets_generated = 99;
  TANE_ASSERT_OK(WriteSnapshot(dir, snapshot).status());

  // The older level file is gone; only level 2 remains and is what loads.
  EXPECT_FALSE(std::filesystem::exists(SnapshotPath(dir, 1)));
  EXPECT_TRUE(std::filesystem::exists(SnapshotPath(dir, 2)));
  TANE_ASSERT_OK_AND_ASSIGN(RunSnapshot latest, LoadLatestSnapshot(dir));
  EXPECT_EQ(latest.completed_level, 2);
  EXPECT_EQ(latest.counters.sets_generated, 99);

  TANE_ASSERT_OK(RemoveSnapshots(dir));
  EXPECT_EQ(LoadLatestSnapshot(dir).status().code(), StatusCode::kNotFound);
  // Removing twice (or with the directory gone) stays OK.
  std::filesystem::remove_all(dir);
  TANE_ASSERT_OK(RemoveSnapshots(dir));
}

TEST(RunSnapshotTest, CorruptLatestIsAnErrorNotAFallback) {
  const std::string dir = TempPath("tane_ckpt_corrupt");
  std::filesystem::remove_all(dir);
  RunSnapshot snapshot = MakeSnapshot();
  snapshot.completed_level = 3;
  TANE_ASSERT_OK(WriteSnapshot(dir, snapshot).status());

  const std::string path = SnapshotPath(dir, 3);
  std::string bytes = ReadAll(path);
  bytes.resize(bytes.size() / 2);
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

  const StatusOr<RunSnapshot> result = LoadLatestSnapshot(dir);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(IsSnapshotCorruptStatus(result.status()))
      << result.status().ToString();
  // The path is named so the operator knows which file to clear.
  EXPECT_NE(result.status().message().find(path), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(RunSnapshotTest, IsSnapshotCorruptStatusIsPrecise) {
  EXPECT_TRUE(IsSnapshotCorruptStatus(
      Status::FailedPrecondition("snapshot corrupt: bad crc")));
  EXPECT_FALSE(IsSnapshotCorruptStatus(
      Status::FailedPrecondition("refusing to resume: other dataset")));
  EXPECT_FALSE(IsSnapshotCorruptStatus(Status::IoError("snapshot corrupt")));
  EXPECT_FALSE(IsSnapshotCorruptStatus(Status::OK()));
}

// ---------------------------------------------------------------------------
// Config plumbing

TEST(CheckpointConfigTest, CheckpointFlagsRequireADirectory) {
  TaneConfig config;
  config.checkpoint_every_level = true;
  EXPECT_EQ(Tane::Discover(PaperFigure1Relation(), config).status().code(),
            StatusCode::kInvalidArgument);
  config = TaneConfig();
  config.resume = true;
  EXPECT_EQ(Tane::Discover(PaperFigure1Relation(), config).status().code(),
            StatusCode::kInvalidArgument);
  config = TaneConfig();
  config.stop_after_level = -1;
  EXPECT_EQ(Tane::Discover(PaperFigure1Relation(), config).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Engine-level suspend/resume

StatusOr<Relation> ChaosRelation() {
  // Dense enough that the lattice reaches level 5+ with real pruning work.
  return GenerateUniform(/*rows=*/400, /*cols=*/8, /*cardinality=*/4,
                         /*seed=*/11);
}

// The resume-determinism matrix: every level boundary × {ε=0, ε=0.1} ×
// {1, 8} worker threads (suspend and resume at *different* thread counts).
// Each cell must reproduce the uninterrupted run's dependencies, keys, and
// deterministic counters exactly.
TEST(CheckpointResumeTest, EveryBoundaryEpsilonAndThreadCountMatches) {
  TANE_ASSERT_OK_AND_ASSIGN(Relation relation, ChaosRelation());
  for (const double epsilon : {0.0, 0.1}) {
    TaneConfig reference;
    reference.epsilon = epsilon;
    TANE_ASSERT_OK_AND_ASSIGN(DiscoveryResult full,
                              Tane::Discover(relation, reference));
    for (const int threads : {1, 8}) {
      int boundaries_hit = 0;
      for (int boundary = 1; boundary <= 32; ++boundary) {
        const std::string tag = "e" + std::to_string(epsilon > 0) + "_t" +
                                std::to_string(threads) + "_l" +
                                std::to_string(boundary);
        const std::string dir = TempPath("tane_ckpt_resume_" + tag);
        std::filesystem::remove_all(dir);

        TaneConfig suspend;
        suspend.epsilon = epsilon;
        suspend.num_threads = threads;
        suspend.checkpoint_directory = dir;
        suspend.stop_after_level = boundary;
        TANE_ASSERT_OK_AND_ASSIGN(DiscoveryResult partial,
                                  Tane::Discover(relation, suspend));
        if (partial.completion == Completion::kComplete) {
          // The lattice finished before the requested boundary: the matrix
          // is exhausted for this configuration.
          EXPECT_GT(boundaries_hit, 0) << tag;
          std::filesystem::remove_all(dir);
          break;
        }
        ++boundaries_hit;
        EXPECT_EQ(partial.completion, Completion::kSuspended) << tag;
        EXPECT_TRUE(partial.resumable) << tag;
        EXPECT_EQ(partial.completed_levels, boundary) << tag;
        EXPECT_GT(partial.stats.checkpoint_writes, 0) << tag;
        EXPECT_GT(partial.stats.checkpoint_bytes, 0) << tag;

        TaneConfig resume;
        resume.epsilon = epsilon;
        resume.num_threads = threads == 1 ? 8 : 1;  // cross-thread resume
        resume.checkpoint_directory = dir;
        resume.resume = true;
        TANE_ASSERT_OK_AND_ASSIGN(DiscoveryResult resumed,
                                  Tane::Discover(relation, resume));
        EXPECT_EQ(resumed.completion, Completion::kComplete) << tag;
        EXPECT_FALSE(resumed.resumable) << tag;
        EXPECT_EQ(resumed.stats.resumed_from_level, boundary) << tag;
        EXPECT_EQ(FdStrings(resumed.fds), FdStrings(full.fds)) << tag;
        EXPECT_EQ(resumed.keys, full.keys) << tag;
        for (size_t i = 0; i < full.fds.size(); ++i) {
          EXPECT_EQ(resumed.fds[i].error, full.fds[i].error) << tag;
        }
        // The carried counters make the resumed totals equal the full
        // run's — the report fields derived from them match too.
        EXPECT_EQ(resumed.stats.sets_generated, full.stats.sets_generated)
            << tag;
        EXPECT_EQ(resumed.stats.validity_tests, full.stats.validity_tests)
            << tag;
        EXPECT_EQ(resumed.stats.partition_products,
                  full.stats.partition_products)
            << tag;
        EXPECT_EQ(resumed.completed_levels, full.completed_levels) << tag;
        // A completed resume leaves no snapshots behind.
        EXPECT_EQ(LoadLatestSnapshot(dir).status().code(),
                  StatusCode::kNotFound)
            << tag;
        std::filesystem::remove_all(dir);
      }
    }
  }
}

TEST(CheckpointResumeTest, RefusesAForeignSnapshot) {
  TANE_ASSERT_OK_AND_ASSIGN(Relation relation, ChaosRelation());
  const std::string dir = TempPath("tane_ckpt_foreign");
  std::filesystem::remove_all(dir);

  TaneConfig suspend;
  suspend.checkpoint_directory = dir;
  suspend.stop_after_level = 1;
  TANE_ASSERT_OK(Tane::Discover(relation, suspend).status());

  // Different output-affecting config.
  TaneConfig resume;
  resume.checkpoint_directory = dir;
  resume.resume = true;
  resume.epsilon = 0.05;
  StatusOr<DiscoveryResult> mismatch = Tane::Discover(relation, resume);
  EXPECT_EQ(mismatch.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(IsSnapshotCorruptStatus(mismatch.status()));

  // Different dataset.
  TaneConfig resume_other;
  resume_other.checkpoint_directory = dir;
  resume_other.resume = true;
  StatusOr<DiscoveryResult> other =
      Tane::Discover(PaperFigure1Relation(), resume_other);
  EXPECT_EQ(other.status().code(), StatusCode::kFailedPrecondition);

  // Execution knobs are fine: resuming with more threads must succeed.
  TaneConfig resume_threads;
  resume_threads.checkpoint_directory = dir;
  resume_threads.resume = true;
  resume_threads.num_threads = 4;
  TANE_ASSERT_OK(Tane::Discover(relation, resume_threads).status());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointResumeTest, MissingSnapshotMeansFreshRun) {
  TANE_ASSERT_OK_AND_ASSIGN(Relation relation, ChaosRelation());
  const std::string dir = TempPath("tane_ckpt_fresh");
  std::filesystem::remove_all(dir);
  TaneConfig config;
  config.checkpoint_directory = dir;
  config.resume = true;  // nothing on disk: schedulers pass it untrusted
  TANE_ASSERT_OK_AND_ASSIGN(DiscoveryResult result,
                            Tane::Discover(relation, config));
  EXPECT_EQ(result.completion, Completion::kComplete);
  EXPECT_EQ(result.stats.resumed_from_level, 0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tane
