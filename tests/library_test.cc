// Uses the umbrella header only — verifies the advertised single-include
// surface compiles and exposes the full API — plus cross-cutting
// determinism and logging checks.

#include "tane_library.h"

#include "gtest/gtest.h"
#include "util/logging.h"

namespace tane {
namespace {

TEST(LibraryTest, UmbrellaHeaderEndToEnd) {
  // Everything below resolves through tane_library.h alone.
  StatusOr<Relation> relation = ReadCsvString("a,b\n1,x\n1,x\n2,y\n");
  ASSERT_TRUE(relation.ok());

  StatusOr<DiscoveryResult> fds = Tane::Discover(*relation);
  ASSERT_TRUE(fds.ok());
  EXPECT_GT(fds->num_fds(), 0);

  StatusOr<std::vector<DiscoveredKey>> keys = DiscoverKeys(*relation);
  ASSERT_TRUE(keys.ok());

  StatusOr<std::vector<AssociationRule>> rules =
      MineAssociationRules(*relation);
  ASSERT_TRUE(rules.ok());

  RelationStats stats = ComputeStats(*relation);
  EXPECT_EQ(stats.rows, 3);

  StatusOr<DiscoveryResult> oracle = BruteForce::Discover(*relation);
  ASSERT_TRUE(oracle.ok());
  StatusOr<DiscoveryResult> fdep = Fdep::Discover(*relation);
  ASSERT_TRUE(fdep.ok());
  EXPECT_EQ(fds->num_fds(), oracle->num_fds());
  EXPECT_EQ(fds->num_fds(), fdep->num_fds());
}

TEST(LibraryTest, EndToEndDeterminism) {
  // Two complete pipelines from the same seed produce identical output,
  // byte for byte — the property every bench and regression test rests on.
  auto run = [] {
    StatusOr<Relation> relation =
        MakePaperDataset(PaperDataset::kWisconsinBreastCancer, 200, 9);
    EXPECT_TRUE(relation.ok());
    TaneConfig config;
    config.epsilon = 0.05;
    StatusOr<DiscoveryResult> result = Tane::Discover(*relation, config);
    EXPECT_TRUE(result.ok());
    std::string rendered;
    for (const FunctionalDependency& fd : result->fds) {
      rendered += fd.ToString(relation->schema());
      rendered += "=" + std::to_string(fd.error) + ";";
    }
    for (AttributeSet key : result->keys) rendered += key.ToString() + "|";
    return rendered;
  };
  EXPECT_EQ(run(), run());
}

TEST(LoggingTest, SeverityGateRoundTrips) {
  using internal_logging::GetMinLogSeverity;
  using internal_logging::LogSeverity;
  using internal_logging::SetMinLogSeverity;
  const LogSeverity original = GetMinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(GetMinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(original);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ TANE_CHECK(1 == 2) << "impossible arithmetic"; },
               "Check failed: 1 == 2");
}

TEST(LoggingDeathTest, CheckSuccessIsSilent) {
  TANE_CHECK(true) << "never evaluated";
  SUCCEED();
}

}  // namespace
}  // namespace tane
