#include "datasets/generators.h"

#include <set>

#include "analysis/violations.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace tane {
namespace {

TEST(GenerateUniformTest, ShapeAndDeterminism) {
  StatusOr<Relation> a = GenerateUniform(100, 4, 5, /*seed=*/3);
  StatusOr<Relation> b = GenerateUniform(100, 4, 5, /*seed=*/3);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->num_rows(), 100);
  EXPECT_EQ(a->num_columns(), 4);
  for (int64_t row = 0; row < 100; ++row) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(a->code(row, c), b->code(row, c));
    }
  }
}

TEST(GenerateUniformTest, DifferentSeedsDiffer) {
  StatusOr<Relation> a = GenerateUniform(50, 3, 8, 1);
  StatusOr<Relation> b = GenerateUniform(50, 3, 8, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  int differing = 0;
  for (int64_t row = 0; row < 50; ++row) {
    for (int c = 0; c < 3; ++c) {
      if (a->code(row, c) != b->code(row, c)) ++differing;
    }
  }
  EXPECT_GT(differing, 50);
}

TEST(GenerateUniformTest, CardinalityBounded) {
  StatusOr<Relation> relation = GenerateUniform(200, 2, 4, 9);
  ASSERT_TRUE(relation.ok());
  EXPECT_LE(relation->column(0).cardinality(), 4);
  EXPECT_GE(relation->column(0).cardinality(), 2);  // 200 draws from 4 values
}

TEST(GenerateSyntheticTest, DerivedColumnIsExactFdWithoutNoise) {
  SyntheticSpec spec;
  spec.rows = 300;
  spec.seed = 5;
  spec.base = {{"a", 6, 0.0}, {"b", 5, 0.0}, {"c", 4, 0.0}};
  spec.derived = {{"d", {0, 1}, 3, 0.0}};
  StatusOr<Relation> relation = GenerateSynthetic(spec);
  ASSERT_TRUE(relation.ok());
  StatusOr<double> error =
      MeasureG3(*relation, {AttributeSet::Of({0, 1}), 3, 0.0});
  ASSERT_TRUE(error.ok());
  EXPECT_DOUBLE_EQ(*error, 0.0);
}

TEST(GenerateSyntheticTest, NoisyDerivedColumnHasPositiveBoundedError) {
  SyntheticSpec spec;
  spec.rows = 2000;
  spec.seed = 6;
  spec.base = {{"a", 6, 0.0}, {"b", 5, 0.0}};
  spec.derived = {{"d", {0, 1}, 4, 0.1}};
  StatusOr<Relation> relation = GenerateSynthetic(spec);
  ASSERT_TRUE(relation.ok());
  StatusOr<double> error =
      MeasureG3(*relation, {AttributeSet::Of({0, 1}), 2, 0.0});
  ASSERT_TRUE(error.ok());
  // ~10% noise, some of which accidentally lands on the correct value;
  // the g3 error lands near but below the noise rate.
  EXPECT_GT(*error, 0.02);
  EXPECT_LT(*error, 0.15);
}

TEST(GenerateSyntheticTest, ValidatesSpec) {
  SyntheticSpec bad_cardinality;
  bad_cardinality.rows = 10;
  bad_cardinality.base = {{"a", 0, 0.0}};
  EXPECT_FALSE(GenerateSynthetic(bad_cardinality).ok());

  SyntheticSpec bad_source;
  bad_source.rows = 10;
  bad_source.base = {{"a", 2, 0.0}};
  bad_source.derived = {{"d", {5}, 2, 0.0}};
  EXPECT_FALSE(GenerateSynthetic(bad_source).ok());

  SyntheticSpec bad_noise;
  bad_noise.rows = 10;
  bad_noise.base = {{"a", 2, 0.0}};
  bad_noise.derived = {{"d", {0}, 2, 1.5}};
  EXPECT_FALSE(GenerateSynthetic(bad_noise).ok());

  SyntheticSpec negative_rows;
  negative_rows.rows = -5;
  EXPECT_FALSE(GenerateSynthetic(negative_rows).ok());
}

TEST(GenerateSyntheticTest, ZipfColumnsAreSkewed) {
  SyntheticSpec spec;
  spec.rows = 5000;
  spec.seed = 8;
  spec.base = {{"skewed", 50, 2.0}, {"uniform", 50, 0.0}};
  StatusOr<Relation> relation = GenerateSynthetic(spec);
  ASSERT_TRUE(relation.ok());
  auto top_share = [&](int col) {
    std::vector<int64_t> counts(relation->column(col).cardinality(), 0);
    for (int32_t code : relation->column(col).codes) ++counts[code];
    int64_t top = 0;
    for (int64_t count : counts) top = std::max(top, count);
    return static_cast<double>(top) / relation->num_rows();
  };
  EXPECT_GT(top_share(0), 0.3);
  EXPECT_LT(top_share(1), 0.1);
}

TEST(GenerateDistinctTuplesTest, RowsAreDistinctOnTupleAttributes) {
  StatusOr<Relation> relation =
      GenerateDistinctTuples(500, {8, 8, 8}, 4, /*seed=*/7);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->num_rows(), 500);
  EXPECT_EQ(relation->num_columns(), 4);
  std::set<std::tuple<int32_t, int32_t, int32_t>> seen;
  for (int64_t row = 0; row < 500; ++row) {
    EXPECT_TRUE(seen.insert({relation->code(row, 0), relation->code(row, 1),
                             relation->code(row, 2)})
                    .second)
        << "duplicate tuple at row " << row;
  }
}

TEST(GenerateDistinctTuplesTest, ClassIsFunctionOfTuple) {
  StatusOr<Relation> relation =
      GenerateDistinctTuples(300, {8, 8, 8}, 5, /*seed=*/9);
  ASSERT_TRUE(relation.ok());
  StatusOr<double> error =
      MeasureG3(*relation, {AttributeSet::Of({0, 1, 2}), 3, 0.0});
  ASSERT_TRUE(error.ok());
  EXPECT_DOUBLE_EQ(*error, 0.0);
}

TEST(GenerateDistinctTuplesTest, CustomNames) {
  StatusOr<Relation> relation = GenerateDistinctTuples(
      10, {4, 4}, 2, 1, {"f", "r", "win"});
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->schema().name(2), "win");
}

TEST(GenerateDistinctTuplesTest, ValidatesSpace) {
  // 3*2 = 6 < 10 rows requested.
  EXPECT_FALSE(GenerateDistinctTuples(10, {3, 2}, 2, 1).ok());
  EXPECT_FALSE(GenerateDistinctTuples(10, {}, 2, 1).ok());
  EXPECT_FALSE(GenerateDistinctTuples(10, {0, 5}, 2, 1).ok());
  EXPECT_FALSE(GenerateDistinctTuples(4, {4, 4}, 0, 1).ok());
  // Name count mismatch.
  EXPECT_FALSE(GenerateDistinctTuples(4, {4, 4}, 2, 1, {"only-one"}).ok());
}

}  // namespace
}  // namespace tane
