#include "partition/product.h"

#include "gtest/gtest.h"
#include "partition/buffer_pool.h"
#include "partition/partition_builder.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace tane {
namespace {

using testing_util::MakeRelation;
using testing_util::PaperFigure1Relation;

TEST(PartitionProductTest, Lemma3OnPaperExample) {
  // π_{B} · π_{C} must equal π_{B,C} (Lemma 3).
  Relation relation = PaperFigure1Relation();
  PartitionProduct product(relation.num_rows());
  StrippedPartition result =
      product
          .Multiply(PartitionBuilder::ForAttribute(relation, 1),
                    PartitionBuilder::ForAttribute(relation, 2)).value()
          .Canonicalized();
  StrippedPartition expected =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({1, 2}))
          .Canonicalized();
  EXPECT_EQ(result, expected);
}

TEST(PartitionProductTest, CommutesOnPaperExample) {
  Relation relation = PaperFigure1Relation();
  PartitionProduct product(relation.num_rows());
  StrippedPartition ab =
      product
          .Multiply(PartitionBuilder::ForAttribute(relation, 0),
                    PartitionBuilder::ForAttribute(relation, 1)).value()
          .Canonicalized();
  StrippedPartition ba =
      product
          .Multiply(PartitionBuilder::ForAttribute(relation, 1),
                    PartitionBuilder::ForAttribute(relation, 0)).value()
          .Canonicalized();
  EXPECT_EQ(ab, ba);
}

TEST(PartitionProductTest, ProductWithSelfIsIdentity) {
  Relation relation = PaperFigure1Relation();
  PartitionProduct product(relation.num_rows());
  StrippedPartition pi = PartitionBuilder::ForAttribute(relation, 0);
  EXPECT_EQ(product.Multiply(pi, pi).value().Canonicalized(), pi.Canonicalized());
}

TEST(PartitionProductTest, ProductWithAllSingletonsIsAllSingletons) {
  Relation relation = PaperFigure1Relation();
  PartitionProduct product(relation.num_rows());
  StrippedPartition superkey(relation.num_rows());  // empty stripped
  StrippedPartition result = product.Multiply(
      PartitionBuilder::ForAttribute(relation, 0), superkey).value();
  EXPECT_EQ(result.num_classes(), 0);
  EXPECT_TRUE(result.IsSuperkey());
}

TEST(PartitionProductTest, UnstrippedProductKeepsAllRows) {
  Relation relation = PaperFigure1Relation();
  PartitionProduct product(relation.num_rows());
  StrippedPartition a =
      PartitionBuilder::ForAttribute(relation, 1, /*stripped=*/false);
  StrippedPartition b =
      PartitionBuilder::ForAttribute(relation, 2, /*stripped=*/false);
  StrippedPartition result = product.Multiply(a, b).value();
  EXPECT_FALSE(result.stripped());
  EXPECT_EQ(result.num_member_rows(), relation.num_rows());
  EXPECT_EQ(result.FullRank(), 7);  // |π_{B,C}| from Example 1
  // Stripping afterwards matches the stripped product.
  StrippedPartition stripped_product = product.Multiply(
      PartitionBuilder::ForAttribute(relation, 1),
      PartitionBuilder::ForAttribute(relation, 2)).value();
  EXPECT_EQ(result.Stripped().Canonicalized(),
            stripped_product.Canonicalized());
}

TEST(PartitionProductTest, ReusableAcrossCalls) {
  Relation relation = PaperFigure1Relation();
  PartitionProduct product(relation.num_rows());
  StrippedPartition first = product.Multiply(
      PartitionBuilder::ForAttribute(relation, 0),
      PartitionBuilder::ForAttribute(relation, 1)).value();
  StrippedPartition second = product.Multiply(
      PartitionBuilder::ForAttribute(relation, 2),
      PartitionBuilder::ForAttribute(relation, 3)).value();
  // Same object, different operands: results must match from-scratch ones.
  EXPECT_EQ(first.Canonicalized(),
            PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({0, 1}))
                .Canonicalized());
  EXPECT_EQ(second.Canonicalized(),
            PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({2, 3}))
                .Canonicalized());
}

// Property sweep: on random relations, the product of singleton partitions
// equals the from-scratch partition of the pair (Lemma 3), and products are
// commutative and associative.
class ProductPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ProductPropertyTest, Lemma3OnRandomRelations) {
  const int seed = GetParam();
  Rng rng(seed);
  const int64_t rows = 20 + static_cast<int64_t>(rng.NextBounded(60));
  const int cols = 3 + static_cast<int>(rng.NextBounded(3));
  std::vector<std::vector<std::string>> data;
  for (int64_t i = 0; i < rows; ++i) {
    std::vector<std::string> row;
    for (int c = 0; c < cols; ++c) {
      row.push_back(std::to_string(rng.NextBounded(2 + c)));
    }
    data.push_back(row);
  }
  Relation relation = MakeRelation(data, cols);
  PartitionProduct product(rows);

  for (int a = 0; a < cols; ++a) {
    for (int b = a + 1; b < cols; ++b) {
      StrippedPartition pa = PartitionBuilder::ForAttribute(relation, a);
      StrippedPartition pb = PartitionBuilder::ForAttribute(relation, b);
      StrippedPartition expected =
          PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({a, b}))
              .Canonicalized();
      EXPECT_EQ(product.Multiply(pa, pb).value().Canonicalized(), expected);
      EXPECT_EQ(product.Multiply(pb, pa).value().Canonicalized(), expected);
    }
  }

  // Associativity on the first three columns.
  StrippedPartition p0 = PartitionBuilder::ForAttribute(relation, 0);
  StrippedPartition p1 = PartitionBuilder::ForAttribute(relation, 1);
  StrippedPartition p2 = PartitionBuilder::ForAttribute(relation, 2);
  StrippedPartition left =
      product.Multiply(product.Multiply(p0, p1).value(), p2)
          .value()
          .Canonicalized();
  StrippedPartition right =
      product.Multiply(p0, product.Multiply(p1, p2).value())
          .value()
          .Canonicalized();
  EXPECT_EQ(left, right);
  EXPECT_EQ(left, PartitionBuilder::ForAttributeSet(relation,
                                                    AttributeSet::Of({0, 1, 2}))
                      .Canonicalized());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProductPropertyTest,
                         ::testing::Range(0, 12));

TEST(PartitionProductTest, MismatchedRowCountsFail) {
  Relation small = MakeRelation({{"a", "x"}, {"b", "y"}}, 2);
  Relation big = PaperFigure1Relation();
  PartitionProduct product(big.num_rows());
  StatusOr<StrippedPartition> result =
      product.Multiply(PartitionBuilder::ForAttribute(small, 0),
                       PartitionBuilder::ForAttribute(big, 0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PartitionProductTest, MixedRepresentationsFail) {
  Relation relation = PaperFigure1Relation();
  PartitionProduct product(relation.num_rows());
  StatusOr<StrippedPartition> result = product.Multiply(
      PartitionBuilder::ForAttribute(relation, 0, /*stripped=*/true),
      PartitionBuilder::ForAttribute(relation, 1, /*stripped=*/false));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PartitionProductTest, PooledOutputMatchesUnpooled) {
  Relation relation = PaperFigure1Relation();
  PartitionBufferPool pool(1);
  PartitionProduct pooled(relation.num_rows());
  pooled.set_buffer_pool(&pool, 0);
  PartitionProduct plain(relation.num_rows());
  for (int a = 0; a < relation.num_columns(); ++a) {
    for (int b = a + 1; b < relation.num_columns(); ++b) {
      StrippedPartition pa = PartitionBuilder::ForAttribute(relation, a);
      StrippedPartition pb = PartitionBuilder::ForAttribute(relation, b);
      StrippedPartition from_pool = pooled.Multiply(pa, pb).value();
      // Exact equality, not just canonical equality: pooling must not change
      // emission order.
      EXPECT_EQ(from_pool, plain.Multiply(pa, pb).value()) << a << "," << b;
      pool.Recycle(std::move(from_pool));
    }
  }
}

TEST(PartitionProductTest, SteadyStateProductsAreAllocationFree) {
  Relation relation = PaperFigure1Relation();
  PartitionBufferPool pool(1);
  PartitionProduct product(relation.num_rows());
  product.set_buffer_pool(&pool, 0);
  const auto sweep = [&] {
    for (int a = 0; a < relation.num_columns(); ++a) {
      for (int b = a + 1; b < relation.num_columns(); ++b) {
        StatusOr<StrippedPartition> result =
            product.Multiply(PartitionBuilder::ForAttribute(relation, a),
                             PartitionBuilder::ForAttribute(relation, b));
        ASSERT_TRUE(result.ok());
        pool.Recycle(std::move(result).value());
      }
    }
  };
  sweep();  // warm up: scratch grows and the pool fills
  EXPECT_GT(product.TakeAllocations(), 0);
  // Pooled capacities grow monotonically, so allocations reach exactly 0
  // within a few sweeps and stay there.
  int64_t steady_allocations = -1;
  for (int attempt = 0; attempt < 5; ++attempt) {
    sweep();
    steady_allocations = product.TakeAllocations();
    if (steady_allocations == 0) break;
  }
  EXPECT_EQ(steady_allocations, 0);
  EXPECT_GT(pool.stats().reuses, 0);
}

TEST(PartitionProductTest, AllocationCounterWithoutPool) {
  Relation relation = PaperFigure1Relation();
  PartitionProduct product(relation.num_rows());
  StrippedPartition pa = PartitionBuilder::ForAttribute(relation, 1);
  StrippedPartition pb = PartitionBuilder::ForAttribute(relation, 2);
  ASSERT_TRUE(product.Multiply(pa, pb).ok());
  // No pool attached: output buffers are heap allocations, and the counter
  // says so.
  EXPECT_GT(product.allocations(), 0);
  EXPECT_GT(product.ScratchBytes(), 0);
  // TakeAllocations drains the counter.
  EXPECT_GT(product.TakeAllocations(), 0);
  EXPECT_EQ(product.allocations(), 0);
}

TEST(PartitionProductTest, EpochOverflowPastInt32MaxReinitializes) {
  // The probe table is epoch-labelled: each product's labels live at
  // [probe_base_, probe_base_ + classes) and the base only ever advances.
  // When the next label range would not fit in int32, Multiply must
  // re-initialize the table and wrap the base to 0 — and products straddling
  // that wrap must not see the pre-wrap labels (which sit *above* the new
  // base and would otherwise read as live).
  Relation relation = PaperFigure1Relation();
  PartitionProduct product(relation.num_rows());
  StrippedPartition pa = PartitionBuilder::ForAttribute(relation, 1);
  StrippedPartition pb = PartitionBuilder::ForAttribute(relation, 2);
  const StrippedPartition expected =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({1, 2}))
          .Canonicalized();

  // Plant the base so the next product's labels end exactly at INT32_MAX:
  // the highest base that does NOT trigger re-initialization.
  product.set_probe_base_for_testing(INT32_MAX - pa.num_classes());
  EXPECT_EQ(product.Multiply(pa, pb, /*a_token=*/7).value().Canonicalized(),
            expected);
  EXPECT_EQ(product.probe_base_for_testing(), INT32_MAX - pa.num_classes());

  // Token reuse at the top of the label range: no relabeling, same result.
  EXPECT_EQ(product.Multiply(pa, pb, /*a_token=*/7).value().Canonicalized(),
            expected);
  EXPECT_EQ(product.label_reuses(), 1);

  // A different left operand forces a relabel; advancing the base past the
  // previous labels overflows, so the table re-initializes and the base
  // wraps to 0.
  StrippedPartition pc = PartitionBuilder::ForAttribute(relation, 0);
  EXPECT_EQ(product.Multiply(pc, pb, /*a_token=*/8).value().Canonicalized(),
            PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({0, 2}))
                .Canonicalized());
  EXPECT_EQ(product.probe_base_for_testing(), 0);

  // Post-wrap products keep working: the pre-wrap labels near INT32_MAX
  // must have been wiped, not merely out-epoched.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(product.Multiply(pa, pb).value().Canonicalized(), expected)
        << "post-wrap product " << i;
  }
  EXPECT_LE(product.probe_base_for_testing() + pa.num_classes(), INT32_MAX);
}

TEST(PartitionProductTest, GrowsBeyondConstructedSize) {
  // A product sized for 2 rows fed 8-row partitions must grow its scratch
  // and produce the correct result rather than abort.
  Relation relation = PaperFigure1Relation();
  PartitionProduct product(2);
  StrippedPartition result =
      product
          .Multiply(PartitionBuilder::ForAttribute(relation, 1),
                    PartitionBuilder::ForAttribute(relation, 2))
          .value();
  EXPECT_EQ(result.Canonicalized(),
            PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({1, 2}))
                .Canonicalized());
}

}  // namespace
}  // namespace tane
