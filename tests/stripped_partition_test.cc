#include "partition/stripped_partition.h"

#include "gtest/gtest.h"

namespace tane {
namespace {

StrippedPartition Make(int64_t num_rows, std::vector<int32_t> rows,
                       std::vector<int32_t> offsets, bool stripped = true) {
  StatusOr<StrippedPartition> partition = StrippedPartition::Create(
      num_rows, std::move(rows), std::move(offsets), stripped);
  EXPECT_TRUE(partition.ok()) << partition.status().ToString();
  return std::move(partition).value();
}

TEST(StrippedPartitionTest, EmptyPartition) {
  StrippedPartition partition(5);
  EXPECT_EQ(partition.num_rows(), 5);
  EXPECT_EQ(partition.num_classes(), 0);
  EXPECT_EQ(partition.num_member_rows(), 0);
  EXPECT_EQ(partition.Error(), 0);
  EXPECT_EQ(partition.FullRank(), 5);  // all singletons
  EXPECT_TRUE(partition.IsSuperkey());
}

TEST(StrippedPartitionTest, BasicCounts) {
  // π = {{0,1},{2,3,4}} over 8 rows (rows 5,6,7 are singletons).
  StrippedPartition partition = Make(8, {0, 1, 2, 3, 4}, {0, 2, 5});
  EXPECT_EQ(partition.num_classes(), 2);
  EXPECT_EQ(partition.num_member_rows(), 5);
  EXPECT_EQ(partition.Error(), 3);      // (2-1) + (3-1)
  EXPECT_EQ(partition.FullRank(), 5);   // 2 stored + 3 singleton classes
  EXPECT_FALSE(partition.IsSuperkey());
  EXPECT_EQ(partition.class_size(0), 2);
  EXPECT_EQ(partition.class_size(1), 3);
}

TEST(StrippedPartitionTest, CreateValidatesOffsets) {
  EXPECT_FALSE(StrippedPartition::Create(4, {0, 1}, {0, 1, 2}, true).ok());
  EXPECT_FALSE(StrippedPartition::Create(4, {0, 1}, {1, 2}, true).ok());
  EXPECT_FALSE(StrippedPartition::Create(4, {0, 1}, {}, true).ok());
}

TEST(StrippedPartitionTest, CreateValidatesRowIds) {
  EXPECT_FALSE(StrippedPartition::Create(4, {0, 4}, {0, 2}, true).ok());
  EXPECT_FALSE(StrippedPartition::Create(4, {0, -1}, {0, 2}, true).ok());
  // Duplicate row across classes.
  EXPECT_FALSE(
      StrippedPartition::Create(4, {0, 1, 1, 2}, {0, 2, 4}, true).ok());
}

TEST(StrippedPartitionTest, CreateRejectsSingletonWhenStripped) {
  EXPECT_FALSE(StrippedPartition::Create(4, {0}, {0, 1}, true).ok());
  EXPECT_TRUE(StrippedPartition::Create(4, {0}, {0, 1}, false).ok());
}

TEST(StrippedPartitionTest, UnstrippedErrorMatchesStrippedError) {
  StrippedPartition stripped = Make(6, {0, 1, 2, 3, 4}, {0, 2, 5});
  StrippedPartition unstripped = stripped.Unstripped();
  EXPECT_FALSE(unstripped.stripped());
  EXPECT_EQ(unstripped.num_member_rows(), 6);
  EXPECT_EQ(unstripped.num_classes(), 3);   // {0,1},{2,3,4},{5}
  EXPECT_EQ(unstripped.Error(), stripped.Error());
  EXPECT_EQ(unstripped.FullRank(), stripped.FullRank());
}

TEST(StrippedPartitionTest, StrippedUnstrippedRoundTrip) {
  StrippedPartition original = Make(6, {0, 1, 2, 3, 4}, {0, 2, 5});
  StrippedPartition round_trip =
      original.Unstripped().Stripped().Canonicalized();
  EXPECT_EQ(round_trip, original.Canonicalized());
}

TEST(StrippedPartitionTest, CanonicalizedSortsClassesAndRows) {
  StrippedPartition partition = Make(6, {5, 4, 1, 0}, {0, 2, 4});
  StrippedPartition canonical = partition.Canonicalized();
  EXPECT_EQ(canonical.row_ids(), (std::vector<int32_t>{0, 1, 4, 5}));
  EXPECT_EQ(canonical.class_offsets(), (std::vector<int32_t>{0, 2, 4}));
}

TEST(StrippedPartitionTest, RefinesBasic) {
  // finer = {{0,1},{2,3}}, coarser = {{0,1,2,3}}.
  StrippedPartition finer = Make(5, {0, 1, 2, 3}, {0, 2, 4});
  StrippedPartition coarser = Make(5, {0, 1, 2, 3}, {0, 4});
  EXPECT_TRUE(finer.Refines(coarser));
  EXPECT_FALSE(coarser.Refines(finer));
  EXPECT_TRUE(finer.Refines(finer));
}

TEST(StrippedPartitionTest, RefinesHandlesStrippedSingletons) {
  // finer has class {0,1}; coarser's stored classes do not cover rows 0,1,
  // meaning both are singletons in coarser — so finer does NOT refine it.
  StrippedPartition finer = Make(5, {0, 1}, {0, 2});
  StrippedPartition coarser = Make(5, {2, 3}, {0, 2});
  EXPECT_FALSE(finer.Refines(coarser));
  // The empty (all-singleton) partition refines everything.
  StrippedPartition all_singletons(5);
  EXPECT_TRUE(all_singletons.Refines(coarser));
}

TEST(StrippedPartitionTest, EqualityIsStructural) {
  StrippedPartition a = Make(4, {0, 1}, {0, 2});
  StrippedPartition b = Make(4, {0, 1}, {0, 2});
  StrippedPartition c = Make(4, {2, 3}, {0, 2});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(StrippedPartitionTest, EstimatedBytesNonzeroForData) {
  StrippedPartition partition = Make(4, {0, 1}, {0, 2});
  EXPECT_GT(partition.EstimatedBytes(), 0);
}

TEST(StrippedPartitionTest, ZeroRowPartitionConversions) {
  StrippedPartition empty(0);
  EXPECT_EQ(empty.Stripped(), empty);
  StrippedPartition unstripped = empty.Unstripped();
  EXPECT_FALSE(unstripped.stripped());
  EXPECT_EQ(unstripped.num_classes(), 0);
  EXPECT_EQ(unstripped.Canonicalized().num_classes(), 0);
  EXPECT_TRUE(empty.Refines(empty));
  EXPECT_TRUE(empty.IsSuperkey());
}

TEST(StrippedPartitionTest, AllSingletonConversions) {
  StrippedPartition all_singletons(4);  // stripped, no stored classes
  EXPECT_EQ(all_singletons.Stripped(), all_singletons);
  StrippedPartition unstripped = all_singletons.Unstripped();
  EXPECT_FALSE(unstripped.stripped());
  EXPECT_EQ(unstripped.num_classes(), 4);  // {0},{1},{2},{3}
  EXPECT_EQ(unstripped.num_member_rows(), 4);
  EXPECT_EQ(unstripped.Error(), 0);
  EXPECT_EQ(unstripped.FullRank(), 4);
  // Round-trip back to the stripped representation.
  EXPECT_EQ(unstripped.Stripped().Canonicalized(),
            all_singletons.Canonicalized());
  // All-singletons refines everything; nothing with a >= 2 class refines it.
  StrippedPartition pair = Make(4, {0, 1}, {0, 2});
  EXPECT_TRUE(all_singletons.Refines(pair));
  EXPECT_FALSE(pair.Refines(all_singletons));
  EXPECT_TRUE(all_singletons.Refines(all_singletons));
}

TEST(StrippedPartitionTest, SingleClassConversions) {
  // One class holding every row: the coarsest partition.
  StrippedPartition single = Make(3, {0, 1, 2}, {0, 3});
  EXPECT_EQ(single.Stripped(), single);
  StrippedPartition unstripped = single.Unstripped();
  EXPECT_EQ(unstripped.num_classes(), 1);
  EXPECT_EQ(unstripped.num_member_rows(), 3);
  EXPECT_EQ(unstripped.Error(), single.Error());
  EXPECT_EQ(unstripped.Stripped().Canonicalized(), single.Canonicalized());
  // Everything refines the coarsest partition; it refines only itself.
  StrippedPartition finer = Make(3, {0, 1}, {0, 2});
  EXPECT_TRUE(finer.Refines(single));
  EXPECT_FALSE(single.Refines(finer));
  EXPECT_TRUE(single.Refines(single));
  EXPECT_EQ(single.Canonicalized(), single);
}

TEST(StrippedPartitionTest, UnstrippedStartRoundTrip) {
  // Unstripped input with singleton classes {2},{3},{4} spelled out.
  StrippedPartition unstripped =
      Make(5, {0, 1, 2, 3, 4}, {0, 2, 3, 4, 5}, /*stripped=*/false);
  EXPECT_EQ(unstripped.Unstripped(), unstripped);  // identity
  StrippedPartition stripped = unstripped.Stripped();
  EXPECT_TRUE(stripped.stripped());
  EXPECT_EQ(stripped.num_classes(), 1);  // only {0,1} survives
  EXPECT_EQ(stripped.Error(), unstripped.Error());
  EXPECT_EQ(stripped.FullRank(), unstripped.FullRank());
  EXPECT_EQ(stripped.Unstripped().Canonicalized(),
            unstripped.Canonicalized());
}

TEST(StrippedPartitionTest, StructuralHashAgreesWithEquality) {
  StrippedPartition a = Make(4, {0, 1}, {0, 2});
  StrippedPartition b = Make(4, {0, 1}, {0, 2});
  EXPECT_EQ(a.StructuralHash(), b.StructuralHash());
  // Different rows, different representation flag, different row counts:
  // each should (overwhelmingly) change the hash.
  EXPECT_NE(a.StructuralHash(), Make(4, {2, 3}, {0, 2}).StructuralHash());
  EXPECT_NE(a.StructuralHash(),
            Make(4, {0, 1}, {0, 2}, /*stripped=*/false).StructuralHash());
  EXPECT_NE(a.StructuralHash(), Make(5, {0, 1}, {0, 2}).StructuralHash());
  EXPECT_NE(StrippedPartition(4).StructuralHash(),
            StrippedPartition(5).StructuralHash());
}

TEST(StrippedPartitionTest, MoveBuffersIntoLeavesValidEmptyPartition) {
  StrippedPartition partition = Make(4, {0, 1, 2, 3}, {0, 2, 4});
  std::vector<int32_t> rows;
  std::vector<int32_t> offsets;
  partition.MoveBuffersInto(&rows, &offsets);
  EXPECT_EQ(rows, (std::vector<int32_t>{0, 1, 2, 3}));
  EXPECT_EQ(offsets, (std::vector<int32_t>{0, 2, 4}));
  // The source is now the empty (all-singleton) partition and still valid.
  EXPECT_EQ(partition.num_classes(), 0);
  EXPECT_EQ(partition.num_member_rows(), 0);
  EXPECT_EQ(partition.Error(), 0);
  EXPECT_EQ(partition, StrippedPartition(4));
}

}  // namespace
}  // namespace tane
