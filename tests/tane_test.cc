#include "core/tane.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace tane {
namespace {

using testing_util::ContainsFd;
using testing_util::FdStrings;
using testing_util::MakeRelation;
using testing_util::PaperFigure1Relation;

// Columns of the Figure 1 relation: 0=A, 1=B, 2=C, 3=D.
constexpr int kA = 0, kB = 1, kC = 2, kD = 3;

TEST(TaneTest, PaperFigure1CompleteFdSet) {
  // Hand-derived ground truth: the minimal non-trivial FDs of the Figure 1
  // relation are exactly
  //   {B,C}->A, {B,D}->A, {A,C}->B, {A,D}->B, {A,D}->C, {B,D}->C,
  // and nothing determines D (rows 3 and 4 agree on A,B,C but not D).
  StatusOr<DiscoveryResult> result = Tane::Discover(PaperFigure1Relation());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->num_fds(), 6) << ::testing::PrintToString(
      FdStrings(result->fds));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({kB, kC}), kA));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({kB, kD}), kA));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({kA, kC}), kB));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({kA, kD}), kB));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({kA, kD}), kC));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({kB, kD}), kC));
  // Negative facts from the paper's Example 2.
  EXPECT_FALSE(ContainsFd(result->fds, AttributeSet::Of({kA}), kB));
  for (const FunctionalDependency& fd : result->fds) {
    EXPECT_NE(fd.rhs, kD) << "nothing may determine D";
    EXPECT_DOUBLE_EQ(fd.error, 0.0);
  }
}

TEST(TaneTest, PaperFigure1Keys) {
  StatusOr<DiscoveryResult> result = Tane::Discover(PaperFigure1Relation());
  ASSERT_TRUE(result.ok());
  // Every key must separate rows 3/4 (differing only on D), so the minimal
  // keys are {A,D} and {B,D}.
  ASSERT_EQ(result->keys.size(), 2u);
  EXPECT_EQ(result->keys[0], AttributeSet::Of({kA, kD}));
  EXPECT_EQ(result->keys[1], AttributeSet::Of({kB, kD}));
}

TEST(TaneTest, ConstantColumnYieldsEmptyLhsFd) {
  Relation relation = MakeRelation({{"k", "1"}, {"k", "2"}, {"k", "1"}}, 2);
  StatusOr<DiscoveryResult> result = Tane::Discover(relation);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet(), 0));  // {} -> col0
  EXPECT_FALSE(ContainsFd(result->fds, AttributeSet::Of({1}), 0));
}

TEST(TaneTest, UniqueColumnDeterminesEverything) {
  Relation relation = MakeRelation(
      {{"1", "x", "p"}, {"2", "y", "p"}, {"3", "x", "q"}}, 3);
  StatusOr<DiscoveryResult> result = Tane::Discover(relation);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({0}), 1));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({0}), 2));
  ASSERT_FALSE(result->keys.empty());
  EXPECT_EQ(result->keys[0], AttributeSet::Of({0}));
}

TEST(TaneTest, KeyPrunedSiblingsDoNotLoseDependencies) {
  // col0 is unique (a key pruned at level 1), so the sets {0,1} and {0,2}
  // are never generated. The dependency {1,2} -> 0 is nevertheless minimal
  // ({1} and {2} alone do not determine 0) and must be emitted via the
  // definitional C+ fallback in PRUNE.
  Relation relation = MakeRelation(
      {{"1", "x", "p"}, {"2", "y", "p"}, {"3", "x", "q"}}, 3);
  StatusOr<DiscoveryResult> result = Tane::Discover(relation);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({1, 2}), 0))
      << ::testing::PrintToString(FdStrings(result->fds));
  // And the expected key set: {0} and {1,2}.
  ASSERT_EQ(result->keys.size(), 2u);
  EXPECT_EQ(result->keys[0], AttributeSet::Of({0}));
  EXPECT_EQ(result->keys[1], AttributeSet::Of({1, 2}));
}

TEST(TaneTest, DuplicatedColumnsDetermineEachOther) {
  Relation relation = MakeRelation({{"a", "a"}, {"b", "b"}, {"a", "a"}}, 2);
  StatusOr<DiscoveryResult> result = Tane::Discover(relation);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({0}), 1));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({1}), 0));
}

TEST(TaneTest, EmptyRelationAllConstantFds) {
  Relation relation = MakeRelation({}, 3);
  StatusOr<DiscoveryResult> result = Tane::Discover(relation);
  ASSERT_TRUE(result.ok());
  // Vacuously, {} -> A for every attribute; nothing else is minimal.
  EXPECT_EQ(result->num_fds(), 3);
  for (int a = 0; a < 3; ++a) {
    EXPECT_TRUE(ContainsFd(result->fds, AttributeSet(), a));
  }
}

TEST(TaneTest, SingleRowRelationAllConstantFds) {
  Relation relation = MakeRelation({{"x", "y"}}, 2);
  StatusOr<DiscoveryResult> result = Tane::Discover(relation);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_fds(), 2);
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet(), 0));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet(), 1));
}

TEST(TaneTest, SingleColumnRelationHasNoNontrivialFds) {
  Relation relation = MakeRelation({{"a"}, {"b"}}, 1);
  StatusOr<DiscoveryResult> result = Tane::Discover(relation);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_fds(), 0);
}

TEST(TaneTest, MaxLhsSizeTruncatesOutput) {
  StatusOr<DiscoveryResult> full = Tane::Discover(PaperFigure1Relation());
  ASSERT_TRUE(full.ok());

  TaneConfig config;
  config.max_lhs_size = 1;
  StatusOr<DiscoveryResult> limited =
      Tane::Discover(PaperFigure1Relation(), config);
  ASSERT_TRUE(limited.ok());
  // Figure 1 has no FDs with |lhs| <= 1.
  EXPECT_EQ(limited->num_fds(), 0);

  config.max_lhs_size = 2;
  StatusOr<DiscoveryResult> pairs =
      Tane::Discover(PaperFigure1Relation(), config);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->num_fds(), 6);  // all Figure-1 FDs have |lhs| = 2
  for (const FunctionalDependency& fd : pairs->fds) {
    EXPECT_LE(fd.lhs.size(), 2);
  }
}

TEST(TaneTest, PruningTogglesPreserveOutput) {
  // Disabling rhs+ pruning or key pruning must not change the result set,
  // only the amount of work (the paper: "the algorithm would work
  // correctly, but pruning might be less effective").
  StatusOr<DiscoveryResult> baseline = Tane::Discover(PaperFigure1Relation());
  ASSERT_TRUE(baseline.ok());

  for (bool rhs_plus : {false, true}) {
    for (bool key_pruning : {false, true}) {
      TaneConfig config;
      config.use_rhs_plus_pruning = rhs_plus;
      config.use_key_pruning = key_pruning;
      StatusOr<DiscoveryResult> result =
          Tane::Discover(PaperFigure1Relation(), config);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(FdStrings(result->fds), FdStrings(baseline->fds))
          << "rhs_plus=" << rhs_plus << " key_pruning=" << key_pruning;
    }
  }
}

TEST(TaneTest, UnstrippedPartitionsGiveSameResult) {
  TaneConfig config;
  config.use_stripped_partitions = false;
  StatusOr<DiscoveryResult> unstripped =
      Tane::Discover(PaperFigure1Relation(), config);
  ASSERT_TRUE(unstripped.ok());
  StatusOr<DiscoveryResult> stripped = Tane::Discover(PaperFigure1Relation());
  ASSERT_TRUE(stripped.ok());
  EXPECT_EQ(FdStrings(unstripped->fds), FdStrings(stripped->fds));
}

TEST(TaneTest, StatsAreFilledIn) {
  StatusOr<DiscoveryResult> result = Tane::Discover(PaperFigure1Relation());
  ASSERT_TRUE(result.ok());
  const DiscoveryStats& stats = result->stats;
  EXPECT_GE(stats.levels_processed, 2);
  EXPECT_GE(stats.sets_generated, 4);
  EXPECT_GT(stats.validity_tests, 0);
  EXPECT_GT(stats.partition_products, 0);
  EXPECT_GT(stats.peak_partition_bytes, 0);
  EXPECT_GE(stats.wall_seconds, 0.0);
  EXPECT_EQ(stats.keys_found, 2);
}

TEST(TaneTest, RejectsInvalidConfig) {
  TaneConfig config;
  config.epsilon = -0.5;
  EXPECT_FALSE(Tane::Discover(PaperFigure1Relation(), config).ok());
  config.epsilon = 1.5;
  EXPECT_FALSE(Tane::Discover(PaperFigure1Relation(), config).ok());
  config.epsilon = 0.0;
  config.max_lhs_size = -1;
  EXPECT_FALSE(Tane::Discover(PaperFigure1Relation(), config).ok());
}

TEST(TaneTest, DuplicateRowsAreHandled) {
  // Duplicate rows make nothing a key; dependencies are unaffected.
  Relation relation = MakeRelation(
      {{"1", "x"}, {"1", "x"}, {"2", "y"}, {"2", "y"}}, 2);
  StatusOr<DiscoveryResult> result = Tane::Discover(relation);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({0}), 1));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({1}), 0));
  EXPECT_TRUE(result->keys.empty());
}

TEST(TaneTest, OutputIsCanonicallySorted) {
  StatusOr<DiscoveryResult> result = Tane::Discover(PaperFigure1Relation());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::is_sorted(result->fds.begin(), result->fds.end()));
}

}  // namespace
}  // namespace tane
