#include "relation/schema.h"

#include "gtest/gtest.h"

namespace tane {
namespace {

TEST(SchemaTest, CreateFromNames) {
  StatusOr<Schema> schema = Schema::Create({"id", "name", "city"});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), 3);
  EXPECT_EQ(schema->name(0), "id");
  EXPECT_EQ(schema->name(2), "city");
}

TEST(SchemaTest, IndexOf) {
  StatusOr<Schema> schema = Schema::Create({"a", "b"});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->IndexOf("a"), 0);
  EXPECT_EQ(schema->IndexOf("b"), 1);
  EXPECT_EQ(schema->IndexOf("missing"), -1);
}

TEST(SchemaTest, RejectsDuplicateNames) {
  StatusOr<Schema> schema = Schema::Create({"a", "b", "a"});
  EXPECT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsEmptyName) {
  EXPECT_FALSE(Schema::Create({"a", ""}).ok());
}

TEST(SchemaTest, RejectsTooManyColumns) {
  std::vector<std::string> names;
  for (int i = 0; i < kMaxAttributes + 1; ++i) {
    names.push_back("c" + std::to_string(i));
  }
  EXPECT_FALSE(Schema::Create(names).ok());
  names.pop_back();
  EXPECT_TRUE(Schema::Create(names).ok());
}

TEST(SchemaTest, CreateUnnamed) {
  StatusOr<Schema> schema = Schema::CreateUnnamed(3);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), 3);
  EXPECT_EQ(schema->name(0), "col0");
  EXPECT_EQ(schema->name(2), "col2");
  EXPECT_FALSE(Schema::CreateUnnamed(-1).ok());
  EXPECT_TRUE(Schema::CreateUnnamed(0).ok());
}

TEST(SchemaTest, Equality) {
  Schema a = Schema::Create({"x", "y"}).value();
  Schema b = Schema::Create({"x", "y"}).value();
  Schema c = Schema::Create({"x", "z"}).value();
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace tane
