#include "datasets/paper_datasets.h"

#include "analysis/violations.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace tane {
namespace {

TEST(PaperDatasetInfoTest, TableOneFactsArePresent) {
  const std::vector<PaperDatasetInfo>& infos = AllPaperDatasets();
  ASSERT_EQ(infos.size(), 5u);
  const PaperDatasetInfo& wbc =
      GetPaperDatasetInfo(PaperDataset::kWisconsinBreastCancer);
  EXPECT_EQ(wbc.rows, 699);
  EXPECT_EQ(wbc.columns, 11);
  EXPECT_EQ(wbc.paper_num_fds, 46);
  EXPECT_DOUBLE_EQ(wbc.paper_tane_seconds, 0.76);
  const PaperDatasetInfo& lympho =
      GetPaperDatasetInfo(PaperDataset::kLymphography);
  EXPECT_EQ(lympho.rows, 148);
  EXPECT_EQ(lympho.columns, 19);
  EXPECT_EQ(lympho.paper_num_fds, 2730);
}

TEST(PaperDatasetTest, DimensionsMatchThePaper) {
  for (const PaperDatasetInfo& info : AllPaperDatasets()) {
    StatusOr<Relation> relation = MakePaperDataset(info.dataset);
    ASSERT_TRUE(relation.ok())
        << info.name << ": " << relation.status().ToString();
    EXPECT_EQ(relation->num_rows(), info.rows) << info.name;
    EXPECT_EQ(relation->num_columns(), info.columns) << info.name;
  }
}

TEST(PaperDatasetTest, Deterministic) {
  StatusOr<Relation> a =
      MakePaperDataset(PaperDataset::kWisconsinBreastCancer);
  StatusOr<Relation> b =
      MakePaperDataset(PaperDataset::kWisconsinBreastCancer);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int64_t row = 0; row < a->num_rows(); row += 13) {
    for (int c = 0; c < a->num_columns(); ++c) {
      ASSERT_EQ(a->code(row, c), b->code(row, c));
    }
  }
}

TEST(PaperDatasetTest, RowOverrideScales) {
  StatusOr<Relation> small =
      MakePaperDataset(PaperDataset::kHepatitis, /*rows=*/40);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->num_rows(), 40);
  EXPECT_EQ(small->num_columns(), 20);
}

TEST(PaperDatasetTest, ChessPositionsFormAKeyAndDetermineClass) {
  StatusOr<Relation> chess =
      MakePaperDataset(PaperDataset::kChess, /*rows=*/2000);
  ASSERT_TRUE(chess.ok());
  StatusOr<double> error = MeasureG3(
      *chess, {AttributeSet::Of({0, 1, 2, 3, 4, 5}), 6, 0.0});
  ASSERT_TRUE(error.ok());
  EXPECT_DOUBLE_EQ(*error, 0.0);
}

TEST(PaperDatasetTest, WisconsinClassRoughlyDependsOnScores) {
  StatusOr<Relation> wbc =
      MakePaperDataset(PaperDataset::kWisconsinBreastCancer);
  ASSERT_TRUE(wbc.ok());
  // The class column (10) is derived from scores 1-4 with 3% noise.
  StatusOr<double> error =
      MeasureG3(*wbc, {AttributeSet::Of({1, 2, 3, 4}), 10, 0.0});
  ASSERT_TRUE(error.ok());
  EXPECT_LT(*error, 0.05);
}

TEST(PaperDatasetTest, AdultEducationNumPlantedFd) {
  StatusOr<Relation> adult =
      MakePaperDataset(PaperDataset::kAdult, /*rows=*/3000);
  ASSERT_TRUE(adult.ok());
  const int education = adult->schema().IndexOf("education");
  const int education_num = adult->schema().IndexOf("education_num");
  ASSERT_GE(education, 0);
  ASSERT_GE(education_num, 0);
  StatusOr<double> error = MeasureG3(
      *adult, {AttributeSet::Singleton(education), education_num, 0.0});
  ASSERT_TRUE(error.ok());
  EXPECT_DOUBLE_EQ(*error, 0.0);
}

TEST(ParsePaperDatasetNameTest, KnownAndUnknownNames) {
  EXPECT_TRUE(ParsePaperDatasetName("lymphography").ok());
  EXPECT_TRUE(ParsePaperDatasetName("hepatitis").ok());
  EXPECT_TRUE(ParsePaperDatasetName("wbc").ok());
  EXPECT_TRUE(ParsePaperDatasetName("breast-cancer").ok());
  EXPECT_TRUE(ParsePaperDatasetName("chess").ok());
  EXPECT_TRUE(ParsePaperDatasetName("adult").ok());
  EXPECT_FALSE(ParsePaperDatasetName("mnist").ok());
}

}  // namespace
}  // namespace tane
