#include "baselines/fdep.h"

#include <algorithm>

#include "baselines/brute_force.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace tane {
namespace {

using testing_util::ContainsFd;
using testing_util::FdStrings;
using testing_util::MakeRelation;
using testing_util::PaperFigure1Relation;

TEST(FdepAgreeSetsTest, PairwiseAgreementOnSmallRelation) {
  // rows: (a,1) (a,2) (b,1) — agree sets: {0} for rows 0-1, {1} for rows
  // 0-2, {} for rows 1-2.
  Relation relation = MakeRelation({{"a", "1"}, {"a", "2"}, {"b", "1"}}, 2);
  std::vector<AttributeSet> agree = Fdep::ComputeAgreeSets(relation);
  ASSERT_EQ(agree.size(), 3u);
  EXPECT_EQ(agree[0], AttributeSet());
  EXPECT_EQ(agree[1], AttributeSet::Of({0}));
  EXPECT_EQ(agree[2], AttributeSet::Of({1}));
}

TEST(FdepAgreeSetsTest, DuplicateRowsAgreeEverywhere) {
  Relation relation = MakeRelation({{"a", "1"}, {"a", "1"}}, 2);
  std::vector<AttributeSet> agree = Fdep::ComputeAgreeSets(relation);
  ASSERT_EQ(agree.size(), 1u);
  EXPECT_EQ(agree[0], AttributeSet::Of({0, 1}));
}

TEST(FdepAgreeSetsTest, DeduplicatesAcrossPairs) {
  Relation relation = MakeRelation({{"a"}, {"a"}, {"a"}}, 1);
  // Three pairs, all with the same agree set {0}.
  EXPECT_EQ(Fdep::ComputeAgreeSets(relation).size(), 1u);
}

TEST(FdepMaximalSetsTest, KeepsOnlyMaximal) {
  std::vector<AttributeSet> maximal = Fdep::MaximalSets(
      {AttributeSet::Of({0}), AttributeSet::Of({0, 1}), AttributeSet::Of({2}),
       AttributeSet::Of({0, 1})});
  ASSERT_EQ(maximal.size(), 2u);
  EXPECT_TRUE(std::count(maximal.begin(), maximal.end(),
                         AttributeSet::Of({0, 1})) == 1);
  EXPECT_TRUE(std::count(maximal.begin(), maximal.end(),
                         AttributeSet::Of({2})) == 1);
}

TEST(FdepTest, PaperFigure1MatchesGroundTruth) {
  StatusOr<DiscoveryResult> fdep = Fdep::Discover(PaperFigure1Relation());
  ASSERT_TRUE(fdep.ok());
  StatusOr<DiscoveryResult> oracle =
      BruteForce::Discover(PaperFigure1Relation());
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(FdStrings(fdep->fds), FdStrings(oracle->fds));
}

TEST(FdepTest, ConstantAndUniqueColumns) {
  Relation relation = MakeRelation(
      {{"k", "1", "x"}, {"k", "2", "x"}, {"k", "3", "y"}}, 3);
  StatusOr<DiscoveryResult> result = Fdep::Discover(relation);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet(), 0));       // constant
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({1}), 2));  // unique
}

TEST(FdepTest, EmptyAndSingleRowRelations) {
  StatusOr<DiscoveryResult> empty = Fdep::Discover(MakeRelation({}, 2));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_fds(), 2);

  StatusOr<DiscoveryResult> single =
      Fdep::Discover(MakeRelation({{"a", "b"}}, 2));
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->num_fds(), 2);
}

TEST(FdepTest, MaxLhsLimitDropsWideDependencies) {
  StatusOr<DiscoveryResult> limited =
      Fdep::Discover(PaperFigure1Relation(), /*max_lhs_size=*/1);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->num_fds(), 0);
}

TEST(FdepTest, DuplicateRowsDoNotBreakInduction) {
  Relation relation = MakeRelation(
      {{"1", "x"}, {"1", "x"}, {"2", "y"}, {"2", "y"}}, 2);
  StatusOr<DiscoveryResult> result = Fdep::Discover(relation);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({0}), 1));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({1}), 0));
}

}  // namespace
}  // namespace tane
