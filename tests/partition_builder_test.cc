#include "partition/partition_builder.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace tane {
namespace {

using testing_util::MakeRelation;
using testing_util::PaperFigure1Relation;

TEST(PartitionBuilderTest, PaperExample1PartitionOfA) {
  // π_{A} = {{1,2},{3,4,5},{6,7,8}} in the paper's 1-based numbering.
  Relation relation = PaperFigure1Relation();
  StrippedPartition partition =
      PartitionBuilder::ForAttribute(relation, 0).Canonicalized();
  EXPECT_EQ(partition.num_classes(), 3);
  EXPECT_EQ(partition.row_ids(),
            (std::vector<int32_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(partition.class_offsets(), (std::vector<int32_t>{0, 2, 5, 8}));
}

TEST(PartitionBuilderTest, PaperExample1PartitionOfBC) {
  // π_{B,C} = {{1},{2},{3,4},{5},{6},{7},{8}}; stripped keeps only {3,4}.
  Relation relation = PaperFigure1Relation();
  StrippedPartition partition =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({1, 2}))
          .Canonicalized();
  EXPECT_EQ(partition.num_classes(), 1);
  EXPECT_EQ(partition.row_ids(), (std::vector<int32_t>{2, 3}));
  EXPECT_EQ(partition.FullRank(), 7);
}

TEST(PartitionBuilderTest, PaperExample1PartitionOfB) {
  // π_{B} = {{1},{2,3,4},{5,6},{7,8}}.
  Relation relation = PaperFigure1Relation();
  StrippedPartition partition =
      PartitionBuilder::ForAttribute(relation, 1).Canonicalized();
  EXPECT_EQ(partition.num_classes(), 3);
  EXPECT_EQ(partition.FullRank(), 4);
  EXPECT_EQ(partition.Error(), 4);
}

TEST(PartitionBuilderTest, UnstrippedKeepsSingletons) {
  Relation relation = PaperFigure1Relation();
  StrippedPartition partition = PartitionBuilder::ForAttribute(
      relation, 1, /*stripped=*/false);
  EXPECT_FALSE(partition.stripped());
  EXPECT_EQ(partition.num_classes(), 4);
  EXPECT_EQ(partition.num_member_rows(), 8);
  // Error agrees with the stripped representation.
  EXPECT_EQ(partition.Error(),
            PartitionBuilder::ForAttribute(relation, 1).Error());
}

TEST(PartitionBuilderTest, ConstantColumnIsOneClass) {
  Relation relation = MakeRelation({{"k"}, {"k"}, {"k"}}, 1);
  StrippedPartition partition = PartitionBuilder::ForAttribute(relation, 0);
  EXPECT_EQ(partition.num_classes(), 1);
  EXPECT_EQ(partition.Error(), 2);
  EXPECT_EQ(partition.FullRank(), 1);
}

TEST(PartitionBuilderTest, UniqueColumnIsSuperkey) {
  Relation relation = MakeRelation({{"a"}, {"b"}, {"c"}}, 1);
  StrippedPartition partition = PartitionBuilder::ForAttribute(relation, 0);
  EXPECT_EQ(partition.num_classes(), 0);
  EXPECT_TRUE(partition.IsSuperkey());
}

TEST(PartitionBuilderTest, EmptyRelation) {
  Relation relation = MakeRelation({}, 2);
  StrippedPartition partition = PartitionBuilder::ForAttribute(relation, 0);
  EXPECT_EQ(partition.num_rows(), 0);
  EXPECT_EQ(partition.num_classes(), 0);
  EXPECT_TRUE(partition.IsSuperkey());
}

TEST(PartitionBuilderTest, ForAllAttributesMatchesPerAttribute) {
  Relation relation = PaperFigure1Relation();
  std::vector<StrippedPartition> all =
      PartitionBuilder::ForAllAttributes(relation);
  ASSERT_EQ(all.size(), 4u);
  for (int a = 0; a < 4; ++a) {
    EXPECT_EQ(all[a].Canonicalized(),
              PartitionBuilder::ForAttribute(relation, a).Canonicalized());
  }
}

TEST(PartitionBuilderTest, EmptyAttributeSetIsOneBigClass) {
  Relation relation = MakeRelation({{"a"}, {"b"}, {"c"}}, 1);
  StrippedPartition partition =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet());
  EXPECT_EQ(partition.num_classes(), 1);
  EXPECT_EQ(partition.num_member_rows(), 3);
  EXPECT_EQ(partition.Error(), 2);
}

TEST(PartitionBuilderTest, EmptyAttributeSetSingleRowIsStrippedAway) {
  Relation relation = MakeRelation({{"a"}}, 1);
  StrippedPartition partition =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet());
  EXPECT_EQ(partition.num_classes(), 0);
  EXPECT_EQ(partition.Error(), 0);
}

TEST(PartitionBuilderTest, SetPartitionMatchesSingletonForSingleAttribute) {
  Relation relation = PaperFigure1Relation();
  for (int a = 0; a < relation.num_columns(); ++a) {
    EXPECT_EQ(PartitionBuilder::ForAttributeSet(relation,
                                                AttributeSet::Singleton(a))
                  .Canonicalized(),
              PartitionBuilder::ForAttribute(relation, a).Canonicalized());
  }
}

TEST(PartitionBuilderTest, FullSetOnDistinctRowsIsSuperkey) {
  Relation relation = PaperFigure1Relation();
  StrippedPartition partition = PartitionBuilder::ForAttributeSet(
      relation, AttributeSet::FullSet(relation.num_columns()));
  EXPECT_TRUE(partition.IsSuperkey());
}

}  // namespace
}  // namespace tane
