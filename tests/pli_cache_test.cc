#include "core/pli_cache.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/partition_store.h"
#include "gtest/gtest.h"

namespace tane {
namespace {

StrippedPartition Make(int64_t num_rows, std::vector<int32_t> rows,
                       std::vector<int32_t> offsets) {
  StatusOr<StrippedPartition> partition = StrippedPartition::Create(
      num_rows, std::move(rows), std::move(offsets), /*stripped=*/true);
  EXPECT_TRUE(partition.ok()) << partition.status().ToString();
  return std::move(partition).value();
}

std::unique_ptr<PliCache> MakeCache() {
  return std::make_unique<PliCache>(std::make_unique<MemoryPartitionStore>());
}

TEST(PliCacheTest, DuplicatePutsShareStorage) {
  auto cache = MakeCache();
  const StrippedPartition partition = Make(6, {0, 1, 2, 3}, {0, 2, 4});

  StatusOr<int64_t> first = cache->Put(partition);
  ASSERT_TRUE(first.ok());
  const int64_t resident_after_first = cache->resident_bytes();
  EXPECT_GT(resident_after_first, 0);

  StatusOr<int64_t> second = cache->Put(partition);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(*first, *second);  // outer handles stay unique
  // The duplicate costs no extra resident bytes.
  EXPECT_EQ(cache->resident_bytes(), resident_after_first);

  const PliCacheStats stats = cache->stats();
  EXPECT_EQ(stats.lookups, 2);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  // bytes_saved counts logical elements (deterministic), not capacity.
  EXPECT_EQ(stats.bytes_saved,
            static_cast<int64_t>((partition.row_ids().size() +
                                  partition.class_offsets().size()) *
                                 sizeof(int32_t)));
}

TEST(PliCacheTest, CountersAreConsistent) {
  auto cache = MakeCache();
  const StrippedPartition a = Make(6, {0, 1, 2, 3}, {0, 2, 4});
  const StrippedPartition b = Make(6, {0, 1, 2, 3}, {0, 4});
  ASSERT_TRUE(cache->Put(a).ok());
  ASSERT_TRUE(cache->Put(b).ok());
  ASSERT_TRUE(cache->Put(a).ok());
  ASSERT_TRUE(cache->Put(b).ok());
  ASSERT_TRUE(cache->Put(a).ok());
  const PliCacheStats stats = cache->stats();
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
  EXPECT_EQ(stats.lookups, 5);
  EXPECT_EQ(stats.misses, 2);
}

TEST(PliCacheTest, GetReturnsTheStoredPartition) {
  auto cache = MakeCache();
  const StrippedPartition partition = Make(6, {0, 1, 2, 3}, {0, 2, 4});
  StatusOr<int64_t> first = cache->Put(partition);
  StatusOr<int64_t> second = cache->Put(partition);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  for (int64_t handle : {*first, *second}) {
    StatusOr<StrippedPartition> fetched = cache->Get(handle);
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(*fetched, partition);
    const StrippedPartition* peeked = cache->Peek(handle);
    ASSERT_NE(peeked, nullptr);
    EXPECT_EQ(*peeked, partition);
  }
}

TEST(PliCacheTest, DistinctPartitionsDoNotAlias) {
  auto cache = MakeCache();
  const StrippedPartition a = Make(6, {0, 1, 2, 3}, {0, 2, 4});
  // Same FullRank and same arrays sizes, different rows: must NOT intern.
  const StrippedPartition b = Make(6, {0, 1, 4, 5}, {0, 2, 4});
  ASSERT_EQ(a.FullRank(), b.FullRank());
  StatusOr<int64_t> ha = cache->Put(a);
  StatusOr<int64_t> hb = cache->Put(b);
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(hb.ok());
  EXPECT_EQ(cache->stats().hits, 0);
  EXPECT_EQ(*cache->Get(*ha), a);
  EXPECT_EQ(*cache->Get(*hb), b);
}

TEST(PliCacheTest, ReleaseIsRefcounted) {
  auto cache = MakeCache();
  const StrippedPartition partition = Make(6, {0, 1, 2, 3}, {0, 2, 4});
  StatusOr<int64_t> first = cache->Put(partition);
  StatusOr<int64_t> second = cache->Put(partition);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  // Releasing one of two references keeps the shared partition alive.
  ASSERT_TRUE(cache->Release(*first).ok());
  EXPECT_GT(cache->resident_bytes(), 0);
  StatusOr<StrippedPartition> still_there = cache->Get(*second);
  ASSERT_TRUE(still_there.ok());
  EXPECT_EQ(*still_there, partition);
  // A released outer handle is gone even though the partition survives.
  EXPECT_FALSE(cache->Get(*first).ok());

  // The last reference frees it.
  ASSERT_TRUE(cache->Release(*second).ok());
  EXPECT_EQ(cache->resident_bytes(), 0);
  EXPECT_FALSE(cache->Release(*second).ok());  // double release is an error
}

TEST(PliCacheTest, ReleasedPartitionCanBeReinterned) {
  auto cache = MakeCache();
  const StrippedPartition partition = Make(6, {0, 1, 2, 3}, {0, 2, 4});
  StatusOr<int64_t> first = cache->Put(partition);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(cache->Release(*first).ok());
  // After the last reference died, the next Put is a miss, not a hit on a
  // stale entry.
  StatusOr<int64_t> second = cache->Put(partition);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache->stats().misses, 2);
  EXPECT_EQ(cache->stats().hits, 0);
  EXPECT_EQ(*cache->Get(*second), partition);
}

TEST(PliCacheTest, HitRecyclesDuplicateBuffersIntoPool) {
  auto cache = MakeCache();
  PartitionBufferPool pool(1);
  cache->set_buffer_pool(&pool);
  const StrippedPartition partition = Make(6, {0, 1, 2, 3}, {0, 2, 4});
  ASSERT_TRUE(cache->Put(partition).ok());
  ASSERT_TRUE(cache->Put(partition).ok());  // duplicate: buffers recycled
  EXPECT_GE(pool.stats().recycles, 2);
  EXPECT_GT(pool.pooled_bytes(), 0);
}

}  // namespace
}  // namespace tane
