// Tests for the g1 and g2 error measures (Kivinen & Mannila), implemented
// on partitions alongside the g3 measure TANE uses.

#include "gtest/gtest.h"
#include "partition/error.h"
#include "partition/partition_builder.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace tane {
namespace {

using testing_util::MakeRelation;
using testing_util::PaperFigure1Relation;

struct Measures {
  int64_t g1_pairs;
  int64_t g2_rows;
  int64_t g3_removals;
};

Measures Compute(const Relation& relation, AttributeSet lhs, int rhs) {
  G3Calculator calc(relation.num_rows());
  StrippedPartition pl = PartitionBuilder::ForAttributeSet(relation, lhs);
  StrippedPartition pj =
      PartitionBuilder::ForAttributeSet(relation, lhs.With(rhs));
  return {calc.ViolatingPairCount(pl, pj).value(),
          calc.ViolatingRowCount(pl, pj).value(),
          calc.RemovalCount(pl, pj).value()};
}

// Direct O(|r|²) reference implementation from the definitions.
Measures BruteMeasures(const Relation& relation, AttributeSet lhs, int rhs) {
  const int64_t rows = relation.num_rows();
  int64_t pairs = 0;
  std::vector<bool> violating(rows, false);
  for (int64_t t = 0; t < rows; ++t) {
    for (int64_t u = 0; u < rows; ++u) {
      if (t == u) continue;
      bool agree = true;
      for (int a : Members(lhs)) {
        if (!relation.Agrees(t, u, a)) {
          agree = false;
          break;
        }
      }
      if (agree && !relation.Agrees(t, u, rhs)) {
        ++pairs;
        violating[t] = true;
      }
    }
  }
  int64_t row_count = 0;
  for (bool v : violating) row_count += v ? 1 : 0;
  return {pairs, row_count, 0};
}

TEST(ErrorMeasuresTest, PaperExampleG1G2) {
  // {A} -> B in Figure 1: classes {1,2}, {3,4,5}, {6,7,8} all split, so
  // every member row is in violation: g2 rows = 8. Ordered violating
  // pairs: {1,2}: 2; {3,4,5}: subclasses {3,4},{5} -> 3*2-2*1 = 4;
  // {6,7,8}: {6},{7,8} -> 6-2 = 4. Total 10.
  Relation relation = PaperFigure1Relation();
  Measures m = Compute(relation, AttributeSet::Of({0}), 1);
  EXPECT_EQ(m.g1_pairs, 10);
  EXPECT_EQ(m.g2_rows, 8);
  EXPECT_EQ(m.g3_removals, 3);
}

TEST(ErrorMeasuresTest, ExactFdAllZero) {
  Relation relation = PaperFigure1Relation();
  Measures m = Compute(relation, AttributeSet::Of({1, 2}), 0);
  EXPECT_EQ(m.g1_pairs, 0);
  EXPECT_EQ(m.g2_rows, 0);
  EXPECT_EQ(m.g3_removals, 0);
}

TEST(ErrorMeasuresTest, ErrorsNormalized) {
  Relation relation = PaperFigure1Relation();
  G3Calculator calc(relation.num_rows());
  StrippedPartition pa = PartitionBuilder::ForAttribute(relation, 0);
  StrippedPartition pab =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({0, 1}));
  EXPECT_DOUBLE_EQ(calc.G1Error(pa, pab).value(), 10.0 / 64.0);
  EXPECT_DOUBLE_EQ(calc.G2Error(pa, pab).value(), 1.0);
  EXPECT_DOUBLE_EQ(calc.Error(pa, pab).value(), 3.0 / 8.0);
}

TEST(ErrorMeasuresTest, KnownOrderingHolds) {
  // For any dependency: g3 <= g2 and g1 <= g2 (violating pairs involve
  // only violating rows).
  Relation relation = PaperFigure1Relation();
  G3Calculator calc(relation.num_rows());
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a == b) continue;
      StrippedPartition pl = PartitionBuilder::ForAttribute(relation, a);
      StrippedPartition pj = PartitionBuilder::ForAttributeSet(
          relation, AttributeSet::Of({a, b}));
      EXPECT_LE(calc.Error(pl, pj).value(), calc.G2Error(pl, pj).value() + 1e-12);
      EXPECT_LE(calc.G1Error(pl, pj).value(), calc.G2Error(pl, pj).value() + 1e-12);
    }
  }
}

class ErrorMeasuresPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ErrorMeasuresPropertyTest, MatchesPairwiseDefinition) {
  Rng rng(GetParam() * 31337 + 5);
  const int64_t rows = 8 + static_cast<int64_t>(rng.NextBounded(40));
  std::vector<std::vector<std::string>> data;
  for (int64_t i = 0; i < rows; ++i) {
    data.push_back({std::to_string(rng.NextBounded(3)),
                    std::to_string(rng.NextBounded(4)),
                    std::to_string(rng.NextBounded(2))});
  }
  Relation relation = MakeRelation(data, 3);
  for (uint64_t lhs_mask = 0; lhs_mask < 8; ++lhs_mask) {
    AttributeSet lhs = AttributeSet::FromMask(lhs_mask);
    for (int rhs = 0; rhs < 3; ++rhs) {
      if (lhs.Contains(rhs)) continue;
      Measures fast = Compute(relation, lhs, rhs);
      Measures brute = BruteMeasures(relation, lhs, rhs);
      EXPECT_EQ(fast.g1_pairs, brute.g1_pairs)
          << lhs.ToString() << " -> " << rhs;
      EXPECT_EQ(fast.g2_rows, brute.g2_rows)
          << lhs.ToString() << " -> " << rhs;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErrorMeasuresPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace tane
