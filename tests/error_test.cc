#include "partition/error.h"

#include "gtest/gtest.h"
#include "partition/partition_builder.h"
#include "partition/product.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace tane {
namespace {

using testing_util::MakeRelation;
using testing_util::PaperFigure1Relation;

TEST(G3Test, ExactDependencyHasZeroError) {
  // {B,C} -> A holds in the paper's example (Example 2).
  Relation relation = PaperFigure1Relation();
  G3Calculator g3(relation.num_rows());
  StrippedPartition bc =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({1, 2}));
  StrippedPartition bca =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({0, 1, 2}));
  EXPECT_EQ(g3.RemovalCount(bc, bca).value(), 0);
  EXPECT_DOUBLE_EQ(g3.Error(bc, bca).value(), 0.0);
}

TEST(G3Test, InvalidDependencyPaperExample) {
  // {A} -> B does not hold: class {3,4,5} of π_A splits into {3,4} and {5}
  // under π_{A,B}, and class {6,7,8} splits into {6} and {7,8}; class {1,2}
  // splits into {1} and {2}. Removals = 1 + 1 + 1 = 3, g3 = 3/8.
  Relation relation = PaperFigure1Relation();
  G3Calculator g3(relation.num_rows());
  StrippedPartition a = PartitionBuilder::ForAttribute(relation, 0);
  StrippedPartition ab =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({0, 1}));
  EXPECT_EQ(g3.RemovalCount(a, ab).value(), 3);
  EXPECT_DOUBLE_EQ(g3.Error(a, ab).value(), 3.0 / 8.0);
}

TEST(G3Test, ConstantToUniqueWorstCase) {
  // lhs constant, rhs unique: keep one row per relation.
  Relation relation = MakeRelation({{"k", "1"}, {"k", "2"}, {"k", "3"}}, 2);
  G3Calculator g3(relation.num_rows());
  StrippedPartition lhs = PartitionBuilder::ForAttribute(relation, 0);
  StrippedPartition joint =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({0, 1}));
  EXPECT_EQ(g3.RemovalCount(lhs, joint).value(), 2);
  EXPECT_DOUBLE_EQ(g3.Error(lhs, joint).value(), 2.0 / 3.0);
}

TEST(G3Test, SingleExceptionRow) {
  Relation relation = MakeRelation(
      {{"x", "1"}, {"x", "1"}, {"x", "1"}, {"x", "2"}}, 2);
  G3Calculator g3(relation.num_rows());
  StrippedPartition lhs = PartitionBuilder::ForAttribute(relation, 0);
  StrippedPartition joint =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({0, 1}));
  EXPECT_EQ(g3.RemovalCount(lhs, joint).value(), 1);
  EXPECT_DOUBLE_EQ(g3.Error(lhs, joint).value(), 0.25);
}

TEST(G3Test, WorksOnUnstrippedPartitions) {
  Relation relation = PaperFigure1Relation();
  G3Calculator g3(relation.num_rows());
  StrippedPartition a =
      PartitionBuilder::ForAttribute(relation, 0, /*stripped=*/false);
  StrippedPartition ab = PartitionBuilder::ForAttributeSet(
      relation, AttributeSet::Of({0, 1}), /*stripped=*/false);
  EXPECT_EQ(g3.RemovalCount(a, ab).value(), 3);
}

TEST(G3Test, MixedRepresentationsAgree) {
  Relation relation = PaperFigure1Relation();
  G3Calculator g3(relation.num_rows());
  StrippedPartition a_stripped = PartitionBuilder::ForAttribute(relation, 0);
  StrippedPartition ab_unstripped = PartitionBuilder::ForAttributeSet(
      relation, AttributeSet::Of({0, 1}), /*stripped=*/false);
  EXPECT_EQ(g3.RemovalCount(a_stripped, ab_unstripped).value(), 3);
}

TEST(G3Test, ReusableAcrossCalls) {
  Relation relation = PaperFigure1Relation();
  G3Calculator g3(relation.num_rows());
  StrippedPartition a = PartitionBuilder::ForAttribute(relation, 0);
  StrippedPartition ab =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({0, 1}));
  const int64_t first = g3.RemovalCount(a, ab).value();
  const int64_t second = g3.RemovalCount(a, ab).value();
  EXPECT_EQ(first, second);
}

TEST(G3BoundsTest, BoundsBracketExactValueOnPaperExample) {
  Relation relation = PaperFigure1Relation();
  G3Calculator g3(relation.num_rows());
  for (int lhs_attr = 0; lhs_attr < 4; ++lhs_attr) {
    for (int rhs = 0; rhs < 4; ++rhs) {
      if (rhs == lhs_attr) continue;
      StrippedPartition lhs =
          PartitionBuilder::ForAttribute(relation, lhs_attr);
      StrippedPartition joint = PartitionBuilder::ForAttributeSet(
          relation, AttributeSet::Of({lhs_attr, rhs}));
      const G3Bounds bounds = BoundG3RemovalCount(lhs, joint);
      const int64_t exact = g3.RemovalCount(lhs, joint).value();
      EXPECT_LE(bounds.lower, exact);
      EXPECT_GE(bounds.upper, exact);
      EXPECT_GE(bounds.lower, 0);
    }
  }
}

// Property: bounds bracket the exact removal count on random relations, and
// g3 is 0 exactly when e-values match (Lemma 2 consistency).
class G3PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(G3PropertyTest, BoundsAndLemma2Consistency) {
  Rng rng(GetParam() * 977 + 1);
  const int64_t rows = 10 + static_cast<int64_t>(rng.NextBounded(80));
  const int cols = 3;
  std::vector<std::vector<std::string>> data;
  for (int64_t i = 0; i < rows; ++i) {
    data.push_back({std::to_string(rng.NextBounded(3)),
                    std::to_string(rng.NextBounded(4)),
                    std::to_string(rng.NextBounded(2))});
  }
  Relation relation = MakeRelation(data, cols);
  G3Calculator g3(rows);

  for (int a = 0; a < cols; ++a) {
    for (int b = 0; b < cols; ++b) {
      if (a == b) continue;
      StrippedPartition lhs = PartitionBuilder::ForAttribute(relation, a);
      StrippedPartition joint = PartitionBuilder::ForAttributeSet(
          relation, AttributeSet::Of({a, b}));
      const int64_t exact = g3.RemovalCount(lhs, joint).value();
      const G3Bounds bounds = BoundG3RemovalCount(lhs, joint);
      EXPECT_LE(bounds.lower, exact);
      EXPECT_GE(bounds.upper, exact);
      // Lemma 2: exact == 0 iff e(X) == e(X∪A).
      EXPECT_EQ(exact == 0, lhs.Error() == joint.Error());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, G3PropertyTest, ::testing::Range(0, 10));

TEST(G3Test, MismatchedRowCountsFail) {
  Relation small = MakeRelation({{"a", "x"}, {"b", "y"}}, 2);
  Relation big = PaperFigure1Relation();
  G3Calculator g3(big.num_rows());
  StatusOr<int64_t> removals =
      g3.RemovalCount(PartitionBuilder::ForAttribute(small, 0),
                      PartitionBuilder::ForAttribute(big, 0));
  ASSERT_FALSE(removals.ok());
  EXPECT_EQ(removals.status().code(), StatusCode::kInvalidArgument);
}

TEST(G3Test, GrowsBeyondConstructedSize) {
  // A calculator sized for 1 row fed 8-row partitions must grow its probe
  // table and return the exact count rather than abort.
  Relation relation = PaperFigure1Relation();
  G3Calculator g3(1);
  StrippedPartition a = PartitionBuilder::ForAttribute(relation, 0);
  StrippedPartition ab =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({0, 1}));
  EXPECT_EQ(g3.RemovalCount(a, ab).value(), 3);
}

}  // namespace
}  // namespace tane
