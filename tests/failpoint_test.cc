#include "util/failpoint.h"

#include "gtest/gtest.h"

namespace tane {
namespace {

class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::ClearAll(); }
};

TEST_F(FailPointTest, UnarmedSitePasses) {
  EXPECT_TRUE(failpoint::Check("nothing.armed").ok());
  EXPECT_EQ(failpoint::HitCount("nothing.armed"), 0);
}

TEST_F(FailPointTest, ArmedSiteFailsInItsWindowThenRecovers) {
  failpoint::Arm("site", {.skip = 1, .fail_times = 2});
  EXPECT_TRUE(failpoint::Check("site").ok());   // hit 0: skipped
  EXPECT_FALSE(failpoint::Check("site").ok());  // hits 1-2: failing
  EXPECT_FALSE(failpoint::Check("site").ok());
  EXPECT_TRUE(failpoint::Check("site").ok());  // transient fault over
  EXPECT_EQ(failpoint::HitCount("site"), 4);
}

TEST_F(FailPointTest, InjectedStatusCarriesCodeMessageAndSiteName) {
  failpoint::Arm("spill.write",
                 {.skip = 0,
                  .fail_times = 1,
                  .code = StatusCode::kResourceExhausted,
                  .message = "disk full"});
  const Status status = failpoint::Check("spill.write");
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("disk full"), std::string::npos);
  EXPECT_NE(status.message().find("spill.write"), std::string::npos);
}

TEST_F(FailPointTest, DisarmAndClearAllReset) {
  failpoint::Arm("a", {.skip = 0, .fail_times = 100});
  failpoint::Arm("b", {.skip = 0, .fail_times = 100});
  EXPECT_FALSE(failpoint::Check("a").ok());
  failpoint::Disarm("a");
  EXPECT_TRUE(failpoint::Check("a").ok());
  EXPECT_FALSE(failpoint::Check("b").ok());
  failpoint::ClearAll();
  EXPECT_TRUE(failpoint::Check("b").ok());
  EXPECT_EQ(failpoint::HitCount("b"), 0);
}

TEST_F(FailPointTest, RearmingResetsTheHitCounter) {
  failpoint::Arm("site", {.skip = 0, .fail_times = 1});
  EXPECT_FALSE(failpoint::Check("site").ok());
  EXPECT_TRUE(failpoint::Check("site").ok());
  failpoint::Arm("site", {.skip = 0, .fail_times = 1});
  EXPECT_FALSE(failpoint::Check("site").ok());  // counts restarted
}

TEST_F(FailPointTest, MacroCompilesInPerBuildConfiguration) {
  // The TANE_INJECT_FAILPOINT macro is exercised end-to-end through the
  // disk-store fault tests; here just pin the build-time switch's value so
  // a configuration mismatch is visible in test logs.
  SUCCEED() << "failpoints compiled in: "
            << (failpoint::kCompiledIn ? "yes" : "no");
}

}  // namespace
}  // namespace tane
