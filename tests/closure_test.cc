#include "analysis/closure.h"

#include "gtest/gtest.h"

namespace tane {
namespace {

std::vector<FunctionalDependency> ChainFds() {
  // 0 -> 1, 1 -> 2, {2,3} -> 4.
  return {{AttributeSet::Of({0}), 1, 0.0},
          {AttributeSet::Of({1}), 2, 0.0},
          {AttributeSet::Of({2, 3}), 4, 0.0}};
}

TEST(ClosureTest, TransitiveChain) {
  EXPECT_EQ(Closure(AttributeSet::Of({0}), ChainFds()),
            AttributeSet::Of({0, 1, 2}));
  EXPECT_EQ(Closure(AttributeSet::Of({0, 3}), ChainFds()),
            AttributeSet::Of({0, 1, 2, 3, 4}));
  EXPECT_EQ(Closure(AttributeSet::Of({3}), ChainFds()),
            AttributeSet::Of({3}));
}

TEST(ClosureTest, EmptyFdsFixedPoint) {
  EXPECT_EQ(Closure(AttributeSet::Of({1, 2}), {}), AttributeSet::Of({1, 2}));
  EXPECT_EQ(Closure(AttributeSet(), ChainFds()), AttributeSet());
}

TEST(ClosureTest, EmptyLhsFdAlwaysFires) {
  std::vector<FunctionalDependency> fds = {{AttributeSet(), 2, 0.0}};
  EXPECT_EQ(Closure(AttributeSet(), fds), AttributeSet::Of({2}));
}

TEST(ImpliesTest, DirectAndDerived) {
  EXPECT_TRUE(Implies(ChainFds(), AttributeSet::Of({0}), 2));
  EXPECT_FALSE(Implies(ChainFds(), AttributeSet::Of({0}), 4));
  EXPECT_TRUE(Implies(ChainFds(), AttributeSet::Of({0, 3}), 4));
}

TEST(MinimalCoverTest, RemovesImpliedDependency) {
  // 0 -> 1, 1 -> 2, 0 -> 2 (implied by transitivity).
  std::vector<FunctionalDependency> fds = {
      {AttributeSet::Of({0}), 1, 0.0},
      {AttributeSet::Of({1}), 2, 0.0},
      {AttributeSet::Of({0}), 2, 0.0}};
  std::vector<FunctionalDependency> cover = MinimalCover(fds);
  EXPECT_EQ(cover.size(), 2u);
  for (const FunctionalDependency& fd : cover) {
    EXPECT_FALSE(fd.lhs == AttributeSet::Of({0}) && fd.rhs == 2);
  }
}

TEST(MinimalCoverTest, LeftReducesExtraneousAttributes) {
  // {0,3} -> 1 where 0 -> 1 already: the 3 is extraneous.
  std::vector<FunctionalDependency> fds = {
      {AttributeSet::Of({0}), 1, 0.0},
      {AttributeSet::Of({0, 3}), 1, 0.0}};
  std::vector<FunctionalDependency> cover = MinimalCover(fds);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].lhs, AttributeSet::Of({0}));
  EXPECT_EQ(cover[0].rhs, 1);
}

TEST(MinimalCoverTest, CoverStillImpliesEverything) {
  std::vector<FunctionalDependency> fds = {
      {AttributeSet::Of({0}), 1, 0.0},
      {AttributeSet::Of({1}), 2, 0.0},
      {AttributeSet::Of({0}), 2, 0.0},
      {AttributeSet::Of({0, 2}), 3, 0.0}};
  std::vector<FunctionalDependency> cover = MinimalCover(fds);
  for (const FunctionalDependency& fd : fds) {
    EXPECT_TRUE(Implies(cover, fd.lhs, fd.rhs))
        << fd.lhs.ToString() << " -> " << fd.rhs;
  }
}

TEST(MinimalCoverTest, DeduplicatesIdenticalFds) {
  std::vector<FunctionalDependency> fds = {
      {AttributeSet::Of({0}), 1, 0.0}, {AttributeSet::Of({0}), 1, 0.0}};
  EXPECT_EQ(MinimalCover(fds).size(), 1u);
}

}  // namespace
}  // namespace tane
