#include "analysis/violations.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace tane {
namespace {

using testing_util::MakeRelation;
using testing_util::PaperFigure1Relation;

TEST(MeasureG3Test, MatchesHandComputedValues) {
  // From the paper's example: g3({A} -> B) = 3/8, g3({B,C} -> A) = 0.
  Relation relation = PaperFigure1Relation();
  StatusOr<double> ab = MeasureG3(relation, {AttributeSet::Of({0}), 1, 0.0});
  ASSERT_TRUE(ab.ok());
  EXPECT_DOUBLE_EQ(*ab, 3.0 / 8.0);
  StatusOr<double> bca =
      MeasureG3(relation, {AttributeSet::Of({1, 2}), 0, 0.0});
  ASSERT_TRUE(bca.ok());
  EXPECT_DOUBLE_EQ(*bca, 0.0);
}

TEST(MeasureG3Test, ValidatesFd) {
  Relation relation = PaperFigure1Relation();
  EXPECT_FALSE(MeasureG3(relation, {AttributeSet::Of({0}), 9, 0.0}).ok());
  EXPECT_FALSE(MeasureG3(relation, {AttributeSet::Of({0}), 0, 0.0}).ok());
  EXPECT_FALSE(
      MeasureG3(relation, {AttributeSet::Of({0, 60}), 1, 0.0}).ok());
}

TEST(ExceptionalRowsTest, RemovalMakesFdExact) {
  Relation relation = MakeRelation(
      {{"x", "1"}, {"x", "1"}, {"x", "2"}, {"y", "3"}, {"y", "3"},
       {"y", "4"}, {"y", "4"}, {"y", "4"}},
      2);
  const FunctionalDependency fd{AttributeSet::Of({0}), 1, 0.0};
  StatusOr<std::vector<int64_t>> rows = ExceptionalRows(relation, fd);
  ASSERT_TRUE(rows.ok());
  StatusOr<double> error = MeasureG3(relation, fd);
  ASSERT_TRUE(error.ok());
  // |exceptional rows| equals the g3 removal count...
  EXPECT_EQ(static_cast<double>(rows->size()) / relation.num_rows(), *error);
  EXPECT_EQ(rows->size(), 3u);  // one from the x-class, two from the y-class

  // ...and removing them makes the dependency hold exactly.
  std::vector<std::vector<std::string>> kept;
  size_t next_removed = 0;
  for (int64_t row = 0; row < relation.num_rows(); ++row) {
    if (next_removed < rows->size() && (*rows)[next_removed] == row) {
      ++next_removed;
      continue;
    }
    kept.push_back({relation.value(row, 0), relation.value(row, 1)});
  }
  Relation cleaned = MakeRelation(kept, 2);
  StatusOr<double> cleaned_error = MeasureG3(cleaned, fd);
  ASSERT_TRUE(cleaned_error.ok());
  EXPECT_DOUBLE_EQ(*cleaned_error, 0.0);
}

TEST(ExceptionalRowsTest, ExactFdHasNoExceptions) {
  Relation relation = PaperFigure1Relation();
  StatusOr<std::vector<int64_t>> rows =
      ExceptionalRows(relation, {AttributeSet::Of({1, 2}), 0, 0.0});
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(ExceptionalRowsTest, DeterministicTieBreak) {
  // Two equally large rhs-groups: the one with the smaller code is kept.
  Relation relation = MakeRelation({{"x", "1"}, {"x", "2"}}, 2);
  StatusOr<std::vector<int64_t>> rows =
      ExceptionalRows(relation, {AttributeSet::Of({0}), 1, 0.0});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], 1);  // "1" was encoded first, so row 1 is removed
}

TEST(ViolatingPairsTest, FindsWitnesses) {
  Relation relation = PaperFigure1Relation();
  // {A} -> B is violated e.g. by rows (0,1): equal A, different B.
  StatusOr<std::vector<std::pair<int64_t, int64_t>>> pairs =
      ViolatingPairs(relation, {AttributeSet::Of({0}), 1, 0.0}, 100);
  ASSERT_TRUE(pairs.ok());
  EXPECT_FALSE(pairs->empty());
  for (const auto& [t, u] : *pairs) {
    EXPECT_TRUE(relation.Agrees(t, u, 0));
    EXPECT_FALSE(relation.Agrees(t, u, 1));
  }
}

TEST(ViolatingPairsTest, LimitRespected) {
  Relation relation = PaperFigure1Relation();
  StatusOr<std::vector<std::pair<int64_t, int64_t>>> pairs =
      ViolatingPairs(relation, {AttributeSet::Of({0}), 1, 0.0}, 2);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 2u);
}

TEST(ViolatingPairsTest, NoneForExactFd) {
  Relation relation = PaperFigure1Relation();
  StatusOr<std::vector<std::pair<int64_t, int64_t>>> pairs =
      ViolatingPairs(relation, {AttributeSet::Of({1, 2}), 0, 0.0}, 100);
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());
}

}  // namespace
}  // namespace tane
