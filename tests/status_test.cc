#include "util/status.h"

#include <string>

#include "gtest/gtest.h"

namespace tane {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::NotFound("missing thing").ToString(),
            "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 42);
  EXPECT_EQ(*value, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> error = Status::NotFound("nope");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, OkStatusWithoutValueNormalizesToInternalError) {
  // Regression: a StatusOr built from an OK status has no value, so ok()
  // reported false while status().ok() reported true — callers branching on
  // status() misread it as success. It must read as an error on both paths.
  StatusOr<int> broken = Status::OK();
  EXPECT_FALSE(broken.ok());
  EXPECT_FALSE(broken.status().ok());
  EXPECT_EQ(broken.status().code(), StatusCode::kInternal);
  EXPECT_NE(broken.status().message().find("OK status"), std::string::npos);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> value = std::string("payload");
  ASSERT_TRUE(value.ok());
  std::string moved = std::move(value).value();
  EXPECT_EQ(moved, "payload");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int input, int* out) {
  TANE_ASSIGN_OR_RETURN(int half, Half(input));
  *out = half;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(4, &out).ok());
  EXPECT_EQ(out, 2);
  Status status = UseAssignOrReturn(3, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

Status UseReturnIfError(bool fail) {
  TANE_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace tane
