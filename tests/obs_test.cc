// Tests for the observability layer: metrics registry exactness under
// concurrency, histogram semantics, the tracer ring and span deltas, the
// progress heartbeat, Chrome trace export, and the run report's agreement
// with DiscoveryStats.

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/tane.h"
#include "gtest/gtest.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "tests/test_util.h"
#include "util/logging.h"
#include "util/run_control.h"
#include "util/span_stack.h"
#include "util/thread_pool.h"

namespace tane {
namespace obs {
namespace {

using testing_util::PaperFigure1Relation;

// A validity-only JSON parser: accepts exactly the RFC 8259 grammar the
// exporters are supposed to produce. No values are built — the tests only
// need "this byte string is JSON a real parser would load".
class JsonValidator {
 public:
  static bool Valid(std::string_view text) {
    JsonValidator validator(text);
    validator.SkipWs();
    if (!validator.Value()) return false;
    validator.SkipWs();
    return validator.pos_ == text.size();
  }

 private:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default:  return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char escape = text_[pos_];
        if (escape == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(text_[pos_])) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(escape) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!DigitRun()) return false;
    if (Peek() == '.') {
      ++pos_;
      if (!DigitRun()) return false;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!DigitRun()) return false;
    }
    return pos_ > start;
  }

  bool DigitRun() {
    const size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(text_[pos_])) ++pos_;
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string_view text_;
  size_t pos_ = 0;
};

TEST(JsonValidatorTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonValidator::Valid(R"({"a":[1,2.5,-3e4],"b":"x\n","c":null})"));
  EXPECT_FALSE(JsonValidator::Valid(R"({"a":1,})"));
  EXPECT_FALSE(JsonValidator::Valid(R"({"a":1} extra)"));
  EXPECT_FALSE(JsonValidator::Valid(R"(["unterminated)"));
}

TEST(MetricsRegistryTest, ShardAggregationIsExactUnderEightThreads) {
  constexpr int kThreads = 8;
  constexpr int64_t kIncrements = 100000;
  MetricsRegistry registry(kThreads);

  // A concurrent reader snapshotting while writers run: every snapshot must
  // be untorn (each shard value read atomically), and the final aggregate
  // exact.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      EXPECT_GE(snapshot.counter(kValidityTests), 0);
      EXPECT_LE(snapshot.counter(kValidityTests), kThreads * kIncrements);
      // Every recorded value is 1, so count and sum track each other; a
      // snapshot may catch each shard mid-Record (count and sum are separate
      // atomics), so they can differ by at most one in-flight update per
      // writer — but never tear.
      const HistogramSnapshot h = snapshot.histogram(kProductClasses);
      EXPECT_LE(std::abs(h.count - h.sum), kThreads);
      EXPECT_LE(h.count, kThreads * kIncrements);
    }
  });

  std::vector<std::thread> writers;
  for (int shard = 0; shard < kThreads; ++shard) {
    writers.emplace_back([&, shard] {
      for (int64_t i = 0; i < kIncrements; ++i) {
        registry.Add(shard, kValidityTests, 1);
        registry.AddShared(kSpillWrites, 1);
        registry.Record(shard, kProductClasses, 1);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true);
  reader.join();

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counter(kValidityTests), kThreads * kIncrements);
  EXPECT_EQ(snapshot.counter(kSpillWrites), kThreads * kIncrements);
  EXPECT_EQ(snapshot.histogram(kProductClasses).count, kThreads * kIncrements);
  EXPECT_EQ(registry.CounterTotal(kValidityTests), kThreads * kIncrements);
  EXPECT_EQ(registry.CounterTotals()[kValidityTests], kThreads * kIncrements);
}

TEST(MetricsRegistryTest, GaugesSetAndMax) {
  MetricsRegistry registry(1);
  registry.SetGauge(kCurrentLevel, 3);
  EXPECT_EQ(registry.gauge(kCurrentLevel), 3);
  registry.MaxGauge(kPeakResidentBytes, 100);
  registry.MaxGauge(kPeakResidentBytes, 50);
  EXPECT_EQ(registry.gauge(kPeakResidentBytes), 100);
  registry.MaxGauge(kPeakResidentBytes, 200);
  EXPECT_EQ(registry.gauge(kPeakResidentBytes), 200);
}

TEST(MetricsRegistryTest, HistogramBucketsPercentilesAndMax) {
  MetricsRegistry registry(1);
  registry.Record(0, kProductMemberRows, 0);     // bucket 0
  registry.Record(0, kProductMemberRows, 1);     // bucket 1: [1,2)
  registry.Record(0, kProductMemberRows, 7);     // bucket 3: [4,8)
  registry.Record(0, kProductMemberRows, 1024);  // bucket 11: [1024,2048)

  const HistogramSnapshot h =
      registry.Snapshot().histogram(kProductMemberRows);
  EXPECT_EQ(h.count, 4);
  EXPECT_EQ(h.sum, 1032);
  EXPECT_EQ(h.max, 1024);
  EXPECT_EQ(h.buckets[0], 1);
  EXPECT_EQ(h.buckets[1], 1);
  EXPECT_EQ(h.buckets[3], 1);
  EXPECT_EQ(h.buckets[11], 1);
  EXPECT_DOUBLE_EQ(h.mean(), 1032 / 4.0);
  // The median rank falls in the [1,2) or [4,8) region; the p100 clamp is
  // the observed max, never the bucket's upper bound.
  EXPECT_GE(h.Percentile(50.0), 1.0);
  EXPECT_LE(h.Percentile(50.0), 8.0);
  EXPECT_LE(h.Percentile(100.0), 1024.0);
  EXPECT_EQ(HistogramSnapshot().Percentile(50.0), 0.0);
}

TEST(TracerTest, RingOverflowDropsOldestFirst) {
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    TraceEvent event;
    event.name = "e" + std::to_string(i);
    tracer.Emit(std::move(event));
  }
  EXPECT_EQ(tracer.dropped(), 2);
  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "e2");
  EXPECT_EQ(events[3].name, "e5");
}

TEST(TracerTest, SpanGuardEmitsCounterDeltas) {
  Tracer tracer;
  MetricsRegistry registry(2);
  registry.Add(0, kPartitionProducts, 10);  // pre-span counts must not leak
  {
    SpanGuard span(&tracer, "phase", &registry);
    registry.Add(0, kPartitionProducts, 3);
    registry.Add(1, kValidityTests, 5);
    registry.AddShared(kSpillWrites, 2);
    span.AddArg("extra", 7);
  }
  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& event = events[0];
  EXPECT_EQ(event.name, "phase");
  EXPECT_FALSE(event.instant);
  EXPECT_GE(event.dur_us, 0.0);

  const auto arg = [&](std::string_view key) -> int64_t {
    for (const auto& [name, value] : event.args) {
      if (name == key) return value;
    }
    return -1;
  };
  EXPECT_EQ(arg("partition_products"), 3);
  EXPECT_EQ(arg("validity_tests"), 5);
  EXPECT_EQ(arg("spill_writes"), 2);
  EXPECT_EQ(arg("extra"), 7);
  EXPECT_EQ(arg("g3_scans"), -1);  // zero deltas are elided
}

TEST(TracerTest, NullTracerSpanIsNoOp) {
  MetricsRegistry registry(1);
  SpanGuard span(nullptr, "ignored", &registry);
  span.AddArg("extra", 1);  // must not crash
}

TEST(TracerTest, ChromeExportIsWellFormedJson) {
  Tracer tracer;
  TraceEvent complete;
  complete.name = "level 1 \"quoted\"";
  complete.tid = 2;
  complete.start_us = 10.5;
  complete.dur_us = 100.25;
  complete.args = {{"products", 42}};
  tracer.Emit(complete);
  TraceEvent instant;
  instant.name = "heartbeat";
  instant.instant = true;
  tracer.Emit(instant);

  JsonWriter json;
  ExportChromeTrace(tracer.Events(), tracer.dropped(), &json);
  const std::string& text = json.str();
  EXPECT_TRUE(JsonValidator::Valid(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"products\":42"), std::string::npos);
}

TEST(ProgressMonitorTest, FormatLineCarriesRegistryState) {
  MetricsRegistry registry(1);
  registry.SetGauge(kCurrentLevel, 3);
  registry.SetGauge(kLevelNodesTotal, 100);
  registry.SetGauge(kLevelNodesStart, 10);
  registry.Add(0, kNodesProcessed, 50);
  registry.Add(0, kFdsEmitted, 7);
  registry.SetGauge(kResidentBytes, 2 << 20);

  ProgressMonitor monitor(&registry, {});
  const std::string line = monitor.FormatLine("unit-test");
  EXPECT_NE(line.find("(unit-test)"), std::string::npos) << line;
  EXPECT_NE(line.find("level=3"), std::string::npos) << line;
  EXPECT_NE(line.find("nodes=40/100"), std::string::npos) << line;
  EXPECT_NE(line.find("fds=7"), std::string::npos) << line;
  EXPECT_NE(line.find("spilled=0"), std::string::npos) << line;
  EXPECT_EQ(line.find("deadline_left="), std::string::npos) << line;
}

TEST(ProgressMonitorTest, FormatLineShowsDeadline) {
  MetricsRegistry registry(1);
  RunController controller;
  controller.SetDeadlineAfter(std::chrono::seconds(60));
  ProgressMonitor::Options options;
  options.controller = &controller;
  ProgressMonitor monitor(&registry, options);
  EXPECT_NE(monitor.FormatLine("").find("deadline_left="), std::string::npos);
}

TEST(ProgressMonitorTest, StartStopDoesNotHangOrCrash) {
  MetricsRegistry registry(1);
  ProgressMonitor::Options options;
  options.period_seconds = 0.005;
  ProgressMonitor monitor(&registry, options);
  monitor.Start();
  monitor.Start();  // idempotent
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  monitor.EmitNow("mid-run");
  monitor.Stop();
}

TEST(LoggingTest, ParseLogSeverityAcceptsAnyCaseNames) {
  using internal_logging::LogSeverity;
  using internal_logging::ParseLogSeverity;
  LogSeverity severity = LogSeverity::kFatal;
  EXPECT_TRUE(ParseLogSeverity("info", &severity));
  EXPECT_EQ(severity, LogSeverity::kInfo);
  EXPECT_TRUE(ParseLogSeverity("WARNING", &severity));
  EXPECT_EQ(severity, LogSeverity::kWarning);
  EXPECT_TRUE(ParseLogSeverity("Warn", &severity));
  EXPECT_EQ(severity, LogSeverity::kWarning);
  EXPECT_TRUE(ParseLogSeverity("error", &severity));
  EXPECT_EQ(severity, LogSeverity::kError);
  EXPECT_TRUE(ParseLogSeverity("fatal", &severity));
  EXPECT_EQ(severity, LogSeverity::kFatal);
  EXPECT_FALSE(ParseLogSeverity("verbose", &severity));
  EXPECT_FALSE(ParseLogSeverity("", &severity));
}

TEST(LoggingTest, InitLogSeverityFromEnvAppliesAndRestores) {
  using internal_logging::GetMinLogSeverity;
  using internal_logging::InitLogSeverityFromEnv;
  using internal_logging::LogSeverity;
  using internal_logging::SetMinLogSeverity;
  const LogSeverity saved = GetMinLogSeverity();

  ::setenv("TANE_LOG_LEVEL", "error", 1);
  EXPECT_TRUE(InitLogSeverityFromEnv());
  EXPECT_EQ(GetMinLogSeverity(), LogSeverity::kError);

  ::unsetenv("TANE_LOG_LEVEL");
  EXPECT_FALSE(InitLogSeverityFromEnv());
  EXPECT_EQ(GetMinLogSeverity(), LogSeverity::kError);  // left untouched

  ::setenv("TANE_LOG_LEVEL", "bogus", 1);
  EXPECT_FALSE(InitLogSeverityFromEnv());

  ::unsetenv("TANE_LOG_LEVEL");
  SetMinLogSeverity(saved);
}

TEST(DiscoveryObservabilityTest, TracerSeesPhaseSpansAndMetricsMatchStats) {
  const Relation relation = PaperFigure1Relation();
  Tracer tracer;
  TaneConfig config;
  config.num_threads = 2;
  config.tracer = &tracer;
  TANE_ASSERT_OK_AND_ASSIGN(DiscoveryResult result,
                            Tane::Discover(relation, config));

  // The stats fields are views over the registry: both must agree exactly.
  EXPECT_EQ(result.metrics.counter(kValidityTests),
            result.stats.validity_tests);
  EXPECT_EQ(result.metrics.counter(kPartitionProducts),
            result.stats.partition_products);
  EXPECT_EQ(result.metrics.counter(kSetsGenerated), result.stats.sets_generated);
  EXPECT_EQ(result.metrics.counter(kKeysFound), result.stats.keys_found);
  EXPECT_EQ(result.metrics.counter(kFdsEmitted), result.num_fds());
  EXPECT_EQ(result.metrics.gauge(kMaxLevelSize), result.stats.max_level_size);
  EXPECT_GT(result.metrics.histogram(kProductClasses).count, 0);

  bool saw_run = false, saw_level = false, saw_validity = false,
       saw_products = false, saw_prune = false, saw_generate = false;
  for (const TraceEvent& event : tracer.Events()) {
    const std::string phase = event.name.substr(0, event.name.find(' '));
    saw_run |= phase == "run";
    saw_level |= phase == "level";
    saw_validity |= phase == "validity";
    saw_products |= phase == "products";
    saw_prune |= phase == "prune";
    saw_generate |= phase == "generate";
  }
  EXPECT_TRUE(saw_run && saw_level && saw_validity && saw_products &&
              saw_prune && saw_generate);

  // Per-level rows carry the node counts the report mirrors.
  ASSERT_FALSE(result.stats.level_parallel.empty());
  EXPECT_GT(result.stats.level_parallel[0].nodes, 0);
}

TEST(DiscoveryObservabilityTest, OutputIdenticalAcrossThreadCounts) {
  const Relation relation = PaperFigure1Relation();
  TaneConfig serial;
  TANE_ASSERT_OK_AND_ASSIGN(DiscoveryResult baseline,
                            Tane::Discover(relation, serial));
  for (int threads : {2, 8}) {
    Tracer tracer;
    TaneConfig config;
    config.num_threads = threads;
    config.tracer = &tracer;
    TANE_ASSERT_OK_AND_ASSIGN(DiscoveryResult result,
                              Tane::Discover(relation, config));
    EXPECT_EQ(testing_util::FdStrings(result.fds),
              testing_util::FdStrings(baseline.fds));
    EXPECT_EQ(result.keys.size(), baseline.keys.size());
  }
}

TEST(RunReportTest, IsWellFormedAndMirrorsStats) {
  const Relation relation = PaperFigure1Relation();
  TaneConfig config;
  config.num_threads = 2;
  TANE_ASSERT_OK_AND_ASSIGN(DiscoveryResult result,
                            Tane::Discover(relation, config));

  RunReportOptions options;
  options.dataset_path = "figure1.csv";
  options.dataset_fingerprint = "crc32:deadbeef";
  options.dataset_rows = relation.num_rows();
  options.dataset_columns = relation.num_columns();
  options.read_seconds = 0.25;
  options.report_seconds = 0.125;
  options.total_seconds = result.stats.wall_seconds + 0.5;

  JsonWriter json;
  WriteRunReport(config, result, options, &json);
  const std::string& text = json.str();
  EXPECT_TRUE(JsonValidator::Valid(text)) << text;

  const auto contains = [&](const std::string& needle) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  };
  contains("\"schema_version\":3");
  contains("\"fingerprint\":\"crc32:deadbeef\"");
  contains("\"checkpoint\":{");
  contains("\"resumable\":false");
  contains("\"resumed_from_level\":0");
  contains("\"num_fds\":" + std::to_string(result.num_fds()));
  contains("\"validity_tests\":" +
           std::to_string(result.stats.validity_tests));
  contains("\"partition_products\":" +
           std::to_string(result.stats.partition_products));
  contains("\"sets_generated\":" +
           std::to_string(result.stats.sets_generated));
  contains("\"levels\":[");
  contains("\"nodes\":" +
           std::to_string(result.stats.level_parallel[0].nodes));
  contains("\"histograms\"");
  contains("\"product_classes\"");

  // Schema 3: the hardware-counter block and the tracer ring status are
  // always present — zero-valued under the noop backend, "enabled":false
  // when no tracer was attached — so consumers never branch on shape.
  contains("\"hw\":{");
  contains("\"backend\":\"" +
           std::string(PerfBackendName(PerfCounters::backend())) + "\"");
  contains("\"phase\":\"run\"");
  contains("\"derived\":{");
  contains("\"run_ipc\":");
  contains("\"products_cache_misses_per_row\":");
  contains("\"trace\":{");
  contains("\"enabled\":false");
  contains("\"dropped_events\":0");
}

TEST(PerfCountersTest, NoopBackendReadsZeros) {
  PerfCounters::ForceBackendForTest(PerfBackend::kNoop);
  EXPECT_EQ(PerfCounters::backend(), PerfBackend::kNoop);
  EXPECT_EQ(PerfBackendName(PerfCounters::backend()), "noop");
  EXPECT_EQ(PerfBackendName(PerfBackend::kLinuxPerf), "linux_perf");
  const HwCounters counters = PerfCounters::Read();
  EXPECT_FALSE(counters.any());
  EXPECT_EQ(counters.ipc(), 0.0);
}

TEST(PerfCountersTest, CounterArithmetic) {
  HwCounters after;
  after.cycles = 100;
  after.instructions = 250;
  after.cache_misses = 8;
  HwCounters before;
  before.cycles = 40;
  before.instructions = 50;
  before.cache_misses = 3;

  HwCounters delta = after - before;
  EXPECT_EQ(delta.cycles, 60);
  EXPECT_EQ(delta.instructions, 200);
  EXPECT_EQ(delta.cache_misses, 5);
  EXPECT_TRUE(delta.any());
  EXPECT_DOUBLE_EQ(delta.ipc(), 200.0 / 60.0);

  delta += before;
  EXPECT_EQ(delta.cycles, 100);
  EXPECT_EQ(delta.instructions, 250);
  EXPECT_FALSE(HwCounters().any());
}

TEST(MetricsRegistryTest, HwSpanAggregatesAndSnapshotSortsPhases) {
  MetricsRegistry registry(1);
  HwCounters delta;
  delta.cycles = 10;
  delta.instructions = 25;
  registry.AddHwSpan("validity", delta);
  registry.AddHwSpan("level", delta);
  registry.AddHwSpan("level", delta);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.hw_phases.size(), 2u);
  EXPECT_EQ(snapshot.hw_phases[0].phase, "level");  // map order: sorted
  EXPECT_EQ(snapshot.hw_phases[0].spans, 2);
  EXPECT_EQ(snapshot.hw_phases[0].hw.cycles, 20);
  EXPECT_EQ(snapshot.hw_phases[0].hw.instructions, 50);
  EXPECT_EQ(snapshot.hw_phases[1].phase, "validity");
  EXPECT_EQ(snapshot.hw_phases[1].spans, 1);
  EXPECT_EQ(snapshot.hw_backend, PerfBackendName(PerfCounters::backend()));
}

TEST(SpanStackTest, RecordingGatePushPopAndTruncation) {
  SpanStack& stack = SpanStack::Local();
  SpanStack::SetRecording(false);
  stack.Push("invisible");  // recording off: full no-op, no Pop owed
  EXPECT_TRUE(stack.TakeSample().frames.empty());

  SpanStack::SetRecording(true);
  stack.SetLabel("main");
  stack.Push("run");
  stack.Push("level 3");
  const std::string long_name(2 * kSpanFrameChars, 'x');
  stack.Push(long_name.c_str());

  SpanStack::Sample sample = stack.TakeSample();
  EXPECT_FALSE(sample.skipped);
  EXPECT_STREQ(sample.label, "main");
  ASSERT_EQ(sample.frames.size(), 3u);
  EXPECT_EQ(sample.frames[0], "run");
  EXPECT_EQ(sample.frames[1], "level 3");
  EXPECT_EQ(sample.frames[2], std::string(kSpanFrameChars - 1, 'x'));

  stack.Pop();
  stack.Pop();
  stack.Pop();
  EXPECT_TRUE(stack.TakeSample().frames.empty());
  SpanStack::SetRecording(false);
}

TEST(SpanStackTest, DepthOverflowStaysBalanced) {
  SpanStack::SetRecording(true);
  SpanStack& stack = SpanStack::Local();
  for (int i = 0; i < kSpanStackMaxDepth + 4; ++i) stack.Push("deep");
  SpanStack::Sample sample = stack.TakeSample();
  EXPECT_EQ(sample.frames.size(),
            static_cast<size_t>(kSpanStackMaxDepth));
  for (int i = 0; i < kSpanStackMaxDepth + 4; ++i) stack.Pop();
  EXPECT_TRUE(stack.TakeSample().frames.empty());
  SpanStack::SetRecording(false);
}

TEST(SpanStackTest, WorkerDrainsCarryTheCollectiveLabel) {
  // The thread pool pushes the coordinator-set collective label as each
  // participant's drain frame, so samples on workers attribute to the
  // parallel region that fanned them out. Every fn invocation — caller
  // or background worker — must see that frame on its own stack.
  SpanStack::SetRecording(true);
  SpanStack::SetCollectiveLabel("window level-9");
  ThreadPool pool(4);
  std::atomic<int> labeled{0};
  std::atomic<int> sampled_threads_min{0};
  pool.ParallelFor(64, [&](int worker, int64_t) {
    const SpanStack::Sample sample = SpanStack::Local().TakeSample();
    for (const std::string& frame : sample.frames) {
      if (frame == "window level-9") {
        labeled.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
    if (worker == 0) {
      // The registry sees at least the calling thread; background workers
      // appear as they register. (Exact count is scheduling-dependent.)
      const int n = static_cast<int>(SpanStack::SampleAll().size());
      sampled_threads_min.store(n, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(labeled.load(), 64);
  EXPECT_GE(sampled_threads_min.load(), 1);
  SpanStack::SetCollectiveLabel("");
  SpanStack::SetRecording(false);
}

TEST(ProfilerTest, SamplesLiveSpansIntoValidFoldedOutput) {
  Profiler profiler;
  profiler.Start(/*hz=*/500);
  EXPECT_TRUE(profiler.running());
  EXPECT_TRUE(SpanStack::recording());

  SpanStack& stack = SpanStack::Local();
  stack.SetLabel("main");
  stack.Push("run");
  stack.Push("unit test phase");
  // Hold the spans open until the sampler has observed this stack at
  // least once (bounded: 500 Hz means one tick every 2 ms).
  const int64_t target = profiler.total_samples() + 2;
  for (int i = 0; i < 2000 && profiler.total_samples() < target; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stack.Pop();
  stack.Pop();
  profiler.Stop();
  EXPECT_FALSE(profiler.running());
  EXPECT_FALSE(SpanStack::recording());
  EXPECT_GE(profiler.total_samples(), target);

  const std::string path =
      ::testing::TempDir() + "/tane_profiler_test.folded";
  ASSERT_TRUE(profiler.WriteFolded(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  bool saw_phase = false;
  while (std::getline(in, line)) {
    ++lines;
    // Folded format: "tane;label;frame;... count" — root always "tane",
    // frames never contain ' ' or ';', count strictly positive.
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string frames = line.substr(0, space);
    EXPECT_EQ(frames.rfind("tane;", 0), 0u) << line;
    EXPECT_GT(std::stoll(line.substr(space + 1)), 0) << line;
    EXPECT_EQ(frames.find(";;"), std::string::npos) << line;
    if (frames.find("unit_test_phase") != std::string::npos) {
      saw_phase = true;
      EXPECT_NE(frames.find("main;run;unit_test_phase"),
                std::string::npos) << line;
    }
  }
  EXPECT_GT(lines, 0);
  EXPECT_TRUE(saw_phase);
  std::filesystem::remove(path);
}

TEST(FlightRecorderTest, GracefulDumpIsValidJsonAndFirstWins) {
  const std::string dir =
      ::testing::TempDir() + "/tane_flightrec_graceful";
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/flightrec.json";
  FlightRecorder::Arm(path, /*rings=*/3);  // creates the parent directory
  FlightRecorder* recorder = FlightRecorder::active();
  ASSERT_NE(recorder, nullptr);
  EXPECT_EQ(recorder->dump_path(), path);
  EXPECT_FALSE(recorder->dumped());

  recorder->Record(0, FlightEventType::kLevel, "level", 2, 40);
  recorder->Record(1, FlightEventType::kStall, "gate", 7, 3);
  // Out-of-range tid clamps to the last ring; over-long labels truncate.
  recorder->Record(99, FlightEventType::kVerdict,
                   "deadline-with-a-very-long-suffix");

  EXPECT_TRUE(recorder->DumpGraceful("deadline"));
  EXPECT_TRUE(recorder->dumped());
  EXPECT_FALSE(recorder->DumpGraceful("cancelled"));  // first dump wins

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_TRUE(JsonValidator::Valid(text)) << text;
  const auto contains = [&](const std::string& needle) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  };
  contains("\"tool\":\"tane-flightrec\"");
  contains("\"schema_version\":1");
  contains("\"reason\":\"deadline\"");
  contains("\"type\":\"level\"");
  contains("\"type\":\"stall\"");
  contains("\"type\":\"verdict\"");
  contains("\"label\":\"gate\"");
  contains("\"a\":7");
  EXPECT_EQ(text.find("cancelled"), std::string::npos) << text;
  EXPECT_EQ(text.find("deadline-with-a-very-long-suffix"),
            std::string::npos)
      << "labels must truncate to the fixed slot width";

  FlightRecorder::Disarm();
  EXPECT_EQ(FlightRecorder::active(), nullptr);
  std::filesystem::remove_all(dir);
}

TEST(FlightRecorderTest, DiscoveryCancelDumpsPostmortem) {
  const std::string dir =
      ::testing::TempDir() + "/tane_flightrec_cancel";
  std::filesystem::remove_all(dir);
  FlightRecorder::Arm(dir + "/flightrec.json", /*rings=*/3);

  RunController controller;
  controller.RequestCancel();
  TaneConfig config;
  config.run_controller = &controller;
  // A pre-cancelled run winds down at the first poll; the verdict latch
  // must still leave a postmortem behind. The discovery status itself is
  // not under test here.
  (void)Tane::Discover(PaperFigure1Relation(), config);

  FlightRecorder* recorder = FlightRecorder::active();
  ASSERT_NE(recorder, nullptr);
  EXPECT_TRUE(recorder->dumped());
  std::ifstream in(dir + "/flightrec.json");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_TRUE(JsonValidator::Valid(text)) << text;
  EXPECT_NE(text.find("\"reason\":\"cancelled\""), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"type\":\"verdict\""), std::string::npos) << text;

  FlightRecorder::Disarm();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace obs
}  // namespace tane
