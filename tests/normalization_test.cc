#include "analysis/normalization.h"

#include "analysis/closure.h"
#include "core/tane.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace tane {
namespace {

std::vector<FunctionalDependency> EmployeeFds() {
  // R = {emp(0), dept(1), mgr(2), proj(3)}: emp -> dept, dept -> mgr.
  return {{AttributeSet::Of({0}), 1, 0.0}, {AttributeSet::Of({1}), 2, 0.0}};
}

TEST(BcnfViolationsTest, DetectsNonSuperkeyLhs) {
  std::vector<BcnfViolation> violations = FindBcnfViolations(4, EmployeeFds());
  // Both FDs violate BCNF: neither {emp} nor {dept} determines proj.
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].fd.lhs, AttributeSet::Of({0}));
  EXPECT_EQ(violations[0].closure, AttributeSet::Of({0, 1, 2}));
}

TEST(BcnfViolationsTest, SuperkeyLhsDoesNotViolate) {
  // 0 -> 1, 0 -> 2 over R={0,1,2}: {0} is a key, no violations.
  std::vector<FunctionalDependency> fds = {
      {AttributeSet::Of({0}), 1, 0.0}, {AttributeSet::Of({0}), 2, 0.0}};
  EXPECT_TRUE(FindBcnfViolations(3, fds).empty());
}

TEST(DecomposeToBcnfTest, EmployeeExample) {
  std::vector<DecomposedRelation> fragments =
      DecomposeToBcnf(4, EmployeeFds());
  ASSERT_GE(fragments.size(), 2u);
  // Every attribute is covered by some fragment.
  AttributeSet covered;
  for (const DecomposedRelation& fragment : fragments) {
    covered = covered.Union(fragment.attributes);
  }
  EXPECT_EQ(covered, AttributeSet::FullSet(4));
  // No fragment still contains a BCNF violation of the restricted FDs.
  for (const DecomposedRelation& fragment : fragments) {
    for (const FunctionalDependency& fd : EmployeeFds()) {
      if (!fragment.attributes.ContainsAll(fd.lhs) ||
          !fragment.attributes.Contains(fd.rhs)) {
        continue;
      }
      // lhs must be a superkey of the fragment.
      AttributeSet closure = Closure(fd.lhs, EmployeeFds());
      EXPECT_TRUE(closure.ContainsAll(fragment.attributes))
          << fd.lhs.ToString() << " violates fragment "
          << fragment.attributes.ToString();
    }
  }
}

TEST(DecomposeToBcnfTest, AlreadyNormalizedStaysWhole) {
  std::vector<FunctionalDependency> fds = {
      {AttributeSet::Of({0}), 1, 0.0}, {AttributeSet::Of({0}), 2, 0.0}};
  std::vector<DecomposedRelation> fragments = DecomposeToBcnf(3, fds);
  ASSERT_EQ(fragments.size(), 1u);
  EXPECT_EQ(fragments[0].attributes, AttributeSet::FullSet(3));
}

TEST(DecomposeToBcnfTest, NoFdsStaysWhole) {
  std::vector<DecomposedRelation> fragments = DecomposeToBcnf(3, {});
  ASSERT_EQ(fragments.size(), 1u);
  EXPECT_EQ(fragments[0].attributes, AttributeSet::FullSet(3));
}

TEST(DecomposeToBcnfTest, WorksOnDiscoveredFigure1Fds) {
  StatusOr<DiscoveryResult> result =
      Tane::Discover(testing_util::PaperFigure1Relation());
  ASSERT_TRUE(result.ok());
  std::vector<DecomposedRelation> fragments =
      DecomposeToBcnf(4, result->fds);
  AttributeSet covered;
  for (const DecomposedRelation& fragment : fragments) {
    covered = covered.Union(fragment.attributes);
  }
  EXPECT_EQ(covered, AttributeSet::FullSet(4));
}

TEST(DescribeDecompositionTest, HumanReadable) {
  Schema schema = Schema::Create({"emp", "dept", "mgr", "proj"}).value();
  std::vector<DecomposedRelation> fragments =
      DecomposeToBcnf(4, EmployeeFds());
  const std::string description = DescribeDecomposition(schema, fragments);
  EXPECT_NE(description.find("R0"), std::string::npos);
  EXPECT_NE(description.find("emp"), std::string::npos);
}

}  // namespace
}  // namespace tane
