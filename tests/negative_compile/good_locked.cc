// Sanity companion for the negative-compile cases: the same access
// patterns written correctly must compile cleanly under Clang
// -Wthread-safety -Werror. If this file fails, the harness is rejecting
// everything and the negative results above prove nothing.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    tane::MutexLock lock(&mu_);
    ++value_;
  }

  int Get() const {
    tane::MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable tane::Mutex mu_;
  int value_ TANE_GUARDED_BY(mu_) = 0;
};

class Registry {
 public:
  void Put(int value) {
    tane::WriterMutexLock lock(&mu_);
    last_ = value;
    PutLocked(value);
  }

  int last() const {
    tane::ReaderMutexLock lock(&mu_);
    return last_;
  }

 private:
  void PutLocked(int value) TANE_REQUIRES(mu_) { sum_ += value; }

  mutable tane::SharedMutex mu_;
  int last_ TANE_GUARDED_BY(mu_) = 0;
  int sum_ TANE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  Registry registry;
  registry.Put(counter.Get());
  return registry.last() - 1;
}
