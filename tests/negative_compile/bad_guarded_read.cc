// Negative-compile case 1: reading a TANE_GUARDED_BY member without
// holding its mutex. Under Clang -Wthread-safety -Werror this must FAIL to
// compile ("reading variable 'value_' requires holding mutex 'mu_'");
// tests/CMakeLists.txt asserts that it does.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    tane::MutexLock lock(&mu_);
    ++value_;
  }

  // BUG (deliberate): reads guarded state with no lock held.
  int Get() const { return value_; }

 private:
  mutable tane::Mutex mu_;
  int value_ TANE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Get();
}
