// Negative-compile case 3: acquiring a mutex on one path and returning
// without releasing it. Under Clang -Wthread-safety -Werror this must FAIL
// to compile ("mutex 'mu' is still held at the end of function");
// tests/CMakeLists.txt asserts that it does.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

int LeakLock(tane::Mutex* mu, int value) {
  mu->Lock();
  if (value > 0) {
    // BUG (deliberate): early return leaks the acquired lock.
    return value;
  }
  mu->Unlock();
  return 0;
}

}  // namespace

int main() {
  tane::Mutex mu;
  return LeakLock(&mu, 0);
}
