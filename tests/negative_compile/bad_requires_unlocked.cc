// Negative-compile case 2: calling a TANE_REQUIRES(mu_) function without
// holding the mutex. Under Clang -Wthread-safety -Werror this must FAIL to
// compile ("calling function 'InsertLocked' requires holding mutex 'mu_'
// exclusively"); tests/CMakeLists.txt asserts that it does.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Table {
 public:
  void Insert() {
    // BUG (deliberate): the REQUIRES contract demands mu_ be held here.
    InsertLocked();
  }

 private:
  void InsertLocked() TANE_REQUIRES(mu_) { ++size_; }

  tane::Mutex mu_;
  int size_ TANE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Table table;
  table.Insert();
  return 0;
}
