#include "relation/csv.h"

#include <cstdio>
#include <fstream>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace tane {
namespace {

TEST(CsvReadTest, SimpleWithHeader) {
  StatusOr<Relation> relation =
      ReadCsvString("a,b\n1,x\n2,y\n1,x\n");
  ASSERT_TRUE(relation.ok()) << relation.status().ToString();
  EXPECT_EQ(relation->num_rows(), 3);
  EXPECT_EQ(relation->num_columns(), 2);
  EXPECT_EQ(relation->schema().name(0), "a");
  EXPECT_EQ(relation->value(1, 1), "y");
  EXPECT_TRUE(relation->Agrees(0, 2, 0));
}

TEST(CsvReadTest, NoHeaderGeneratesNames) {
  CsvOptions options;
  options.has_header = false;
  StatusOr<Relation> relation = ReadCsvString("1,x\n2,y\n", options);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->num_rows(), 2);
  EXPECT_EQ(relation->schema().name(0), "col0");
  EXPECT_EQ(relation->value(0, 0), "1");
}

TEST(CsvReadTest, QuotedFieldsWithDelimiters) {
  StatusOr<Relation> relation =
      ReadCsvString("a,b\n\"x,y\",plain\n");
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->value(0, 0), "x,y");
  EXPECT_EQ(relation->value(0, 1), "plain");
}

TEST(CsvReadTest, EscapedQuotes) {
  StatusOr<Relation> relation = ReadCsvString("a\n\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->value(0, 0), "he said \"hi\"");
}

TEST(CsvReadTest, EmbeddedNewlineInsideQuotes) {
  StatusOr<Relation> relation = ReadCsvString("a,b\n\"line1\nline2\",z\n");
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->num_rows(), 1);
  EXPECT_EQ(relation->value(0, 0), "line1\nline2");
}

TEST(CsvReadTest, CrLfLineEndings) {
  StatusOr<Relation> relation = ReadCsvString("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->num_rows(), 2);
  EXPECT_EQ(relation->value(1, 1), "4");
}

TEST(CsvReadTest, EmptyFieldsPreserved) {
  StatusOr<Relation> relation = ReadCsvString("a,b,c\n1,,3\n");
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->value(0, 1), "");
}

TEST(CsvReadTest, SemicolonDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  StatusOr<Relation> relation = ReadCsvString("a;b\n1;2\n", options);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->value(0, 1), "2");
}

TEST(CsvReadTest, TrimWhitespaceOption) {
  CsvOptions options;
  options.trim_whitespace = true;
  StatusOr<Relation> relation = ReadCsvString("a, b\n 1 , 2 \n", options);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->schema().name(1), "b");
  EXPECT_EQ(relation->value(0, 0), "1");
}

TEST(CsvReadTest, MalformedRowFailsByDefault) {
  StatusOr<Relation> relation = ReadCsvString("a,b\n1\n");
  EXPECT_FALSE(relation.ok());
}

TEST(CsvReadTest, MalformedRowSkippedOnRequest) {
  CsvOptions options;
  options.skip_malformed_rows = true;
  StatusOr<Relation> relation = ReadCsvString("a,b\n1\n2,3\n", options);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->num_rows(), 1);
  EXPECT_EQ(relation->value(0, 0), "2");
}

TEST(CsvReadTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ReadCsvString("a\n\"oops\n").ok());
}

TEST(CsvReadTest, EmptyInputFails) {
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(CsvReadTest, HeaderOnlyGivesZeroRows) {
  StatusOr<Relation> relation = ReadCsvString("a,b\n");
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->num_rows(), 0);
}

TEST(CsvReadTest, MissingFileFails) {
  StatusOr<Relation> relation = ReadCsvFile("/nonexistent/file.csv");
  EXPECT_FALSE(relation.ok());
  EXPECT_EQ(relation.status().code(), StatusCode::kIoError);
}

TEST(CsvWriteTest, RoundTrip) {
  Relation original = testing_util::MakeRelation(
      {{"plain", "with,comma"}, {"with\"quote", "multi\nline"}}, 2);
  const std::string text = WriteCsvString(original);
  StatusOr<Relation> reparsed = ReadCsvString(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->num_rows(), original.num_rows());
  for (int64_t row = 0; row < original.num_rows(); ++row) {
    for (int c = 0; c < original.num_columns(); ++c) {
      EXPECT_EQ(reparsed->value(row, c), original.value(row, c));
    }
  }
}

TEST(CsvFileTest, WriteAndReadBackFile) {
  Relation original = testing_util::MakeRelation({{"1", "a"}, {"2", "b"}}, 2);
  const std::string path = ::testing::TempDir() + "/tane_csv_test.csv";
  {
    std::ofstream out(path);
    WriteCsv(original, out);
  }
  StatusOr<Relation> reparsed = ReadCsvFile(path);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->num_rows(), 2);
  EXPECT_EQ(reparsed->value(1, 1), "b");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tane
