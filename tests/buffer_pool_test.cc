#include "partition/buffer_pool.h"

#include <vector>

#include "gtest/gtest.h"

namespace tane {
namespace {

TEST(BufferPoolTest, DryPoolHandsOutEmptyBuffer) {
  PartitionBufferPool pool(1);
  std::vector<int32_t> buffer = pool.Acquire(0, 128);
  EXPECT_EQ(buffer.capacity(), 0u);
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquires, 1);
  EXPECT_EQ(stats.reuses, 0);
}

TEST(BufferPoolTest, RecycledBufferIsReused) {
  PartitionBufferPool pool(1);
  std::vector<int32_t> buffer;
  buffer.reserve(100);
  buffer.assign(50, 7);
  pool.Recycle(std::move(buffer));
  EXPECT_GT(pool.pooled_bytes(), 0);

  // Acquire keeps the recycled size/contents; only capacity is promised.
  std::vector<int32_t> reused = pool.Acquire(0, 80);
  EXPECT_GE(reused.capacity(), 100u);
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.recycles, 1);
  EXPECT_EQ(stats.reuses, 1);
}

TEST(BufferPoolTest, ZeroCapacityBuffersAreNotPooled) {
  PartitionBufferPool pool(1);
  pool.Recycle(std::vector<int32_t>());
  EXPECT_EQ(pool.pooled_bytes(), 0);
  EXPECT_EQ(pool.stats().recycles, 0);
}

TEST(BufferPoolTest, ByteCapDropsExcessBuffers) {
  // Cap small enough for exactly one of the two recycled buffers.
  PartitionBufferPool pool(1, /*max_pooled_bytes=*/600);
  std::vector<int32_t> first(128);   // 512 bytes
  std::vector<int32_t> second(128);  // would exceed the 600-byte cap
  pool.Recycle(std::move(first));
  pool.Recycle(std::move(second));
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.recycles, 2);
  EXPECT_EQ(stats.dropped, 1);
  EXPECT_LE(pool.pooled_bytes(), 600);
}

TEST(BufferPoolTest, AcquirePrefersSufficientCapacity) {
  PartitionBufferPool pool(1);
  std::vector<int32_t> small;
  small.reserve(10);
  std::vector<int32_t> large;
  large.reserve(1000);
  pool.Recycle(std::move(small));
  pool.Recycle(std::move(large));

  std::vector<int32_t> buffer = pool.Acquire(0, 500);
  EXPECT_GE(buffer.capacity(), 500u);
}

TEST(BufferPoolTest, SlotsDrawFromSharedFreelist) {
  // Slots refill from the shared freelist in batches of up to
  // kRefillBatch (8), so give the freelist enough buffers that every
  // slot's first refill finds some left.
  PartitionBufferPool pool(4);
  for (int i = 0; i < 32; ++i) {
    std::vector<int32_t> buffer;
    buffer.reserve(64);
    pool.Recycle(std::move(buffer));
  }
  for (int slot = 0; slot < 4; ++slot) {
    std::vector<int32_t> buffer = pool.Acquire(slot, 32);
    EXPECT_GE(buffer.capacity(), 64u) << slot;
  }
  EXPECT_EQ(pool.stats().reuses, 4);
}

TEST(BufferPoolTest, RecyclePartitionReturnsBothArrays) {
  StatusOr<StrippedPartition> partition =
      StrippedPartition::Create(4, {0, 1, 2, 3}, {0, 2, 4});
  ASSERT_TRUE(partition.ok());
  PartitionBufferPool pool(1);
  pool.Recycle(std::move(partition).value());
  EXPECT_EQ(pool.stats().recycles, 2);  // row_ids + class_offsets
  EXPECT_GT(pool.pooled_bytes(), 0);
}

}  // namespace
}  // namespace tane
