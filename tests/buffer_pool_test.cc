#include "partition/buffer_pool.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "core/tane.h"
#include "datasets/paper_datasets.h"
#include "gtest/gtest.h"

namespace tane {
namespace {

TEST(BufferPoolTest, DryPoolHandsOutEmptyBuffer) {
  PartitionBufferPool pool(1);
  std::vector<int32_t> buffer = pool.Acquire(0, 128);
  EXPECT_EQ(buffer.capacity(), 0u);
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquires, 1);
  EXPECT_EQ(stats.reuses, 0);
}

TEST(BufferPoolTest, RecycledBufferIsReused) {
  PartitionBufferPool pool(1);
  std::vector<int32_t> buffer;
  buffer.reserve(100);
  buffer.assign(50, 7);
  pool.Recycle(std::move(buffer));
  EXPECT_GT(pool.pooled_bytes(), 0);

  // Acquire keeps the recycled size/contents; only capacity is promised.
  std::vector<int32_t> reused = pool.Acquire(0, 80);
  EXPECT_GE(reused.capacity(), 100u);
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.recycles, 1);
  EXPECT_EQ(stats.reuses, 1);
}

TEST(BufferPoolTest, ZeroCapacityBuffersAreNotPooled) {
  PartitionBufferPool pool(1);
  pool.Recycle(std::vector<int32_t>());
  EXPECT_EQ(pool.pooled_bytes(), 0);
  EXPECT_EQ(pool.stats().recycles, 0);
}

TEST(BufferPoolTest, ByteCapDropsExcessBuffers) {
  // Cap small enough for exactly one of the two recycled buffers.
  PartitionBufferPool pool(1, /*max_pooled_bytes=*/600);
  std::vector<int32_t> first(128);   // 512 bytes
  std::vector<int32_t> second(128);  // would exceed the 600-byte cap
  pool.Recycle(std::move(first));
  pool.Recycle(std::move(second));
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.recycles, 2);
  EXPECT_EQ(stats.dropped, 1);
  EXPECT_LE(pool.pooled_bytes(), 600);
}

TEST(BufferPoolTest, AcquirePrefersSufficientCapacity) {
  PartitionBufferPool pool(1);
  std::vector<int32_t> small;
  small.reserve(10);
  std::vector<int32_t> large;
  large.reserve(1000);
  pool.Recycle(std::move(small));
  pool.Recycle(std::move(large));

  std::vector<int32_t> buffer = pool.Acquire(0, 500);
  EXPECT_GE(buffer.capacity(), 500u);
}

TEST(BufferPoolTest, SlotsDrawFromSharedFreelist) {
  // Slots refill from the shared freelist in batches of up to
  // kRefillBatch (8), so give the freelist enough buffers that every
  // slot's first refill finds some left.
  PartitionBufferPool pool(4);
  for (int i = 0; i < 32; ++i) {
    std::vector<int32_t> buffer;
    buffer.reserve(64);
    pool.Recycle(std::move(buffer));
  }
  for (int slot = 0; slot < 4; ++slot) {
    std::vector<int32_t> buffer = pool.Acquire(slot, 32);
    EXPECT_GE(buffer.capacity(), 64u) << slot;
  }
  EXPECT_EQ(pool.stats().reuses, 4);
}

TEST(BufferPoolTest, TakeAllDrainsSlotCachesAndSharedFreelist) {
  PartitionBufferPool pool(2);
  // Stock the shared freelist, then pull one buffer into slot 0's cache
  // (the refill batch moves up to 8) so both tiers hold buffers.
  for (int i = 0; i < 12; ++i) {
    std::vector<int32_t> buffer;
    buffer.reserve(64);
    pool.Recycle(std::move(buffer));
  }
  std::vector<int32_t> held = pool.Acquire(0, 32);
  pool.Recycle(std::move(held));
  ASSERT_GT(pool.pooled_bytes(), 0);

  std::vector<std::vector<int32_t>> taken = pool.TakeAll();
  EXPECT_EQ(taken.size(), 12u);
  for (const std::vector<int32_t>& buffer : taken) {
    EXPECT_GE(buffer.capacity(), 64u);
  }
  // The pool is empty afterwards: byte accounting reads zero and the next
  // acquire finds nothing to reuse.
  EXPECT_EQ(pool.pooled_bytes(), 0);
  const int64_t reuses_before = pool.stats().reuses;
  std::vector<int32_t> dry = pool.Acquire(1, 32);
  EXPECT_EQ(dry.capacity(), 0u);
  EXPECT_EQ(pool.stats().reuses, reuses_before);
}

TEST(BufferPoolTest, TakeAllCountsNeitherAcquiresNorReuses) {
  PartitionBufferPool pool(1);
  std::vector<int32_t> buffer;
  buffer.reserve(16);
  pool.Recycle(std::move(buffer));
  const BufferPoolStats before = pool.stats();
  (void)pool.TakeAll();
  const BufferPoolStats after = pool.stats();
  EXPECT_EQ(after.acquires, before.acquires);
  EXPECT_EQ(after.reuses, before.reuses);
}

// Regression test for the allocation drift the scaling issue called out
// (26,942 product allocations at 1 thread vs 27,126 at 8): buffer reuse is
// planned per candidate in node order, so the run-wide allocation count is
// a pure function of the search, not of how many workers raced the pool.
TEST(BufferPoolTest, ProductAllocationsDoNotDriftWithThreadCount) {
  StatusOr<Relation> relation = MakePaperDataset(
      PaperDataset::kWisconsinBreastCancer, /*rows=*/200, /*seed=*/42);
  ASSERT_TRUE(relation.ok()) << relation.status().ToString();
  int64_t serial_allocations = -1;
  for (int threads : {1, 2, 8}) {
    TaneConfig config;
    config.num_threads = threads;
    config.parallel_min_window_rows = 0;  // force the window scheduler
    StatusOr<DiscoveryResult> result = Tane::Discover(*relation, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->stats.partition_products, 0) << threads;
    if (serial_allocations < 0) {
      serial_allocations = result->stats.product_allocations;
    } else {
      EXPECT_EQ(result->stats.product_allocations, serial_allocations)
          << threads << " threads";
    }
  }
}

TEST(BufferPoolTest, RecyclePartitionReturnsBothArrays) {
  StatusOr<StrippedPartition> partition =
      StrippedPartition::Create(4, {0, 1, 2, 3}, {0, 2, 4});
  ASSERT_TRUE(partition.ok());
  PartitionBufferPool pool(1);
  pool.Recycle(std::move(partition).value());
  EXPECT_EQ(pool.stats().recycles, 2);  // row_ids + class_offsets
  EXPECT_GT(pool.pooled_bytes(), 0);
}

}  // namespace
}  // namespace tane
