// Tests for the parallel level executor: discovery output must be
// bit-identical for every thread count, and cooperative stops under many
// threads must still yield prefix-correct partial results.

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/tane.h"
#include "datasets/paper_datasets.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "util/run_control.h"

namespace tane {
namespace {

Relation Dataset(PaperDataset dataset, int64_t rows) {
  StatusOr<Relation> relation = MakePaperDataset(dataset, rows, /*seed=*/42);
  EXPECT_TRUE(relation.ok()) << relation.status().ToString();
  return std::move(relation).value();
}

DiscoveryResult Discover(const Relation& relation, double epsilon,
                         int num_threads, bool use_pli_cache = true) {
  TaneConfig config;
  config.epsilon = epsilon;
  config.num_threads = num_threads;
  config.use_pli_cache = use_pli_cache;
  // Force the parallel task window even on small levels and single-core CI
  // machines: these tests exist to exercise the scheduler, not to go fast.
  config.parallel_min_window_rows = 0;
  StatusOr<DiscoveryResult> result = Tane::Discover(relation, config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// Dependencies (with exact g3 values) and keys must match element for
// element — the canonical order is part of the contract, so no sorting
// here.
void ExpectIdenticalResults(const DiscoveryResult& expected,
                            const DiscoveryResult& actual, int num_threads) {
  ASSERT_EQ(expected.fds.size(), actual.fds.size()) << num_threads;
  for (size_t i = 0; i < expected.fds.size(); ++i) {
    EXPECT_EQ(expected.fds[i].lhs, actual.fds[i].lhs) << num_threads;
    EXPECT_EQ(expected.fds[i].rhs, actual.fds[i].rhs) << num_threads;
    // Bit-identical errors: every worker computes the same integer counts
    // and the same single division.
    EXPECT_EQ(expected.fds[i].error, actual.fds[i].error) << num_threads;
  }
  EXPECT_EQ(expected.keys, actual.keys) << num_threads;
  EXPECT_EQ(expected.completion, actual.completion) << num_threads;
  // The parallel executor must not change how much work the search does,
  // only who does it.
  EXPECT_EQ(expected.stats.validity_tests, actual.stats.validity_tests);
  EXPECT_EQ(expected.stats.g3_scans, actual.stats.g3_scans);
  EXPECT_EQ(expected.stats.partition_products,
            actual.stats.partition_products);
  EXPECT_EQ(expected.stats.sets_generated, actual.stats.sets_generated);
  // Interning is coordinator-serial in node order, so cache traffic is also
  // thread-count invariant.
  EXPECT_EQ(expected.stats.pli_cache_lookups, actual.stats.pli_cache_lookups);
  EXPECT_EQ(expected.stats.pli_cache_hits, actual.stats.pli_cache_hits);
  EXPECT_EQ(expected.stats.pli_cache_misses, actual.stats.pli_cache_misses);
  EXPECT_EQ(expected.stats.pli_cache_bytes_saved,
            actual.stats.pli_cache_bytes_saved);
  // The window planner assigns pooled buffers to candidates in node order —
  // a pure function of the candidate list — so the run-wide allocation
  // count cannot drift with the thread count (it used to, when workers
  // warmed their slot caches in arrival order).
  EXPECT_EQ(expected.stats.product_allocations,
            actual.stats.product_allocations);
}

struct DatasetCase {
  const char* name;
  PaperDataset dataset;
  int64_t rows;
};

class TaneParallelDeterminismTest
    : public ::testing::TestWithParam<DatasetCase> {};

TEST_P(TaneParallelDeterminismTest, ExactFdsIdenticalAcrossThreadCounts) {
  const Relation relation = Dataset(GetParam().dataset, GetParam().rows);
  const DiscoveryResult serial = Discover(relation, 0.0, 1);
  EXPECT_EQ(serial.stats.num_threads, 1);
  for (int threads : {2, 8}) {
    const DiscoveryResult parallel = Discover(relation, 0.0, threads);
    EXPECT_EQ(parallel.stats.num_threads, threads);
    ExpectIdenticalResults(serial, parallel, threads);
  }
}

TEST_P(TaneParallelDeterminismTest, ApproximateIdenticalAcrossThreadCounts) {
  const Relation relation = Dataset(GetParam().dataset, GetParam().rows);
  for (double epsilon : {0.05, 0.3}) {
    const DiscoveryResult serial = Discover(relation, epsilon, 1);
    for (int threads : {2, 8}) {
      ExpectIdenticalResults(serial, Discover(relation, epsilon, threads),
                             threads);
    }
  }
}

// The issue's acceptance matrix: every thread count of {1, 2, 4, 8} at both
// the exact and the approximate operating point must produce bit-identical
// results, with the parallel window forced on for every level.
TEST_P(TaneParallelDeterminismTest, FullThreadEpsilonMatrixIsBitIdentical) {
  const Relation relation = Dataset(GetParam().dataset, GetParam().rows);
  for (double epsilon : {0.0, 0.1}) {
    const DiscoveryResult serial = Discover(relation, epsilon, 1);
    for (int threads : {2, 4, 8}) {
      ExpectIdenticalResults(serial, Discover(relation, epsilon, threads),
                             threads);
    }
  }
}

TEST_P(TaneParallelDeterminismTest, SerialFallbackMatchesParallelWindow) {
  // The small-batch fallback (parallel_min_window_rows) routes a level to
  // the caller thread instead of the task window; both paths share the task
  // and commit code, so flipping the threshold can change scheduling only,
  // never results.
  const Relation relation = Dataset(GetParam().dataset, GetParam().rows);
  const DiscoveryResult windowed = Discover(relation, 0.0, 4);
  for (int64_t threshold : {int64_t{-1}, int64_t{1} << 40}) {
    TaneConfig config;
    config.num_threads = 4;
    config.parallel_min_window_rows = threshold;
    StatusOr<DiscoveryResult> fallback = Tane::Discover(relation, config);
    ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
    ExpectIdenticalResults(windowed, *fallback, 4);
  }
}

TEST_P(TaneParallelDeterminismTest, PliCacheCountersAreConsistent) {
  const Relation relation = Dataset(GetParam().dataset, GetParam().rows);
  for (int threads : {1, 2, 8}) {
    const DiscoveryResult result = Discover(relation, 0.0, threads);
    const DiscoveryStats& stats = result.stats;
    EXPECT_EQ(stats.pli_cache_lookups,
              stats.pli_cache_hits + stats.pli_cache_misses)
        << threads;
    // Every stored partition goes through the cache.
    EXPECT_GT(stats.pli_cache_lookups, 0) << threads;
    EXPECT_GE(stats.pli_cache_bytes_saved, 0) << threads;
  }
}

TEST_P(TaneParallelDeterminismTest, PliCacheOffMatchesCacheOn) {
  // Interning and pooling are pure storage optimizations: disabling the
  // cache must not change a single dependency, key, or error — at any
  // thread count.
  const Relation relation = Dataset(GetParam().dataset, GetParam().rows);
  const DiscoveryResult cached = Discover(relation, 0.0, 1, true);
  for (int threads : {1, 2, 8}) {
    const DiscoveryResult uncached = Discover(relation, 0.0, threads, false);
    ASSERT_EQ(cached.fds.size(), uncached.fds.size()) << threads;
    for (size_t i = 0; i < cached.fds.size(); ++i) {
      EXPECT_EQ(cached.fds[i].lhs, uncached.fds[i].lhs) << threads;
      EXPECT_EQ(cached.fds[i].rhs, uncached.fds[i].rhs) << threads;
      EXPECT_EQ(cached.fds[i].error, uncached.fds[i].error) << threads;
    }
    EXPECT_EQ(cached.keys, uncached.keys) << threads;
    // With the cache off, its counters stay zero.
    EXPECT_EQ(uncached.stats.pli_cache_lookups, 0) << threads;
    EXPECT_EQ(uncached.stats.pli_cache_hits, 0) << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperDatasets, TaneParallelDeterminismTest,
    ::testing::Values(
        DatasetCase{"lymphography", PaperDataset::kLymphography, 80},
        DatasetCase{"hepatitis", PaperDataset::kHepatitis, 80},
        DatasetCase{"wbc", PaperDataset::kWisconsinBreastCancer, 150}),
    [](const ::testing::TestParamInfo<DatasetCase>& info) {
      return std::string(info.param.name);
    });

// Every dependency and key of a partial result must appear, with the same
// error, in the complete run's output (prefix-correctness).
void ExpectPrefixOf(const DiscoveryResult& partial,
                    const DiscoveryResult& full) {
  std::set<std::pair<std::string, double>> full_fds;
  for (const FunctionalDependency& fd : full.fds) {
    full_fds.insert(
        {fd.lhs.ToString() + "->" + std::to_string(fd.rhs), fd.error});
  }
  for (const FunctionalDependency& fd : partial.fds) {
    EXPECT_TRUE(full_fds.count(
        {fd.lhs.ToString() + "->" + std::to_string(fd.rhs), fd.error}))
        << fd.lhs.ToString() << " -> " << fd.rhs;
  }
  std::set<std::string> full_keys;
  for (AttributeSet key : full.keys) full_keys.insert(key.ToString());
  for (AttributeSet key : partial.keys) {
    EXPECT_TRUE(full_keys.count(key.ToString())) << key.ToString();
  }
}

TEST(TaneParallelCancelTest, PreCancelledEightThreadRunIsPrefixCorrect) {
  const Relation relation = Dataset(PaperDataset::kWisconsinBreastCancer, 300);
  const DiscoveryResult full = Discover(relation, 0.0, 8);

  RunController controller;
  controller.RequestCancel();
  TaneConfig config;
  config.num_threads = 8;
  config.run_controller = &controller;
  StatusOr<DiscoveryResult> partial = Tane::Discover(relation, config);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_EQ(partial->completion, Completion::kCancelled);
  EXPECT_LT(partial->num_fds(), full.num_fds());
  ExpectPrefixOf(*partial, full);
}

TEST(TaneParallelCancelTest, MidRunCancelUnderEightThreadsIsPrefixCorrect) {
  const Relation relation = Dataset(PaperDataset::kWisconsinBreastCancer, 400);
  const DiscoveryResult full = Discover(relation, 0.0, 8);

  // Cancel from another thread while eight workers are mid-search. The
  // exact stop point is timing-dependent, so assert only the guarantees
  // that must hold for *any* stop point: the result is prefix-correct and
  // the completion reason is either cancelled or (if the run won the race)
  // complete.
  RunController controller;
  TaneConfig config;
  config.num_threads = 8;
  config.run_controller = &controller;
  std::thread canceller([&controller] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    controller.RequestCancel();
  });
  StatusOr<DiscoveryResult> result = Tane::Discover(relation, config);
  canceller.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->completion == Completion::kCancelled ||
              result->completion == Completion::kComplete);
  ExpectPrefixOf(*result, full);
  if (result->complete()) {
    EXPECT_EQ(result->num_fds(), full.num_fds());
  }
}

TEST(TaneParallelStatsTest, LevelParallelStatsCoverEveryLevel) {
  const Relation relation = Dataset(PaperDataset::kHepatitis, 80);
  const DiscoveryResult result = Discover(relation, 0.0, 2);
  ASSERT_FALSE(result.stats.level_parallel.empty());
  EXPECT_EQ(static_cast<int>(result.stats.level_parallel.size()),
            result.stats.levels_processed);
  int expected_level = 1;
  for (const LevelParallelStats& level : result.stats.level_parallel) {
    EXPECT_EQ(level.level, expected_level++);
    EXPECT_GE(level.wall_seconds, 0.0);
    EXPECT_GE(level.worker_seconds, 0.0);
    EXPECT_GT(level.speedup(), 0.0);
  }
}

}  // namespace
}  // namespace tane
