#include "rules/association.h"

#include <cmath>

#include "datasets/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace tane {
namespace {

using testing_util::MakeRelation;

// Six rows where city=paris strongly implies country=fr (3 of 3), and
// city=berlin implies country=de (2 of 2).
Relation CityRelation() {
  return MakeRelation(
      {
          {"paris", "fr"},
          {"paris", "fr"},
          {"paris", "fr"},
          {"berlin", "de"},
          {"berlin", "de"},
          {"rome", "it"},
      },
      2);
}

const AssociationRule* FindRule(const std::vector<AssociationRule>& rules,
                                const Relation& relation,
                                const std::string& text_prefix) {
  for (const AssociationRule& rule : rules) {
    if (rule.ToString(relation).rfind(text_prefix, 0) == 0) return &rule;
  }
  return nullptr;
}

TEST(AssociationTest, FindsObviousRules) {
  Relation relation = CityRelation();
  AssociationMiningOptions options;
  options.min_support = 0.4;
  options.min_confidence = 0.9;
  StatusOr<std::vector<AssociationRule>> rules =
      MineAssociationRules(relation, options);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();

  const AssociationRule* paris =
      FindRule(*rules, relation, "col0=paris => col1=fr");
  ASSERT_NE(paris, nullptr);
  EXPECT_EQ(paris->support_count, 3);
  EXPECT_DOUBLE_EQ(paris->support, 0.5);
  EXPECT_DOUBLE_EQ(paris->confidence, 1.0);

  // berlin rows (2 of 6 = 0.33) fall below min_support=0.4.
  EXPECT_EQ(FindRule(*rules, relation, "col0=berlin"), nullptr);
}

TEST(AssociationTest, ConfidenceThresholdFilters) {
  // value "x" maps to "1" twice and "2" once: confidence 2/3.
  Relation relation = MakeRelation(
      {{"x", "1"}, {"x", "1"}, {"x", "2"}, {"y", "3"}}, 2);
  AssociationMiningOptions options;
  options.min_support = 0.25;
  options.min_confidence = 0.7;
  StatusOr<std::vector<AssociationRule>> strict =
      MineAssociationRules(relation, options);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(FindRule(*strict, relation, "col0=x => col1=1"), nullptr);

  options.min_confidence = 0.6;
  StatusOr<std::vector<AssociationRule>> loose =
      MineAssociationRules(relation, options);
  ASSERT_TRUE(loose.ok());
  const AssociationRule* rule =
      FindRule(*loose, relation, "col0=x => col1=1");
  ASSERT_NE(rule, nullptr);
  EXPECT_NEAR(rule->confidence, 2.0 / 3.0, 1e-12);
}

TEST(AssociationTest, ThreeItemRules) {
  // (a=1, b=1) => c=1 in 3 of 3 matching rows.
  Relation relation = MakeRelation(
      {
          {"1", "1", "1"},
          {"1", "1", "1"},
          {"1", "1", "1"},
          {"1", "2", "2"},
          {"2", "1", "2"},
          {"2", "2", "2"},
      },
      3);
  AssociationMiningOptions options;
  options.min_support = 0.4;
  options.min_confidence = 0.95;
  StatusOr<std::vector<AssociationRule>> rules =
      MineAssociationRules(relation, options);
  ASSERT_TRUE(rules.ok());
  const AssociationRule* rule =
      FindRule(*rules, relation, "col0=1, col1=1 => col2=1");
  ASSERT_NE(rule, nullptr);
  EXPECT_DOUBLE_EQ(rule->confidence, 1.0);
  EXPECT_DOUBLE_EQ(rule->support, 0.5);
}

TEST(AssociationTest, SortedByConfidenceThenSupport) {
  Relation relation = CityRelation();
  AssociationMiningOptions options;
  options.min_support = 0.15;
  options.min_confidence = 0.5;
  StatusOr<std::vector<AssociationRule>> rules =
      MineAssociationRules(relation, options);
  ASSERT_TRUE(rules.ok());
  for (size_t i = 1; i < rules->size(); ++i) {
    const AssociationRule& prev = (*rules)[i - 1];
    const AssociationRule& cur = (*rules)[i];
    EXPECT_TRUE(prev.confidence > cur.confidence ||
                (prev.confidence == cur.confidence &&
                 prev.support >= cur.support));
  }
}

TEST(AssociationTest, ValidatesOptions) {
  Relation relation = CityRelation();
  AssociationMiningOptions bad;
  bad.min_support = -0.1;
  EXPECT_FALSE(MineAssociationRules(relation, bad).ok());
  bad.min_support = 0.5;
  bad.min_confidence = 1.5;
  EXPECT_FALSE(MineAssociationRules(relation, bad).ok());
  bad.min_confidence = 0.5;
  bad.max_itemset_size = 1;
  EXPECT_FALSE(MineAssociationRules(relation, bad).ok());
}

TEST(AssociationTest, EmptyRelationYieldsNoRules) {
  Relation relation = MakeRelation({}, 2);
  StatusOr<std::vector<AssociationRule>> rules =
      MineAssociationRules(relation);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
}

TEST(AssociationTest, ItemsetCapTriggersCleanError) {
  StatusOr<Relation> relation = GenerateUniform(200, 6, 2, /*seed=*/4);
  ASSERT_TRUE(relation.ok());
  AssociationMiningOptions options;
  options.min_support = 0.0;
  options.min_confidence = 0.0;
  options.max_itemsets = 10;
  StatusOr<std::vector<AssociationRule>> rules =
      MineAssociationRules(*relation, options);
  EXPECT_FALSE(rules.ok());
  EXPECT_EQ(rules.status().code(), StatusCode::kResourceExhausted);
}

// Property check against a direct counting reference.
class AssociationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AssociationPropertyTest, SupportAndConfidenceAreExact) {
  Rng rng(GetParam() * 7907 + 2);
  std::vector<std::vector<std::string>> data;
  const int64_t rows = 40 + static_cast<int64_t>(rng.NextBounded(60));
  for (int64_t i = 0; i < rows; ++i) {
    data.push_back({std::to_string(rng.NextBounded(3)),
                    std::to_string(rng.NextBounded(3)),
                    std::to_string(rng.NextBounded(2))});
  }
  Relation relation = MakeRelation(data, 3);
  AssociationMiningOptions options;
  options.min_support = 0.05;
  options.min_confidence = 0.3;
  StatusOr<std::vector<AssociationRule>> rules =
      MineAssociationRules(relation, options);
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(rules->empty());

  for (const AssociationRule& rule : *rules) {
    int64_t antecedent_count = 0;
    int64_t full_count = 0;
    for (int64_t row = 0; row < relation.num_rows(); ++row) {
      bool matches = true;
      for (const Item& item : rule.antecedent) {
        if (relation.code(row, item.attribute) != item.code) {
          matches = false;
          break;
        }
      }
      if (!matches) continue;
      ++antecedent_count;
      if (relation.code(row, rule.consequent.attribute) ==
          rule.consequent.code) {
        ++full_count;
      }
    }
    EXPECT_EQ(rule.support_count, full_count);
    EXPECT_NEAR(rule.confidence,
                static_cast<double>(full_count) /
                    static_cast<double>(antecedent_count),
                1e-12);
    EXPECT_GE(rule.support + 1e-9, options.min_support);
    EXPECT_GE(rule.confidence + 1e-9, options.min_confidence);
    // Antecedent attributes are distinct and exclude the consequent's.
    for (size_t i = 0; i < rule.antecedent.size(); ++i) {
      EXPECT_NE(rule.antecedent[i].attribute, rule.consequent.attribute);
      if (i > 0) {
        EXPECT_LT(rule.antecedent[i - 1].attribute,
                  rule.antecedent[i].attribute);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssociationPropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace tane
