#include "baselines/brute_force.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace tane {
namespace {

using testing_util::ContainsFd;
using testing_util::MakeRelation;
using testing_util::PaperFigure1Relation;

TEST(BruteForceTest, PaperFigure1GroundTruth) {
  StatusOr<DiscoveryResult> result =
      BruteForce::Discover(PaperFigure1Relation());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_fds(), 6);
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({1, 2}), 0));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({1, 3}), 0));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({0, 2}), 1));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({0, 3}), 1));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({0, 3}), 2));
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({1, 3}), 2));
}

TEST(BruteForceTest, PaperFigure1Keys) {
  StatusOr<DiscoveryResult> result =
      BruteForce::Discover(PaperFigure1Relation());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->keys.size(), 2u);
  EXPECT_EQ(result->keys[0], AttributeSet::Of({0, 3}));
  EXPECT_EQ(result->keys[1], AttributeSet::Of({1, 3}));
}

TEST(BruteForceTest, ApproximateErrorsWithinThreshold) {
  StatusOr<DiscoveryResult> result =
      BruteForce::Discover(PaperFigure1Relation(), 0.375);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ContainsFd(result->fds, AttributeSet::Of({0}), 1));
  for (const FunctionalDependency& fd : result->fds) {
    EXPECT_LE(fd.error, 0.375 + 1e-12);
  }
}

TEST(BruteForceTest, MaxLhsLimit) {
  StatusOr<DiscoveryResult> limited =
      BruteForce::Discover(PaperFigure1Relation(), 0.0, /*max_lhs_size=*/1);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->num_fds(), 0);  // Figure 1 FDs all have |lhs| = 2
}

TEST(BruteForceTest, RejectsBadEpsilon) {
  EXPECT_FALSE(BruteForce::Discover(PaperFigure1Relation(), -0.1).ok());
  EXPECT_FALSE(BruteForce::Discover(PaperFigure1Relation(), 1.1).ok());
}

TEST(BruteForceTest, EmptyRelation) {
  Relation relation = MakeRelation({}, 2);
  StatusOr<DiscoveryResult> result = BruteForce::Discover(relation);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_fds(), 2);  // {} -> each attribute, vacuously
  EXPECT_TRUE(result->keys.empty());
}

TEST(BruteForceTest, OutputIsMinimal) {
  StatusOr<DiscoveryResult> result =
      BruteForce::Discover(PaperFigure1Relation(), 0.2);
  ASSERT_TRUE(result.ok());
  for (const FunctionalDependency& a : result->fds) {
    for (const FunctionalDependency& b : result->fds) {
      if (a.rhs != b.rhs || a.lhs == b.lhs) continue;
      EXPECT_FALSE(a.lhs.IsProperSubsetOf(b.lhs));
    }
  }
}

}  // namespace
}  // namespace tane
