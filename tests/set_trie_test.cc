#include "lattice/set_trie.h"

#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "util/random.h"

namespace tane {
namespace {

TEST(SetTrieTest, InsertAndContains) {
  SetTrie trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_TRUE(trie.Insert(AttributeSet::Of({1, 3})));
  EXPECT_FALSE(trie.Insert(AttributeSet::Of({1, 3})));  // duplicate
  EXPECT_TRUE(trie.Insert(AttributeSet::Of({1})));
  EXPECT_TRUE(trie.Insert(AttributeSet()));
  EXPECT_EQ(trie.size(), 3u);
  EXPECT_TRUE(trie.Contains(AttributeSet::Of({1, 3})));
  EXPECT_TRUE(trie.Contains(AttributeSet()));
  EXPECT_FALSE(trie.Contains(AttributeSet::Of({3})));
  EXPECT_FALSE(trie.Contains(AttributeSet::Of({1, 2, 3})));
}

TEST(SetTrieTest, SubsetQueries) {
  SetTrie trie;
  trie.Insert(AttributeSet::Of({1, 3}));
  trie.Insert(AttributeSet::Of({0, 2, 4}));
  EXPECT_TRUE(trie.ContainsSubsetOf(AttributeSet::Of({1, 3, 5})));
  EXPECT_TRUE(trie.ContainsSubsetOf(AttributeSet::Of({1, 3})));
  EXPECT_FALSE(trie.ContainsSubsetOf(AttributeSet::Of({1, 2})));
  EXPECT_FALSE(trie.ContainsSubsetOf(AttributeSet::Of({3})));
  EXPECT_FALSE(trie.ContainsSubsetOf(AttributeSet()));
  trie.Insert(AttributeSet());
  EXPECT_TRUE(trie.ContainsSubsetOf(AttributeSet()));
}

TEST(SetTrieTest, SupersetQueries) {
  SetTrie trie;
  trie.Insert(AttributeSet::Of({1, 3}));
  trie.Insert(AttributeSet::Of({0, 2, 4}));
  EXPECT_TRUE(trie.ContainsSupersetOf(AttributeSet::Of({1})));
  EXPECT_TRUE(trie.ContainsSupersetOf(AttributeSet::Of({3})));
  EXPECT_TRUE(trie.ContainsSupersetOf(AttributeSet::Of({0, 4})));
  EXPECT_TRUE(trie.ContainsSupersetOf(AttributeSet()));
  EXPECT_FALSE(trie.ContainsSupersetOf(AttributeSet::Of({1, 2})));
  EXPECT_FALSE(trie.ContainsSupersetOf(AttributeSet::Of({5})));
}

TEST(SetTrieTest, EraseAndPrune) {
  SetTrie trie;
  trie.Insert(AttributeSet::Of({1, 3}));
  trie.Insert(AttributeSet::Of({1}));
  EXPECT_TRUE(trie.Erase(AttributeSet::Of({1, 3})));
  EXPECT_FALSE(trie.Erase(AttributeSet::Of({1, 3})));
  EXPECT_TRUE(trie.Contains(AttributeSet::Of({1})));
  EXPECT_FALSE(trie.ContainsSupersetOf(AttributeSet::Of({3})));
  EXPECT_EQ(trie.size(), 1u);
}

TEST(SetTrieTest, ExtractSupersets) {
  SetTrie trie;
  trie.Insert(AttributeSet::Of({1}));
  trie.Insert(AttributeSet::Of({1, 2}));
  trie.Insert(AttributeSet::Of({1, 2, 3}));
  trie.Insert(AttributeSet::Of({2, 3}));
  std::vector<AttributeSet> removed =
      trie.ExtractSupersetsOf(AttributeSet::Of({1, 2}));
  ASSERT_EQ(removed.size(), 2u);
  EXPECT_EQ(removed[0], AttributeSet::Of({1, 2}));
  EXPECT_EQ(removed[1], AttributeSet::Of({1, 2, 3}));
  EXPECT_EQ(trie.size(), 2u);
  EXPECT_TRUE(trie.Contains(AttributeSet::Of({1})));
  EXPECT_TRUE(trie.Contains(AttributeSet::Of({2, 3})));
}

TEST(SetTrieTest, ExtractSubsets) {
  SetTrie trie;
  trie.Insert(AttributeSet());
  trie.Insert(AttributeSet::Of({1}));
  trie.Insert(AttributeSet::Of({1, 2}));
  trie.Insert(AttributeSet::Of({3}));
  std::vector<AttributeSet> removed =
      trie.ExtractSubsetsOf(AttributeSet::Of({1, 2}));
  ASSERT_EQ(removed.size(), 3u);
  EXPECT_EQ(removed[0], AttributeSet());
  EXPECT_EQ(removed[1], AttributeSet::Of({1}));
  EXPECT_EQ(removed[2], AttributeSet::Of({1, 2}));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_TRUE(trie.Contains(AttributeSet::Of({3})));
}

TEST(SetTrieTest, EnumerateSorted) {
  SetTrie trie;
  trie.Insert(AttributeSet::Of({2}));
  trie.Insert(AttributeSet::Of({0, 1}));
  trie.Insert(AttributeSet());
  std::vector<AttributeSet> all = trie.Enumerate();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

TEST(SetTrieTest, HighAttributeIndices) {
  SetTrie trie;
  trie.Insert(AttributeSet::Of({60, 63}));
  EXPECT_TRUE(trie.ContainsSupersetOf(AttributeSet::Of({63})));
  EXPECT_TRUE(trie.ContainsSubsetOf(AttributeSet::Of({59, 60, 63})));
  EXPECT_FALSE(trie.ContainsSubsetOf(AttributeSet::Of({60, 62})));
}

// Property sweep against a straightforward std::set-based reference.
class SetTriePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SetTriePropertyTest, MatchesReferenceImplementation) {
  Rng rng(GetParam() * 131 + 7);
  SetTrie trie;
  std::set<uint64_t> reference;
  const int universe = 10;

  for (int step = 0; step < 400; ++step) {
    const uint64_t mask = rng.NextBounded(uint64_t{1} << universe);
    const AttributeSet set = AttributeSet::FromMask(mask);
    const int op = static_cast<int>(rng.NextBounded(6));
    switch (op) {
      case 0: {
        EXPECT_EQ(trie.Insert(set), reference.insert(mask).second);
        break;
      }
      case 1: {
        EXPECT_EQ(trie.Erase(set), reference.erase(mask) > 0);
        break;
      }
      case 2: {
        bool expected = false;
        for (uint64_t stored : reference) {
          if ((stored & mask) == stored) expected = true;
        }
        EXPECT_EQ(trie.ContainsSubsetOf(set), expected) << set.ToString();
        break;
      }
      case 3: {
        bool expected = false;
        for (uint64_t stored : reference) {
          if ((stored & mask) == mask) expected = true;
        }
        EXPECT_EQ(trie.ContainsSupersetOf(set), expected) << set.ToString();
        break;
      }
      case 4: {
        std::vector<AttributeSet> removed = trie.ExtractSupersetsOf(set);
        std::vector<uint64_t> expected;
        for (auto it = reference.begin(); it != reference.end();) {
          if ((*it & mask) == mask) {
            expected.push_back(*it);
            it = reference.erase(it);
          } else {
            ++it;
          }
        }
        ASSERT_EQ(removed.size(), expected.size());
        break;
      }
      default: {
        EXPECT_EQ(trie.Contains(set), reference.count(mask) > 0);
        break;
      }
    }
    ASSERT_EQ(trie.size(), reference.size());
  }
  // Final full comparison.
  std::vector<AttributeSet> all = trie.Enumerate();
  ASSERT_EQ(all.size(), reference.size());
  size_t i = 0;
  for (uint64_t mask : reference) {
    EXPECT_EQ(all[i++].mask(), mask);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetTriePropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace tane
