file(REMOVE_RECURSE
  "CMakeFiles/figure3_relative_approx.dir/figure3_relative_approx.cc.o"
  "CMakeFiles/figure3_relative_approx.dir/figure3_relative_approx.cc.o.d"
  "figure3_relative_approx"
  "figure3_relative_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_relative_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
