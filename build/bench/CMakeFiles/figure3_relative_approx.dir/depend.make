# Empty dependencies file for figure3_relative_approx.
# This may be replaced when dependencies are built.
