file(REMOVE_RECURSE
  "CMakeFiles/figure4_row_scaling.dir/figure4_row_scaling.cc.o"
  "CMakeFiles/figure4_row_scaling.dir/figure4_row_scaling.cc.o.d"
  "figure4_row_scaling"
  "figure4_row_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_row_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
