# Empty compiler generated dependencies file for figure4_row_scaling.
# This may be replaced when dependencies are built.
