# Empty dependencies file for table2_approximate.
# This may be replaced when dependencies are built.
