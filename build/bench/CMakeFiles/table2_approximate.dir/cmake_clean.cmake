file(REMOVE_RECURSE
  "CMakeFiles/table2_approximate.dir/table2_approximate.cc.o"
  "CMakeFiles/table2_approximate.dir/table2_approximate.cc.o.d"
  "table2_approximate"
  "table2_approximate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_approximate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
