# Empty dependencies file for table1_fd_discovery.
# This may be replaced when dependencies are built.
