file(REMOVE_RECURSE
  "CMakeFiles/table1_fd_discovery.dir/table1_fd_discovery.cc.o"
  "CMakeFiles/table1_fd_discovery.dir/table1_fd_discovery.cc.o.d"
  "table1_fd_discovery"
  "table1_fd_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fd_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
