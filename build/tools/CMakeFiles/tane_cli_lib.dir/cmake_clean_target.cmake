file(REMOVE_RECURSE
  "libtane_cli_lib.a"
)
