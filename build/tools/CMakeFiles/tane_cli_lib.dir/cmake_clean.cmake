file(REMOVE_RECURSE
  "CMakeFiles/tane_cli_lib.dir/cli.cc.o"
  "CMakeFiles/tane_cli_lib.dir/cli.cc.o.d"
  "libtane_cli_lib.a"
  "libtane_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tane_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
