# Empty dependencies file for tane_cli_lib.
# This may be replaced when dependencies are built.
