file(REMOVE_RECURSE
  "CMakeFiles/tane_cli.dir/tane_cli.cc.o"
  "CMakeFiles/tane_cli.dir/tane_cli.cc.o.d"
  "tane"
  "tane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tane_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
