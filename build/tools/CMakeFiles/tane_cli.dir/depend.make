# Empty dependencies file for tane_cli.
# This may be replaced when dependencies are built.
