
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/closure.cc" "src/CMakeFiles/tane.dir/analysis/closure.cc.o" "gcc" "src/CMakeFiles/tane.dir/analysis/closure.cc.o.d"
  "/root/repo/src/analysis/key_discovery.cc" "src/CMakeFiles/tane.dir/analysis/key_discovery.cc.o" "gcc" "src/CMakeFiles/tane.dir/analysis/key_discovery.cc.o.d"
  "/root/repo/src/analysis/keys.cc" "src/CMakeFiles/tane.dir/analysis/keys.cc.o" "gcc" "src/CMakeFiles/tane.dir/analysis/keys.cc.o.d"
  "/root/repo/src/analysis/normalization.cc" "src/CMakeFiles/tane.dir/analysis/normalization.cc.o" "gcc" "src/CMakeFiles/tane.dir/analysis/normalization.cc.o.d"
  "/root/repo/src/analysis/violations.cc" "src/CMakeFiles/tane.dir/analysis/violations.cc.o" "gcc" "src/CMakeFiles/tane.dir/analysis/violations.cc.o.d"
  "/root/repo/src/baselines/brute_force.cc" "src/CMakeFiles/tane.dir/baselines/brute_force.cc.o" "gcc" "src/CMakeFiles/tane.dir/baselines/brute_force.cc.o.d"
  "/root/repo/src/baselines/fdep.cc" "src/CMakeFiles/tane.dir/baselines/fdep.cc.o" "gcc" "src/CMakeFiles/tane.dir/baselines/fdep.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/tane.dir/core/config.cc.o" "gcc" "src/CMakeFiles/tane.dir/core/config.cc.o.d"
  "/root/repo/src/core/fd.cc" "src/CMakeFiles/tane.dir/core/fd.cc.o" "gcc" "src/CMakeFiles/tane.dir/core/fd.cc.o.d"
  "/root/repo/src/core/partition_store.cc" "src/CMakeFiles/tane.dir/core/partition_store.cc.o" "gcc" "src/CMakeFiles/tane.dir/core/partition_store.cc.o.d"
  "/root/repo/src/core/result.cc" "src/CMakeFiles/tane.dir/core/result.cc.o" "gcc" "src/CMakeFiles/tane.dir/core/result.cc.o.d"
  "/root/repo/src/core/tane.cc" "src/CMakeFiles/tane.dir/core/tane.cc.o" "gcc" "src/CMakeFiles/tane.dir/core/tane.cc.o.d"
  "/root/repo/src/datasets/generators.cc" "src/CMakeFiles/tane.dir/datasets/generators.cc.o" "gcc" "src/CMakeFiles/tane.dir/datasets/generators.cc.o.d"
  "/root/repo/src/datasets/paper_datasets.cc" "src/CMakeFiles/tane.dir/datasets/paper_datasets.cc.o" "gcc" "src/CMakeFiles/tane.dir/datasets/paper_datasets.cc.o.d"
  "/root/repo/src/lattice/attribute_set.cc" "src/CMakeFiles/tane.dir/lattice/attribute_set.cc.o" "gcc" "src/CMakeFiles/tane.dir/lattice/attribute_set.cc.o.d"
  "/root/repo/src/lattice/level.cc" "src/CMakeFiles/tane.dir/lattice/level.cc.o" "gcc" "src/CMakeFiles/tane.dir/lattice/level.cc.o.d"
  "/root/repo/src/lattice/set_trie.cc" "src/CMakeFiles/tane.dir/lattice/set_trie.cc.o" "gcc" "src/CMakeFiles/tane.dir/lattice/set_trie.cc.o.d"
  "/root/repo/src/partition/error.cc" "src/CMakeFiles/tane.dir/partition/error.cc.o" "gcc" "src/CMakeFiles/tane.dir/partition/error.cc.o.d"
  "/root/repo/src/partition/partition_builder.cc" "src/CMakeFiles/tane.dir/partition/partition_builder.cc.o" "gcc" "src/CMakeFiles/tane.dir/partition/partition_builder.cc.o.d"
  "/root/repo/src/partition/product.cc" "src/CMakeFiles/tane.dir/partition/product.cc.o" "gcc" "src/CMakeFiles/tane.dir/partition/product.cc.o.d"
  "/root/repo/src/partition/stripped_partition.cc" "src/CMakeFiles/tane.dir/partition/stripped_partition.cc.o" "gcc" "src/CMakeFiles/tane.dir/partition/stripped_partition.cc.o.d"
  "/root/repo/src/relation/csv.cc" "src/CMakeFiles/tane.dir/relation/csv.cc.o" "gcc" "src/CMakeFiles/tane.dir/relation/csv.cc.o.d"
  "/root/repo/src/relation/relation.cc" "src/CMakeFiles/tane.dir/relation/relation.cc.o" "gcc" "src/CMakeFiles/tane.dir/relation/relation.cc.o.d"
  "/root/repo/src/relation/relation_builder.cc" "src/CMakeFiles/tane.dir/relation/relation_builder.cc.o" "gcc" "src/CMakeFiles/tane.dir/relation/relation_builder.cc.o.d"
  "/root/repo/src/relation/schema.cc" "src/CMakeFiles/tane.dir/relation/schema.cc.o" "gcc" "src/CMakeFiles/tane.dir/relation/schema.cc.o.d"
  "/root/repo/src/relation/stats.cc" "src/CMakeFiles/tane.dir/relation/stats.cc.o" "gcc" "src/CMakeFiles/tane.dir/relation/stats.cc.o.d"
  "/root/repo/src/relation/transforms.cc" "src/CMakeFiles/tane.dir/relation/transforms.cc.o" "gcc" "src/CMakeFiles/tane.dir/relation/transforms.cc.o.d"
  "/root/repo/src/rules/association.cc" "src/CMakeFiles/tane.dir/rules/association.cc.o" "gcc" "src/CMakeFiles/tane.dir/rules/association.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/tane.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/tane.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/tane.dir/util/random.cc.o" "gcc" "src/CMakeFiles/tane.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/tane.dir/util/status.cc.o" "gcc" "src/CMakeFiles/tane.dir/util/status.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/tane.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/tane.dir/util/strings.cc.o.d"
  "/root/repo/src/util/timer.cc" "src/CMakeFiles/tane.dir/util/timer.cc.o" "gcc" "src/CMakeFiles/tane.dir/util/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
