file(REMOVE_RECURSE
  "libtane.a"
)
