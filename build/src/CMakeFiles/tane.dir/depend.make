# Empty dependencies file for tane.
# This may be replaced when dependencies are built.
