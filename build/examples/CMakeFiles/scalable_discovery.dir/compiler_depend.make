# Empty compiler generated dependencies file for scalable_discovery.
# This may be replaced when dependencies are built.
