file(REMOVE_RECURSE
  "CMakeFiles/scalable_discovery.dir/scalable_discovery.cpp.o"
  "CMakeFiles/scalable_discovery.dir/scalable_discovery.cpp.o.d"
  "scalable_discovery"
  "scalable_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalable_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
