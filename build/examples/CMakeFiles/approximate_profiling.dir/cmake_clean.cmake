file(REMOVE_RECURSE
  "CMakeFiles/approximate_profiling.dir/approximate_profiling.cpp.o"
  "CMakeFiles/approximate_profiling.dir/approximate_profiling.cpp.o.d"
  "approximate_profiling"
  "approximate_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximate_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
