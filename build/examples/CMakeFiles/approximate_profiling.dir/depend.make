# Empty dependencies file for approximate_profiling.
# This may be replaced when dependencies are built.
