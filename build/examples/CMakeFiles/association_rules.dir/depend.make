# Empty dependencies file for association_rules.
# This may be replaced when dependencies are built.
