file(REMOVE_RECURSE
  "CMakeFiles/association_rules.dir/association_rules.cpp.o"
  "CMakeFiles/association_rules.dir/association_rules.cpp.o.d"
  "association_rules"
  "association_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/association_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
