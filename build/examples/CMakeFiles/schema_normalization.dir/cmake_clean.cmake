file(REMOVE_RECURSE
  "CMakeFiles/schema_normalization.dir/schema_normalization.cpp.o"
  "CMakeFiles/schema_normalization.dir/schema_normalization.cpp.o.d"
  "schema_normalization"
  "schema_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
