# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tane_tests[1]_include.cmake")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_approximate_profiling "/root/repo/build/examples/approximate_profiling")
set_tests_properties(example_approximate_profiling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;49;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_schema_normalization "/root/repo/build/examples/schema_normalization")
set_tests_properties(example_schema_normalization PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;50;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_scalable_discovery "/root/repo/build/examples/scalable_discovery" "4")
set_tests_properties(example_scalable_discovery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;51;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_association_rules "/root/repo/build/examples/association_rules")
set_tests_properties(example_association_rules PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;52;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_help "/root/repo/build/tools/tane" "help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;53;add_test;/root/repo/tests/CMakeLists.txt;0;")
