
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/association_test.cc" "tests/CMakeFiles/tane_tests.dir/association_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/association_test.cc.o.d"
  "/root/repo/tests/attribute_set_test.cc" "tests/CMakeFiles/tane_tests.dir/attribute_set_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/attribute_set_test.cc.o.d"
  "/root/repo/tests/brute_force_test.cc" "tests/CMakeFiles/tane_tests.dir/brute_force_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/brute_force_test.cc.o.d"
  "/root/repo/tests/cli_test.cc" "tests/CMakeFiles/tane_tests.dir/cli_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/cli_test.cc.o.d"
  "/root/repo/tests/closure_test.cc" "tests/CMakeFiles/tane_tests.dir/closure_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/closure_test.cc.o.d"
  "/root/repo/tests/csv_fuzz_test.cc" "tests/CMakeFiles/tane_tests.dir/csv_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/csv_fuzz_test.cc.o.d"
  "/root/repo/tests/csv_test.cc" "tests/CMakeFiles/tane_tests.dir/csv_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/csv_test.cc.o.d"
  "/root/repo/tests/error_measures_test.cc" "tests/CMakeFiles/tane_tests.dir/error_measures_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/error_measures_test.cc.o.d"
  "/root/repo/tests/error_test.cc" "tests/CMakeFiles/tane_tests.dir/error_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/error_test.cc.o.d"
  "/root/repo/tests/fdep_test.cc" "tests/CMakeFiles/tane_tests.dir/fdep_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/fdep_test.cc.o.d"
  "/root/repo/tests/generators_test.cc" "tests/CMakeFiles/tane_tests.dir/generators_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/generators_test.cc.o.d"
  "/root/repo/tests/key_discovery_test.cc" "tests/CMakeFiles/tane_tests.dir/key_discovery_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/key_discovery_test.cc.o.d"
  "/root/repo/tests/keys_test.cc" "tests/CMakeFiles/tane_tests.dir/keys_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/keys_test.cc.o.d"
  "/root/repo/tests/level_test.cc" "tests/CMakeFiles/tane_tests.dir/level_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/level_test.cc.o.d"
  "/root/repo/tests/library_test.cc" "tests/CMakeFiles/tane_tests.dir/library_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/library_test.cc.o.d"
  "/root/repo/tests/normalization_test.cc" "tests/CMakeFiles/tane_tests.dir/normalization_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/normalization_test.cc.o.d"
  "/root/repo/tests/paper_datasets_test.cc" "tests/CMakeFiles/tane_tests.dir/paper_datasets_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/paper_datasets_test.cc.o.d"
  "/root/repo/tests/partition_builder_test.cc" "tests/CMakeFiles/tane_tests.dir/partition_builder_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/partition_builder_test.cc.o.d"
  "/root/repo/tests/partition_store_test.cc" "tests/CMakeFiles/tane_tests.dir/partition_store_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/partition_store_test.cc.o.d"
  "/root/repo/tests/product_test.cc" "tests/CMakeFiles/tane_tests.dir/product_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/product_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/tane_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/random_test.cc" "tests/CMakeFiles/tane_tests.dir/random_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/random_test.cc.o.d"
  "/root/repo/tests/relation_test.cc" "tests/CMakeFiles/tane_tests.dir/relation_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/relation_test.cc.o.d"
  "/root/repo/tests/schema_test.cc" "tests/CMakeFiles/tane_tests.dir/schema_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/schema_test.cc.o.d"
  "/root/repo/tests/set_trie_test.cc" "tests/CMakeFiles/tane_tests.dir/set_trie_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/set_trie_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/tane_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/tane_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/tane_tests.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/stress_test.cc.o.d"
  "/root/repo/tests/strings_test.cc" "tests/CMakeFiles/tane_tests.dir/strings_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/strings_test.cc.o.d"
  "/root/repo/tests/stripped_partition_test.cc" "tests/CMakeFiles/tane_tests.dir/stripped_partition_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/stripped_partition_test.cc.o.d"
  "/root/repo/tests/tane_approximate_test.cc" "tests/CMakeFiles/tane_tests.dir/tane_approximate_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/tane_approximate_test.cc.o.d"
  "/root/repo/tests/tane_disk_test.cc" "tests/CMakeFiles/tane_tests.dir/tane_disk_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/tane_disk_test.cc.o.d"
  "/root/repo/tests/tane_test.cc" "tests/CMakeFiles/tane_tests.dir/tane_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/tane_test.cc.o.d"
  "/root/repo/tests/transforms_test.cc" "tests/CMakeFiles/tane_tests.dir/transforms_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/transforms_test.cc.o.d"
  "/root/repo/tests/violations_test.cc" "tests/CMakeFiles/tane_tests.dir/violations_test.cc.o" "gcc" "tests/CMakeFiles/tane_tests.dir/violations_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tane.dir/DependInfo.cmake"
  "/root/repo/build/tools/CMakeFiles/tane_cli_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
