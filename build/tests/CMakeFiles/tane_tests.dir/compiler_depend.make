# Empty compiler generated dependencies file for tane_tests.
# This may be replaced when dependencies are built.
