// Microbenchmarks (google-benchmark) for the resilient storage layer: disk
// spill write/read throughput with CRC32 framing, the checksum itself, the
// AutoPartitionStore memory->disk migration, and the overhead the stop-poll
// and budget checks add to an end-to-end discovery run.

#include <benchmark/benchmark.h>

#include "core/partition_store.h"
#include "core/tane.h"
#include "datasets/generators.h"
#include "partition/partition_builder.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/run_control.h"

namespace tane {
namespace {

Relation MakeRelation(int64_t rows, int cols, int64_t cardinality) {
  StatusOr<Relation> relation =
      GenerateUniform(rows, cols, cardinality, /*seed=*/42);
  TANE_CHECK(relation.ok()) << relation.status().ToString();
  return std::move(relation).value();
}

StrippedPartition MakePartition(int64_t rows) {
  const Relation relation = MakeRelation(rows, 1, 16);
  return PartitionBuilder::ForAttribute(relation, 0);
}

void BM_Crc32(benchmark::State& state) {
  const std::string payload =
      SerializePartition(MakePartition(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(payload));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_Crc32)->Range(1 << 12, 1 << 18);

void BM_DiskStorePut(benchmark::State& state) {
  const StrippedPartition partition = MakePartition(state.range(0));
  StatusOr<std::unique_ptr<DiskPartitionStore>> store =
      DiskPartitionStore::Open();
  TANE_CHECK(store.ok()) << store.status().ToString();
  for (auto _ : state) {
    StatusOr<int64_t> handle = (*store)->Put(partition);
    TANE_CHECK(handle.ok());
    TANE_CHECK((*store)->Release(*handle).ok());
  }
  state.SetBytesProcessed(state.iterations() * partition.EstimatedBytes());
}
BENCHMARK(BM_DiskStorePut)->Range(1 << 12, 1 << 16);

void BM_DiskStoreGet(benchmark::State& state) {
  const StrippedPartition partition = MakePartition(state.range(0));
  StatusOr<std::unique_ptr<DiskPartitionStore>> store =
      DiskPartitionStore::Open();
  TANE_CHECK(store.ok());
  StatusOr<int64_t> handle = (*store)->Put(partition);
  TANE_CHECK(handle.ok());
  for (auto _ : state) {
    StatusOr<StrippedPartition> loaded = (*store)->Get(*handle);
    TANE_CHECK(loaded.ok());
    benchmark::DoNotOptimize(loaded);
  }
  state.SetBytesProcessed(state.iterations() * partition.EstimatedBytes());
}
BENCHMARK(BM_DiskStoreGet)->Range(1 << 12, 1 << 16);

void BM_AutoStoreMigration(benchmark::State& state) {
  // Cost of the one-time memory->disk migration of `n` live partitions.
  const int n = static_cast<int>(state.range(0));
  const StrippedPartition partition = MakePartition(1 << 12);
  const int64_t budget = partition.EstimatedBytes() * n;
  for (auto _ : state) {
    AutoPartitionStore store(budget, "");
    for (int i = 0; i < n; ++i) {
      TANE_CHECK(store.Put(partition).ok());
    }
    TANE_CHECK(!store.spilled());
    // This Put crosses the budget and migrates everything above.
    TANE_CHECK(store.Put(partition).ok());
    TANE_CHECK(store.spilled());
  }
  state.SetItemsProcessed(state.iterations() * (n + 1));
}
BENCHMARK(BM_AutoStoreMigration)->Arg(8)->Arg(32)->Arg(128);

void BM_DiscoverWithController(benchmark::State& state) {
  // End-to-end discovery with and without a RunController attached; the
  // difference is the cost of the stop polls (never-expiring deadline).
  const bool with_controller = state.range(0) != 0;
  const Relation relation = MakeRelation(1 << 12, 6, 8);
  for (auto _ : state) {
    RunController controller;
    controller.SetDeadlineAfter(std::chrono::hours(24));
    TaneConfig config;
    if (with_controller) config.run_controller = &controller;
    StatusOr<DiscoveryResult> result = Tane::Discover(relation, config);
    TANE_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DiscoverWithController)->Arg(0)->Arg(1);

}  // namespace
}  // namespace tane

// Custom main instead of BENCHMARK_MAIN so the harness-wide --scale/--seed
// flags are accepted (and ignored — microbenchmark sizes are fixed).
int main(int argc, char** argv) {
  std::vector<char*> kept;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0 || arg.rfind("--seed=", 0) == 0) {
      continue;
    }
    kept.push_back(argv[i]);
  }
  int kept_argc = static_cast<int>(kept.size());
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
