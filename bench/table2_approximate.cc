// Reproduces Table 2 of the TANE paper: approximate-dependency discovery
// with TANE/MEM for thresholds ε ∈ {0, 0.01, 0.05, 0.25, 0.5}, reporting
// the number of minimal approximate dependencies N and the discovery time
// for each dataset.
//
// Usage: table2_approximate [--scale=quick|full] [--seed=N]

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "datasets/paper_datasets.h"
#include "relation/transforms.h"

namespace tane {
namespace bench {
namespace {

constexpr double kEpsilons[] = {0.0, 0.01, 0.05, 0.25, 0.5};

struct Row {
  std::string label;
  PaperDataset dataset;
  int copies;
  bool quick_scale_ok;
};

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner("Table 2: approximate dependency discovery (TANE/MEM)",
              options);

  const std::vector<Row> rows = {
      {"Lymphography", PaperDataset::kLymphography, 1, true},
      {"Hepatitis", PaperDataset::kHepatitis, 1, true},
      {"W. breast cancer", PaperDataset::kWisconsinBreastCancer, 1, true},
      {"W. breast cancer x64", PaperDataset::kWisconsinBreastCancer, 64,
       false},
      {"Chess", PaperDataset::kChess, 1, true},
  };

  std::printf("%-22s", "Dataset");
  for (double epsilon : kEpsilons) {
    std::printf(" | eps=%-4.2f %9s %9s", epsilon, "N", "time(s)");
  }
  std::printf("\n");

  for (const Row& row : rows) {
    if (!options.full_scale && !row.quick_scale_ok) {
      std::printf("%-22s   (run with --scale=full)\n", row.label.c_str());
      continue;
    }
    StatusOr<Relation> base = MakePaperDataset(row.dataset, 0, options.seed);
    if (!base.ok()) {
      std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
      return 1;
    }
    Relation relation = std::move(base).value();
    if (row.copies > 1) {
      StatusOr<Relation> scaled = ConcatenateCopies(relation, row.copies);
      if (!scaled.ok()) return 1;
      relation = std::move(scaled).value();
    }

    std::printf("%-22s", row.label.c_str());
    for (double epsilon : kEpsilons) {
      TaneConfig config;
      config.epsilon = epsilon;
      const Cell cell = RunTane(relation, config);
      std::printf(" |          %9lld %9s",
                  static_cast<long long>(cell.num_fds),
                  FormatCell(cell).c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\nExpected shape (paper): N first grows with ε (more rules qualify),\n"
      "then collapses at large ε as tiny left-hand sides subsume everything;\n"
      "time drops sharply once aggressive pruning kicks in (ε >= 0.25).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tane

int main(int argc, char** argv) { return tane::bench::Main(argc, argv); }
