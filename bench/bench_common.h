#ifndef TANE_BENCH_BENCH_COMMON_H_
#define TANE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/fdep.h"
#include "core/tane.h"
#include "relation/relation.h"

namespace tane {
namespace bench {

/// Command-line options shared by all paper-experiment harnesses.
///
///   --scale=quick   laptop-friendly sizes (default; minutes for the suite)
///   --scale=full    the paper's dataset sizes (hours for the slow cells)
///   --seed=N        generator seed (default 42)
///   --json=PATH     also write a machine-readable BENCH_*.json artifact
struct BenchOptions {
  bool full_scale = false;
  uint64_t seed = 42;
  std::string json_path;
};

/// A minimal streaming JSON writer for the BENCH_*.json artifacts every
/// harness emits. Call order mirrors the document structure; the writer
/// inserts commas and escapes strings. No validation beyond comma handling —
/// harness code is trusted to produce balanced containers.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value) {
    return Value(std::string_view(value));
  }
  JsonWriter& Value(double value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(int value) { return Value(static_cast<int64_t>(value)); }
  JsonWriter& Value(bool value);

  const std::string& str() const { return out_; }

  /// Writes str() plus a trailing newline to `path`. Returns false (after
  /// printing to stderr) when the file cannot be written.
  bool WriteFile(const std::string& path) const;

 private:
  // Emits the separating comma (unless this value completes a key) and
  // marks the enclosing container non-empty.
  void Prefix();
  void Escaped(std::string_view text);

  std::string out_;
  std::vector<bool> has_elements_;
  bool pending_key_ = false;
};

/// Parses argv; unknown flags abort with a usage message.
BenchOptions ParseBenchOptions(int argc, char** argv);

/// The outcome of one measured cell. An empty `seconds` means the cell was
/// skipped (infeasible at this scale), printed as "*" like the paper.
struct Cell {
  int64_t num_fds = -1;
  std::optional<double> seconds;
  DiscoveryStats stats;
};

/// Runs TANE with `config` and wall-clocks it.
Cell RunTane(const Relation& relation, const TaneConfig& config);

/// Runs FDEP unless the relation exceeds `max_rows` (its Θ(|r|²) negative-
/// cover pass makes large inputs infeasible, as in the paper's * entries).
Cell RunFdep(const Relation& relation, int64_t max_rows);

/// Formats a cell time like the paper's tables ("68.2", "*").
std::string FormatCell(const Cell& cell);

/// Formats a literature number, "-" when the paper reports none.
std::string FormatPaperSeconds(double seconds);

/// Prints the standard harness banner naming the experiment.
void PrintBanner(const std::string& experiment, const BenchOptions& options);

}  // namespace bench
}  // namespace tane

#endif  // TANE_BENCH_BENCH_COMMON_H_
