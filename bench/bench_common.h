#ifndef TANE_BENCH_BENCH_COMMON_H_
#define TANE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/fdep.h"
#include "core/tane.h"
#include "relation/relation.h"
#include "util/json_writer.h"

namespace tane {
namespace bench {

/// Command-line options shared by all paper-experiment harnesses.
///
///   --scale=quick   laptop-friendly sizes (default; minutes for the suite)
///   --scale=full    the paper's dataset sizes (hours for the slow cells)
///   --seed=N        generator seed (default 42)
///   --json=PATH     also write a machine-readable BENCH_*.json artifact
struct BenchOptions {
  bool full_scale = false;
  uint64_t seed = 42;
  std::string json_path;
};

/// The streaming JSON writer for BENCH_*.json artifacts now lives in
/// src/util (shared with the run-report and trace exporters); the alias
/// keeps existing harness code unchanged.
using JsonWriter = ::tane::JsonWriter;

/// Parses argv; unknown flags abort with a usage message.
BenchOptions ParseBenchOptions(int argc, char** argv);

/// The outcome of one measured cell. An empty `seconds` means the cell was
/// skipped (infeasible at this scale), printed as "*" like the paper.
struct Cell {
  int64_t num_fds = -1;
  std::optional<double> seconds;
  DiscoveryStats stats;
  /// Full registry aggregate of the run (counters, gauges, histograms);
  /// emitted into BENCH_*.json next to the headline numbers.
  obs::MetricsSnapshot metrics;
};

/// Runs TANE with `config` and wall-clocks it.
Cell RunTane(const Relation& relation, const TaneConfig& config);

/// Runs FDEP unless the relation exceeds `max_rows` (its Θ(|r|²) negative-
/// cover pass makes large inputs infeasible, as in the paper's * entries).
Cell RunFdep(const Relation& relation, int64_t max_rows);

/// Formats a cell time like the paper's tables ("68.2", "*").
std::string FormatCell(const Cell& cell);

/// Formats a literature number, "-" when the paper reports none.
std::string FormatPaperSeconds(double seconds);

/// Prints the standard harness banner naming the experiment.
void PrintBanner(const std::string& experiment, const BenchOptions& options);

}  // namespace bench
}  // namespace tane

#endif  // TANE_BENCH_BENCH_COMMON_H_
