// Reproduces Table 3 of the TANE paper: the cross-paper comparison of FD
// discovery algorithms, including runs with a bounded left-hand-side size
// |X|. Rows measured by the original authors on systems we cannot rerun
// (Bell & Brockhausen, Bitton et al., Schlimmer) are reprinted from the
// paper (marked "+"); the TANE and FDEP columns are measured live on the
// synthetic stand-in datasets.
//
// Usage: table3_comparison [--scale=quick|full] [--seed=N]

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "datasets/paper_datasets.h"
#include "relation/transforms.h"

namespace tane {
namespace bench {
namespace {

struct Row {
  std::string label;
  // Which dataset to run; nullopt-like copies==0 means literature-only row.
  PaperDataset dataset;
  int copies;
  int max_lhs;  // |X| bound; kMaxAttributes = unbounded
  bool runnable;
  bool run_fdep;
  // Literature numbers in seconds (<0 = "-" in the paper).
  double bell, bitton, fdep_paper, schlimmer, tane_paper;
};

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner("Table 3: comparison with previously reported results",
              options);

  const double kHours33 = 33 * 3600.0;
  const std::vector<Row> rows = {
      {"Lymphography* (|X|<=7)", PaperDataset::kLymphography, 1, 7, true,
       true, kHours33, -1, 540, -1, -1},
      {"Lymphography", PaperDataset::kLymphography, 1, kMaxAttributes, true,
       true, -1, -1, 88, -1, 68.2},
      {"Rel1 (7x7, literature only)", PaperDataset::kLymphography, 0,
       kMaxAttributes, false, false, -1, 0.02, -1, -1, -1},
      {"Rel6 (236x60, literature only)", PaperDataset::kLymphography, 0,
       kMaxAttributes, false, false, -1, 994, -1, -1, -1},
      {"W. breast cancer (|X|<=4)", PaperDataset::kWisconsinBreastCancer, 1,
       4, true, true, 259, -1, 15, 4440, 0.34},
      {"W. breast cancer", PaperDataset::kWisconsinBreastCancer, 1,
       kMaxAttributes, true, true, 533, -1, 15, -1, 0.76},
      {"W. breast cancer x128", PaperDataset::kWisconsinBreastCancer, 128,
       kMaxAttributes, false, false, -1, -1, -1, -1, 173},
      {"Books (9931x9, literature only)", PaperDataset::kLymphography, 0,
       kMaxAttributes, false, false, 17040, -1, -1, -1, -1},
  };

  const int64_t fdep_row_cap = options.full_scale ? 30000 : 3000;

  std::printf("%-32s | %9s %9s | %10s %10s %10s %10s %10s\n", "Dataset",
              "TANE", "FDEP", "Bell+", "Bitton+", "FDEP+", "Schlim.+",
              "TANE+");
  for (const Row& row : rows) {
    Cell tane_cell, fdep_cell;
    const bool run_now =
        row.runnable && (options.full_scale || row.copies <= 1);
    if (run_now) {
      StatusOr<Relation> base =
          MakePaperDataset(row.dataset, 0, options.seed);
      if (!base.ok()) return 1;
      Relation relation = std::move(base).value();
      if (row.copies > 1) {
        StatusOr<Relation> scaled = ConcatenateCopies(relation, row.copies);
        if (!scaled.ok()) return 1;
        relation = std::move(scaled).value();
      }
      TaneConfig config;
      config.max_lhs_size = row.max_lhs;
      tane_cell = RunTane(relation, config);
      if (row.run_fdep) fdep_cell = RunFdep(relation, fdep_row_cap);
    }

    std::printf("%-32s | %9s %9s | %10s %10s %10s %10s %10s\n",
                row.label.c_str(),
                run_now ? FormatCell(tane_cell).c_str() : "-",
                run_now && row.run_fdep ? FormatCell(fdep_cell).c_str() : "-",
                FormatPaperSeconds(row.bell).c_str(),
                FormatPaperSeconds(row.bitton).c_str(),
                FormatPaperSeconds(row.fdep_paper).c_str(),
                FormatPaperSeconds(row.schlimmer).c_str(),
                FormatPaperSeconds(row.tane_paper).c_str());
  }

  std::printf(
      "\nNotes (as in the paper): '+' columns are numbers reported in the\n"
      "cited articles on 1990s hardware and are trend-setting only; '-'\n"
      "means no published figure; Rel1/Rel6/Books datasets were never\n"
      "public, so only literature values can be shown. Expected shape:\n"
      "TANE faster than FDEP by 1-2 orders of magnitude on small data and\n"
      "the only feasible system on the scaled datasets.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tane

int main(int argc, char** argv) { return tane::bench::Main(argc, argv); }
