#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "util/strings.h"
#include "util/timer.h"

namespace tane {
namespace bench {

BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--scale=quick") {
      options.full_scale = false;
    } else if (arg == "--scale=full") {
      options.full_scale = true;
    } else if (StartsWith(arg, "--seed=")) {
      int64_t seed = 0;
      if (!ParseInt64(arg.substr(7), &seed) || seed < 0) {
        std::fprintf(stderr, "bad --seed value: %s\n", argv[i]);
        std::exit(2);
      }
      options.seed = static_cast<uint64_t>(seed);
    } else if (StartsWith(arg, "--json=")) {
      options.json_path = std::string(arg.substr(7));
      if (options.json_path.empty()) {
        std::fprintf(stderr, "empty --json path\n");
        std::exit(2);
      }
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--scale=quick|full] "
                   "[--seed=N] [--json=PATH]\n",
                   argv[i], argv[0]);
      std::exit(2);
    }
  }
  return options;
}

Cell RunTane(const Relation& relation, const TaneConfig& config) {
  Cell cell;
  WallTimer timer;
  StatusOr<DiscoveryResult> result = Tane::Discover(relation, config);
  if (!result.ok()) {
    std::fprintf(stderr, "TANE failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  cell.seconds = timer.ElapsedSeconds();
  cell.num_fds = result->num_fds();
  cell.stats = result->stats;
  cell.metrics = result->metrics;
  return cell;
}

Cell RunFdep(const Relation& relation, int64_t max_rows) {
  Cell cell;
  if (relation.num_rows() > max_rows) return cell;  // skipped: "*"
  WallTimer timer;
  StatusOr<DiscoveryResult> result = Fdep::Discover(relation);
  if (!result.ok()) {
    std::fprintf(stderr, "FDEP failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  cell.seconds = timer.ElapsedSeconds();
  cell.num_fds = result->num_fds();
  cell.stats = result->stats;
  return cell;
}

std::string FormatCell(const Cell& cell) {
  if (!cell.seconds.has_value()) return "*";
  return FormatSeconds(*cell.seconds);
}

std::string FormatPaperSeconds(double seconds) {
  if (seconds < 0) return "-";
  return FormatSeconds(seconds) + "+";  // "+" marks a 1998-hardware number
}

void PrintBanner(const std::string& experiment, const BenchOptions& options) {
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf(
      "scale=%s seed=%llu  (datasets are synthetic stand-ins for the UCI "
      "originals;\n absolute numbers differ from the paper, shapes should "
      "match — see EXPERIMENTS.md)\n\n",
      options.full_scale ? "full" : "quick",
      static_cast<unsigned long long>(options.seed));
}

}  // namespace bench
}  // namespace tane
