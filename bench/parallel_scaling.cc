// Thread-scaling harness for the parallel level executor: runs the same
// discovery at 1, 2, 4, and 8 worker threads and reports wall time,
// speedup over the serial run, and the per-level parallel efficiency the
// run observed. The dependency count is printed for every thread count —
// the executor guarantees identical output, so a mismatch is a bug.
//
// Usage: parallel_scaling [--scale=quick|full] [--seed=N]

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "datasets/generators.h"
#include "obs/report.h"

namespace tane {
namespace bench {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};

// A 15-attribute relation with planted structure: an id-like wide column,
// correlated categoricals, and derived columns that create exact and
// approximate dependencies across several lattice levels — enough nodes
// per level to keep every worker busy.
StatusOr<Relation> MakeScalingRelation(int64_t rows, uint64_t seed) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.seed = seed;
  spec.base = {
      {"c0", 64, 0.0},  {"c1", 16, 0.5}, {"c2", 16, 0.5}, {"c3", 8, 0.0},
      {"c4", 8, 1.0},   {"c5", 4, 0.0},  {"c6", 4, 0.5},  {"c7", 3, 0.0},
      {"c8", 3, 0.0},   {"c9", 2, 0.0},
  };
  spec.derived = {
      {"d0", {0, 1}, 32, 0.0, 0.0},
      {"d1", {2, 3}, 16, 0.0, 0.0},
      {"d2", {4, 5}, 8, 0.02, 0.0},
      {"d3", {1, 6}, 8, 0.05, 0.0},
      {"d4", {7}, 2, 0.0, 0.4},
  };
  return GenerateSynthetic(spec);
}

void RunSweep(const Relation& relation, double epsilon, JsonWriter* json) {
  std::printf("epsilon=%.2f\n", epsilon);
  std::printf("  %-8s %10s %10s %8s %16s\n", "threads", "N", "time(s)",
              "speedup", "level speedups");
  if (json != nullptr) {
    json->BeginObject();
    json->Key("epsilon").Value(epsilon);
    json->Key("runs").BeginArray();
  }
  double serial_seconds = 0.0;
  int64_t serial_fds = -1;
  for (int threads : kThreadCounts) {
    TaneConfig config;
    config.epsilon = epsilon;
    config.num_threads = threads;
    const Cell cell = RunTane(relation, config);
    const double seconds = cell.seconds.value_or(0.0);
    if (threads == 1) {
      serial_seconds = seconds;
      serial_fds = cell.num_fds;
    }
    std::printf("  %-8d %10lld %10.3f %7.2fx  ", threads,
                static_cast<long long>(cell.num_fds), seconds,
                seconds > 0.0 ? serial_seconds / seconds : 1.0);
    for (const LevelParallelStats& level : cell.stats.level_parallel) {
      std::printf(" L%d=%.2f", level.level, level.speedup());
    }
    std::printf("\n");
    if (cell.num_fds != serial_fds) {
      std::printf("  ** MISMATCH: %lld dependencies at %d threads vs %lld "
                  "serial — determinism bug **\n",
                  static_cast<long long>(cell.num_fds), threads,
                  static_cast<long long>(serial_fds));
    }
    if (json != nullptr) {
      json->BeginObject();
      json->Key("threads").Value(threads);
      json->Key("seconds").Value(seconds);
      json->Key("speedup").Value(seconds > 0.0 ? serial_seconds / seconds
                                               : 1.0);
      json->Key("num_fds").Value(cell.num_fds);
      json->Key("partition_products").Value(cell.stats.partition_products);
      json->Key("products_per_sec")
          .Value(seconds > 0.0 ? static_cast<double>(
                                     cell.stats.partition_products) /
                                     seconds
                               : 0.0);
      json->Key("product_allocations").Value(cell.stats.product_allocations);
      json->Key("pli_cache_lookups").Value(cell.stats.pli_cache_lookups);
      json->Key("pli_cache_hits").Value(cell.stats.pli_cache_hits);
      json->Key("pli_cache_hit_rate")
          .Value(cell.stats.pli_cache_lookups > 0
                     ? static_cast<double>(cell.stats.pli_cache_hits) /
                           static_cast<double>(cell.stats.pli_cache_lookups)
                     : 0.0);
      json->Key("peak_partition_bytes").Value(cell.stats.peak_partition_bytes);
      json->Key("matches_serial_output").Value(cell.num_fds == serial_fds);
      json->Key("histograms");
      obs::WriteHistogramsObject(cell.metrics, json);
      json->EndObject();
    }
  }
  if (json != nullptr) {
    json->EndArray();
    json->EndObject();
  }
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner("Parallel level execution: thread scaling sweep", options);

  const int64_t rows = options.full_scale ? 200000 : 20000;
  StatusOr<Relation> relation = MakeScalingRelation(rows, options.seed);
  if (!relation.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 relation.status().ToString().c_str());
    return 1;
  }
  std::printf("relation: %lld rows x %d attributes\n\n",
              static_cast<long long>(relation->num_rows()),
              relation->num_columns());

  JsonWriter json;
  JsonWriter* json_out = options.json_path.empty() ? nullptr : &json;
  if (json_out != nullptr) {
    json.BeginObject();
    json.Key("benchmark").Value("parallel_scaling");
    json.Key("rows").Value(rows);
    json.Key("columns").Value(relation->num_columns());
    // Hardware context for the scaling gate: speedup floors only bind when
    // the machine actually has the cores a thread count asks for (0 means
    // the runtime could not tell).
    json.Key("hardware_concurrency")
        .Value(static_cast<int64_t>(std::thread::hardware_concurrency()));
    json.Key("sweeps").BeginArray();
  }
  RunSweep(*relation, 0.0, json_out);
  std::printf("\n");
  RunSweep(*relation, 0.1, json_out);
  if (json_out != nullptr) {
    json.EndArray();
    json.EndObject();
    if (!json.WriteFile(options.json_path)) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tane

int main(int argc, char** argv) { return tane::bench::Main(argc, argv); }
