// Reproduces Table 1 of the TANE paper: wall-clock FD-discovery times for
// TANE (disk-resident partitions), TANE/MEM, and FDEP on the evaluation
// datasets, including the "×n" scaled copies of the Wisconsin breast cancer
// data. Cells that are infeasible at the current scale print "*", as in the
// paper; the paper's own 1998 measurements are reprinted alongside (marked
// with a trailing "+").
//
// Usage: table1_fd_discovery [--scale=quick|full] [--seed=N]

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "datasets/paper_datasets.h"
#include "relation/transforms.h"

namespace tane {
namespace bench {
namespace {

struct Row {
  std::string label;
  PaperDataset dataset;
  int copies;           // ×n concatenation factor; 1 = the base dataset
  bool quick_scale_ok;  // run at quick scale?
  bool run_fdep;
  double paper_tane;
  double paper_tane_mem;
  double paper_fdep;
};

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner("Table 1: FD discovery on the paper's datasets", options);

  const double wbc_base_tane =
      GetPaperDatasetInfo(PaperDataset::kWisconsinBreastCancer)
          .paper_tane_seconds;
  (void)wbc_base_tane;
  const std::vector<Row> rows = {
      {"Lymphography", PaperDataset::kLymphography, 1, true, true, 68.2, 24.0,
       88.0},
      {"Hepatitis", PaperDataset::kHepatitis, 1, true, true, 29.6, 14.1,
       663.0},
      {"Wisconsin breast cancer", PaperDataset::kWisconsinBreastCancer, 1,
       true, true, 0.76, 0.25, 15.0},
      {"Wisconsin breast cancer x64", PaperDataset::kWisconsinBreastCancer,
       64, true, false, 80.5, 23.0, 17521.0},
      {"Wisconsin breast cancer x128", PaperDataset::kWisconsinBreastCancer,
       128, false, false, 173.0, 247.0, -2.0},
      {"Wisconsin breast cancer x512", PaperDataset::kWisconsinBreastCancer,
       512, false, false, 884.0, -2.0, -2.0},
      {"Adult", PaperDataset::kAdult, 1, false, false, 1451.0, -2.0, -2.0},
      {"Chess", PaperDataset::kChess, 1, true, true, 3.63, 2.03, 6685.0},
  };

  // FDEP's pairwise pass is Θ(|r|²·|R|); cap it like the paper's 5h cutoff.
  const int64_t fdep_row_cap = options.full_scale ? 30000 : 3000;

  std::printf("%-30s %8s %4s %7s | %9s %9s %9s | %9s %9s %9s\n", "Dataset",
              "|r|", "|R|", "N", "TANE", "TANE/MEM", "FDEP", "TANE+",
              "T/MEM+", "FDEP+");
  std::printf("%.*s\n", 132,
              "----------------------------------------------------------"
              "----------------------------------------------------------"
              "----------------");

  for (const Row& row : rows) {
    if (!options.full_scale && !row.quick_scale_ok) {
      std::printf("%-30s %8s %4s %7s | %9s %9s %9s | %9s %9s %9s\n",
                  row.label.c_str(), "-", "-", "-", "(quick)", "(quick)",
                  "(quick)", FormatPaperSeconds(row.paper_tane).c_str(),
                  FormatPaperSeconds(row.paper_tane_mem).c_str(),
                  FormatPaperSeconds(row.paper_fdep).c_str());
      continue;
    }

    StatusOr<Relation> base = MakePaperDataset(row.dataset, 0, options.seed);
    if (!base.ok()) {
      std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
      return 1;
    }
    Relation relation = std::move(base).value();
    if (row.copies > 1) {
      StatusOr<Relation> scaled = ConcatenateCopies(relation, row.copies);
      if (!scaled.ok()) {
        std::fprintf(stderr, "%s\n", scaled.status().ToString().c_str());
        return 1;
      }
      relation = std::move(scaled).value();
    }

    TaneConfig disk_config;
    disk_config.storage = StorageMode::kDisk;
    const Cell tane_disk = RunTane(relation, disk_config);
    const Cell tane_mem = RunTane(relation, TaneConfig());
    const Cell fdep = row.run_fdep ? RunFdep(relation, fdep_row_cap) : Cell();

    std::printf("%-30s %8lld %4d %7lld | %9s %9s %9s | %9s %9s %9s\n",
                row.label.c_str(),
                static_cast<long long>(relation.num_rows()),
                relation.num_columns(),
                static_cast<long long>(tane_mem.num_fds),
                FormatCell(tane_disk).c_str(), FormatCell(tane_mem).c_str(),
                FormatCell(fdep).c_str(),
                FormatPaperSeconds(row.paper_tane).c_str(),
                FormatPaperSeconds(row.paper_tane_mem).c_str(),
                FormatPaperSeconds(row.paper_fdep).c_str());

    if (fdep.seconds.has_value() && fdep.num_fds != tane_mem.num_fds) {
      std::fprintf(stderr, "WARNING: FDEP N=%lld != TANE N=%lld on %s\n",
                   static_cast<long long>(fdep.num_fds),
                   static_cast<long long>(tane_mem.num_fds),
                   row.label.c_str());
    }
  }

  std::printf(
      "\nExpected shape (paper): TANE/MEM fastest while memory lasts, TANE\n"
      "close behind and never memory-bound, FDEP competitive only on small\n"
      "relations and infeasible (*) on the scaled ones.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tane

int main(int argc, char** argv) { return tane::bench::Main(argc, argv); }
