// Ablation study of TANE's design choices (DESIGN.md §2): how much work do
// the rhs+ candidate pruning (Lemma 4.1 / line 8), key pruning (Lemma 4.2),
// stripped partitions, and the g3 bounds each save? Every configuration
// discovers the identical dependency set (verified); only the effort
// differs.
//
// Usage: ablation_pruning [--scale=quick|full] [--seed=N]

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "datasets/paper_datasets.h"

namespace tane {
namespace bench {
namespace {

void PrintRow(const std::string& label, const Cell& cell) {
  std::printf("%-28s %10s %12lld %12lld %14lld %10lld\n", label.c_str(),
              FormatCell(cell).c_str(),
              static_cast<long long>(cell.stats.sets_generated),
              static_cast<long long>(cell.stats.validity_tests),
              static_cast<long long>(cell.stats.partition_products),
              static_cast<long long>(cell.num_fds));
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner("Ablation: pruning rules and partition representation",
              options);

  const std::vector<std::pair<std::string, PaperDataset>> datasets = {
      {"W. breast cancer", PaperDataset::kWisconsinBreastCancer},
      {"Hepatitis", PaperDataset::kHepatitis},
      {"Chess", PaperDataset::kChess},
  };

  for (const auto& [name, dataset] : datasets) {
    StatusOr<Relation> relation = MakePaperDataset(dataset, 0, options.seed);
    if (!relation.ok()) return 1;

    std::printf("--- %s ---\n", name.c_str());
    std::printf("%-28s %10s %12s %12s %14s %10s\n", "configuration",
                "time(s)", "sets", "valid.tests", "products", "N");

    TaneConfig baseline;
    PrintRow("baseline (all pruning)", RunTane(*relation, baseline));

    TaneConfig no_rhs_plus = baseline;
    no_rhs_plus.use_rhs_plus_pruning = false;
    PrintRow("no rhs+ pruning (line 8)", RunTane(*relation, no_rhs_plus));

    TaneConfig no_key = baseline;
    no_key.use_key_pruning = false;
    PrintRow("no key pruning", RunTane(*relation, no_key));

    TaneConfig no_both = no_rhs_plus;
    no_both.use_key_pruning = false;
    PrintRow("no rhs+ and no key pruning", RunTane(*relation, no_both));

    TaneConfig unstripped = baseline;
    unstripped.use_stripped_partitions = false;
    PrintRow("full (unstripped) partitions", RunTane(*relation, unstripped));

    TaneConfig no_covered = baseline;
    no_covered.use_covered_rhs_pruning = false;
    PrintRow("no covered-rhs pruning", RunTane(*relation, no_covered));

    TaneConfig singleton_products = baseline;
    singleton_products.use_partition_products = false;
    PrintRow("partitions from singletons",
             RunTane(*relation, singleton_products));

    // g3-bound ablation only matters in approximate mode.
    TaneConfig approx = baseline;
    approx.epsilon = 0.05;
    PrintRow("approx eps=0.05 (bounds on)", RunTane(*relation, approx));
    TaneConfig approx_no_bounds = approx;
    approx_no_bounds.use_g3_bounds = false;
    PrintRow("approx eps=0.05 (bounds off)",
             RunTane(*relation, approx_no_bounds));
    std::printf("\n");
  }

  std::printf(
      "Expected shape: each disabled rule increases sets/tests/products and\n"
      "time while N stays identical; stripped partitions matter most on\n"
      "data with many singleton classes (near-key columns).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tane

int main(int argc, char** argv) { return tane::bench::Main(argc, argv); }
