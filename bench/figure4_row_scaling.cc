// Reproduces Figure 4 of the TANE paper: running time as a function of the
// number of rows, using n concatenated copies of the Wisconsin breast
// cancer data (n doubling). TANE and TANE/MEM scale linearly in |r| for a
// fixed dependency set, while FDEP's pairwise negative-cover computation is
// quadratic. The harness prints the raw series plus the growth ratio
// t(2n)/t(n), which should approach 2 for the TANE variants and 4 for FDEP.
//
// Usage: figure4_row_scaling [--scale=quick|full] [--seed=N]

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "datasets/paper_datasets.h"
#include "relation/transforms.h"

namespace tane {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner("Figure 4: scaling with the number of rows (WBC x n)",
              options);

  StatusOr<Relation> base = MakePaperDataset(
      PaperDataset::kWisconsinBreastCancer, 0, options.seed);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }

  const int max_copies = options.full_scale ? 512 : 32;
  const int64_t fdep_row_cap = options.full_scale ? 50000 : 12000;

  std::printf("%8s %9s | %10s %10s %10s | %8s %8s %8s\n", "copies", "rows",
              "TANE(s)", "TANE/MEM(s)", "FDEP(s)", "ratioT", "ratioM",
              "ratioF");

  double prev_tane = 0, prev_mem = 0, prev_fdep = 0;
  for (int copies = 1; copies <= max_copies; copies *= 2) {
    StatusOr<Relation> scaled = ConcatenateCopies(*base, copies);
    if (!scaled.ok()) {
      std::fprintf(stderr, "%s\n", scaled.status().ToString().c_str());
      return 1;
    }

    TaneConfig disk_config;
    disk_config.storage = StorageMode::kDisk;
    const Cell tane_disk = RunTane(*scaled, disk_config);
    const Cell tane_mem = RunTane(*scaled, TaneConfig());
    const Cell fdep = RunFdep(*scaled, fdep_row_cap);

    auto ratio = [](double prev, const Cell& cell) -> double {
      if (prev <= 0 || !cell.seconds.has_value()) return 0.0;
      return *cell.seconds / prev;
    };
    std::printf("%8d %9lld | %10.3f %10.3f %10s | %8.2f %8.2f %8.2f\n",
                copies, static_cast<long long>(scaled->num_rows()),
                *tane_disk.seconds, *tane_mem.seconds,
                FormatCell(fdep).c_str(), ratio(prev_tane, tane_disk),
                ratio(prev_mem, tane_mem), ratio(prev_fdep, fdep));

    prev_tane = *tane_disk.seconds;
    prev_mem = *tane_mem.seconds;
    prev_fdep = fdep.seconds.value_or(0.0);
  }

  std::printf(
      "\nExpected shape (paper): doubling rows doubles TANE and TANE/MEM\n"
      "times (ratio -> 2, linear) but quadruples FDEP's (ratio -> 4,\n"
      "quadratic); FDEP becomes infeasible (*) well before the largest "
      "size.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tane

int main(int argc, char** argv) { return tane::bench::Main(argc, argv); }
