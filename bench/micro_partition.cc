// Microbenchmarks (google-benchmark) for the partition engine that TANE's
// per-level costs are built from: single-attribute partition construction,
// the linear-time partition product, the g3 error scan, the e-based g3
// bound, serialization, and level generation.

#include <benchmark/benchmark.h>

#include "core/partition_store.h"
#include "datasets/generators.h"
#include "lattice/level.h"
#include "partition/error.h"
#include "partition/partition_builder.h"
#include "partition/product.h"
#include "util/logging.h"

namespace tane {
namespace {

Relation MakeRelation(int64_t rows, int cols, int64_t cardinality) {
  StatusOr<Relation> relation =
      GenerateUniform(rows, cols, cardinality, /*seed=*/42);
  TANE_CHECK(relation.ok()) << relation.status().ToString();
  return std::move(relation).value();
}

void BM_BuildAttributePartition(benchmark::State& state) {
  const Relation relation = MakeRelation(state.range(0), 2, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionBuilder::ForAttribute(relation, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildAttributePartition)->Range(1 << 10, 1 << 18);

void BM_PartitionProduct(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const Relation relation = MakeRelation(rows, 2, 16);
  const StrippedPartition a = PartitionBuilder::ForAttribute(relation, 0);
  const StrippedPartition b = PartitionBuilder::ForAttribute(relation, 1);
  PartitionProduct product(rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(product.Multiply(a, b));
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_PartitionProduct)->Range(1 << 10, 1 << 18);

void BM_G3ErrorScan(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const Relation relation = MakeRelation(rows, 2, 16);
  const StrippedPartition lhs = PartitionBuilder::ForAttribute(relation, 0);
  const StrippedPartition joint =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({0, 1}));
  G3Calculator g3(rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g3.RemovalCount(lhs, joint));
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_G3ErrorScan)->Range(1 << 10, 1 << 18);

void BM_G3Bound(benchmark::State& state) {
  const Relation relation = MakeRelation(1 << 14, 2, 16);
  const StrippedPartition lhs = PartitionBuilder::ForAttribute(relation, 0);
  const StrippedPartition joint =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({0, 1}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoundG3RemovalCount(lhs, joint));
  }
}
BENCHMARK(BM_G3Bound);

void BM_SerializePartition(benchmark::State& state) {
  const Relation relation = MakeRelation(state.range(0), 1, 16);
  const StrippedPartition partition =
      PartitionBuilder::ForAttribute(relation, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializePartition(partition));
  }
  state.SetBytesProcessed(state.iterations() * partition.EstimatedBytes());
}
BENCHMARK(BM_SerializePartition)->Range(1 << 12, 1 << 18);

void BM_GenerateNextLevel(benchmark::State& state) {
  // A full pair level over `n` attributes.
  const int n = static_cast<int>(state.range(0));
  std::vector<AttributeSet> level;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      level.push_back(AttributeSet::Of({a, b}));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateNextLevel(level));
  }
}
BENCHMARK(BM_GenerateNextLevel)->Arg(8)->Arg(16)->Arg(32);

void BM_StrippedVsUnstrippedProduct(benchmark::State& state) {
  // Near-unique columns: stripping removes most classes, making products
  // much cheaper than on full partitions.
  const int64_t rows = 1 << 15;
  const bool stripped = state.range(0) != 0;
  const Relation relation = MakeRelation(rows, 2, rows / 2);
  const StrippedPartition a =
      PartitionBuilder::ForAttribute(relation, 0, stripped);
  const StrippedPartition b =
      PartitionBuilder::ForAttribute(relation, 1, stripped);
  PartitionProduct product(rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(product.Multiply(a, b));
  }
}
BENCHMARK(BM_StrippedVsUnstrippedProduct)->Arg(0)->Arg(1);

}  // namespace
}  // namespace tane

// Custom main instead of BENCHMARK_MAIN so the harness-wide --scale/--seed
// flags are accepted (and ignored — microbenchmark sizes are fixed).
int main(int argc, char** argv) {
  std::vector<char*> kept;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0 || arg.rfind("--seed=", 0) == 0) {
      continue;
    }
    kept.push_back(argv[i]);
  }
  int kept_argc = static_cast<int>(kept.size());
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
