// Microbenchmarks (google-benchmark) for the partition engine that TANE's
// per-level costs are built from: single-attribute partition construction,
// the linear-time partition product, the g3 error scan, the e-based g3
// bound, serialization, and level generation.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/partition_store.h"
#include "datasets/generators.h"
#include "datasets/paper_datasets.h"
#include "lattice/level.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "partition/buffer_pool.h"
#include "partition/error.h"
#include "partition/kernels/kernels.h"
#include "partition/partition_builder.h"
#include "partition/product.h"
#include "relation/transforms.h"
#include "util/logging.h"
#include "util/timer.h"

namespace tane {
namespace {

Relation MakeRelation(int64_t rows, int cols, int64_t cardinality) {
  StatusOr<Relation> relation =
      GenerateUniform(rows, cols, cardinality, /*seed=*/42);
  TANE_CHECK(relation.ok()) << relation.status().ToString();
  return std::move(relation).value();
}

void BM_BuildAttributePartition(benchmark::State& state) {
  const Relation relation = MakeRelation(state.range(0), 2, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionBuilder::ForAttribute(relation, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildAttributePartition)->Range(1 << 10, 1 << 18);

void BM_PartitionProduct(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const Relation relation = MakeRelation(rows, 2, 16);
  const StrippedPartition a = PartitionBuilder::ForAttribute(relation, 0);
  const StrippedPartition b = PartitionBuilder::ForAttribute(relation, 1);
  PartitionProduct product(rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(product.Multiply(a, b));
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_PartitionProduct)->Range(1 << 10, 1 << 18);

void BM_G3ErrorScan(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const Relation relation = MakeRelation(rows, 2, 16);
  const StrippedPartition lhs = PartitionBuilder::ForAttribute(relation, 0);
  const StrippedPartition joint =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({0, 1}));
  G3Calculator g3(rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g3.RemovalCount(lhs, joint));
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_G3ErrorScan)->Range(1 << 10, 1 << 18);

void BM_G3Bound(benchmark::State& state) {
  const Relation relation = MakeRelation(1 << 14, 2, 16);
  const StrippedPartition lhs = PartitionBuilder::ForAttribute(relation, 0);
  const StrippedPartition joint =
      PartitionBuilder::ForAttributeSet(relation, AttributeSet::Of({0, 1}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoundG3RemovalCount(lhs, joint));
  }
}
BENCHMARK(BM_G3Bound);

void BM_SerializePartition(benchmark::State& state) {
  const Relation relation = MakeRelation(state.range(0), 1, 16);
  const StrippedPartition partition =
      PartitionBuilder::ForAttribute(relation, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializePartition(partition));
  }
  state.SetBytesProcessed(state.iterations() * partition.EstimatedBytes());
}
BENCHMARK(BM_SerializePartition)->Range(1 << 12, 1 << 18);

void BM_GenerateNextLevel(benchmark::State& state) {
  // A full pair level over `n` attributes.
  const int n = static_cast<int>(state.range(0));
  std::vector<AttributeSet> level;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      level.push_back(AttributeSet::Of({a, b}));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateNextLevel(level));
  }
}
BENCHMARK(BM_GenerateNextLevel)->Arg(8)->Arg(16)->Arg(32);

void BM_StrippedVsUnstrippedProduct(benchmark::State& state) {
  // Near-unique columns: stripping removes most classes, making products
  // much cheaper than on full partitions.
  const int64_t rows = 1 << 15;
  const bool stripped = state.range(0) != 0;
  const Relation relation = MakeRelation(rows, 2, rows / 2);
  const StrippedPartition a =
      PartitionBuilder::ForAttribute(relation, 0, stripped);
  const StrippedPartition b =
      PartitionBuilder::ForAttribute(relation, 1, stripped);
  PartitionProduct product(rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(product.Multiply(a, b));
  }
}
BENCHMARK(BM_StrippedVsUnstrippedProduct)->Arg(0)->Arg(1);

// Product-throughput measurement over the paper's dataset stand-ins,
// written as BENCH_micro_partition.json when --json=PATH is given. Every
// attribute pair's product is computed with a pooled PartitionProduct —
// exactly the steady-state configuration of a discovery run, including the
// left-parent label-reuse token the driver passes — and the
// allocations-per-product counter in the artifact certifies the
// zero-allocation claim. Each dataset is measured twice, best-of-N both
// times: once with no metrics registry attached (the pre-instrumentation
// configuration) and once with the registry wired to the product and pool
// exactly as a discovery run wires it; their ratio (obs_overhead_ratio)
// is what tools/check.sh asserts stays within the 2% overhead budget.
//
// Two throughput figures are emitted per dataset. rows_per_sec divides by
// the member rows Multiply actually walked (TakeRowsScanned: the labeling
// pass when not token-skipped plus the probe pass) — the honest bandwidth
// figure. nominal_rows_per_sec divides by products × relation rows, the
// figure earlier artifacts called rows_per_sec; it overstates throughput by
// the singleton-stripped fraction and by every reused labeling, which is
// how the old artifact claimed an implausible ~400M rows/sec. Both are kept
// so the two accountings stay comparable across artifacts.
int WriteMicroJson(const std::string& path, const std::string& kernel_name) {
  const StatusOr<KernelKind> kind = ParseKernelKind(kernel_name);
  if (!kind.ok()) {
    TANE_LOG(Error) << "--kernel: " << kind.status().ToString();
    return 1;
  }
  const KernelOps* const kernel = ResolveKernel(*kind);
  constexpr int64_t kRows = 5000;
  constexpr int kMeasureReps = 5;

  struct MicroDataset {
    std::string name;
    Relation relation;
    int repeats;
  };
  std::vector<MicroDataset> datasets;
  for (PaperDataset dataset :
       {PaperDataset::kLymphography, PaperDataset::kHepatitis,
        PaperDataset::kWisconsinBreastCancer}) {
    const PaperDatasetInfo& info = GetPaperDatasetInfo(dataset);
    StatusOr<Relation> relation = MakePaperDataset(dataset, kRows);
    TANE_CHECK(relation.ok()) << relation.status().ToString();
    datasets.push_back(
        {std::string(info.name), std::move(relation).value(), /*repeats=*/100});
  }
  {
    // The paper's ×n row-scaling construction (Figure 4): 20 suffixed
    // copies of the Hepatitis stand-in give a 100k-row relation whose probe
    // table outgrows the cache — the regime the prefetched/radix paths
    // exist for. Fewer repeats bound the wall time; each sweep already
    // walks ~40M member rows.
    StatusOr<Relation> base = MakePaperDataset(PaperDataset::kHepatitis, kRows);
    TANE_CHECK(base.ok()) << base.status().ToString();
    StatusOr<Relation> scaled = ConcatenateCopies(*base, /*copies=*/20);
    TANE_CHECK(scaled.ok()) << scaled.status().ToString();
    datasets.push_back(
        {"Hepatitis x20", std::move(scaled).value(), /*repeats=*/10});
  }

  bench::JsonWriter json;
  json.BeginObject();
  json.Key("benchmark").Value("micro_partition");
  json.Key("kernel").Value(kernel->name);
  json.Key("datasets").BeginArray();
  for (const MicroDataset& micro : datasets) {
    const Relation& relation = micro.relation;

    std::vector<StrippedPartition> partitions;
    for (int attribute = 0; attribute < relation.num_columns(); ++attribute) {
      partitions.push_back(PartitionBuilder::ForAttribute(relation, attribute));
    }

    PartitionBufferPool pool(/*num_slots=*/1);
    PartitionProduct product(relation.num_rows());
    product.set_buffer_pool(&pool, 0);
    product.set_kernel(kernel);
    // One sweep of every attribute pair; results recycle into the pool so
    // later products reuse their buffers, as discovery runs do via the
    // partition store. The left operand's token (i + 1, mirroring the
    // driver's store-handle + 1) lets the inner loop skip re-labeling the
    // shared left parent, again as discovery runs do on sorted candidate
    // lists.
    const auto sweep = [&]() -> int64_t {
      int64_t products = 0;
      for (size_t i = 0; i < partitions.size(); ++i) {
        for (size_t j = i + 1; j < partitions.size(); ++j) {
          StatusOr<StrippedPartition> result = product.Multiply(
              partitions[i], partitions[j], static_cast<uint64_t>(i) + 1);
          TANE_CHECK(result.ok()) << result.status().ToString();
          pool.Recycle(std::move(result).value());
          ++products;
        }
      }
      return products;
    };

    // Warm the pool and scratch until capacities converge (pooled buffer
    // capacities only grow, so a sweep with zero allocations stays at zero).
    for (int attempt = 0; attempt < 5; ++attempt) {
      sweep();
      if (product.TakeAllocations() == 0) break;
    }

    // Interleaved baseline/instrumented measurement pairs, best-of-
    // kMeasureReps each: alternating the configurations exposes both to the
    // same frequency and scheduler drift, and the min discards the noise,
    // so the overhead ratio compares steady-state floors.
    obs::MetricsRegistry registry(/*num_shards=*/1);
    int64_t products = 0;
    int64_t rows_scanned = 0;
    int64_t allocations = 0;
    double seconds = 0.0;
    double instrumented_seconds = 0.0;
    const auto timed_sweeps = [&]() -> double {
      product.TakeRowsScanned();
      WallTimer timer;
      int64_t swept = 0;
      for (int repeat = 0; repeat < micro.repeats; ++repeat) swept += sweep();
      const double elapsed = timer.ElapsedSeconds();
      products = swept;
      // Identical every repeat (same sweep, same token schedule), so the
      // last capture is the per-measurement figure.
      rows_scanned = product.TakeRowsScanned();
      return elapsed;
    };
    for (int rep = 0; rep < kMeasureReps; ++rep) {
      product.set_metrics(nullptr, 0);
      pool.set_metrics(nullptr);
      const double base = timed_sweeps();
      allocations += product.TakeAllocations();

      product.set_metrics(&registry, /*shard=*/0);
      pool.set_metrics(&registry);
      const double instrumented = timed_sweeps();
      product.TakeAllocations();  // already counted on the registry

      if (rep == 0 || base < seconds) seconds = base;
      if (rep == 0 || instrumented < instrumented_seconds) {
        instrumented_seconds = instrumented;
      }
    }
    product.set_metrics(nullptr, 0);
    pool.set_metrics(nullptr);

    const double nominal_rows =
        static_cast<double>(products) * static_cast<double>(relation.num_rows());

    json.BeginObject();
    json.Key("name").Value(micro.name);
    json.Key("rows").Value(relation.num_rows());
    json.Key("columns").Value(relation.num_columns());
    json.Key("kernel").Value(kernel->name);
    json.Key("products").Value(products);
    json.Key("seconds").Value(seconds);
    json.Key("products_per_sec")
        .Value(seconds > 0 ? static_cast<double>(products) / seconds : 0.0);
    json.Key("rows_scanned").Value(rows_scanned);
    json.Key("rows_per_sec")
        .Value(seconds > 0 ? static_cast<double>(rows_scanned) / seconds
                           : 0.0);
    json.Key("nominal_rows_per_sec")
        .Value(seconds > 0 ? nominal_rows / seconds : 0.0);
    json.Key("steady_state_allocations").Value(allocations);
    json.Key("allocations_per_product")
        .Value(products > 0
                   ? static_cast<double>(allocations) /
                         static_cast<double>(products * kMeasureReps)
                   : 0.0);
    json.Key("instrumented_seconds").Value(instrumented_seconds);
    json.Key("obs_overhead_ratio")
        .Value(seconds > 0 ? instrumented_seconds / seconds : 1.0);
    json.Key("metrics");
    const obs::MetricsSnapshot snapshot = registry.Snapshot();
    obs::WriteMetricsObject(snapshot, &json);
    json.Key("histograms");
    obs::WriteHistogramsObject(snapshot, &json);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.WriteFile(path) ? 0 : 1;
}

}  // namespace
}  // namespace tane

// Custom main instead of BENCHMARK_MAIN so the harness-wide
// --scale/--seed/--json flags are accepted (sizes are fixed; --json selects
// the machine-readable product-throughput measurement, --kernel pins the
// dispatch kernel it measures).
int main(int argc, char** argv) {
  std::string json_path;
  std::string kernel_name = "auto";
  std::vector<char*> kept;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0 || arg.rfind("--seed=", 0) == 0) {
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
      continue;
    }
    if (arg.rfind("--kernel=", 0) == 0) {
      kernel_name = std::string(arg.substr(9));
      continue;
    }
    kept.push_back(argv[i]);
  }
  int kept_argc = static_cast<int>(kept.size());
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) return tane::WriteMicroJson(json_path, kernel_name);
  return 0;
}
