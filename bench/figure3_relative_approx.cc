// Reproduces Figure 3 of the TANE paper: for the Hepatitis, Wisconsin
// breast cancer, and Chess datasets, plot (as text series) the number of
// approximate dependencies and the discovery time relative to the exact
// case — N(ε)/N(0) and Time(ε)/Time(0) — over a sweep of thresholds.
//
// Usage: figure3_relative_approx [--scale=quick|full] [--seed=N]

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "datasets/paper_datasets.h"

namespace tane {
namespace bench {
namespace {

constexpr double kEpsilons[] = {0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5};

int Main(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PrintBanner(
      "Figure 3: relative N and time for approximate dependencies "
      "(TANE/MEM)",
      options);

  const std::vector<std::pair<std::string, PaperDataset>> datasets = {
      {"Hepatitis", PaperDataset::kHepatitis},
      {"W. breast cancer", PaperDataset::kWisconsinBreastCancer},
      {"Chess", PaperDataset::kChess},
  };

  for (const auto& [label, dataset] : datasets) {
    StatusOr<Relation> relation = MakePaperDataset(dataset, 0, options.seed);
    if (!relation.ok()) {
      std::fprintf(stderr, "%s\n", relation.status().ToString().c_str());
      return 1;
    }

    std::printf("--- %s (%lld rows, %d cols) ---\n", label.c_str(),
                static_cast<long long>(relation->num_rows()),
                relation->num_columns());
    std::printf("%8s %9s %10s %12s %14s\n", "eps", "N", "time(s)",
                "N(eps)/N(0)", "T(eps)/T(0)");

    double n0 = 0.0, t0 = 0.0;
    for (double epsilon : kEpsilons) {
      TaneConfig config;
      config.epsilon = epsilon;
      const Cell cell = RunTane(*relation, config);
      const double seconds = cell.seconds.value_or(0.0);
      if (epsilon == 0.0) {
        n0 = static_cast<double>(cell.num_fds);
        t0 = seconds;
      }
      std::printf("%8.3f %9lld %10.4f %12.3f %14.3f\n", epsilon,
                  static_cast<long long>(cell.num_fds), seconds,
                  n0 > 0 ? cell.num_fds / n0 : 0.0,
                  t0 > 0 ? seconds / t0 : 0.0);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape (paper): Hepatitis-like data shows a sharp time drop\n"
      "with growing ε; breast-cancer-like data is roughly flat then drops;\n"
      "Chess-like data (a single key FD) grows slightly before dropping.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tane

int main(int argc, char** argv) { return tane::bench::Main(argc, argv); }
