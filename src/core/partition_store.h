#ifndef TANE_CORE_PARTITION_STORE_H_
#define TANE_CORE_PARTITION_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "partition/stripped_partition.h"
#include "util/status.h"

namespace tane {

/// Storage abstraction for level partitions. TANE proper (the scalable
/// version, §6) keeps partitions on disk and reads them back level by
/// level; TANE/MEM keeps them in RAM. The driver is written against this
/// interface so both variants share one code path.
class PartitionStore {
 public:
  virtual ~PartitionStore() = default;

  /// Stores a partition and returns its handle.
  virtual StatusOr<int64_t> Put(const StrippedPartition& partition) = 0;

  /// Retrieves a stored partition. The handle stays valid until Release.
  virtual StatusOr<StrippedPartition> Get(int64_t handle) = 0;

  /// Frees the resources behind `handle`. Releasing twice is an error.
  virtual Status Release(int64_t handle) = 0;

  /// Borrowing accessor: returns a pointer to the resident partition when
  /// the store can serve one without I/O or copying, else nullptr (callers
  /// then fall back to Get). The pointer is invalidated by Put/Release.
  virtual const StrippedPartition* Peek(int64_t handle) const {
    (void)handle;
    return nullptr;
  }

  /// Bytes currently resident in main memory on behalf of the store.
  virtual int64_t resident_bytes() const = 0;

  /// Total bytes ever written to secondary storage (0 for memory stores).
  virtual int64_t bytes_written() const = 0;
};

/// Keeps every partition in main memory (the TANE/MEM configuration).
class MemoryPartitionStore : public PartitionStore {
 public:
  MemoryPartitionStore() = default;

  StatusOr<int64_t> Put(const StrippedPartition& partition) override;
  StatusOr<StrippedPartition> Get(int64_t handle) override;
  Status Release(int64_t handle) override;
  const StrippedPartition* Peek(int64_t handle) const override;
  int64_t resident_bytes() const override { return resident_bytes_; }
  int64_t bytes_written() const override { return 0; }

 private:
  std::unordered_map<int64_t, StrippedPartition> partitions_;
  int64_t next_handle_ = 0;
  int64_t resident_bytes_ = 0;
};

/// Spills partitions to append-only segment files under a directory (the
/// scalable TANE configuration). Each Put is one sequential write of size
/// O(|r|) and each Get one positioned read, matching the paper's cost model
/// of O(s) disk accesses of size O(|r|). Segments whose partitions have all
/// been released are unlinked, so — because TANE releases whole levels —
/// disk usage tracks the two live levels (O(s_max·|r|)) rather than the
/// total spill volume.
class DiskPartitionStore : public PartitionStore {
 public:
  /// Opens a store rooted at `directory`; if empty, creates a fresh
  /// directory under the system temp dir. A directory created by the store
  /// (including a named one that did not yet exist) is deleted on
  /// destruction together with any remaining segment files.
  static StatusOr<std::unique_ptr<DiskPartitionStore>> Open(
      std::string directory = "");

  ~DiskPartitionStore() override;

  DiskPartitionStore(const DiskPartitionStore&) = delete;
  DiskPartitionStore& operator=(const DiskPartitionStore&) = delete;

  StatusOr<int64_t> Put(const StrippedPartition& partition) override;
  StatusOr<StrippedPartition> Get(int64_t handle) override;
  Status Release(int64_t handle) override;
  int64_t resident_bytes() const override { return 0; }
  int64_t bytes_written() const override { return bytes_written_; }

  const std::string& directory() const { return directory_; }

  /// Bytes currently occupied by live (non-unlinked) segments.
  int64_t disk_bytes() const;

 private:
  // A segment rotates once it exceeds this many bytes.
  static constexpr int64_t kSegmentBytes = 32 << 20;

  struct Entry {
    int32_t segment = -1;
    int64_t offset = 0;
    int64_t size = 0;
  };
  struct Segment {
    int fd = -1;
    int64_t live_partitions = 0;
    int64_t bytes = 0;
    bool sealed = false;
  };

  DiskPartitionStore(std::string directory, bool owns_directory)
      : directory_(std::move(directory)), owns_directory_(owns_directory) {}

  std::string SegmentPath(int32_t segment) const;
  Status OpenNewSegment();
  void DropSegmentIfDead(int32_t segment);

  std::string directory_;
  bool owns_directory_ = false;
  std::unordered_map<int64_t, Entry> entries_;
  std::vector<Segment> segments_;
  int64_t next_handle_ = 0;
  int64_t bytes_written_ = 0;
};

/// Serializes `partition` into a compact binary image (used by the disk
/// store and directly testable).
std::string SerializePartition(const StrippedPartition& partition);

/// Inverse of SerializePartition; validates the header and array sizes.
StatusOr<StrippedPartition> DeserializePartition(std::string_view bytes);

}  // namespace tane

#endif  // TANE_CORE_PARTITION_STORE_H_
