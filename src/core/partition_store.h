#ifndef TANE_CORE_PARTITION_STORE_H_
#define TANE_CORE_PARTITION_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "partition/buffer_pool.h"
#include "partition/stripped_partition.h"
#include "util/mutex.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace tane {

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

/// Storage abstraction for level partitions. TANE proper (the scalable
/// version, §6) keeps partitions on disk and reads them back level by
/// level; TANE/MEM keeps them in RAM. The driver is written against this
/// interface so both variants share one code path.
///
/// Thread-safety: every implementation below guards its state with
/// reader-writer locking (the memory store stripes it by handle), so the
/// read path (Get/Peek, the parallel level executor's Acquire traffic)
/// proceeds concurrently across workers while Put/Release serialize per
/// stripe. A pointer returned by Peek stays valid across concurrent Puts
/// of *other* handles inside a task window (see BeginTaskWindow); only
/// Release of the peeked handle — or a store migration at a window
/// boundary — invalidates it.
class PartitionStore {
 public:
  virtual ~PartitionStore() = default;

  /// Stores a partition and returns its handle. Takes the partition by
  /// value so hot callers can move products straight into the store without
  /// a copy.
  virtual StatusOr<int64_t> Put(StrippedPartition partition) = 0;

  /// Retrieves a stored partition. The handle stays valid until Release.
  virtual StatusOr<StrippedPartition> Get(int64_t handle) = 0;

  /// Frees the resources behind `handle`. Releasing twice is an error.
  virtual Status Release(int64_t handle) = 0;

  /// Attaches a buffer pool: stores that hold partition buffers recycle
  /// them into `pool` on Release (and on any Put that discards its
  /// argument), closing the allocation loop with PartitionProduct. The pool
  /// must outlive the store; nullptr detaches. Default: no recycling.
  virtual void set_buffer_pool(PartitionBufferPool* pool) { (void)pool; }

  /// Attaches the run's metrics registry: stores that perform spill I/O
  /// count their records and bytes on the registry's shared lane
  /// (kSpillWrites/kSpillReads/kSpillBytes*; kDegradedToDisk for the kAuto
  /// migration). Not owned; nullptr detaches. Default: ignored.
  virtual void set_metrics(obs::MetricsRegistry* metrics) { (void)metrics; }

  /// Attaches a tracer so stores can mark rare, expensive transitions —
  /// today only the kAuto mid-run spill migration, emitted as a "spill"
  /// span. Not owned; nullptr detaches. Default: ignored.
  virtual void set_tracer(obs::Tracer* tracer) { (void)tracer; }

  /// Borrowing accessor: returns a pointer to the resident partition when
  /// the store can serve one without I/O or copying, else nullptr (callers
  /// then fall back to Get). The pointer is invalidated by Release of this
  /// handle or by a window-boundary migration; inside a task window it
  /// survives concurrent Puts of other handles.
  virtual const StrippedPartition* Peek(int64_t handle) const {
    (void)handle;
    return nullptr;
  }

  /// Brackets a parallel task window. Between BeginTaskWindow and
  /// EndTaskWindow the driver's workers hold Peek borrows while other
  /// threads Put, so implementations must not relocate or evict resident
  /// partitions mid-window — the kAuto store defers its memory-to-disk
  /// spill migration to EndTaskWindow. The driver guarantees no Release
  /// happens inside a window. Defaults are no-ops for stores that never
  /// relocate resident data.
  virtual void BeginTaskWindow() {}
  virtual Status EndTaskWindow() { return Status::OK(); }

  /// Bytes currently resident in main memory on behalf of the store.
  virtual int64_t resident_bytes() const = 0;

  /// Total bytes ever written to secondary storage (0 for memory stores).
  virtual int64_t bytes_written() const = 0;
};

/// Keeps every partition in main memory (the TANE/MEM configuration).
///
/// The map is striped by handle across kStripes independent reader-writer
/// locks, so a Put committing on one stripe never blocks worker Peek/Get
/// traffic on the other stripes — the lock that used to serialize the
/// whole store under the parallel executor's commit path. Handles come
/// from a single atomic counter, so assignment order (and therefore every
/// handle value) is decided purely by the order Put is called in, which
/// the driver keeps deterministic via its commit frontier.
class MemoryPartitionStore : public PartitionStore {
 public:
  MemoryPartitionStore() = default;

  StatusOr<int64_t> Put(StrippedPartition partition) override;
  StatusOr<StrippedPartition> Get(int64_t handle) override;
  Status Release(int64_t handle) override;
  const StrippedPartition* Peek(int64_t handle) const override;
  int64_t resident_bytes() const override;
  int64_t bytes_written() const override { return 0; }
  void set_buffer_pool(PartitionBufferPool* pool) override {
    pool_.store(pool, std::memory_order_release);
  }

 private:
  static constexpr int kStripes = 8;  // power of two: stripe = handle & 7

  struct Stripe {
    mutable SharedMutex mu;
    std::unordered_map<int64_t, StrippedPartition> partitions
        TANE_GUARDED_BY(mu);
    int64_t resident_bytes TANE_GUARDED_BY(mu) = 0;
  };

  Stripe stripes_[kStripes];
  // Set-once publication pointer and a monotonic id counter: each cell's
  // explicit orders are its whole contract. tane-lint: allow(naked-atomic)
  std::atomic<PartitionBufferPool*> pool_{nullptr};
  // tane-lint: allow(naked-atomic)
  std::atomic<int64_t> next_handle_{0};
};

/// Spills partitions to append-only segment files under a directory (the
/// scalable TANE configuration). Each Put is one sequential write of size
/// O(|r|) and each Get one positioned read, matching the paper's cost model
/// of O(s) disk accesses of size O(|r|). Segments whose partitions have all
/// been released are unlinked, so — because TANE releases whole levels —
/// disk usage tracks the two live levels (O(s_max·|r|)) rather than the
/// total spill volume.
///
/// Spill I/O is hardened: every record carries a CRC32 of its payload,
/// validated on read before deserialization; writes and reads loop over
/// short transfers and EINTR; transient kIoError failures are retried with
/// capped exponential backoff (see util/retry.h) before surfacing, and
/// surfaced errors name the segment path. A write that fails permanently
/// unlinks the segment when it holds no other live partitions, or truncates
/// the partial record away otherwise, so failed runs leave no torn segment
/// files behind. Put/Get are instrumented with the "disk_store.put",
/// "disk_store.get", and "disk_store.open_segment" failpoints
/// (util/failpoint.h) for fault-injection tests.
class DiskPartitionStore : public PartitionStore {
 public:
  /// Opens a store rooted at `directory`; if empty, creates a fresh
  /// directory under the system temp dir. A directory created by the store
  /// (including a named one that did not yet exist) is deleted on
  /// destruction together with any remaining segment files.
  static StatusOr<std::unique_ptr<DiskPartitionStore>> Open(
      std::string directory = "");

  ~DiskPartitionStore() override;

  DiskPartitionStore(const DiskPartitionStore&) = delete;
  DiskPartitionStore& operator=(const DiskPartitionStore&) = delete;

  StatusOr<int64_t> Put(StrippedPartition partition) override;
  StatusOr<StrippedPartition> Get(int64_t handle) override;
  Status Release(int64_t handle) override;
  void set_buffer_pool(PartitionBufferPool* pool) override {
    WriterMutexLock lock(&mu_);
    pool_ = pool;
  }
  void set_metrics(obs::MetricsRegistry* metrics) override {
    WriterMutexLock lock(&mu_);
    metrics_ = metrics;
  }
  int64_t resident_bytes() const override { return 0; }
  int64_t bytes_written() const override {
    ReaderMutexLock lock(&mu_);
    return bytes_written_;
  }

  const std::string& directory() const { return directory_; }

  /// Bytes currently occupied by live (non-unlinked) segments.
  int64_t disk_bytes() const;

  /// Overrides the backoff policy used for transient spill-I/O retries
  /// (tests install a counting sleep hook; production keeps the default).
  void set_retry_policy(RetryPolicy policy) {
    retry_policy_ = std::move(policy);
  }

 private:
  // A segment rotates once it exceeds this many bytes.
  static constexpr int64_t kSegmentBytes = 32 << 20;

  struct Entry {
    int32_t segment = -1;
    int64_t offset = 0;
    int64_t size = 0;
  };
  struct Segment {
    int fd = -1;
    int64_t live_partitions = 0;
    int64_t bytes = 0;
    bool sealed = false;
  };

  DiskPartitionStore(std::string directory, bool owns_directory)
      : directory_(std::move(directory)), owns_directory_(owns_directory) {}

  std::string SegmentPath(int32_t segment) const;
  Status OpenNewSegment() TANE_REQUIRES(mu_);
  void DropSegmentIfDead(int32_t segment) TANE_REQUIRES(mu_);
  // One write/read attempt of a whole record at a fixed offset, looping
  // over short transfers and EINTR; retried by Put/Get on transient errors.
  Status WriteRecordOnce(int fd, std::string_view record, int64_t offset);
  Status ReadRecordOnce(int fd, char* buffer, int64_t size, int64_t offset);
  // Removes the partial record a permanently failed write left behind:
  // unlinks the segment when nothing else lives in it, else truncates it
  // back to its last durable byte.
  void CleanupFailedWrite(int32_t segment) TANE_REQUIRES(mu_);

  mutable SharedMutex mu_;
  // Immutable after Open(); readable without the lock.
  std::string directory_;
  bool owns_directory_ = false;
  std::unordered_map<int64_t, Entry> entries_ TANE_GUARDED_BY(mu_);
  std::vector<Segment> segments_ TANE_GUARDED_BY(mu_);
  PartitionBufferPool* pool_ TANE_GUARDED_BY(mu_) = nullptr;
  obs::MetricsRegistry* metrics_ TANE_GUARDED_BY(mu_) = nullptr;
  int64_t next_handle_ TANE_GUARDED_BY(mu_) = 0;
  int64_t bytes_written_ TANE_GUARDED_BY(mu_) = 0;
  // Installed before the store sees concurrent traffic (test-only setter).
  RetryPolicy retry_policy_;
};

/// Starts in memory (TANE/MEM speed) and, the first time resident bytes
/// exceed `budget_bytes`, transparently migrates every live partition into
/// a DiskPartitionStore and serves all later traffic from disk — the
/// StorageMode::kAuto graceful-degradation policy. Handles issued before
/// the migration remain valid throughout. With budget_bytes <= 0 the store
/// never spills and is equivalent to MemoryPartitionStore.
///
/// Inside a task window (BeginTaskWindow/EndTaskWindow) a budget breach
/// does not migrate immediately — workers hold Peek borrows into the
/// memory store that a migration would free — it is recorded and performed
/// at EndTaskWindow, after the driver's quiesce point.
class AutoPartitionStore : public PartitionStore {
 public:
  AutoPartitionStore(int64_t budget_bytes, std::string spill_directory)
      : budget_bytes_(budget_bytes),
        spill_directory_(std::move(spill_directory)) {}

  StatusOr<int64_t> Put(StrippedPartition partition) override;
  StatusOr<StrippedPartition> Get(int64_t handle) override;
  Status Release(int64_t handle) override;
  const StrippedPartition* Peek(int64_t handle) const override;
  void BeginTaskWindow() override;
  Status EndTaskWindow() override;
  void set_buffer_pool(PartitionBufferPool* pool) override {
    WriterMutexLock lock(&mu_);
    memory_.set_buffer_pool(pool);
    pool_ = pool;
    if (disk_ != nullptr) disk_->set_buffer_pool(pool);
  }
  void set_metrics(obs::MetricsRegistry* metrics) override {
    WriterMutexLock lock(&mu_);
    metrics_ = metrics;
    if (disk_ != nullptr) disk_->set_metrics(metrics);
  }
  void set_tracer(obs::Tracer* tracer) override {
    WriterMutexLock lock(&mu_);
    tracer_ = tracer;
  }
  int64_t resident_bytes() const override {
    ReaderMutexLock lock(&mu_);
    return disk_ == nullptr ? memory_.resident_bytes() : 0;
  }
  int64_t bytes_written() const override {
    ReaderMutexLock lock(&mu_);
    return disk_ == nullptr ? 0 : disk_->bytes_written();
  }

  /// True once the memory budget was breached and the store moved to disk.
  bool spilled() const {
    ReaderMutexLock lock(&mu_);
    return disk_ != nullptr;
  }

 private:
  Status SpillToDisk() TANE_REQUIRES(mu_);

  mutable SharedMutex mu_;
  int64_t budget_bytes_;  // immutable after construction
  const std::string spill_directory_;
  // The inner stores guard their own state; mu_ guards which one is active
  // (disk_ null vs. not) and the handle indirection around them.
  MemoryPartitionStore memory_;
  std::unique_ptr<DiskPartitionStore> disk_ TANE_GUARDED_BY(mu_);
  PartitionBufferPool* pool_ TANE_GUARDED_BY(mu_) = nullptr;
  obs::MetricsRegistry* metrics_ TANE_GUARDED_BY(mu_) = nullptr;
  obs::Tracer* tracer_ TANE_GUARDED_BY(mu_) = nullptr;
  // This store's handle -> the active inner store's handle; every entry is
  // rewritten in place when the store migrates to disk.
  std::unordered_map<int64_t, int64_t> inner_handles_ TANE_GUARDED_BY(mu_);
  int64_t next_handle_ TANE_GUARDED_BY(mu_) = 0;
  // True between BeginTaskWindow and EndTaskWindow: spills are deferred.
  bool in_window_ TANE_GUARDED_BY(mu_) = false;
  // A budget breach happened mid-window; EndTaskWindow performs the spill.
  bool pending_spill_ TANE_GUARDED_BY(mu_) = false;
};

/// Serializes `partition` into a compact binary image (used by the disk
/// store and directly testable).
std::string SerializePartition(const StrippedPartition& partition);

/// Inverse of SerializePartition; validates the header and array sizes.
StatusOr<StrippedPartition> DeserializePartition(std::string_view bytes);

}  // namespace tane

#endif  // TANE_CORE_PARTITION_STORE_H_
