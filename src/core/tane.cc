#include "core/tane.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <list>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/partition_store.h"
#include "core/pli_cache.h"
#include "core/run_snapshot.h"
#include "lattice/level.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "partition/buffer_pool.h"
#include "partition/error.h"
#include "partition/partition_builder.h"
#include "partition/product.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tane {
namespace {

// For cleanup paths where an earlier error must keep precedence: the
// secondary failure is logged, never silently dropped (Status is
// [[nodiscard]]; this is the sanctioned way to sideline one).
void LogIgnoredStatus(const Status& status, const char* context) {
  if (!status.ok()) {
    TANE_LOG(Warning) << context << " failed during error unwind: "
                      << status.ToString();
  }
}

// One attribute set of the current level, with its rhs⁺ candidates C⁺(X),
// the partition error e(X), and the handle of π_X in the partition store.
struct Node {
  AttributeSet set;
  AttributeSet cplus;
  int64_t error = 0;
  int64_t handle = -1;
  bool deleted = false;
};

// Serves partitions by handle, borrowing from the store when it is
// memory-backed and maintaining a small LRU of deserialized partitions when
// it is disk-backed. Pointers stay valid for at least the `capacity - 1`
// following Acquire calls, which suffices for the two-operand uses here.
// Not thread-safe; the parallel executor keeps one accessor per worker.
class PartitionAccessor {
 public:
  PartitionAccessor(PartitionStore* store, size_t capacity)
      : store_(store), capacity_(capacity) {}

  StatusOr<const StrippedPartition*> Acquire(int64_t handle) {
    if (const StrippedPartition* borrowed = store_->Peek(handle)) {
      return borrowed;
    }
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->first == handle) {
        cache_.splice(cache_.begin(), cache_, it);
        return &cache_.front().second;
      }
    }
    TANE_ASSIGN_OR_RETURN(StrippedPartition partition, store_->Get(handle));
    cache_.emplace_front(handle, std::move(partition));
    while (cache_.size() > capacity_) cache_.pop_back();
    return &cache_.front().second;
  }

  // Drops cached copies (e.g. after their handles are released).
  void Clear() { cache_.clear(); }

  int64_t cache_bytes() const {
    int64_t total = 0;
    for (const auto& [handle, partition] : cache_) {
      total += partition.EstimatedBytes();
    }
    return total;
  }

 private:
  PartitionStore* store_;
  size_t capacity_;
  std::list<std::pair<int64_t, StrippedPartition>> cache_;
};

// Scratch state owned by one worker thread. The G3Calculator and
// PartitionProduct probe tables are O(|r|) and mutated on every call, so
// they can never be shared between workers; the accessor keeps per-worker
// LRU copies when the store is disk-backed. Work counters go straight to
// the run's MetricsRegistry on this worker's shard — single-writer relaxed
// stores, so the hot loops stay free of shared atomics while the progress
// monitor can still read exact totals at any moment.
struct WorkerState {
  WorkerState(PartitionStore* store, int64_t num_rows, int shard)
      : accessor(store, /*capacity=*/8),
        g3(num_rows),
        product(num_rows),
        shard(shard) {}

  PartitionAccessor accessor;
  G3Calculator g3;
  PartitionProduct product;

  // This worker's shard index in the run's MetricsRegistry.
  int shard = 0;
  int64_t stop_poll_tick = 0;
};

// A dependency discovered while testing one node: X\{attribute} → attribute
// with the given error. Recorded per node and merged in node order so the
// output is identical for every thread count.
struct Emission {
  int attribute = -1;
  double error = 0.0;
};

// Everything a worker produced for one node of the level.
struct NodeOutcome {
  Status status = Status::OK();
  AttributeSet cplus_after;
  std::vector<Emission> emissions;
  // False when a cooperative stop fired before the node was picked up; such
  // nodes contribute nothing to the (prefix-correct) partial result.
  bool processed = false;
};

class TaneRun {
 public:
  /// `resume_snapshot` (optional, not owned, pre-validated by Discover)
  /// restores the run to its checkpointed level boundary before the
  /// levelwise loop continues.
  TaneRun(const Relation& relation, const TaneConfig& config,
          std::unique_ptr<PartitionStore> store,
          const RunSnapshot* resume_snapshot)
      : relation_(relation),
        resume_snapshot_(resume_snapshot),
        config_(config),
        controller_(config.run_controller),
        store_(std::move(store)),
        num_rows_(relation.num_rows()),
        max_removals_(IntegerThreshold(
            config.epsilon, static_cast<double>(relation.num_rows()))),
        max_pairs_(IntegerThreshold(
            config.epsilon, static_cast<double>(relation.num_rows()) *
                                static_cast<double>(relation.num_rows()))),
        pool_(config.num_threads),
        buffer_pool_(config.num_threads),
        metrics_(config.num_threads),
        tracer_(config.tracer) {
    // Close the allocation loop: the store recycles released partition
    // buffers into the pool, and each worker's product scratch acquires
    // from its own slot (lock-free off the refill path).
    store_->set_buffer_pool(&buffer_pool_);
    store_->set_metrics(&metrics_);
    store_->set_tracer(tracer_);
    buffer_pool_.set_metrics(&metrics_);
    workers_.reserve(config.num_threads);
    for (int worker = 0; worker < config.num_threads; ++worker) {
      workers_.push_back(
          std::make_unique<WorkerState>(store_.get(), num_rows_, worker));
      workers_.back()->product.set_buffer_pool(&buffer_pool_, worker);
      workers_.back()->product.set_metrics(&metrics_, worker);
    }
    if (tracer_ != nullptr) {
      // Per-worker drain slices nest under whichever phase span encloses
      // the parallel region (worker 0 is the coordinator thread, so its
      // slice shares tid 0 with the phase spans). Emit is thread-safe.
      pool_.set_slice_hook([this](const ParallelForSlice& slice) {
        obs::TraceEvent event;
        event.name = "slice";
        event.tid = slice.worker;
        event.start_us = tracer_->ToUs(slice.start);
        event.dur_us =
            std::chrono::duration<double, std::micro>(slice.end - slice.start)
                .count();
        event.args.emplace_back("items", slice.items);
        tracer_->Emit(std::move(event));
      });
    }
  }

  Status Run(DiscoveryResult* result);

 private:
  // COMPUTE-DEPENDENCIES(L_ℓ), paper §5. Nodes are tested in parallel;
  // emissions are merged in node order afterwards.
  Status ComputeDependencies(int level_number, std::vector<Node>* level,
                             const std::vector<Node>* prev,
                             const LevelIndex* prev_index,
                             DiscoveryResult* result, LevelParallelStats* lp);

  // The per-node half of COMPUTE-DEPENDENCIES (lines 3-8): runs every
  // validity test of `node` and collects emissions plus the final C⁺ into
  // `out` without touching shared state. Safe to call concurrently for
  // distinct nodes. The C⁺ updates of lines 7-8 commute (set differences
  // and intersections), so applying them against a snapshot here and
  // merging later reproduces the serial result exactly.
  Status ProcessNode(int level_number, const Node& node,
                     const std::vector<Node>* prev,
                     const LevelIndex* prev_index, WorkerState* w,
                     NodeOutcome* out);

  // PRUNE(L_ℓ), paper §5. Marks nodes deleted and emits key dependencies.
  Status Prune(int level_number, std::vector<Node>* level,
               DiscoveryResult* result);

  // GENERATE-NEXT-LEVEL partition computation for one candidate.
  StatusOr<StrippedPartition> BuildCandidatePartition(
      WorkerState* w, const LevelCandidate& candidate,
      const std::vector<Node>& survivors);

  // Tests X\{A} → A given e(X\{A}), handles for both partitions, and e(X).
  // Sets *valid and *error (the error value to report when valid).
  Status TestValidity(WorkerState* w, int64_t prev_error, int64_t prev_handle,
                      const Node& node, bool* valid, double* error,
                      bool* exact_holds);

  // The boundary-to-boundary advance after PRUNE of `level_number`:
  // checkpointing, the suspend/stop decision, and GENERATE-NEXT-LEVEL.
  // Returns true when the run should continue with `current` holding the
  // next level (prev/prev_index updated), false when it wound down (all
  // handles released; the caller exits the loop). Shared by the level loop
  // and the resume prologue, which is what lets a restored run re-enter
  // the lattice mid-flight through the exact same code path.
  StatusOr<bool> AdvanceLevel(int level_number, std::vector<Node>* survivors,
                              std::vector<Node>* prev, LevelIndex* prev_index,
                              std::vector<Node>* current,
                              DiscoveryResult* result);

  // Serializes the current run state (survivors of `level_number`, post-
  // PRUNE) into a durable snapshot under config_.checkpoint_directory.
  Status WriteCheckpoint(int level_number, const std::vector<Node>& survivors,
                         DiscoveryResult* result);

  // WriteCheckpoint unless the latest durable snapshot already covers
  // `level_number` (per-level checkpointing got there first, or the run
  // resumed from it and made no progress).
  Status MaybeWindDownCheckpoint(int level_number,
                                 const std::vector<Node>& survivors,
                                 DiscoveryResult* result) {
    if (!checkpointing() || last_checkpoint_level_ >= level_number) {
      return Status::OK();
    }
    return WriteCheckpoint(level_number, survivors, result);
  }

  // Rehydrates the run from `snapshot`: dependencies and keys replayed in
  // emission order (rebuilding every pruning index), carried counters
  // restored, survivor partitions re-Put through the store chain.
  Status RestoreFromSnapshot(const RunSnapshot& snapshot,
                             DiscoveryResult* result,
                             std::vector<Node>* survivors);

  bool checkpointing() const { return !config_.checkpoint_directory.empty(); }

  Status ReleaseHandles(std::vector<Node>* nodes);
  void SamplePeakMemory();

  int64_t AccessorCacheBytes() const {
    int64_t total = 0;
    for (const auto& worker : workers_) total += worker->accessor.cache_bytes();
    return total;
  }

  // Bytes retained outside the store: pooled freelist buffers plus every
  // worker's product scratch. Counted toward the memory budget so pooling
  // cannot hide memory from --memory-budget-mb.
  int64_t ScratchAndPoolBytes() const {
    int64_t total = buffer_pool_.pooled_bytes();
    for (const auto& worker : workers_) {
      total += worker->product.ScratchBytes();
    }
    return total;
  }

  void ClearAccessors() {
    for (const auto& worker : workers_) worker->accessor.Clear();
  }

  bool stopped() const { return stop_flag_.load(std::memory_order_relaxed); }

  // Records why the run stopped, once, after the controller latched a
  // reason. A no-op while the controller has not tripped. Coordinator-only.
  void LatchCompletion() {
    if (completion_ != Completion::kComplete || controller_ == nullptr) return;
    const StopReason reason = controller_->stop_reason();
    if (reason == StopReason::kNone) return;
    completion_ = reason == StopReason::kCancelled
                      ? Completion::kCancelled
                      : Completion::kDeadlineExpired;
    // First transition only: the heartbeat announces why the run is winding
    // down, even if the next periodic tick is seconds away.
    if (monitor_ != nullptr) monitor_->EmitNow(StopReasonToString(reason));
  }

  // Consults the RunController; once it trips, the stop is latched and the
  // run winds down to a partial result. Coordinator-only (between parallel
  // regions and at level boundaries).
  bool PollStop() {
    if (stopped()) {
      LatchCompletion();
      return true;
    }
    if (controller_ != nullptr && controller_->ShouldStop()) {
      stop_flag_.store(true, std::memory_order_relaxed);
      LatchCompletion();
      return true;
    }
    return false;
  }

  // The workers' cooperative stop check: the shared flag is cheap to read
  // every node; the controller's clock is consulted every kStopPollStride
  // polls. Any worker observing the controller trip publishes the flag so
  // its peers wind down too.
  bool WorkerShouldStop(WorkerState* w) {
    if (stop_flag_.load(std::memory_order_relaxed)) return true;
    if (controller_ == nullptr) return false;
    if (++w->stop_poll_tick % kStopPollStride != 0) return false;
    if (!controller_->ShouldStop()) return false;
    stop_flag_.store(true, std::memory_order_relaxed);
    return true;
  }

  // Under StorageMode::kMemory a configured budget is a hard limit: the
  // run aborts rather than thrash. kAuto spills instead (in the store) and
  // kDisk is already O(1)-resident.
  Status CheckMemoryBudget() {
    if (config_.storage != StorageMode::kMemory || controller_ == nullptr) {
      return Status::OK();
    }
    const int64_t budget = controller_->memory_budget_bytes();
    if (budget <= 0) return Status::OK();
    const int64_t resident = store_->resident_bytes() + AccessorCacheBytes() +
                             ScratchAndPoolBytes();
    if (resident <= budget) return Status::OK();
    return Status::ResourceExhausted(
        "resident partitions (" + std::to_string(resident) +
        " bytes) exceed the memory budget (" + std::to_string(budget) +
        " bytes); use StorageMode::kAuto to degrade to disk instead");
  }

  const StrippedPartition& EmptySetPartition();

  // Records an emitted dependency for the definitional C⁺ fallback and the
  // covered-rhs pruning masks below. Coordinator-only: workers buffer
  // emissions in NodeOutcome and the merge loop calls this in node order.
  // The restore path passes count=false: its kFdsEmitted total is carried
  // wholesale from the snapshot, so per-dependency increments would double.
  void RecordFd(DiscoveryResult* result, AttributeSet lhs, int rhs,
                double error, bool count = true) {
    result->fds.push_back({lhs, rhs, error});
    if (count) metrics_.Add(0, obs::kFdsEmitted, 1);
    found_lhs_by_rhs_[rhs].push_back(lhs);
    if (lhs.empty()) {
      covered_by_empty_ = covered_by_empty_.With(rhs);
    } else if (lhs.size() == 1) {
      covered_by_singleton_[rhs] =
          covered_by_singleton_[rhs].Union(lhs);
    }
  }

  // True when `lhs` → `rhs` is (approximately) valid, answered from the
  // minimal dependencies discovered so far. Sound for dependencies whose
  // left-hand side is smaller than the current level, because the levelwise
  // sweep has already emitted every minimal dependency below that size.
  bool HoldsByKnownFds(AttributeSet lhs, int rhs) const {
    for (AttributeSet known : found_lhs_by_rhs_[rhs]) {
      if (lhs.ContainsAll(known)) return true;
    }
    return false;
  }

  // Definitional membership test A ∈ C⁺(Y) (paper §4):
  //   C⁺(Y) = {A ∈ R | for all B ∈ Y, Y\{A,B} → B does not hold}.
  // Used when PRUNE needs C⁺ of a set that was never generated because a
  // key beneath it was pruned away; the stored levels have no value for it,
  // but the discovered-FD index answers the defining validity queries.
  bool InDefinitionalCplus(AttributeSet y, int attribute) const {
    for (int b : Members(y)) {
      if (HoldsByKnownFds(y.Without(attribute).Without(b), b)) return false;
    }
    return true;
  }

  // Stop polling cadence for the inner validity-test / product loops.
  static constexpr int64_t kStopPollStride = 64;

  const Relation& relation_;
  // Snapshot to restore before the loop, or nullptr for a fresh run.
  const RunSnapshot* const resume_snapshot_;
  const TaneConfig& config_;
  RunController* const controller_;
  std::unique_ptr<PartitionStore> store_;
  const int64_t num_rows_;
  // ⌊ε·|r|⌋: validity threshold for g3 removal and g2 row counts.
  const int64_t max_removals_;
  // ⌊ε·|r|²⌋: validity threshold for g1 ordered-pair counts.
  const int64_t max_pairs_;
  ThreadPool pool_;
  // Shared buffer freelist: stores recycle released CSR arrays here and
  // worker products acquire their output buffers from it. Declared after
  // store_ but never touched by store destructors, so member order is safe.
  PartitionBufferPool buffer_pool_;
  // Run-wide metric shards (one per worker) plus gauges; always on. The
  // DiscoveryStats counters become views over this registry at the end of
  // Run. Declared before workers_ so products can bind to it in the ctor
  // and after store_/buffer_pool_ so teardown order is safe.
  obs::MetricsRegistry metrics_;
  obs::Tracer* const tracer_;
  std::unique_ptr<obs::ProgressMonitor> monitor_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  DiscoveryStats stats_;

  // Cooperative stop state: the flag is written by any worker or the
  // coordinator (mirroring the controller's latched reason); completion_ is
  // coordinator-only.
  std::atomic<bool> stop_flag_{false};
  Completion completion_ = Completion::kComplete;

  // Checkpoint bookkeeping (coordinator-only). last_checkpoint_level_ is
  // the deepest level a durable snapshot covers — 0 when none exists.
  int last_checkpoint_level_ = 0;
  int resumed_from_level_ = 0;
  double checkpoint_seconds_ = 0.0;

  // π_∅ and e(∅), needed when testing dependencies ∅ → A at level 1. Built
  // eagerly before the first parallel region (workers only read it).
  std::unique_ptr<StrippedPartition> empty_partition_;
  int64_t empty_error_ = 0;

  // found_lhs_by_rhs_[A] = left-hand sides of every dependency emitted so
  // far with right-hand side A; backs the definitional C⁺ fallback.
  std::vector<std::vector<AttributeSet>> found_lhs_by_rhs_;

  // covered_by_empty_ holds the attributes A with ∅ → A already emitted;
  // covered_by_singleton_[A] holds the B with {B} → A emitted. Both back
  // the covered-rhs pruning (TaneConfig::use_covered_rhs_pruning).
  AttributeSet covered_by_empty_;
  std::vector<AttributeSet> covered_by_singleton_;

  // Resident copies of the single-attribute partitions, kept only in the
  // Schlimmer-style recomputation mode (use_partition_products == false).
  // Read-only once built, so workers share them without locking.
  std::vector<StrippedPartition> singleton_partitions_;
};

const StrippedPartition& TaneRun::EmptySetPartition() {
  if (empty_partition_ == nullptr) {
    empty_partition_ = std::make_unique<StrippedPartition>(
        PartitionBuilder::ForAttributeSet(relation_, AttributeSet(),
                                          config_.use_stripped_partitions));
  }
  return *empty_partition_;
}

void TaneRun::SamplePeakMemory() {
  // Coordinator-only, between parallel regions. The gauges feed the
  // heartbeat line; stats_.peak_partition_bytes is read back from the peak
  // gauge at the end of the run.
  const int64_t resident = store_->resident_bytes() + AccessorCacheBytes() +
                           ScratchAndPoolBytes();
  metrics_.SetGauge(obs::kResidentBytes, resident);
  metrics_.MaxGauge(obs::kPeakResidentBytes, resident);
  metrics_.SetGauge(obs::kPooledBytes, buffer_pool_.pooled_bytes());
}

Status TaneRun::ReleaseHandles(std::vector<Node>* nodes) {
  for (Node& node : *nodes) {
    if (node.handle >= 0) {
      TANE_RETURN_IF_ERROR(store_->Release(node.handle));
      node.handle = -1;
    }
  }
  ClearAccessors();
  return Status::OK();
}

Status TaneRun::TestValidity(WorkerState* w, int64_t prev_error,
                             int64_t prev_handle, const Node& node,
                             bool* valid, double* error, bool* exact_holds) {
  metrics_.Add(w->shard, obs::kValidityTests, 1);
  *exact_holds = (prev_error == node.error);
  *error = 0.0;

  if (config_.epsilon == 0.0) {
    // Lemma 2: X→A holds iff |π_X| = |π_X∪A| iff e(X) = e(X∪A).
    *valid = *exact_holds;
    return Status::OK();
  }

  // Approximate mode: decide error(X\{A} → A) ≤ ε with the violation count
  // compared against the precomputed integer threshold. For g3 the
  // e(·)-based bounds run first (O(1)); the exact partition scan (O(|r|))
  // only when necessary. g1/g2 have no such bounds and always scan.
  if (config_.measure == ErrorMeasure::kG3) {
    const int64_t lower = std::max<int64_t>(0, prev_error - node.error);
    const int64_t upper = prev_error;
    if (config_.use_g3_bounds && lower > max_removals_) {
      metrics_.Add(w->shard, obs::kG3ScansSkipped, 1);
      *valid = false;
      return Status::OK();
    }
    if (config_.use_g3_bounds && !config_.compute_exact_errors &&
        upper <= max_removals_) {
      metrics_.Add(w->shard, obs::kG3ScansSkipped, 1);
      *valid = true;
      *error = num_rows_ == 0 ? 0.0
                              : static_cast<double>(upper) /
                                    static_cast<double>(num_rows_);
      return Status::OK();
    }
  }

  const StrippedPartition* coarse = nullptr;
  if (prev_handle >= 0) {
    TANE_ASSIGN_OR_RETURN(coarse, w->accessor.Acquire(prev_handle));
  } else {
    coarse = empty_partition_.get();
    // Invariant: the level driver prebuilds the empty-set partition.
    // tane-lint: allow(tane-check)
    TANE_CHECK(coarse != nullptr) << "empty-set partition not prebuilt";
  }
  TANE_ASSIGN_OR_RETURN(const StrippedPartition* fine,
                        w->accessor.Acquire(node.handle));
  metrics_.Add(w->shard, obs::kG3Scans, 1);
  // The scan walks both operands' member rows; the histogram captures the
  // per-scan cost distribution for the run report.
  metrics_.Record(w->shard, obs::kG3ScanMemberRows,
                  coarse->num_member_rows() + fine->num_member_rows());
  switch (config_.measure) {
    case ErrorMeasure::kG3: {
      TANE_ASSIGN_OR_RETURN(const int64_t removals,
                            w->g3.RemovalCount(*coarse, *fine));
      *valid = removals <= max_removals_;
      *error = num_rows_ == 0 ? 0.0
                              : static_cast<double>(removals) /
                                    static_cast<double>(num_rows_);
      break;
    }
    case ErrorMeasure::kG2: {
      TANE_ASSIGN_OR_RETURN(const int64_t violating_rows,
                            w->g3.ViolatingRowCount(*coarse, *fine));
      *valid = violating_rows <= max_removals_;
      *error = num_rows_ == 0 ? 0.0
                              : static_cast<double>(violating_rows) /
                                    static_cast<double>(num_rows_);
      break;
    }
    case ErrorMeasure::kG1: {
      TANE_ASSIGN_OR_RETURN(const int64_t violating_pairs,
                            w->g3.ViolatingPairCount(*coarse, *fine));
      *valid = violating_pairs <= max_pairs_;
      *error = num_rows_ == 0 ? 0.0
                              : static_cast<double>(violating_pairs) /
                                    (static_cast<double>(num_rows_) *
                                     static_cast<double>(num_rows_));
      break;
    }
  }
  return Status::OK();
}

Status TaneRun::ProcessNode(int level_number, const Node& node,
                            const std::vector<Node>* prev,
                            const LevelIndex* prev_index, WorkerState* w,
                            NodeOutcome* out) {
  // Lines 3-8 for one node: test X\{A} → A for A ∈ X ∩ C⁺(X). The
  // candidate set is snapshot before any test, exactly like the serial
  // loop, so C⁺ updates from this node's own emissions never affect which
  // tests run.
  AttributeSet cplus = node.cplus;
  const AttributeSet candidates = node.set.Intersect(node.cplus);
  for (int attribute : Members(candidates)) {
    const AttributeSet lhs = node.set.Without(attribute);
    int64_t prev_error = empty_error_;
    int64_t prev_handle = -1;
    if (level_number > 1) {
      const int prev_pos = prev_index->Find(lhs);
      // Invariant: candidate generation only emits sets whose
      // subsets survived the previous level.
      // tane-lint: allow(tane-check)
      TANE_CHECK(prev_pos >= 0);
      prev_error = (*prev)[prev_pos].error;
      prev_handle = (*prev)[prev_pos].handle;
    }

    bool valid = false;
    bool exact_holds = false;
    double error = 0.0;
    TANE_RETURN_IF_ERROR(TestValidity(w, prev_error, prev_handle, node,
                                      &valid, &error, &exact_holds));
    if (!valid) continue;

    // Line 6: the minimal dependency, buffered for the in-order merge.
    out->emissions.push_back({attribute, error});
    // Line 7: A can no longer be a minimal rhs for any superset.
    cplus = cplus.Without(attribute);
    // Line 8 (exact) / 8' (approximate): Lemma 4.1 strengthening. In the
    // approximate algorithm it applies only when the dependency holds
    // exactly.
    if (config_.use_rhs_plus_pruning &&
        (config_.epsilon == 0.0 || exact_holds)) {
      cplus = cplus.Intersect(node.set);
    }
  }
  out->cplus_after = cplus;
  return Status::OK();
}

Status TaneRun::ComputeDependencies(int level_number, std::vector<Node>* level,
                                    const std::vector<Node>* prev,
                                    const LevelIndex* prev_index,
                                    DiscoveryResult* result,
                                    LevelParallelStats* lp) {
  const AttributeSet full = AttributeSet::FullSet(relation_.num_columns());

  // Line 2: C⁺(X) := ∩_{A∈X} C⁺(X\{A}).  At level 1, C⁺(∅) = R.
  for (Node& node : *level) {
    AttributeSet cplus = full;
    if (level_number > 1) {
      for (int attribute : Members(node.set)) {
        const int prev_pos = prev_index->Find(node.set.Without(attribute));
        // Invariant: same level invariant as above, per attribute.
        // tane-lint: allow(tane-check)
        TANE_CHECK(prev_pos >= 0)
            << "level invariant broken: missing subset of "
            << node.set.ToString();
        cplus = cplus.Intersect((*prev)[prev_pos].cplus);
        if (cplus.empty()) break;
      }
    }
    // Covered-rhs pruning: a candidate A outside X is dead once some known
    // dependency lhs' → A has lhs' ⊆ X — every dependency that could still
    // use it would have a left-hand side ⊇ X ⊇ lhs' and thus not be
    // minimal. Checking the ∅- and singleton-lhs dependencies costs O(|R|)
    // per set and is what collapses the search at large ε.
    if (config_.use_covered_rhs_pruning) {
      for (int attribute : Members(cplus.Difference(node.set))) {
        if (covered_by_empty_.Contains(attribute) ||
            !covered_by_singleton_[attribute].Intersect(node.set).empty()) {
          cplus = cplus.Without(attribute);
        }
      }
    }
    node.cplus = cplus;
  }

  // Lines 3-8, sharded across workers: every node's tests read only the
  // previous level and the node itself, so nodes are independent. Workers
  // buffer their findings per node; nothing shared is written until the
  // merge below.
  std::vector<NodeOutcome> outcomes(level->size());
  const ParallelForStats region = pool_.ParallelFor(
      static_cast<int64_t>(level->size()), [&](int worker, int64_t i) {
        WorkerState* w = workers_[worker].get();
        if (WorkerShouldStop(w)) return;
        NodeOutcome& out = outcomes[i];
        out.status =
            ProcessNode(level_number, (*level)[i], prev, prev_index, w, &out);
        out.processed = true;
        metrics_.Add(w->shard, obs::kNodesProcessed, 1);
      });
  lp->wall_seconds += region.wall_seconds;
  lp->worker_seconds += region.busy_seconds;
  // Deliberately no controller poll here: like the serial strided loop, a
  // stop that no worker observed mid-level is only acted on at the level
  // boundary, after PRUNE has run against the fully merged C⁺ sets.

  // Merge in node order: the emissions and C⁺ updates land exactly as the
  // serial loop would have applied them, so pruning decisions downstream
  // are deterministic for every thread count. Aborting between nodes keeps
  // the result prefix-correct: each emitted dependency passed its own
  // validity test and its minimality rests only on fully completed lower
  // levels, so it also appears in the complete run's output.
  for (size_t i = 0; i < level->size(); ++i) {
    NodeOutcome& out = outcomes[i];
    if (!out.processed) continue;  // a stop fired before this node ran
    TANE_RETURN_IF_ERROR(out.status);
    Node& node = (*level)[i];
    for (const Emission& emission : out.emissions) {
      RecordFd(result, node.set.Without(emission.attribute),
               emission.attribute, emission.error);
    }
    node.cplus = out.cplus_after;
  }
  return Status::OK();
}

Status TaneRun::Prune(int level_number, std::vector<Node>* level,
                      DiscoveryResult* result) {
  LevelIndex index;
  {
    std::vector<AttributeSet> sets;
    sets.reserve(level->size());
    for (const Node& node : *level) sets.push_back(node.set);
    index = LevelIndex(sets);
  }

  for (Node& node : *level) {
    // Rule 1: empty C⁺ means no superset can yield a minimal dependency.
    if (node.cplus.empty()) {
      node.deleted = true;
      continue;
    }
    // Rule 2: key pruning (Lemma 4.2). A set reaching its level with
    // e(X) = 0 is a key: superkeys that are not keys have a key as a proper
    // subset and were therefore never generated.
    if (config_.use_key_pruning && node.error == 0 && num_rows_ > 0) {
      metrics_.Add(0, obs::kKeysFound, 1);
      result->keys.push_back(node.set);
      // Output X → A for rhs⁺ candidates outside X whose minimality is
      // certified by the C⁺ sets of this level (paper PRUNE, lines 5-7).
      if (level_number <= config_.max_lhs_size) {
        for (int attribute : Members(node.cplus.Difference(node.set))) {
          bool minimal = true;
          for (int inside : Members(node.set)) {
            const AttributeSet sibling =
                node.set.With(attribute).Without(inside);
            const int pos = index.Find(sibling);
            if (pos >= 0) {
              if (!(*level)[pos].cplus.Contains(attribute)) {
                minimal = false;
                break;
              }
            } else if (!InDefinitionalCplus(sibling, attribute)) {
              // The sibling was never generated (a key beneath it was
              // pruned); fall back to the definition of C⁺, answered from
              // the dependencies discovered so far.
              minimal = false;
              break;
            }
          }
          if (minimal) {
            RecordFd(result, node.set, attribute, 0.0);
          }
        }
      }
      node.deleted = true;
    }
  }

  // Partitions of deleted nodes are dead: nothing later reads them.
  for (Node& node : *level) {
    if (node.deleted && node.handle >= 0) {
      TANE_RETURN_IF_ERROR(store_->Release(node.handle));
      node.handle = -1;
    }
  }
  ClearAccessors();
  return Status::OK();
}

StatusOr<StrippedPartition> TaneRun::BuildCandidatePartition(
    WorkerState* w, const LevelCandidate& candidate,
    const std::vector<Node>& survivors) {
  if (config_.use_partition_products) {
    TANE_ASSIGN_OR_RETURN(
        const StrippedPartition* a,
        w->accessor.Acquire(survivors[candidate.parent_a].handle));
    TANE_ASSIGN_OR_RETURN(
        const StrippedPartition* b,
        w->accessor.Acquire(survivors[candidate.parent_b].handle));
    metrics_.Add(w->shard, obs::kPartitionProducts, 1);
    return w->product.Multiply(*a, *b);
  }
  // Schlimmer-style recomputation: fold the candidate set's singleton
  // partitions, |X|−1 products instead of one.
  const std::vector<int> members = candidate.set.ToIndices();
  StrippedPartition product = singleton_partitions_[members[0]];
  for (size_t i = 1; i < members.size(); ++i) {
    TANE_ASSIGN_OR_RETURN(
        product, w->product.Multiply(product, singleton_partitions_[members[i]]));
    metrics_.Add(w->shard, obs::kPartitionProducts, 1);
  }
  return product;
}

Status TaneRun::WriteCheckpoint(int level_number,
                                const std::vector<Node>& survivors,
                                DiscoveryResult* result) {
  WallTimer timer;
  obs::SpanGuard span(tracer_, "checkpoint", &metrics_);
  RunSnapshot snapshot;
  snapshot.config_fingerprint = ConfigFingerprint(config_);
  snapshot.dataset_fingerprint = DatasetFingerprint(relation_);
  snapshot.num_rows = num_rows_;
  snapshot.num_columns = relation_.num_columns();
  snapshot.completed_level = level_number;
  // Emission order, not canonical order: CanonicalizeFds only runs at the
  // end of Run, and the restore path replays these to rebuild the pruning
  // indexes exactly as the interrupted run had them.
  snapshot.fds = result->fds;
  snapshot.keys = result->keys;
  snapshot.counters.sets_generated = metrics_.CounterTotal(obs::kSetsGenerated);
  snapshot.counters.validity_tests = metrics_.CounterTotal(obs::kValidityTests);
  snapshot.counters.g3_scans = metrics_.CounterTotal(obs::kG3Scans);
  snapshot.counters.g3_scans_skipped =
      metrics_.CounterTotal(obs::kG3ScansSkipped);
  snapshot.counters.partition_products =
      metrics_.CounterTotal(obs::kPartitionProducts);
  snapshot.counters.keys_found = metrics_.CounterTotal(obs::kKeysFound);
  snapshot.counters.nodes_processed =
      metrics_.CounterTotal(obs::kNodesProcessed);
  snapshot.counters.fds_emitted = metrics_.CounterTotal(obs::kFdsEmitted);
  snapshot.counters.max_level_size = metrics_.gauge(obs::kMaxLevelSize);
  snapshot.level_parallel = stats_.level_parallel;
  snapshot.survivors.reserve(survivors.size());
  for (const Node& node : survivors) {
    SnapshotNode stored;
    stored.set = node.set;
    stored.cplus = node.cplus;
    stored.error = node.error;
    const StrippedPartition* partition = store_->Peek(node.handle);
    StrippedPartition owned;
    if (partition == nullptr) {
      TANE_ASSIGN_OR_RETURN(owned, store_->Get(node.handle));
      partition = &owned;
    }
    stored.partition_bytes = SerializePartition(*partition);
    snapshot.survivors.push_back(std::move(stored));
    metrics_.Add(0, obs::kCheckpointNodesWritten, 1);
  }
  TANE_ASSIGN_OR_RETURN(
      const int64_t bytes,
      WriteSnapshot(config_.checkpoint_directory, snapshot));
  metrics_.Add(0, obs::kCheckpointWrites, 1);
  metrics_.Add(0, obs::kCheckpointBytesWritten, bytes);
  metrics_.SetGauge(obs::kCheckpointLastLevel, level_number);
  last_checkpoint_level_ = level_number;
  checkpoint_seconds_ += timer.ElapsedSeconds();
  return Status::OK();
}

Status TaneRun::RestoreFromSnapshot(const RunSnapshot& snapshot,
                                    DiscoveryResult* result,
                                    std::vector<Node>* survivors) {
  obs::SpanGuard span(tracer_, "restore", &metrics_);
  // Replaying the dependencies in emission order rebuilds found_lhs_by_rhs_
  // and the covered-rhs masks byte-for-byte; the carried counters restore
  // the work totals those emissions represent.
  for (const FunctionalDependency& fd : snapshot.fds) {
    RecordFd(result, fd.lhs, fd.rhs, fd.error, /*count=*/false);
  }
  result->keys = snapshot.keys;
  result->completed_levels = snapshot.completed_level;
  stats_.levels_processed = snapshot.completed_level;
  stats_.level_parallel = snapshot.level_parallel;
  const SnapshotCounters& carried = snapshot.counters;
  metrics_.Add(0, obs::kSetsGenerated, carried.sets_generated);
  metrics_.Add(0, obs::kValidityTests, carried.validity_tests);
  metrics_.Add(0, obs::kG3Scans, carried.g3_scans);
  metrics_.Add(0, obs::kG3ScansSkipped, carried.g3_scans_skipped);
  metrics_.Add(0, obs::kPartitionProducts, carried.partition_products);
  metrics_.Add(0, obs::kKeysFound, carried.keys_found);
  metrics_.Add(0, obs::kNodesProcessed, carried.nodes_processed);
  metrics_.Add(0, obs::kFdsEmitted, carried.fds_emitted);
  metrics_.MaxGauge(obs::kMaxLevelSize, carried.max_level_size);
  metrics_.SetGauge(obs::kResumedFromLevel, snapshot.completed_level);
  metrics_.SetGauge(obs::kCheckpointLastLevel, snapshot.completed_level);
  resumed_from_level_ = snapshot.completed_level;
  // The loaded file still covers this level; don't rewrite it on wind-down.
  last_checkpoint_level_ = snapshot.completed_level;

  // Survivor partitions rehydrate through the regular Put path, so the
  // store chain (spill, budget accounting, PLI interning) treats them
  // exactly like partitions the run computed itself.
  survivors->reserve(snapshot.survivors.size());
  for (const SnapshotNode& stored : snapshot.survivors) {
    TANE_ASSIGN_OR_RETURN(StrippedPartition partition,
                          DeserializePartition(stored.partition_bytes));
    Node node;
    node.set = stored.set;
    node.cplus = stored.cplus;
    node.error = stored.error;
    TANE_ASSIGN_OR_RETURN(node.handle, store_->Put(std::move(partition)));
    survivors->push_back(node);
    metrics_.Add(0, obs::kCheckpointNodesRestored, 1);
  }
  SamplePeakMemory();
  TANE_RETURN_IF_ERROR(CheckMemoryBudget());
  // Relation-derived state the snapshot deliberately omits: the fold-mode
  // singleton partitions are rebuilt from the input, bit-identical to the
  // interrupted run's.
  if (!config_.use_partition_products) {
    singleton_partitions_.reserve(relation_.num_columns());
    for (int attribute = 0; attribute < relation_.num_columns(); ++attribute) {
      singleton_partitions_.push_back(PartitionBuilder::ForAttribute(
          relation_, attribute, config_.use_stripped_partitions));
    }
  }
  return Status::OK();
}

StatusOr<bool> TaneRun::AdvanceLevel(int level_number,
                                     std::vector<Node>* survivors,
                                     std::vector<Node>* prev,
                                     LevelIndex* prev_index,
                                     std::vector<Node>* current,
                                     DiscoveryResult* result) {
  if (checkpointing() && config_.checkpoint_every_level &&
      last_checkpoint_level_ < level_number) {
    TANE_RETURN_IF_ERROR(WriteCheckpoint(level_number, *survivors, result));
  }
  if (config_.stop_after_level > 0 &&
      level_number >= config_.stop_after_level) {
    completion_ = Completion::kSuspended;
    TANE_RETURN_IF_ERROR(
        MaybeWindDownCheckpoint(level_number, *survivors, result));
    TANE_RETURN_IF_ERROR(ReleaseHandles(survivors));
    return false;
  }
  // Level boundary: the controller is always consulted between a fully
  // processed level and the generation of the next one. Survivor handles
  // are still live here, which is what makes the wind-down snapshot
  // possible at all — this is the last moment the level's partitions exist.
  if (PollStop()) {
    TANE_RETURN_IF_ERROR(
        MaybeWindDownCheckpoint(level_number, *survivors, result));
    TANE_RETURN_IF_ERROR(ReleaseHandles(survivors));
    return false;
  }

  // GENERATE-NEXT-LEVEL with partitions as products of two parents
  // (Lemma 3). Products are computed in parallel batches — candidates
  // are independent given the survivor partitions — and stored serially
  // in candidate order, so handles and e(·) values are deterministic.
  // Batching bounds the partitions resident outside the store to
  // O(threads) instead of O(level size).
  std::vector<AttributeSet> survivor_sets;
  survivor_sets.reserve(survivors->size());
  for (const Node& node : *survivors) survivor_sets.push_back(node.set);
  std::vector<LevelCandidate> candidates;
  {
    obs::SpanGuard span(tracer_, "generate", &metrics_);
    candidates = GenerateNextLevel(survivor_sets);
  }

  LevelParallelStats& level_stats = stats_.level_parallel.back();
  std::vector<Node> next;
  next.reserve(candidates.size());
  const size_t batch_size = static_cast<size_t>(pool_.num_threads()) * 8;
  Status generate_status = Status::OK();
  {
    obs::SpanGuard span(tracer_, "products", &metrics_);
    for (size_t begin = 0; begin < candidates.size() && !stopped();
         begin += batch_size) {
      const size_t end = std::min(candidates.size(), begin + batch_size);
      std::vector<std::optional<StatusOr<StrippedPartition>>> products(
          end - begin);
      const ParallelForStats region = pool_.ParallelFor(
          static_cast<int64_t>(end - begin), [&](int worker, int64_t j) {
            WorkerState* w = workers_[worker].get();
            if (WorkerShouldStop(w)) return;
            products[j] =
                BuildCandidatePartition(w, candidates[begin + j], *survivors);
          });
      level_stats.wall_seconds += region.wall_seconds;
      level_stats.worker_seconds += region.busy_seconds;
      PollStop();

      for (size_t j = 0; j < products.size(); ++j) {
        if (!products[j].has_value()) break;  // skipped by a stop
        if (!products[j]->ok()) {
          generate_status = products[j]->status();
          break;
        }
        StrippedPartition product = std::move(*products[j]).value();
        Node node;
        node.set = candidates[begin + j].set;
        node.error = product.Error();
        TANE_ASSIGN_OR_RETURN(node.handle, store_->Put(std::move(product)));
        next.push_back(node);
        metrics_.Add(0, obs::kSetsGenerated, 1);
        SamplePeakMemory();
        generate_status = CheckMemoryBudget();
        if (!generate_status.ok()) break;
      }
      if (!generate_status.ok()) break;
    }
  }
  if (!generate_status.ok()) {
    // Hard error (store I/O, budget breach): snapshot the level boundary
    // while the survivors are still live — a budget breach under
    // checkpointing becomes a resumable failure the caller can retry with
    // a different storage plan — then release everything before surfacing
    // it. The generate error takes precedence over cleanup failures, but
    // those still get a log line each.
    LogIgnoredStatus(
        MaybeWindDownCheckpoint(level_number, *survivors, result),
        "checkpoint during error wind-down");
    LogIgnoredStatus(ReleaseHandles(&next), "releasing next level");
    LogIgnoredStatus(ReleaseHandles(survivors), "releasing survivors");
    return generate_status;
  }
  if (stopped()) {
    // Stopped while generating the next level: its partial contents were
    // never tested, so they contribute nothing — drop them. The survivor
    // level is still a valid boundary, so it is snapshot for resume.
    LatchCompletion();
    TANE_RETURN_IF_ERROR(ReleaseHandles(&next));
    TANE_RETURN_IF_ERROR(
        MaybeWindDownCheckpoint(level_number, *survivors, result));
    TANE_RETURN_IF_ERROR(ReleaseHandles(survivors));
    return false;
  }

  // In exact mode validity tests read only the stored e(·) values, so the
  // survivor partitions can be dropped now that the products exist; the
  // approximate mode still needs them for g3 scans.
  if (config_.epsilon == 0.0) {
    TANE_RETURN_IF_ERROR(ReleaseHandles(survivors));
  }
  *prev = std::move(*survivors);
  {
    std::vector<AttributeSet> prev_sets;
    prev_sets.reserve(prev->size());
    for (const Node& node : *prev) prev_sets.push_back(node.set);
    *prev_index = LevelIndex(prev_sets);
  }
  *current = std::move(next);
  return true;
}

Status TaneRun::Run(DiscoveryResult* result) {
  WallTimer timer;
  obs::SpanGuard run_span(tracer_, "run", &metrics_);
  if (config_.progress_period_seconds > 0.0) {
    obs::ProgressMonitor::Options options;
    options.period_seconds = config_.progress_period_seconds;
    options.controller = controller_;
    monitor_ = std::make_unique<obs::ProgressMonitor>(&metrics_, options);
    monitor_->Start();
  }
  const int num_attributes = relation_.num_columns();
  empty_error_ = num_rows_ > 0 ? num_rows_ - 1 : 0;
  found_lhs_by_rhs_.assign(num_attributes, {});
  covered_by_singleton_.assign(num_attributes, AttributeSet());
  stats_.num_threads = config_.num_threads;
  if (config_.epsilon > 0.0) {
    // π_∅ backs the level-1 tests ∅ → A; build it before workers can race
    // to create it lazily.
    (void)EmptySetPartition();
  }

  std::vector<Node> current;
  std::vector<Node> prev;
  LevelIndex prev_index;
  int level_number = 1;

  if (resume_snapshot_ != nullptr) {
    // Resume: rebuild the boundary state of the checkpointed level and
    // re-enter the lattice through the same advance path the loop uses.
    std::vector<Node> survivors;
    TANE_RETURN_IF_ERROR(
        RestoreFromSnapshot(*resume_snapshot_, result, &survivors));
    level_number = resume_snapshot_->completed_level;
    if (stats_.level_parallel.empty()) {
      // Defensive: a well-formed snapshot always carries its level rows.
      LevelParallelStats row;
      row.level = level_number;
      row.nodes = static_cast<int64_t>(survivors.size());
      stats_.level_parallel.push_back(row);
    }
    TANE_ASSIGN_OR_RETURN(const bool advanced,
                          AdvanceLevel(level_number, &survivors, &prev,
                                       &prev_index, &current, result));
    if (advanced) ++level_number;
    // !advanced leaves `current` empty, skipping the loop: the run wound
    // down again (suspend, stop, ...) before making progress.
  } else {
    // L_1 := {{A} | A ∈ R}, with partitions computed from the database.
    current.reserve(num_attributes);
    {
      obs::SpanGuard span(tracer_, "base-partitions", &metrics_);
      for (int attribute = 0; attribute < num_attributes; ++attribute) {
        StrippedPartition partition = PartitionBuilder::ForAttribute(
            relation_, attribute, config_.use_stripped_partitions);
        Node node;
        node.set = AttributeSet::Singleton(attribute);
        node.error = partition.Error();
        if (config_.use_partition_products) {
          TANE_ASSIGN_OR_RETURN(node.handle, store_->Put(std::move(partition)));
        } else {
          // The recomputation mode folds from resident singleton copies, so
          // the store gets a copy and the original stays here.
          TANE_ASSIGN_OR_RETURN(node.handle, store_->Put(partition));
          singleton_partitions_.push_back(std::move(partition));
        }
        current.push_back(node);
        metrics_.Add(0, obs::kSetsGenerated, 1);
      }
    }
    SamplePeakMemory();
    TANE_RETURN_IF_ERROR(CheckMemoryBudget());
  }

  while (!current.empty()) {
    stats_.levels_processed = level_number;
    metrics_.SetGauge(obs::kCurrentLevel, level_number);
    metrics_.SetGauge(obs::kLevelNodesTotal,
                      static_cast<int64_t>(current.size()));
    metrics_.SetGauge(obs::kLevelNodesStart,
                      metrics_.CounterTotal(obs::kNodesProcessed));
    metrics_.MaxGauge(obs::kMaxLevelSize,
                      static_cast<int64_t>(current.size()));
    obs::SpanGuard level_span(
        tracer_, "level " + std::to_string(level_number), &metrics_);
    // The level's timing row lives in stats_ from the start so the advance
    // path (and a checkpoint taken mid-boundary) always sees it in place.
    {
      LevelParallelStats row;
      row.level = level_number;
      row.nodes = static_cast<int64_t>(current.size());
      stats_.level_parallel.push_back(row);
    }

    {
      obs::SpanGuard span(tracer_, "validity", &metrics_);
      TANE_RETURN_IF_ERROR(ComputeDependencies(level_number, &current, &prev,
                                               &prev_index, result,
                                               &stats_.level_parallel.back()));
    }
    TANE_RETURN_IF_ERROR(ReleaseHandles(&prev));
    if (stopped()) {
      // Stopped mid-level: the dependencies already emitted stand on their
      // own, but PRUNE must not run against half-updated C⁺ sets (it could
      // certify a non-minimal key dependency). Wind down here; the last
      // per-level snapshot (if any) still covers the previous boundary.
      TANE_RETURN_IF_ERROR(ReleaseHandles(&current));
      break;
    }
    {
      obs::SpanGuard span(tracer_, "prune", &metrics_);
      TANE_RETURN_IF_ERROR(Prune(level_number, &current, result));
    }
    result->completed_levels = level_number;

    std::vector<Node> survivors;
    survivors.reserve(current.size());
    for (Node& node : current) {
      if (!node.deleted) survivors.push_back(std::move(node));
    }
    current.clear();

    if (survivors.empty() || level_number >= config_.max_lhs_size + 1) {
      // The search is finished — nothing above this level can be generated.
      TANE_RETURN_IF_ERROR(ReleaseHandles(&survivors));
      break;
    }

    TANE_ASSIGN_OR_RETURN(const bool advanced,
                          AdvanceLevel(level_number, &survivors, &prev,
                                       &prev_index, &current, result));
    if (!advanced) break;
    ++level_number;
  }

  TANE_RETURN_IF_ERROR(ReleaseHandles(&prev));
  CanonicalizeFds(&result->fds);
  std::sort(result->keys.begin(), result->keys.end());
  LatchCompletion();
  result->completion = completion_;
  if (checkpointing()) {
    if (completion_ == Completion::kComplete) {
      // The results are now the durable artifact; stale snapshots would
      // only let a later --resume replay a finished search.
      TANE_RETURN_IF_ERROR(RemoveSnapshots(config_.checkpoint_directory));
      metrics_.SetGauge(obs::kCheckpointLastLevel, 0);
      last_checkpoint_level_ = 0;
    }
    result->resumable =
        completion_ != Completion::kComplete && last_checkpoint_level_ > 0;
  }
  if (monitor_ != nullptr) {
    monitor_->Stop();  // emits the final heartbeat line
    monitor_.reset();
  }
  stats_.spill_bytes_written = store_->bytes_written();
  stats_.wall_seconds = timer.ElapsedSeconds();

  // The legacy counters are views over the registry: one snapshot fills
  // them all, and the same snapshot ships in the result for the run report
  // and the bench emitters — the two can never disagree.
  const obs::MetricsSnapshot snapshot = metrics_.Snapshot();
  stats_.sets_generated = snapshot.counter(obs::kSetsGenerated);
  stats_.max_level_size = snapshot.gauge(obs::kMaxLevelSize);
  stats_.validity_tests = snapshot.counter(obs::kValidityTests);
  stats_.g3_scans = snapshot.counter(obs::kG3Scans);
  stats_.g3_scans_skipped = snapshot.counter(obs::kG3ScansSkipped);
  stats_.partition_products = snapshot.counter(obs::kPartitionProducts);
  stats_.product_allocations = snapshot.counter(obs::kProductAllocations);
  stats_.keys_found = snapshot.counter(obs::kKeysFound);
  stats_.peak_partition_bytes = snapshot.gauge(obs::kPeakResidentBytes);
  stats_.checkpoint_writes = snapshot.counter(obs::kCheckpointWrites);
  stats_.checkpoint_bytes = snapshot.counter(obs::kCheckpointBytesWritten);
  stats_.checkpoint_seconds = checkpoint_seconds_;
  stats_.resumed_from_level = resumed_from_level_;
  result->stats = stats_;
  result->metrics = snapshot;
  return Status::OK();
}

}  // namespace

StatusOr<DiscoveryResult> Tane::Discover(const Relation& relation,
                                         const TaneConfig& config) {
  TANE_RETURN_IF_ERROR(config.Validate());
  if (relation.num_columns() > kMaxAttributes) {
    return Status::InvalidArgument("relation has too many attributes");
  }

  // Resume loads the latest snapshot up front so fingerprint mismatches are
  // rejected before any partition work starts. A missing snapshot falls
  // back to a fresh run (schedulers can pass resume unconditionally);
  // corruption and I/O failures surface as-is.
  std::unique_ptr<RunSnapshot> resume_snapshot;
  if (config.resume) {
    StatusOr<RunSnapshot> loaded =
        LoadLatestSnapshot(config.checkpoint_directory);
    if (loaded.ok()) {
      if (loaded->config_fingerprint != ConfigFingerprint(config)) {
        return Status::FailedPrecondition(
            "refusing to resume: the snapshot in '" +
            config.checkpoint_directory +
            "' was written under a different configuration");
      }
      if (loaded->dataset_fingerprint != DatasetFingerprint(relation) ||
          loaded->num_rows != relation.num_rows() ||
          loaded->num_columns != relation.num_columns()) {
        return Status::FailedPrecondition(
            "refusing to resume: the snapshot in '" +
            config.checkpoint_directory +
            "' was written for a different dataset");
      }
      resume_snapshot = std::make_unique<RunSnapshot>(std::move(*loaded));
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }

  std::unique_ptr<PartitionStore> store;
  AutoPartitionStore* auto_store = nullptr;
  if (config.storage == StorageMode::kDisk) {
    TANE_ASSIGN_OR_RETURN(auto disk_store,
                          DiskPartitionStore::Open(config.spill_directory));
    store = std::move(disk_store);
  } else if (config.storage == StorageMode::kAuto) {
    const int64_t budget = config.run_controller != nullptr
                               ? config.run_controller->memory_budget_bytes()
                               : 0;
    auto owned = std::make_unique<AutoPartitionStore>(budget,
                                                      config.spill_directory);
    auto_store = owned.get();
    store = std::move(owned);
  } else {
    store = std::make_unique<MemoryPartitionStore>();
  }

  // The interning PLI cache decorates whichever store was chosen; outer
  // handles behave exactly like the raw store's, so the run is oblivious.
  PliCache* pli_cache = nullptr;
  if (config.use_pli_cache) {
    auto cache = std::make_unique<PliCache>(std::move(store));
    pli_cache = cache.get();
    store = std::move(cache);
  }

  DiscoveryResult result;
  TaneRun run(relation, config, std::move(store), resume_snapshot.get());
  TANE_RETURN_IF_ERROR(run.Run(&result));
  if (auto_store != nullptr) {
    result.stats.degraded_to_disk = auto_store->spilled();
  }
  if (pli_cache != nullptr) {
    const PliCacheStats cache_stats = pli_cache->stats();
    result.stats.pli_cache_lookups = cache_stats.lookups;
    result.stats.pli_cache_hits = cache_stats.hits;
    result.stats.pli_cache_misses = cache_stats.misses;
    result.stats.pli_cache_bytes_saved = cache_stats.bytes_saved;
  }
  return result;
}

}  // namespace tane
