#include "core/tane.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/partition_store.h"
#include "core/pli_cache.h"
#include "core/run_snapshot.h"
#include "lattice/level.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "partition/buffer_pool.h"
#include "partition/error.h"
#include "partition/partition_builder.h"
#include "partition/product.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/span_stack.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tane {
namespace {

// For cleanup paths where an earlier error must keep precedence: the
// secondary failure is logged, never silently dropped (Status is
// [[nodiscard]]; this is the sanctioned way to sideline one).
// Flight-recorder event, if one is armed (the CLI arms it whenever a
// checkpoint directory is configured). One relaxed global load when idle.
void RecordFlight(int tid, obs::FlightEventType type, std::string_view label,
                  int64_t a = 0, int64_t b = 0) {
  obs::FlightRecorder* recorder = obs::FlightRecorder::active();
  if (recorder != nullptr) recorder->Record(tid, type, label, a, b);
}

// Budget breaches end the run with kResourceExhausted; the flight dump is
// the postmortem of what the run was doing when memory ran out.
void ReportBudgetBreach(int64_t resident, int64_t budget) {
  obs::FlightRecorder* recorder = obs::FlightRecorder::active();
  if (recorder == nullptr) return;
  recorder->Record(-1, obs::FlightEventType::kBudget, "memory_budget",
                   resident, budget);
  recorder->DumpGraceful("memory_budget");
}

void LogIgnoredStatus(const Status& status, const char* context) {
  if (!status.ok()) {
    TANE_LOG(Warning) << context << " failed during error unwind: "
                      << status.ToString();
  }
}

// One attribute set of the current level, with its rhs⁺ candidates C⁺(X),
// the partition error e(X), the member-row count ‖π_X‖ (drives the next
// window's output-buffer plan), and the handle of π_X in the partition
// store.
struct Node {
  AttributeSet set;
  AttributeSet cplus;
  int64_t error = 0;
  int64_t member_rows = 0;
  int64_t handle = -1;
  bool deleted = false;
};

// Serves partitions by handle, borrowing from the store when it is
// memory-backed and maintaining a small LRU of deserialized partitions when
// it is disk-backed. Pointers stay valid for at least the `capacity - 1`
// following Acquire calls, which suffices for the two-operand uses here.
// Borrowed pointers also survive concurrent Puts from the commit frontier
// (the stores guarantee reference stability within a task window); the
// driver never Releases a handle while a window is in flight. Not
// thread-safe itself; the parallel executor keeps one accessor per worker.
class PartitionAccessor {
 public:
  PartitionAccessor(PartitionStore* store, size_t capacity)
      : store_(store), capacity_(capacity) {}

  StatusOr<const StrippedPartition*> Acquire(int64_t handle) {
    if (const StrippedPartition* borrowed = store_->Peek(handle)) {
      return borrowed;
    }
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->first == handle) {
        cache_.splice(cache_.begin(), cache_, it);
        return &cache_.front().second;
      }
    }
    TANE_ASSIGN_OR_RETURN(StrippedPartition partition, store_->Get(handle));
    cache_.emplace_front(handle, std::move(partition));
    while (cache_.size() > capacity_) cache_.pop_back();
    return &cache_.front().second;
  }

  // Drops cached copies (e.g. after their handles are released).
  void Clear() { cache_.clear(); }

  int64_t cache_bytes() const {
    int64_t total = 0;
    for (const auto& [handle, partition] : cache_) {
      total += partition.EstimatedBytes();
    }
    return total;
  }

 private:
  PartitionStore* store_;
  size_t capacity_;
  std::list<std::pair<int64_t, StrippedPartition>> cache_;
};

// Scratch state owned by one worker thread. The G3Calculator and
// PartitionProduct probe tables are O(|r|) and mutated on every call, so
// they can never be shared between workers; the accessor keeps per-worker
// LRU copies when the store is disk-backed. Work counters go straight to
// the run's MetricsRegistry on this worker's shard — single-writer relaxed
// stores, so the hot loops stay free of shared atomics while the progress
// monitor can still read exact totals at any moment.
struct WorkerState {
  WorkerState(PartitionStore* store, int64_t num_rows, int shard)
      : accessor(store, /*capacity=*/8),
        g3(num_rows),
        product(num_rows),
        shard(shard) {}

  PartitionAccessor accessor;
  G3Calculator g3;
  PartitionProduct product;

  // This worker's shard index in the run's MetricsRegistry.
  int shard = 0;
  int64_t stop_poll_tick = 0;
};

// A dependency discovered while testing one node: X\{attribute} → attribute
// with the given error. Recorded per node and merged in node order so the
// output is identical for every thread count.
struct Emission {
  int attribute = -1;
  double error = 0.0;
};

// Everything a worker produced for one node of the level.
struct NodeOutcome {
  Status status = Status::OK();
  AttributeSet cplus_after;
  std::vector<Emission> emissions;
  // False when a cooperative stop fired before the node was picked up; such
  // nodes contribute nothing to the (prefix-correct) partial result.
  bool processed = false;
};

// One candidate's slot in a fused level window. The owning worker fills the
// payload, then publishes it with a release store on `done`; the commit
// frontier reads it back after an acquire load. No other synchronization
// touches a slot, so the fields carry no lock annotations.
struct WindowSlot {
  std::optional<StatusOr<StrippedPartition>> partition;
  NodeOutcome outcome;
  PliCache::StagedProbe staged;
  bool has_staged = false;
  // Per-slot completion latch, release-published / acquire-consumed by the
  // window executor; no multi-word protocol. tane-lint: allow(naked-atomic)
  std::atomic<int> done{0};
};

// Immutable inputs of one fused level window: the candidates (in node
// order) with their pre-seeded C⁺ sets, and the parent level backing the
// validity tests.
struct WindowInputs {
  // The level being built (its nodes' |X|).
  int level_number = 1;
  const std::vector<AttributeSet>* sets = nullptr;
  const std::vector<AttributeSet>* cplus = nullptr;
  // Parent level (survivors of level_number - 1) and its index; nullptr at
  // level 1, where the tests run against π_∅.
  const std::vector<Node>* parents = nullptr;
  const LevelIndex* parent_index = nullptr;
  // Output-row bound per candidate (min of the parents' member rows);
  // nullptr disables the deterministic buffer plan (level 1, fold mode).
  const std::vector<int64_t>* row_bounds = nullptr;
  // Fold mode at level 1: keep a resident copy of every singleton partition
  // next to the stored one.
  bool stash_singletons = false;
  // Σ row_bounds (or an equivalent proxy): the serial-fallback estimate of
  // the window's total row work.
  int64_t est_row_work = 0;
};

// Shared mutable state of one fused level window. Workers coordinate
// through the atomic commit `frontier`; everything whose order matters —
// store inserts, PLI-cache verdicts, the committed node list, the first
// failure — happens under `mu`, strictly in candidate order. That frontier
// is the whole determinism argument: handle values, cache hit/miss
// decisions, and e(·) bookkeeping are issued exactly as a serial run would
// issue them, for every thread count.
struct WindowContext {
  int64_t count = 0;
  // How far past the frontier a task may start; bounds the partitions that
  // exist outside the store to O(threads), like the old batched generator.
  int64_t gate = 0;
  std::unique_ptr<WindowSlot[]> slots;
  const WindowInputs* in = nullptr;
  // Independent claim counter and sticky error flag; their explicit orders
  // are the contract. tane-lint: allow(naked-atomic)
  std::atomic<int64_t> frontier{0};
  // tane-lint: allow(naked-atomic)
  std::atomic<bool> failed{false};
  Mutex mu;
  Status status TANE_GUARDED_BY(mu) = Status::OK();
  std::vector<Node> nodes TANE_GUARDED_BY(mu);
};

// Pops the smallest planned buffer whose capacity covers `bound`; an empty
// vector when the free list cannot (the consumer then allocates and counts
// it, exactly like a dry pool).
std::vector<int32_t> TakePlannedBuffer(
    std::multimap<size_t, std::vector<int32_t>>* free_buffers, size_t bound) {
  if (free_buffers->empty()) return {};
  auto it = free_buffers->lower_bound(bound);
  if (it == free_buffers->end()) return {};
  std::vector<int32_t> buffer = std::move(it->second);
  free_buffers->erase(it);
  return buffer;
}

class TaneRun {
 public:
  /// `resume_snapshot` (optional, not owned, pre-validated by Discover)
  /// restores the run to its checkpointed level boundary before the
  /// levelwise loop continues. `pli_cache` (optional, not owned) is the
  /// interning decorator inside `store`, exposed so the commit frontier can
  /// pre-stage cache probes on worker threads.
  TaneRun(const Relation& relation, const TaneConfig& config,
          std::unique_ptr<PartitionStore> store, PliCache* pli_cache,
          const RunSnapshot* resume_snapshot)
      : relation_(relation),
        resume_snapshot_(resume_snapshot),
        config_(config),
        controller_(config.run_controller),
        store_(std::move(store)),
        pli_cache_(pli_cache),
        num_rows_(relation.num_rows()),
        max_removals_(IntegerThreshold(
            config.epsilon, static_cast<double>(relation.num_rows()))),
        max_pairs_(IntegerThreshold(
            config.epsilon, static_cast<double>(relation.num_rows()) *
                                static_cast<double>(relation.num_rows()))),
        pool_(config.num_threads),
        buffer_pool_(config.num_threads),
        metrics_(config.num_threads),
        tracer_(config.tracer) {
    // Close the allocation loop: the store recycles released partition
    // buffers into the pool, and each worker's product scratch acquires
    // from its own slot (lock-free off the refill path).
    store_->set_buffer_pool(&buffer_pool_);
    store_->set_metrics(&metrics_);
    store_->set_tracer(tracer_);
    buffer_pool_.set_metrics(&metrics_);
    // Resolve the dispatch kernel once (config validation already vetted
    // the name) and hand the same immutable ops table to every worker's
    // product and error scratch.
    kernel_ = ResolveKernel(ParseKernelKind(config.kernel).value());
    metrics_.SetGauge(obs::kKernelKind, static_cast<int64_t>(kernel_->kind));
    workers_.reserve(config.num_threads);
    for (int worker = 0; worker < config.num_threads; ++worker) {
      workers_.push_back(
          std::make_unique<WorkerState>(store_.get(), num_rows_, worker));
      workers_.back()->product.set_buffer_pool(&buffer_pool_, worker);
      workers_.back()->product.set_metrics(&metrics_, worker);
      workers_.back()->product.set_kernel(kernel_);
      workers_.back()->g3.set_metrics(&metrics_, worker);
      workers_.back()->g3.set_kernel(kernel_);
    }
    if (tracer_ != nullptr) {
      // Per-worker drain slices nest under whichever phase span encloses
      // the parallel region (worker 0 is the coordinator thread, so its
      // slice shares tid 0 with the phase spans). Emit is thread-safe.
      pool_.set_slice_hook([this](const ParallelForSlice& slice) {
        obs::TraceEvent event;
        event.name = "slice";
        event.tid = slice.worker;
        event.start_us = tracer_->ToUs(slice.start);
        event.dur_us =
            std::chrono::duration<double, std::micro>(slice.end - slice.start)
                .count();
        event.args.emplace_back("items", slice.items);
        tracer_->Emit(std::move(event));
      });
    }
  }

  Status Run(DiscoveryResult* result);

 private:
  using BuildFn = std::function<StatusOr<StrippedPartition>(WorkerState*,
                                                            int64_t)>;

  // The in-order half of COMPUTE-DEPENDENCIES (paper §5): the level window
  // already ran every node's validity tests fused with its partition build;
  // here the buffered emissions and C⁺ updates land in node order, exactly
  // as the serial loop would have applied them, so pruning decisions
  // downstream are deterministic for every thread count.
  Status MergeOutcomes(std::vector<Node>* level, DiscoveryResult* result);

  // The per-node half of COMPUTE-DEPENDENCIES (lines 3-8): runs every
  // validity test of `node` against its freshly built partition `fine` and
  // collects emissions plus the final C⁺ into `out` without touching shared
  // state. Safe to call concurrently for distinct nodes. The C⁺ updates of
  // lines 7-8 commute (set differences and intersections), so applying them
  // against a snapshot here and merging later reproduces the serial result
  // exactly.
  Status ProcessNode(int level_number, const Node& node,
                     const StrippedPartition* fine,
                     const std::vector<Node>* prev,
                     const LevelIndex* prev_index, WorkerState* w,
                     NodeOutcome* out);

  // PRUNE(L_ℓ), paper §5. Marks nodes deleted and emits key dependencies.
  Status Prune(int level_number, std::vector<Node>* level,
               DiscoveryResult* result);

  // GENERATE-NEXT-LEVEL partition computation for one candidate.
  StatusOr<StrippedPartition> BuildCandidatePartition(
      WorkerState* w, const LevelCandidate& candidate,
      const std::vector<Node>& survivors);

  // Tests X\{A} → A given e(X\{A}), the handle of π_X\{A}, e(X), and the
  // node's own partition π_X (`fine`, owned by the window slot — level
  // partitions are tested before they are stored). Sets *valid and *error
  // (the error value to report when valid).
  Status TestValidity(WorkerState* w, int64_t prev_error, int64_t prev_handle,
                      int64_t node_error, const StrippedPartition* fine,
                      bool* valid, double* error, bool* exact_holds);

  // The fused task window that builds one level: every candidate is one
  // task (partition build + error + validity tests + staged PLI probe),
  // runnable as soon as its parents exist — the parents are the previous
  // level, fully live for the whole window, so all tasks are immediately
  // runnable and the pool's work-stealing deques schedule them with no
  // intra-level barrier. Results are committed through the index-ordered
  // frontier in WindowContext. On success *next holds the level's nodes and
  // pending_outcomes_ their validity outcomes; on stop/failure both hold
  // the committed prefix. Falls back to an inline serial loop when the
  // window cannot pay for its scheduling (UseParallelWindow).
  Status RunLevelWindow(const WindowInputs& in, const BuildFn& build,
                        std::vector<Node>* next, LevelParallelStats* lp);

  // Commits every consecutive ready slot at the frontier. blocking=false is
  // the worker-side helper (TryLock: somebody else committing is progress
  // already); blocking=true is the coordinator drain and the serial path.
  void CommitReadySlots(WindowContext* ctx, bool blocking)
      TANE_EXCLUDES(ctx->mu);

  // Commits slot `i`: stores the partition (through the staged PLI-cache
  // path when available), appends the node, and runs the strided resident-
  // bytes budget check. Called only at the frontier, in candidate order.
  Status CommitOneSlot(WindowContext* ctx, int64_t i)
      TANE_REQUIRES(ctx->mu);

  // Satellite of the scaling fix: decides between the parallel task window
  // and the inline serial path. See TaneConfig::parallel_min_window_rows.
  bool UseParallelWindow(int64_t count, int64_t est_row_work) const;

  // The boundary-to-boundary advance after PRUNE of `level_number`:
  // checkpointing, the suspend/stop decision, GENERATE-NEXT-LEVEL, and the
  // fused build+validate window for the next level. Returns true when the
  // run should continue with `current` holding the next level, false when
  // it wound down (all handles released; the caller exits the loop). Shared
  // by the level loop and the resume prologue, which is what lets a
  // restored run re-enter the lattice mid-flight through the exact same
  // code path. Survivor handles are released before returning in every
  // case: the window already consumed them for products and validity tests.
  StatusOr<bool> AdvanceLevel(int level_number, std::vector<Node>* survivors,
                              std::vector<Node>* current,
                              DiscoveryResult* result);

  // Serializes the current run state (survivors of `level_number`, post-
  // PRUNE) into a durable snapshot under config_.checkpoint_directory.
  Status WriteCheckpoint(int level_number, const std::vector<Node>& survivors,
                         DiscoveryResult* result);

  // WriteCheckpoint unless the latest durable snapshot already covers
  // `level_number` (per-level checkpointing got there first, or the run
  // resumed from it and made no progress).
  Status MaybeWindDownCheckpoint(int level_number,
                                 const std::vector<Node>& survivors,
                                 DiscoveryResult* result) {
    if (!checkpointing() || last_checkpoint_level_ >= level_number) {
      return Status::OK();
    }
    return WriteCheckpoint(level_number, survivors, result);
  }

  // Rehydrates the run from `snapshot`: dependencies and keys replayed in
  // emission order (rebuilding every pruning index), carried counters
  // restored, survivor partitions re-Put through the store chain.
  Status RestoreFromSnapshot(const RunSnapshot& snapshot,
                             DiscoveryResult* result,
                             std::vector<Node>* survivors);

  bool checkpointing() const { return !config_.checkpoint_directory.empty(); }

  Status ReleaseHandles(std::vector<Node>* nodes);
  void SamplePeakMemory();

  int64_t AccessorCacheBytes() const {
    int64_t total = 0;
    for (const auto& worker : workers_) total += worker->accessor.cache_bytes();
    return total;
  }

  // Bytes retained outside the store: pooled freelist buffers plus every
  // worker's product scratch. Counted toward the memory budget so pooling
  // cannot hide memory from --memory-budget-mb.
  int64_t ScratchAndPoolBytes() const {
    int64_t total = buffer_pool_.pooled_bytes();
    for (const auto& worker : workers_) {
      total += worker->product.ScratchBytes();
    }
    return total;
  }

  void ClearAccessors() {
    for (const auto& worker : workers_) worker->accessor.Clear();
  }

  bool stopped() const { return stop_flag_.load(std::memory_order_relaxed); }

  // Records why the run stopped, once, after the controller latched a
  // reason. A no-op while the controller has not tripped. Coordinator-only.
  void LatchCompletion() {
    if (completion_ != Completion::kComplete || controller_ == nullptr) return;
    const StopReason reason = controller_->stop_reason();
    if (reason == StopReason::kNone) return;
    completion_ = reason == StopReason::kCancelled
                      ? Completion::kCancelled
                      : Completion::kDeadlineExpired;
    // First transition only: the heartbeat announces why the run is winding
    // down, even if the next periodic tick is seconds away.
    if (monitor_ != nullptr) monitor_->EmitNow(StopReasonToString(reason));
    // Same transition arms the postmortem: the dump captures the ring as
    // it stood when the verdict landed, before wind-down noise overwrites
    // the interesting tail.
    obs::FlightRecorder* recorder = obs::FlightRecorder::active();
    if (recorder != nullptr) {
      const std::string_view verdict = StopReasonToString(reason);
      recorder->Record(0, obs::FlightEventType::kVerdict, verdict);
      recorder->DumpGraceful(verdict);
    }
  }

  // Consults the RunController; once it trips, the stop is latched and the
  // run winds down to a partial result. Coordinator-only (between parallel
  // regions and at level boundaries).
  bool PollStop() {
    if (stopped()) {
      LatchCompletion();
      return true;
    }
    if (controller_ != nullptr && controller_->ShouldStop()) {
      stop_flag_.store(true, std::memory_order_relaxed);
      LatchCompletion();
      return true;
    }
    return false;
  }

  // The workers' cooperative stop check: the shared flag is cheap to read
  // every node; the controller's clock is consulted every kStopPollStride
  // polls. Any worker observing the controller trip publishes the flag so
  // its peers wind down too.
  bool WorkerShouldStop(WorkerState* w) {
    if (stop_flag_.load(std::memory_order_relaxed)) return true;
    if (controller_ == nullptr) return false;
    if (++w->stop_poll_tick % kStopPollStride != 0) return false;
    if (!controller_->ShouldStop()) return false;
    stop_flag_.store(true, std::memory_order_relaxed);
    return true;
  }

  // Under StorageMode::kMemory a configured budget is a hard limit: the
  // run aborts rather than thrash. kAuto spills instead (in the store) and
  // kDisk is already O(1)-resident. This is the full quiesce-point
  // accounting; mid-window commits run the cheaper store-resident check in
  // CommitOneSlot (worker scratch is in flux while a window runs).
  Status CheckMemoryBudget() {
    if (config_.storage != StorageMode::kMemory || controller_ == nullptr) {
      return Status::OK();
    }
    const int64_t budget = controller_->memory_budget_bytes();
    if (budget <= 0) return Status::OK();
    const int64_t resident = store_->resident_bytes() + AccessorCacheBytes() +
                             ScratchAndPoolBytes();
    if (resident <= budget) return Status::OK();
    ReportBudgetBreach(resident, budget);
    return Status::ResourceExhausted(
        "resident partitions (" + std::to_string(resident) +
        " bytes) exceed the memory budget (" + std::to_string(budget) +
        " bytes); use StorageMode::kAuto to degrade to disk instead");
  }

  const StrippedPartition& EmptySetPartition();

  // Records an emitted dependency for the definitional C⁺ fallback and the
  // covered-rhs pruning masks below. Coordinator-only: workers buffer
  // emissions in NodeOutcome and the merge loop calls this in node order.
  // The restore path passes count=false: its kFdsEmitted total is carried
  // wholesale from the snapshot, so per-dependency increments would double.
  void RecordFd(DiscoveryResult* result, AttributeSet lhs, int rhs,
                double error, bool count = true) {
    result->fds.push_back({lhs, rhs, error});
    if (count) metrics_.Add(0, obs::kFdsEmitted, 1);
    found_lhs_by_rhs_[rhs].push_back(lhs);
    if (lhs.empty()) {
      covered_by_empty_ = covered_by_empty_.With(rhs);
    } else if (lhs.size() == 1) {
      covered_by_singleton_[rhs] =
          covered_by_singleton_[rhs].Union(lhs);
    }
  }

  // True when `lhs` → `rhs` is (approximately) valid, answered from the
  // minimal dependencies discovered so far. Sound for dependencies whose
  // left-hand side is smaller than the current level, because the levelwise
  // sweep has already emitted every minimal dependency below that size.
  bool HoldsByKnownFds(AttributeSet lhs, int rhs) const {
    for (AttributeSet known : found_lhs_by_rhs_[rhs]) {
      if (lhs.ContainsAll(known)) return true;
    }
    return false;
  }

  // Definitional membership test A ∈ C⁺(Y) (paper §4):
  //   C⁺(Y) = {A ∈ R | for all B ∈ Y, Y\{A,B} → B does not hold}.
  // Used when PRUNE needs C⁺ of a set that was never generated because a
  // key beneath it was pruned away; the stored levels have no value for it,
  // but the discovered-FD index answers the defining validity queries.
  bool InDefinitionalCplus(AttributeSet y, int attribute) const {
    for (int b : Members(y)) {
      if (HoldsByKnownFds(y.Without(attribute).Without(b), b)) return false;
    }
    return true;
  }

  // Seeds C⁺ for one candidate of `level_number` (line 2 of
  // COMPUTE-DEPENDENCIES: ∩ of the parents' C⁺, full set at level 1) and
  // applies the covered-rhs pruning. Runs on the coordinator before the
  // level window, so every task starts from its final seeded value.
  AttributeSet SeedCplus(int level_number, AttributeSet set,
                         const std::vector<Node>* parents,
                         const LevelIndex* parent_index) {
    AttributeSet cplus = AttributeSet::FullSet(relation_.num_columns());
    if (level_number > 1) {
      for (int attribute : Members(set)) {
        const int pos = parent_index->Find(set.Without(attribute));
        // Invariant: candidate generation only emits sets whose subsets
        // survived the previous level.
        // tane-lint: allow(tane-check)
        TANE_CHECK(pos >= 0) << "level invariant broken: missing subset of "
                             << set.ToString();
        cplus = cplus.Intersect((*parents)[pos].cplus);
        if (cplus.empty()) break;
      }
    }
    // Covered-rhs pruning: a candidate A outside X is dead once some known
    // dependency lhs' → A has lhs' ⊆ X — every dependency that could still
    // use it would have a left-hand side ⊇ X ⊇ lhs' and thus not be
    // minimal. Checking the ∅- and singleton-lhs dependencies costs O(|R|)
    // per set and is what collapses the search at large ε.
    if (config_.use_covered_rhs_pruning) {
      for (int attribute : Members(cplus.Difference(set))) {
        if (covered_by_empty_.Contains(attribute) ||
            !covered_by_singleton_[attribute].Intersect(set).empty()) {
          cplus = cplus.Without(attribute);
        }
      }
    }
    return cplus;
  }

  // Stop polling cadence for the inner validity-test / product loops.
  static constexpr int64_t kStopPollStride = 64;

  // Auto threshold for UseParallelWindow: below this many total row
  // operations the fan-out/join of a window costs more than the level.
  static constexpr int64_t kAutoParallelMinRowWork = 1 << 15;

  const Relation& relation_;
  // Snapshot to restore before the loop, or nullptr for a fresh run.
  const RunSnapshot* const resume_snapshot_;
  const TaneConfig& config_;
  RunController* const controller_;
  std::unique_ptr<PartitionStore> store_;
  // The interning cache inside store_ (nullptr when disabled); lets the
  // window stage probes on workers and commit verdicts at the frontier.
  PliCache* const pli_cache_;
  const int64_t num_rows_;
  // ⌊ε·|r|⌋: validity threshold for g3 removal and g2 row counts.
  const int64_t max_removals_;
  // ⌊ε·|r|²⌋: validity threshold for g1 ordered-pair counts.
  const int64_t max_pairs_;
  ThreadPool pool_;
  // Shared buffer freelist: stores recycle released CSR arrays here and
  // worker products acquire their output buffers from it. Declared after
  // store_ but never touched by store destructors, so member order is safe.
  PartitionBufferPool buffer_pool_;
  // Run-wide metric shards (one per worker) plus gauges; always on. The
  // DiscoveryStats counters become views over this registry at the end of
  // Run. Declared before workers_ so products can bind to it in the ctor
  // and after store_/buffer_pool_ so teardown order is safe.
  obs::MetricsRegistry metrics_;
  obs::Tracer* const tracer_;
  std::unique_ptr<obs::ProgressMonitor> monitor_;
  // The dispatch kernel every worker's product and g3 scratch uses;
  // resolved once from config.kernel in the ctor (process-lifetime table).
  const KernelOps* kernel_ = nullptr;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  DiscoveryStats stats_;

  // Validity outcomes of the most recent level window, in node order,
  // waiting for the coordinator's MergeOutcomes at the top of the level
  // loop. Filled by RunLevelWindow after its workers quiesce.
  std::vector<NodeOutcome> pending_outcomes_;

  // Cooperative stop state: the flag is written by any worker or the
  // coordinator (mirroring the controller's latched reason); completion_ is
  // coordinator-only. A lone sticky flag needs no multi-word protocol.
  // tane-lint: allow(naked-atomic)
  std::atomic<bool> stop_flag_{false};
  Completion completion_ = Completion::kComplete;

  // Checkpoint bookkeeping (coordinator-only). last_checkpoint_level_ is
  // the deepest level a durable snapshot covers — 0 when none exists.
  int last_checkpoint_level_ = 0;
  int resumed_from_level_ = 0;
  double checkpoint_seconds_ = 0.0;

  // π_∅ and e(∅), needed when testing dependencies ∅ → A at level 1. Built
  // eagerly before the first parallel region (workers only read it).
  std::unique_ptr<StrippedPartition> empty_partition_;
  int64_t empty_error_ = 0;

  // found_lhs_by_rhs_[A] = left-hand sides of every dependency emitted so
  // far with right-hand side A; backs the definitional C⁺ fallback.
  std::vector<std::vector<AttributeSet>> found_lhs_by_rhs_;

  // covered_by_empty_ holds the attributes A with ∅ → A already emitted;
  // covered_by_singleton_[A] holds the B with {B} → A emitted. Both back
  // the covered-rhs pruning (TaneConfig::use_covered_rhs_pruning).
  AttributeSet covered_by_empty_;
  std::vector<AttributeSet> covered_by_singleton_;

  // Resident copies of the single-attribute partitions, kept only in the
  // Schlimmer-style recomputation mode (use_partition_products == false).
  // Written by the level-1 window's commit frontier (serialized under its
  // mutex, in attribute order); read-only once that window ends, so later
  // windows' workers share them without locking.
  std::vector<StrippedPartition> singleton_partitions_;
};

const StrippedPartition& TaneRun::EmptySetPartition() {
  if (empty_partition_ == nullptr) {
    empty_partition_ = std::make_unique<StrippedPartition>(
        PartitionBuilder::ForAttributeSet(relation_, AttributeSet(),
                                          config_.use_stripped_partitions));
  }
  return *empty_partition_;
}

void TaneRun::SamplePeakMemory() {
  // Coordinator-only, between parallel regions. The gauges feed the
  // heartbeat line; stats_.peak_partition_bytes is read back from the peak
  // gauge at the end of the run.
  const int64_t resident = store_->resident_bytes() + AccessorCacheBytes() +
                           ScratchAndPoolBytes();
  metrics_.SetGauge(obs::kResidentBytes, resident);
  metrics_.MaxGauge(obs::kPeakResidentBytes, resident);
  metrics_.SetGauge(obs::kPooledBytes, buffer_pool_.pooled_bytes());
}

Status TaneRun::ReleaseHandles(std::vector<Node>* nodes) {
  for (Node& node : *nodes) {
    if (node.handle >= 0) {
      TANE_RETURN_IF_ERROR(store_->Release(node.handle));
      node.handle = -1;
    }
  }
  ClearAccessors();
  return Status::OK();
}

Status TaneRun::TestValidity(WorkerState* w, int64_t prev_error,
                             int64_t prev_handle, int64_t node_error,
                             const StrippedPartition* fine, bool* valid,
                             double* error, bool* exact_holds) {
  metrics_.Add(w->shard, obs::kValidityTests, 1);
  *exact_holds = (prev_error == node_error);
  *error = 0.0;

  if (config_.epsilon == 0.0) {
    // Lemma 2: X→A holds iff |π_X| = |π_X∪A| iff e(X) = e(X∪A).
    *valid = *exact_holds;
    return Status::OK();
  }

  // Approximate mode: decide error(X\{A} → A) ≤ ε with the violation count
  // compared against the precomputed integer threshold. For g3 the
  // e(·)-based bounds run first (O(1)); the exact partition scan (O(|r|))
  // only when necessary. g1/g2 have no such bounds and always scan.
  if (config_.measure == ErrorMeasure::kG3) {
    const int64_t lower = std::max<int64_t>(0, prev_error - node_error);
    const int64_t upper = prev_error;
    if (config_.use_g3_bounds && lower > max_removals_) {
      metrics_.Add(w->shard, obs::kG3ScansSkipped, 1);
      *valid = false;
      return Status::OK();
    }
    if (config_.use_g3_bounds && !config_.compute_exact_errors &&
        upper <= max_removals_) {
      metrics_.Add(w->shard, obs::kG3ScansSkipped, 1);
      *valid = true;
      *error = num_rows_ == 0 ? 0.0
                              : static_cast<double>(upper) /
                                    static_cast<double>(num_rows_);
      return Status::OK();
    }
  }

  const StrippedPartition* coarse = nullptr;
  if (prev_handle >= 0) {
    // Borrowed via the worker's accessor LRU; the level driver releases
    // every worker's borrows with ReleaseHandles at the level boundary.
    // tane-analyzer: allow(handle-discipline)
    TANE_ASSIGN_OR_RETURN(coarse, w->accessor.Acquire(prev_handle));
  } else {
    coarse = empty_partition_.get();
    // Invariant: the level driver prebuilds the empty-set partition.
    // tane-lint: allow(tane-check)
    TANE_CHECK(coarse != nullptr) << "empty-set partition not prebuilt";
  }
  // Invariant: scan-path callers pass the node's own partition.
  // tane-lint: allow(tane-check)
  TANE_CHECK(fine != nullptr) << "validity scan without the node partition";
  metrics_.Add(w->shard, obs::kG3Scans, 1);
  // The scan walks both operands' member rows; the histogram captures the
  // per-scan cost distribution for the run report.
  metrics_.Record(w->shard, obs::kG3ScanMemberRows,
                  coarse->num_member_rows() + fine->num_member_rows());
  switch (config_.measure) {
    case ErrorMeasure::kG3: {
      TANE_ASSIGN_OR_RETURN(const int64_t removals,
                            w->g3.RemovalCount(*coarse, *fine));
      *valid = removals <= max_removals_;
      *error = num_rows_ == 0 ? 0.0
                              : static_cast<double>(removals) /
                                    static_cast<double>(num_rows_);
      break;
    }
    case ErrorMeasure::kG2: {
      TANE_ASSIGN_OR_RETURN(const int64_t violating_rows,
                            w->g3.ViolatingRowCount(*coarse, *fine));
      *valid = violating_rows <= max_removals_;
      *error = num_rows_ == 0 ? 0.0
                              : static_cast<double>(violating_rows) /
                                    static_cast<double>(num_rows_);
      break;
    }
    case ErrorMeasure::kG1: {
      TANE_ASSIGN_OR_RETURN(const int64_t violating_pairs,
                            w->g3.ViolatingPairCount(*coarse, *fine));
      *valid = violating_pairs <= max_pairs_;
      *error = num_rows_ == 0 ? 0.0
                              : static_cast<double>(violating_pairs) /
                                    (static_cast<double>(num_rows_) *
                                     static_cast<double>(num_rows_));
      break;
    }
  }
  return Status::OK();
}

Status TaneRun::ProcessNode(int level_number, const Node& node,
                            const StrippedPartition* fine,
                            const std::vector<Node>* prev,
                            const LevelIndex* prev_index, WorkerState* w,
                            NodeOutcome* out) {
  // Lines 3-8 for one node: test X\{A} → A for A ∈ X ∩ C⁺(X). The
  // candidate set is snapshot before any test, exactly like the serial
  // loop, so C⁺ updates from this node's own emissions never affect which
  // tests run.
  AttributeSet cplus = node.cplus;
  const AttributeSet candidates = node.set.Intersect(node.cplus);
  for (int attribute : Members(candidates)) {
    const AttributeSet lhs = node.set.Without(attribute);
    int64_t prev_error = empty_error_;
    int64_t prev_handle = -1;
    if (level_number > 1) {
      const int prev_pos = prev_index->Find(lhs);
      // Invariant: candidate generation only emits sets whose
      // subsets survived the previous level.
      // tane-lint: allow(tane-check)
      TANE_CHECK(prev_pos >= 0);
      prev_error = (*prev)[prev_pos].error;
      prev_handle = (*prev)[prev_pos].handle;
    }

    bool valid = false;
    bool exact_holds = false;
    double error = 0.0;
    TANE_RETURN_IF_ERROR(TestValidity(w, prev_error, prev_handle, node.error,
                                      fine, &valid, &error, &exact_holds));
    if (!valid) continue;

    // Line 6: the minimal dependency, buffered for the in-order merge.
    out->emissions.push_back({attribute, error});
    // Line 7: A can no longer be a minimal rhs for any superset.
    cplus = cplus.Without(attribute);
    // Line 8 (exact) / 8' (approximate): Lemma 4.1 strengthening. In the
    // approximate algorithm it applies only when the dependency holds
    // exactly.
    if (config_.use_rhs_plus_pruning &&
        (config_.epsilon == 0.0 || exact_holds)) {
      cplus = cplus.Intersect(node.set);
    }
  }
  out->cplus_after = cplus;
  return Status::OK();
}

Status TaneRun::MergeOutcomes(std::vector<Node>* level,
                              DiscoveryResult* result) {
  // Invariant: the window that built `level` filled one outcome per node.
  // tane-lint: allow(tane-check)
  TANE_CHECK(pending_outcomes_.size() == level->size())
      << "window outcomes out of step with the level";
  // Merge in node order: the emissions and C⁺ updates land exactly as the
  // serial loop would have applied them. Aborting between nodes keeps the
  // result prefix-correct: each emitted dependency passed its own validity
  // test and its minimality rests only on fully completed lower levels, so
  // it also appears in the complete run's output.
  for (size_t i = 0; i < level->size(); ++i) {
    NodeOutcome& out = pending_outcomes_[i];
    if (!out.processed) continue;  // a stop fired before this node ran
    TANE_RETURN_IF_ERROR(out.status);
    Node& node = (*level)[i];
    for (const Emission& emission : out.emissions) {
      RecordFd(result, node.set.Without(emission.attribute),
               emission.attribute, emission.error);
    }
    node.cplus = out.cplus_after;
  }
  pending_outcomes_.clear();
  return Status::OK();
}

Status TaneRun::Prune(int level_number, std::vector<Node>* level,
                      DiscoveryResult* result) {
  LevelIndex index;
  {
    std::vector<AttributeSet> sets;
    sets.reserve(level->size());
    for (const Node& node : *level) sets.push_back(node.set);
    index = LevelIndex(sets);
  }

  for (Node& node : *level) {
    // Rule 1: empty C⁺ means no superset can yield a minimal dependency.
    if (node.cplus.empty()) {
      node.deleted = true;
      continue;
    }
    // Rule 2: key pruning (Lemma 4.2). A set reaching its level with
    // e(X) = 0 is a key: superkeys that are not keys have a key as a proper
    // subset and were therefore never generated.
    if (config_.use_key_pruning && node.error == 0 && num_rows_ > 0) {
      metrics_.Add(0, obs::kKeysFound, 1);
      result->keys.push_back(node.set);
      // Output X → A for rhs⁺ candidates outside X whose minimality is
      // certified by the C⁺ sets of this level (paper PRUNE, lines 5-7).
      if (level_number <= config_.max_lhs_size) {
        for (int attribute : Members(node.cplus.Difference(node.set))) {
          bool minimal = true;
          for (int inside : Members(node.set)) {
            const AttributeSet sibling =
                node.set.With(attribute).Without(inside);
            const int pos = index.Find(sibling);
            if (pos >= 0) {
              if (!(*level)[pos].cplus.Contains(attribute)) {
                minimal = false;
                break;
              }
            } else if (!InDefinitionalCplus(sibling, attribute)) {
              // The sibling was never generated (a key beneath it was
              // pruned); fall back to the definition of C⁺, answered from
              // the dependencies discovered so far.
              minimal = false;
              break;
            }
          }
          if (minimal) {
            RecordFd(result, node.set, attribute, 0.0);
          }
        }
      }
      node.deleted = true;
    }
  }

  // Partitions of deleted nodes are dead: nothing later reads them.
  for (Node& node : *level) {
    if (node.deleted && node.handle >= 0) {
      TANE_RETURN_IF_ERROR(store_->Release(node.handle));
      node.handle = -1;
    }
  }
  ClearAccessors();
  return Status::OK();
}

StatusOr<StrippedPartition> TaneRun::BuildCandidatePartition(
    WorkerState* w, const LevelCandidate& candidate,
    const std::vector<Node>& survivors) {
  if (config_.use_partition_products) {
    // Both parents are borrows through the worker's accessor LRU, released
    // in bulk by ReleaseHandles at the level boundary (see RunLevel).
    // tane-analyzer: allow(handle-discipline)
    TANE_ASSIGN_OR_RETURN(
        const StrippedPartition* a,
        w->accessor.Acquire(survivors[candidate.parent_a].handle));
    // tane-analyzer: allow(handle-discipline)
    TANE_ASSIGN_OR_RETURN(
        const StrippedPartition* b,
        w->accessor.Acquire(survivors[candidate.parent_b].handle));
    metrics_.Add(w->shard, obs::kPartitionProducts, 1);
    // Handles are allocated monotonically and never reused, so handle+1 is
    // a sound content token: consecutive candidates sharing their left
    // parent (common — candidate lists are sorted) skip re-labeling.
    return w->product.Multiply(
        *a, *b, static_cast<uint64_t>(survivors[candidate.parent_a].handle) + 1);
  }
  // Schlimmer-style recomputation: fold the candidate set's singleton
  // partitions, |X|−1 products instead of one.
  const std::vector<int> members = candidate.set.ToIndices();
  StrippedPartition product = singleton_partitions_[members[0]];
  for (size_t i = 1; i < members.size(); ++i) {
    TANE_ASSIGN_OR_RETURN(
        product, w->product.Multiply(product, singleton_partitions_[members[i]]));
    metrics_.Add(w->shard, obs::kPartitionProducts, 1);
  }
  return product;
}

bool TaneRun::UseParallelWindow(int64_t count, int64_t est_row_work) const {
  if (pool_.num_threads() <= 1) return false;
  if (count < 2) return false;
  const int64_t configured = config_.parallel_min_window_rows;
  if (configured == 0) return true;
  if (configured > 0) return est_row_work >= configured;
  // Auto: a lone hardware thread can never overlap the window's work (the
  // deques would only add scheduling overhead on top of a serial
  // execution), and a level whose total row work is tiny loses more to
  // fan-out/join than it can win back. hardware_concurrency() == 0 means
  // "unknown" and gets the benefit of the doubt.
  if (std::thread::hardware_concurrency() == 1) return false;
  return est_row_work >= kAutoParallelMinRowWork;
}

Status TaneRun::CommitOneSlot(WindowContext* ctx, int64_t i) {
  WindowSlot& slot = ctx->slots[i];
  // Invariant: the frontier only reaches published slots.
  // tane-lint: allow(tane-check)
  TANE_CHECK(slot.partition.has_value()) << "commit of an unpublished slot";
  if (!slot.partition->ok()) return slot.partition->status();
  TANE_RETURN_IF_ERROR(slot.outcome.status);
  StrippedPartition partition = std::move(*slot.partition).value();
  slot.partition.reset();

  Node node;
  node.set = (*ctx->in->sets)[i];
  node.cplus = (*ctx->in->cplus)[i];
  node.error = partition.Error();
  node.member_rows = partition.num_member_rows();
  if (ctx->in->stash_singletons) {
    // Fold mode keeps a resident copy next to the stored one; the store
    // gets the copy so the original can live in singleton_partitions_.
    TANE_ASSIGN_OR_RETURN(node.handle, store_->Put(partition));
    singleton_partitions_.push_back(std::move(partition));
  } else if (pli_cache_ != nullptr && slot.has_staged) {
    TANE_ASSIGN_OR_RETURN(
        node.handle, pli_cache_->PutStaged(std::move(partition), slot.staged));
  } else {
    TANE_ASSIGN_OR_RETURN(node.handle, store_->Put(std::move(partition)));
  }
  ctx->nodes.push_back(node);
  metrics_.AddShared(obs::kSetsGenerated, 1);

  if ((i & 15) == 0) {
    // Strided mid-window accounting: worker scratch and accessor caches are
    // in flux, so only the store's resident bytes are sampled here; the
    // full CheckMemoryBudget runs at the window's quiesce point.
    const int64_t resident = store_->resident_bytes();
    metrics_.MaxGauge(obs::kPeakResidentBytes, resident);
    if (config_.storage == StorageMode::kMemory && controller_ != nullptr) {
      const int64_t budget = controller_->memory_budget_bytes();
      if (budget > 0 && resident > budget) {
        ReportBudgetBreach(resident, budget);
        return Status::ResourceExhausted(
            "resident partitions (" + std::to_string(resident) +
            " bytes) exceed the memory budget (" + std::to_string(budget) +
            " bytes); use StorageMode::kAuto to degrade to disk instead");
      }
    }
  }
  return Status::OK();
}

void TaneRun::CommitReadySlots(WindowContext* ctx, bool blocking) {
  if (blocking) {
    ctx->mu.Lock();
  } else if (!ctx->mu.TryLock()) {
    // Somebody else is committing — that is already progress; the caller
    // rechecks the frontier on its next spin.
    return;
  }
  int64_t i = ctx->frontier.load(std::memory_order_relaxed);
  while (i < ctx->count && !ctx->failed.load(std::memory_order_relaxed) &&
         ctx->slots[i].done.load(std::memory_order_acquire) != 0) {
    Status status = CommitOneSlot(ctx, i);
    if (!status.ok()) {
      ctx->status = std::move(status);
      ctx->failed.store(true, std::memory_order_relaxed);
      break;
    }
    ++i;
    ctx->frontier.store(i, std::memory_order_seq_cst);
  }
  ctx->mu.Unlock();
}

Status TaneRun::RunLevelWindow(const WindowInputs& in, const BuildFn& build,
                               std::vector<Node>* next,
                               LevelParallelStats* lp) {
  const int64_t count = static_cast<int64_t>(in.sets->size());
  pending_outcomes_.clear();
  next->clear();
  if (count == 0) return Status::OK();

  WindowContext ctx;
  ctx.count = count;
  ctx.gate = std::max<int64_t>(
      16, static_cast<int64_t>(pool_.num_threads()) * 8);
  ctx.slots = std::make_unique<WindowSlot[]>(count);
  ctx.in = &in;
  {
    MutexLock lock(&ctx.mu);
    ctx.nodes.reserve(count);
  }

  // The deterministic output-buffer plan (product mode): drain the pool
  // once and assign each candidate, in node order, the smallest free buffer
  // that covers its output bound. Unlike slot-local Acquire warm-up, the
  // plan is a pure function of the candidate list — the run-wide allocation
  // count cannot drift with the thread count.
  const bool planned = in.row_bounds != nullptr;
  std::vector<std::vector<int32_t>> planned_rows;
  std::vector<std::vector<int32_t>> planned_offsets;
  std::multimap<size_t, std::vector<int32_t>> free_buffers;
  if (planned) {
    for (std::vector<int32_t>& buffer : buffer_pool_.TakeAll()) {
      const size_t capacity = buffer.capacity();
      free_buffers.emplace(capacity, std::move(buffer));
    }
    planned_rows.resize(count);
    planned_offsets.resize(count);
    const size_t min_size = config_.use_stripped_partitions ? 2 : 1;
    for (int64_t i = 0; i < count; ++i) {
      const size_t row_bound = static_cast<size_t>((*in.row_bounds)[i]);
      const size_t offsets_bound = row_bound / min_size + 1;
      planned_rows[i] = TakePlannedBuffer(&free_buffers, row_bound);
      planned_offsets[i] = TakePlannedBuffer(&free_buffers, offsets_bound);
    }
  }

  // The per-task body, shared by the parallel window and the serial
  // fallback: build the candidate's partition (with its planned buffers),
  // fuse in the validity tests against the parent level, and pre-stage the
  // PLI-cache probe so the commit frontier only has to issue the verdict.
  auto run_task = [&](WorkerState* w, int64_t i) {
    WindowSlot& slot = ctx.slots[i];
    if (planned) {
      w->product.ProvideOutputBuffers(std::move(planned_rows[i]),
                                      std::move(planned_offsets[i]));
    }
    slot.partition.emplace(build(w, i));
    if (!slot.partition->ok()) return;
    const StrippedPartition& built = slot.partition->value();
    Node node;
    node.set = (*in.sets)[i];
    node.cplus = (*in.cplus)[i];
    node.error = built.Error();
    slot.outcome.status = ProcessNode(in.level_number, node, &built,
                                      in.parents, in.parent_index, w,
                                      &slot.outcome);
    slot.outcome.processed = true;
    metrics_.Add(w->shard, obs::kNodesProcessed, 1);
    if (slot.outcome.status.ok() && pli_cache_ != nullptr &&
        !in.stash_singletons) {
      slot.staged = pli_cache_->ProbeStaged(built);
      slot.has_staged = true;
    }
  };

  store_->BeginTaskWindow();
  if (UseParallelWindow(count, in.est_row_work)) {
    if (SpanStack::recording()) {
      // Names the parallel region for the sampling profiler: every worker
      // pushes this label as its root frame for the window's duration.
      char label[kSpanFrameChars];
      std::snprintf(label, sizeof(label), "window level-%d", in.level_number);
      SpanStack::SetCollectiveLabel(label);
    }
    const ParallelForStats region = pool_.ParallelFor(
        count, [&](int worker, int64_t i) {
          WorkerState* w = workers_[worker].get();
          if (ctx.failed.load(std::memory_order_relaxed) ||
              WorkerShouldStop(w)) {
            return;
          }
          // The commit-distance gate. A gated worker helps drain the
          // frontier instead of blocking: the worker holding the minimum
          // uncommitted task is never gated (its gate condition needs the
          // frontier to pass that very task), and owners pop their deques
          // in ascending index order, so the minimum unfinished task is
          // always either running or next in line — the window cannot
          // deadlock and the frontier always advances.
          bool stall_recorded = false;
          while (i >= ctx.frontier.load(std::memory_order_seq_cst) +
                          ctx.gate) {
            if (!stall_recorded) {
              // One event per gate entry, not per spin: the ring holds the
              // *pattern* of stalls, and a spinning worker would otherwise
              // flood its ring in microseconds.
              stall_recorded = true;
              RecordFlight(worker, obs::FlightEventType::kStall, "gate", i,
                           ctx.frontier.load(std::memory_order_relaxed));
            }
            if (ctx.failed.load(std::memory_order_relaxed) ||
                WorkerShouldStop(w)) {
              return;
            }
            CommitReadySlots(&ctx, /*blocking=*/false);
            std::this_thread::yield();
          }
          run_task(w, i);
          ctx.slots[i].done.store(1, std::memory_order_release);
          CommitReadySlots(&ctx, /*blocking=*/false);
        });
    lp->wall_seconds += region.wall_seconds;
    lp->worker_seconds += region.busy_seconds;
    // Workers have quiesced; drain whatever the last TryLock race left.
    CommitReadySlots(&ctx, /*blocking=*/true);
  } else {
    // Serial fallback: same task and commit code on the caller thread, no
    // deques, no gate — the frontier trivially follows the loop index.
    WallTimer serial_timer;
    WorkerState* w = workers_[0].get();
    for (int64_t i = 0;
         i < count && !ctx.failed.load(std::memory_order_relaxed); ++i) {
      if (WorkerShouldStop(w)) break;
      run_task(w, i);
      ctx.slots[i].done.store(1, std::memory_order_release);
      CommitReadySlots(&ctx, /*blocking=*/true);
    }
    const double elapsed = serial_timer.ElapsedSeconds();
    lp->wall_seconds += elapsed;
    lp->worker_seconds += elapsed;
  }
  const Status end_status = store_->EndTaskWindow();

  // Return the plan's unconsumed buffers (never issued, or skipped by a
  // stop) so the next window's planner sees them again.
  if (planned) {
    for (auto& [capacity, buffer] : free_buffers) {
      buffer_pool_.Recycle(std::move(buffer));
    }
    for (std::vector<int32_t>& buffer : planned_rows) {
      if (buffer.capacity() > 0) buffer_pool_.Recycle(std::move(buffer));
    }
    for (std::vector<int32_t>& buffer : planned_offsets) {
      if (buffer.capacity() > 0) buffer_pool_.Recycle(std::move(buffer));
    }
  }

  int64_t committed = 0;
  Status window_status = Status::OK();
  {
    MutexLock lock(&ctx.mu);
    committed = ctx.frontier.load(std::memory_order_relaxed);
    *next = std::move(ctx.nodes);
    window_status = ctx.status;
  }
  pending_outcomes_.reserve(committed);
  for (int64_t i = 0; i < committed; ++i) {
    pending_outcomes_.push_back(std::move(ctx.slots[i].outcome));
  }
  if (!window_status.ok()) {
    LogIgnoredStatus(end_status, "ending the task window");
    return window_status;
  }
  return end_status;
}

Status TaneRun::WriteCheckpoint(int level_number,
                                const std::vector<Node>& survivors,
                                DiscoveryResult* result) {
  WallTimer timer;
  obs::SpanGuard span(tracer_, "checkpoint", &metrics_);
  RunSnapshot snapshot;
  snapshot.config_fingerprint = ConfigFingerprint(config_);
  snapshot.dataset_fingerprint = DatasetFingerprint(relation_);
  snapshot.num_rows = num_rows_;
  snapshot.num_columns = relation_.num_columns();
  snapshot.completed_level = level_number;
  // Emission order, not canonical order: CanonicalizeFds only runs at the
  // end of Run, and the restore path replays these to rebuild the pruning
  // indexes exactly as the interrupted run had them.
  snapshot.fds = result->fds;
  snapshot.keys = result->keys;
  snapshot.counters.sets_generated = metrics_.CounterTotal(obs::kSetsGenerated);
  snapshot.counters.validity_tests = metrics_.CounterTotal(obs::kValidityTests);
  snapshot.counters.g3_scans = metrics_.CounterTotal(obs::kG3Scans);
  snapshot.counters.g3_scans_skipped =
      metrics_.CounterTotal(obs::kG3ScansSkipped);
  snapshot.counters.partition_products =
      metrics_.CounterTotal(obs::kPartitionProducts);
  snapshot.counters.keys_found = metrics_.CounterTotal(obs::kKeysFound);
  snapshot.counters.nodes_processed =
      metrics_.CounterTotal(obs::kNodesProcessed);
  snapshot.counters.fds_emitted = metrics_.CounterTotal(obs::kFdsEmitted);
  snapshot.counters.max_level_size = metrics_.gauge(obs::kMaxLevelSize);
  snapshot.level_parallel = stats_.level_parallel;
  snapshot.survivors.reserve(survivors.size());
  {
    obs::SpanGuard serialize_span(tracer_, "checkpoint-serialize", &metrics_);
    for (const Node& node : survivors) {
      SnapshotNode stored;
      stored.set = node.set;
      stored.cplus = node.cplus;
      stored.error = node.error;
      const StrippedPartition* partition = store_->Peek(node.handle);
      StrippedPartition owned;
      if (partition == nullptr) {
        TANE_ASSIGN_OR_RETURN(owned, store_->Get(node.handle));
        partition = &owned;
      }
      stored.partition_bytes = SerializePartition(*partition);
      snapshot.survivors.push_back(std::move(stored));
      metrics_.Add(0, obs::kCheckpointNodesWritten, 1);
    }
    serialize_span.AddArg("nodes",
                          static_cast<int64_t>(snapshot.survivors.size()));
  }
  int64_t bytes = 0;
  {
    // The serialize loop above is CPU (partition encode); this is the
    // durable write. Separating them in the trace tells fsync stalls
    // apart from encode cost.
    obs::SpanGuard write_span(tracer_, "checkpoint-write", &metrics_);
    TANE_ASSIGN_OR_RETURN(
        bytes, WriteSnapshot(config_.checkpoint_directory, snapshot));
    write_span.AddArg("bytes", bytes);
  }
  metrics_.Add(0, obs::kCheckpointWrites, 1);
  metrics_.Add(0, obs::kCheckpointBytesWritten, bytes);
  metrics_.SetGauge(obs::kCheckpointLastLevel, level_number);
  last_checkpoint_level_ = level_number;
  checkpoint_seconds_ += timer.ElapsedSeconds();
  span.AddArg("level", level_number);
  span.AddArg("nodes", static_cast<int64_t>(snapshot.survivors.size()));
  span.AddArg("bytes", bytes);
  RecordFlight(-1, obs::FlightEventType::kCheckpointWrite, "snapshot", bytes,
               static_cast<int64_t>(snapshot.survivors.size()));
  return Status::OK();
}

Status TaneRun::RestoreFromSnapshot(const RunSnapshot& snapshot,
                                    DiscoveryResult* result,
                                    std::vector<Node>* survivors) {
  obs::SpanGuard span(tracer_, "restore", &metrics_);
  metrics_.Add(0, obs::kCheckpointReads, 1);
  metrics_.Add(0, obs::kCheckpointBytesRead, snapshot.serialized_bytes);
  span.AddArg("level", snapshot.completed_level);
  span.AddArg("nodes", static_cast<int64_t>(snapshot.survivors.size()));
  span.AddArg("bytes", snapshot.serialized_bytes);
  RecordFlight(-1, obs::FlightEventType::kCheckpointRestore, "snapshot",
               snapshot.serialized_bytes,
               static_cast<int64_t>(snapshot.survivors.size()));
  // Replaying the dependencies in emission order rebuilds found_lhs_by_rhs_
  // and the covered-rhs masks byte-for-byte; the carried counters restore
  // the work totals those emissions represent.
  for (const FunctionalDependency& fd : snapshot.fds) {
    RecordFd(result, fd.lhs, fd.rhs, fd.error, /*count=*/false);
  }
  result->keys = snapshot.keys;
  result->completed_levels = snapshot.completed_level;
  stats_.levels_processed = snapshot.completed_level;
  stats_.level_parallel = snapshot.level_parallel;
  const SnapshotCounters& carried = snapshot.counters;
  metrics_.Add(0, obs::kSetsGenerated, carried.sets_generated);
  metrics_.Add(0, obs::kValidityTests, carried.validity_tests);
  metrics_.Add(0, obs::kG3Scans, carried.g3_scans);
  metrics_.Add(0, obs::kG3ScansSkipped, carried.g3_scans_skipped);
  metrics_.Add(0, obs::kPartitionProducts, carried.partition_products);
  metrics_.Add(0, obs::kKeysFound, carried.keys_found);
  metrics_.Add(0, obs::kNodesProcessed, carried.nodes_processed);
  metrics_.Add(0, obs::kFdsEmitted, carried.fds_emitted);
  metrics_.MaxGauge(obs::kMaxLevelSize, carried.max_level_size);
  metrics_.SetGauge(obs::kResumedFromLevel, snapshot.completed_level);
  metrics_.SetGauge(obs::kCheckpointLastLevel, snapshot.completed_level);
  resumed_from_level_ = snapshot.completed_level;
  // The loaded file still covers this level; don't rewrite it on wind-down.
  last_checkpoint_level_ = snapshot.completed_level;

  // Survivor partitions rehydrate through the regular Put path, so the
  // store chain (spill, budget accounting, PLI interning) treats them
  // exactly like partitions the run computed itself. member_rows is
  // relation-derived state the snapshot format deliberately omits.
  survivors->reserve(snapshot.survivors.size());
  for (const SnapshotNode& stored : snapshot.survivors) {
    TANE_ASSIGN_OR_RETURN(StrippedPartition partition,
                          DeserializePartition(stored.partition_bytes));
    Node node;
    node.set = stored.set;
    node.cplus = stored.cplus;
    node.error = stored.error;
    node.member_rows = partition.num_member_rows();
    TANE_ASSIGN_OR_RETURN(node.handle, store_->Put(std::move(partition)));
    survivors->push_back(node);
    metrics_.Add(0, obs::kCheckpointNodesRestored, 1);
  }
  SamplePeakMemory();
  TANE_RETURN_IF_ERROR(CheckMemoryBudget());
  // Relation-derived state the snapshot deliberately omits: the fold-mode
  // singleton partitions are rebuilt from the input, bit-identical to the
  // interrupted run's.
  if (!config_.use_partition_products) {
    singleton_partitions_.reserve(relation_.num_columns());
    for (int attribute = 0; attribute < relation_.num_columns(); ++attribute) {
      singleton_partitions_.push_back(PartitionBuilder::ForAttribute(
          relation_, attribute, config_.use_stripped_partitions));
    }
  }
  return Status::OK();
}

StatusOr<bool> TaneRun::AdvanceLevel(int level_number,
                                     std::vector<Node>* survivors,
                                     std::vector<Node>* current,
                                     DiscoveryResult* result) {
  if (checkpointing() && config_.checkpoint_every_level &&
      last_checkpoint_level_ < level_number) {
    TANE_RETURN_IF_ERROR(WriteCheckpoint(level_number, *survivors, result));
  }
  if (config_.stop_after_level > 0 &&
      level_number >= config_.stop_after_level) {
    completion_ = Completion::kSuspended;
    TANE_RETURN_IF_ERROR(
        MaybeWindDownCheckpoint(level_number, *survivors, result));
    TANE_RETURN_IF_ERROR(ReleaseHandles(survivors));
    return false;
  }
  // Level boundary: the controller is always consulted between a fully
  // processed level and the generation of the next one. Survivor handles
  // are still live here, which is what makes the wind-down snapshot
  // possible at all — this is the last moment the level's partitions exist.
  if (PollStop()) {
    TANE_RETURN_IF_ERROR(
        MaybeWindDownCheckpoint(level_number, *survivors, result));
    TANE_RETURN_IF_ERROR(ReleaseHandles(survivors));
    return false;
  }

  // GENERATE-NEXT-LEVEL with partitions as products of two parents
  // (Lemma 3), fused with the next level's validity tests: each candidate
  // becomes one task of a level window, runnable the moment its parent
  // partitions exist (they all do — the parents are the survivors), and
  // committed in candidate order so handles and e(·) values are
  // deterministic. The commit-distance gate bounds partitions resident
  // outside the store to O(threads), like the old batched generator.
  std::vector<AttributeSet> survivor_sets;
  survivor_sets.reserve(survivors->size());
  for (const Node& node : *survivors) survivor_sets.push_back(node.set);
  std::vector<LevelCandidate> candidates;
  {
    obs::SpanGuard span(tracer_, "generate", &metrics_);
    candidates = GenerateNextLevel(survivor_sets);
  }
  if (candidates.empty()) {
    // Nothing above this level: the loop exits without entering a new
    // level, so no timing row is pushed for one.
    TANE_RETURN_IF_ERROR(ReleaseHandles(survivors));
    current->clear();
    return true;
  }
  const LevelIndex survivor_index(survivor_sets);

  const int next_level = level_number + 1;
  std::vector<AttributeSet> sets(candidates.size());
  std::vector<AttributeSet> cplus(candidates.size());
  std::vector<int64_t> row_bounds(candidates.size());
  int64_t est_row_work = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    sets[i] = candidates[i].set;
    cplus[i] = SeedCplus(next_level, sets[i], survivors, &survivor_index);
    row_bounds[i] =
        std::min((*survivors)[candidates[i].parent_a].member_rows,
                 (*survivors)[candidates[i].parent_b].member_rows);
    est_row_work += row_bounds[i];
  }

  // The next level's timing row is pushed before its window so the fused
  // build+validate time lands on the level it creates; a wind-down below
  // pops it again, keeping one row per entered level.
  {
    LevelParallelStats row;
    row.level = next_level;
    row.nodes = static_cast<int64_t>(candidates.size());
    stats_.level_parallel.push_back(row);
  }

  WindowInputs in;
  in.level_number = next_level;
  in.sets = &sets;
  in.cplus = &cplus;
  in.parents = survivors;
  in.parent_index = &survivor_index;
  in.row_bounds = config_.use_partition_products ? &row_bounds : nullptr;
  in.est_row_work = est_row_work;
  std::vector<Node> next;
  Status window_status;
  {
    obs::SpanGuard span(tracer_, "products", &metrics_);
    // Kernel attribution is per-span, not per-dispatch: a counter read per
    // product would cost two syscalls on the hottest path. The dispatched
    // kernel is constant for the run, so the span arg loses nothing.
    span.AddArg("kernel_kind", static_cast<int64_t>(kernel_->kind));
    window_status = RunLevelWindow(
        in,
        [&](WorkerState* w, int64_t i) {
          return BuildCandidatePartition(w, candidates[i], *survivors);
        },
        &next, &stats_.level_parallel.back());
  }
  if (window_status.ok() && !stopped()) {
    // Quiesce point: full memory accounting now that worker scratch and
    // accessor caches are stable again.
    SamplePeakMemory();
    window_status = CheckMemoryBudget();
  }
  if (!window_status.ok()) {
    // Hard error (store I/O, budget breach): snapshot the level boundary
    // while the survivors are still live — a budget breach under
    // checkpointing becomes a resumable failure the caller can retry with
    // a different storage plan — then release everything before surfacing
    // it. The window error takes precedence over cleanup failures, but
    // those still get a log line each.
    stats_.level_parallel.pop_back();
    LogIgnoredStatus(
        MaybeWindDownCheckpoint(level_number, *survivors, result),
        "checkpoint during error wind-down");
    LogIgnoredStatus(ReleaseHandles(&next), "releasing next level");
    LogIgnoredStatus(ReleaseHandles(survivors), "releasing survivors");
    return window_status;
  }
  if (stopped()) {
    // Stopped while building the next level: its committed prefix was
    // validated but never merged or pruned, so it contributes nothing —
    // drop it. The survivor level is still a valid boundary, so it is
    // snapshot for resume.
    LatchCompletion();
    stats_.level_parallel.pop_back();
    pending_outcomes_.clear();
    TANE_RETURN_IF_ERROR(ReleaseHandles(&next));
    TANE_RETURN_IF_ERROR(
        MaybeWindDownCheckpoint(level_number, *survivors, result));
    TANE_RETURN_IF_ERROR(ReleaseHandles(survivors));
    return false;
  }

  // The window consumed the survivors completely — products and validity
  // scans both ran inside it — so their partitions are dead in every mode.
  TANE_RETURN_IF_ERROR(ReleaseHandles(survivors));
  *current = std::move(next);
  return true;
}

Status TaneRun::Run(DiscoveryResult* result) {
  WallTimer timer;
  // Held in an optional so the wind-down below can close it before the
  // final metrics snapshot — the "run" hw phase must be aggregated by the
  // time the snapshot that feeds the report is taken.
  std::optional<obs::SpanGuard> run_span;
  run_span.emplace(tracer_, "run", &metrics_);
  if (config_.progress_period_seconds > 0.0) {
    obs::ProgressMonitor::Options options;
    options.period_seconds = config_.progress_period_seconds;
    options.controller = controller_;
    monitor_ = std::make_unique<obs::ProgressMonitor>(&metrics_, options);
    monitor_->Start();
  }
  const int num_attributes = relation_.num_columns();
  empty_error_ = num_rows_ > 0 ? num_rows_ - 1 : 0;
  found_lhs_by_rhs_.assign(num_attributes, {});
  covered_by_singleton_.assign(num_attributes, AttributeSet());
  stats_.num_threads = config_.num_threads;
  if (config_.epsilon > 0.0) {
    // π_∅ backs the level-1 tests ∅ → A; build it before workers can race
    // to create it lazily.
    (void)EmptySetPartition();
  }

  std::vector<Node> current;
  int level_number = 1;

  if (resume_snapshot_ != nullptr) {
    // Resume: rebuild the boundary state of the checkpointed level and
    // re-enter the lattice through the same advance path the loop uses.
    std::vector<Node> survivors;
    TANE_RETURN_IF_ERROR(
        RestoreFromSnapshot(*resume_snapshot_, result, &survivors));
    level_number = resume_snapshot_->completed_level;
    if (stats_.level_parallel.empty()) {
      // Defensive: a well-formed snapshot always carries its level rows.
      LevelParallelStats row;
      row.level = level_number;
      row.nodes = static_cast<int64_t>(survivors.size());
      stats_.level_parallel.push_back(row);
    }
    TANE_ASSIGN_OR_RETURN(
        const bool advanced,
        AdvanceLevel(level_number, &survivors, &current, result));
    if (advanced) ++level_number;
    // !advanced leaves `current` empty, skipping the loop: the run wound
    // down again (suspend, stop, ...) before making progress.
  } else if (num_attributes > 0) {
    // L_1 := {{A} | A ∈ R}, with partitions computed from the database
    // through the same fused window as every later level: build + validity
    // tests in one task per attribute. Its timing row is pushed first so
    // the level-1 work lands on the level-1 row.
    {
      LevelParallelStats row;
      row.level = 1;
      row.nodes = num_attributes;
      stats_.level_parallel.push_back(row);
    }
    std::vector<AttributeSet> sets(num_attributes);
    std::vector<AttributeSet> cplus(num_attributes);
    for (int attribute = 0; attribute < num_attributes; ++attribute) {
      sets[attribute] = AttributeSet::Singleton(attribute);
      cplus[attribute] = SeedCplus(1, sets[attribute], nullptr, nullptr);
    }
    WindowInputs in;
    in.level_number = 1;
    in.sets = &sets;
    in.cplus = &cplus;
    in.stash_singletons = !config_.use_partition_products;
    in.est_row_work = static_cast<int64_t>(num_attributes) * num_rows_;
    if (in.stash_singletons) singleton_partitions_.reserve(num_attributes);
    Status seed_status;
    {
      obs::SpanGuard span(tracer_, "base-partitions", &metrics_);
      seed_status = RunLevelWindow(
          in,
          [&](WorkerState*, int64_t i) {
            return StatusOr<StrippedPartition>(PartitionBuilder::ForAttribute(
                relation_, static_cast<int>(i),
                config_.use_stripped_partitions));
          },
          &current, &stats_.level_parallel.back());
    }
    TANE_RETURN_IF_ERROR(seed_status);
    if (stopped()) {
      // Stopped during seeding: nothing was merged, so the partial level 1
      // contributes nothing; drop it — including its timing row, since the
      // level was never entered.
      LatchCompletion();
      stats_.level_parallel.pop_back();
      pending_outcomes_.clear();
      TANE_RETURN_IF_ERROR(ReleaseHandles(&current));
      current.clear();
    }
    SamplePeakMemory();
    TANE_RETURN_IF_ERROR(CheckMemoryBudget());
  }

  while (!current.empty()) {
    stats_.levels_processed = level_number;
    metrics_.SetGauge(obs::kCurrentLevel, level_number);
    metrics_.SetGauge(obs::kLevelNodesTotal,
                      static_cast<int64_t>(current.size()));
    metrics_.SetGauge(obs::kLevelNodesStart,
                      metrics_.CounterTotal(obs::kNodesProcessed));
    metrics_.MaxGauge(obs::kMaxLevelSize,
                      static_cast<int64_t>(current.size()));
    obs::SpanGuard level_span(
        tracer_, "level " + std::to_string(level_number), &metrics_);
    RecordFlight(0, obs::FlightEventType::kLevel, "level", level_number,
                 static_cast<int64_t>(current.size()));
    // The level's timing row was pushed by whichever window built it
    // (AdvanceLevel, the seeding window, or the resume prologue).
    // tane-lint: allow(tane-check)
    TANE_CHECK(!stats_.level_parallel.empty() &&
               stats_.level_parallel.back().level == level_number)
        << "level timing row out of step with the loop";

    {
      // The window already ran this level's validity tests; what remains is
      // the serial in-node-order merge of emissions and C⁺ updates.
      obs::SpanGuard span(tracer_, "validity", &metrics_);
      span.AddArg("kernel_kind", static_cast<int64_t>(kernel_->kind));
      TANE_RETURN_IF_ERROR(MergeOutcomes(&current, result));
    }
    {
      obs::SpanGuard span(tracer_, "prune", &metrics_);
      TANE_RETURN_IF_ERROR(Prune(level_number, &current, result));
    }
    result->completed_levels = level_number;

    std::vector<Node> survivors;
    survivors.reserve(current.size());
    for (Node& node : current) {
      if (!node.deleted) survivors.push_back(std::move(node));
    }
    current.clear();

    if (survivors.empty() || level_number >= config_.max_lhs_size + 1) {
      // The search is finished — nothing above this level can be generated.
      TANE_RETURN_IF_ERROR(ReleaseHandles(&survivors));
      break;
    }

    TANE_ASSIGN_OR_RETURN(
        const bool advanced,
        AdvanceLevel(level_number, &survivors, &current, result));
    if (!advanced) break;
    ++level_number;
  }

  CanonicalizeFds(&result->fds);
  std::sort(result->keys.begin(), result->keys.end());
  LatchCompletion();
  result->completion = completion_;
  if (checkpointing()) {
    if (completion_ == Completion::kComplete) {
      // The results are now the durable artifact; stale snapshots would
      // only let a later --resume replay a finished search.
      TANE_RETURN_IF_ERROR(RemoveSnapshots(config_.checkpoint_directory));
      metrics_.SetGauge(obs::kCheckpointLastLevel, 0);
      last_checkpoint_level_ = 0;
    }
    result->resumable =
        completion_ != Completion::kComplete && last_checkpoint_level_ > 0;
  }
  if (monitor_ != nullptr) {
    monitor_->Stop();  // emits the final heartbeat line
    monitor_.reset();
  }
  stats_.spill_bytes_written = store_->bytes_written();
  stats_.wall_seconds = timer.ElapsedSeconds();

  // The legacy counters are views over the registry: one snapshot fills
  // them all, and the same snapshot ships in the result for the run report
  // and the bench emitters — the two can never disagree. Close the run
  // span first so its hw delta is part of that snapshot.
  run_span.reset();
  const obs::MetricsSnapshot snapshot = metrics_.Snapshot();
  stats_.sets_generated = snapshot.counter(obs::kSetsGenerated);
  stats_.max_level_size = snapshot.gauge(obs::kMaxLevelSize);
  stats_.validity_tests = snapshot.counter(obs::kValidityTests);
  stats_.g3_scans = snapshot.counter(obs::kG3Scans);
  stats_.g3_scans_skipped = snapshot.counter(obs::kG3ScansSkipped);
  stats_.partition_products = snapshot.counter(obs::kPartitionProducts);
  stats_.product_allocations = snapshot.counter(obs::kProductAllocations);
  stats_.product_rows_scanned = snapshot.counter(obs::kProductRowsScanned);
  stats_.product_label_reuses = snapshot.counter(obs::kProductLabelReuses);
  stats_.g3_rows_scanned = snapshot.counter(obs::kG3RowsScanned);
  stats_.kernel = std::string(KernelKindName(kernel_->kind));
  stats_.keys_found = snapshot.counter(obs::kKeysFound);
  stats_.peak_partition_bytes = snapshot.gauge(obs::kPeakResidentBytes);
  stats_.checkpoint_writes = snapshot.counter(obs::kCheckpointWrites);
  stats_.checkpoint_bytes = snapshot.counter(obs::kCheckpointBytesWritten);
  stats_.checkpoint_seconds = checkpoint_seconds_;
  stats_.resumed_from_level = resumed_from_level_;
  result->stats = stats_;
  result->metrics = snapshot;
  return Status::OK();
}

}  // namespace

StatusOr<DiscoveryResult> Tane::Discover(const Relation& relation,
                                         const TaneConfig& config) {
  TANE_RETURN_IF_ERROR(config.Validate());
  if (relation.num_columns() > kMaxAttributes) {
    return Status::InvalidArgument("relation has too many attributes");
  }

  // Resume loads the latest snapshot up front so fingerprint mismatches are
  // rejected before any partition work starts. A missing snapshot falls
  // back to a fresh run (schedulers can pass resume unconditionally);
  // corruption and I/O failures surface as-is.
  std::unique_ptr<RunSnapshot> resume_snapshot;
  if (config.resume) {
    StatusOr<RunSnapshot> loaded =
        LoadLatestSnapshot(config.checkpoint_directory);
    if (loaded.ok()) {
      if (loaded->config_fingerprint != ConfigFingerprint(config)) {
        return Status::FailedPrecondition(
            "refusing to resume: the snapshot in '" +
            config.checkpoint_directory +
            "' was written under a different configuration");
      }
      if (loaded->dataset_fingerprint != DatasetFingerprint(relation) ||
          loaded->num_rows != relation.num_rows() ||
          loaded->num_columns != relation.num_columns()) {
        return Status::FailedPrecondition(
            "refusing to resume: the snapshot in '" +
            config.checkpoint_directory +
            "' was written for a different dataset");
      }
      resume_snapshot = std::make_unique<RunSnapshot>(std::move(*loaded));
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }

  std::unique_ptr<PartitionStore> store;
  AutoPartitionStore* auto_store = nullptr;
  if (config.storage == StorageMode::kDisk) {
    TANE_ASSIGN_OR_RETURN(auto disk_store,
                          DiskPartitionStore::Open(config.spill_directory));
    store = std::move(disk_store);
  } else if (config.storage == StorageMode::kAuto) {
    const int64_t budget = config.run_controller != nullptr
                               ? config.run_controller->memory_budget_bytes()
                               : 0;
    auto owned = std::make_unique<AutoPartitionStore>(budget,
                                                      config.spill_directory);
    auto_store = owned.get();
    store = std::move(owned);
  } else {
    store = std::make_unique<MemoryPartitionStore>();
  }

  // The interning PLI cache decorates whichever store was chosen; outer
  // handles behave exactly like the raw store's, so the run is oblivious.
  PliCache* pli_cache = nullptr;
  if (config.use_pli_cache) {
    auto cache = std::make_unique<PliCache>(std::move(store));
    pli_cache = cache.get();
    store = std::move(cache);
  }

  DiscoveryResult result;
  TaneRun run(relation, config, std::move(store), pli_cache,
              resume_snapshot.get());
  TANE_RETURN_IF_ERROR(run.Run(&result));
  if (auto_store != nullptr) {
    result.stats.degraded_to_disk = auto_store->spilled();
  }
  if (pli_cache != nullptr) {
    const PliCacheStats cache_stats = pli_cache->stats();
    result.stats.pli_cache_lookups = cache_stats.lookups;
    result.stats.pli_cache_hits = cache_stats.hits;
    result.stats.pli_cache_misses = cache_stats.misses;
    result.stats.pli_cache_bytes_saved = cache_stats.bytes_saved;
  }
  return result;
}

}  // namespace tane
