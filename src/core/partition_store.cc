#include "core/partition_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/mutex.h"

namespace tane {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// MemoryPartitionStore

StatusOr<int64_t> MemoryPartitionStore::Put(StrippedPartition partition) {
  const int64_t handle = next_handle_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = stripes_[handle & (kStripes - 1)];
  WriterMutexLock lock(&stripe.mu);
  stripe.resident_bytes += partition.EstimatedBytes();
  stripe.partitions.emplace(handle, std::move(partition));
  return handle;
}

StatusOr<StrippedPartition> MemoryPartitionStore::Get(int64_t handle) {
  const Stripe& stripe = stripes_[handle & (kStripes - 1)];
  ReaderMutexLock lock(&stripe.mu);
  auto it = stripe.partitions.find(handle);
  if (it == stripe.partitions.end()) {
    return Status::NotFound("no partition with handle " +
                            std::to_string(handle));
  }
  return it->second;
}

const StrippedPartition* MemoryPartitionStore::Peek(int64_t handle) const {
  const Stripe& stripe = stripes_[handle & (kStripes - 1)];
  ReaderMutexLock lock(&stripe.mu);
  auto it = stripe.partitions.find(handle);
  // The pointer outlives the lock: elements of an unordered_map are stable
  // until erased, so concurrent Puts (this stripe or any other) never move
  // the partition; only Release of this handle invalidates the pointer.
  return it == stripe.partitions.end() ? nullptr : &it->second;
}

Status MemoryPartitionStore::Release(int64_t handle) {
  Stripe& stripe = stripes_[handle & (kStripes - 1)];
  WriterMutexLock lock(&stripe.mu);
  auto it = stripe.partitions.find(handle);
  if (it == stripe.partitions.end()) {
    return Status::NotFound("release of unknown handle " +
                            std::to_string(handle));
  }
  stripe.resident_bytes -= it->second.EstimatedBytes();
  PartitionBufferPool* pool = pool_.load(std::memory_order_acquire);
  if (pool != nullptr) pool->Recycle(std::move(it->second));
  stripe.partitions.erase(it);
  return Status::OK();
}

int64_t MemoryPartitionStore::resident_bytes() const {
  int64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    ReaderMutexLock lock(&stripe.mu);
    total += stripe.resident_bytes;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Serialization

namespace {

constexpr uint32_t kPartitionMagic = 0x54414E45;  // "TANE"

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPod(std::string_view* in, T* value) {
  if (in->size() < sizeof(T)) return false;
  std::memcpy(value, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}

}  // namespace

std::string SerializePartition(const StrippedPartition& partition) {
  std::string out;
  const auto& rows = partition.row_ids();
  const auto& offsets = partition.class_offsets();
  out.reserve(32 + (rows.size() + offsets.size()) * sizeof(int32_t));
  AppendPod(&out, kPartitionMagic);
  AppendPod(&out, static_cast<uint8_t>(partition.stripped() ? 1 : 0));
  AppendPod(&out, partition.num_rows());
  AppendPod(&out, static_cast<int64_t>(rows.size()));
  AppendPod(&out, static_cast<int64_t>(offsets.size()));
  // Empty vectors may have a null data(); append/memcpy forbid that even
  // for zero sizes.
  if (!rows.empty()) {
    out.append(reinterpret_cast<const char*>(rows.data()),
               rows.size() * sizeof(int32_t));
  }
  if (!offsets.empty()) {
    out.append(reinterpret_cast<const char*>(offsets.data()),
               offsets.size() * sizeof(int32_t));
  }
  return out;
}

StatusOr<StrippedPartition> DeserializePartition(std::string_view bytes) {
  uint32_t magic = 0;
  uint8_t stripped = 0;
  int64_t num_rows = 0, num_member_rows = 0, num_offsets = 0;
  if (!ReadPod(&bytes, &magic) || magic != kPartitionMagic) {
    return Status::InvalidArgument("bad partition magic");
  }
  if (!ReadPod(&bytes, &stripped) || !ReadPod(&bytes, &num_rows) ||
      !ReadPod(&bytes, &num_member_rows) || !ReadPod(&bytes, &num_offsets)) {
    return Status::InvalidArgument("truncated partition header");
  }
  if (num_rows < 0 || num_member_rows < 0 || num_offsets < 1) {
    return Status::InvalidArgument("corrupt partition header");
  }
  const size_t payload =
      (static_cast<size_t>(num_member_rows) + num_offsets) * sizeof(int32_t);
  if (bytes.size() != payload) {
    return Status::InvalidArgument("partition payload size mismatch");
  }
  std::vector<int32_t> row_ids(num_member_rows);
  std::vector<int32_t> offsets(num_offsets);
  if (num_member_rows > 0) {
    std::memcpy(row_ids.data(), bytes.data(),
                num_member_rows * sizeof(int32_t));
  }
  std::memcpy(offsets.data(), bytes.data() + num_member_rows * sizeof(int32_t),
              num_offsets * sizeof(int32_t));
  return StrippedPartition::Create(num_rows, std::move(row_ids),
                                   std::move(offsets), stripped != 0);
}

// ---------------------------------------------------------------------------
// DiskPartitionStore

StatusOr<std::unique_ptr<DiskPartitionStore>> DiskPartitionStore::Open(
    std::string directory) {
  std::error_code ec;
  bool owns = false;
  if (directory.empty()) {
    fs::path base = fs::temp_directory_path(ec);
    if (ec) return Status::IoError("no temp directory: " + ec.message());
    // Pick an unused name; PIDs and a counter keep concurrent runs apart.
    static int counter = 0;
    for (int attempt = 0; attempt < 1000; ++attempt) {
      fs::path candidate =
          base / ("tane-spill-" + std::to_string(::getpid()) + "-" +
                  std::to_string(counter++));
      if (fs::create_directory(candidate, ec) && !ec) {
        directory = candidate.string();
        owns = true;
        break;
      }
    }
    if (directory.empty()) {
      return Status::IoError("could not create a spill directory");
    }
  } else if (!fs::exists(directory, ec)) {
    if (!fs::create_directories(directory, ec) || ec) {
      return Status::IoError("cannot create spill directory " + directory +
                             ": " + ec.message());
    }
    owns = true;
  }
  // Private constructor: make_unique cannot reach it, so the raw new is
  // wrapped immediately. tane-lint: allow(naked-new)
  return std::unique_ptr<DiskPartitionStore>(
      new DiskPartitionStore(std::move(directory), owns));
}

DiskPartitionStore::~DiskPartitionStore() {
  std::error_code ec;
  for (size_t segment = 0; segment < segments_.size(); ++segment) {
    if (segments_[segment].fd >= 0) {
      ::close(segments_[segment].fd);
      fs::remove(SegmentPath(static_cast<int32_t>(segment)), ec);
    }
  }
  if (owns_directory_) fs::remove_all(directory_, ec);
}

std::string DiskPartitionStore::SegmentPath(int32_t segment) const {
  return (fs::path(directory_) / ("seg" + std::to_string(segment) + ".bin"))
      .string();
}

Status DiskPartitionStore::OpenNewSegment() {
  const int32_t id = static_cast<int32_t>(segments_.size());
  const std::string path = SegmentPath(id);
  TANE_INJECT_FAILPOINT("disk_store.open_segment");
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) {
    const int err = errno;
    // O_CREAT can leave an empty file behind on some failures; don't.
    std::error_code ec;
    fs::remove(path, ec);
    return Status::IoError("cannot create segment " + path + ": " +
                           std::strerror(err));
  }
  segments_.push_back(Segment{fd, 0, 0, false});
  return Status::OK();
}

Status DiskPartitionStore::WriteRecordOnce(int fd, std::string_view record,
                                           int64_t offset) {
  TANE_INJECT_FAILPOINT("disk_store.put");
  size_t written = 0;
  while (written < record.size()) {
    const ssize_t n =
        ::pwrite(fd, record.data() + written, record.size() - written,
                 offset + static_cast<int64_t>(written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status DiskPartitionStore::ReadRecordOnce(int fd, char* buffer, int64_t size,
                                          int64_t offset) {
  TANE_INJECT_FAILPOINT("disk_store.get");
  int64_t read = 0;
  while (read < size) {
    const ssize_t n = ::pread(fd, buffer + read, size - read, offset + read);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IoError("segment truncated");
    read += n;
  }
  return Status::OK();
}

void DiskPartitionStore::CleanupFailedWrite(int32_t segment_id) {
  Segment& segment = segments_[segment_id];
  if (segment.fd < 0) return;
  if (segment.live_partitions == 0) {
    // Nothing durable lives here: drop the whole torn segment file.
    ::close(segment.fd);
    segment.fd = -1;
    segment.sealed = true;
    std::error_code ec;
    fs::remove(SegmentPath(segment_id), ec);
    return;
  }
  // Earlier records are still live; just cut the partial record off. The
  // truncate is best-effort (the primary write error is already being
  // surfaced), but a failure means a torn record stays on disk — log it.
  if (::ftruncate(segment.fd, segment.bytes) != 0) {
    TANE_LOG(Warning) << "could not truncate torn spill record in "
                      << SegmentPath(segment_id) << ": "
                      << std::strerror(errno);
  }
}

void DiskPartitionStore::DropSegmentIfDead(int32_t segment_id) {
  Segment& segment = segments_[segment_id];
  if (segment.fd < 0 || !segment.sealed || segment.live_partitions > 0) {
    return;
  }
  ::close(segment.fd);
  segment.fd = -1;
  std::error_code ec;
  fs::remove(SegmentPath(segment_id), ec);
}

StatusOr<int64_t> DiskPartitionStore::Put(StrippedPartition partition) {
  WriterMutexLock lock(&mu_);
  if (segments_.empty() || segments_.back().sealed) {
    TANE_RETURN_IF_ERROR(OpenNewSegment());
  }
  const int32_t segment_id = static_cast<int32_t>(segments_.size()) - 1;
  Segment& segment = segments_[segment_id];

  // Record layout: CRC32 of the payload, then the serialized partition.
  std::string record;
  {
    const std::string payload = SerializePartition(partition);
    record.reserve(sizeof(uint32_t) + payload.size());
    AppendPod(&record, Crc32(payload));
    record += payload;
  }

  const int64_t offset = segment.bytes;
  const Status status = RetryWithBackoff(retry_policy_, [&] {
    return WriteRecordOnce(segment.fd, record, offset);
  });
  if (!status.ok()) {
    CleanupFailedWrite(segment_id);
    return Status(status.code(), "spill write to " + SegmentPath(segment_id) +
                                     " failed: " + status.message());
  }
  segment.bytes += static_cast<int64_t>(record.size());
  ++segment.live_partitions;
  bytes_written_ += static_cast<int64_t>(record.size());
  if (metrics_ != nullptr) {
    metrics_->AddShared(obs::kSpillWrites, 1);
    metrics_->AddShared(obs::kSpillBytesWritten,
                        static_cast<int64_t>(record.size()));
  }
  // The partition now lives on disk; its in-memory buffers are free for
  // reuse by the next product.
  if (pool_ != nullptr) pool_->Recycle(std::move(partition));

  const int64_t handle = next_handle_++;
  entries_[handle] =
      Entry{segment_id, offset, static_cast<int64_t>(record.size())};
  if (segment.bytes >= kSegmentBytes) segment.sealed = true;
  return handle;
}

StatusOr<StrippedPartition> DiskPartitionStore::Get(int64_t handle) {
  // Reads share the lock: concurrent preads at distinct offsets are safe,
  // and the segment behind a live handle cannot be unlinked while readers
  // hold the shared lock (Release takes it exclusively).
  ReaderMutexLock lock(&mu_);
  auto it = entries_.find(handle);
  if (it == entries_.end()) {
    return Status::NotFound("no partition with handle " +
                            std::to_string(handle));
  }
  const Entry& entry = it->second;
  const Segment& segment = segments_[entry.segment];
  std::string record(entry.size, '\0');
  const Status status = RetryWithBackoff(retry_policy_, [&] {
    return ReadRecordOnce(segment.fd, record.data(), entry.size, entry.offset);
  });
  if (!status.ok()) {
    return Status(status.code(), "spill read from " +
                                     SegmentPath(entry.segment) +
                                     " failed: " + status.message());
  }

  std::string_view view(record);
  uint32_t stored_crc = 0;
  if (!ReadPod(&view, &stored_crc)) {
    return Status::IoError("spill record in " + SegmentPath(entry.segment) +
                           " too short for its checksum");
  }
  if (Crc32(view) != stored_crc) {
    return Status::IoError("spill segment " + SegmentPath(entry.segment) +
                           " corrupt: checksum mismatch for handle " +
                           std::to_string(handle));
  }
  if (metrics_ != nullptr) {
    metrics_->AddShared(obs::kSpillReads, 1);
    metrics_->AddShared(obs::kSpillBytesRead, entry.size);
  }
  return DeserializePartition(view);
}

Status DiskPartitionStore::Release(int64_t handle) {
  WriterMutexLock lock(&mu_);
  auto it = entries_.find(handle);
  if (it == entries_.end()) {
    return Status::NotFound("release of unknown handle " +
                            std::to_string(handle));
  }
  const int32_t segment_id = it->second.segment;
  entries_.erase(it);
  --segments_[segment_id].live_partitions;
  // The newest segment is sealed on release pressure too: once TANE starts
  // releasing a level, the segments holding it should become reclaimable
  // even if they never filled up.
  if (segment_id == static_cast<int32_t>(segments_.size()) - 1 &&
      segments_[segment_id].live_partitions == 0) {
    segments_[segment_id].sealed = true;
  }
  DropSegmentIfDead(segment_id);
  return Status::OK();
}

int64_t DiskPartitionStore::disk_bytes() const {
  ReaderMutexLock lock(&mu_);
  int64_t total = 0;
  for (const Segment& segment : segments_) {
    if (segment.fd >= 0) total += segment.bytes;
  }
  return total;
}

// ---------------------------------------------------------------------------
// AutoPartitionStore

StatusOr<int64_t> AutoPartitionStore::Put(StrippedPartition partition) {
  WriterMutexLock lock(&mu_);
  int64_t inner = 0;
  if (disk_ == nullptr) {
    TANE_ASSIGN_OR_RETURN(inner, memory_.Put(std::move(partition)));
  } else {
    TANE_ASSIGN_OR_RETURN(inner, disk_->Put(std::move(partition)));
  }
  const int64_t handle = next_handle_++;
  inner_handles_[handle] = inner;
  if (disk_ == nullptr && budget_bytes_ > 0 &&
      memory_.resident_bytes() > budget_bytes_) {
    if (in_window_) {
      // Workers may hold Peek borrows into the memory store; migrating now
      // would free the partitions under them. Spill at the window boundary.
      pending_spill_ = true;
    } else {
      TANE_RETURN_IF_ERROR(SpillToDisk());
    }
  }
  return handle;
}

void AutoPartitionStore::BeginTaskWindow() {
  WriterMutexLock lock(&mu_);
  in_window_ = true;
}

Status AutoPartitionStore::EndTaskWindow() {
  WriterMutexLock lock(&mu_);
  in_window_ = false;
  if (!pending_spill_ || disk_ != nullptr) {
    pending_spill_ = false;
    return Status::OK();
  }
  pending_spill_ = false;
  return SpillToDisk();
}

Status AutoPartitionStore::SpillToDisk() {
  // The span makes the migration visible in the trace timeline; its counter
  // deltas show the spill writes it performed.
  obs::SpanGuard span(tracer_, "spill", metrics_);
  TANE_ASSIGN_OR_RETURN(disk_, DiskPartitionStore::Open(spill_directory_));
  if (pool_ != nullptr) disk_->set_buffer_pool(pool_);
  if (metrics_ != nullptr) disk_->set_metrics(metrics_);
  // Hash order only decides the physical order partitions migrate in; the
  // outer handles (the only thing callers see) are unchanged, so nothing
  // here can reach the output. tane-analyzer: allow(determinism)
  for (auto& [handle, inner] : inner_handles_) {
    TANE_ASSIGN_OR_RETURN(StrippedPartition partition, memory_.Get(inner));
    TANE_ASSIGN_OR_RETURN(const int64_t disk_handle,
                          disk_->Put(std::move(partition)));
    TANE_RETURN_IF_ERROR(memory_.Release(inner));
    inner = disk_handle;
  }
  if (metrics_ != nullptr) metrics_->SetGauge(obs::kDegradedToDisk, 1);
  span.AddArg("migrated_partitions",
              static_cast<int64_t>(inner_handles_.size()));
  // A mid-run spill is exactly the kind of state transition a postmortem
  // wants on the timeline: runs that died shortly after degrading to disk
  // read very differently from runs that died in memory.
  if (obs::FlightRecorder* recorder = obs::FlightRecorder::active()) {
    recorder->Record(-1, obs::FlightEventType::kSpill, "spill-to-disk",
                     static_cast<int64_t>(inner_handles_.size()));
  }
  return Status::OK();
}

StatusOr<StrippedPartition> AutoPartitionStore::Get(int64_t handle) {
  ReaderMutexLock lock(&mu_);
  auto it = inner_handles_.find(handle);
  if (it == inner_handles_.end()) {
    return Status::NotFound("no partition with handle " +
                            std::to_string(handle));
  }
  return disk_ == nullptr ? memory_.Get(it->second) : disk_->Get(it->second);
}

Status AutoPartitionStore::Release(int64_t handle) {
  WriterMutexLock lock(&mu_);
  auto it = inner_handles_.find(handle);
  if (it == inner_handles_.end()) {
    return Status::NotFound("release of unknown handle " +
                            std::to_string(handle));
  }
  const int64_t inner = it->second;
  inner_handles_.erase(it);
  return disk_ == nullptr ? memory_.Release(inner) : disk_->Release(inner);
}

const StrippedPartition* AutoPartitionStore::Peek(int64_t handle) const {
  ReaderMutexLock lock(&mu_);
  if (disk_ != nullptr) return nullptr;
  auto it = inner_handles_.find(handle);
  return it == inner_handles_.end() ? nullptr : memory_.Peek(it->second);
}

}  // namespace tane
