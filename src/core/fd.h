#ifndef TANE_CORE_FD_H_
#define TANE_CORE_FD_H_

#include <string>
#include <vector>

#include "lattice/attribute_set.h"
#include "relation/schema.h"

namespace tane {

/// A discovered dependency X → A. `error` is the g3 error measured on the
/// input relation: 0 for exact functional dependencies, in (0, ε] for
/// approximate ones.
struct FunctionalDependency {
  AttributeSet lhs;
  int rhs = -1;
  double error = 0.0;

  /// Renders as "{A,B} -> C" using schema names.
  std::string ToString(const Schema& schema) const;

  friend bool operator==(const FunctionalDependency& a,
                         const FunctionalDependency& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
  /// Canonical order: by right-hand side, then left-hand-side mask.
  friend bool operator<(const FunctionalDependency& a,
                        const FunctionalDependency& b) {
    if (a.rhs != b.rhs) return a.rhs < b.rhs;
    return a.lhs < b.lhs;
  }
};

/// Sorts into canonical order and drops duplicates (same lhs and rhs).
void CanonicalizeFds(std::vector<FunctionalDependency>* fds);

}  // namespace tane

#endif  // TANE_CORE_FD_H_
