#include "core/result.h"

namespace tane {

std::string_view CompletionToString(Completion completion) {
  switch (completion) {
    case Completion::kComplete:
      return "complete";
    case Completion::kDeadlineExpired:
      return "deadline_expired";
    case Completion::kCancelled:
      return "cancelled";
    case Completion::kSuspended:
      return "suspended";
  }
  return "unknown";
}

}  // namespace tane
