#include "core/result.h"

// DiscoveryResult is a plain aggregate; this file anchors the module in the
// build and hosts future non-inline helpers.
