#ifndef TANE_CORE_RESULT_H_
#define TANE_CORE_RESULT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/fd.h"
#include "lattice/attribute_set.h"
#include "obs/metrics.h"

namespace tane {

/// Wall-clock and summed worker-busy time of one level's parallelized
/// phases (validity testing and next-level partition products). With N
/// threads, speedup() approaches N when the level has enough independent
/// nodes to keep every worker fed.
struct LevelParallelStats {
  int level = 0;
  /// Lattice nodes the level processed (its |L_ℓ|).
  int64_t nodes = 0;
  double wall_seconds = 0.0;
  /// Busy time summed across all participating workers.
  double worker_seconds = 0.0;
  /// Achieved parallel speedup of this level: worker CPU time per unit of
  /// wall time. 1.0 for a serial run.
  double speedup() const {
    return wall_seconds > 0.0 ? worker_seconds / wall_seconds : 1.0;
  }
};

/// Counters describing the work a discovery run performed; used by the
/// bench harness and by the ablation studies.
struct DiscoveryStats {
  /// Levels of the lattice processed (largest ℓ with L_ℓ nonempty).
  int levels_processed = 0;
  /// Total attribute sets placed in levels (the paper's s).
  int64_t sets_generated = 0;
  /// Size of the largest level (the paper's s_max).
  int64_t max_level_size = 0;
  /// Validity tests performed (the paper's v).
  int64_t validity_tests = 0;
  /// Exact g3 scans executed in approximate mode.
  int64_t g3_scans = 0;
  /// g3 scans skipped because the e(·) bounds already decided validity.
  int64_t g3_scans_skipped = 0;
  /// Partition products computed.
  int64_t partition_products = 0;
  /// Heap allocations performed inside PartitionProduct::Multiply across
  /// all workers (scratch growth plus output buffers the pool could not
  /// cover). 0 per product once pooling has warmed up.
  int64_t product_allocations = 0;
  /// Member rows actually walked by partition products (labeling + probe
  /// passes) across all workers — the honest rows/sec denominator.
  int64_t product_rows_scanned = 0;
  /// Products whose labeling pass was skipped because consecutive products
  /// shared their left parent (see PartitionProduct::Multiply's a_token).
  int64_t product_label_reuses = 0;
  /// Member rows walked by error-measure scans across all workers.
  int64_t g3_rows_scanned = 0;
  /// The dispatched data-parallel kernel ("scalar", "avx2", "neon").
  std::string kernel;
  /// Interning PLI cache counters (lookups == hits + misses). All zero when
  /// the cache is disabled.
  int64_t pli_cache_lookups = 0;
  int64_t pli_cache_hits = 0;
  int64_t pli_cache_misses = 0;
  /// Resident partition bytes avoided by deduplicating identical PLIs.
  int64_t pli_cache_bytes_saved = 0;
  /// Keys found (sets removed by key pruning).
  int64_t keys_found = 0;
  /// Peak bytes of partitions resident in memory at once.
  int64_t peak_partition_bytes = 0;
  /// Total bytes written to the spill directory (disk mode only).
  int64_t spill_bytes_written = 0;
  /// True when a kAuto run breached its memory budget and migrated the
  /// partition store to disk mid-run.
  bool degraded_to_disk = false;
  /// Wall-clock seconds for the whole discovery.
  double wall_seconds = 0.0;
  /// Seconds spent loading/encoding the input relation. Filled by drivers
  /// (the CLI, the bench harness) — Discover itself never sees the file.
  double read_seconds = 0.0;
  /// Seconds spent rendering output (FDs, trace, run report). Also filled
  /// by drivers.
  double report_seconds = 0.0;
  /// Worker threads the run executed with (TaneConfig::num_threads).
  int num_threads = 1;
  /// Snapshot files durably written by this run (checkpointing only).
  int64_t checkpoint_writes = 0;
  /// Total serialized snapshot bytes those writes published.
  int64_t checkpoint_bytes = 0;
  /// Wall-clock seconds spent serializing and fsyncing snapshots.
  double checkpoint_seconds = 0.0;
  /// Snapshot level this run resumed from; 0 for a fresh run.
  int resumed_from_level = 0;
  /// Per-level timing of the parallelized phases, in level order.
  std::vector<LevelParallelStats> level_parallel;
};

/// Whether a discovery run finished the full levelwise search or was ended
/// early by its RunController. A partial result is *prefix-correct*: every
/// dependency and key it lists is genuinely minimal and also appears in the
/// complete run's output — the search just did not get to the rest.
enum class Completion : int32_t {
  kComplete = 0,
  kDeadlineExpired = 1,
  kCancelled = 2,
  /// The run stopped itself at TaneConfig::stop_after_level — a deliberate,
  /// checkpointed pause rather than a resource-driven wind-down.
  kSuspended = 3,
};

/// Returns "complete", "deadline_expired", "cancelled", or "suspended".
std::string_view CompletionToString(Completion completion);

/// The output of a discovery run: all minimal non-trivial dependencies with
/// g3 ≤ ε, the minimal keys encountered by key pruning, and run statistics.
struct DiscoveryResult {
  std::vector<FunctionalDependency> fds;
  std::vector<AttributeSet> keys;
  DiscoveryStats stats;

  /// Full metric aggregate from the run's registry: every counter the
  /// stats above are views over, plus gauges and size/cost histograms.
  /// Consumed by the run report and the bench JSON emitters.
  obs::MetricsSnapshot metrics;

  /// kComplete for a full run; otherwise why the run ended early. Partial
  /// results still satisfy the prefix-correctness guarantee above.
  Completion completion = Completion::kComplete;

  /// Number of lattice levels fully processed (dependencies computed and
  /// pruning applied). Equals stats.levels_processed on a complete run.
  int completed_levels = 0;

  /// True when the run ended early AND left a durable snapshot behind, so
  /// rerunning with TaneConfig::resume continues from completed_levels
  /// instead of starting over. This is the retryable/fatal distinction a
  /// job scheduler needs: resumable failures re-enqueue, the rest alert.
  bool resumable = false;

  /// Number of dependencies found (the N column in the paper's tables).
  int64_t num_fds() const { return static_cast<int64_t>(fds.size()); }

  /// Convenience: did the run finish the whole search?
  bool complete() const { return completion == Completion::kComplete; }
};

}  // namespace tane

#endif  // TANE_CORE_RESULT_H_
