#include "core/pli_cache.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "util/mutex.h"

namespace tane {

namespace {

// Deterministic byte measure for the cache counters: logical element counts
// only. EstimatedBytes() reflects vector *capacity*, which depends on pool
// history and would make bytes_saved vary across thread counts.
int64_t LogicalBytes(const StrippedPartition& partition) {
  return static_cast<int64_t>(
      (partition.row_ids().size() + partition.class_offsets().size()) *
      sizeof(int32_t));
}

}  // namespace

StatusOr<int64_t> PliCache::Put(StrippedPartition partition) {
  WriterMutexLock lock(&mu_);
  ++stats_.lookups;
  if (metrics_ != nullptr) metrics_->AddShared(obs::kPliCacheLookups, 1);
  const uint64_t hash = partition.StructuralHash();
  const int64_t full_rank = partition.FullRank();

  auto [begin, end] = by_hash_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    const int64_t candidate = it->second;
    const SharedEntry& entry = inner_entries_.at(candidate);
    if (entry.full_rank != full_rank) continue;
    // A hash match is not proof: confirm with a full structural compare
    // before sharing storage. Peek serves memory-backed inner stores
    // without a copy; a spilled store needs a Get.
    bool equal = false;
    if (const StrippedPartition* peeked = inner_->Peek(candidate)) {
      equal = (*peeked == partition);
    } else {
      StatusOr<StrippedPartition> fetched = inner_->Get(candidate);
      // An unreadable candidate is treated as a miss, not an error: the
      // partition still gets stored normally below.
      equal = fetched.ok() && (fetched.value() == partition);
    }
    if (!equal) continue;

    ++stats_.hits;
    stats_.bytes_saved += LogicalBytes(partition);
    if (metrics_ != nullptr) {
      metrics_->AddShared(obs::kPliCacheHits, 1);
      metrics_->SetGauge(obs::kPliCacheBytesSaved, stats_.bytes_saved);
    }
    inner_entries_.at(candidate).refs++;
    // The duplicate's buffers go back to the pool instead of the heap.
    if (pool_ != nullptr) pool_->Recycle(std::move(partition));
    const int64_t handle = next_handle_++;
    outer_to_inner_[handle] = candidate;
    return handle;
  }

  ++stats_.misses;
  if (metrics_ != nullptr) metrics_->AddShared(obs::kPliCacheMisses, 1);
  const int64_t bytes = LogicalBytes(partition);
  TANE_ASSIGN_OR_RETURN(const int64_t inner_handle,
                        inner_->Put(std::move(partition)));
  inner_entries_[inner_handle] = SharedEntry{1, hash, full_rank, bytes};
  by_hash_.emplace(hash, inner_handle);
  const int64_t handle = next_handle_++;
  outer_to_inner_[handle] = inner_handle;
  return handle;
}

StatusOr<StrippedPartition> PliCache::Get(int64_t handle) {
  int64_t inner_handle = 0;
  {
    ReaderMutexLock lock(&mu_);
    auto it = outer_to_inner_.find(handle);
    if (it == outer_to_inner_.end()) {
      return Status::NotFound("no partition with handle " +
                              std::to_string(handle));
    }
    inner_handle = it->second;
  }
  return inner_->Get(inner_handle);
}

const StrippedPartition* PliCache::Peek(int64_t handle) const {
  ReaderMutexLock lock(&mu_);
  auto it = outer_to_inner_.find(handle);
  return it == outer_to_inner_.end() ? nullptr : inner_->Peek(it->second);
}

Status PliCache::Release(int64_t handle) {
  WriterMutexLock lock(&mu_);
  auto it = outer_to_inner_.find(handle);
  if (it == outer_to_inner_.end()) {
    return Status::NotFound("release of unknown handle " +
                            std::to_string(handle));
  }
  const int64_t inner_handle = it->second;
  outer_to_inner_.erase(it);
  SharedEntry& entry = inner_entries_.at(inner_handle);
  if (--entry.refs > 0) return Status::OK();

  auto [begin, end] = by_hash_.equal_range(entry.hash);
  for (auto hash_it = begin; hash_it != end; ++hash_it) {
    if (hash_it->second == inner_handle) {
      by_hash_.erase(hash_it);
      break;
    }
  }
  inner_entries_.erase(inner_handle);
  return inner_->Release(inner_handle);
}

}  // namespace tane
