#include "core/pli_cache.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "util/mutex.h"

namespace tane {

namespace {

// Deterministic byte measure for the cache counters: logical element counts
// only. EstimatedBytes() reflects vector *capacity*, which depends on pool
// history and would make bytes_saved vary across thread counts.
int64_t LogicalBytes(const StrippedPartition& partition) {
  return static_cast<int64_t>(
      (partition.row_ids().size() + partition.class_offsets().size()) *
      sizeof(int32_t));
}

}  // namespace

PliCache::StagedProbe PliCache::ProbeStaged(
    const StrippedPartition& partition) const {
  StagedProbe staged;
  // The expensive scans run before any lock is taken.
  staged.hash = partition.StructuralHash();
  staged.full_rank = partition.FullRank();
  staged.bytes = LogicalBytes(partition);

  ReaderMutexLock lock(&mu_);
  auto [begin, end] = by_hash_.equal_range(staged.hash);
  for (auto it = begin; it != end; ++it) {
    const int64_t candidate = it->second;
    const SharedEntry& entry = inner_entries_.at(candidate);
    if (entry.full_rank != staged.full_rank) continue;
    // Resident candidates are verified here, off the commit path. A
    // spilled candidate would need a Get; leave that (rare) case to the
    // locked re-probe in PutStaged.
    const StrippedPartition* peeked = inner_->Peek(candidate);
    if (peeked != nullptr && *peeked == partition) {
      staged.verified_inner = candidate;
      break;
    }
  }
  return staged;
}

StatusOr<int64_t> PliCache::CommitLocked(StrippedPartition partition,
                                         const StagedProbe& staged) {
  ++stats_.lookups;
  if (metrics_ != nullptr) metrics_->AddShared(obs::kPliCacheLookups, 1);

  int64_t match = -1;
  if (staged.verified_inner >= 0 &&
      inner_entries_.count(staged.verified_inner) > 0) {
    // The staged probe already did the structural compare, and the match
    // cannot have been released since (releases happen only outside task
    // windows), so the verdict still holds at commit time.
    match = staged.verified_inner;
  } else {
    auto [begin, end] = by_hash_.equal_range(staged.hash);
    for (auto it = begin; it != end; ++it) {
      const int64_t candidate = it->second;
      const SharedEntry& entry = inner_entries_.at(candidate);
      if (entry.full_rank != staged.full_rank) continue;
      // A hash match is not proof: confirm with a full structural compare
      // before sharing storage. Peek serves memory-backed inner stores
      // without a copy; a spilled store needs a Get.
      bool equal = false;
      if (const StrippedPartition* peeked = inner_->Peek(candidate)) {
        equal = (*peeked == partition);
      } else {
        StatusOr<StrippedPartition> fetched = inner_->Get(candidate);
        // An unreadable candidate is treated as a miss, not an error: the
        // partition still gets stored normally below.
        equal = fetched.ok() && (fetched.value() == partition);
      }
      if (equal) {
        match = candidate;
        break;
      }
    }
  }

  if (match >= 0) {
    ++stats_.hits;
    stats_.bytes_saved += staged.bytes;
    if (metrics_ != nullptr) {
      metrics_->AddShared(obs::kPliCacheHits, 1);
      metrics_->SetGauge(obs::kPliCacheBytesSaved, stats_.bytes_saved);
    }
    inner_entries_.at(match).refs++;
    // The duplicate's buffers go back to the pool instead of the heap.
    if (pool_ != nullptr) pool_->Recycle(std::move(partition));
    const int64_t handle = next_handle_++;
    outer_to_inner_[handle] = match;
    return handle;
  }

  ++stats_.misses;
  if (metrics_ != nullptr) metrics_->AddShared(obs::kPliCacheMisses, 1);
  TANE_ASSIGN_OR_RETURN(const int64_t inner_handle,
                        inner_->Put(std::move(partition)));
  inner_entries_[inner_handle] =
      SharedEntry{1, staged.hash, staged.full_rank, staged.bytes};
  by_hash_.emplace(staged.hash, inner_handle);
  const int64_t handle = next_handle_++;
  outer_to_inner_[handle] = inner_handle;
  return handle;
}

StatusOr<int64_t> PliCache::Put(StrippedPartition partition) {
  StagedProbe staged;
  staged.hash = partition.StructuralHash();
  staged.full_rank = partition.FullRank();
  staged.bytes = LogicalBytes(partition);
  WriterMutexLock lock(&mu_);
  return CommitLocked(std::move(partition), staged);
}

StatusOr<int64_t> PliCache::PutStaged(StrippedPartition partition,
                                      const StagedProbe& staged) {
  WriterMutexLock lock(&mu_);
  return CommitLocked(std::move(partition), staged);
}

StatusOr<StrippedPartition> PliCache::Get(int64_t handle) {
  int64_t inner_handle = 0;
  {
    ReaderMutexLock lock(&mu_);
    auto it = outer_to_inner_.find(handle);
    if (it == outer_to_inner_.end()) {
      return Status::NotFound("no partition with handle " +
                              std::to_string(handle));
    }
    inner_handle = it->second;
  }
  return inner_->Get(inner_handle);
}

const StrippedPartition* PliCache::Peek(int64_t handle) const {
  ReaderMutexLock lock(&mu_);
  auto it = outer_to_inner_.find(handle);
  return it == outer_to_inner_.end() ? nullptr : inner_->Peek(it->second);
}

Status PliCache::Release(int64_t handle) {
  WriterMutexLock lock(&mu_);
  auto it = outer_to_inner_.find(handle);
  if (it == outer_to_inner_.end()) {
    return Status::NotFound("release of unknown handle " +
                            std::to_string(handle));
  }
  const int64_t inner_handle = it->second;
  outer_to_inner_.erase(it);
  SharedEntry& entry = inner_entries_.at(inner_handle);
  if (--entry.refs > 0) return Status::OK();

  auto [begin, end] = by_hash_.equal_range(entry.hash);
  for (auto hash_it = begin; hash_it != end; ++hash_it) {
    if (hash_it->second == inner_handle) {
      by_hash_.erase(hash_it);
      break;
    }
  }
  inner_entries_.erase(inner_handle);
  return inner_->Release(inner_handle);
}

}  // namespace tane
