#include "core/run_snapshot.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/checkpoint.h"
#include "util/crc32.h"
#include "util/failpoint.h"

namespace tane {
namespace {

// "TANC" — checkpoint cousin of the partition serializer's "TANE" magic.
constexpr uint32_t kSnapshotMagic = 0x54414E43;

// Frame tags. The header is always first; node frames repeat
// header.survivor_count times; unknown tags are a format error (the version
// field, not tag skipping, is the compatibility mechanism).
enum FrameTag : uint32_t {
  kTagHeader = 1,
  kTagFds = 2,
  kTagKeys = 3,
  kTagCounters = 4,
  kTagLevelStats = 5,
  kTagNode = 6,
};

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view* in, T* value) {
  if (in->size() < sizeof(T)) return false;
  std::memcpy(value, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}

void AppendString(std::string* out, std::string_view text) {
  AppendPod(out, static_cast<uint64_t>(text.size()));
  out->append(text.data(), text.size());
}

bool ReadString(std::string_view* in, std::string* text) {
  uint64_t size = 0;
  if (!ReadPod(in, &size) || in->size() < size) return false;
  text->assign(in->data(), size);
  in->remove_prefix(size);
  return true;
}

Status Corrupt(const std::string& what) {
  return Status::FailedPrecondition("snapshot corrupt: " + what);
}

// Snapshot files are "level-%04d.ckpt"; returns -1 for any other name.
// (The caller separately skips the writer's transient ".tmp." files.)
int ParseSnapshotLevel(const std::string& name) {
  int level = 0;
  char suffix = '\0';
  if (std::sscanf(name.c_str(), "level-%d.ckp%c", &level, &suffix) != 2 ||
      suffix != 't' || level <= 0) {
    return -1;
  }
  return level;
}

// Levels of every snapshot file in `directory`, ascending. kNotFound when
// the directory does not exist.
StatusOr<std::vector<int>> ListSnapshotLevels(const std::string& directory) {
  DIR* dir = ::opendir(directory.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no checkpoint directory at '" + directory + "'");
    }
    return Status::IoError("opendir '" + directory +
                           "': " + std::strerror(errno));
  }
  std::vector<int> levels;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.find(".tmp.") != std::string::npos) continue;
    const int level = ParseSnapshotLevel(name);
    if (level > 0) levels.push_back(level);
  }
  ::closedir(dir);
  std::sort(levels.begin(), levels.end());
  return levels;
}

Status EnsureDirectory(const std::string& directory) {
  if (directory.empty()) {
    return Status::InvalidArgument("checkpoint directory path is empty");
  }
  // mkdir -p: create each component, tolerating ones that already exist.
  for (std::string::size_type pos = 1; pos <= directory.size(); ++pos) {
    if (pos != directory.size() && directory[pos] != '/') continue;
    const std::string prefix = directory.substr(0, pos);
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("mkdir '" + prefix +
                             "': " + std::strerror(errno));
    }
  }
  return Status::OK();
}

}  // namespace

uint32_t ConfigFingerprint(const TaneConfig& config) {
  std::string canonical;
  uint64_t epsilon_bits = 0;
  static_assert(sizeof(epsilon_bits) == sizeof(config.epsilon));
  std::memcpy(&epsilon_bits, &config.epsilon, sizeof(epsilon_bits));
  AppendPod(&canonical, epsilon_bits);
  AppendPod(&canonical, static_cast<int32_t>(config.measure));
  AppendPod(&canonical, static_cast<int32_t>(config.max_lhs_size));
  AppendPod(&canonical, static_cast<uint8_t>(config.use_rhs_plus_pruning));
  AppendPod(&canonical, static_cast<uint8_t>(config.use_key_pruning));
  AppendPod(&canonical, static_cast<uint8_t>(config.use_covered_rhs_pruning));
  AppendPod(&canonical, static_cast<uint8_t>(config.use_g3_bounds));
  AppendPod(&canonical, static_cast<uint8_t>(config.compute_exact_errors));
  AppendPod(&canonical, static_cast<uint8_t>(config.use_stripped_partitions));
  AppendPod(&canonical, static_cast<uint8_t>(config.use_partition_products));
  return Crc32(canonical);
}

std::string DatasetFingerprint(const Relation& relation) {
  uint32_t crc = 0;
  for (int c = 0; c < relation.num_columns(); ++c) {
    crc = Crc32(relation.schema().name(c), crc);
    const std::vector<int32_t>& codes = relation.column(c).codes;
    crc = Crc32(
        std::string_view(reinterpret_cast<const char*>(codes.data()),
                         codes.size() * sizeof(int32_t)),
        crc);
  }
  char text[16];
  std::snprintf(text, sizeof(text), "crc32:%08x", crc);
  return text;
}

std::string SnapshotPath(const std::string& directory, int level) {
  char name[32];
  std::snprintf(name, sizeof(name), "level-%04d.ckpt", level);
  return directory + "/" + name;
}

std::string RunSnapshot::Serialize() const {
  std::string header;
  AppendPod(&header, kSnapshotMagic);
  AppendPod(&header, kFormatVersion);
  AppendPod(&header, config_fingerprint);
  AppendString(&header, dataset_fingerprint);
  AppendPod(&header, num_rows);
  AppendPod(&header, num_columns);
  AppendPod(&header, completed_level);
  AppendPod(&header, static_cast<uint64_t>(survivors.size()));

  std::string fds_payload;
  AppendPod(&fds_payload, static_cast<uint64_t>(fds.size()));
  for (const FunctionalDependency& fd : fds) {
    AppendPod(&fds_payload, fd.lhs.mask());
    AppendPod(&fds_payload, static_cast<int32_t>(fd.rhs));
    uint64_t error_bits = 0;
    std::memcpy(&error_bits, &fd.error, sizeof(error_bits));
    AppendPod(&fds_payload, error_bits);
  }

  std::string keys_payload;
  AppendPod(&keys_payload, static_cast<uint64_t>(keys.size()));
  for (const AttributeSet key : keys) AppendPod(&keys_payload, key.mask());

  std::string counters_payload;
  AppendPod(&counters_payload, counters.sets_generated);
  AppendPod(&counters_payload, counters.validity_tests);
  AppendPod(&counters_payload, counters.g3_scans);
  AppendPod(&counters_payload, counters.g3_scans_skipped);
  AppendPod(&counters_payload, counters.partition_products);
  AppendPod(&counters_payload, counters.keys_found);
  AppendPod(&counters_payload, counters.nodes_processed);
  AppendPod(&counters_payload, counters.fds_emitted);
  AppendPod(&counters_payload, counters.max_level_size);

  std::string levels_payload;
  AppendPod(&levels_payload, static_cast<uint64_t>(level_parallel.size()));
  for (const LevelParallelStats& row : level_parallel) {
    AppendPod(&levels_payload, static_cast<int32_t>(row.level));
    AppendPod(&levels_payload, row.nodes);
    AppendPod(&levels_payload, row.wall_seconds);
    AppendPod(&levels_payload, row.worker_seconds);
  }

  std::string out;
  AppendFrame(&out, kTagHeader, header);
  AppendFrame(&out, kTagFds, fds_payload);
  AppendFrame(&out, kTagKeys, keys_payload);
  AppendFrame(&out, kTagCounters, counters_payload);
  AppendFrame(&out, kTagLevelStats, levels_payload);
  // One frame per survivor so each partition image has its own CRC — a
  // flipped bit names the damaged node instead of invalidating the file
  // wholesale, and large partitions are never re-checksummed together.
  for (const SnapshotNode& node : survivors) {
    std::string payload;
    AppendPod(&payload, node.set.mask());
    AppendPod(&payload, node.cplus.mask());
    AppendPod(&payload, node.error);
    AppendString(&payload, node.partition_bytes);
    AppendFrame(&out, kTagNode, payload);
  }
  return out;
}

StatusOr<RunSnapshot> RunSnapshot::Deserialize(std::string_view bytes) {
  RunSnapshot snapshot;
  uint32_t tag = 0;
  std::string_view payload;

  TANE_RETURN_IF_ERROR(ReadFrame(&bytes, &tag, &payload));
  if (tag != kTagHeader) return Corrupt("first frame is not the header");
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t survivor_count = 0;
  if (!ReadPod(&payload, &magic) || magic != kSnapshotMagic) {
    return Corrupt("bad magic");
  }
  if (!ReadPod(&payload, &version)) return Corrupt("truncated header");
  if (version != kFormatVersion) {
    return Corrupt("unsupported format version " + std::to_string(version));
  }
  if (!ReadPod(&payload, &snapshot.config_fingerprint) ||
      !ReadString(&payload, &snapshot.dataset_fingerprint) ||
      !ReadPod(&payload, &snapshot.num_rows) ||
      !ReadPod(&payload, &snapshot.num_columns) ||
      !ReadPod(&payload, &snapshot.completed_level) ||
      !ReadPod(&payload, &survivor_count)) {
    return Corrupt("truncated header");
  }

  TANE_RETURN_IF_ERROR(ReadFrame(&bytes, &tag, &payload));
  if (tag != kTagFds) return Corrupt("expected dependency frame");
  uint64_t fd_count = 0;
  if (!ReadPod(&payload, &fd_count)) return Corrupt("truncated dependencies");
  snapshot.fds.reserve(fd_count);
  for (uint64_t i = 0; i < fd_count; ++i) {
    uint64_t lhs_mask = 0;
    int32_t rhs = 0;
    uint64_t error_bits = 0;
    if (!ReadPod(&payload, &lhs_mask) || !ReadPod(&payload, &rhs) ||
        !ReadPod(&payload, &error_bits)) {
      return Corrupt("truncated dependencies");
    }
    FunctionalDependency fd;
    fd.lhs = AttributeSet::FromMask(lhs_mask);
    fd.rhs = rhs;
    std::memcpy(&fd.error, &error_bits, sizeof(fd.error));
    snapshot.fds.push_back(fd);
  }

  TANE_RETURN_IF_ERROR(ReadFrame(&bytes, &tag, &payload));
  if (tag != kTagKeys) return Corrupt("expected key frame");
  uint64_t key_count = 0;
  if (!ReadPod(&payload, &key_count)) return Corrupt("truncated keys");
  snapshot.keys.reserve(key_count);
  for (uint64_t i = 0; i < key_count; ++i) {
    uint64_t mask = 0;
    if (!ReadPod(&payload, &mask)) return Corrupt("truncated keys");
    snapshot.keys.push_back(AttributeSet::FromMask(mask));
  }

  TANE_RETURN_IF_ERROR(ReadFrame(&bytes, &tag, &payload));
  if (tag != kTagCounters) return Corrupt("expected counter frame");
  SnapshotCounters& counters = snapshot.counters;
  if (!ReadPod(&payload, &counters.sets_generated) ||
      !ReadPod(&payload, &counters.validity_tests) ||
      !ReadPod(&payload, &counters.g3_scans) ||
      !ReadPod(&payload, &counters.g3_scans_skipped) ||
      !ReadPod(&payload, &counters.partition_products) ||
      !ReadPod(&payload, &counters.keys_found) ||
      !ReadPod(&payload, &counters.nodes_processed) ||
      !ReadPod(&payload, &counters.fds_emitted) ||
      !ReadPod(&payload, &counters.max_level_size)) {
    return Corrupt("truncated counters");
  }

  TANE_RETURN_IF_ERROR(ReadFrame(&bytes, &tag, &payload));
  if (tag != kTagLevelStats) return Corrupt("expected level-stats frame");
  uint64_t row_count = 0;
  if (!ReadPod(&payload, &row_count)) return Corrupt("truncated level stats");
  snapshot.level_parallel.reserve(row_count);
  for (uint64_t i = 0; i < row_count; ++i) {
    LevelParallelStats row;
    int32_t level = 0;
    if (!ReadPod(&payload, &level) || !ReadPod(&payload, &row.nodes) ||
        !ReadPod(&payload, &row.wall_seconds) ||
        !ReadPod(&payload, &row.worker_seconds)) {
      return Corrupt("truncated level stats");
    }
    row.level = level;
    snapshot.level_parallel.push_back(row);
  }

  snapshot.survivors.reserve(survivor_count);
  for (uint64_t i = 0; i < survivor_count; ++i) {
    TANE_RETURN_IF_ERROR(ReadFrame(&bytes, &tag, &payload));
    if (tag != kTagNode) return Corrupt("expected node frame");
    SnapshotNode node;
    uint64_t set_mask = 0;
    uint64_t cplus_mask = 0;
    if (!ReadPod(&payload, &set_mask) || !ReadPod(&payload, &cplus_mask) ||
        !ReadPod(&payload, &node.error) ||
        !ReadString(&payload, &node.partition_bytes)) {
      return Corrupt("truncated node frame");
    }
    node.set = AttributeSet::FromMask(set_mask);
    node.cplus = AttributeSet::FromMask(cplus_mask);
    snapshot.survivors.push_back(std::move(node));
  }
  if (!bytes.empty()) return Corrupt("trailing bytes after final frame");
  return snapshot;
}

StatusOr<int64_t> WriteSnapshot(const std::string& directory,
                                const RunSnapshot& snapshot) {
  TANE_RETURN_IF_ERROR(EnsureDirectory(directory));
  const std::string path = SnapshotPath(directory, snapshot.completed_level);
  const std::string bytes = snapshot.Serialize();
  TANE_RETURN_IF_ERROR(AtomicWriteFile(path, bytes));
  // The new snapshot is durable; older levels are redundant. A crash
  // between the rename above and these unlinks leaves extra valid files —
  // the loader takes the highest level, so recovery is unaffected.
  TANE_ASSIGN_OR_RETURN(const std::vector<int> levels,
                        ListSnapshotLevels(directory));
  for (const int level : levels) {
    if (level >= snapshot.completed_level) continue;
    TANE_INJECT_FAILPOINT("checkpoint.unlink_old");
    const std::string old_path = SnapshotPath(directory, level);
    if (::unlink(old_path.c_str()) != 0 && errno != ENOENT) {
      return Status::IoError("unlink '" + old_path +
                             "': " + std::strerror(errno));
    }
  }
  return static_cast<int64_t>(bytes.size());
}

StatusOr<RunSnapshot> LoadLatestSnapshot(const std::string& directory) {
  TANE_ASSIGN_OR_RETURN(const std::vector<int> levels,
                        ListSnapshotLevels(directory));
  if (levels.empty()) {
    return Status::NotFound("no snapshot files under '" + directory + "'");
  }
  const std::string path = SnapshotPath(directory, levels.back());
  TANE_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  StatusOr<RunSnapshot> snapshot = RunSnapshot::Deserialize(bytes);
  if (!snapshot.ok()) {
    return Status(snapshot.status().code(),
                  snapshot.status().message() + " (" + path + ")");
  }
  snapshot->serialized_bytes = static_cast<int64_t>(bytes.size());
  return snapshot;
}

bool IsSnapshotCorruptStatus(const Status& status) {
  // The "snapshot corrupt" prefix is part of the Corrupt() contract above;
  // every detection path (frame CRC, truncation, bad magic/version) goes
  // through it.
  return status.code() == StatusCode::kFailedPrecondition &&
         status.message().rfind("snapshot corrupt", 0) == 0;
}

Status RemoveSnapshots(const std::string& directory) {
  StatusOr<std::vector<int>> levels = ListSnapshotLevels(directory);
  if (!levels.ok()) {
    return levels.status().code() == StatusCode::kNotFound ? Status::OK()
                                                           : levels.status();
  }
  for (const int level : *levels) {
    const std::string path = SnapshotPath(directory, level);
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IoError("unlink '" + path + "': " + std::strerror(errno));
    }
  }
  return Status::OK();
}

}  // namespace tane
