#ifndef TANE_CORE_RUN_SNAPSHOT_H_
#define TANE_CORE_RUN_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.h"
#include "core/fd.h"
#include "core/result.h"
#include "lattice/attribute_set.h"
#include "relation/relation.h"
#include "util/status.h"

namespace tane {

/// Checkpoint/resume model for a discovery run. A snapshot captures the run
/// at a *level boundary* — after PRUNE of level ℓ, before GENERATE-NEXT-
/// LEVEL — which is the only point where the whole search state reduces to
/// a small closed set: the dependencies and keys emitted so far, the
/// surviving nodes of level ℓ with their C⁺ sets and partitions, and the
/// deterministic work counters. Everything else (singleton partitions, the
/// empty-set partition, probe tables, pools) is derived from the relation
/// or is scratch, and is deliberately rebuilt on resume rather than stored.
///
/// Resume is exact: restoring the emitted dependencies in emission order
/// rebuilds every pruning index (found_lhs_by_rhs_, covered-rhs masks)
/// byte-for-byte, and the survivor partitions round-trip through
/// SerializePartition, so the continued search emits exactly what the
/// uninterrupted run would have — at any thread count and storage mode,
/// since neither participates in the fingerprint.

/// One surviving lattice node of the checkpointed level.
struct SnapshotNode {
  AttributeSet set;
  AttributeSet cplus;
  /// e(X)·|r| of the node's partition (Node::error).
  int64_t error = 0;
  /// SerializePartition image of π_X.
  std::string partition_bytes;
};

/// The deterministic counters a resumed run carries forward so its final
/// totals equal the uninterrupted run's. Timing-, allocation- and cache-
/// dependent counters are deliberately absent: they describe *this
/// process's* work, not the search, and legitimately differ across a crash.
struct SnapshotCounters {
  int64_t sets_generated = 0;
  int64_t validity_tests = 0;
  int64_t g3_scans = 0;
  int64_t g3_scans_skipped = 0;
  int64_t partition_products = 0;
  int64_t keys_found = 0;
  int64_t nodes_processed = 0;
  int64_t fds_emitted = 0;
  int64_t max_level_size = 0;
};

struct RunSnapshot {
  /// Bumped on any incompatible layout change; a mismatch rejects the file.
  static constexpr uint32_t kFormatVersion = 1;

  /// Fingerprint of the output-affecting configuration (ConfigFingerprint).
  uint32_t config_fingerprint = 0;
  /// Content fingerprint of the encoded relation (DatasetFingerprint).
  std::string dataset_fingerprint;
  int64_t num_rows = 0;
  int32_t num_columns = 0;

  /// The lattice level this snapshot completes (PRUNE applied).
  int32_t completed_level = 0;

  /// Dependencies in emission order — NOT canonical order; the order is
  /// what rebuilds the pruning indexes exactly on resume.
  std::vector<FunctionalDependency> fds;
  /// Keys in emission order.
  std::vector<AttributeSet> keys;

  SnapshotCounters counters;
  std::vector<LevelParallelStats> level_parallel;

  /// Surviving nodes of `completed_level`, in node order.
  std::vector<SnapshotNode> survivors;

  /// Size of the file this snapshot was loaded from. Not serialized —
  /// filled by LoadLatestSnapshot so the restore path can account its
  /// read I/O (checkpoint_reads / checkpoint_bytes_read counters).
  int64_t serialized_bytes = 0;

  /// Encodes into the CRC32-framed container format (util/checkpoint.h).
  std::string Serialize() const;

  /// Inverse of Serialize. Corruption (bad magic/version/CRC, truncation)
  /// returns kFailedPrecondition with a "snapshot corrupt" message.
  static StatusOr<RunSnapshot> Deserialize(std::string_view bytes);
};

/// Hash of every TaneConfig field that can change discovery *output*:
/// epsilon, measure, max_lhs_size, the pruning toggles, exact-error policy,
/// stripped partitions, and the product-vs-fold strategy. Execution knobs
/// (threads, storage, PLI cache, observability) are excluded by design so a
/// run can resume on different hardware with a different storage plan.
uint32_t ConfigFingerprint(const TaneConfig& config);

/// Content fingerprint of the encoded relation: schema names plus the
/// dictionary codes of every column, rendered "crc32:xxxxxxxx". Two files
/// that encode to the same relation fingerprint identically. Shared by the
/// run report and the snapshot validator.
std::string DatasetFingerprint(const Relation& relation);

/// Path of the snapshot file for `level` under `directory`.
std::string SnapshotPath(const std::string& directory, int level);

/// Durably writes `snapshot` as the latest checkpoint under `directory`
/// (created if missing): atomic-rename publish, then older level files are
/// unlinked. After a crash at any point the directory still holds at least
/// one complete, valid snapshot if one was ever written. Returns the
/// serialized size in bytes.
[[nodiscard]] StatusOr<int64_t> WriteSnapshot(const std::string& directory,
                                              const RunSnapshot& snapshot);

/// Loads the highest-level snapshot under `directory`. Returns kNotFound
/// when the directory has no snapshot files; a corrupt latest snapshot is
/// an error (kFailedPrecondition), never a silent fallback to older state.
StatusOr<RunSnapshot> LoadLatestSnapshot(const std::string& directory);

/// Removes every snapshot file under `directory` (a completed run's
/// checkpoints; the results are now the durable artifact). Missing
/// directory is OK.
[[nodiscard]] Status RemoveSnapshots(const std::string& directory);

/// True when `status` reports a corrupt/truncated snapshot (as opposed to a
/// fingerprint mismatch or plain I/O failure). Corruption is *resumable-
/// class*: the scheduler should restart the run from scratch rather than
/// alert, and the CLI maps it to the resumable exit code.
bool IsSnapshotCorruptStatus(const Status& status);

}  // namespace tane

#endif  // TANE_CORE_RUN_SNAPSHOT_H_
