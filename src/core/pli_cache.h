#ifndef TANE_CORE_PLI_CACHE_H_
#define TANE_CORE_PLI_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/partition_store.h"
#include "partition/buffer_pool.h"
#include "partition/stripped_partition.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace tane {

/// Counters for the interning PLI cache, surfaced in DiscoveryStats and
/// printed by the CLI under --stats.
struct PliCacheStats {
  int64_t lookups = 0;      ///< Put calls examined for deduplication.
  int64_t hits = 0;         ///< Puts that matched an already-stored partition.
  int64_t misses = 0;       ///< Puts that stored a new partition.
  int64_t bytes_saved = 0;  ///< Resident bytes avoided by sharing storage.
};

/// An interning decorator over any PartitionStore: structurally identical
/// partitions are stored once and shared copy-on-write behind refcounted
/// inner handles. TANE's lattice produces many identical PLIs — e.g. every
/// superset of a key yields the empty stripped partition, and correlated
/// attribute pairs repeat each other's refinement — so interning converts
/// duplicate storage into a refcount bump.
///
/// Deduplication keys on (FullRank, structural hash) as a fast reject, then
/// confirms with a full structural compare, so a hash collision can never
/// alias two distinct partitions. Outer handles stay unique per Put —
/// callers Release each handle exactly once, as with any store — and the
/// inner partition is freed when its last reference goes away.
///
/// Determinism: Put/PutStaged calls are issued by the driver's commit
/// frontier in node order (whichever thread happens to hold the frontier),
/// and Release only at level boundaries, so the sequence of insertions the
/// cache observes — and therefore every hit/miss verdict and handle value —
/// is identical at every thread count, which keeps DiscoveryResult
/// byte-identical across 1/2/8 threads. The expensive part of a lookup
/// (StructuralHash + FullRank + the structural compare) can be precomputed
/// on a worker thread via ProbeStaged under a shared lock; PutStaged then
/// only validates the staged verdict under the exclusive lock, re-probing
/// in full when the staged probe found no match (an equal partition may
/// have committed between probe and commit — the re-probe keeps the
/// verdict identical to a serial run's). Get/Peek take a shared lock and
/// stay safe for concurrent worker reads.
class PliCache : public PartitionStore {
 public:
  /// Result of ProbeStaged: the hash/rank/bytes of the probed partition
  /// (always valid) and, when the probe confirmed a structural match, the
  /// inner handle of the matching resident partition (else -1).
  struct StagedProbe {
    uint64_t hash = 0;
    int64_t full_rank = 0;
    int64_t bytes = 0;
    int64_t verified_inner = -1;
  };

  explicit PliCache(std::unique_ptr<PartitionStore> inner)
      : inner_(std::move(inner)) {}

  /// Worker-side half of a staged insertion: computes the dedup key off the
  /// exclusive lock and probes the index under a shared lock. Only resident
  /// (Peek-able) candidates are verified here; spilled candidates are left
  /// to PutStaged's locked re-probe. Safe to call concurrently with
  /// Put/PutStaged; requires that no Release runs concurrently (the driver
  /// releases handles only at level boundaries, outside task windows).
  StagedProbe ProbeStaged(const StrippedPartition& partition) const
      TANE_EXCLUDES(mu_);

  /// Commit-side half: stores `partition` using the staged verdict. A
  /// verified staged hit short-circuits straight to a refcount bump (the
  /// match cannot have been released mid-window); a staged miss is
  /// re-probed in full under the lock before being stored as new.
  StatusOr<int64_t> PutStaged(StrippedPartition partition,
                              const StagedProbe& staged) TANE_EXCLUDES(mu_);

  StatusOr<int64_t> Put(StrippedPartition partition) override;
  StatusOr<StrippedPartition> Get(int64_t handle) override;
  Status Release(int64_t handle) override;
  const StrippedPartition* Peek(int64_t handle) const override;
  void set_buffer_pool(PartitionBufferPool* pool) override {
    WriterMutexLock lock(&mu_);
    pool_ = pool;
    inner_->set_buffer_pool(pool);
  }
  /// Mirrors the cache counters into `metrics` (kPliCache* on the shared
  /// lane, kPliCacheBytesSaved as a gauge) and forwards to the inner store.
  void set_metrics(obs::MetricsRegistry* metrics) override {
    WriterMutexLock lock(&mu_);
    metrics_ = metrics;
    inner_->set_metrics(metrics);
  }
  void set_tracer(obs::Tracer* tracer) override { inner_->set_tracer(tracer); }
  void BeginTaskWindow() override { inner_->BeginTaskWindow(); }
  Status EndTaskWindow() override { return inner_->EndTaskWindow(); }
  int64_t resident_bytes() const override { return inner_->resident_bytes(); }
  int64_t bytes_written() const override { return inner_->bytes_written(); }

  PliCacheStats stats() const {
    ReaderMutexLock lock(&mu_);
    return stats_;
  }

  PartitionStore* inner() { return inner_.get(); }

 private:
  // Shared implementation of Put/PutStaged: stores `partition` under the
  // already-held exclusive lock using the precomputed dedup key, honoring
  // a verified staged hit and fully re-probing otherwise.
  StatusOr<int64_t> CommitLocked(StrippedPartition partition,
                                 const StagedProbe& staged)
      TANE_REQUIRES(mu_);

  struct SharedEntry {
    int64_t refs = 0;
    uint64_t hash = 0;
    int64_t full_rank = 0;
    int64_t bytes = 0;  // EstimatedBytes of the stored partition
  };

  // The pointer is set once at construction and never reseated; the inner
  // store guards its own state, so calls through it need no lock here.
  std::unique_ptr<PartitionStore> inner_;
  mutable SharedMutex mu_;
  // Outer handle (one per Put) -> inner handle (one per distinct partition).
  std::unordered_map<int64_t, int64_t> outer_to_inner_ TANE_GUARDED_BY(mu_);
  std::unordered_map<int64_t, SharedEntry> inner_entries_
      TANE_GUARDED_BY(mu_);
  // Structural hash -> inner handle, for candidate lookup on Put.
  std::unordered_multimap<uint64_t, int64_t> by_hash_ TANE_GUARDED_BY(mu_);
  PartitionBufferPool* pool_ TANE_GUARDED_BY(mu_) = nullptr;
  obs::MetricsRegistry* metrics_ TANE_GUARDED_BY(mu_) = nullptr;
  PliCacheStats stats_ TANE_GUARDED_BY(mu_);
  int64_t next_handle_ TANE_GUARDED_BY(mu_) = 0;
};

}  // namespace tane

#endif  // TANE_CORE_PLI_CACHE_H_
