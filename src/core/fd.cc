#include "core/fd.h"

#include <algorithm>

namespace tane {

std::string FunctionalDependency::ToString(const Schema& schema) const {
  return lhs.ToString(schema) + " -> " + schema.name(rhs);
}

void CanonicalizeFds(std::vector<FunctionalDependency>* fds) {
  std::sort(fds->begin(), fds->end());
  fds->erase(std::unique(fds->begin(), fds->end()), fds->end());
}

}  // namespace tane
