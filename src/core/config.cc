#include "core/config.h"

#include "partition/kernels/kernels.h"

namespace tane {

Status TaneConfig::Validate() const {
  if (epsilon < 0.0 || epsilon > 1.0) {
    return Status::InvalidArgument("epsilon must be in [0, 1], got " +
                                   std::to_string(epsilon));
  }
  if (max_lhs_size < 0) {
    return Status::InvalidArgument("max_lhs_size must be >= 0");
  }
  if (num_threads < 1 || num_threads > kMaxNumThreads) {
    return Status::InvalidArgument(
        "num_threads must be in [1, " + std::to_string(kMaxNumThreads) +
        "], got " + std::to_string(num_threads));
  }
  if (parallel_min_window_rows < -1) {
    return Status::InvalidArgument(
        "parallel_min_window_rows must be >= -1, got " +
        std::to_string(parallel_min_window_rows));
  }
  if (!ParseKernelKind(kernel).ok()) {
    return Status::InvalidArgument(
        "kernel must be one of auto, scalar, avx2, neon; got \"" + kernel +
        "\"");
  }
  if (run_controller != nullptr && run_controller->memory_budget_bytes() < 0) {
    return Status::InvalidArgument("memory budget must be >= 0 bytes");
  }
  if (progress_period_seconds < 0.0) {
    return Status::InvalidArgument("progress_period_seconds must be >= 0");
  }
  if (stop_after_level < 0) {
    return Status::InvalidArgument("stop_after_level must be >= 0");
  }
  if (checkpoint_directory.empty() && (checkpoint_every_level || resume)) {
    return Status::InvalidArgument(
        "checkpoint_every_level/resume require a checkpoint_directory");
  }
  return Status::OK();
}

}  // namespace tane
