#ifndef TANE_CORE_CONFIG_H_
#define TANE_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "relation/schema.h"
#include "util/run_control.h"
#include "util/status.h"

namespace tane {

namespace obs {
class Tracer;
}  // namespace obs

/// Which approximation error decides validity in approximate mode. All
/// three measures of Kivinen & Mannila are computable from the same two
/// partitions; g3 is the paper's choice and the only one with the O(1)
/// e(·)-based bounds.
enum class ErrorMeasure {
  /// Minimum fraction of rows to remove (the paper's measure).
  kG3,
  /// Fraction of rows involved in at least one violating pair.
  kG2,
  /// Fraction of ordered row pairs that violate.
  kG1,
};

/// Where level partitions live during the search.
enum class StorageMode {
  /// TANE/MEM: both the current and previous level's partitions stay in
  /// main memory. With a RunController memory budget, a breach aborts the
  /// run with kResourceExhausted.
  kMemory,
  /// TANE (scalable version): partitions are written to a spill directory
  /// and read back when needed, keeping only O(1) partitions resident.
  kDisk,
  /// Graceful degradation: starts as kMemory and, when the resident
  /// partition bytes exceed the RunController memory budget, transparently
  /// migrates every live partition to a DiskPartitionStore and continues as
  /// kDisk. A TANE/MEM run that outgrows RAM becomes a TANE run instead of
  /// dying. Without a budget, behaves exactly like kMemory.
  kAuto,
};

/// Tuning knobs for a TANE run. The defaults reproduce the paper's TANE/MEM
/// exact-FD configuration; every pruning rule can be toggled individually
/// for the ablation benches.
struct TaneConfig {
  /// Error threshold ε. 0 discovers exact FDs; ε > 0 discovers all minimal
  /// approximate dependencies with error ≤ ε (paper §5, "Approximate
  /// dependencies") under the selected `measure`.
  double epsilon = 0.0;

  /// The error measure thresholded by `epsilon`. Defaults to the paper's
  /// g3; g1 and g2 are the other measures of Kivinen & Mannila [5], equally
  /// anti-monotone in the left-hand side, so the same levelwise search and
  /// minimality logic apply.
  ErrorMeasure measure = ErrorMeasure::kG3;

  /// Upper limit on left-hand-side size (the |X| column of Table 3).
  /// kMaxAttributes means unlimited.
  int max_lhs_size = kMaxAttributes;

  /// Apply line 8 of COMPUTE-DEPENDENCIES (the C⁺ strengthening from
  /// Lemma 4.1). Without it the algorithm is still correct but prunes less —
  /// this is exactly the paper's remark about removing line 8.
  bool use_rhs_plus_pruning = true;

  /// Apply the key-pruning rule of PRUNE (Lemma 4.2).
  bool use_key_pruning = true;

  /// Drop A from C⁺(X) when a discovered dependency lhs' → A with
  /// lhs' ⊆ X and |lhs'| <= 1 is already known: any later dependency that
  /// would rely on that candidate has lhs ⊇ X ⊇ lhs' and cannot be minimal.
  /// This is what lets the approximate search collapse at large ε (the
  /// paper's Table 2/Figure 3 time drops), where dependencies with empty or
  /// singleton left-hand sides cover every attribute early.
  bool use_covered_rhs_pruning = true;

  /// Use the e(·)-based g3 bounds to skip exact error scans in approximate
  /// mode (extended-version optimization).
  bool use_g3_bounds = true;

  /// When true (the default), every *emitted* dependency carries its exact
  /// g3 error even if the bounds already proved validity; when false, a
  /// dependency proven valid by the upper bound reports that bound instead,
  /// saving the O(|r|) scan.
  bool compute_exact_errors = true;

  /// Use stripped partitions (singleton classes dropped). Turning this off
  /// reproduces the "full partition" baseline of the extended version.
  bool use_stripped_partitions = true;

  /// Compute each level partition as the product of two previous-level
  /// partitions (Lemma 3, the TANE way). When false, every partition is
  /// folded from the single-attribute partitions instead — the paper's §6
  /// characterization of Schlimmer's decision-tree approach, "slower by a
  /// factor O(|R|)". Exposed for the ablation bench.
  bool use_partition_products = true;

  /// Worker threads for per-level node processing (partition products,
  /// error scans, and validity tests). 1 (the default) runs fully serial
  /// with no thread ever spawned; N > 1 runs each level as a task window:
  /// every candidate node is one task (product + error + validity),
  /// scheduled over work-stealing deques, with results committed through an
  /// index-ordered frontier. Output is identical for every thread count:
  /// the commit frontier stores partitions and merges emissions strictly in
  /// node order, so every handle, rhs⁺ update, and key decision is
  /// deterministic. Must be in [1, kMaxNumThreads].
  int num_threads = 1;

  /// Upper bound on num_threads — generous for real hardware while keeping
  /// a typo like --threads=1000000 from exhausting the process.
  static constexpr int kMaxNumThreads = 256;

  /// Small-level serial fallback for num_threads > 1. A level whose
  /// estimated work (candidate count × mean parent partition size) is below
  /// this many row-operations runs on the caller thread with no task
  /// window, because fan-out/join overhead would exceed the work itself —
  /// the pathology that made --threads=2 slower than --threads=1 on
  /// shallow levels. -1 (the default) picks a calibrated threshold (and
  /// always falls back when the machine has a single hardware thread);
  /// 0 forces the parallel window for every level (used by tests to
  /// exercise the scheduler on small datasets). Not part of the checkpoint
  /// config fingerprint: like num_threads itself, it changes scheduling,
  /// never results.
  int64_t parallel_min_window_rows = -1;

  /// Which data-parallel kernel the partition-product and error-scan hot
  /// loops dispatch to: "auto" (the default; the widest ISA the running CPU
  /// supports), "scalar", "avx2", or "neon". Explicitly requesting a kernel
  /// the hardware cannot run falls back to scalar with a warning. Every
  /// kernel computes the same integer stream, so discovery output is
  /// bit-identical across values (enforced by
  /// tests/kernel_equivalence_test.cc) — like num_threads, this is a
  /// scheduling knob and not part of the checkpoint config fingerprint.
  std::string kernel = "auto";

  /// Intern structurally identical partitions behind shared storage (the
  /// PLI cache). Duplicate PLIs — common above the key level, where every
  /// product is the empty stripped partition — cost a refcount instead of a
  /// copy. Deduplication confirms candidates with a full structural compare
  /// (never hash-only); insertions are issued by the commit frontier in
  /// node order (workers pre-stage the expensive hash/compare work), so
  /// results stay byte-identical across thread counts. Counters appear in
  /// DiscoveryStats (pli_cache_*).
  bool use_pli_cache = true;

  StorageMode storage = StorageMode::kMemory;

  /// Spill directory for StorageMode::kDisk and the kAuto fallback. Empty
  /// selects a fresh directory under the system temp dir, removed when the
  /// run finishes.
  std::string spill_directory;

  /// Optional resource governor (deadline, cancellation token, memory
  /// budget); see util/run_control.h. Not owned; must outlive the run.
  /// When the deadline expires or cancellation is requested, Discover
  /// returns a *partial* DiscoveryResult (completion != kComplete) with
  /// every dependency already proven, instead of an error.
  RunController* run_controller = nullptr;

  /// Optional tracer; when set, the run emits nested phase spans (run →
  /// level → {generate, products, validity, prune, spill} → per-worker
  /// slices) for Chrome/Perfetto export. Not owned; must outlive the run.
  obs::Tracer* tracer = nullptr;

  /// Heartbeat period for the progress monitor; 0 (the default) disables
  /// it. When positive, a monitor thread logs one Info line per period
  /// (remember to lower the log severity to see them).
  double progress_period_seconds = 0.0;

  /// Directory for crash-safe run snapshots (core/run_snapshot.h). Empty
  /// (the default) disables checkpointing entirely. When set, a snapshot is
  /// written whenever the run winds down early at a level boundary
  /// (deadline, cancellation, stop_after_level, memory-budget breach), so
  /// an interrupted run is resumable instead of merely prefix-correct.
  std::string checkpoint_directory;

  /// Also write a snapshot after *every* completed level, making the run
  /// robust to SIGKILL/crash at any point: at most one level of work is
  /// ever lost. Costs one snapshot serialization + fsync per level.
  /// Requires checkpoint_directory.
  bool checkpoint_every_level = false;

  /// Resume from the latest valid snapshot in checkpoint_directory instead
  /// of starting from level 1. The snapshot's config and dataset
  /// fingerprints must match this run (kFailedPrecondition otherwise); a
  /// missing snapshot falls back to a fresh run so schedulers can always
  /// pass the flag. Requires checkpoint_directory.
  bool resume = false;

  /// Suspend the run (Completion::kSuspended) after this many completed
  /// levels, writing a final snapshot when checkpointing is enabled. 0 (the
  /// default) never suspends. This is the cooperative half of
  /// checkpoint/resume — a scheduler can slice a long discovery into
  /// resumable level-sized steps — and what the resume-determinism tests
  /// use to stop a run at an exact boundary.
  int stop_after_level = 0;

  /// Validates field ranges (ε ∈ [0,1], positive max_lhs_size, ...).
  Status Validate() const;
};

}  // namespace tane

#endif  // TANE_CORE_CONFIG_H_
