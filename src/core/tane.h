#ifndef TANE_CORE_TANE_H_
#define TANE_CORE_TANE_H_

#include "core/config.h"
#include "core/result.h"
#include "relation/relation.h"
#include "util/status.h"

namespace tane {

/// The TANE algorithm (Huhtala, Kärkkäinen, Porkka, Toivonen, ICDE 1998):
/// levelwise discovery of all minimal non-trivial functional dependencies —
/// and, with ε > 0, all minimal approximate dependencies under the g3 error
/// measure — using stripped partitions for validity testing.
///
/// Usage:
///
///   TaneConfig config;          // defaults = exact FDs, TANE/MEM
///   config.epsilon = 0.05;      // or approximate discovery
///   StatusOr<DiscoveryResult> result = Tane::Discover(relation, config);
///
/// The result lists each dependency with its measured g3 error, the minimal
/// keys encountered during key pruning, and counters describing the run.
class Tane {
 public:
  /// Runs the discovery. Fails only on invalid configuration or spill-I/O
  /// errors (StorageMode::kDisk). Output FDs are in canonical order.
  static StatusOr<DiscoveryResult> Discover(const Relation& relation,
                                            const TaneConfig& config = {});
};

}  // namespace tane

#endif  // TANE_CORE_TANE_H_
