#ifndef TANE_CORE_TANE_H_
#define TANE_CORE_TANE_H_

#include "core/config.h"
#include "core/result.h"
#include "relation/relation.h"
#include "util/status.h"

namespace tane {

/// The TANE algorithm (Huhtala, Kärkkäinen, Porkka, Toivonen, ICDE 1998):
/// levelwise discovery of all minimal non-trivial functional dependencies —
/// and, with ε > 0, all minimal approximate dependencies under the g3 error
/// measure — using stripped partitions for validity testing.
///
/// Usage:
///
///   TaneConfig config;          // defaults = exact FDs, TANE/MEM
///   config.epsilon = 0.05;      // or approximate discovery
///   StatusOr<DiscoveryResult> result = Tane::Discover(relation, config);
///
/// The result lists each dependency with its measured g3 error, the minimal
/// keys encountered during key pruning, and counters describing the run.
///
/// Resource limits: wiring a RunController into the config time-boxes and
/// memory-bounds the run. The controller is polled at level boundaries and
/// every few dozen validity tests / partition products; when its deadline
/// expires or it is cancelled, Discover returns OK with a *partial* result
/// (DiscoveryResult::completion != kComplete) holding every dependency
/// already proven. Under StorageMode::kAuto a breached memory budget
/// migrates the partition store to disk mid-run instead of failing.
class Tane {
 public:
  /// Runs the discovery. Fails only on invalid configuration, spill-I/O
  /// errors (StorageMode::kDisk/kAuto), or a breached memory budget under
  /// StorageMode::kMemory. Output FDs are in canonical order.
  static StatusOr<DiscoveryResult> Discover(const Relation& relation,
                                            const TaneConfig& config = {});
};

}  // namespace tane

#endif  // TANE_CORE_TANE_H_
