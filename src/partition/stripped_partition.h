#ifndef TANE_PARTITION_STRIPPED_PARTITION_H_
#define TANE_PARTITION_STRIPPED_PARTITION_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace tane {

/// A partition π_X of the rows of a relation into equivalence classes, in
/// the (optionally) *stripped* representation of the TANE paper: equivalence
/// classes of size one are dropped, since they can never witness a violation
/// of a dependency and never shrink under further refinement.
///
/// Storage is CSR-style: `row_ids()` is the concatenation of all classes and
/// `class_offsets()` delimits them, so a partition with c classes and m
/// member rows costs exactly (m + c + 1) 32-bit words.
///
/// Key quantities (paper §2 and §5, extended version [4]):
///  * full rank |π_X|  = num_rows − e(X), exposed as FullRank();
///  * e(X)             = ‖π_X‖ − |classes| over stripped classes, exposed as
///                       Error() — the minimum number of rows to remove to
///                       make X a superkey;
///  * Lemma 2 test     : X→A holds  ⇔  |π_X| = |π_X∪A|  ⇔  e(X) = e(X∪A).
class StrippedPartition {
 public:
  /// An empty partition over `num_rows` rows (every class a singleton).
  explicit StrippedPartition(int64_t num_rows = 0, bool stripped = true)
      : num_rows_(num_rows), stripped_(stripped) {}

  /// Assembles from raw CSR arrays. `class_offsets` must start at 0, end at
  /// row_ids.size(), and be non-decreasing; row ids must be in range and
  /// distinct. When `stripped` is true, every class must have size >= 2.
  static StatusOr<StrippedPartition> Create(int64_t num_rows,
                                            std::vector<int32_t> row_ids,
                                            std::vector<int32_t> class_offsets,
                                            bool stripped = true);

  int64_t num_rows() const { return num_rows_; }

  /// Whether singleton classes have been dropped from the representation.
  bool stripped() const { return stripped_; }

  /// Number of stored equivalence classes.
  int64_t num_classes() const {
    return static_cast<int64_t>(class_offsets_.size()) - 1;
  }

  /// Number of rows in stored classes (‖π‖ in the paper).
  int64_t num_member_rows() const {
    return static_cast<int64_t>(row_ids_.size());
  }

  /// e(X): the minimum number of rows whose removal makes every class a
  /// singleton. Zero iff the attribute set is a superkey.
  int64_t Error() const { return num_member_rows() - num_classes(); }

  /// |π_X|: the full number of equivalence classes, counting singletons.
  int64_t FullRank() const { return num_rows_ - Error(); }

  /// True when no two rows agree on the underlying attribute set.
  bool IsSuperkey() const { return Error() == 0; }

  const std::vector<int32_t>& row_ids() const { return row_ids_; }
  const std::vector<int32_t>& class_offsets() const { return class_offsets_; }

  int32_t class_begin(int64_t cls) const { return class_offsets_[cls]; }
  int32_t class_end(int64_t cls) const { return class_offsets_[cls + 1]; }
  int32_t class_size(int64_t cls) const {
    return class_offsets_[cls + 1] - class_offsets_[cls];
  }

  /// Returns an equivalent partition with singleton classes removed. The
  /// identity when already stripped.
  StrippedPartition Stripped() const;

  /// Returns an equivalent unstripped partition (singletons re-added as
  /// one-row classes, in ascending row order after the stored classes).
  StrippedPartition Unstripped() const;

  /// Returns a canonical form — rows sorted within each class, classes
  /// sorted by first row — for structural comparison in tests.
  StrippedPartition Canonicalized() const;

  /// True when every class of this partition is contained in a single class
  /// of `other` (π refines π'). O(member rows of both). Used by Lemma 1.
  bool Refines(const StrippedPartition& other) const;

  /// A 64-bit hash of the full structural identity (row count,
  /// representation, and both CSR arrays). Equal partitions hash equal;
  /// used with a full structural compare by the interning PLI cache.
  uint64_t StructuralHash() const;

  /// Moves the CSR arrays out for buffer recycling, leaving this partition
  /// empty (all singletons) but structurally valid.
  void MoveBuffersInto(std::vector<int32_t>* row_ids,
                       std::vector<int32_t>* class_offsets);

  /// Approximate heap footprint in bytes.
  int64_t EstimatedBytes() const {
    return static_cast<int64_t>((row_ids_.capacity() +
                                 class_offsets_.capacity()) *
                                sizeof(int32_t));
  }

  friend bool operator==(const StrippedPartition& a,
                         const StrippedPartition& b) {
    return a.num_rows_ == b.num_rows_ && a.stripped_ == b.stripped_ &&
           a.row_ids_ == b.row_ids_ && a.class_offsets_ == b.class_offsets_;
  }

 private:
  friend class PartitionProduct;
  friend class PartitionBuilder;

  /// Adopts already-built CSR arrays without validation; `class_offsets`
  /// must satisfy the Create invariants. Used by PartitionProduct so pooled
  /// buffers become the partition's storage with no copy and — unlike the
  /// public constructors — no allocation for the initial {0} offsets.
  StrippedPartition(int64_t num_rows, bool stripped,
                    std::vector<int32_t> row_ids,
                    std::vector<int32_t> class_offsets)
      : num_rows_(num_rows),
        stripped_(stripped),
        row_ids_(std::move(row_ids)),
        class_offsets_(std::move(class_offsets)) {}

  int64_t num_rows_ = 0;
  bool stripped_ = true;
  std::vector<int32_t> row_ids_;
  std::vector<int32_t> class_offsets_{0};
};

}  // namespace tane

#endif  // TANE_PARTITION_STRIPPED_PARTITION_H_
