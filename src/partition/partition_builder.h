#ifndef TANE_PARTITION_PARTITION_BUILDER_H_
#define TANE_PARTITION_PARTITION_BUILDER_H_

#include <vector>

#include "lattice/attribute_set.h"
#include "partition/stripped_partition.h"
#include "relation/relation.h"

namespace tane {

/// Builds single-attribute partitions directly from the database, as in
/// TANE's initialization: π_{A} for each A ∈ R is computed with one counting
/// pass over the dictionary-encoded column, O(|r| + |dictionary|).
class PartitionBuilder {
 public:
  /// π_{A} for one attribute. `stripped` selects the representation.
  static StrippedPartition ForAttribute(const Relation& relation,
                                        int attribute, bool stripped = true);

  /// π_A for every attribute of the relation, indexed by attribute.
  static std::vector<StrippedPartition> ForAllAttributes(
      const Relation& relation, bool stripped = true);

  /// π_X for an arbitrary attribute set, computed from scratch by hashing
  /// row tuples. O(|r| · |X|). TANE itself never needs this (it uses
  /// products); it exists as an independent reference implementation for
  /// tests and for the Schlimmer-style "from singletons" ablation.
  static StrippedPartition ForAttributeSet(const Relation& relation,
                                           AttributeSet attributes,
                                           bool stripped = true);
};

}  // namespace tane

#endif  // TANE_PARTITION_PARTITION_BUILDER_H_
