#include "partition/buffer_pool.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/mutex.h"

namespace tane {

namespace {

int64_t CapacityBytes(const std::vector<int32_t>& buffer) {
  return static_cast<int64_t>(buffer.capacity() * sizeof(int32_t));
}

}  // namespace

PartitionBufferPool::PartitionBufferPool(int num_slots,
                                         int64_t max_pooled_bytes)
    : max_pooled_bytes_(max_pooled_bytes),
      slots_(std::max(num_slots, 1)) {}

std::vector<int32_t> PartitionBufferPool::Acquire(int slot,
                                                  size_t capacity_hint) {
  Slot& cache = slots_[slot];
  ++cache.acquires;
  if (metrics_ != nullptr) metrics_->Add(slot, obs::kPoolAcquires, 1);
  if (cache.buffers.empty()) {
    MutexLock lock(&mu_);
    const size_t take = std::min(kRefillBatch, shared_.size());
    for (size_t i = 0; i < take; ++i) {
      shared_bytes_ -= CapacityBytes(shared_.back());
      cache.bytes += CapacityBytes(shared_.back());
      cache.buffers.push_back(std::move(shared_.back()));
      shared_.pop_back();
    }
  }
  if (cache.buffers.empty()) {
    return {};  // pool dry: the caller allocates (and counts it)
  }
  // Prefer the first buffer already big enough; otherwise the largest, so
  // the caller's reserve grows the least-wasteful candidate.
  size_t best = 0;
  for (size_t i = 0; i < cache.buffers.size(); ++i) {
    if (cache.buffers[i].capacity() >= capacity_hint) {
      best = i;
      break;
    }
    if (cache.buffers[i].capacity() > cache.buffers[best].capacity()) {
      best = i;
    }
  }
  std::vector<int32_t> buffer = std::move(cache.buffers[best]);
  cache.buffers[best] = std::move(cache.buffers.back());
  cache.buffers.pop_back();
  cache.bytes -= CapacityBytes(buffer);
  ++cache.reuses;
  if (metrics_ != nullptr) metrics_->Add(slot, obs::kPoolReuses, 1);
  // Contents and size are left as recycled: a caller that resizes to a
  // smaller-or-equal size pays nothing, where a cleared buffer would force
  // it to zero-fill the whole range it is about to overwrite anyway.
  return buffer;
}

void PartitionBufferPool::Recycle(std::vector<int32_t>&& buffer) {
  if (buffer.capacity() == 0) return;
  MutexLock lock(&mu_);
  ++recycles_;
  if (metrics_ != nullptr) metrics_->AddShared(obs::kPoolRecycles, 1);
  if (shared_bytes_ + CapacityBytes(buffer) > max_pooled_bytes_) {
    ++dropped_;
    if (metrics_ != nullptr) metrics_->AddShared(obs::kPoolDropped, 1);
    return;  // `buffer` frees on scope exit
  }
  shared_bytes_ += CapacityBytes(buffer);
  shared_.push_back(std::move(buffer));
}

void PartitionBufferPool::Recycle(StrippedPartition&& partition) {
  std::vector<int32_t> rows;
  std::vector<int32_t> offsets;
  partition.MoveBuffersInto(&rows, &offsets);
  Recycle(std::move(rows));
  Recycle(std::move(offsets));
}

std::vector<std::vector<int32_t>> PartitionBufferPool::TakeAll() {
  std::vector<std::vector<int32_t>> taken;
  for (Slot& slot : slots_) {
    for (std::vector<int32_t>& buffer : slot.buffers) {
      taken.push_back(std::move(buffer));
    }
    slot.buffers.clear();
    slot.bytes = 0;
  }
  MutexLock lock(&mu_);
  for (std::vector<int32_t>& buffer : shared_) {
    taken.push_back(std::move(buffer));
  }
  shared_.clear();
  shared_bytes_ = 0;
  return taken;
}

int64_t PartitionBufferPool::pooled_bytes() const {
  int64_t total = 0;
  for (const Slot& slot : slots_) total += slot.bytes;
  MutexLock lock(&mu_);
  return total + shared_bytes_;
}

BufferPoolStats PartitionBufferPool::stats() const {
  BufferPoolStats stats;
  for (const Slot& slot : slots_) {
    stats.acquires += slot.acquires;
    stats.reuses += slot.reuses;
  }
  MutexLock lock(&mu_);
  stats.recycles = recycles_;
  stats.dropped = dropped_;
  return stats;
}

}  // namespace tane
