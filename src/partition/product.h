#ifndef TANE_PARTITION_PRODUCT_H_
#define TANE_PARTITION_PRODUCT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "partition/buffer_pool.h"
#include "partition/stripped_partition.h"
#include "util/status.h"

namespace tane {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Computes partition products π' · π'' = π_{X∪Y} (Lemma 3) with the
/// linear-time probe-table algorithm of the TANE paper. All scratch is flat
/// arrays — an O(|r|) epoch-labelled probe table (no reset pass between
/// calls), a bucket arena laid out by `a`'s own CSR offsets (each bucket's
/// capacity is exactly its `a` class size), and a per-class count array —
/// owned by this object and reused across calls, which matters because
/// TANE computes one product per lattice node. Surviving buckets stream
/// into the output with contiguous copies, so Multiply performs no
/// per-class heap allocations at all.
///
/// With a PartitionBufferPool attached (set_buffer_pool), the output arrays
/// themselves come from recycled buffers of released partitions; once the
/// pool has warmed up, steady-state products are allocation-free —
/// allocations() counts the heap allocations Multiply did have to perform
/// (scratch growth or an undersized pooled buffer) and reads 0 in steady
/// state. Instances are not thread-safe; parallel callers keep one
/// PartitionProduct per worker (see core/tane.cc), each acquiring from its
/// own pool slot.
///
/// Both operands must be over the same number of rows and use the same
/// representation (stripped or unstripped); the result uses that
/// representation as well. Operands over more rows than the constructed
/// size are fine — the probe table grows to fit — but operands that
/// disagree with each other are rejected with kInvalidArgument.
class PartitionProduct {
 public:
  explicit PartitionProduct(int64_t num_rows);

  /// Output buffers are acquired from `pool` (slot `slot`) instead of the
  /// heap. The pool must outlive this object; pass nullptr to detach.
  void set_buffer_pool(PartitionBufferPool* pool, int slot = 0) {
    pool_ = pool;
    pool_slot_ = slot;
  }

  /// Hands the next Multiply its output buffers directly, bypassing the
  /// pool. Used by the parallel executor's window planner, which assigns
  /// pooled buffers to candidates in node order *before* the window starts —
  /// per-worker pool slots warm up independently, so slot-local Acquire
  /// would make the allocation count drift with the thread count, while a
  /// coordinator-planned assignment is a pure function of the candidate
  /// list. Consumed (and cleared) by the next Multiply call; undersized
  /// buffers are still grown and counted as allocations, deterministically.
  void ProvideOutputBuffers(std::vector<int32_t> rows,
                            std::vector<int32_t> offsets) {
    provided_rows_ = std::move(rows);
    provided_offsets_ = std::move(offsets);
    has_provided_ = true;
  }

  /// Mirrors allocation counts (kProductAllocations) and records the class
  /// count / member-row histograms of every successful product into
  /// `metrics`, on shard `shard` (the caller's worker index). Not owned;
  /// nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics, int shard = 0) {
    metrics_ = metrics;
    metrics_shard_ = shard;
  }

  /// The least refined common refinement of `a` and `b`. Fails with
  /// kInvalidArgument when the operands disagree on row count or
  /// representation.
  StatusOr<StrippedPartition> Multiply(const StrippedPartition& a,
                                       const StrippedPartition& b);

  /// Heap allocations performed by Multiply since construction (scratch
  /// growth plus output buffers the pool could not cover). 0 per product in
  /// steady state.
  int64_t allocations() const { return allocations_; }

  /// Returns allocations() and resets the counter (for periodic merges
  /// into run-wide stats).
  int64_t TakeAllocations() { return std::exchange(allocations_, 0); }

  /// Bytes retained by the reusable scratch arrays (probe table and
  /// per-class size/cursor arrays), for memory-budget accounting.
  int64_t ScratchBytes() const {
    return static_cast<int64_t>(
        (probe_.capacity() + group_size_.capacity() + touched_.capacity() +
         bucket_data_.capacity()) *
        sizeof(int32_t));
  }

 private:
  // One heap allocation happened: bump the local counter and, when a
  // registry is attached, the kProductAllocations shard counter with it.
  void CountAllocation();

  int64_t num_rows_;
  // probe_[row] = probe_base_ + class index within `a`; entries below
  // probe_base_ are stale labels from earlier calls (or the initial -1).
  // Advancing probe_base_ past the labels just written invalidates them all
  // at once, so no reset pass over `a`'s rows is needed between calls; the
  // table is only re-initialized when the base nears INT32_MAX.
  std::vector<int32_t> probe_;
  int64_t probe_base_ = 0;
  // Per-`a`-class scratch for the current `b` class: group_size_ counts the
  // rows currently in each flat bucket (zeroed again before moving on).
  std::vector<int32_t> group_size_;
  // The `a` classes the current `b` class touched, in first-seen order —
  // which is the emission order, matching the nested-scratch original.
  std::vector<int32_t> touched_;
  // Flat bucket arena: bucket for `a` class g occupies the range that class
  // g occupies in `a`'s own CSR layout (a.class_offsets()[g], exact
  // capacity by construction), so buckets never need growth or checks.
  std::vector<int32_t> bucket_data_;

  // Buffers staged by ProvideOutputBuffers for the next Multiply.
  std::vector<int32_t> provided_rows_;
  std::vector<int32_t> provided_offsets_;
  bool has_provided_ = false;

  PartitionBufferPool* pool_ = nullptr;
  int pool_slot_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  int metrics_shard_ = 0;
  int64_t allocations_ = 0;
};

}  // namespace tane

#endif  // TANE_PARTITION_PRODUCT_H_
