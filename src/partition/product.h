#ifndef TANE_PARTITION_PRODUCT_H_
#define TANE_PARTITION_PRODUCT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "partition/buffer_pool.h"
#include "partition/kernels/kernels.h"
#include "partition/stripped_partition.h"
#include "util/status.h"

namespace tane {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Computes partition products π' · π'' = π_{X∪Y} (Lemma 3) with the
/// linear-time probe-table algorithm of the TANE paper, restructured as two
/// data-parallel kernels (src/partition/kernels/):
///
///  * pass 1 labels the rows of `a` with epoch-tagged class ids — a scatter
///    dispatched to the selected kernel, or to the cache-conscious radix
///    variant when the probe table outgrows the cache;
///  * pass 2 scatters `b`'s rows into a flat bucket arena, branch-free per
///    row (invalid rows are predicated onto a trash bucket) and with the
///    per-bucket counter chain broken through registers. When the probe
///    table outgrows the cache, the labels are first gathered into a flat
///    SoA group stream by the kernel (SIMD gather/compare on AVX2, unrolled
///    prefetched scalar otherwise) so the random probe loads overlap;
///    cache-resident tables probe directly. See product.cc for the two
///    emission strategies (index-order scan vs first-seen touched list),
///    selected by operand shape alone.
///
/// All scratch is flat arrays — an O(|r|) epoch-labelled probe table (no
/// reset pass between calls), the SoA group stream, a bucket arena laid out
/// by `a`'s own CSR offsets (each bucket's capacity is exactly its `a`
/// class size), and a per-class cursor/count array — owned by this object
/// and reused across calls. Surviving buckets stream into the output with
/// contiguous copies, so Multiply performs no per-class heap allocations.
///
/// Every kernel computes the same integer stream, and every shape-dependent
/// strategy choice is a pure function of the operands, so the output (and
/// the allocation count) is bit-identical across kernels and thread counts;
/// the equivalence fuzz suite in tests/kernel_equivalence_test.cc enforces
/// this.
///
/// With a PartitionBufferPool attached (set_buffer_pool), the output arrays
/// themselves come from recycled buffers of released partitions; once the
/// pool has warmed up, steady-state products are allocation-free —
/// allocations() counts the heap allocations Multiply did have to perform
/// (scratch growth or an undersized pooled buffer) and reads 0 in steady
/// state. Instances are not thread-safe; parallel callers keep one
/// PartitionProduct per worker (see core/tane.cc), each acquiring from its
/// own pool slot.
///
/// Both operands must be over the same number of rows and use the same
/// representation (stripped or unstripped); the result uses that
/// representation as well. Operands over more rows than the constructed
/// size are fine — the probe table grows to fit — but operands that
/// disagree with each other are rejected with kInvalidArgument.
class PartitionProduct {
 public:
  explicit PartitionProduct(int64_t num_rows);

  /// Output buffers are acquired from `pool` (slot `slot`) instead of the
  /// heap. The pool must outlive this object; pass nullptr to detach.
  void set_buffer_pool(PartitionBufferPool* pool, int slot = 0) {
    pool_ = pool;
    pool_slot_ = slot;
  }

  /// Selects the dispatch kernel for the label/gather passes. Defaults to
  /// DefaultKernel() (the widest ISA the CPU supports). Not owned; must be
  /// one of the process-lifetime tables from partition/kernels.
  void set_kernel(const KernelOps* kernel) { kernel_ = kernel; }

  const KernelOps* kernel() const { return kernel_; }

  /// Hands the next Multiply its output buffers directly, bypassing the
  /// pool. Used by the parallel executor's window planner, which assigns
  /// pooled buffers to candidates in node order *before* the window starts —
  /// per-worker pool slots warm up independently, so slot-local Acquire
  /// would make the allocation count drift with the thread count, while a
  /// coordinator-planned assignment is a pure function of the candidate
  /// list. Consumed (and cleared) by the next Multiply call; undersized
  /// buffers are still grown and counted as allocations, deterministically.
  void ProvideOutputBuffers(std::vector<int32_t> rows,
                            std::vector<int32_t> offsets) {
    provided_rows_ = std::move(rows);
    provided_offsets_ = std::move(offsets);
    has_provided_ = true;
  }

  /// Mirrors allocation counts (kProductAllocations), the rows-scanned /
  /// label-reuse counters, and the class-count / member-row histograms of
  /// every successful product into `metrics`, on shard `shard` (the
  /// caller's worker index). Not owned; nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics, int shard = 0) {
    metrics_ = metrics;
    metrics_shard_ = shard;
  }

  /// The least refined common refinement of `a` and `b`. Fails with
  /// kInvalidArgument when the operands disagree on row count or
  /// representation.
  ///
  /// `a_token`, when nonzero, is a caller-provided identity for `a`'s
  /// *content*: two calls on the same PartitionProduct passing the same
  /// nonzero token promise that their `a` operands are structurally equal,
  /// which lets Multiply skip re-labeling the probe table (pass 1) when
  /// consecutive products share their left parent — TANE's candidate lists
  /// are sorted, so runs of nodes share a prefix parent. The discovery
  /// driver passes the store handle (+1): handles are allocated by a
  /// monotone counter and never reused, so equal handles always mean equal
  /// content. Passing 0 (the default) never reuses. Reuse changes neither
  /// the output nor the allocation count — only the rows scanned.
  StatusOr<StrippedPartition> Multiply(const StrippedPartition& a,
                                       const StrippedPartition& b,
                                       uint64_t a_token = 0);

  /// Heap allocations performed by Multiply since construction (scratch
  /// growth plus output buffers the pool could not cover). 0 per product in
  /// steady state.
  int64_t allocations() const { return allocations_; }

  /// Returns allocations() and resets the counter (for periodic merges
  /// into run-wide stats).
  int64_t TakeAllocations() { return std::exchange(allocations_, 0); }

  /// Member rows actually walked by Multiply since construction: the
  /// labeling pass over `a` (skipped on token reuse) plus the probe pass
  /// over `b`. This is the honest denominator for rows/sec — the nominal
  /// relation row count overstates the work by the singleton-stripped
  /// fraction and ignores label reuse.
  int64_t rows_scanned() const { return rows_scanned_; }

  int64_t TakeRowsScanned() { return std::exchange(rows_scanned_, 0); }

  /// Products whose labeling pass was skipped because `a_token` matched the
  /// previous call.
  int64_t label_reuses() const { return label_reuses_; }

  /// Test hook for the epoch-overflow path: plants an arbitrary probe_base_
  /// so a test can drive the base across the INT32_MAX re-initialization
  /// boundary without 2^31 real products. Clears the table (labels written
  /// at a base *above* the planted one would otherwise alias as live) and
  /// invalidates token reuse.
  void set_probe_base_for_testing(int64_t base) {
    probe_.assign(probe_.size(), -1);
    probe_base_ = base;
    labeled_classes_ = 0;
    last_a_token_ = 0;
  }

  int64_t probe_base_for_testing() const { return probe_base_; }

  /// Lowers the radix auto-select threshold (see RadixLabeler); the
  /// equivalence tests force the radix path on small partitions. Re-warms
  /// the radix scratch so allocation counts stay deterministic.
  void set_radix_min_probe_bytes_for_testing(int64_t bytes);

  int64_t radix_labelings_for_testing() const {
    return radix_.radix_labelings();
  }

  /// Bytes retained by the reusable scratch arrays (probe table, SoA group
  /// stream, per-class size arrays, radix buckets), for memory-budget
  /// accounting.
  int64_t ScratchBytes() const {
    return static_cast<int64_t>(
               (probe_.capacity() + group_size_.capacity() +
                touched_.capacity() + bucket_data_.capacity() +
                groups_.capacity()) *
               sizeof(int32_t)) +
           radix_.ScratchBytes();
  }

 private:
  // One heap allocation happened: bump the local counter and, when a
  // registry is attached, the kProductAllocations shard counter with it.
  void CountAllocation();

  // Pre-sizes the radix SoA scratch iff the probe span can ever trigger the
  // radix path — decided from num_rows_ alone, so every worker's scratch
  // (and therefore the run-wide allocation count) is identical at any
  // thread count.
  void WarmRadixScratch();

  int64_t num_rows_;
  // probe_[row] = probe_base_ + class index within `a` for the currently
  // labeled operand; entries below probe_base_ are stale labels from
  // earlier calls (or the initial -1). Advancing probe_base_ past the live
  // labels invalidates them all at once, so no reset pass over `a`'s rows
  // is needed between calls; the table is only re-initialized when the base
  // nears INT32_MAX.
  std::vector<int32_t> probe_;
  int64_t probe_base_ = 0;
  // Classes labeled at probe_base_ by the previous call; the next
  // non-reusing call advances the base past them.
  int64_t labeled_classes_ = 0;
  // Content identity of the currently labeled `a` (0 = not reusable).
  uint64_t last_a_token_ = 0;
  // SoA class-label stream for `b`'s member rows, filled by the kernel's
  // gather in the large-probe regime and consumed by the branch-free
  // scatter.
  std::vector<int32_t> groups_;
  // Per-`a`-class scratch (sized classes + trash + 1): bucket cursors on
  // the index-scan emission path, bucket fill counts on the touched-list
  // path. All-zero between products — both paths restore that invariant.
  std::vector<int32_t> group_size_;
  // Touched-list path only: the `a` classes the current `b` class touched,
  // in first-seen order — which is that path's emission order. Written
  // branch-free (unconditional store, predicated advance), so it is kept
  // sized rather than push_back-grown.
  std::vector<int32_t> touched_;
  // Flat bucket arena: bucket for `a` class g occupies the range that class
  // g occupies in `a`'s own CSR layout (a.class_offsets()[g], exact
  // capacity by construction), so buckets never need growth or checks. The
  // trash bucket for predicated invalid-row writes sits past them, at the
  // end offset `a`'s CSR array already carries, sized for a full `b` class
  // (hence the a.rows + b.rows arena bound).
  std::vector<int32_t> bucket_data_;

  const KernelOps* kernel_ = DefaultKernel();
  RadixLabeler radix_;

  // Buffers staged by ProvideOutputBuffers for the next Multiply.
  std::vector<int32_t> provided_rows_;
  std::vector<int32_t> provided_offsets_;
  bool has_provided_ = false;

  PartitionBufferPool* pool_ = nullptr;
  int pool_slot_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  int metrics_shard_ = 0;
  int64_t allocations_ = 0;
  int64_t rows_scanned_ = 0;
  int64_t label_reuses_ = 0;
};

}  // namespace tane

#endif  // TANE_PARTITION_PRODUCT_H_
