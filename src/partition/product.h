#ifndef TANE_PARTITION_PRODUCT_H_
#define TANE_PARTITION_PRODUCT_H_

#include <cstdint>
#include <vector>

#include "partition/stripped_partition.h"
#include "util/status.h"

namespace tane {

/// Computes partition products π' · π'' = π_{X∪Y} (Lemma 3) with the
/// linear-time probe-table algorithm of the TANE paper. The scratch arrays
/// (one O(|r|) probe table plus per-class accumulators) are owned by this
/// object and reused across calls, which matters because TANE computes one
/// product per lattice node. Instances are not thread-safe; parallel
/// callers keep one PartitionProduct per worker (see core/tane.cc).
///
/// Both operands must be over the same number of rows and use the same
/// representation (stripped or unstripped); the result uses that
/// representation as well. Operands over more rows than the constructed
/// size are fine — the probe table grows to fit — but operands that
/// disagree with each other are rejected with kInvalidArgument.
class PartitionProduct {
 public:
  explicit PartitionProduct(int64_t num_rows);

  /// The least refined common refinement of `a` and `b`. Fails with
  /// kInvalidArgument when the operands disagree on row count or
  /// representation.
  StatusOr<StrippedPartition> Multiply(const StrippedPartition& a,
                                       const StrippedPartition& b);

 private:
  int64_t num_rows_;
  // probe_[row] = class index within `a`, or -1 when `row` is in no stored
  // class of `a`. Reset after every Multiply.
  std::vector<int32_t> probe_;
  // groups_[i] accumulates rows of the current `b` class that fall in `a`
  // class i; cleared as classes are emitted.
  std::vector<std::vector<int32_t>> groups_;
  std::vector<int32_t> touched_;
};

}  // namespace tane

#endif  // TANE_PARTITION_PRODUCT_H_
