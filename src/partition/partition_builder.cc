#include "partition/partition_builder.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace tane {

StrippedPartition PartitionBuilder::ForAttribute(const Relation& relation,
                                                 int attribute,
                                                 bool stripped) {
  // Invariant: callers iterate the schema, so the index is in range.
  // tane-lint: allow(tane-check)
  TANE_CHECK(attribute >= 0 && attribute < relation.num_columns());
  const Column& column = relation.column(attribute);
  const int64_t rows = relation.num_rows();
  const int64_t card = column.cardinality();

  // Counting sort by code: stable bucketing of row ids by value.
  std::vector<int32_t> counts(card + 1, 0);
  for (int32_t code : column.codes) ++counts[code + 1];
  std::vector<int32_t> starts(counts);
  for (int64_t v = 1; v <= card; ++v) starts[v] += starts[v - 1];

  std::vector<int32_t> bucketed(rows);
  std::vector<int32_t> cursor(starts.begin(), starts.end() - 1);
  for (int64_t row = 0; row < rows; ++row) {
    bucketed[cursor[column.codes[row]]++] = static_cast<int32_t>(row);
  }

  const int32_t min_size = stripped ? 2 : 1;
  StrippedPartition out(rows, stripped);
  out.row_ids_.reserve(rows);
  for (int64_t v = 0; v < card; ++v) {
    const int32_t begin = starts[v];
    const int32_t end = starts[v + 1];
    if (end - begin < min_size) continue;
    out.row_ids_.insert(out.row_ids_.end(), bucketed.begin() + begin,
                        bucketed.begin() + end);
    out.class_offsets_.push_back(static_cast<int32_t>(out.row_ids_.size()));
  }
  out.row_ids_.shrink_to_fit();
  return out;
}

std::vector<StrippedPartition> PartitionBuilder::ForAllAttributes(
    const Relation& relation, bool stripped) {
  std::vector<StrippedPartition> partitions;
  partitions.reserve(relation.num_columns());
  for (int a = 0; a < relation.num_columns(); ++a) {
    partitions.push_back(ForAttribute(relation, a, stripped));
  }
  return partitions;
}

StrippedPartition PartitionBuilder::ForAttributeSet(const Relation& relation,
                                                    AttributeSet attributes,
                                                    bool stripped) {
  const int64_t rows = relation.num_rows();
  const std::vector<int> columns = attributes.ToIndices();

  if (columns.empty()) {
    // π_∅ has a single class containing every row.
    StrippedPartition out(rows, stripped);
    if (rows >= (stripped ? 2 : 1)) {
      out.row_ids_.resize(rows);
      for (int64_t row = 0; row < rows; ++row) {
        out.row_ids_[row] = static_cast<int32_t>(row);
      }
      out.class_offsets_.push_back(static_cast<int32_t>(rows));
    }
    return out;
  }

  // Hash each row's code tuple to a dense group id.
  struct TupleHash {
    size_t operator()(const std::vector<int32_t>& tuple) const {
      uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (int32_t code : tuple) {
        h ^= static_cast<uint64_t>(code) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
      }
      return static_cast<size_t>(h);
    }
  };
  std::unordered_map<std::vector<int32_t>, int32_t, TupleHash> groups;
  groups.reserve(rows);
  std::vector<std::vector<int32_t>> classes;
  std::vector<int32_t> tuple(columns.size());
  for (int64_t row = 0; row < rows; ++row) {
    for (size_t i = 0; i < columns.size(); ++i) {
      tuple[i] = relation.code(row, columns[i]);
    }
    auto [it, inserted] =
        groups.emplace(tuple, static_cast<int32_t>(classes.size()));
    if (inserted) classes.emplace_back();
    classes[it->second].push_back(static_cast<int32_t>(row));
  }

  const size_t min_size = stripped ? 2 : 1;
  StrippedPartition out(rows, stripped);
  for (const std::vector<int32_t>& cls : classes) {
    if (cls.size() < min_size) continue;
    out.row_ids_.insert(out.row_ids_.end(), cls.begin(), cls.end());
    out.class_offsets_.push_back(static_cast<int32_t>(out.row_ids_.size()));
  }
  return out;
}

}  // namespace tane
