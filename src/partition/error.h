#ifndef TANE_PARTITION_ERROR_H_
#define TANE_PARTITION_ERROR_H_

#include <cstdint>
#include <vector>

#include "partition/kernels/kernels.h"
#include "partition/stripped_partition.h"
#include "util/status.h"

namespace tane {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// ⌊ε·scale⌋: the exact integer validity threshold. A dependency is valid
/// iff its violation count (g3 removals, g2 rows, or g1 ordered pairs) is
/// <= this value, where `scale` is |r| (g3, g2) or |r|² (g1). Computing the
/// threshold once and comparing raw counts against it keeps every validity
/// decision in exact integer arithmetic — floating-point comparisons with
/// absolute slack (the old `error <= ε + 1e-9`) misclassify borderline
/// dependencies once ε·scale grows past the point where a double's ulp
/// exceeds the slack. tools/tane_lint.py's float-threshold rule enforces
/// that validity tests go through this helper.
int64_t IntegerThreshold(double epsilon, double scale);

/// Lower and upper bounds on the g3 removal count of X → A derived from the
/// e(·) values alone (extended version [4], "a method to quickly bound the
/// g3 error"):
///
///     e(X) − e(X∪A)  ≤  removal count  ≤  e(X).
///
/// TANE's approximate mode uses these to skip the O(|r|) exact scan whenever
/// the bound already decides validity against the threshold ε.
struct G3Bounds {
  int64_t lower = 0;
  int64_t upper = 0;
};

/// Computes the bounds above from the two partitions' e(·) values. O(1).
G3Bounds BoundG3RemovalCount(const StrippedPartition& lhs,
                             const StrippedPartition& lhs_with_rhs);

/// Computes the exact g3 error of dependencies X → A from π_X and π_{X∪A}
/// (paper §2): for every class c of π_X the rows outside the largest
/// π_{X∪A}-subclass of c must be removed. Structurally a counting pass —
/// and implemented as one: the labeling pass is an epoch-tagged scatter
/// (no reset pass between calls, like PartitionProduct's probe table), the
/// counting pass gathers labels through the dispatch kernel into a flat
/// SoA stream (SIMD where available), and the per-class accumulation is
/// branch-free — rows that are singletons in π_{X∪A} are predicated into a
/// dummy counter slot instead of branching. Every kernel produces the same
/// counts, so validity decisions are bit-identical across kernels.
///
/// The scratch arrays are reused across calls; construction takes the
/// relation's row count, but partitions over more rows simply grow the
/// scratch. Instances are not thread-safe; parallel callers keep one
/// G3Calculator per worker.
///
/// Every method fails with kInvalidArgument when the two partitions
/// disagree on their row count.
class G3Calculator {
 public:
  explicit G3Calculator(int64_t num_rows);

  /// Selects the dispatch kernel for the gather pass. Defaults to
  /// DefaultKernel(). Not owned.
  void set_kernel(const KernelOps* kernel) { kernel_ = kernel; }

  const KernelOps* kernel() const { return kernel_; }

  /// Mirrors the member rows walked by every scan into `metrics`
  /// (kG3RowsScanned), on shard `shard`. Not owned; nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics, int shard = 0) {
    metrics_ = metrics;
    metrics_shard_ = shard;
  }

  /// The minimum number of rows to remove so that X → A holds.
  /// Both partitions may be stripped or unstripped.
  StatusOr<int64_t> RemovalCount(const StrippedPartition& lhs,
                                 const StrippedPartition& lhs_with_rhs);

  /// g3(X → A) = RemovalCount / |r|, in [0, 1]. Returns 0 for empty
  /// relations.
  StatusOr<double> Error(const StrippedPartition& lhs,
                         const StrippedPartition& lhs_with_rhs);

  /// The g1 numerator (Kivinen & Mannila [5]): the number of *ordered* row
  /// pairs (t, u), t ≠ u, that agree on X but differ on A. g1 itself is
  /// this count divided by |r|².
  StatusOr<int64_t> ViolatingPairCount(const StrippedPartition& lhs,
                                       const StrippedPartition& lhs_with_rhs);

  /// g1(X → A) = ViolatingPairCount / |r|².
  StatusOr<double> G1Error(const StrippedPartition& lhs,
                           const StrippedPartition& lhs_with_rhs);

  /// The g2 numerator: the number of rows involved in at least one
  /// violating pair. A row t violates iff its π_X class contains a row
  /// disagreeing on A, i.e. iff the class splits under π_{X∪A}.
  StatusOr<int64_t> ViolatingRowCount(const StrippedPartition& lhs,
                                      const StrippedPartition& lhs_with_rhs);

  /// g2(X → A) = ViolatingRowCount / |r|.
  StatusOr<double> G2Error(const StrippedPartition& lhs,
                           const StrippedPartition& lhs_with_rhs);

  /// Member rows walked (labeling + counting passes) since construction.
  int64_t rows_scanned() const { return rows_scanned_; }

 private:
  // Validates the operands, grows the scratch when they cover more rows
  // than the constructed size, and runs the epoch-tagged labeling pass over
  // lhs_with_rhs. On success `*base` holds the epoch the labels were
  // written at: probe_[row] - *base is the π_{X∪A} class of `row`, negative
  // for singletons (and for stale labels of earlier calls — no reset pass
  // is ever needed).
  Status PrepareAndLabel(const StrippedPartition& lhs,
                         const StrippedPartition& lhs_with_rhs,
                         int32_t* base);

  void RecordScan(const StrippedPartition& lhs,
                  const StrippedPartition& lhs_with_rhs);

  int64_t num_rows_;
  // probe_[row] = probe_base_ + class index in π_{X∪A}; entries below
  // probe_base_ are stale (or the initial -1). Re-initialized only when the
  // base nears INT32_MAX.
  std::vector<int32_t> probe_;
  int64_t probe_base_ = 0;
  // counts_[cls] = rows of the current π_X class seen in π_{X∪A} class cls.
  // One extra trailing slot absorbs the predicated counts of invalid rows.
  std::vector<int32_t> counts_;
  // Touched counter slots of the current π_X class; written branch-free,
  // so sized rather than push_back-grown.
  std::vector<int32_t> touched_;
  // SoA class-label stream for the current π_X class (kernel gather).
  std::vector<int32_t> groups_;

  const KernelOps* kernel_ = DefaultKernel();
  obs::MetricsRegistry* metrics_ = nullptr;
  int metrics_shard_ = 0;
  int64_t rows_scanned_ = 0;
};

}  // namespace tane

#endif  // TANE_PARTITION_ERROR_H_
