#ifndef TANE_PARTITION_ERROR_H_
#define TANE_PARTITION_ERROR_H_

#include <cstdint>
#include <vector>

#include "partition/stripped_partition.h"
#include "util/status.h"

namespace tane {

/// ⌊ε·scale⌋: the exact integer validity threshold. A dependency is valid
/// iff its violation count (g3 removals, g2 rows, or g1 ordered pairs) is
/// <= this value, where `scale` is |r| (g3, g2) or |r|² (g1). Computing the
/// threshold once and comparing raw counts against it keeps every validity
/// decision in exact integer arithmetic — floating-point comparisons with
/// absolute slack (the old `error <= ε + 1e-9`) misclassify borderline
/// dependencies once ε·scale grows past the point where a double's ulp
/// exceeds the slack. tools/tane_lint.py's float-threshold rule enforces
/// that validity tests go through this helper.
int64_t IntegerThreshold(double epsilon, double scale);

/// Lower and upper bounds on the g3 removal count of X → A derived from the
/// e(·) values alone (extended version [4], "a method to quickly bound the
/// g3 error"):
///
///     e(X) − e(X∪A)  ≤  removal count  ≤  e(X).
///
/// TANE's approximate mode uses these to skip the O(|r|) exact scan whenever
/// the bound already decides validity against the threshold ε.
struct G3Bounds {
  int64_t lower = 0;
  int64_t upper = 0;
};

/// Computes the bounds above from the two partitions' e(·) values. O(1).
G3Bounds BoundG3RemovalCount(const StrippedPartition& lhs,
                             const StrippedPartition& lhs_with_rhs);

/// Computes the exact g3 error of dependencies X → A from π_X and π_{X∪A}
/// (paper §2): for every class c of π_X the rows outside the largest
/// π_{X∪A}-subclass of c must be removed. The scratch arrays are reused
/// across calls; construction takes the relation's row count, but
/// partitions over more rows simply grow the scratch. Instances are not
/// thread-safe; parallel callers keep one G3Calculator per worker.
///
/// Every method fails with kInvalidArgument when the two partitions
/// disagree on their row count.
class G3Calculator {
 public:
  explicit G3Calculator(int64_t num_rows);

  /// The minimum number of rows to remove so that X → A holds.
  /// Both partitions may be stripped or unstripped.
  StatusOr<int64_t> RemovalCount(const StrippedPartition& lhs,
                                 const StrippedPartition& lhs_with_rhs);

  /// g3(X → A) = RemovalCount / |r|, in [0, 1]. Returns 0 for empty
  /// relations.
  StatusOr<double> Error(const StrippedPartition& lhs,
                         const StrippedPartition& lhs_with_rhs);

  /// The g1 numerator (Kivinen & Mannila [5]): the number of *ordered* row
  /// pairs (t, u), t ≠ u, that agree on X but differ on A. g1 itself is
  /// this count divided by |r|².
  StatusOr<int64_t> ViolatingPairCount(const StrippedPartition& lhs,
                                       const StrippedPartition& lhs_with_rhs);

  /// g1(X → A) = ViolatingPairCount / |r|².
  StatusOr<double> G1Error(const StrippedPartition& lhs,
                           const StrippedPartition& lhs_with_rhs);

  /// The g2 numerator: the number of rows involved in at least one
  /// violating pair. A row t violates iff its π_X class contains a row
  /// disagreeing on A, i.e. iff the class splits under π_{X∪A}.
  StatusOr<int64_t> ViolatingRowCount(const StrippedPartition& lhs,
                                      const StrippedPartition& lhs_with_rhs);

  /// g2(X → A) = ViolatingRowCount / |r|.
  StatusOr<double> G2Error(const StrippedPartition& lhs,
                           const StrippedPartition& lhs_with_rhs);

 private:
  // Validates that the operands agree and grows probe_ when they cover
  // more rows than the constructed size.
  Status Prepare(const StrippedPartition& lhs,
                 const StrippedPartition& lhs_with_rhs);

  int64_t num_rows_;
  // probe_[row] = class index in π_{X∪A}, or -1. Reset after each call.
  std::vector<int32_t> probe_;
  // counts_[cls] = rows of the current π_X class seen in π_{X∪A} class cls.
  std::vector<int32_t> counts_;
  std::vector<int32_t> touched_;
};

}  // namespace tane

#endif  // TANE_PARTITION_ERROR_H_
