#ifndef TANE_PARTITION_BUFFER_POOL_H_
#define TANE_PARTITION_BUFFER_POOL_H_

#include <cstdint>
#include <vector>

#include "partition/stripped_partition.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tane {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Traffic counters for a PartitionBufferPool; snapshot via stats().
struct BufferPoolStats {
  /// Buffers handed out by Acquire.
  int64_t acquires = 0;
  /// Acquires served from a freelist (no fresh heap allocation).
  int64_t reuses = 0;
  /// Buffers returned by Recycle.
  int64_t recycles = 0;
  /// Recycled buffers dropped because the pool was at its byte cap.
  int64_t dropped = 0;
};

/// A freelist of `std::vector<int32_t>` buffers shared between the partition
/// store (which recycles the CSR arrays of released partitions) and the
/// per-worker PartitionProduct scratch (which acquires them for product
/// output). Once the pool has seen one level's worth of buffers, steady-state
/// products run without touching the allocator at all.
///
/// Concurrency model: every worker owns a numbered slot with a private,
/// lock-free cache of buffers; the shared freelist behind a mutex is touched
/// only to refill an empty slot cache (in batches) and by Recycle. TANE only
/// recycles between parallel regions (Release is coordinator-only), so the
/// mutex is effectively uncontended — workers never take it except on the
/// rare refill.
///
/// A byte cap bounds retained memory: recycling beyond `max_pooled_bytes`
/// frees the buffer instead of hoarding it. Retained bytes are visible via
/// pooled_bytes() so memory budgets can account for them.
class PartitionBufferPool {
 public:
  static constexpr int64_t kDefaultMaxPooledBytes = 256ll << 20;

  explicit PartitionBufferPool(int num_slots = 1,
                               int64_t max_pooled_bytes = kDefaultMaxPooledBytes);

  PartitionBufferPool(const PartitionBufferPool&) = delete;
  PartitionBufferPool& operator=(const PartitionBufferPool&) = delete;

  /// Hands out a buffer, preferring a pooled one whose capacity already
  /// covers `capacity_hint`. The returned buffer keeps its recycled size
  /// and contents (callers resize/clear as needed — a shrinking resize
  /// costs nothing, where handing out cleared buffers would force a
  /// zero-fill of memory about to be overwritten); its capacity is whatever
  /// the freelist had — callers reserve the rest (and count the allocation)
  /// themselves. `slot` must be in [0, num_slots).
  std::vector<int32_t> Acquire(int slot, size_t capacity_hint);

  /// Returns a buffer to the shared freelist (or frees it at the byte cap).
  /// Thread-safe, but TANE only calls it between parallel regions.
  void Recycle(std::vector<int32_t>&& buffer);

  /// Recycles both CSR arrays of `partition`, leaving it empty but valid.
  void Recycle(StrippedPartition&& partition);

  /// Drains every slot cache and the shared freelist into the returned
  /// vector, leaving the pool empty. Used by the parallel executor's window
  /// planner, which assigns the drained buffers to candidates in node order
  /// (a thread-count-invariant plan, unlike slot-local Acquire warm-up) and
  /// recycles the leftovers at the window boundary. Quiesce-only: no
  /// concurrent Acquire/Recycle. Counts neither acquires nor reuses — the
  /// planner's hand-offs are visible as product allocations staying zero.
  std::vector<std::vector<int32_t>> TakeAll();

  /// Bytes currently retained across the shared freelist and every slot
  /// cache. Meaningful between parallel regions (when no worker is
  /// mutating its slot).
  int64_t pooled_bytes() const;

  BufferPoolStats stats() const;

  /// Mirrors the pool counters into `metrics` as they happen: acquire and
  /// reuse counts land on the slot's shard (the registry must have at least
  /// num_slots shards), recycle and drop counts on the shared lane. Not
  /// owned; nullptr detaches.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  int num_slots() const { return static_cast<int>(slots_.size()); }

 private:
  // Buffers moved from the shared freelist into a slot per refill.
  static constexpr size_t kRefillBatch = 8;

  struct Slot {
    std::vector<std::vector<int32_t>> buffers;
    int64_t bytes = 0;
    // Counters accumulate lock-free per slot and are summed in stats().
    int64_t acquires = 0;
    int64_t reuses = 0;
  };

  const int64_t max_pooled_bytes_;
  // Each slot is owned by exactly one worker during a parallel region; the
  // aggregate readers (stats/pooled_bytes) only run between regions, so the
  // slots deliberately carry no lock. mu_ guards only the shared freelist.
  std::vector<Slot> slots_;
  // Set before the run's parallel regions start; read-only afterwards.
  obs::MetricsRegistry* metrics_ = nullptr;

  mutable Mutex mu_;
  std::vector<std::vector<int32_t>> shared_ TANE_GUARDED_BY(mu_);
  int64_t shared_bytes_ TANE_GUARDED_BY(mu_) = 0;
  int64_t recycles_ TANE_GUARDED_BY(mu_) = 0;
  int64_t dropped_ TANE_GUARDED_BY(mu_) = 0;
};

}  // namespace tane

#endif  // TANE_PARTITION_BUFFER_POOL_H_
