#ifndef TANE_PARTITION_KERNELS_KERNELS_H_
#define TANE_PARTITION_KERNELS_KERNELS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace tane {

/// Which data-parallel implementation of the partition-product / g3 hot
/// loops to use. kAuto picks the widest implementation the running CPU
/// supports (checked once at startup); the explicit kinds exist for the
/// --kernel= override, the differential-equivalence tests, and for forcing
/// the portable path under sanitizers. Every kernel computes the exact same
/// integer stream — discovery output is bit-identical across kinds (see
/// DESIGN.md §10) — so the kind is a scheduling knob, never part of the
/// checkpoint config fingerprint.
enum class KernelKind {
  kAuto = 0,
  kScalar,  ///< portable: 4x-unrolled loops with software prefetch
  kAvx2,    ///< x86-64: 8-wide SIMD gather/compare probe phase
  kNeon,    ///< aarch64: 4-wide lane loads + vector subtract
};

/// The two hot primitives every kernel provides. Both operate on the flat
/// SoA (row_id, class_label) stream of the probe-table algorithm:
///
///  * label_rows — pass 1 of Multiply and the g3 labeling pass: walk a
///    partition's CSR layout and scatter `base + class` into probe[row].
///    Write order is irrelevant (each row is labeled once), which is what
///    lets the radix variant reorder it for locality.
///  * gather_groups — the probe phase: groups[i] = probe[rows[i]] - base
///    for a contiguous run of member rows. The result is the class-label
///    half of the SoA stream; negative values mean "stale epoch or
///    singleton", and the caller's branch-free scatter consumes them
///    without a conditional.
///
/// Function pointers instead of virtual calls: the dispatch decision is
/// made once per run, the table is immutable, and the calls inline nothing
/// anyway (they loop over thousands of rows).
struct KernelOps {
  KernelKind kind;
  const char* name;
  void (*label_rows)(int32_t* probe, const int32_t* rows,
                     const int32_t* offsets, int64_t num_classes,
                     int32_t base);
  void (*gather_groups)(const int32_t* probe, const int32_t* rows, int64_t n,
                        int32_t base, int32_t* groups);
};

/// Parses a --kernel= / TaneConfig::kernel value ("auto", "scalar", "avx2",
/// "neon"). Unknown names are kInvalidArgument.
StatusOr<KernelKind> ParseKernelKind(const std::string& name);

/// Canonical name of a kind ("auto" included).
std::string_view KernelKindName(KernelKind kind);

/// True when the running process can execute `kind` (kScalar and kAuto are
/// always available; kAvx2 needs an x86-64 CPU with AVX2; kNeon needs
/// aarch64).
bool KernelIsAvailable(KernelKind kind);

/// Resolves a kind to its implementation. kAuto returns the widest
/// available kernel; an explicitly requested kernel the hardware cannot run
/// falls back to scalar with one warning — the portable path is always
/// correct, and tests force every named kind on every platform. Never
/// returns nullptr; the returned ops' `name` reflects what actually
/// dispatched (the fallback reports "scalar").
const KernelOps* ResolveKernel(KernelKind kind);

/// The kernel kAuto resolves to, decided once per process.
const KernelOps* DefaultKernel();

/// Every kernel the running process can execute (scalar first). The
/// differential-equivalence tests iterate this.
std::vector<const KernelOps*> AvailableKernels();

/// Cache-conscious labeling for huge partitions: instead of scattering
/// labels across a probe table much larger than the cache, the (row_id,
/// class_label) stream is first radix-bucketed by row-id high bits into SoA
/// scratch (sequential-ish writes through 256 bucket cursors), then each
/// bucket — whose rows all land in one small window of the probe table — is
/// scattered locally. Labeling order changes, the resulting table does not,
/// so outputs stay bit-identical. Auto-selected by PartitionProduct when
/// the probe span outgrows kDefaultMinProbeBytes (huge low-level classes);
/// the threshold is overridable so tests can force the path on small
/// inputs.
///
/// Not thread-safe; owned per worker next to the other product scratch.
class RadixLabeler {
 public:
  static constexpr int kBuckets = 256;
  /// Probe spans below 2 MiB sit comfortably in L2, where the direct
  /// scatter is already cache-resident and the radix detour only adds
  /// passes.
  static constexpr int64_t kDefaultMinProbeBytes = int64_t{1} << 21;

  /// True when labeling `member_rows` rows into a probe table over
  /// `probe_rows` rows should take the radix path.
  bool ShouldUse(int64_t probe_rows, int64_t member_rows) const {
    return probe_rows * static_cast<int64_t>(sizeof(int32_t)) >=
               min_probe_bytes_ &&
           member_rows >= kBuckets;
  }

  /// Grows the SoA scratch to hold `member_rows` entries. Returns true when
  /// a heap allocation happened (the caller counts it); sized up front by
  /// PartitionProduct so steady-state products allocate nothing.
  bool EnsureCapacity(int64_t member_rows);

  /// Radix-bucketed equivalent of ops.label_rows over the same CSR walk.
  /// Requires EnsureCapacity(offsets[num_classes]) beforehand.
  void LabelRows(const KernelOps& ops, int32_t* probe, int64_t probe_rows,
                 const int32_t* rows, const int32_t* offsets,
                 int64_t num_classes, int32_t base);

  /// Lowers the auto-select threshold; tests force the radix path on small
  /// partitions with value 0.
  void set_min_probe_bytes_for_testing(int64_t bytes) {
    min_probe_bytes_ = bytes;
  }

  int64_t min_probe_bytes() const { return min_probe_bytes_; }

  /// Times LabelRows took the radix path (observability for tests).
  int64_t radix_labelings() const { return radix_labelings_; }

  /// Bytes retained by the SoA bucket scratch, for budget accounting.
  int64_t ScratchBytes() const {
    return static_cast<int64_t>(
        (bucketed_rows_.capacity() + bucketed_labels_.capacity()) *
        sizeof(int32_t));
  }

 private:
  // SoA halves of the bucketed (row_id, class_label) stream.
  std::vector<int32_t> bucketed_rows_;
  std::vector<int32_t> bucketed_labels_;
  std::array<int32_t, kBuckets + 1> bucket_ends_{};
  int64_t min_probe_bytes_ = kDefaultMinProbeBytes;
  int64_t radix_labelings_ = 0;
};

}  // namespace tane

#endif  // TANE_PARTITION_KERNELS_KERNELS_H_
