// AVX2 kernel: 8-wide SIMD gather/compare for the probe phase. Compiled
// into every build via per-function target attributes (no global -mavx2,
// so the rest of the binary stays runnable on any x86-64) and selected at
// runtime only when CPUID reports AVX2. On non-x86 targets this TU
// contributes the nullptr stub only.

#include "partition/kernels/kernels.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

#include <immintrin.h>

namespace tane {
namespace {

constexpr int64_t kPrefetchDistance = 16;

// Pass 1 is a scatter, which AVX2 cannot vectorize (no scatter instruction
// before AVX-512); the win here is the prefetched, unrolled walk. Kept as a
// target("avx2") function so the compiler may still use VEX encodings.
__attribute__((target("avx2"))) void LabelRowsAvx2(int32_t* probe,
                                                   const int32_t* rows,
                                                   const int32_t* offsets,
                                                   int64_t num_classes,
                                                   int32_t base) {
  const int64_t member_rows = offsets[num_classes];
  for (int64_t cls = 0; cls < num_classes; ++cls) {
    const int32_t label = base + static_cast<int32_t>(cls);
    const int32_t end = offsets[cls + 1];
    for (int32_t i = offsets[cls]; i < end; ++i) {
      if (i + kPrefetchDistance < member_rows) {
        __builtin_prefetch(probe + rows[i + kPrefetchDistance], 1);
      }
      probe[rows[i]] = label;
    }
  }
}

__attribute__((target("avx2"))) void GatherGroupsAvx2(const int32_t* probe,
                                                      const int32_t* rows,
                                                      int64_t n, int32_t base,
                                                      int32_t* groups) {
  const __m256i vbase = _mm256_set1_epi32(base);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (i + kPrefetchDistance + 8 <= n) {
      // Two lines ahead covers the whole next gather width on 64-byte
      // lines; more individual prefetches cost issue slots the gather
      // itself needs.
      __builtin_prefetch(probe + rows[i + kPrefetchDistance]);
      __builtin_prefetch(probe + rows[i + kPrefetchDistance + 4]);
    }
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    const __m256i labels = _mm256_i32gather_epi32(probe, idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(groups + i),
                        _mm256_sub_epi32(labels, vbase));
  }
  for (; i < n; ++i) groups[i] = probe[rows[i]] - base;
}

constexpr KernelOps kAvx2Ops = {KernelKind::kAvx2, "avx2", &LabelRowsAvx2,
                                &GatherGroupsAvx2};

}  // namespace

const KernelOps* GetAvx2KernelOps() {
  static const bool kSupported = __builtin_cpu_supports("avx2");
  return kSupported ? &kAvx2Ops : nullptr;
}

}  // namespace tane

#else  // !x86-64

namespace tane {
const KernelOps* GetAvx2KernelOps() { return nullptr; }
}  // namespace tane

#endif
