#include "partition/kernels/kernels.h"

#include <string_view>

#include "util/logging.h"

namespace tane {
namespace {

// Prefetch distance (in rows) for the probe-table walks. The probe loads
// are the only irregular accesses in the hot loops; fetching the line
// ~16 rows ahead hides most of an L2 hit and a useful fraction of an LLC
// hit without evicting anything the next few iterations need. Measured as
// the knee of the distance sweep on the 5k/100k-row bench datasets;
// documented in DESIGN.md §10.
constexpr int64_t kPrefetchDistance = 16;

void LabelRowsScalar(int32_t* probe, const int32_t* rows,
                     const int32_t* offsets, int64_t num_classes,
                     int32_t base) {
  const int64_t member_rows = offsets[num_classes];
  for (int64_t cls = 0; cls < num_classes; ++cls) {
    const int32_t label = base + static_cast<int32_t>(cls);
    const int32_t end = offsets[cls + 1];
    for (int32_t i = offsets[cls]; i < end; ++i) {
      if (i + kPrefetchDistance < member_rows) {
        __builtin_prefetch(probe + rows[i + kPrefetchDistance], 1);
      }
      probe[rows[i]] = label;
    }
  }
}

void GatherGroupsScalar(const int32_t* probe, const int32_t* rows, int64_t n,
                        int32_t base, int32_t* groups) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + kPrefetchDistance + 3 < n) {
      __builtin_prefetch(probe + rows[i + kPrefetchDistance + 0]);
      __builtin_prefetch(probe + rows[i + kPrefetchDistance + 1]);
      __builtin_prefetch(probe + rows[i + kPrefetchDistance + 2]);
      __builtin_prefetch(probe + rows[i + kPrefetchDistance + 3]);
    }
    groups[i + 0] = probe[rows[i + 0]] - base;
    groups[i + 1] = probe[rows[i + 1]] - base;
    groups[i + 2] = probe[rows[i + 2]] - base;
    groups[i + 3] = probe[rows[i + 3]] - base;
  }
  for (; i < n; ++i) groups[i] = probe[rows[i]] - base;
}

constexpr KernelOps kScalarOps = {KernelKind::kScalar, "scalar",
                                  &LabelRowsScalar, &GatherGroupsScalar};

}  // namespace

// Implemented in kernels_avx2.cc / kernels_neon.cc; each returns nullptr
// when the TU was compiled for a different architecture or the running CPU
// lacks the ISA.
const KernelOps* GetAvx2KernelOps();
const KernelOps* GetNeonKernelOps();

StatusOr<KernelKind> ParseKernelKind(const std::string& name) {
  if (name == "auto" || name.empty()) return KernelKind::kAuto;
  if (name == "scalar") return KernelKind::kScalar;
  if (name == "avx2") return KernelKind::kAvx2;
  if (name == "neon") return KernelKind::kNeon;
  return Status::InvalidArgument(
      "unknown kernel '" + name + "' (expected auto, scalar, avx2, or neon)");
}

std::string_view KernelKindName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kAuto:
      return "auto";
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kAvx2:
      return "avx2";
    case KernelKind::kNeon:
      return "neon";
  }
  return "unknown";
}

bool KernelIsAvailable(KernelKind kind) {
  switch (kind) {
    case KernelKind::kAuto:
    case KernelKind::kScalar:
      return true;
    case KernelKind::kAvx2:
      return GetAvx2KernelOps() != nullptr;
    case KernelKind::kNeon:
      return GetNeonKernelOps() != nullptr;
  }
  return false;
}

const KernelOps* DefaultKernel() {
  // The dispatch decision is pure (CPUID never changes), so a
  // race-free-by-value static is all the "once at startup" needed.
  static const KernelOps* const kDefault = [] {
    if (const KernelOps* ops = GetAvx2KernelOps()) return ops;
    if (const KernelOps* ops = GetNeonKernelOps()) return ops;
    return &kScalarOps;
  }();
  return kDefault;
}

const KernelOps* ResolveKernel(KernelKind kind) {
  switch (kind) {
    case KernelKind::kAuto:
      return DefaultKernel();
    case KernelKind::kScalar:
      return &kScalarOps;
    case KernelKind::kAvx2:
      if (const KernelOps* ops = GetAvx2KernelOps()) return ops;
      break;
    case KernelKind::kNeon:
      if (const KernelOps* ops = GetNeonKernelOps()) return ops;
      break;
  }
  TANE_LOG(Warning) << "kernel '" << KernelKindName(kind)
                    << "' is not available on this CPU; falling back to "
                       "the scalar kernel";
  return &kScalarOps;
}

std::vector<const KernelOps*> AvailableKernels() {
  std::vector<const KernelOps*> kernels{&kScalarOps};
  if (const KernelOps* ops = GetAvx2KernelOps()) kernels.push_back(ops);
  if (const KernelOps* ops = GetNeonKernelOps()) kernels.push_back(ops);
  return kernels;
}

bool RadixLabeler::EnsureCapacity(int64_t member_rows) {
  const size_t needed = static_cast<size_t>(member_rows);
  if (bucketed_rows_.size() >= needed) return false;
  bucketed_rows_.resize(needed);
  bucketed_labels_.resize(needed);
  return true;
}

void RadixLabeler::LabelRows(const KernelOps& ops, int32_t* probe,
                             int64_t probe_rows, const int32_t* rows,
                             const int32_t* offsets, int64_t num_classes,
                             int32_t base) {
  const int64_t member_rows = offsets[num_classes];
  if (!ShouldUse(probe_rows, member_rows)) {
    ops.label_rows(probe, rows, offsets, num_classes, base);
    return;
  }
  ++radix_labelings_;

  // Shift so every bucket covers at most probe_rows / kBuckets rows of the
  // probe table (a contiguous, cache-sized window).
  int shift = 0;
  while ((probe_rows - 1) >> shift >= kBuckets) ++shift;

  // Pass 1: bucket histogram over the flat member-row array (sequential).
  int32_t counts[kBuckets] = {};
  for (int64_t i = 0; i < member_rows; ++i) {
    ++counts[static_cast<uint32_t>(rows[i]) >> shift];
  }
  // Exclusive prefix sum -> running cursors; bucket_ends_ keeps the final
  // boundaries for the scatter pass.
  int32_t cursors[kBuckets];
  int32_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cursors[b] = total;
    total += counts[b];
    bucket_ends_[b + 1] = total;
  }
  bucket_ends_[0] = 0;

  // Pass 2: walk the CSR layout once, streaming the (row, label) pairs into
  // their buckets — SoA, so the final scatter reads two dense arrays.
  int32_t* const brow = bucketed_rows_.data();
  int32_t* const blabel = bucketed_labels_.data();
  for (int64_t cls = 0; cls < num_classes; ++cls) {
    const int32_t label = base + static_cast<int32_t>(cls);
    const int32_t end = offsets[cls + 1];
    for (int32_t i = offsets[cls]; i < end; ++i) {
      const int32_t row = rows[i];
      const int32_t at = cursors[static_cast<uint32_t>(row) >> shift]++;
      brow[at] = row;
      blabel[at] = label;
    }
  }

  // Pass 3: per bucket, scatter labels into the bucket's small window of
  // the probe table. Order within a bucket is arbitrary — each row gets
  // exactly one label — so the reordering is invisible in the result.
  for (int b = 0; b < kBuckets; ++b) {
    const int32_t end = bucket_ends_[b + 1];
    for (int32_t i = bucket_ends_[b]; i < end; ++i) {
      probe[brow[i]] = blabel[i];
    }
  }
}

}  // namespace tane
