// NEON kernel for aarch64. NEON has no gather instruction, so the probe
// phase loads four probe entries through lane inserts and does the epoch
// subtraction 4-wide; the useful parallelism is the four independent load
// chains the out-of-order core can overlap. On non-ARM targets this TU
// contributes the nullptr stub only.

#include "partition/kernels/kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace tane {
namespace {

constexpr int64_t kPrefetchDistance = 16;

void LabelRowsNeon(int32_t* probe, const int32_t* rows,
                   const int32_t* offsets, int64_t num_classes,
                   int32_t base) {
  const int64_t member_rows = offsets[num_classes];
  for (int64_t cls = 0; cls < num_classes; ++cls) {
    const int32_t label = base + static_cast<int32_t>(cls);
    const int32_t end = offsets[cls + 1];
    for (int32_t i = offsets[cls]; i < end; ++i) {
      if (i + kPrefetchDistance < member_rows) {
        __builtin_prefetch(probe + rows[i + kPrefetchDistance], 1);
      }
      probe[rows[i]] = label;
    }
  }
}

void GatherGroupsNeon(const int32_t* probe, const int32_t* rows, int64_t n,
                      int32_t base, int32_t* groups) {
  const int32x4_t vbase = vdupq_n_s32(base);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + kPrefetchDistance + 3 < n) {
      __builtin_prefetch(probe + rows[i + kPrefetchDistance + 0]);
      __builtin_prefetch(probe + rows[i + kPrefetchDistance + 1]);
      __builtin_prefetch(probe + rows[i + kPrefetchDistance + 2]);
      __builtin_prefetch(probe + rows[i + kPrefetchDistance + 3]);
    }
    int32x4_t labels = vdupq_n_s32(0);
    labels = vld1q_lane_s32(probe + rows[i + 0], labels, 0);
    labels = vld1q_lane_s32(probe + rows[i + 1], labels, 1);
    labels = vld1q_lane_s32(probe + rows[i + 2], labels, 2);
    labels = vld1q_lane_s32(probe + rows[i + 3], labels, 3);
    vst1q_s32(groups + i, vsubq_s32(labels, vbase));
  }
  for (; i < n; ++i) groups[i] = probe[rows[i]] - base;
}

constexpr KernelOps kNeonOps = {KernelKind::kNeon, "neon", &LabelRowsNeon,
                                &GatherGroupsNeon};

}  // namespace

const KernelOps* GetNeonKernelOps() { return &kNeonOps; }

}  // namespace tane

#else  // !aarch64

namespace tane {
const KernelOps* GetNeonKernelOps() { return nullptr; }
}  // namespace tane

#endif
