#include "partition/product.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"

namespace tane {

PartitionProduct::PartitionProduct(int64_t num_rows)
    : num_rows_(num_rows), probe_(num_rows, -1) {
  // Pre-warm the scratch arrays to their row-count bounds (a partition over
  // |r| rows has at most |r| classes and |r| member rows). Lazy growth in
  // Multiply would be counted as allocations, and since each worker owns
  // its own PartitionProduct, lazy warm-up makes the run-wide allocation
  // count scale with the worker count; paying it up front keeps
  // allocations-per-product thread-count-invariant (and 0 in steady state).
  group_size_.assign(num_rows, 0);
  touched_.reserve(num_rows);
  bucket_data_.resize(num_rows);
}

void PartitionProduct::CountAllocation() {
  ++allocations_;
  if (metrics_ != nullptr) {
    metrics_->Add(metrics_shard_, obs::kProductAllocations, 1);
  }
}

StatusOr<StrippedPartition> PartitionProduct::Multiply(
    const StrippedPartition& a, const StrippedPartition& b) {
  if (a.num_rows() != b.num_rows()) {
    return Status::InvalidArgument(
        "partition product operands disagree on row count: " +
        std::to_string(a.num_rows()) + " vs " + std::to_string(b.num_rows()));
  }
  if (a.stripped() != b.stripped()) {
    return Status::InvalidArgument(
        "partition product operands mix stripped and unstripped "
        "representations");
  }
  if (a.num_rows() > num_rows_) {
    // A partition over more rows than the constructed scratch size: grow to
    // fit rather than corrupt memory or abort.
    num_rows_ = a.num_rows();
    probe_.assign(num_rows_, -1);
    probe_base_ = 0;
    CountAllocation();
  }
  const int32_t min_size = a.stripped() ? 2 : 1;
  const int64_t a_classes = a.num_classes();
  if (probe_base_ + a_classes > INT32_MAX) {
    // Epoch labels would overflow: re-initialize the table (amortized over
    // ~2^31 product classes, effectively never in one run).
    probe_.assign(probe_.size(), -1);
    probe_base_ = 0;
  }

  if (static_cast<int64_t>(group_size_.size()) < a_classes) {
    group_size_.assign(a_classes, 0);
    touched_.reserve(a_classes);
    CountAllocation();
  }
  if (bucket_data_.size() < a.row_ids().size()) {
    bucket_data_.resize(a.row_ids().size());
    CountAllocation();
  }

  // Pass 1: label rows with base + class index in `a`. Entries from earlier
  // calls sit below `base` and read as "unlabeled", so there is no reset
  // pass anywhere.
  const std::vector<int32_t>& a_rows = a.row_ids();
  const int32_t base = static_cast<int32_t>(probe_base_);
  int32_t* const probe = probe_.data();
  for (int64_t cls = 0; cls < a_classes; ++cls) {
    const int32_t label = base + static_cast<int32_t>(cls);
    for (int32_t i = a.class_begin(cls); i < a.class_end(cls); ++i) {
      probe[a_rows[i]] = label;
    }
  }

  // Output bounds: every emitted row is a member row of both operands, and
  // every emitted class holds at least min_size of them.
  const size_t row_bound = std::min(a.row_ids().size(), b.row_ids().size());
  const size_t offsets_bound =
      row_bound / static_cast<size_t>(min_size) + 1;

  std::vector<int32_t> out_rows;
  std::vector<int32_t> out_offsets;
  if (has_provided_) {
    // Planner-assigned buffers (see ProvideOutputBuffers): consumed here so
    // a later un-planned call falls back to the pool path.
    out_rows = std::move(provided_rows_);
    out_offsets = std::move(provided_offsets_);
    provided_rows_ = {};
    provided_offsets_ = {};
    has_provided_ = false;
  } else if (pool_ != nullptr) {
    out_rows = pool_->Acquire(pool_slot_, row_bound);
    out_offsets = pool_->Acquire(pool_slot_, offsets_bound);
  }
  if (out_rows.capacity() < row_bound) {
    out_rows.clear();  // don't let reserve copy recycled contents
    out_rows.reserve(row_bound);
    CountAllocation();
  }
  if (out_offsets.capacity() < offsets_bound) {
    out_offsets.clear();
    out_offsets.reserve(offsets_bound);
    CountAllocation();
  }
  // Expose the whole row bound up front (within the reserved capacity — no
  // reallocation) and trim to size at the end. Pooled buffers arrive with
  // their recycled size, so in steady state this resize shrinks or barely
  // grows instead of zero-filling the full bound.
  out_rows.resize(row_bound);
  out_offsets.clear();
  out_offsets.push_back(0);
  int32_t out_size = 0;

  // Pass 2: for each class of `b`, scatter its rows into flat buckets —
  // bucket `g` lives at `a`'s own CSR offset for class `g`, whose size is
  // an exact capacity bound (a bucket can never receive more rows than its
  // `a` class holds). Qualifying buckets then stream into the output with
  // a straight contiguous copy, in first-seen order, like the old
  // per-class-vector scratch emitted them — but with no per-class vectors
  // and no capacity checks anywhere.
  const std::vector<int32_t>& b_rows = b.row_ids();
  const int32_t* const bucket_base = a.class_offsets().data();
  int32_t* const group_size = group_size_.data();
  int32_t* const bucket_data = bucket_data_.data();
  int32_t* const out_rows_data = out_rows.data();
  for (int64_t cls = 0; cls < b.num_classes(); ++cls) {
    const int32_t begin = b.class_begin(cls);
    const int32_t end = b.class_end(cls);
    touched_.clear();
    for (int32_t i = begin; i < end; ++i) {
      const int32_t row = b_rows[i];
      const int32_t group = probe[row] - base;
      if (group < 0) continue;  // stale label or singleton in `a`
      const int32_t count = group_size[group];
      bucket_data[bucket_base[group] + count] = row;
      group_size[group] = count + 1;
      if (count == 0) touched_.push_back(group);
    }
    for (int32_t group : touched_) {
      const int32_t count = group_size[group];
      group_size[group] = 0;
      if (count < min_size) continue;
      const int32_t* const bucket = bucket_data + bucket_base[group];
      std::copy(bucket, bucket + count, out_rows_data + out_size);
      out_size += count;
      out_offsets.push_back(out_size);
    }
  }
  out_rows.resize(out_size);

  // Labels written this call become stale the moment the base moves past
  // them — the lazy equivalent of the old reset pass.
  probe_base_ += a_classes;
  if (metrics_ != nullptr) {
    metrics_->Record(metrics_shard_, obs::kProductClasses,
                     static_cast<int64_t>(out_offsets.size()) - 1);
    metrics_->Record(metrics_shard_, obs::kProductMemberRows, out_size);
  }
  return StrippedPartition(a.num_rows(), a.stripped(), std::move(out_rows),
                           std::move(out_offsets));
}

}  // namespace tane
