#include "partition/product.h"

#include "util/logging.h"

namespace tane {

PartitionProduct::PartitionProduct(int64_t num_rows)
    : num_rows_(num_rows), probe_(num_rows, -1) {}

StrippedPartition PartitionProduct::Multiply(const StrippedPartition& a,
                                             const StrippedPartition& b) {
  TANE_CHECK(a.num_rows() == num_rows_ && b.num_rows() == num_rows_);
  TANE_CHECK(a.stripped() == b.stripped());
  const int32_t min_size = a.stripped() ? 2 : 1;

  if (groups_.size() < static_cast<size_t>(a.num_classes())) {
    groups_.resize(a.num_classes());
  }

  // Pass 1: label rows with their class index in `a`.
  const std::vector<int32_t>& a_rows = a.row_ids();
  for (int64_t cls = 0; cls < a.num_classes(); ++cls) {
    for (int32_t i = a.class_begin(cls); i < a.class_end(cls); ++i) {
      probe_[a_rows[i]] = static_cast<int32_t>(cls);
    }
  }

  // Pass 2: for each class of `b`, bucket its rows by `a`-class; every
  // bucket of size >= min_size is a class of the product.
  StrippedPartition out(num_rows_, a.stripped());
  out.row_ids_.reserve(std::min(a.row_ids().size(), b.row_ids().size()));
  const std::vector<int32_t>& b_rows = b.row_ids();
  for (int64_t cls = 0; cls < b.num_classes(); ++cls) {
    touched_.clear();
    for (int32_t i = b.class_begin(cls); i < b.class_end(cls); ++i) {
      const int32_t row = b_rows[i];
      const int32_t group = probe_[row];
      if (group < 0) continue;  // singleton in `a` (stripped mode only)
      if (groups_[group].empty()) touched_.push_back(group);
      groups_[group].push_back(row);
    }
    for (int32_t group : touched_) {
      std::vector<int32_t>& bucket = groups_[group];
      if (static_cast<int32_t>(bucket.size()) >= min_size) {
        out.row_ids_.insert(out.row_ids_.end(), bucket.begin(), bucket.end());
        out.class_offsets_.push_back(
            static_cast<int32_t>(out.row_ids_.size()));
      }
      bucket.clear();
    }
  }

  // Reset the probe table for the next call.
  for (int32_t row : a_rows) probe_[row] = -1;
  return out;
}

}  // namespace tane
