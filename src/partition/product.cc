#include "partition/product.h"

#include <algorithm>
#include <string>

namespace tane {

PartitionProduct::PartitionProduct(int64_t num_rows)
    : num_rows_(num_rows), probe_(num_rows, -1) {}

StatusOr<StrippedPartition> PartitionProduct::Multiply(
    const StrippedPartition& a, const StrippedPartition& b) {
  if (a.num_rows() != b.num_rows()) {
    return Status::InvalidArgument(
        "partition product operands disagree on row count: " +
        std::to_string(a.num_rows()) + " vs " + std::to_string(b.num_rows()));
  }
  if (a.stripped() != b.stripped()) {
    return Status::InvalidArgument(
        "partition product operands mix stripped and unstripped "
        "representations");
  }
  if (a.num_rows() > num_rows_) {
    // A partition over more rows than the constructed scratch size: grow to
    // fit rather than corrupt memory or abort.
    num_rows_ = a.num_rows();
    probe_.assign(num_rows_, -1);
  }
  const int32_t min_size = a.stripped() ? 2 : 1;

  if (groups_.size() < static_cast<size_t>(a.num_classes())) {
    groups_.resize(a.num_classes());
  }

  // Pass 1: label rows with their class index in `a`.
  const std::vector<int32_t>& a_rows = a.row_ids();
  for (int64_t cls = 0; cls < a.num_classes(); ++cls) {
    for (int32_t i = a.class_begin(cls); i < a.class_end(cls); ++i) {
      probe_[a_rows[i]] = static_cast<int32_t>(cls);
    }
  }

  // Pass 2: for each class of `b`, bucket its rows by `a`-class; every
  // bucket of size >= min_size is a class of the product.
  StrippedPartition out(a.num_rows(), a.stripped());
  out.row_ids_.reserve(std::min(a.row_ids().size(), b.row_ids().size()));
  const std::vector<int32_t>& b_rows = b.row_ids();
  for (int64_t cls = 0; cls < b.num_classes(); ++cls) {
    touched_.clear();
    for (int32_t i = b.class_begin(cls); i < b.class_end(cls); ++i) {
      const int32_t row = b_rows[i];
      const int32_t group = probe_[row];
      if (group < 0) continue;  // singleton in `a` (stripped mode only)
      if (groups_[group].empty()) touched_.push_back(group);
      groups_[group].push_back(row);
    }
    for (int32_t group : touched_) {
      std::vector<int32_t>& bucket = groups_[group];
      if (static_cast<int32_t>(bucket.size()) >= min_size) {
        out.row_ids_.insert(out.row_ids_.end(), bucket.begin(), bucket.end());
        out.class_offsets_.push_back(
            static_cast<int32_t>(out.row_ids_.size()));
      }
      bucket.clear();
    }
  }

  // Reset the probe table for the next call.
  for (int32_t row : a_rows) probe_[row] = -1;
  return out;
}

}  // namespace tane
