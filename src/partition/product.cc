#include "partition/product.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"

namespace tane {
namespace {

// Per-`b`-class scatter loops for pass 2 of Multiply. All variants are
// branch-free per row: invalid rows are predicated onto the trash bucket
// with one select, every store unconditional. The scratch arrays are
// genuinely disjoint, so the pointers are __restrict-qualified — without
// it the compiler must order every cursor load after the previous bucket
// store and the loop cannot pipeline.
//
// kGathered selects the group source: the kernel-gathered SoA label stream
// (large-probe regime, SIMD gather + prefetch) or direct probe-table loads
// (cache-resident regime, where the extra pass through groups[] costs more
// than it saves).
//
// kChained breaks the scatter's store-to-load forwarding chain: the
// last-hit group's counter lives in registers and is flushed to memory one
// iteration late, so a run of rows landing in the same bucket advances a
// register instead of round-tripping through the store buffer (~5 cycles
// per row on current x86 cores). The flush-late protocol is safe because
// the only memory read that can observe the stale value — loading the
// counter of the not-yet-flushed group — is exactly the case the select
// replaces with the register. Worth two extra ops per row only when
// consecutive rows collide often, i.e. when `a` has few classes; with many
// classes the plain loop wins. Chained or not, the stores and final state
// are identical, so the choice is invisible in the output.

// Cursor variant: cursor[g] is the next free slot of bucket g (initialized
// to the bucket base); bucket fill levels are recovered from cursor
// positions by the caller's index-order emission scan, so the row loop
// carries no touched-list bookkeeping at all.
template <bool kGathered, bool kChained>
void ScatterWithCursors(const int32_t* __restrict rows, int32_t begin,
                        int32_t end, const int32_t* __restrict probe,
                        int32_t base, const int32_t* __restrict groups,
                        int32_t trash_group, int32_t* __restrict cursor,
                        int32_t* __restrict bucket_data) {
  if constexpr (kChained) {
    int32_t last_gs = trash_group;
    int32_t last_cur = cursor[trash_group];
    for (int32_t i = begin; i < end; ++i) {
      const int32_t row = rows[i];
      const int32_t g = kGathered ? groups[i] : probe[row] - base;
      const int32_t gs = g >= 0 ? g : trash_group;
      const int32_t mem_cur = cursor[gs];
      cursor[last_gs] = last_cur;
      const int32_t cur = gs == last_gs ? last_cur : mem_cur;
      bucket_data[cur] = row;
      last_gs = gs;
      last_cur = cur + 1;
    }
    cursor[last_gs] = last_cur;
  } else {
    for (int32_t i = begin; i < end; ++i) {
      const int32_t row = rows[i];
      const int32_t g = kGathered ? groups[i] : probe[row] - base;
      const int32_t gs = g >= 0 ? g : trash_group;
      const int32_t cur = cursor[gs];
      bucket_data[cur] = row;
      cursor[gs] = cur + 1;
    }
  }
}

// Counting variant for many-class operands, where an emission scan over
// every `a` class per `b` class would dwarf the row walk: group_size[]
// counts bucket fill levels and the touched list records first-seen groups
// (unconditional store, predicated advance), preserving the original
// first-seen emission order. Returns the touched count.
template <bool kGathered, bool kChained>
int64_t ScatterWithCounts(const int32_t* __restrict rows, int32_t begin,
                          int32_t end, const int32_t* __restrict probe,
                          int32_t base, const int32_t* __restrict groups,
                          int32_t trash_group,
                          const int32_t* __restrict bucket_base,
                          int32_t* __restrict group_size,
                          int32_t* __restrict bucket_data,
                          int32_t* __restrict touched) {
  int64_t touched_count = 0;
  if constexpr (kChained) {
    int32_t last_gs = trash_group;
    int32_t last_count = group_size[trash_group];
    for (int32_t i = begin; i < end; ++i) {
      const int32_t row = rows[i];
      const int32_t g = kGathered ? groups[i] : probe[row] - base;
      const int32_t gs = g >= 0 ? g : trash_group;
      const int32_t mem_count = group_size[gs];
      group_size[last_gs] = last_count;
      const int32_t count = gs == last_gs ? last_count : mem_count;
      bucket_data[bucket_base[gs] + count] = row;
      touched[touched_count] = gs;
      touched_count += static_cast<int64_t>(count == 0);
      last_gs = gs;
      last_count = count + 1;
    }
    group_size[last_gs] = last_count;
  } else {
    for (int32_t i = begin; i < end; ++i) {
      const int32_t row = rows[i];
      const int32_t g = kGathered ? groups[i] : probe[row] - base;
      const int32_t gs = g >= 0 ? g : trash_group;
      const int32_t count = group_size[gs];
      bucket_data[bucket_base[gs] + count] = row;
      group_size[gs] = count + 1;
      touched[touched_count] = gs;
      touched_count += static_cast<int64_t>(count == 0);
    }
  }
  return touched_count;
}

// Collisions are frequent enough for the flush-late chain to pay off when
// rows outnumber buckets by a wide margin; past this many `a` classes the
// plain loop's two fewer ops per row win. Empirical knee on the bench
// datasets (few-class paper attributes vs many-class near-key attributes).
constexpr int64_t kChainedMaxClasses = 64;

}  // namespace

PartitionProduct::PartitionProduct(int64_t num_rows)
    : num_rows_(num_rows), probe_(num_rows, -1) {
  // Pre-warm the scratch arrays to their row-count bounds (a partition over
  // |r| rows has at most |r| classes and |r| member rows). Lazy growth in
  // Multiply would be counted as allocations, and since each worker owns
  // its own PartitionProduct, lazy warm-up makes the run-wide allocation
  // count scale with the worker count; paying it up front keeps
  // allocations-per-product thread-count-invariant (and 0 in steady state).
  group_size_.assign(num_rows + 2, 0);
  touched_.assign(num_rows + 2, 0);
  groups_.assign(num_rows, 0);
  bucket_data_.resize(2 * num_rows);
  WarmRadixScratch();
}

void PartitionProduct::CountAllocation() {
  ++allocations_;
  if (metrics_ != nullptr) {
    metrics_->Add(metrics_shard_, obs::kProductAllocations, 1);
  }
}

void PartitionProduct::WarmRadixScratch() {
  // Pure function of num_rows_ and the radix threshold, never of the call
  // sequence: workers constructed alike stay allocation-identical.
  if (radix_.ShouldUse(num_rows_, num_rows_)) {
    radix_.EnsureCapacity(num_rows_);
  }
}

void PartitionProduct::set_radix_min_probe_bytes_for_testing(int64_t bytes) {
  radix_.set_min_probe_bytes_for_testing(bytes);
  WarmRadixScratch();
}

StatusOr<StrippedPartition> PartitionProduct::Multiply(
    const StrippedPartition& a, const StrippedPartition& b,
    uint64_t a_token) {
  if (a.num_rows() != b.num_rows()) {
    return Status::InvalidArgument(
        "partition product operands disagree on row count: " +
        std::to_string(a.num_rows()) + " vs " + std::to_string(b.num_rows()));
  }
  if (a.stripped() != b.stripped()) {
    return Status::InvalidArgument(
        "partition product operands mix stripped and unstripped "
        "representations");
  }
  if (a.num_rows() > num_rows_) {
    // A partition over more rows than the constructed scratch size: grow to
    // fit rather than corrupt memory or abort. Growth discards any live
    // labels, so token reuse is off until the next labeling pass.
    num_rows_ = a.num_rows();
    probe_.assign(num_rows_, -1);
    groups_.assign(num_rows_, 0);
    probe_base_ = 0;
    labeled_classes_ = 0;
    last_a_token_ = 0;
    WarmRadixScratch();
    CountAllocation();
  }
  const int32_t min_size = a.stripped() ? 2 : 1;
  const int64_t a_classes = a.num_classes();

  // +2: one slot for the trash bucket, and one more so the touched list's
  // branch-free unconditional store stays in bounds after every group
  // (including trash) has been recorded.
  if (static_cast<int64_t>(group_size_.size()) < a_classes + 2) {
    group_size_.assign(a_classes + 2, 0);
    touched_.assign(a_classes + 2, 0);
    CountAllocation();
  }
  // The trash bucket (see pass 2) needs capacity for a full `b` class after
  // the real buckets, whose combined capacity is `a`'s member-row count.
  if (bucket_data_.size() <
      a.row_ids().size() + b.row_ids().size()) {
    bucket_data_.resize(a.row_ids().size() + b.row_ids().size());
    CountAllocation();
  }
  if (groups_.size() < b.row_ids().size()) {
    groups_.assign(b.row_ids().size(), 0);
    CountAllocation();
  }

  const std::vector<int32_t>& a_rows = a.row_ids();
  int32_t* const probe = probe_.data();
  int64_t rows_scanned = 0;

  // Pass 1: label rows with base + class index in `a` — unless the caller
  // vouches (via a_token) that `a` is the operand already labeled, in which
  // case the live labels are reused verbatim. Entries from earlier calls
  // sit below the base and read as "unlabeled", so there is no reset pass
  // anywhere.
  const bool reuse =
      a_token != 0 && a_token == last_a_token_ && labeled_classes_ == a_classes;
  if (reuse) {
    ++label_reuses_;
  } else {
    // Advance the epoch past the previous call's labels, re-initializing
    // the table when the labels would overflow int32 (amortized over ~2^31
    // product classes, effectively never in one run).
    probe_base_ += labeled_classes_;
    if (probe_base_ + a_classes > INT32_MAX) {
      probe_.assign(probe_.size(), -1);
      probe_base_ = 0;
    }
    radix_.LabelRows(*kernel_, probe, num_rows_, a_rows.data(),
                     a.class_offsets().data(), a_classes,
                     static_cast<int32_t>(probe_base_));
    labeled_classes_ = a_classes;
    last_a_token_ = a_token;
    rows_scanned += static_cast<int64_t>(a_rows.size());
  }
  const int32_t base = static_cast<int32_t>(probe_base_);

  // Output bounds: every emitted row is a member row of both operands, and
  // every emitted class holds at least min_size of them.
  const size_t row_bound = std::min(a.row_ids().size(), b.row_ids().size());
  const size_t offsets_bound =
      row_bound / static_cast<size_t>(min_size) + 1;

  std::vector<int32_t> out_rows;
  std::vector<int32_t> out_offsets;
  if (has_provided_) {
    // Planner-assigned buffers (see ProvideOutputBuffers): consumed here so
    // a later un-planned call falls back to the pool path.
    out_rows = std::move(provided_rows_);
    out_offsets = std::move(provided_offsets_);
    provided_rows_ = {};
    provided_offsets_ = {};
    has_provided_ = false;
  } else if (pool_ != nullptr) {
    out_rows = pool_->Acquire(pool_slot_, row_bound);
    out_offsets = pool_->Acquire(pool_slot_, offsets_bound);
  }
  if (out_rows.capacity() < row_bound) {
    out_rows.clear();  // don't let reserve copy recycled contents
    out_rows.reserve(row_bound);
    CountAllocation();
  }
  if (out_offsets.capacity() < offsets_bound) {
    out_offsets.clear();
    out_offsets.reserve(offsets_bound);
    CountAllocation();
  }
  // Expose the whole row bound up front (within the reserved capacity — no
  // reallocation) and trim to size at the end. Pooled buffers arrive with
  // their recycled size, so in steady state this resize shrinks or barely
  // grows instead of zero-filling the full bound.
  out_rows.resize(row_bound);
  out_offsets.clear();
  out_offsets.push_back(0);
  int32_t out_size = 0;

  // Pass 2, per class of `b`: a branch-free scatter routes each of the
  // class's rows into a flat bucket per `a` class — bucket `g` lives at
  // `a`'s own CSR offset for class `g`, whose size is an exact capacity
  // bound. Invalid rows (stale epoch or singleton in `a`) are predicated
  // onto the trash bucket `a_classes` instead of branching: `a`'s CSR
  // offsets array already carries its end offset, so the per-bucket scratch
  // extends to the trash bucket with no special-casing — one select per
  // row, every store unconditional. Trash is filtered at emission, so the
  // state is exactly as if invalid rows were skipped. Qualifying buckets
  // then stream into the output with a straight contiguous copy.
  //
  // Two cache-conscious regimes, both pure functions of operand shape (so
  // the output is identical for every kernel and thread count):
  //
  //  * Group source. When the probe table outgrows the cache (the same
  //    threshold that turns on radix labeling), the kernel gathers all of
  //    `b`'s labels into the SoA group stream first — SIMD gather + software
  //    prefetch overlap the random probe loads that an in-order walk would
  //    stall on. Cache-resident tables skip the gather: probe loads hit L1
  //    and the extra pass through groups[] costs more than it saves.
  //
  //  * Emission. When `a` has few classes (the common low-level case), an
  //    index-order scan over all `a` classes per `b` class recovers the
  //    bucket fill levels from the scatter cursors — the row loop carries no
  //    bookkeeping beyond the cursor itself, and product classes emit
  //    grouped by `b` class, ordered by `a` class index within it. When the
  //    scan would dwarf the row walk ((a_classes+1) x b_classes >
  //    b_member_rows), the scatter counts fill levels and records first-seen
  //    groups in the touched list, and emission walks that list in
  //    first-seen order. The order differs between the two strategies, but
  //    the choice depends only on the operands' class/row counts, never on
  //    the kernel or any runtime state.
  const std::vector<int32_t>& b_rows = b.row_ids();
  const int32_t* const b_rows_data = b_rows.data();
  const int32_t* const bucket_base = a.class_offsets().data();
  const int32_t trash_group = static_cast<int32_t>(a_classes);
  int32_t* const group_size = group_size_.data();
  int32_t* const touched = touched_.data();
  int32_t* const bucket_data = bucket_data_.data();
  int32_t* const groups = groups_.data();
  int32_t* const out_rows_data = out_rows.data();
  rows_scanned += static_cast<int64_t>(b_rows.size());

  const bool gathered = num_rows_ * static_cast<int64_t>(sizeof(int32_t)) >=
                        radix_.min_probe_bytes();
  if (gathered) {
    // One gather over the whole member-row array: maximal SIMD runs, one
    // dispatch. groups_[i] then lines up with b_rows[i] in every class.
    kernel_->gather_groups(probe, b_rows_data,
                           static_cast<int64_t>(b_rows.size()), base, groups);
  }
  const bool index_scan =
      (a_classes + 1) * b.num_classes() <= static_cast<int64_t>(b_rows.size());
  const bool chained = a_classes <= kChainedMaxClasses;

  if (index_scan) {
    using CursorScatter = void (*)(const int32_t*, int32_t, int32_t,
                                   const int32_t*, int32_t, const int32_t*,
                                   int32_t, int32_t*, int32_t*);
    const CursorScatter scatter =
        gathered ? (chained ? &ScatterWithCursors<true, true>
                            : &ScatterWithCursors<true, false>)
                 : (chained ? &ScatterWithCursors<false, true>
                            : &ScatterWithCursors<false, false>);
    // group_size_ doubles as the cursor array (it is all-zero between
    // products; re-zeroed below to keep that invariant for the counting
    // path).
    int32_t* const cursor = group_size;
    for (int64_t g = 0; g <= a_classes; ++g) cursor[g] = bucket_base[g];
    for (int64_t cls = 0; cls < b.num_classes(); ++cls) {
      const int32_t begin = b.class_begin(cls);
      const int32_t end = b.class_end(cls);
      scatter(b_rows_data, begin, end, probe, base, groups, trash_group,
              cursor, bucket_data);
      for (int64_t g = 0; g < a_classes; ++g) {
        const int32_t bucket_begin = bucket_base[g];
        const int32_t count = cursor[g] - bucket_begin;
        cursor[g] = bucket_begin;
        if (count < min_size) continue;
        std::copy(bucket_data + bucket_begin,
                  bucket_data + bucket_begin + count,
                  out_rows_data + out_size);
        out_size += count;
        out_offsets.push_back(out_size);
      }
      cursor[trash_group] = bucket_base[trash_group];
    }
    for (int64_t g = 0; g <= a_classes; ++g) cursor[g] = 0;
  } else {
    using CountScatter = int64_t (*)(const int32_t*, int32_t, int32_t,
                                     const int32_t*, int32_t, const int32_t*,
                                     int32_t, const int32_t*, int32_t*,
                                     int32_t*, int32_t*);
    const CountScatter scatter =
        gathered ? (chained ? &ScatterWithCounts<true, true>
                            : &ScatterWithCounts<true, false>)
                 : (chained ? &ScatterWithCounts<false, true>
                            : &ScatterWithCounts<false, false>);
    for (int64_t cls = 0; cls < b.num_classes(); ++cls) {
      const int32_t begin = b.class_begin(cls);
      const int32_t end = b.class_end(cls);
      const int64_t touched_count =
          scatter(b_rows_data, begin, end, probe, base, groups, trash_group,
                  bucket_base, group_size, bucket_data, touched);
      for (int64_t t = 0; t < touched_count; ++t) {
        const int32_t group = touched[t];
        const int32_t count = group_size[group];
        group_size[group] = 0;
        if (count < min_size || group == trash_group) continue;
        const int32_t* const bucket = bucket_data + bucket_base[group];
        std::copy(bucket, bucket + count, out_rows_data + out_size);
        out_size += count;
        out_offsets.push_back(out_size);
      }
    }
  }
  out_rows.resize(out_size);

  rows_scanned_ += rows_scanned;
  if (metrics_ != nullptr) {
    metrics_->Add(metrics_shard_, obs::kProductRowsScanned, rows_scanned);
    if (reuse) {
      metrics_->Add(metrics_shard_, obs::kProductLabelReuses, 1);
    }
    metrics_->Record(metrics_shard_, obs::kProductClasses,
                     static_cast<int64_t>(out_offsets.size()) - 1);
    metrics_->Record(metrics_shard_, obs::kProductMemberRows, out_size);
  }
  return StrippedPartition(a.num_rows(), a.stripped(), std::move(out_rows),
                           std::move(out_offsets));
}

}  // namespace tane
