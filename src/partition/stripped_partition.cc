#include "partition/stripped_partition.h"

#include <algorithm>
#include <numeric>
#include <string>

namespace tane {

StatusOr<StrippedPartition> StrippedPartition::Create(
    int64_t num_rows, std::vector<int32_t> row_ids,
    std::vector<int32_t> class_offsets, bool stripped) {
  if (class_offsets.empty() || class_offsets.front() != 0 ||
      class_offsets.back() != static_cast<int32_t>(row_ids.size())) {
    return Status::InvalidArgument("malformed class offsets");
  }
  std::vector<bool> seen(num_rows, false);
  for (size_t i = 1; i < class_offsets.size(); ++i) {
    const int32_t size = class_offsets[i] - class_offsets[i - 1];
    if (size < 1) return Status::InvalidArgument("empty or negative class");
    if (stripped && size < 2) {
      return Status::InvalidArgument(
          "stripped partition contains a singleton class");
    }
  }
  for (int32_t row : row_ids) {
    if (row < 0 || row >= num_rows) {
      return Status::OutOfRange("row id " + std::to_string(row) +
                                " out of range");
    }
    if (seen[row]) {
      return Status::InvalidArgument("row id " + std::to_string(row) +
                                     " appears in two classes");
    }
    seen[row] = true;
  }
  StrippedPartition partition(num_rows, stripped);
  partition.row_ids_ = std::move(row_ids);
  partition.class_offsets_ = std::move(class_offsets);
  return partition;
}

StrippedPartition StrippedPartition::Stripped() const {
  if (stripped_) return *this;
  StrippedPartition out(num_rows_, /*stripped=*/true);
  out.class_offsets_.clear();
  out.class_offsets_.push_back(0);
  for (int64_t cls = 0; cls < num_classes(); ++cls) {
    if (class_size(cls) < 2) continue;
    for (int32_t i = class_begin(cls); i < class_end(cls); ++i) {
      out.row_ids_.push_back(row_ids_[i]);
    }
    out.class_offsets_.push_back(static_cast<int32_t>(out.row_ids_.size()));
  }
  return out;
}

StrippedPartition StrippedPartition::Unstripped() const {
  if (!stripped_) return *this;
  StrippedPartition out(num_rows_, /*stripped=*/false);
  out.row_ids_ = row_ids_;
  out.class_offsets_ = class_offsets_;
  std::vector<bool> member(num_rows_, false);
  for (int32_t row : row_ids_) member[row] = true;
  for (int64_t row = 0; row < num_rows_; ++row) {
    if (member[row]) continue;
    out.row_ids_.push_back(static_cast<int32_t>(row));
    out.class_offsets_.push_back(static_cast<int32_t>(out.row_ids_.size()));
  }
  return out;
}

StrippedPartition StrippedPartition::Canonicalized() const {
  // Sort rows within each class, then reorder classes by their first row.
  std::vector<std::vector<int32_t>> classes(num_classes());
  for (int64_t cls = 0; cls < num_classes(); ++cls) {
    classes[cls].assign(row_ids_.begin() + class_begin(cls),
                        row_ids_.begin() + class_end(cls));
    std::sort(classes[cls].begin(), classes[cls].end());
  }
  std::sort(classes.begin(), classes.end(),
            [](const std::vector<int32_t>& a, const std::vector<int32_t>& b) {
              return a.front() < b.front();
            });
  StrippedPartition out(num_rows_, stripped_);
  out.row_ids_.reserve(row_ids_.size());
  out.class_offsets_.reserve(class_offsets_.size());
  for (const auto& cls : classes) {
    out.row_ids_.insert(out.row_ids_.end(), cls.begin(), cls.end());
    out.class_offsets_.push_back(static_cast<int32_t>(out.row_ids_.size()));
  }
  return out;
}

uint64_t StrippedPartition::StructuralHash() const {
  // FNV-1a over the header and both CSR arrays.
  uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(num_rows_));
  mix(stripped_ ? 1u : 0u);
  mix(row_ids_.size());
  mix(class_offsets_.size());
  for (int32_t row : row_ids_) mix(static_cast<uint32_t>(row));
  for (int32_t offset : class_offsets_) mix(static_cast<uint32_t>(offset));
  return hash;
}

void StrippedPartition::MoveBuffersInto(std::vector<int32_t>* row_ids,
                                        std::vector<int32_t>* class_offsets) {
  *row_ids = std::move(row_ids_);
  *class_offsets = std::move(class_offsets_);
  row_ids_.clear();
  class_offsets_.assign(1, 0);  // restore the empty-partition invariant
}

bool StrippedPartition::Refines(const StrippedPartition& other) const {
  // Label every row with its class in `other`; rows in no stored class get
  // a unique label only if `other` is unstripped — for stripped partitions a
  // singleton class of `other` can only absorb singleton classes of *this*,
  // so the "-1" label must never be shared by two rows of one class here.
  std::vector<int32_t> label(num_rows_, -1);
  for (int64_t cls = 0; cls < other.num_classes(); ++cls) {
    for (int32_t i = other.class_begin(cls); i < other.class_end(cls); ++i) {
      label[other.row_ids_[i]] = static_cast<int32_t>(cls);
    }
  }
  for (int64_t cls = 0; cls < num_classes(); ++cls) {
    if (class_size(cls) < 2) continue;  // singletons always refine
    const int32_t first = label[row_ids_[class_begin(cls)]];
    if (first == -1) return false;  // >= 2 rows in a singleton class
    for (int32_t i = class_begin(cls) + 1; i < class_end(cls); ++i) {
      if (label[row_ids_[i]] != first) return false;
    }
  }
  return true;
}

}  // namespace tane
