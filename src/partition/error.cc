#include "partition/error.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "obs/metrics.h"

namespace tane {

int64_t IntegerThreshold(double epsilon, double scale) {
  const double product = epsilon * scale;
  if (product >= static_cast<double>(std::numeric_limits<int64_t>::max())) {
    return std::numeric_limits<int64_t>::max();
  }
  return std::max<int64_t>(0, static_cast<int64_t>(std::floor(product)));
}

G3Bounds BoundG3RemovalCount(const StrippedPartition& lhs,
                             const StrippedPartition& lhs_with_rhs) {
  G3Bounds bounds;
  bounds.upper = lhs.Error();
  bounds.lower = std::max<int64_t>(0, lhs.Error() - lhs_with_rhs.Error());
  return bounds;
}

G3Calculator::G3Calculator(int64_t num_rows)
    : num_rows_(num_rows), probe_(num_rows, -1) {
  // Sized to the row-count bounds up front (a partition over |r| rows has at
  // most |r| classes and member rows); the +1 slots are the dummy counter
  // (counts_) and the headroom for the unconditional branch-free append
  // (touched_).
  counts_.assign(num_rows + 1, 0);
  touched_.assign(num_rows + 1, 0);
  groups_.assign(num_rows, 0);
}

Status G3Calculator::PrepareAndLabel(const StrippedPartition& lhs,
                                     const StrippedPartition& lhs_with_rhs,
                                     int32_t* base) {
  if (lhs.num_rows() != lhs_with_rhs.num_rows()) {
    return Status::InvalidArgument(
        "error-measure operands disagree on row count: " +
        std::to_string(lhs.num_rows()) + " vs " +
        std::to_string(lhs_with_rhs.num_rows()));
  }
  if (lhs.num_rows() > num_rows_) {
    // Partitions over more rows than the constructed scratch size: grow to
    // fit rather than corrupt memory or abort.
    num_rows_ = lhs.num_rows();
    probe_.assign(num_rows_, -1);
    counts_.assign(num_rows_ + 1, 0);
    touched_.assign(num_rows_ + 1, 0);
    groups_.assign(num_rows_, 0);
    probe_base_ = 0;
  }

  // Epoch-tagged labeling: labels of earlier calls sit below the new base
  // and read as "singleton", so there is no reset pass anywhere. The table
  // is re-initialized only when the labels would overflow int32 (amortized
  // over ~2^31 classes, effectively never in one run).
  const int64_t fine_classes = lhs_with_rhs.num_classes();
  if (probe_base_ + fine_classes > INT32_MAX) {
    probe_.assign(probe_.size(), -1);
    probe_base_ = 0;
  }
  *base = static_cast<int32_t>(probe_base_);
  kernel_->label_rows(probe_.data(), lhs_with_rhs.row_ids().data(),
                      lhs_with_rhs.class_offsets().data(), fine_classes,
                      *base);
  probe_base_ += fine_classes;
  return Status::OK();
}

void G3Calculator::RecordScan(const StrippedPartition& lhs,
                              const StrippedPartition& lhs_with_rhs) {
  const int64_t rows = static_cast<int64_t>(lhs.row_ids().size()) +
                       static_cast<int64_t>(lhs_with_rhs.row_ids().size());
  rows_scanned_ += rows;
  if (metrics_ != nullptr) {
    metrics_->Add(metrics_shard_, obs::kG3RowsScanned, rows);
  }
}

StatusOr<int64_t> G3Calculator::RemovalCount(
    const StrippedPartition& lhs, const StrippedPartition& lhs_with_rhs) {
  int32_t base = 0;
  TANE_RETURN_IF_ERROR(PrepareAndLabel(lhs, lhs_with_rhs, &base));

  // Rows that are singletons in π_{X∪A} (negative group after the epoch
  // subtraction) are predicated into the dummy counter slot past the real
  // classes; its count never feeds `largest` (their effective subclass size
  // is 1, the initial value), and the touched list resets it with the rest.
  const int32_t dummy = static_cast<int32_t>(lhs_with_rhs.num_classes());
  int64_t removals = 0;
  const std::vector<int32_t>& coarse_rows = lhs.row_ids();
  int32_t* const counts = counts_.data();
  int32_t* const touched = touched_.data();
  int32_t* const groups = groups_.data();
  for (int64_t cls = 0; cls < lhs.num_classes(); ++cls) {
    const int32_t begin = lhs.class_begin(cls);
    const int32_t class_rows = lhs.class_end(cls) - begin;
    kernel_->gather_groups(probe_.data(), coarse_rows.data() + begin,
                           class_rows, base, groups);
    // The largest subclass has size >= 1 even if every row of this class is
    // a singleton in π_{X∪A}.
    int32_t largest = 1;
    int64_t touched_count = 0;
    for (int32_t i = 0; i < class_rows; ++i) {
      const int32_t g = groups[i];
      const int32_t valid = static_cast<int32_t>(g >= 0);
      const int32_t idx = valid ? g : dummy;
      const int32_t cnt = counts[idx] + 1;
      counts[idx] = cnt;
      touched[touched_count] = idx;
      touched_count += static_cast<int64_t>(cnt == 1);
      const int32_t effective = valid ? cnt : 1;
      largest = std::max(largest, effective);
    }
    for (int64_t t = 0; t < touched_count; ++t) counts[touched[t]] = 0;
    removals += lhs.class_size(cls) - largest;
  }

  RecordScan(lhs, lhs_with_rhs);
  return removals;
}

StatusOr<double> G3Calculator::Error(const StrippedPartition& lhs,
                                     const StrippedPartition& lhs_with_rhs) {
  if (lhs.num_rows() == 0) return 0.0;
  TANE_ASSIGN_OR_RETURN(const int64_t removals,
                        RemovalCount(lhs, lhs_with_rhs));
  return static_cast<double>(removals) /
         static_cast<double>(lhs.num_rows());
}

StatusOr<int64_t> G3Calculator::ViolatingPairCount(
    const StrippedPartition& lhs, const StrippedPartition& lhs_with_rhs) {
  int32_t base = 0;
  TANE_RETURN_IF_ERROR(PrepareAndLabel(lhs, lhs_with_rhs, &base));

  // Ordered agreeing pairs within a class c: |c|·(|c|−1). Of those, pairs
  // also agreeing on A: Σ |c'|·(|c'|−1) over the subclasses c' ⊆ c. Rows
  // that are singletons in π_{X∪A} form subclasses of size 1 contributing
  // zero, so only stored subclasses need counting — the skip branch stays,
  // since the correction sum must not see the dummy slot.
  int64_t violating = 0;
  const std::vector<int32_t>& coarse_rows = lhs.row_ids();
  int32_t* const counts = counts_.data();
  int32_t* const touched = touched_.data();
  int32_t* const groups = groups_.data();
  for (int64_t cls = 0; cls < lhs.num_classes(); ++cls) {
    const int64_t size = lhs.class_size(cls);
    violating += size * (size - 1);
    const int32_t begin = lhs.class_begin(cls);
    const int32_t class_rows = lhs.class_end(cls) - begin;
    kernel_->gather_groups(probe_.data(), coarse_rows.data() + begin,
                           class_rows, base, groups);
    int64_t touched_count = 0;
    for (int32_t i = 0; i < class_rows; ++i) {
      const int32_t fine_cls = groups[i];
      if (fine_cls < 0) continue;
      const int32_t cnt = counts[fine_cls] + 1;
      counts[fine_cls] = cnt;
      touched[touched_count] = fine_cls;
      touched_count += static_cast<int64_t>(cnt == 1);
    }
    for (int64_t t = 0; t < touched_count; ++t) {
      const int32_t fine_cls = touched[t];
      const int64_t sub = counts[fine_cls];
      violating -= sub * (sub - 1);
      counts[fine_cls] = 0;
    }
  }

  RecordScan(lhs, lhs_with_rhs);
  return violating;
}

StatusOr<double> G3Calculator::G1Error(const StrippedPartition& lhs,
                                       const StrippedPartition& lhs_with_rhs) {
  if (lhs.num_rows() == 0) return 0.0;
  TANE_ASSIGN_OR_RETURN(const int64_t pairs,
                        ViolatingPairCount(lhs, lhs_with_rhs));
  return static_cast<double>(pairs) /
         (static_cast<double>(lhs.num_rows()) *
          static_cast<double>(lhs.num_rows()));
}

StatusOr<int64_t> G3Calculator::ViolatingRowCount(
    const StrippedPartition& lhs, const StrippedPartition& lhs_with_rhs) {
  int32_t base = 0;
  TANE_RETURN_IF_ERROR(PrepareAndLabel(lhs, lhs_with_rhs, &base));

  // Every row of a π_X class that splits under π_{X∪A} is in violation
  // with the rows of the other subclasses; classes that stay whole
  // contribute nothing.
  int64_t violating = 0;
  const std::vector<int32_t>& coarse_rows = lhs.row_ids();
  int32_t* const counts = counts_.data();
  int32_t* const touched = touched_.data();
  int32_t* const groups = groups_.data();
  for (int64_t cls = 0; cls < lhs.num_classes(); ++cls) {
    const int64_t size = lhs.class_size(cls);
    const int32_t begin = lhs.class_begin(cls);
    const int32_t class_rows = lhs.class_end(cls) - begin;
    kernel_->gather_groups(probe_.data(), coarse_rows.data() + begin,
                           class_rows, base, groups);
    // The class stays whole iff some subclass has the full class size.
    bool whole = false;
    int64_t touched_count = 0;
    for (int32_t i = 0; i < class_rows; ++i) {
      const int32_t fine_cls = groups[i];
      if (fine_cls < 0) continue;
      const int32_t cnt = counts[fine_cls] + 1;
      counts[fine_cls] = cnt;
      touched[touched_count] = fine_cls;
      touched_count += static_cast<int64_t>(cnt == 1);
      whole = whole || (cnt == size);
    }
    for (int64_t t = 0; t < touched_count; ++t) counts[touched[t]] = 0;
    if (!whole) violating += size;
  }

  RecordScan(lhs, lhs_with_rhs);
  return violating;
}

StatusOr<double> G3Calculator::G2Error(const StrippedPartition& lhs,
                                       const StrippedPartition& lhs_with_rhs) {
  if (lhs.num_rows() == 0) return 0.0;
  TANE_ASSIGN_OR_RETURN(const int64_t rows,
                        ViolatingRowCount(lhs, lhs_with_rhs));
  return static_cast<double>(rows) / static_cast<double>(lhs.num_rows());
}

}  // namespace tane
