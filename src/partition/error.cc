#include "partition/error.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace tane {

int64_t IntegerThreshold(double epsilon, double scale) {
  const double product = epsilon * scale;
  if (product >= static_cast<double>(std::numeric_limits<int64_t>::max())) {
    return std::numeric_limits<int64_t>::max();
  }
  return std::max<int64_t>(0, static_cast<int64_t>(std::floor(product)));
}

G3Bounds BoundG3RemovalCount(const StrippedPartition& lhs,
                             const StrippedPartition& lhs_with_rhs) {
  G3Bounds bounds;
  bounds.upper = lhs.Error();
  bounds.lower = std::max<int64_t>(0, lhs.Error() - lhs_with_rhs.Error());
  return bounds;
}

G3Calculator::G3Calculator(int64_t num_rows)
    : num_rows_(num_rows), probe_(num_rows, -1) {}

Status G3Calculator::Prepare(const StrippedPartition& lhs,
                             const StrippedPartition& lhs_with_rhs) {
  if (lhs.num_rows() != lhs_with_rhs.num_rows()) {
    return Status::InvalidArgument(
        "error-measure operands disagree on row count: " +
        std::to_string(lhs.num_rows()) + " vs " +
        std::to_string(lhs_with_rhs.num_rows()));
  }
  if (lhs.num_rows() > num_rows_) {
    // Partitions over more rows than the constructed scratch size: grow to
    // fit rather than corrupt memory or abort.
    num_rows_ = lhs.num_rows();
    probe_.assign(num_rows_, -1);
  }
  return Status::OK();
}

StatusOr<int64_t> G3Calculator::RemovalCount(
    const StrippedPartition& lhs, const StrippedPartition& lhs_with_rhs) {
  TANE_RETURN_IF_ERROR(Prepare(lhs, lhs_with_rhs));
  if (counts_.size() < static_cast<size_t>(lhs_with_rhs.num_classes())) {
    counts_.resize(lhs_with_rhs.num_classes(), 0);
  }

  // Label rows with their class in π_{X∪A}. Rows in no stored class are
  // singletons there and keep label -1.
  const std::vector<int32_t>& fine_rows = lhs_with_rhs.row_ids();
  for (int64_t cls = 0; cls < lhs_with_rhs.num_classes(); ++cls) {
    for (int32_t i = lhs_with_rhs.class_begin(cls);
         i < lhs_with_rhs.class_end(cls); ++i) {
      probe_[fine_rows[i]] = static_cast<int32_t>(cls);
    }
  }

  int64_t removals = 0;
  const std::vector<int32_t>& coarse_rows = lhs.row_ids();
  for (int64_t cls = 0; cls < lhs.num_classes(); ++cls) {
    // The largest subclass has size >= 1 even if every row of this class is
    // a singleton in π_{X∪A}.
    int32_t largest = 1;
    touched_.clear();
    for (int32_t i = lhs.class_begin(cls); i < lhs.class_end(cls); ++i) {
      const int32_t fine_cls = probe_[coarse_rows[i]];
      if (fine_cls < 0) continue;
      if (counts_[fine_cls] == 0) touched_.push_back(fine_cls);
      largest = std::max(largest, ++counts_[fine_cls]);
    }
    for (int32_t fine_cls : touched_) counts_[fine_cls] = 0;
    removals += lhs.class_size(cls) - largest;
  }

  for (int32_t row : fine_rows) probe_[row] = -1;
  return removals;
}

StatusOr<double> G3Calculator::Error(const StrippedPartition& lhs,
                                     const StrippedPartition& lhs_with_rhs) {
  if (lhs.num_rows() == 0) return 0.0;
  TANE_ASSIGN_OR_RETURN(const int64_t removals,
                        RemovalCount(lhs, lhs_with_rhs));
  return static_cast<double>(removals) /
         static_cast<double>(lhs.num_rows());
}

StatusOr<int64_t> G3Calculator::ViolatingPairCount(
    const StrippedPartition& lhs, const StrippedPartition& lhs_with_rhs) {
  TANE_RETURN_IF_ERROR(Prepare(lhs, lhs_with_rhs));
  if (counts_.size() < static_cast<size_t>(lhs_with_rhs.num_classes())) {
    counts_.resize(lhs_with_rhs.num_classes(), 0);
  }
  const std::vector<int32_t>& fine_rows = lhs_with_rhs.row_ids();
  for (int64_t cls = 0; cls < lhs_with_rhs.num_classes(); ++cls) {
    for (int32_t i = lhs_with_rhs.class_begin(cls);
         i < lhs_with_rhs.class_end(cls); ++i) {
      probe_[fine_rows[i]] = static_cast<int32_t>(cls);
    }
  }

  // Ordered agreeing pairs within a class c: |c|·(|c|−1). Of those, pairs
  // also agreeing on A: Σ |c'|·(|c'|−1) over the subclasses c' ⊆ c. Rows
  // that are singletons in π_{X∪A} form subclasses of size 1 contributing
  // zero, so only stored subclasses need counting.
  int64_t violating = 0;
  const std::vector<int32_t>& coarse_rows = lhs.row_ids();
  for (int64_t cls = 0; cls < lhs.num_classes(); ++cls) {
    const int64_t size = lhs.class_size(cls);
    violating += size * (size - 1);
    touched_.clear();
    for (int32_t i = lhs.class_begin(cls); i < lhs.class_end(cls); ++i) {
      const int32_t fine_cls = probe_[coarse_rows[i]];
      if (fine_cls < 0) continue;
      if (counts_[fine_cls] == 0) touched_.push_back(fine_cls);
      ++counts_[fine_cls];
    }
    for (int32_t fine_cls : touched_) {
      const int64_t sub = counts_[fine_cls];
      violating -= sub * (sub - 1);
      counts_[fine_cls] = 0;
    }
  }

  for (int32_t row : fine_rows) probe_[row] = -1;
  return violating;
}

StatusOr<double> G3Calculator::G1Error(const StrippedPartition& lhs,
                                       const StrippedPartition& lhs_with_rhs) {
  if (lhs.num_rows() == 0) return 0.0;
  TANE_ASSIGN_OR_RETURN(const int64_t pairs,
                        ViolatingPairCount(lhs, lhs_with_rhs));
  return static_cast<double>(pairs) /
         (static_cast<double>(lhs.num_rows()) *
          static_cast<double>(lhs.num_rows()));
}

StatusOr<int64_t> G3Calculator::ViolatingRowCount(
    const StrippedPartition& lhs, const StrippedPartition& lhs_with_rhs) {
  TANE_RETURN_IF_ERROR(Prepare(lhs, lhs_with_rhs));
  if (counts_.size() < static_cast<size_t>(lhs_with_rhs.num_classes())) {
    counts_.resize(lhs_with_rhs.num_classes(), 0);
  }
  const std::vector<int32_t>& fine_rows = lhs_with_rhs.row_ids();
  for (int64_t cls = 0; cls < lhs_with_rhs.num_classes(); ++cls) {
    for (int32_t i = lhs_with_rhs.class_begin(cls);
         i < lhs_with_rhs.class_end(cls); ++i) {
      probe_[fine_rows[i]] = static_cast<int32_t>(cls);
    }
  }

  // Every row of a π_X class that splits under π_{X∪A} is in violation
  // with the rows of the other subclasses; classes that stay whole
  // contribute nothing.
  int64_t violating = 0;
  const std::vector<int32_t>& coarse_rows = lhs.row_ids();
  for (int64_t cls = 0; cls < lhs.num_classes(); ++cls) {
    const int64_t size = lhs.class_size(cls);
    // The class stays whole iff some subclass has the full class size.
    bool whole = false;
    touched_.clear();
    for (int32_t i = lhs.class_begin(cls); i < lhs.class_end(cls); ++i) {
      const int32_t fine_cls = probe_[coarse_rows[i]];
      if (fine_cls < 0) continue;
      if (counts_[fine_cls] == 0) touched_.push_back(fine_cls);
      if (++counts_[fine_cls] == size) whole = true;
    }
    for (int32_t fine_cls : touched_) counts_[fine_cls] = 0;
    if (!whole) violating += size;
  }

  for (int32_t row : fine_rows) probe_[row] = -1;
  return violating;
}

StatusOr<double> G3Calculator::G2Error(const StrippedPartition& lhs,
                                       const StrippedPartition& lhs_with_rhs) {
  if (lhs.num_rows() == 0) return 0.0;
  TANE_ASSIGN_OR_RETURN(const int64_t rows,
                        ViolatingRowCount(lhs, lhs_with_rhs));
  return static_cast<double>(rows) / static_cast<double>(lhs.num_rows());
}

}  // namespace tane
