#ifndef TANE_LATTICE_ATTRIBUTE_SET_H_
#define TANE_LATTICE_ATTRIBUTE_SET_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "relation/schema.h"

namespace tane {

/// A set of attribute indices in [0, kMaxAttributes), stored as a 64-bit
/// mask. This is the value type for every left-hand side, right-hand-side
/// candidate set, and lattice node in the search — following the paper's
/// remark that attribute sets are "bit vectors of O(1) words" so that set
/// operations take constant time.
class AttributeSet {
 public:
  /// The empty set.
  constexpr AttributeSet() = default;

  /// The singleton {attribute}.
  static constexpr AttributeSet Singleton(int attribute) {
    return AttributeSet(uint64_t{1} << attribute);
  }

  /// The full set {0, 1, ..., n-1}.
  static constexpr AttributeSet FullSet(int n) {
    return AttributeSet(n >= 64 ? ~uint64_t{0}
                                : (uint64_t{1} << n) - 1);
  }

  /// Builds a set from explicit indices.
  static AttributeSet Of(std::initializer_list<int> attributes) {
    AttributeSet set;
    for (int a : attributes) set = set.With(a);
    return set;
  }

  static constexpr AttributeSet FromMask(uint64_t mask) {
    return AttributeSet(mask);
  }

  constexpr uint64_t mask() const { return mask_; }
  constexpr bool empty() const { return mask_ == 0; }
  int size() const { return std::popcount(mask_); }

  constexpr bool Contains(int attribute) const {
    return (mask_ >> attribute) & 1;
  }
  constexpr bool ContainsAll(AttributeSet other) const {
    return (mask_ & other.mask_) == other.mask_;
  }
  /// True if this is a proper subset of `other`.
  constexpr bool IsProperSubsetOf(AttributeSet other) const {
    return mask_ != other.mask_ && (mask_ & ~other.mask_) == 0;
  }

  constexpr AttributeSet With(int attribute) const {
    return AttributeSet(mask_ | (uint64_t{1} << attribute));
  }
  constexpr AttributeSet Without(int attribute) const {
    return AttributeSet(mask_ & ~(uint64_t{1} << attribute));
  }

  constexpr AttributeSet Union(AttributeSet other) const {
    return AttributeSet(mask_ | other.mask_);
  }
  constexpr AttributeSet Intersect(AttributeSet other) const {
    return AttributeSet(mask_ & other.mask_);
  }
  constexpr AttributeSet Difference(AttributeSet other) const {
    return AttributeSet(mask_ & ~other.mask_);
  }

  /// The smallest attribute index in the set; undefined when empty.
  int First() const { return std::countr_zero(mask_); }

  /// Member indices in ascending order.
  std::vector<int> ToIndices() const {
    std::vector<int> indices;
    indices.reserve(size());
    for (uint64_t m = mask_; m != 0; m &= m - 1) {
      indices.push_back(std::countr_zero(m));
    }
    return indices;
  }

  /// Renders as "{A,C,D}" using `schema` names, or "{}" for the empty set.
  std::string ToString(const Schema& schema) const;

  /// Renders as "{0,2,3}" with raw indices.
  std::string ToString() const;

  friend constexpr bool operator==(AttributeSet a, AttributeSet b) {
    return a.mask_ == b.mask_;
  }
  /// Orders by mask value; used only for canonical sorting of outputs.
  friend constexpr bool operator<(AttributeSet a, AttributeSet b) {
    return a.mask_ < b.mask_;
  }

 private:
  explicit constexpr AttributeSet(uint64_t mask) : mask_(mask) {}

  uint64_t mask_ = 0;
};

/// Iterates `for (int a : Members(set))` over member indices ascending.
class Members {
 public:
  explicit Members(AttributeSet set) : mask_(set.mask()) {}

  class Iterator {
   public:
    explicit Iterator(uint64_t mask) : mask_(mask) {}
    int operator*() const { return std::countr_zero(mask_); }
    Iterator& operator++() {
      mask_ &= mask_ - 1;
      return *this;
    }
    friend bool operator!=(Iterator a, Iterator b) {
      return a.mask_ != b.mask_;
    }

   private:
    uint64_t mask_;
  };

  Iterator begin() const { return Iterator(mask_); }
  Iterator end() const { return Iterator(0); }

 private:
  uint64_t mask_;
};

struct AttributeSetHash {
  size_t operator()(AttributeSet set) const {
    // splitmix64-style finalizer; masks are often dense in the low bits.
    uint64_t x = set.mask();
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

}  // namespace tane

#endif  // TANE_LATTICE_ATTRIBUTE_SET_H_
