#include "lattice/attribute_set.h"

namespace tane {

std::string AttributeSet::ToString(const Schema& schema) const {
  std::string out = "{";
  bool first = true;
  for (int a : Members(*this)) {
    if (!first) out += ",";
    first = false;
    out += schema.name(a);
  }
  out += "}";
  return out;
}

std::string AttributeSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (int a : Members(*this)) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(a);
  }
  out += "}";
  return out;
}

}  // namespace tane
