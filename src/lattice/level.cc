#include "lattice/level.h"

#include <algorithm>

#include "util/logging.h"

namespace tane {
namespace {

int HighestAttribute(AttributeSet set) {
  TANE_DCHECK(!set.empty());
  return 63 - std::countl_zero(set.mask());
}

}  // namespace

std::vector<LevelCandidate> GenerateNextLevel(
    const std::vector<AttributeSet>& level) {
  LevelIndex index(level);

  // Prefix blocks: all sets sharing everything but their largest attribute.
  std::unordered_map<AttributeSet, std::vector<int>, AttributeSetHash> blocks;
  for (size_t i = 0; i < level.size(); ++i) {
    blocks[level[i].Without(HighestAttribute(level[i]))].push_back(
        static_cast<int>(i));
  }

  std::vector<LevelCandidate> candidates;
  for (auto& [prefix, members] : blocks) {
    (void)prefix;
    if (members.size() < 2) continue;
    // Deterministic pair order regardless of hash-map iteration.
    std::sort(members.begin(), members.end(), [&](int a, int b) {
      return HighestAttribute(level[a]) < HighestAttribute(level[b]);
    });
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        const AttributeSet joined = level[members[i]].Union(level[members[j]]);
        // Keep only if every ℓ-subset survives in the previous level.
        bool all_subsets_present = true;
        for (int attribute : Members(joined)) {
          if (!index.Contains(joined.Without(attribute))) {
            all_subsets_present = false;
            break;
          }
        }
        if (all_subsets_present) {
          candidates.push_back({joined, members[i], members[j]});
        }
      }
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const LevelCandidate& a, const LevelCandidate& b) {
              return a.set < b.set;
            });
  return candidates;
}

}  // namespace tane
