#include "lattice/set_trie.h"

#include <algorithm>
#include <memory>

namespace tane {

SetTrie::Node* SetTrie::Node::Child(int attribute) const {
  auto it = std::lower_bound(
      children.begin(), children.end(), attribute,
      [](const auto& entry, int value) { return entry.first < value; });
  if (it == children.end() || it->first != attribute) return nullptr;
  return it->second.get();
}

SetTrie::Node* SetTrie::Node::GetOrCreateChild(int attribute) {
  auto it = std::lower_bound(
      children.begin(), children.end(), attribute,
      [](const auto& entry, int value) { return entry.first < value; });
  if (it != children.end() && it->first == attribute) {
    return it->second.get();
  }
  it = children.emplace(it, attribute, std::make_unique<Node>());
  return it->second.get();
}

bool SetTrie::Insert(AttributeSet set) {
  Node* node = root_.get();
  for (int attribute : Members(set)) {
    node = node->GetOrCreateChild(attribute);
  }
  if (node->terminal) return false;
  node->terminal = true;
  ++size_;
  return true;
}

bool SetTrie::Contains(AttributeSet set) const {
  const Node* node = root_.get();
  for (int attribute : Members(set)) {
    node = node->Child(attribute);
    if (node == nullptr) return false;
  }
  return node->terminal;
}

bool SetTrie::ContainsSubsetOfImpl(const Node* node, uint64_t remaining) {
  if (node->terminal) return true;
  for (const auto& [attribute, child] : node->children) {
    // A subset path may only use attributes of the query set; since paths
    // ascend, only query bits above `attribute` remain usable deeper.
    const uint64_t bit = uint64_t{1} << attribute;
    if ((remaining & bit) == 0) continue;
    if (ContainsSubsetOfImpl(child.get(), remaining & ~(bit | (bit - 1)))) {
      return true;
    }
  }
  return false;
}

bool SetTrie::ContainsSubsetOf(AttributeSet set) const {
  return ContainsSubsetOfImpl(root_.get(), set.mask());
}

bool SetTrie::ContainsSupersetOfImpl(const Node* node, uint64_t required,
                                     int min_attribute) {
  if (required == 0) {
    // All required attributes matched; any terminal below (or here) works.
    if (node->terminal) return true;
    for (const auto& [attribute, child] : node->children) {
      (void)attribute;
      if (ContainsSupersetOfImpl(child.get(), 0, 0)) return true;
    }
    return false;
  }
  const int next_required = std::countr_zero(required);
  for (const auto& [attribute, child] : node->children) {
    if (attribute < min_attribute) continue;
    if (attribute > next_required) break;  // required attribute skipped
    const uint64_t new_required =
        attribute == next_required ? required & (required - 1) : required;
    if (ContainsSupersetOfImpl(child.get(), new_required, attribute + 1)) {
      return true;
    }
  }
  return false;
}

bool SetTrie::ContainsSupersetOf(AttributeSet set) const {
  return ContainsSupersetOfImpl(root_.get(), set.mask(), 0);
}

bool SetTrie::Erase(AttributeSet set) {
  // Walk down, remembering the path so dead branches can be pruned.
  std::vector<std::pair<Node*, int>> path;  // (parent, attribute taken)
  Node* node = root_.get();
  for (int attribute : Members(set)) {
    Node* child = node->Child(attribute);
    if (child == nullptr) return false;
    path.emplace_back(node, attribute);
    node = child;
  }
  if (!node->terminal) return false;
  node->terminal = false;
  --size_;
  // Prune now-dead leaves bottom-up.
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    Node* parent = it->first;
    const int attribute = it->second;
    Node* child = parent->Child(attribute);
    if (child == nullptr || !child->IsLeafDead()) break;
    auto pos = std::lower_bound(
        parent->children.begin(), parent->children.end(), attribute,
        [](const auto& entry, int value) { return entry.first < value; });
    parent->children.erase(pos);
  }
  return true;
}

void SetTrie::ExtractSupersetsImpl(Node* node, uint64_t required,
                                   AttributeSet prefix,
                                   std::vector<AttributeSet>* out) {
  if (required == 0) {
    if (node->terminal) {
      node->terminal = false;
      out->push_back(prefix);
    }
    for (auto& [attribute, child] : node->children) {
      ExtractSupersetsImpl(child.get(), 0, prefix.With(attribute), out);
    }
  } else {
    const int next_required = std::countr_zero(required);
    for (auto& [attribute, child] : node->children) {
      if (attribute > next_required) break;
      const uint64_t new_required =
          attribute == next_required ? required & (required - 1) : required;
      ExtractSupersetsImpl(child.get(), new_required,
                           prefix.With(attribute), out);
    }
  }
  // Drop dead children.
  node->children.erase(
      std::remove_if(node->children.begin(), node->children.end(),
                     [](const auto& entry) {
                       return entry.second->IsLeafDead();
                     }),
      node->children.end());
}

std::vector<AttributeSet> SetTrie::ExtractSupersetsOf(AttributeSet set) {
  std::vector<AttributeSet> removed;
  ExtractSupersetsImpl(root_.get(), set.mask(), AttributeSet(), &removed);
  size_ -= removed.size();
  std::sort(removed.begin(), removed.end());
  return removed;
}

void SetTrie::ExtractSubsetsImpl(Node* node, uint64_t remaining,
                                 AttributeSet prefix,
                                 std::vector<AttributeSet>* out) {
  if (node->terminal) {
    node->terminal = false;
    out->push_back(prefix);
  }
  for (auto& [attribute, child] : node->children) {
    const uint64_t bit = uint64_t{1} << attribute;
    if ((remaining & bit) == 0) continue;
    ExtractSubsetsImpl(child.get(), remaining & ~(bit | (bit - 1)),
                       prefix.With(attribute), out);
  }
  node->children.erase(
      std::remove_if(node->children.begin(), node->children.end(),
                     [](const auto& entry) {
                       return entry.second->IsLeafDead();
                     }),
      node->children.end());
}

std::vector<AttributeSet> SetTrie::ExtractSubsetsOf(AttributeSet set) {
  std::vector<AttributeSet> removed;
  ExtractSubsetsImpl(root_.get(), set.mask(), AttributeSet(), &removed);
  size_ -= removed.size();
  std::sort(removed.begin(), removed.end());
  return removed;
}

void SetTrie::EnumerateImpl(const Node* node, AttributeSet prefix,
                            std::vector<AttributeSet>* out) {
  if (node->terminal) out->push_back(prefix);
  for (const auto& [attribute, child] : node->children) {
    EnumerateImpl(child.get(), prefix.With(attribute), out);
  }
}

std::vector<AttributeSet> SetTrie::Enumerate() const {
  std::vector<AttributeSet> out;
  EnumerateImpl(root_.get(), AttributeSet(), &out);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tane
