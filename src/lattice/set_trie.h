#ifndef TANE_LATTICE_SET_TRIE_H_
#define TANE_LATTICE_SET_TRIE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "lattice/attribute_set.h"

namespace tane {

/// A set-trie (prefix tree over ascending attribute indices) holding a
/// family of attribute sets with fast subset/superset queries — the
/// "FD-tree" of Savnik & Flach's FDEP, generalized. Complexities are
/// output-sensitive: ContainsSubsetOf/ContainsSupersetOf visit only branches
/// compatible with the query set, which in practice beats the linear scans
/// they replace by orders of magnitude on large covers.
class SetTrie {
 public:
  SetTrie() : root_(std::make_unique<Node>()) {}

  SetTrie(const SetTrie&) = delete;
  SetTrie& operator=(const SetTrie&) = delete;
  SetTrie(SetTrie&&) = default;
  SetTrie& operator=(SetTrie&&) = default;

  /// Inserts `set`. Duplicate inserts are no-ops. Returns true if new.
  bool Insert(AttributeSet set);

  /// True if exactly `set` is stored.
  bool Contains(AttributeSet set) const;

  /// True if some stored S satisfies S ⊆ set.
  bool ContainsSubsetOf(AttributeSet set) const;

  /// True if some stored S satisfies S ⊇ set.
  bool ContainsSupersetOf(AttributeSet set) const;

  /// Removes exactly `set` if stored; returns true if it was present.
  bool Erase(AttributeSet set);

  /// Removes every stored S with S ⊇ set (including `set` itself) and
  /// returns the removed sets. Used for cover specialization.
  std::vector<AttributeSet> ExtractSupersetsOf(AttributeSet set);

  /// Removes every stored S with S ⊆ set (including `set` itself) and
  /// returns the removed sets.
  std::vector<AttributeSet> ExtractSubsetsOf(AttributeSet set);

  /// All stored sets in ascending mask order.
  std::vector<AttributeSet> Enumerate() const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Node {
    bool terminal = false;
    // Children keyed by attribute index, kept sorted ascending.
    std::vector<std::pair<int, std::unique_ptr<Node>>> children;

    Node* Child(int attribute) const;
    Node* GetOrCreateChild(int attribute);
    bool IsLeafDead() const { return !terminal && children.empty(); }
  };

  static bool ContainsSubsetOfImpl(const Node* node, uint64_t remaining);
  static bool ContainsSupersetOfImpl(const Node* node, uint64_t required,
                                     int min_attribute);
  static void ExtractSupersetsImpl(Node* node, uint64_t required,
                                   AttributeSet prefix,
                                   std::vector<AttributeSet>* out);
  static void ExtractSubsetsImpl(Node* node, uint64_t remaining,
                                 AttributeSet prefix,
                                 std::vector<AttributeSet>* out);
  static void EnumerateImpl(const Node* node, AttributeSet prefix,
                            std::vector<AttributeSet>* out);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace tane

#endif  // TANE_LATTICE_SET_TRIE_H_
