#ifndef TANE_LATTICE_LEVEL_H_
#define TANE_LATTICE_LEVEL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lattice/attribute_set.h"

namespace tane {

/// An index over the attribute sets of one lattice level, providing the
/// "random access with hashing" the paper relies on for constant-time set
/// lookup.
class LevelIndex {
 public:
  LevelIndex() = default;
  explicit LevelIndex(const std::vector<AttributeSet>& sets) {
    index_.reserve(sets.size());
    for (size_t i = 0; i < sets.size(); ++i) {
      index_.emplace(sets[i], static_cast<int>(i));
    }
  }

  /// Position of `set` in the originating vector, or -1 if absent.
  int Find(AttributeSet set) const {
    auto it = index_.find(set);
    return it == index_.end() ? -1 : it->second;
  }

  bool Contains(AttributeSet set) const { return Find(set) >= 0; }
  size_t size() const { return index_.size(); }

 private:
  std::unordered_map<AttributeSet, int, AttributeSetHash> index_;
};

/// A candidate produced by GENERATE-NEXT-LEVEL: the (ℓ+1)-set itself plus
/// the positions (within the previous level) of the two ℓ-subsets it was
/// joined from. TANE computes the candidate's partition as the product of
/// those two parents' partitions (Lemma 3).
struct LevelCandidate {
  AttributeSet set;
  int parent_a = -1;
  int parent_b = -1;
};

/// Implements the specification of GENERATE-NEXT-LEVEL (paper §5): the next
/// level contains exactly the (ℓ+1)-sets all of whose ℓ-subsets are in
/// `level`. Uses the classic prefix-block join: two ℓ-sets that differ only
/// in their largest attribute generate their union, which is then kept only
/// if every ℓ-subset is present.
///
/// `level` must contain distinct sets of a single uniform size ℓ >= 1.
/// Candidates are returned in ascending mask order (deterministic).
std::vector<LevelCandidate> GenerateNextLevel(
    const std::vector<AttributeSet>& level);

}  // namespace tane

#endif  // TANE_LATTICE_LEVEL_H_
