#ifndef TANE_RULES_ASSOCIATION_H_
#define TANE_RULES_ASSOCIATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relation/relation.h"
#include "util/status.h"

namespace tane {

/// Association-rule mining over attribute-value pairs, the generalization
/// sketched in the paper's concluding remarks: "An equivalence class
/// corresponds then to a particular value combination of the attribute set.
/// By comparing equivalence classes instead of full partitions, we can find
/// association rules." An itemset's supporting row set *is* one equivalence
/// class of the partition of its attributes; rules compare a class with the
/// classes refining it.

/// One attribute-value item, e.g. (city = "Paris") as (column, code).
struct Item {
  int attribute = 0;
  int32_t code = 0;

  friend bool operator==(const Item& a, const Item& b) {
    return a.attribute == b.attribute && a.code == b.code;
  }
  friend bool operator<(const Item& a, const Item& b) {
    if (a.attribute != b.attribute) return a.attribute < b.attribute;
    return a.code < b.code;
  }
};

/// A rule antecedent ⇒ consequent between attribute-value pairs over
/// distinct attributes.
struct AssociationRule {
  std::vector<Item> antecedent;  // sorted by attribute
  Item consequent;
  int64_t support_count = 0;  // rows matching antecedent ∪ {consequent}
  double support = 0.0;       // support_count / |r|
  double confidence = 0.0;    // support_count / |class(antecedent)|

  /// Renders as "city=Paris, lang=fr => country=France  (sup=0.12 conf=0.96)".
  std::string ToString(const Relation& relation) const;
};

struct AssociationMiningOptions {
  /// Minimum fraction of rows an itemset's equivalence class must hold.
  double min_support = 0.1;
  /// Minimum rule confidence.
  double min_confidence = 0.8;
  /// Largest itemset size explored (antecedent size + 1).
  int max_itemset_size = 4;
  /// Safety cap on the number of frequent itemsets materialized.
  int64_t max_itemsets = 1000000;
};

/// Mines all association rules meeting the thresholds with a levelwise
/// (Apriori-style) search whose candidate row sets are intersections of
/// equivalence classes. Rules are returned sorted by descending confidence,
/// then support.
StatusOr<std::vector<AssociationRule>> MineAssociationRules(
    const Relation& relation, const AssociationMiningOptions& options = {});

}  // namespace tane

#endif  // TANE_RULES_ASSOCIATION_H_
