#include "rules/association.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <unordered_map>
#include <utility>

namespace tane {
namespace {

// A frequent itemset: sorted items (distinct attributes) plus the rows of
// its equivalence class (sorted ascending).
struct Itemset {
  std::vector<Item> items;
  std::vector<int32_t> rows;
};

// True when a and b share all but the last item and their last items are
// over different attributes (so the union has distinct attributes). Items
// are sorted, so the joined set stays sorted by appending b's last item.
bool Joinable(const Itemset& a, const Itemset& b) {
  const size_t k = a.items.size();
  for (size_t i = 0; i + 1 < k; ++i) {
    if (!(a.items[i] == b.items[i])) return false;
  }
  return a.items[k - 1].attribute < b.items[k - 1].attribute;
}

std::vector<int32_t> IntersectRows(const std::vector<int32_t>& a,
                                   const std::vector<int32_t>& b) {
  std::vector<int32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

std::string AssociationRule::ToString(const Relation& relation) const {
  std::string out;
  for (size_t i = 0; i < antecedent.size(); ++i) {
    if (i > 0) out += ", ";
    const Item& item = antecedent[i];
    out += relation.schema().name(item.attribute) + "=" +
           relation.column(item.attribute).dictionary[item.code];
  }
  out += " => ";
  out += relation.schema().name(consequent.attribute) + "=" +
         relation.column(consequent.attribute).dictionary[consequent.code];
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  (sup=%.3f conf=%.3f)", support,
                confidence);
  out += buf;
  return out;
}

StatusOr<std::vector<AssociationRule>> MineAssociationRules(
    const Relation& relation, const AssociationMiningOptions& options) {
  if (options.min_support < 0.0 || options.min_support > 1.0) {
    return Status::InvalidArgument("min_support must be in [0, 1]");
  }
  if (options.min_confidence < 0.0 || options.min_confidence > 1.0) {
    return Status::InvalidArgument("min_confidence must be in [0, 1]");
  }
  if (options.max_itemset_size < 2) {
    return Status::InvalidArgument("max_itemset_size must be >= 2");
  }
  const int64_t rows = relation.num_rows();
  const double min_rows = options.min_support * static_cast<double>(rows);

  // Level 1: frequent items = large-enough equivalence classes of the
  // single-attribute partitions.
  std::vector<Itemset> level;
  for (int a = 0; a < relation.num_columns(); ++a) {
    const Column& column = relation.column(a);
    std::vector<std::vector<int32_t>> classes(column.cardinality());
    for (int64_t row = 0; row < rows; ++row) {
      classes[column.codes[row]].push_back(static_cast<int32_t>(row));
    }
    for (int32_t code = 0; code < column.cardinality(); ++code) {
      if (static_cast<double>(classes[code].size()) + 1e-9 >= min_rows &&
          !classes[code].empty()) {
        level.push_back({{{a, code}}, std::move(classes[code])});
      }
    }
  }

  // Support lookup for confidence computation, keyed by the item vector.
  struct ItemsHash {
    size_t operator()(const std::vector<Item>& items) const {
      uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (const Item& item : items) {
        h ^= (static_cast<uint64_t>(item.attribute) << 32) ^
             static_cast<uint64_t>(static_cast<uint32_t>(item.code));
        h *= 0xbf58476d1ce4e5b9ULL;
      }
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };
  std::unordered_map<std::vector<Item>, int64_t, ItemsHash> support_count;
  support_count.reserve(level.size() * 4);
  // The empty itemset supports every row.
  support_count[{}] = rows;
  for (const Itemset& itemset : level) {
    support_count[itemset.items] = static_cast<int64_t>(itemset.rows.size());
  }

  std::vector<AssociationRule> rules;
  int64_t total_itemsets = static_cast<int64_t>(level.size());

  for (int size = 2;
       size <= options.max_itemset_size && level.size() >= 2; ++size) {
    // Candidates via prefix join; the row set is the intersection of the
    // parents' equivalence classes. (The full Apriori subset check is
    // subsumed by the support test on the exact row set.)
    std::vector<Itemset> next;
    for (size_t i = 0; i < level.size(); ++i) {
      for (size_t j = i + 1; j < level.size(); ++j) {
        if (!Joinable(level[i], level[j])) {
          // `level` is sorted by items, so once prefixes diverge no later j
          // can match i — but attribute-equal last items may sit between,
          // so only break when the shared prefix itself changed.
          bool prefix_equal = true;
          for (size_t p = 0; p + 1 < level[i].items.size(); ++p) {
            if (!(level[i].items[p] == level[j].items[p])) {
              prefix_equal = false;
              break;
            }
          }
          if (!prefix_equal) break;
          continue;
        }
        std::vector<int32_t> shared =
            IntersectRows(level[i].rows, level[j].rows);
        if (static_cast<double>(shared.size()) + 1e-9 < min_rows ||
            shared.empty()) {
          continue;
        }
        Itemset joined;
        joined.items = level[i].items;
        joined.items.push_back(level[j].items.back());
        joined.rows = std::move(shared);
        support_count[joined.items] =
            static_cast<int64_t>(joined.rows.size());
        next.push_back(std::move(joined));
        if (++total_itemsets > options.max_itemsets) {
          return Status::ResourceExhausted(
              "frequent itemset cap exceeded; raise min_support");
        }
      }
    }

    // Emit rules Z\{i} => i from every new frequent itemset.
    for (const Itemset& itemset : next) {
      const int64_t z_support =
          static_cast<int64_t>(itemset.rows.size());
      for (size_t drop = 0; drop < itemset.items.size(); ++drop) {
        std::vector<Item> antecedent;
        antecedent.reserve(itemset.items.size() - 1);
        for (size_t k = 0; k < itemset.items.size(); ++k) {
          if (k != drop) antecedent.push_back(itemset.items[k]);
        }
        const auto it = support_count.find(antecedent);
        if (it == support_count.end() || it->second == 0) continue;
        const double confidence =
            static_cast<double>(z_support) / static_cast<double>(it->second);
        if (confidence + 1e-12 < options.min_confidence) continue;
        AssociationRule rule;
        rule.antecedent = std::move(antecedent);
        rule.consequent = itemset.items[drop];
        rule.support_count = z_support;
        rule.support = rows == 0 ? 0.0
                                 : static_cast<double>(z_support) /
                                       static_cast<double>(rows);
        rule.confidence = confidence;
        rules.push_back(std::move(rule));
      }
    }
    level = std::move(next);
  }

  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.support != b.support) return a.support > b.support;
              if (!(a.consequent == b.consequent)) {
                return a.consequent < b.consequent;
              }
              return a.antecedent < b.antecedent;
            });
  return rules;
}

}  // namespace tane
