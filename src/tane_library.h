#ifndef TANE_TANE_LIBRARY_H_
#define TANE_TANE_LIBRARY_H_

/// Umbrella header: the full public API of the TANE library.
///
///   #include "tane_library.h"
///
/// Pulls in relation construction and I/O, the TANE discovery engine, the
/// baselines, the dataset generators, and the analysis helpers. Individual
/// headers remain includable on their own for smaller builds.

#include "analysis/closure.h"         // IWYU pragma: export
#include "analysis/key_discovery.h"   // IWYU pragma: export
#include "analysis/keys.h"            // IWYU pragma: export
#include "analysis/normalization.h"   // IWYU pragma: export
#include "analysis/violations.h"      // IWYU pragma: export
#include "baselines/brute_force.h"    // IWYU pragma: export
#include "baselines/fdep.h"           // IWYU pragma: export
#include "core/config.h"              // IWYU pragma: export
#include "core/fd.h"                  // IWYU pragma: export
#include "core/result.h"              // IWYU pragma: export
#include "core/tane.h"                // IWYU pragma: export
#include "datasets/generators.h"      // IWYU pragma: export
#include "datasets/paper_datasets.h"  // IWYU pragma: export
#include "lattice/attribute_set.h"    // IWYU pragma: export
#include "relation/csv.h"             // IWYU pragma: export
#include "relation/relation.h"        // IWYU pragma: export
#include "relation/relation_builder.h"  // IWYU pragma: export
#include "relation/schema.h"          // IWYU pragma: export
#include "relation/stats.h"           // IWYU pragma: export
#include "relation/transforms.h"      // IWYU pragma: export
#include "rules/association.h"        // IWYU pragma: export
#include "util/status.h"              // IWYU pragma: export

#endif  // TANE_TANE_LIBRARY_H_
