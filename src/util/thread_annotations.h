#ifndef TANE_UTIL_THREAD_ANNOTATIONS_H_
#define TANE_UTIL_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis annotations (-Wthread-safety), in the style
// of Abseil's thread_annotations.h. They declare which lock protects which
// data and which locks a function needs, so the `analysis` CMake preset can
// reject mis-locked code at compile time. On compilers without the
// attributes (GCC, MSVC) every macro expands to nothing, so annotated code
// builds everywhere.
//
// The annotations only attach to the tane::Mutex / tane::SharedMutex
// wrappers from util/mutex.h (std::mutex is not a Clang "capability" under
// libstdc++), which is why library code uses the wrappers instead of the
// std types — tools/tane_lint.py enforces that.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define TANE_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#if !defined(TANE_THREAD_ANNOTATION_)
#define TANE_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

// Marks a class as a lockable capability ("mutex" names the kind in
// diagnostics).
#define TANE_CAPABILITY(x) TANE_THREAD_ANNOTATION_(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases a
// capability.
#define TANE_SCOPED_CAPABILITY TANE_THREAD_ANNOTATION_(scoped_lockable)

// Declares that a data member may only be accessed while holding `x`
// (exclusively for writes, at least shared for reads).
#define TANE_GUARDED_BY(x) TANE_THREAD_ANNOTATION_(guarded_by(x))

// Declares that the data *pointed to* by a pointer member is guarded by
// `x`; the pointer itself may be read freely.
#define TANE_PT_GUARDED_BY(x) TANE_THREAD_ANNOTATION_(pt_guarded_by(x))

// Declares that callers must hold the listed capabilities exclusively
// (resp. at least shared) when calling the function.
#define TANE_REQUIRES(...) \
  TANE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define TANE_REQUIRES_SHARED(...) \
  TANE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// Declares that the function acquires (resp. releases) the listed
// capabilities; with no argument, the capability is `this`.
#define TANE_ACQUIRE(...) \
  TANE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define TANE_ACQUIRE_SHARED(...) \
  TANE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define TANE_RELEASE(...) \
  TANE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define TANE_RELEASE_SHARED(...) \
  TANE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define TANE_RELEASE_GENERIC(...) \
  TANE_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

// Declares a function that acquires the capability only when it returns
// the given value (e.g. TryLock).
#define TANE_TRY_ACQUIRE(...) \
  TANE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Declares that callers must NOT hold the listed capabilities (deadlock
// prevention for functions that acquire them internally).
#define TANE_EXCLUDES(...) TANE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Declares that a function returns a reference to a capability.
#define TANE_RETURN_CAPABILITY(x) TANE_THREAD_ANNOTATION_(lock_returned(x))

// Asserts at runtime boundaries that the capability is held; informs the
// analysis without acquiring anything.
#define TANE_ASSERT_CAPABILITY(x) \
  TANE_THREAD_ANNOTATION_(assert_capability(x))

// Escape hatch for functions whose locking is deliberately outside the
// analysis (document why at every use).
#define TANE_NO_THREAD_SAFETY_ANALYSIS \
  TANE_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // TANE_UTIL_THREAD_ANNOTATIONS_H_
