#ifndef TANE_UTIL_RETRY_H_
#define TANE_UTIL_RETRY_H_

#include <chrono>
#include <functional>

#include "util/status.h"

namespace tane {

/// Policy for RetryWithBackoff: up to `max_attempts` tries, sleeping
/// `initial_backoff * multiplier^k` between them, capped at `max_backoff`.
/// Only statuses accepted by `retriable` are retried; everything else
/// (including corruption detected by a checksum) surfaces immediately.
struct RetryPolicy {
  int max_attempts = 4;
  std::chrono::milliseconds initial_backoff{1};
  std::chrono::milliseconds max_backoff{16};
  double multiplier = 2.0;

  /// Fraction of each computed backoff replaced by a uniform random draw,
  /// in [0, 1]: the actual sleep is backoff * (1 - jitter + U[0, jitter]).
  /// 0 (the default) keeps sleeps exact and deterministic; positive values
  /// de-synchronize retry storms when many workers hit the same transient
  /// fault together. Draws come from the repo's deterministic Rng, seeded
  /// with `jitter_seed`, so a test can predict the exact sleep sequence.
  double jitter = 0.0;
  uint64_t jitter_seed = 0;

  /// Which errors are worth retrying. Defaults to transient I/O errors.
  std::function<bool(const Status&)> retriable;

  /// Sleep hook, overridable in tests to avoid real delays. Defaults to
  /// std::this_thread::sleep_for.
  std::function<void(std::chrono::milliseconds)> sleep;
};

/// The default `retriable` predicate: kIoError only. Checksum mismatches and
/// argument errors are deterministic and must not be retried, so callers
/// that can distinguish them should use a different code (kInvalidArgument).
[[nodiscard]] bool IsTransientIoError(const Status& status);

/// Runs `fn` until it returns OK, a non-retriable error, or the policy's
/// attempt budget is exhausted; returns the last status. `fn` must be safe
/// to re-run after a failure (writes at a fixed offset, idempotent reads).
/// The returned Status is the whole point of the call — never discard it.
[[nodiscard]] Status RetryWithBackoff(const RetryPolicy& policy,
                                      const std::function<Status()>& fn);

}  // namespace tane

#endif  // TANE_UTIL_RETRY_H_
