#include "util/logging.h"

#include <cstdio>

namespace tane {
namespace internal_logging {
namespace {

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

LogSeverity g_min_severity = LogSeverity::kWarning;

}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }
LogSeverity GetMinLogSeverity() { return g_min_severity; }

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == LogSeverity::kFatal) {
    std::string line = stream_.str();
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace tane
