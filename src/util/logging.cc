#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace tane {
namespace internal_logging {
namespace {

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

LogSeverity g_min_severity = LogSeverity::kWarning;
// Set-once hook pointer, published release / read acquire; no protocol.
// tane-lint: allow(naked-atomic)
std::atomic<void (*)()> g_fatal_hook{nullptr};

}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }
LogSeverity GetMinLogSeverity() { return g_min_severity; }

bool ParseLogSeverity(std::string_view name, LogSeverity* severity) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  if (lower == "info") {
    *severity = LogSeverity::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *severity = LogSeverity::kWarning;
  } else if (lower == "error") {
    *severity = LogSeverity::kError;
  } else if (lower == "fatal") {
    *severity = LogSeverity::kFatal;
  } else {
    return false;
  }
  return true;
}

const char* LogSeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "info";
    case LogSeverity::kWarning:
      return "warning";
    case LogSeverity::kError:
      return "error";
    case LogSeverity::kFatal:
      return "fatal";
  }
  return "unknown";
}

bool InitLogSeverityFromEnv() {
  const char* value = std::getenv("TANE_LOG_LEVEL");
  if (value == nullptr || value[0] == '\0') return false;
  LogSeverity severity;
  if (!ParseLogSeverity(value, &severity)) {
    TANE_LOG(Warning) << "ignoring invalid TANE_LOG_LEVEL=\"" << value
                      << "\" (expected info|warning|error|fatal)";
    return false;
  }
  SetMinLogSeverity(severity);
  return true;
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == LogSeverity::kFatal) {
    std::string line = stream_.str();
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    // Give the flight recorder (or any other postmortem sink) its one
    // chance to persist state before the abort tears the process down.
    void (*hook)() = g_fatal_hook.load(std::memory_order_acquire);
    if (hook != nullptr) hook();
    std::abort();
  }
}

void SetFatalHook(void (*hook)()) {
  g_fatal_hook.store(hook, std::memory_order_release);
}

}  // namespace internal_logging
}  // namespace tane
