#ifndef TANE_UTIL_RUN_CONTROL_H_
#define TANE_UTIL_RUN_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string_view>

namespace tane {

/// Why a controlled run stopped before finishing.
enum class StopReason : int32_t {
  kNone = 0,       // still running / ran to completion
  kDeadline = 1,   // the wall-clock deadline passed
  kCancelled = 2,  // RequestCancel() was called
};

/// Returns "none", "deadline", or "cancelled".
std::string_view StopReasonToString(StopReason reason);

/// Cooperative resource-and-time governor for a discovery run. A controller
/// carries three independent limits:
///
///  * a wall-clock **deadline** (SetDeadline / SetDeadlineAfter);
///  * a **cancellation token** — RequestCancel() may be called from any
///    thread while the run polls ShouldStop(), itself callable from any
///    number of worker threads concurrently (the parallel level executor
///    polls it from every worker);
///  * a **memory budget** in bytes, consulted by the driver: under
///    StorageMode::kMemory a breach aborts with kResourceExhausted, under
///    StorageMode::kAuto it triggers transparent migration of the partition
///    store to disk (the run degrades instead of dying).
///
/// Deadline and cancellation end the run *gracefully*: Tane::Discover
/// returns a partial DiscoveryResult containing every dependency already
/// proven, with DiscoveryResult::completion describing why it is partial.
/// The first stop reason observed is latched and later polls keep
/// reporting it, so a run stops for exactly one reason.
///
/// Thread-safety: ShouldStop(), RequestCancel(), and stop_reason() are safe
/// to call concurrently. The setters (deadline, memory budget) must be
/// called before the run starts polling.
class RunController {
 public:
  RunController() = default;

  RunController(const RunController&) = delete;
  RunController& operator=(const RunController&) = delete;

  /// Sets the deadline to `budget` from now. A zero or negative budget
  /// expires immediately.
  void SetDeadlineAfter(std::chrono::milliseconds budget) {
    deadline_ = Clock::now() + budget;
    has_deadline_ = true;
  }

  /// Sets an absolute deadline.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  void ClearDeadline() { has_deadline_ = false; }
  bool has_deadline() const { return has_deadline_; }

  /// Seconds until the deadline (negative once it passed); a large positive
  /// value when no deadline is set. Readable while the run polls.
  double deadline_remaining_seconds() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(deadline_ - Clock::now()).count();
  }

  /// Requests cooperative cancellation. Thread-safe; idempotent.
  void RequestCancel() { cancel_requested_.store(true, std::memory_order_release); }

  [[nodiscard]] bool cancel_requested() const {
    return cancel_requested_.load(std::memory_order_acquire);
  }

  /// Memory budget in bytes for the run's partition store; 0 = unlimited.
  void set_memory_budget_bytes(int64_t bytes) { memory_budget_bytes_ = bytes; }
  int64_t memory_budget_bytes() const { return memory_budget_bytes_; }

  /// Polls the deadline and the cancellation token. Returns true when the
  /// run should stop; the reason is latched and readable via stop_reason().
  /// Cancellation wins over the deadline when both trip in the same poll.
  /// Safe to call from multiple threads; the first reason latched wins.
  /// [[nodiscard]]: polling and ignoring the verdict would latch a stop
  /// reason while the caller keeps running.
  [[nodiscard]] bool ShouldStop();

  /// The latched reason from the first ShouldStop() that returned true.
  StopReason stop_reason() const {
    return stop_reason_.load(std::memory_order_acquire);
  }

 private:
  using Clock = std::chrono::steady_clock;

  // Deliberately unlocked: the setters run before the run starts polling
  // (class contract above), after which these are read-only from any
  // thread. The mutable cross-thread state (cancel_requested_,
  // stop_reason_) is atomic and needs no lock.
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  // A sticky cancel flag and a first-writer-wins reason latch —
  // independent cells whose explicit orders are the contract.
  // tane-lint: allow(naked-atomic)
  std::atomic<bool> cancel_requested_{false};
  int64_t memory_budget_bytes_ = 0;
  // tane-lint: allow(naked-atomic)
  std::atomic<StopReason> stop_reason_{StopReason::kNone};
};

}  // namespace tane

#endif  // TANE_UTIL_RUN_CONTROL_H_
