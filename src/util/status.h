#ifndef TANE_UTIL_STATUS_H_
#define TANE_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace tane {

// Error categories for fallible operations. The library does not use C++
// exceptions; every operation that can fail returns a Status or StatusOr<T>.
enum class StatusCode : int32_t {
  kOk = 0,
  kInvalidArgument = 1,   // caller passed something malformed
  kNotFound = 2,          // a named entity (file, column) does not exist
  kOutOfRange = 3,        // an index or threshold is outside its domain
  kFailedPrecondition = 4,  // object state does not admit the operation
  kIoError = 5,           // the filesystem or OS reported an error
  kResourceExhausted = 6,  // a configured memory/size budget was exceeded
  kUnimplemented = 7,     // the feature is declared but not available
  kInternal = 8,          // invariant violation; indicates a library bug
};

/// Returns a stable human-readable name for `code`, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. `Status::OK()` is cheap to copy;
/// error statuses carry a code and a message.
///
/// [[nodiscard]]: a Status that is never examined is a swallowed error, so
/// every build compiles with -Werror=unused-result. Call sites that truly
/// cannot act on a failure must route it through a logging helper (see e.g.
/// the release paths in core/tane.cc) rather than discarding it.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Mirrors absl::StatusOr in
/// spirit: check `ok()` before calling `value()`. [[nodiscard]] for the
/// same reason as Status: an unexamined StatusOr hides both the error and
/// the value.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Intentionally implicit so `return MakeThing();` and `return status;`
  // both work at call sites, matching the absl::StatusOr idiom.
  StatusOr(const T& value) : value_(value) {}        // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}  // NOLINT
  // An OK status carries no value, which would leave ok() and status().ok()
  // disagreeing; normalize it to an error so both report failure.
  StatusOr(Status status)  // NOLINT
      : status_(status.ok()
                    ? Status::Internal(
                          "StatusOr constructed from an OK status with no value")
                    : std::move(status)) {}

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tane

// Propagates a non-OK Status from an expression to the caller.
#define TANE_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::tane::Status tane_status_macro_tmp = (expr); \
    if (!tane_status_macro_tmp.ok()) return tane_status_macro_tmp; \
  } while (false)

// Evaluates a StatusOr expression, propagating errors, else binds the value.
#define TANE_ASSIGN_OR_RETURN(lhs, expr)                        \
  TANE_ASSIGN_OR_RETURN_IMPL_(                                  \
      TANE_STATUS_MACRO_CONCAT_(tane_statusor_, __LINE__), lhs, expr)
#define TANE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()
#define TANE_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define TANE_STATUS_MACRO_CONCAT_(x, y) TANE_STATUS_MACRO_CONCAT_INNER_(x, y)

#endif  // TANE_UTIL_STATUS_H_
