#include "util/span_stack.h"

// tane-atomics: seqlock(epoch_)
// Per-thread span stacks publish frames under `epoch_`: the owning thread
// bumps it odd before mutating and even after; the sampler thread copies
// frames between two even reads and retries on mismatch.

#include <atomic>
#include <cstring>

#include "util/mutex.h"

namespace tane {

namespace {

// Registry of live stacks. A plain mutex is fine: it is taken on thread
// first-use, thread exit, and sampler ticks (~100 Hz) — never on Push/Pop.
Mutex* RegistryMutex() {
  // Leaked deliberately: thread_local SpanStack destructors run during
  // thread teardown, possibly after static destruction began.
  // tane-lint: allow(naked-new)
  static Mutex* mu = new Mutex;
  return mu;
}

std::vector<SpanStack*>* RegistryList() {
  // Leaked for the same teardown-ordering reason as the mutex above.
  // tane-lint: allow(naked-new)
  static std::vector<SpanStack*>* list = new std::vector<SpanStack*>;
  return list;
}

int* RegistryNextId() {
  static int next_id = 0;
  return &next_id;
}

// Packs a NUL-padded char window into atomic words with relaxed stores.
void StoreChars(std::atomic<uint64_t>* words, const char* s) {
  char padded[kSpanFrameChars];
  std::memset(padded, 0, sizeof(padded));
  if (s != nullptr) {
    // memcpy of the measured prefix, not strncpy: the buffer is already
    // zeroed, and this keeps -Wstringop-truncation quiet about the
    // deliberate cut at kSpanFrameChars - 1.
    size_t n = 0;
    while (n < kSpanFrameChars - 1 && s[n] != '\0') ++n;
    std::memcpy(padded, s, n);
  }
  for (int w = 0; w < kSpanFrameWords; ++w) {
    uint64_t word;
    std::memcpy(&word, padded + w * 8, 8);
    words[w].store(word, std::memory_order_relaxed);
  }
}

void LoadChars(const std::atomic<uint64_t>* words, char* out) {
  for (int w = 0; w < kSpanFrameWords; ++w) {
    const uint64_t word = words[w].load(std::memory_order_relaxed);
    std::memcpy(out + w * 8, &word, 8);
  }
  out[kSpanFrameChars - 1] = '\0';
}

}  // namespace

namespace {
std::atomic<uint64_t> g_collective_label[kSpanFrameWords] = {};
}  // namespace

void SpanStack::SetCollectiveLabel(const char* label) {
  StoreChars(g_collective_label, label);
}

void SpanStack::GetCollectiveLabel(char out[kSpanFrameChars]) {
  LoadChars(g_collective_label, out);
}

std::atomic<bool>& SpanStack::recording_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

void SpanStack::SetRecording(bool enabled) {
  recording_flag().store(enabled, std::memory_order_relaxed);
}

SpanStack::SpanStack() {
  MutexLock lock(RegistryMutex());
  char label[kSpanFrameChars];
  const int id = (*RegistryNextId())++;
  if (id == 0) {
    std::strncpy(label, "main", sizeof(label));
  } else {
    // "thread-N" until the owner names itself (the pool labels workers).
    char digits[16];
    int n = 0;
    int v = id;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    char* p = label;
    std::memcpy(p, "thread-", 7);
    p += 7;
    while (n > 0) *p++ = digits[--n];
    *p = '\0';
  }
  StoreChars(label_, label);
  RegistryList()->push_back(this);
}

SpanStack::~SpanStack() {
  MutexLock lock(RegistryMutex());
  std::vector<SpanStack*>* list = RegistryList();
  for (size_t i = 0; i < list->size(); ++i) {
    if ((*list)[i] == this) {
      list->erase(list->begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
}

SpanStack& SpanStack::Local() {
  thread_local SpanStack stack;
  return stack;
}

void SpanStack::Push(const char* name) {
  if (!recording()) return;
  const int32_t depth = depth_.load(std::memory_order_relaxed);
  // odd: write in progress. acq_rel, not release — a release RMW does not
  // stop the relaxed payload stores *after* it from being reordered above
  // it, which would let a sampler read torn frames under an even epoch.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  if (depth < kSpanStackMaxDepth) {
    StoreChars(frames_[depth], name);
  }
  depth_.store(depth + 1, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);  // even: stable
}

void SpanStack::Pop() {
  // No recording() check: a guard that pushed must pop even if sampling
  // stopped mid-span, or the stale frame would haunt the next session.
  const int32_t depth = depth_.load(std::memory_order_relaxed);
  if (depth <= 0) return;
  // acq_rel begin-bump for the same reason as Push: the depth store below
  // must not float above the odd epoch.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  depth_.store(depth - 1, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
}

void SpanStack::SetLabel(const char* label) {
  StoreChars(label_, label);
}

SpanStack::Sample SpanStack::TakeSample() const {
  Sample sample;
  LoadChars(label_, sample.label);
  for (int attempt = 0; attempt < 4; ++attempt) {
    const uint32_t e1 = epoch_.load(std::memory_order_acquire);
    if (e1 & 1) continue;  // writer mid-mutation
    const int32_t depth = depth_.load(std::memory_order_relaxed);
    const int32_t copy =
        depth < kSpanStackMaxDepth ? depth : kSpanStackMaxDepth;
    std::vector<std::string> frames;
    frames.reserve(static_cast<size_t>(copy > 0 ? copy : 0));
    for (int32_t d = 0; d < copy; ++d) {
      char name[kSpanFrameChars];
      LoadChars(frames_[d], name);
      frames.emplace_back(name);
    }
    // The acquire fence orders the relaxed frame loads before the epoch
    // re-read — the standard seqlock read-side recipe.
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint32_t e2 = epoch_.load(std::memory_order_relaxed);
    if (e1 == e2) {
      sample.frames = std::move(frames);
      return sample;
    }
  }
  sample.skipped = true;
  return sample;
}

std::vector<SpanStack::Sample> SpanStack::SampleAll() {
  MutexLock lock(RegistryMutex());
  std::vector<Sample> samples;
  const std::vector<SpanStack*>* list = RegistryList();
  samples.reserve(list->size());
  for (const SpanStack* stack : *list) {
    samples.push_back(stack->TakeSample());
  }
  return samples;
}

}  // namespace tane
