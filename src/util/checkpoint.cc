#include "util/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>

#include "util/crc32.h"
#include "util/failpoint.h"

namespace tane {
namespace {

std::string ErrnoText(const char* op, const std::string& path) {
  return std::string(op) + " '" + path + "': " + std::strerror(errno);
}

// Directory component of `path`, or "." when it has none. The directory is
// fsynced after the rename so the new directory entry is durable.
std::string DirName(const std::string& path) {
  const std::string::size_type slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncDirectory(const std::string& dir) {
  TANE_INJECT_FAILPOINT("checkpoint.dir_fsync");
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IoError(ErrnoText("open directory", dir));
  Status status = Status::OK();
  if (::fsync(fd) != 0) {
    status = Status::IoError(ErrnoText("fsync directory", dir));
  }
  ::close(fd);
  return status;
}

// Closes the owned descriptor on scope exit; `release()` transfers
// ownership for the explicit, error-checked close on the success path.
struct FdCloser {
  int fd = -1;
  int release() {
    const int out = fd;
    fd = -1;
    return out;
  }
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

// Creates the temp file, writes `contents`, fsyncs, and closes it. Failure
// (injected or real) may leave the temp file behind; the caller unlinks.
Status WriteAndSyncTemp(const std::string& tmp_path,
                        std::string_view contents) {
  TANE_INJECT_FAILPOINT("checkpoint.write_temp");
  FdCloser file;
  file.fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (file.fd < 0) return Status::IoError(ErrnoText("open", tmp_path));
  const char* data = contents.data();
  size_t remaining = contents.size();
  while (remaining > 0) {
    const ssize_t written = ::write(file.fd, data, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoText("write", tmp_path));
    }
    data += written;
    remaining -= static_cast<size_t>(written);
  }
  TANE_INJECT_FAILPOINT("checkpoint.fsync");
  if (::fsync(file.fd) != 0) {
    return Status::IoError(ErrnoText("fsync", tmp_path));
  }
  if (::close(file.release()) != 0) {
    return Status::IoError(ErrnoText("close", tmp_path));
  }
  return Status::OK();
}

Status RenameIntoPlace(const std::string& tmp_path, const std::string& path) {
  TANE_INJECT_FAILPOINT("checkpoint.rename");
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IoError(ErrnoText("rename", tmp_path));
  }
  return Status::OK();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  Status status = WriteAndSyncTemp(tmp_path, contents);
  if (status.ok()) status = RenameIntoPlace(tmp_path, path);
  if (!status.ok()) {
    // Best-effort: on an aborted publish nothing must remain but the old
    // file. (After a successful rename the temp name no longer exists, so
    // a directory-fsync failure below does not unlink the published file.)
    ::unlink(tmp_path.c_str());
    return status;
  }
  return FsyncDirectory(DirName(path));
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  TANE_INJECT_FAILPOINT("checkpoint.read");
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(ErrnoText("open", path));
    return Status::IoError(ErrnoText("open", path));
  }
  std::string contents;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::IoError(ErrnoText("read", path));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    contents.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return contents;
}

namespace {

// Little-endian POD append/read, matching the partition serializer's layout
// helpers so snapshot frames and disk-store records stay byte-compatible
// across the codebase.
template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view* in, T* value) {
  if (in->size() < sizeof(T)) return false;
  std::memcpy(value, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}

}  // namespace

void AppendFrame(std::string* out, uint32_t tag, std::string_view payload) {
  AppendPod(out, tag);
  AppendPod(out, static_cast<uint64_t>(payload.size()));
  AppendPod(out, Crc32(payload));
  out->append(payload.data(), payload.size());
}

Status ReadFrame(std::string_view* in, uint32_t* tag,
                 std::string_view* payload) {
  uint64_t size = 0;
  uint32_t crc = 0;
  if (!ReadPod(in, tag) || !ReadPod(in, &size) || !ReadPod(in, &crc)) {
    return Status::FailedPrecondition("snapshot corrupt: truncated frame header");
  }
  if (in->size() < size) {
    return Status::FailedPrecondition("snapshot corrupt: truncated frame payload");
  }
  *payload = in->substr(0, size);
  in->remove_prefix(size);
  if (Crc32(*payload) != crc) {
    return Status::FailedPrecondition("snapshot corrupt: frame checksum mismatch");
  }
  return Status::OK();
}

}  // namespace tane
