#ifndef TANE_UTIL_STRINGS_H_
#define TANE_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tane {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string_view> SplitString(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Parses a signed 64-bit decimal integer; rejects trailing garbage.
bool ParseInt64(std::string_view text, int64_t* value);

/// Parses a double; rejects trailing garbage.
bool ParseDouble(std::string_view text, double* value);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats `seconds` the way the paper's tables do: two or three significant
/// digits, e.g. "0.76", "68.2", "1451", "17521".
std::string FormatSeconds(double seconds);

/// Formats a count with no decoration, e.g. "2730".
std::string FormatCount(int64_t n);

}  // namespace tane

#endif  // TANE_UTIL_STRINGS_H_
