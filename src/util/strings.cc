#include "util/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tane {

std::vector<std::string_view> SplitString(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool ParseInt64(std::string_view text, int64_t* value) {
  text = StripWhitespace(text);
  if (text.empty() || text.size() > 20) return false;
  char buf[32];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + text.size()) return false;
  *value = parsed;
  return true;
}

bool ParseDouble(std::string_view text, double* value) {
  text = StripWhitespace(text);
  if (text.empty() || text.size() > 48) return false;
  char buf[64];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(buf, &end);
  if (errno != 0 || end != buf + text.size()) return false;
  *value = parsed;
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.4f", seconds);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  } else if (seconds < 100.0) {
    std::snprintf(buf, sizeof(buf), "%.2f", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", seconds);
  }
  return buf;
}

std::string FormatCount(int64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
  return buf;
}

}  // namespace tane
