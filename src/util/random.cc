#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace tane {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (uint64_t& word : state_) {
    s = SplitMix64(s);
    word = s;
  }
  // xoshiro must not be seeded with the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  TANE_DCHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection of the biased low range.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  TANE_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits give a uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  TANE_DCHECK(n > 0);
  if (n == 1) return 0;
  if (s <= 0.0) return NextBounded(n);
  // Cumulative-scan inversion. O(n) per draw; acceptable at generator scale.
  double norm = 0.0;
  for (uint64_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(double(k), s);
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(double(k), s);
    if (u <= acc) return k - 1;
  }
  return n - 1;
}

}  // namespace tane
