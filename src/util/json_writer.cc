#include "util/json_writer.h"

#include <cstdio>

#include "util/checkpoint.h"

namespace tane {

void JsonWriter::Prefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_ += ',';
    has_elements_.back() = true;
  }
}

void JsonWriter::Escaped(std::string_view text) {
  out_ += '"';
  for (char c : text) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out_ += buffer;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::BeginObject() {
  Prefix();
  out_ += '{';
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_elements_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Prefix();
  out_ += '[';
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_elements_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Prefix();
  Escaped(key);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  Prefix();
  Escaped(value);
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  Prefix();
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t value) {
  Prefix();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  Prefix();
  out_ += value ? "true" : "false";
  return *this;
}

bool JsonWriter::WriteFile(const std::string& path) const {
  // Temp-file + fsync + rename: a crash mid-write leaves either the old
  // artifact or the new one, never a truncated JSON file that a downstream
  // parser chokes on.
  const Status status = AtomicWriteFile(path, out_ + '\n');
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace tane
