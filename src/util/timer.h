#ifndef TANE_UTIL_TIMER_H_
#define TANE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace tane {

/// Wall-clock stopwatch. The paper reports "real times elapsed" rather than
/// CPU times, so the bench harness measures wall clock as well.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tane

#endif  // TANE_UTIL_TIMER_H_
