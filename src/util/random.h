#ifndef TANE_UTIL_RANDOM_H_
#define TANE_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tane {

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via splitmix64.
/// Used everywhere randomness is needed so that datasets, tests, and benches
/// are reproducible from a single integer seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// nearly-divisionless rejection method, so results are unbiased.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Zipf-distributed integer in [0, n) with exponent `s` (s >= 0; s == 0 is
  /// uniform). Linear-time setup per call set via a cached CDF would be
  /// overkill here; this uses the rejection-inversion-free cumulative scan,
  /// which is fine for the dataset-generation sizes used in this repo.
  uint64_t NextZipf(uint64_t n, double s);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// The splitmix64 mixing function; exposed for hashing utilities.
uint64_t SplitMix64(uint64_t x);

}  // namespace tane

#endif  // TANE_UTIL_RANDOM_H_
