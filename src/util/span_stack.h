#ifndef TANE_UTIL_SPAN_STACK_H_
#define TANE_UTIL_SPAN_STACK_H_

// tane-atomics: seqlock(epoch_)

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tane {

/// Fixed geometry of one sampled span frame. 48 bytes of name storage per
/// frame (stored as whole atomic words so a concurrent sampler never
/// performs a non-atomic read of bytes a worker is writing).
inline constexpr int kSpanStackMaxDepth = 16;
inline constexpr int kSpanFrameChars = 48;
inline constexpr int kSpanFrameWords = kSpanFrameChars / 8;

/// A per-thread stack of human-readable span names that a *different*
/// thread (the sampling profiler) can read at any moment without stopping
/// the owner. This is the "unwind" the profiler uses instead of frame
/// pointers: SpanGuard pushes phase names on the coordinator, the thread
/// pool pushes a collective label on each worker drain, and the sampler
/// copies whatever path is live at each tick.
///
/// Concurrency: a seqlock. The owning thread is the only writer; Push/Pop
/// bump `epoch_` to an odd value, mutate, then bump back to even. The
/// sampler copies frames between two even, equal epoch reads and retries
/// (bounded) otherwise. All shared words are std::atomic with relaxed
/// element access ordered by the epoch's acquire/release pair, so the
/// protocol is clean under ThreadSanitizer; a sample that loses every
/// retry is simply skipped — never torn, never blocking the owner.
///
/// Push/Pop cost when sampling is inactive: one relaxed global load (the
/// enabled flag) — cheap enough to leave in per-window worker paths.
class SpanStack {
 public:
  /// The calling thread's stack, registered on first use and unregistered
  /// (thread-safely vs. a live sampler) at thread exit.
  static SpanStack& Local();

  /// Globally enables frame recording. Off (the default) makes Push/Pop a
  /// single relaxed load; the profiler flips it on for the sampled window.
  static void SetRecording(bool enabled);
  static bool recording() {
    return recording_flag().load(std::memory_order_relaxed);
  }

  /// Pushes `name` (truncated to kSpanFrameChars-1). No-op when recording
  /// is off or the stack is full (depth still tracked so Pop balances).
  void Push(const char* name);
  /// Pops one frame. Callers invoke Pop only if their matching Push ran
  /// with recording on (Pop itself does not re-check, so a session ending
  /// mid-span cannot strand a stale frame).
  void Pop();

  /// Sets this thread's track label in folded output ("main", "worker-3").
  void SetLabel(const char* label);

  /// A process-wide label naming the parallel work currently fanned out
  /// ("window level-3"); the thread pool pushes it as each worker's drain
  /// frame so samples on workers attribute to the phase that spawned them.
  /// Coordinator-set between parallel regions; readers may see a torn
  /// label for one sample during the (rare) store — cosmetic only.
  static void SetCollectiveLabel(const char* label);
  /// Copies the collective label (NUL-terminated) into `out`.
  static void GetCollectiveLabel(char out[kSpanFrameChars]);

  /// One sampled stack: the owner's label plus its live frame path,
  /// oldest-first. `skipped` is true when the seqlock retries ran out.
  struct Sample {
    char label[kSpanFrameChars];
    std::vector<std::string> frames;
    bool skipped = false;
  };

  /// Copies one consistent snapshot of this stack (sampler-side).
  Sample TakeSample() const;

  /// Samples every live registered stack. Thread registration and exit
  /// serialize against this through the registry mutex, so a stack is
  /// never sampled after its owner destroyed it.
  static std::vector<Sample> SampleAll();

  SpanStack(const SpanStack&) = delete;
  SpanStack& operator=(const SpanStack&) = delete;

 private:
  SpanStack();
  ~SpanStack();

  static std::atomic<bool>& recording_flag();

  std::atomic<uint32_t> epoch_{0};
  std::atomic<int32_t> depth_{0};  ///< logical depth (may exceed MaxDepth)
  std::atomic<uint64_t> frames_[kSpanStackMaxDepth][kSpanFrameWords] = {};
  std::atomic<uint64_t> label_[kSpanFrameWords] = {};
};

}  // namespace tane

#endif  // TANE_UTIL_SPAN_STACK_H_
