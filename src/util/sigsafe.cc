#include "util/sigsafe.h"

#include <cstdio>
#include <cstring>

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace tane {

void SigsafeWriter::Append(const char* s) {
  if (s == nullptr) return;
  Append(s, std::strlen(s));
}

void SigsafeWriter::Append(const char* s, size_t len) {
  for (size_t i = 0; i < len; ++i) AppendChar(s[i]);
}

void SigsafeWriter::AppendChar(char c) {
  if (size_ >= capacity_) {
    truncated_ = true;
    return;
  }
  data_[size_++] = c;
}

void SigsafeWriter::AppendInt(int64_t value) {
  // Render into a local buffer backwards; 20 digits + sign covers int64.
  char digits[24];
  size_t n = 0;
  uint64_t magnitude;
  if (value < 0) {
    AppendChar('-');
    // Two's complement: -INT64_MIN overflows int64 but not uint64.
    magnitude = ~static_cast<uint64_t>(value) + 1;
  } else {
    magnitude = static_cast<uint64_t>(value);
  }
  do {
    digits[n++] = static_cast<char>('0' + magnitude % 10);
    magnitude /= 10;
  } while (magnitude != 0);
  while (n > 0) AppendChar(digits[--n]);
}

void SigsafeWriter::AppendJsonEscaped(const char* s, size_t max_len) {
  if (s == nullptr) return;
  for (size_t i = 0; i < max_len && s[i] != '\0'; ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c == '"' || c == '\\') {
      AppendChar('\\');
      AppendChar(static_cast<char>(c));
    } else if (c < 0x20) {
      // \u00XX for control bytes; rare enough that unrolled hex is fine.
      // constexpr array: constant-initialized, so no magic-static guard
      // lock on the signal path (a `const char*` static would take one).
      static constexpr char hex[] = "0123456789abcdef";
      Append("\\u00", 4);
      AppendChar(hex[c >> 4]);
      AppendChar(hex[c & 0xf]);
    } else {
      AppendChar(static_cast<char>(c));
    }
  }
}

bool SigsafeWriteFile(const char* path, const char* tmp_path,
                      const char* data, size_t size) {
#if defined(_WIN32)
  (void)path;
  (void)tmp_path;
  (void)data;
  (void)size;
  return false;
#else
  const int fd = open(tmp_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  size_t written = 0;
  while (written < size) {
    const ssize_t n = write(fd, data + written, size - written);
    if (n < 0) {
      close(fd);
      return false;
    }
    written += static_cast<size_t>(n);
  }
  // fsync before rename: the dump must never appear at its final name with
  // torn contents — readers (the chaos harness) treat presence as validity.
  if (fsync(fd) != 0) {
    close(fd);
    return false;
  }
  if (close(fd) != 0) return false;
  return rename(tmp_path, path) == 0;
#endif
}

}  // namespace tane
