#ifndef TANE_UTIL_JSON_WRITER_H_
#define TANE_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tane {

/// A minimal streaming JSON writer, shared by the run-report / trace
/// exporters in src/obs and the BENCH_*.json artifacts the bench harnesses
/// emit. Call order mirrors the document structure; the writer inserts
/// commas and escapes strings. No validation beyond comma handling —
/// callers are trusted to produce balanced containers.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value) {
    return Value(std::string_view(value));
  }
  JsonWriter& Value(double value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(int value) { return Value(static_cast<int64_t>(value)); }
  JsonWriter& Value(bool value);

  const std::string& str() const { return out_; }

  /// Writes str() plus a trailing newline to `path`. Returns false (after
  /// printing to stderr) when the file cannot be written.
  bool WriteFile(const std::string& path) const;

 private:
  // Emits the separating comma (unless this value completes a key) and
  // marks the enclosing container non-empty.
  void Prefix();
  void Escaped(std::string_view text);

  std::string out_;
  std::vector<bool> has_elements_;
  bool pending_key_ = false;
};

}  // namespace tane

#endif  // TANE_UTIL_JSON_WRITER_H_
