#include "util/timer.h"

// WallTimer is header-only; this translation unit exists so the build file
// can list every module uniformly and future non-inline helpers have a home.
