#include "util/retry.h"

#include <algorithm>
#include <thread>

#include "util/random.h"

namespace tane {

bool IsTransientIoError(const Status& status) {
  return status.code() == StatusCode::kIoError;
}

Status RetryWithBackoff(const RetryPolicy& policy,
                        const std::function<Status()>& fn) {
  const auto retriable =
      policy.retriable ? policy.retriable : IsTransientIoError;
  const auto sleep =
      policy.sleep
          ? policy.sleep
          : [](std::chrono::milliseconds d) { std::this_thread::sleep_for(d); };
  const int attempts = std::max(1, policy.max_attempts);

  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  Rng rng(policy.jitter_seed);

  std::chrono::milliseconds backoff = policy.initial_backoff;
  Status status = Status::OK();
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    status = fn();
    if (status.ok() || !retriable(status) || attempt == attempts) break;
    // Cap before growing: once the cap is reached the stored backoff stops
    // changing, so an unbounded attempt budget can never overflow int64
    // (the old grow-then-cap order kept multiplying the uncapped value).
    backoff = std::min(backoff, policy.max_backoff);
    if (backoff.count() > 0) {
      std::chrono::milliseconds delay = backoff;
      if (jitter > 0) {
        // backoff * (1 - jitter + U[0, jitter]); full jitter draws from
        // (0, backoff], never a zero sleep.
        const double scale = 1.0 - jitter + jitter * rng.NextDouble();
        const auto jittered = static_cast<int64_t>(
            static_cast<double>(backoff.count()) * scale);
        delay = std::chrono::milliseconds(std::max<int64_t>(1, jittered));
      }
      sleep(delay);
    }
    if (backoff < policy.max_backoff) {
      backoff = std::chrono::milliseconds(static_cast<int64_t>(
          static_cast<double>(backoff.count()) * policy.multiplier));
    }
  }
  return status;
}

}  // namespace tane
