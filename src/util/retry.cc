#include "util/retry.h"

#include <algorithm>
#include <thread>

namespace tane {

bool IsTransientIoError(const Status& status) {
  return status.code() == StatusCode::kIoError;
}

Status RetryWithBackoff(const RetryPolicy& policy,
                        const std::function<Status()>& fn) {
  const auto retriable =
      policy.retriable ? policy.retriable : IsTransientIoError;
  const auto sleep =
      policy.sleep
          ? policy.sleep
          : [](std::chrono::milliseconds d) { std::this_thread::sleep_for(d); };
  const int attempts = std::max(1, policy.max_attempts);

  std::chrono::milliseconds backoff = policy.initial_backoff;
  Status status = Status::OK();
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    status = fn();
    if (status.ok() || !retriable(status) || attempt == attempts) break;
    if (backoff.count() > 0) sleep(std::min(backoff, policy.max_backoff));
    backoff = std::chrono::milliseconds(static_cast<int64_t>(
        static_cast<double>(backoff.count()) * policy.multiplier));
  }
  return status;
}

}  // namespace tane
