#ifndef TANE_UTIL_THREAD_POOL_H_
#define TANE_UTIL_THREAD_POOL_H_

// tane-atomics: chase-lev(top_,bottom_,ring_,slots)

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tane {

/// Timing of one ParallelFor call: the coordinator's wall-clock time and the
/// summed busy time of every participating worker. busy / wall estimates the
/// parallel speedup actually achieved by the call. A worker's busy time runs
/// from its first drained index to its last — the idle tail spent waiting
/// for stragglers after a worker's final task is excluded, so busy stays a
/// measure of useful work rather than of spin-waiting.
struct ParallelForStats {
  double wall_seconds = 0.0;
  double busy_seconds = 0.0;
};

/// One worker's participation in one ParallelFor call: when it drained, for
/// how long, and how many indices it processed. Reported through the slice
/// hook so a tracer can draw per-worker utilization under each phase span.
struct ParallelForSlice {
  int worker = 0;
  std::chrono::steady_clock::time_point start;
  std::chrono::steady_clock::time_point end;
  int64_t items = 0;
};

/// A lock-free work-stealing deque of int64_t items (Chase–Lev). The owner
/// pushes and pops at the bottom (LIFO); any other thread steals from the
/// top (FIFO), so items pushed first are stolen first. Used by ThreadPool
/// to schedule ParallelFor indices: the coordinator seeds each worker's
/// deque in descending index order, which makes the owner's pops ascend —
/// the property the task-graph executor's commit-window deadlock-freedom
/// argument relies on (see DESIGN.md §7).
///
/// Memory-model note: this is the sequentially-consistent-operations
/// variant of Chase–Lev. The classic formulation uses standalone
/// atomic_thread_fence calls, which ThreadSanitizer does not model and
/// would flag as false races; every synchronizing access here is a seq_cst
/// operation on an std::atomic object instead, which TSan verifies
/// natively. Ring buffers retired by growth are kept alive until Reset()
/// or destruction so a concurrent thief never reads freed memory.
///
/// Thread-safety contract: Push/Pop/Reset are owner-only (at most one
/// thread at a time, externally synchronized across ownership transfers);
/// Steal may run concurrently from any number of threads. Reset requires
/// quiescence (no concurrent Steal).
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(int64_t capacity_hint = 64);
  ~WorkStealingDeque();

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Empties the deque and frees retired ring buffers. Requires quiescence:
  /// no concurrent Push/Pop/Steal. Grows the live ring up front when
  /// `capacity_hint` exceeds it, so a seeding pass of known size never
  /// triggers a mid-run growth.
  void Reset(int64_t capacity_hint = 0);

  /// Owner-only: pushes an item at the bottom. Grows the ring when full.
  void Push(int64_t item);

  /// Owner-only: pops the most recently pushed item. Returns false when the
  /// deque is empty or the last item was lost to a concurrent Steal.
  bool Pop(int64_t* item);

  /// Any thread: steals the oldest item. Returns false when the deque looks
  /// empty or the steal lost a race (callers should treat false as "try
  /// elsewhere", not "permanently empty").
  bool Steal(int64_t* item);

  /// Approximate size; exact only under quiescence.
  int64_t size() const {
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    const int64_t t = top_.load(std::memory_order_seq_cst);
    return b > t ? b - t : 0;
  }

 private:
  struct Ring {
    explicit Ring(int64_t capacity);
    int64_t capacity;
    int64_t mask;
    std::unique_ptr<std::atomic<int64_t>[]> slots;
  };

  // Allocates a ring of at least double the capacity, copies the live
  // window [top, bottom), publishes it, and retires the old ring.
  Ring* Grow(Ring* ring, int64_t top, int64_t bottom);

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Ring*> ring_;
  // Rings replaced by growth; freed only at Reset/destruction (owner-only).
  std::vector<std::unique_ptr<Ring>> retired_;
};

/// A fixed-size pool of worker threads for data-parallel loops. Built for
/// TANE's level execution: ParallelFor seeds one work-stealing deque per
/// worker with the indices congruent to that worker mod num_threads (pushed
/// in descending order, so each owner pops its own indices in ascending
/// order), and a worker whose own deque runs dry steals from its peers.
/// Compared to the previous shared-counter sharding this keeps hot indices
/// in per-worker deques (no contended fetch_add per index) while still
/// balancing uneven per-index costs through stealing.
///
/// `num_threads` counts the calling thread: a pool of size N spawns N-1
/// background workers and the ParallelFor caller participates as worker 0.
/// With num_threads == 1 no threads are ever created and ParallelFor
/// degenerates to a plain serial loop — the zero-overhead default.
///
/// The pool itself imposes no ordering on `fn` invocations; callers that
/// need deterministic output must write results into per-index slots and
/// merge them in index order afterwards (see core/tane.cc, which commits
/// task results through an index-ordered frontier).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Invokes fn(worker, index) exactly once for every index in [0, count),
  /// sharded across the pool, and blocks until all invocations return. The
  /// worker argument is in [0, num_threads) and is stable for the duration
  /// of one invocation — use it to select per-worker scratch state. Worker
  /// w drains its own indices (w, w+T, w+2T, …) in ascending order before
  /// stealing from peers. `fn` must not throw and must not call ParallelFor
  /// reentrantly. Cooperative cancellation is the callback's job: a
  /// cancelled fn should return immediately, it cannot be interrupted.
  ParallelForStats ParallelFor(int64_t count,
                               const std::function<void(int, int64_t)>& fn)
      TANE_EXCLUDES(mu_);

  /// Installs a callback invoked once per participating worker per
  /// ParallelFor call (workers that drained zero indices are skipped). The
  /// hook runs on the worker's own thread, concurrently with its peers, so
  /// it must be thread-safe and cheap. Set/clear only while no ParallelFor
  /// is in flight. Empty function disables.
  void set_slice_hook(std::function<void(const ParallelForSlice&)> hook) {
    slice_hook_ = std::move(hook);
  }

 private:
  void WorkerLoop(int worker) TANE_EXCLUDES(mu_);
  // Drains indices for this job — own deque first, then steal sweeps over
  // peers — until every index of the job has completed, invoking `fn`;
  // returns this participant's busy seconds (first drained index to last).
  // The job is passed by argument (captured from the guarded members under
  // mu_) so the drain loop itself touches no lock-protected state.
  double Drain(int worker, const std::function<void(int, int64_t)>& fn);

  const int num_threads_;
  std::vector<std::thread> workers_;
  // One deque per worker. Seeded by the coordinator before the epoch is
  // published (the mu_ handshake orders seeding before any worker drains),
  // then owner-popped / peer-stolen lock-free during the job.
  std::vector<std::unique_ptr<WorkStealingDeque>> deques_;
  // Set/cleared only while no ParallelFor is in flight (see setter docs),
  // so the pool reads it without synchronization.
  std::function<void(const ParallelForSlice&)> slice_hook_;

  Mutex mu_;
  CondVar work_cv_;   // signals workers: a new job epoch
  CondVar done_cv_;   // signals the caller: workers drained
  const std::function<void(int, int64_t)>* fn_ TANE_GUARDED_BY(mu_) =
      nullptr;  // current job
  // Indices of the current job not yet completed; workers keep sweeping
  // until this hits zero, which is the job's only termination condition.
  std::atomic<int64_t> remaining_{0};
  uint64_t epoch_ TANE_GUARDED_BY(mu_) =
      0;  // bumped per job so workers see exactly one wake
  int running_ TANE_GUARDED_BY(mu_) =
      0;  // background workers still draining this job
  double busy_seconds_ TANE_GUARDED_BY(mu_) =
      0.0;  // accumulated by background workers
  bool shutdown_ TANE_GUARDED_BY(mu_) = false;
};

}  // namespace tane

#endif  // TANE_UTIL_THREAD_POOL_H_
