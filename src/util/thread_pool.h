#ifndef TANE_UTIL_THREAD_POOL_H_
#define TANE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tane {

/// Timing of one ParallelFor call: the coordinator's wall-clock time and the
/// summed busy time of every participating worker. busy / wall estimates the
/// parallel speedup actually achieved by the call.
struct ParallelForStats {
  double wall_seconds = 0.0;
  double busy_seconds = 0.0;
};

/// One worker's participation in one ParallelFor call: when it drained, for
/// how long, and how many indices it processed. Reported through the slice
/// hook so a tracer can draw per-worker utilization under each phase span.
struct ParallelForSlice {
  int worker = 0;
  std::chrono::steady_clock::time_point start;
  std::chrono::steady_clock::time_point end;
  int64_t items = 0;
};

/// A fixed-size pool of worker threads for data-parallel loops. Built for
/// TANE's level execution: every node of a lattice level is independent, so
/// ParallelFor shards the node indices across workers with dynamic
/// (work-stealing-by-counter) scheduling.
///
/// `num_threads` counts the calling thread: a pool of size N spawns N-1
/// background workers and the ParallelFor caller participates as worker 0.
/// With num_threads == 1 no threads are ever created and ParallelFor
/// degenerates to a plain serial loop — the zero-overhead default.
///
/// The pool itself imposes no ordering on `fn` invocations; callers that
/// need deterministic output must write results into per-index slots and
/// merge them in index order afterwards (see core/tane.cc).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Invokes fn(worker, index) exactly once for every index in [0, count),
  /// sharded across the pool, and blocks until all invocations return. The
  /// worker argument is in [0, num_threads) and is stable for the duration
  /// of one invocation — use it to select per-worker scratch state. `fn`
  /// must not throw and must not call ParallelFor reentrantly. Cooperative
  /// cancellation is the callback's job: a cancelled fn should return
  /// immediately, it cannot be interrupted.
  ParallelForStats ParallelFor(int64_t count,
                               const std::function<void(int, int64_t)>& fn)
      TANE_EXCLUDES(mu_);

  /// Installs a callback invoked once per participating worker per
  /// ParallelFor call (workers that drained zero indices are skipped). The
  /// hook runs on the worker's own thread, concurrently with its peers, so
  /// it must be thread-safe and cheap. Set/clear only while no ParallelFor
  /// is in flight. Empty function disables.
  void set_slice_hook(std::function<void(const ParallelForSlice&)> hook) {
    slice_hook_ = std::move(hook);
  }

 private:
  void WorkerLoop(int worker) TANE_EXCLUDES(mu_);
  // Drains indices from next_ until `count` is exhausted, invoking `fn`;
  // returns this participant's busy seconds. The job is passed by argument
  // (captured from the guarded members under mu_) so the drain loop itself
  // touches no lock-protected state.
  double Drain(int worker, const std::function<void(int, int64_t)>& fn,
               int64_t count);

  const int num_threads_;
  std::vector<std::thread> workers_;
  // Set/cleared only while no ParallelFor is in flight (see setter docs),
  // so the pool reads it without synchronization.
  std::function<void(const ParallelForSlice&)> slice_hook_;

  Mutex mu_;
  CondVar work_cv_;   // signals workers: a new job epoch
  CondVar done_cv_;   // signals the caller: workers drained
  const std::function<void(int, int64_t)>* fn_ TANE_GUARDED_BY(mu_) =
      nullptr;  // current job
  int64_t count_ TANE_GUARDED_BY(mu_) = 0;
  std::atomic<int64_t> next_{0};
  uint64_t epoch_ TANE_GUARDED_BY(mu_) =
      0;  // bumped per job so workers see exactly one wake
  int running_ TANE_GUARDED_BY(mu_) =
      0;  // background workers still draining this job
  double busy_seconds_ TANE_GUARDED_BY(mu_) =
      0.0;  // accumulated by background workers
  bool shutdown_ TANE_GUARDED_BY(mu_) = false;
};

}  // namespace tane

#endif  // TANE_UTIL_THREAD_POOL_H_
