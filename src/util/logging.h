#ifndef TANE_UTIL_LOGGING_H_
#define TANE_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace tane {
namespace internal_logging {

enum class LogSeverity { kInfo, kWarning, kError, kFatal };

// Accumulates one log line and emits it (to stderr) on destruction.
// LogSeverity::kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Sets the minimum severity that is actually written. Defaults to kWarning
/// so library users are not spammed; benches/tests can lower it.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity GetMinLogSeverity();

/// Parses "info" / "warning" / "error" / "fatal" (any case; "warn" also
/// accepted) into `*severity`. Returns false on anything else.
bool ParseLogSeverity(std::string_view name, LogSeverity* severity);

/// Lowercase name for a severity ("info", "warning", ...).
const char* LogSeverityName(LogSeverity severity);

/// Applies the TANE_LOG_LEVEL environment variable, if set and valid, to
/// the minimum severity. Returns true when the variable took effect —
/// callers treat that like an explicit user choice (the CLI's --log-level
/// flag still wins over the environment).
bool InitLogSeverityFromEnv();

/// Installs a callback invoked after a kFatal message is written and
/// before the process aborts — the flight recorder's TANE_CHECK dump
/// hook. The hook must not log fatally itself. nullptr uninstalls.
void SetFatalHook(void (*hook)());

}  // namespace internal_logging
}  // namespace tane

#define TANE_LOG(severity)                                               \
  ::tane::internal_logging::LogMessage(                                  \
      ::tane::internal_logging::LogSeverity::k##severity, __FILE__, __LINE__) \
      .stream()

// Always-on invariant check; aborts with a message when violated. Used for
// programmer errors that must never occur in a correct build.
#define TANE_CHECK(condition)                                         \
  while (!(condition))                                                \
  ::tane::internal_logging::LogMessage(                               \
      ::tane::internal_logging::LogSeverity::kFatal, __FILE__, __LINE__) \
          .stream()                                                   \
      << "Check failed: " #condition " "

#ifdef NDEBUG
#define TANE_DCHECK(condition) \
  while (false) TANE_CHECK(condition)
#else
#define TANE_DCHECK(condition) TANE_CHECK(condition)
#endif

#endif  // TANE_UTIL_LOGGING_H_
