#ifndef TANE_UTIL_MUTEX_H_
#define TANE_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace tane {

/// Annotated wrappers over the std synchronization primitives. libstdc++'s
/// std::mutex is not a Clang thread-safety "capability", so TANE_GUARDED_BY
/// on members locked through it would not type-check; these wrappers carry
/// the capability annotations and delegate to the std types with zero
/// overhead. Library code uses these exclusively (enforced by
/// tools/tane_lint.py) so the `analysis` preset sees every lock.
class TANE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TANE_ACQUIRE() { mu_.lock(); }
  void Unlock() TANE_RELEASE() { mu_.unlock(); }
  bool TryLock() TANE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader-writer capability wrapping std::shared_mutex. Writers use
/// Lock/Unlock, readers ReaderLock/ReaderUnlock; TANE_GUARDED_BY members
/// then demand the exclusive lock for writes and at least the shared lock
/// for reads.
class TANE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() TANE_ACQUIRE() { mu_.lock(); }
  void Unlock() TANE_RELEASE() { mu_.unlock(); }
  void ReaderLock() TANE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() TANE_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex (std::lock_guard with annotations).
class TANE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TANE_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() TANE_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive lock on a SharedMutex.
class TANE_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) TANE_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() TANE_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class TANE_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) TANE_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() TANE_RELEASE_GENERIC() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable paired with tane::Mutex. Waits are annotated
/// TANE_REQUIRES(mu): the analysis checks the caller holds the mutex, and
/// callers re-test their predicate in a `while` loop around Wait/WaitUntil
/// (spurious wakeups are allowed, as with std::condition_variable).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks until notified (or spuriously), and
  /// reacquires `*mu` before returning.
  void Wait(Mutex* mu) TANE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the mutex
  }

  /// Like Wait, but also returns once `deadline` passes. Returns true when
  /// the wait timed out, false when it was notified (or woke spuriously).
  bool WaitUntil(Mutex* mu, std::chrono::steady_clock::time_point deadline)
      TANE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tane

#endif  // TANE_UTIL_MUTEX_H_
