#ifndef TANE_UTIL_CHECKPOINT_H_
#define TANE_UTIL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace tane {

/// Crash-safe file primitives shared by the checkpoint subsystem and every
/// artifact writer (--report, --trace, bench --json). The durability
/// contract is the classic temp-file protocol:
///
///   1. write the full contents to `<path>.tmp.<pid>` in the target
///      directory (same filesystem, so the rename below is atomic),
///   2. fsync the temp file, so its bytes are durable before it becomes
///      visible under the final name,
///   3. rename(2) it over `path` — atomic on POSIX, so readers see either
///      the complete old file or the complete new file, never a torn mix,
///   4. fsync the containing directory, so the rename itself is durable.
///
/// A crash (including SIGKILL) at any point leaves either the previous
/// file intact or the new file complete; at worst a stale `.tmp.` file
/// remains, which writers ignore and the next successful write of the same
/// path removes. Each step carries a FailPoint ("checkpoint.write_temp",
/// "checkpoint.fsync", "checkpoint.rename", "checkpoint.dir_fsync") so the
/// chaos harness can kill or fault a real process at every transition.

/// Atomically replaces `path` with `contents` using the protocol above.
[[nodiscard]] Status AtomicWriteFile(const std::string& path,
                                     std::string_view contents);

/// Reads the whole file into a string ("checkpoint.read" failpoint).
[[nodiscard]] StatusOr<std::string> ReadFileToString(const std::string& path);

/// CRC32-framed container format for versioned snapshot files. A file is a
/// fixed header followed by tagged frames; every frame carries the CRC of
/// its payload, validated before the payload is interpreted, so truncation
/// or bit rot is detected instead of deserialized. This mirrors the
/// DiskPartitionStore segment record layout ([crc32][payload]) with an
/// explicit tag and length so readers can skip frames they do not know.
///
/// Frame layout (little-endian, like the partition serializer):
///   uint32 tag | uint64 payload_size | uint32 crc32(payload) | payload
void AppendFrame(std::string* out, uint32_t tag, std::string_view payload);

/// Reads one frame off the front of `in`, advancing it. Returns
/// kFailedPrecondition ("snapshot corrupt: ...") on truncation or checksum
/// mismatch — deliberately not kIoError, which retry layers treat as
/// transient.
[[nodiscard]] Status ReadFrame(std::string_view* in, uint32_t* tag,
                               std::string_view* payload);

}  // namespace tane

#endif  // TANE_UTIL_CHECKPOINT_H_
