#ifndef TANE_UTIL_CRC32_H_
#define TANE_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace tane {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`. Pass the return
/// value of a previous call as `seed` to checksum data incrementally.
/// Used by DiskPartitionStore to detect torn or corrupted segment records
/// before they are deserialized.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace tane

#endif  // TANE_UTIL_CRC32_H_
