#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"
#include "util/mutex.h"
#include "util/timer.h"

namespace tane {

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (int worker = 1; worker < num_threads_; ++worker) {
    workers_.emplace_back([this, worker] { WorkerLoop(worker); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

double ThreadPool::Drain(int worker,
                         const std::function<void(int, int64_t)>& fn,
                         int64_t count) {
  const auto start = std::chrono::steady_clock::now();
  int64_t items = 0;
  for (int64_t index = next_.fetch_add(1, std::memory_order_relaxed);
       index < count;
       index = next_.fetch_add(1, std::memory_order_relaxed)) {
    fn(worker, index);
    ++items;
  }
  const auto end = std::chrono::steady_clock::now();
  if (slice_hook_ && items > 0) {
    slice_hook_(ParallelForSlice{worker, start, end, items});
  }
  return std::chrono::duration<double>(end - start).count();
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(int, int64_t)>* fn = nullptr;
    int64_t count = 0;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && epoch_ == seen_epoch) work_cv_.Wait(&mu_);
      if (shutdown_) return;
      seen_epoch = epoch_;
      // Capture the job under the lock; Drain then runs lock-free. The
      // pointees stay valid because ParallelFor cannot return (and so the
      // job cannot be torn down) until running_ drops to zero below.
      fn = fn_;
      count = count_;
    }
    const double busy = Drain(worker, *fn, count);
    {
      MutexLock lock(&mu_);
      busy_seconds_ += busy;
      if (--running_ == 0) done_cv_.NotifyOne();
    }
  }
}

ParallelForStats ThreadPool::ParallelFor(
    int64_t count, const std::function<void(int, int64_t)>& fn) {
  ParallelForStats stats;
  if (count <= 0) return stats;
  WallTimer wall;

  if (num_threads_ == 1) {
    // Serial fast path: no locks, no atomics visible to the caller.
    const auto start = std::chrono::steady_clock::now();
    for (int64_t index = 0; index < count; ++index) fn(0, index);
    const auto end = std::chrono::steady_clock::now();
    if (slice_hook_) slice_hook_(ParallelForSlice{0, start, end, count});
    stats.wall_seconds = std::chrono::duration<double>(end - start).count();
    stats.busy_seconds = stats.wall_seconds;
    return stats;
  }

  {
    MutexLock lock(&mu_);
    // Invariant: ParallelFor is not reentrant from worker bodies.
    // tane-lint: allow(tane-check)
    TANE_CHECK(running_ == 0) << "reentrant ParallelFor";
    fn_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    busy_seconds_ = 0.0;
    running_ = num_threads_ - 1;
    ++epoch_;
  }
  work_cv_.NotifyAll();

  // The caller participates as worker 0, draining its own arguments.
  const double own_busy = Drain(0, fn, count);

  MutexLock lock(&mu_);
  while (running_ != 0) done_cv_.Wait(&mu_);
  fn_ = nullptr;
  stats.wall_seconds = wall.ElapsedSeconds();
  stats.busy_seconds = busy_seconds_ + own_busy;
  return stats;
}

}  // namespace tane
