#include "util/thread_pool.h"

// tane-atomics: chase-lev(top_,bottom_,ring_,slots)
// The deque runs the fully seq_cst Chase-Lev variant on purpose (see the
// class comment): TSan models seq_cst atomics natively, so the whole
// protocol is machine-checkable. Quiescent paths relax with waivers.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>

#include "util/logging.h"
#include "util/mutex.h"
#include "util/span_stack.h"
#include "util/timer.h"

namespace tane {
namespace {

int64_t RoundUpPow2(int64_t value) {
  int64_t result = 1;
  while (result < value) result <<= 1;
  return result;
}

}  // namespace

WorkStealingDeque::Ring::Ring(int64_t cap)
    : capacity(cap),
      mask(cap - 1),
      slots(std::make_unique<std::atomic<int64_t>[]>(
          static_cast<size_t>(cap))) {}

WorkStealingDeque::WorkStealingDeque(int64_t capacity_hint) {
  // The live ring is owned by ring_ (an atomic, so it cannot hold a
  // unique_ptr); freed by Reset/Grow-retirement/destructor. Relaxed is
  // fine pre-publication: no other thread can see the deque yet.
  // tane-lint: allow(naked-new) tane-analyzer: allow(atomics-contract)
  ring_.store(new Ring(RoundUpPow2(std::max<int64_t>(2, capacity_hint))),
              std::memory_order_relaxed);
}

WorkStealingDeque::~WorkStealingDeque() {
  // Destruction is quiescent by contract: the pool joined its workers.
  // tane-analyzer: allow(atomics-contract)
  delete ring_.load(std::memory_order_relaxed);
}

void WorkStealingDeque::Reset(int64_t capacity_hint) {
  // Quiescent by contract: no concurrent Push/Pop/Steal, so plain stores
  // and retired-ring reclamation are safe here.
  retired_.clear();
  // tane-analyzer: allow(atomics-contract)
  Ring* ring = ring_.load(std::memory_order_relaxed);
  if (capacity_hint > ring->capacity) {
    delete ring;
    // Ownership transfers to ring_ (see constructor note).
    // tane-lint: allow(naked-new) tane-analyzer: allow(atomics-contract)
    ring_.store(new Ring(RoundUpPow2(capacity_hint)),
                std::memory_order_relaxed);
  }
  top_.store(0, std::memory_order_seq_cst);
  bottom_.store(0, std::memory_order_seq_cst);
}

WorkStealingDeque::Ring* WorkStealingDeque::Grow(Ring* ring, int64_t top,
                                                 int64_t bottom) {
  // Published into ring_; the replaced ring moves to retired_ below.
  // tane-lint: allow(naked-new)
  Ring* bigger = new Ring(ring->capacity * 2);
  for (int64_t i = top; i < bottom; ++i) {
    bigger->slots[i & bigger->mask].store(
        ring->slots[i & ring->mask].load(std::memory_order_seq_cst),
        std::memory_order_seq_cst);
  }
  ring_.store(bigger, std::memory_order_seq_cst);
  // The old ring may still be read by an in-flight Steal that loaded ring_
  // before the publish above; keep it alive until the next quiesce point.
  retired_.emplace_back(ring);
  return bigger;
}

void WorkStealingDeque::Push(int64_t item) {
  const int64_t bottom = bottom_.load(std::memory_order_seq_cst);
  const int64_t top = top_.load(std::memory_order_seq_cst);
  Ring* ring = ring_.load(std::memory_order_seq_cst);
  if (bottom - top >= ring->capacity) ring = Grow(ring, top, bottom);
  ring->slots[bottom & ring->mask].store(item, std::memory_order_seq_cst);
  bottom_.store(bottom + 1, std::memory_order_seq_cst);
}

bool WorkStealingDeque::Pop(int64_t* item) {
  const int64_t bottom = bottom_.load(std::memory_order_seq_cst) - 1;
  Ring* ring = ring_.load(std::memory_order_seq_cst);
  bottom_.store(bottom, std::memory_order_seq_cst);
  int64_t top = top_.load(std::memory_order_seq_cst);
  if (top > bottom) {
    // Empty: restore bottom.
    bottom_.store(bottom + 1, std::memory_order_seq_cst);
    return false;
  }
  *item = ring->slots[bottom & ring->mask].load(std::memory_order_seq_cst);
  if (top == bottom) {
    // Last item: race the thieves for it via top.
    const bool won = top_.compare_exchange_strong(
        top, top + 1, std::memory_order_seq_cst, std::memory_order_seq_cst);
    bottom_.store(bottom + 1, std::memory_order_seq_cst);
    return won;
  }
  return true;
}

bool WorkStealingDeque::Steal(int64_t* item) {
  int64_t top = top_.load(std::memory_order_seq_cst);
  const int64_t bottom = bottom_.load(std::memory_order_seq_cst);
  if (top >= bottom) return false;
  // Read the slot before claiming it: the claim (CAS on top) only succeeds
  // if no other thief or the owner's last-item Pop got there first, and the
  // owner never overwrites slot `top & mask` while `top` is live (a Push
  // that would wrap onto it grows the ring instead).
  Ring* ring = ring_.load(std::memory_order_seq_cst);
  const int64_t value =
      ring->slots[top & ring->mask].load(std::memory_order_seq_cst);
  if (!top_.compare_exchange_strong(top, top + 1, std::memory_order_seq_cst,
                                    std::memory_order_seq_cst)) {
    return false;
  }
  *item = value;
  return true;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  deques_.reserve(num_threads_);
  for (int worker = 0; worker < num_threads_; ++worker) {
    deques_.emplace_back(std::make_unique<WorkStealingDeque>());
  }
  workers_.reserve(num_threads_ - 1);
  for (int worker = 1; worker < num_threads_; ++worker) {
    workers_.emplace_back([this, worker] { WorkerLoop(worker); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

double ThreadPool::Drain(int worker,
                         const std::function<void(int, int64_t)>& fn) {
  // While the sampling profiler runs, this drain appears on the worker's
  // span stack under the collective label the coordinator set for the
  // region ("window level-3"), so worker samples attribute to the phase
  // that fanned them out. One push per drain — nothing per index.
  const bool profiled = SpanStack::recording();
  if (profiled) {
    SpanStack& stack = SpanStack::Local();
    if (worker != 0) {
      char label[kSpanFrameChars];
      std::snprintf(label, sizeof(label), "worker-%d", worker);
      stack.SetLabel(label);
    }
    char frame[kSpanFrameChars];
    SpanStack::GetCollectiveLabel(frame);
    stack.Push(frame[0] != '\0' ? frame : "parallel-for");
  }
  std::chrono::steady_clock::time_point start;
  std::chrono::steady_clock::time_point last_end;
  int64_t items = 0;
  WorkStealingDeque& own = *deques_[worker];
  int64_t index = 0;
  while (remaining_.load(std::memory_order_seq_cst) > 0) {
    bool found = own.Pop(&index);
    if (!found) {
      // Own deque dry: sweep the peers, starting just past this worker so
      // thieves fan out instead of all hammering deque 0.
      for (int step = 1; !found && step < num_threads_; ++step) {
        found = deques_[(worker + step) % num_threads_]->Steal(&index);
      }
    }
    if (!found) {
      // Nothing visible anywhere, but indices are still in flight on other
      // workers; yield and re-sweep until remaining_ hits zero.
      std::this_thread::yield();
      continue;
    }
    const auto begin = std::chrono::steady_clock::now();
    if (items == 0) start = begin;
    fn(worker, index);
    last_end = std::chrono::steady_clock::now();
    ++items;
    remaining_.fetch_sub(1, std::memory_order_seq_cst);
  }
  if (profiled) SpanStack::Local().Pop();
  if (items == 0) return 0.0;
  if (slice_hook_) {
    slice_hook_(ParallelForSlice{worker, start, last_end, items});
  }
  return std::chrono::duration<double>(last_end - start).count();
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(int, int64_t)>* fn = nullptr;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && epoch_ == seen_epoch) work_cv_.Wait(&mu_);
      if (shutdown_) return;
      seen_epoch = epoch_;
      // Capture the job under the lock; Drain then runs lock-free. The
      // pointee stays valid because ParallelFor cannot return (and so the
      // job cannot be torn down) until running_ drops to zero below.
      fn = fn_;
    }
    const double busy = Drain(worker, *fn);
    {
      MutexLock lock(&mu_);
      busy_seconds_ += busy;
      if (--running_ == 0) done_cv_.NotifyOne();
    }
  }
}

ParallelForStats ThreadPool::ParallelFor(
    int64_t count, const std::function<void(int, int64_t)>& fn) {
  ParallelForStats stats;
  if (count <= 0) return stats;
  WallTimer wall;

  if (num_threads_ == 1) {
    // Serial fast path: no locks, no atomics visible to the caller.
    const auto start = std::chrono::steady_clock::now();
    for (int64_t index = 0; index < count; ++index) fn(0, index);
    const auto end = std::chrono::steady_clock::now();
    if (slice_hook_) slice_hook_(ParallelForSlice{0, start, end, count});
    stats.wall_seconds = std::chrono::duration<double>(end - start).count();
    stats.busy_seconds = stats.wall_seconds;
    return stats;
  }

  // Seed the deques before publishing the epoch: worker w owns the indices
  // congruent to w mod num_threads, pushed in descending order so the
  // owner's LIFO pops drain them ascending (thieves take from the other
  // end, i.e. the highest of a victim's remaining indices). The mu_
  // handshake below orders these pushes before any worker's first Pop.
  const int64_t per_worker = (count + num_threads_ - 1) / num_threads_;
  for (int worker = 0; worker < num_threads_; ++worker) {
    WorkStealingDeque& deque = *deques_[worker];
    deque.Reset(per_worker);
    int64_t index = worker + (per_worker - 1) * num_threads_;
    while (index >= count) index -= num_threads_;
    for (; index >= 0; index -= num_threads_) deque.Push(index);
  }
  remaining_.store(count, std::memory_order_seq_cst);

  {
    MutexLock lock(&mu_);
    // Invariant: ParallelFor is not reentrant from worker bodies.
    // tane-lint: allow(tane-check)
    TANE_CHECK(running_ == 0) << "reentrant ParallelFor";
    fn_ = &fn;
    busy_seconds_ = 0.0;
    running_ = num_threads_ - 1;
    ++epoch_;
  }
  work_cv_.NotifyAll();

  // The caller participates as worker 0, draining its own deque first.
  const double own_busy = Drain(0, fn);

  MutexLock lock(&mu_);
  while (running_ != 0) done_cv_.Wait(&mu_);
  fn_ = nullptr;
  stats.wall_seconds = wall.ElapsedSeconds();
  stats.busy_seconds = busy_seconds_ + own_busy;
  return stats;
}

}  // namespace tane
