#ifndef TANE_UTIL_FAILPOINT_H_
#define TANE_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace tane {
namespace failpoint {

/// Fault-injection hooks for hardening tests. Code under test names its
/// fallible sites with TANE_INJECT_FAILPOINT("site"); tests arm a site with
/// a FailSpec to make the k-th execution return an error. The macro expands
/// to nothing unless the build defines TANE_ENABLE_FAILPOINTS (the
/// TANE_FAILPOINTS CMake option), so release builds pay zero cost; even when
/// compiled in, an unarmed check is one relaxed atomic load.
///
///   failpoint::Arm("disk_store.put", {.skip = 2, .fail_times = 1});
///   ... third Put write fails with kIoError, later ones succeed ...
///   failpoint::ClearAll();

/// True when the hooks are compiled into this build.
#if defined(TANE_ENABLE_FAILPOINTS)
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

struct FailSpec {
  /// Executions of the site that pass before injection starts.
  int64_t skip = 0;
  /// Number of consecutive executions that fail once injection starts;
  /// executions after that pass again (a transient fault). Use a large
  /// value to model a persistent fault.
  int64_t fail_times = 1;
  /// Status returned by the failing executions.
  StatusCode code = StatusCode::kIoError;
  std::string message = "injected fault";
  /// When set, the failing execution raises SIGKILL instead of returning a
  /// Status — the process dies exactly as an OOM-kill or eviction would,
  /// with no destructors or atexit handlers. Used by the checkpoint chaos
  /// harness to prove crash-safety of on-disk state.
  bool kill = false;
};

/// Arms (or re-arms) the named site. Thread-safe.
void Arm(const std::string& name, FailSpec spec);

/// Disarms one site; unknown names are a no-op.
void Disarm(const std::string& name);

/// Disarms every site and resets all hit counters.
void ClearAll();

/// Number of times the named site has been evaluated since it was armed.
[[nodiscard]] int64_t HitCount(const std::string& name);

/// Evaluates the named site: OK when unarmed or outside the failure window,
/// else the armed error. Called via TANE_INJECT_FAILPOINT, not directly.
/// (Status is itself [[nodiscard]]; the attribute here keeps the contract
/// visible at the declaration.)
[[nodiscard]] Status Check(const char* name);

/// Arms a kill-mode failpoint from the TANE_FAILPOINT_KILL environment
/// variable, format "<site>" or "<site>:<skip>" (skip = executions that pass
/// before the SIGKILL). A no-op when the variable is unset or failpoints are
/// compiled out. Called once from the CLI entry so a child process spawned
/// by the chaos harness can be killed at a precise site without any IPC.
void ArmKillFromEnv();

}  // namespace failpoint
}  // namespace tane

#if defined(TANE_ENABLE_FAILPOINTS)
#define TANE_INJECT_FAILPOINT(name)                           \
  do {                                                        \
    ::tane::Status tane_failpoint_status =                    \
        ::tane::failpoint::Check(name);                       \
    if (!tane_failpoint_status.ok()) return tane_failpoint_status; \
  } while (0)
#else
#define TANE_INJECT_FAILPOINT(name) \
  do {                              \
  } while (0)
#endif

#endif  // TANE_UTIL_FAILPOINT_H_
