#ifndef TANE_UTIL_SIGSAFE_H_
#define TANE_UTIL_SIGSAFE_H_

#include <cstddef>
#include <cstdint>

namespace tane {

/// Async-signal-safe string builder over a caller-owned fixed buffer.
/// Every operation is append-only, allocation-free, and lock-free, so the
/// flight recorder can render its dump from a fatal-signal handler. On
/// overflow the buffer stops growing and truncated() turns true — callers
/// reserve enough headroom to close their JSON structure regardless.
class SigsafeWriter {
 public:
  SigsafeWriter(char* data, size_t capacity)
      : data_(data), capacity_(capacity) {}

  void Append(const char* s);
  void Append(const char* s, size_t len);
  void AppendChar(char c);
  /// Decimal, with '-' for negatives (INT64_MIN handled).
  void AppendInt(int64_t value);
  /// Appends `s` (NUL-terminated, at most `max_len` chars) with JSON string
  /// escaping for quotes, backslashes, and control bytes.
  void AppendJsonEscaped(const char* s, size_t max_len);

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool truncated() const { return truncated_; }

  /// Rewinds to an earlier size() and clears the truncation flag, so a
  /// renderer can drop a half-written trailing element and still close its
  /// structure validly. `mark` must come from a previous size() call.
  void ResetTo(size_t mark) {
    if (mark <= size_) {
      size_ = mark;
      truncated_ = false;
    }
  }

 private:
  char* data_;
  size_t capacity_;
  size_t size_ = 0;
  bool truncated_ = false;
};

/// Durably writes `data` to `path` using only async-signal-safe syscalls:
/// open(tmp_path, O_CREAT|O_TRUNC) → write → fsync → rename(tmp, path).
/// `tmp_path` must be a sibling of `path` (same directory) and both must
/// be precomputed by the caller — no allocation happens here. Returns
/// false on any syscall failure. This is the signal-context sibling of
/// AtomicWriteFile (util/checkpoint.h), minus failpoints and directory
/// fsync (rename durability is best-effort when the process is dying).
bool SigsafeWriteFile(const char* path, const char* tmp_path,
                      const char* data, size_t size);

}  // namespace tane

#endif  // TANE_UTIL_SIGSAFE_H_
