#include "util/failpoint.h"

#include <csignal>
#include <cstdlib>

#include <atomic>
#include <unordered_map>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tane {
namespace failpoint {
namespace {

struct ArmedPoint {
  FailSpec spec;
  int64_t hits = 0;
};

// Fast path: sites are only consulted while at least one point is armed.
// A lone gate counter; its explicit orders are the whole contract.
// tane-lint: allow(naked-atomic)
std::atomic<int64_t> g_armed_count{0};

// The armed-point table and its lock, bundled so the annotations can name
// the guard relationship on the shared state.
struct PointRegistry {
  Mutex mu;
  std::unordered_map<std::string, ArmedPoint> points TANE_GUARDED_BY(mu);
};

PointRegistry& Registry() {
  // Leaked deliberately: failpoints may be consulted from detached code
  // running during static destruction. tane-lint: allow(naked-new)
  static PointRegistry* registry = new PointRegistry;
  return *registry;
}

}  // namespace

void Arm(const std::string& name, FailSpec spec) {
  PointRegistry& registry = Registry();
  MutexLock lock(&registry.mu);
  auto [it, inserted] = registry.points.insert_or_assign(
      name, ArmedPoint{std::move(spec), /*hits=*/0});
  (void)it;
  if (inserted) g_armed_count.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const std::string& name) {
  PointRegistry& registry = Registry();
  MutexLock lock(&registry.mu);
  if (registry.points.erase(name) > 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ClearAll() {
  PointRegistry& registry = Registry();
  MutexLock lock(&registry.mu);
  g_armed_count.fetch_sub(static_cast<int64_t>(registry.points.size()),
                          std::memory_order_relaxed);
  registry.points.clear();
}

int64_t HitCount(const std::string& name) {
  PointRegistry& registry = Registry();
  MutexLock lock(&registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.hits;
}

Status Check(const char* name) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return Status::OK();
  PointRegistry& registry = Registry();
  MutexLock lock(&registry.mu);
  auto it = registry.points.find(name);
  if (it == registry.points.end()) return Status::OK();
  ArmedPoint& point = it->second;
  const int64_t hit = point.hits++;
  if (hit < point.spec.skip ||
      hit >= point.spec.skip + point.spec.fail_times) {
    return Status::OK();
  }
  if (point.spec.kill) {
    // Die the way a crash does: no unwinding, no flushes. raise(SIGKILL)
    // cannot be caught, so nothing after this line runs.
    (void)std::raise(SIGKILL);
  }
  return Status(point.spec.code,
                point.spec.message + " (failpoint " + name + ")");
}

void ArmKillFromEnv() {
  if (!kCompiledIn) return;
  const char* value = std::getenv("TANE_FAILPOINT_KILL");
  if (value == nullptr || *value == '\0') return;
  std::string site(value);
  int64_t skip = 0;
  const std::string::size_type colon = site.find_last_of(':');
  if (colon != std::string::npos) {
    skip = std::strtoll(site.c_str() + colon + 1, nullptr, 10);
    site.resize(colon);
  }
  FailSpec spec;
  spec.skip = skip;
  spec.fail_times = 1;
  spec.kill = true;
  Arm(site, std::move(spec));
}

}  // namespace failpoint
}  // namespace tane
