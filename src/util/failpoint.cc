#include "util/failpoint.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

namespace tane {
namespace failpoint {
namespace {

struct ArmedPoint {
  FailSpec spec;
  int64_t hits = 0;
};

// Fast path: sites are only consulted while at least one point is armed.
std::atomic<int64_t> g_armed_count{0};

std::mutex& Mutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

std::unordered_map<std::string, ArmedPoint>& Registry() {
  static auto* registry = new std::unordered_map<std::string, ArmedPoint>;
  return *registry;
}

}  // namespace

void Arm(const std::string& name, FailSpec spec) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto [it, inserted] = Registry().insert_or_assign(
      name, ArmedPoint{std::move(spec), /*hits=*/0});
  (void)it;
  if (inserted) g_armed_count.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mutex());
  if (Registry().erase(name) > 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ClearAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  g_armed_count.fetch_sub(static_cast<int64_t>(Registry().size()),
                          std::memory_order_relaxed);
  Registry().clear();
}

int64_t HitCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.hits;
}

Status Check(const char* name) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return Status::OK();
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(name);
  if (it == Registry().end()) return Status::OK();
  ArmedPoint& point = it->second;
  const int64_t hit = point.hits++;
  if (hit < point.spec.skip ||
      hit >= point.spec.skip + point.spec.fail_times) {
    return Status::OK();
  }
  return Status(point.spec.code,
                point.spec.message + " (failpoint " + name + ")");
}

}  // namespace failpoint
}  // namespace tane
