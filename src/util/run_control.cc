#include "util/run_control.h"

namespace tane {

std::string_view StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool RunController::ShouldStop() {
  if (stop_reason_ != StopReason::kNone) return true;
  if (cancel_requested()) {
    stop_reason_ = StopReason::kCancelled;
    return true;
  }
  if (has_deadline_ && Clock::now() >= deadline_) {
    stop_reason_ = StopReason::kDeadline;
    return true;
  }
  return false;
}

}  // namespace tane
