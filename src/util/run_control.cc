#include "util/run_control.h"

namespace tane {

std::string_view StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool RunController::ShouldStop() {
  if (stop_reason_.load(std::memory_order_acquire) != StopReason::kNone) {
    return true;
  }
  StopReason reason = StopReason::kNone;
  if (cancel_requested()) {
    reason = StopReason::kCancelled;
  } else if (has_deadline_ && Clock::now() >= deadline_) {
    reason = StopReason::kDeadline;
  }
  if (reason == StopReason::kNone) return false;
  // Latch the first reason observed; concurrent pollers race benignly and
  // the loser keeps reporting the winner's reason.
  StopReason expected = StopReason::kNone;
  stop_reason_.compare_exchange_strong(expected, reason,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
  return true;
}

}  // namespace tane
