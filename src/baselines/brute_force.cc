#include "baselines/brute_force.h"

#include <algorithm>
#include <vector>

#include "core/fd.h"
#include "lattice/attribute_set.h"
#include "partition/error.h"
#include "partition/partition_builder.h"
#include "util/timer.h"

namespace tane {
namespace {

// Enumerates all attribute subsets of {0..n-1} of the given size, ascending
// by mask, via the standard next-bit-permutation trick.
std::vector<AttributeSet> SubsetsOfSize(int n, int size) {
  std::vector<AttributeSet> subsets;
  if (size == 0) {
    subsets.push_back(AttributeSet());
    return subsets;
  }
  if (size > n) return subsets;
  uint64_t mask = (uint64_t{1} << size) - 1;
  const uint64_t limit = n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n);
  while (mask < limit) {
    subsets.push_back(AttributeSet::FromMask(mask));
    const uint64_t lowest = mask & (~mask + 1);
    const uint64_t ripple = mask + lowest;
    const uint64_t ones = mask ^ ripple;
    mask = ripple | ((ones >> 2) / lowest);
    if (ripple >= limit) break;
  }
  return subsets;
}

}  // namespace

StatusOr<DiscoveryResult> BruteForce::Discover(const Relation& relation,
                                               double epsilon,
                                               int max_lhs_size,
                                               ErrorMeasure measure) {
  if (epsilon < 0.0 || epsilon > 1.0) {
    return Status::InvalidArgument("epsilon must be in [0, 1]");
  }
  WallTimer timer;
  const int n = relation.num_columns();
  const int64_t rows = relation.num_rows();
  G3Calculator g3(rows);
  // Validity is decided on raw violation counts against the exact ⌊ε·scale⌋
  // integer threshold, matching core/tane.cc; the old double comparison
  // with 1e-9 slack could disagree with TANE on borderline dependencies.
  // `scale` is |r| for g3/g2 (violating rows) and |r|² for g1 (ordered
  // pairs); the reported error is count/scale.
  const double scale =
      measure == ErrorMeasure::kG1
          ? static_cast<double>(rows) * static_cast<double>(rows)
          : static_cast<double>(rows);
  const int64_t max_violations = IntegerThreshold(epsilon, scale);
  const auto count_violations = [&](const StrippedPartition& lhs,
                                    const StrippedPartition& joint)
      -> StatusOr<int64_t> {
    switch (measure) {
      case ErrorMeasure::kG2:
        return g3.ViolatingRowCount(lhs, joint);
      case ErrorMeasure::kG1:
        return g3.ViolatingPairCount(lhs, joint);
      case ErrorMeasure::kG3:
        break;
    }
    return g3.RemovalCount(lhs, joint);
  };

  DiscoveryResult result;
  // minimal_lhs[A] collects the LHSs already emitted for RHS A; a candidate
  // is minimal iff it has no emitted proper subset.
  std::vector<std::vector<AttributeSet>> minimal_lhs(n);

  const int max_size = std::min(max_lhs_size, n - 1);
  for (int size = 0; size <= max_size; ++size) {
    for (AttributeSet lhs : SubsetsOfSize(n, size)) {
      const StrippedPartition lhs_partition =
          PartitionBuilder::ForAttributeSet(relation, lhs);
      for (int rhs = 0; rhs < n; ++rhs) {
        if (lhs.Contains(rhs)) continue;
        bool minimal = true;
        for (AttributeSet smaller : minimal_lhs[rhs]) {
          if (smaller.IsProperSubsetOf(lhs) || smaller == lhs) {
            minimal = false;
            break;
          }
        }
        if (!minimal) continue;

        const StrippedPartition joint =
            PartitionBuilder::ForAttributeSet(relation, lhs.With(rhs));
        TANE_ASSIGN_OR_RETURN(const int64_t violations,
                              count_violations(lhs_partition, joint));
        if (violations <= max_violations) {
          const double error =
              rows > 0 ? static_cast<double>(violations) / scale : 0.0;
          result.fds.push_back({lhs, rhs, error});
          minimal_lhs[rhs].push_back(lhs);
        }
      }
    }
  }

  // Keys: minimal sets on which no two rows agree.
  std::vector<AttributeSet> keys;
  if (rows > 0) {
    for (int size = 1; size <= n; ++size) {
      for (AttributeSet candidate : SubsetsOfSize(n, size)) {
        bool has_key_subset = false;
        for (AttributeSet key : keys) {
          if (key.IsProperSubsetOf(candidate)) {
            has_key_subset = true;
            break;
          }
        }
        if (has_key_subset) continue;
        if (PartitionBuilder::ForAttributeSet(relation, candidate)
                .IsSuperkey()) {
          keys.push_back(candidate);
        }
      }
    }
  }
  result.keys = std::move(keys);
  std::sort(result.keys.begin(), result.keys.end());

  CanonicalizeFds(&result.fds);
  result.stats.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace tane
