#include "baselines/fdep.h"

#include <algorithm>
#include <unordered_set>

#include "core/fd.h"
#include "lattice/set_trie.h"
#include "util/timer.h"

namespace tane {
namespace {

struct MaskHash {
  size_t operator()(uint64_t mask) const {
    return AttributeSetHash()(AttributeSet::FromMask(mask));
  }
};

}  // namespace

std::vector<AttributeSet> Fdep::ComputeAgreeSets(const Relation& relation) {
  const int64_t rows = relation.num_rows();
  const int n = relation.num_columns();

  // Row-major copy of the codes so the inner pair loop is cache-friendly.
  std::vector<int32_t> matrix(static_cast<size_t>(rows) * n);
  for (int c = 0; c < n; ++c) {
    const std::vector<int32_t>& codes = relation.column(c).codes;
    for (int64_t row = 0; row < rows; ++row) {
      matrix[row * n + c] = codes[row];
    }
  }

  std::unordered_set<uint64_t, MaskHash> distinct;
  for (int64_t t = 0; t < rows; ++t) {
    const int32_t* row_t = &matrix[t * n];
    for (int64_t u = t + 1; u < rows; ++u) {
      const int32_t* row_u = &matrix[u * n];
      uint64_t agree = 0;
      for (int c = 0; c < n; ++c) {
        agree |= static_cast<uint64_t>(row_t[c] == row_u[c]) << c;
      }
      distinct.insert(agree);
    }
  }

  std::vector<AttributeSet> agree_sets;
  agree_sets.reserve(distinct.size());
  for (uint64_t mask : distinct) {
    agree_sets.push_back(AttributeSet::FromMask(mask));
  }
  std::sort(agree_sets.begin(), agree_sets.end());
  return agree_sets;
}

std::vector<AttributeSet> Fdep::MaximalSets(std::vector<AttributeSet> sets) {
  // Sort by descending size: once the larger sets are in the trie, a
  // candidate is non-maximal exactly when a stored superset exists.
  std::sort(sets.begin(), sets.end(), [](AttributeSet a, AttributeSet b) {
    if (a.size() != b.size()) return a.size() > b.size();
    return a < b;
  });
  SetTrie trie;
  std::vector<AttributeSet> maximal;
  for (AttributeSet candidate : sets) {
    if (trie.ContainsSupersetOf(candidate)) continue;
    trie.Insert(candidate);
    maximal.push_back(candidate);
  }
  return maximal;
}

StatusOr<DiscoveryResult> Fdep::Discover(const Relation& relation,
                                         int max_lhs_size) {
  if (relation.num_columns() > kMaxAttributes) {
    return Status::InvalidArgument("relation has too many attributes");
  }
  WallTimer timer;
  const int n = relation.num_columns();
  DiscoveryResult result;

  const std::vector<AttributeSet> agree_sets = ComputeAgreeSets(relation);

  for (int rhs = 0; rhs < n; ++rhs) {
    // Negative cover for `rhs`: maximal agree-sets of pairs differing on it.
    std::vector<AttributeSet> violations;
    for (AttributeSet agree : agree_sets) {
      if (!agree.Contains(rhs)) violations.push_back(agree);
    }
    violations = MaximalSets(std::move(violations));

    // Positive cover induction: start from the most general dependency
    // ∅ → rhs and specialize against every maximal invalid dependency. The
    // cover lives in a set-trie (the FD-tree of the original FDEP), which
    // keeps it minimal at all times: an insertion is skipped when a subset
    // is already present, and evicts any stored supersets.
    SetTrie cover;
    cover.Insert(AttributeSet());
    for (AttributeSet violation : violations) {
      // X ⊆ V means X → rhs is refuted by this violation: specialize.
      const std::vector<AttributeSet> broken =
          cover.ExtractSubsetsOf(violation);
      const AttributeSet extension_pool =
          AttributeSet::FullSet(n).Difference(violation).Without(rhs);
      for (AttributeSet lhs : broken) {
        for (int attribute : Members(extension_pool)) {
          const AttributeSet specialized = lhs.With(attribute);
          if (cover.ContainsSubsetOf(specialized)) continue;
          for (AttributeSet superset :
               cover.ExtractSupersetsOf(specialized)) {
            (void)superset;  // subsumed by the new, more general lhs
          }
          cover.Insert(specialized);
        }
      }
    }

    for (AttributeSet lhs : cover.Enumerate()) {
      if (lhs.size() > max_lhs_size) continue;
      result.fds.push_back({lhs, rhs, 0.0});
    }
  }

  CanonicalizeFds(&result.fds);
  result.stats.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace tane
