#ifndef TANE_BASELINES_BRUTE_FORCE_H_
#define TANE_BASELINES_BRUTE_FORCE_H_

#include "core/config.h"
#include "core/result.h"
#include "relation/relation.h"
#include "util/status.h"

namespace tane {

/// Exhaustive reference miner: enumerates every candidate left-hand side in
/// ascending size order, computes its partition from scratch, and keeps the
/// minimal (approximate) dependencies. Exponential in the number of
/// attributes and O(|r|·|X|) per candidate — usable only on small schemas,
/// which is exactly its role: an independently simple oracle that the
/// property tests compare TANE and FDEP against.
class BruteForce {
 public:
  /// All minimal non-trivial dependencies with error ≤ epsilon (0 = exact)
  /// under `measure`. `max_lhs_size` mirrors TaneConfig::max_lhs_size.
  static StatusOr<DiscoveryResult> Discover(
      const Relation& relation, double epsilon = 0.0,
      int max_lhs_size = kMaxAttributes,
      ErrorMeasure measure = ErrorMeasure::kG3);
};

}  // namespace tane

#endif  // TANE_BASELINES_BRUTE_FORCE_H_
