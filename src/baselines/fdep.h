#ifndef TANE_BASELINES_FDEP_H_
#define TANE_BASELINES_FDEP_H_

#include <cstdint>
#include <vector>

#include "core/result.h"
#include "lattice/attribute_set.h"
#include "relation/relation.h"
#include "util/status.h"

namespace tane {

/// The FDEP algorithm of Savnik and Flach (KDD'93), the baseline the TANE
/// paper compares against experimentally. FDEP works bottom-up from the
/// data:
///
///  1. Negative cover: a pairwise pass over all row pairs computes the
///     distinct agree-sets ag(t,u) = {A | t[A] = u[A]}. A dependency X → A
///     is invalid iff X ⊆ V for some agree-set V of a pair differing on A.
///     This pass is Θ(|r|²·|R|) — the quadratic row scaling visible in the
///     paper's Figure 4.
///  2. Positive cover: per right-hand side A, the minimal valid left-hand
///     sides are induced by specializing a candidate cover against every
///     maximal invalid dependency (a minimal-hitting-set computation).
///
/// Like the original FDEP program, the output is the set of all minimal
/// non-trivial functional dependencies, so results are directly comparable
/// with TANE's.
class Fdep {
 public:
  /// Discovers all minimal non-trivial exact FDs. `max_lhs_size` truncates
  /// the positive cover like TANE's |X| limit.
  static StatusOr<DiscoveryResult> Discover(
      const Relation& relation, int max_lhs_size = kMaxAttributes);

  /// Exposed for unit tests: the deduplicated agree-sets of all row pairs.
  static std::vector<AttributeSet> ComputeAgreeSets(const Relation& relation);

  /// Exposed for unit tests: the maximal sets of `sets` under inclusion.
  static std::vector<AttributeSet> MaximalSets(std::vector<AttributeSet> sets);
};

}  // namespace tane

#endif  // TANE_BASELINES_FDEP_H_
