#include "relation/transforms.h"

#include <algorithm>
#include <string>

#include "util/logging.h"

namespace tane {

StatusOr<Relation> ConcatenateCopies(const Relation& relation, int copies) {
  if (copies < 1) return Status::InvalidArgument("copies must be >= 1");
  const int num_cols = relation.num_columns();
  const int64_t rows = relation.num_rows();

  std::vector<Column> columns(num_cols);
  for (int c = 0; c < num_cols; ++c) {
    const Column& src = relation.column(c);
    const int64_t card = src.cardinality();
    Column& dst = columns[c];
    dst.codes.reserve(rows * copies);
    dst.dictionary.reserve(card * copies);
    // Copy k gets the code block [k*card, (k+1)*card) and dictionary entries
    // suffixed "#k", so values from distinct copies never collide.
    for (int k = 0; k < copies; ++k) {
      const int32_t offset = static_cast<int32_t>(card) * k;
      for (int64_t row = 0; row < rows; ++row) {
        dst.codes.push_back(src.codes[row] + offset);
      }
      const std::string suffix = "#" + std::to_string(k);
      for (const std::string& value : src.dictionary) {
        dst.dictionary.push_back(value + suffix);
      }
    }
  }
  return Relation::Create(relation.schema(), std::move(columns),
                          rows * copies);
}

StatusOr<Relation> ProjectColumns(const Relation& relation,
                                  const std::vector<int>& columns) {
  std::vector<std::string> names;
  std::vector<Column> data;
  names.reserve(columns.size());
  data.reserve(columns.size());
  for (int c : columns) {
    if (c < 0 || c >= relation.num_columns()) {
      return Status::OutOfRange("column index " + std::to_string(c) +
                                " out of range");
    }
    names.push_back(relation.schema().name(c));
    data.push_back(relation.column(c));
  }
  TANE_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(names)));
  return Relation::Create(std::move(schema), std::move(data),
                          relation.num_rows());
}

namespace {

StatusOr<Relation> KeepRows(const Relation& relation,
                            const std::vector<int64_t>& rows) {
  std::vector<Column> columns(relation.num_columns());
  for (int c = 0; c < relation.num_columns(); ++c) {
    const Column& src = relation.column(c);
    Column& dst = columns[c];
    dst.dictionary = src.dictionary;
    dst.codes.reserve(rows.size());
    for (int64_t row : rows) dst.codes.push_back(src.codes[row]);
  }
  return Relation::Create(relation.schema(), std::move(columns),
                          static_cast<int64_t>(rows.size()));
}

}  // namespace

StatusOr<Relation> HeadRows(const Relation& relation, int64_t n) {
  if (n < 0) return Status::InvalidArgument("row count must be >= 0");
  const int64_t keep = std::min(n, relation.num_rows());
  std::vector<int64_t> rows(keep);
  for (int64_t i = 0; i < keep; ++i) rows[i] = i;
  return KeepRows(relation, rows);
}

StatusOr<Relation> SampleRows(const Relation& relation, int64_t n, Rng& rng) {
  if (n < 0) return Status::InvalidArgument("sample size must be >= 0");
  const int64_t total = relation.num_rows();
  const int64_t keep = std::min(n, total);
  // Floyd's algorithm would avoid materializing all ids, but at these sizes
  // a shuffle-prefix is simpler and still O(|r|).
  std::vector<int64_t> ids(total);
  for (int64_t i = 0; i < total; ++i) ids[i] = i;
  rng.Shuffle(ids);
  ids.resize(keep);
  std::sort(ids.begin(), ids.end());
  return KeepRows(relation, ids);
}

Relation CompactDictionaries(const Relation& relation) {
  std::vector<Column> columns(relation.num_columns());
  for (int c = 0; c < relation.num_columns(); ++c) {
    const Column& src = relation.column(c);
    Column& dst = columns[c];
    std::vector<int32_t> remap(src.dictionary.size(), -1);
    dst.codes.reserve(src.codes.size());
    for (int32_t code : src.codes) {
      if (remap[code] < 0) {
        remap[code] = static_cast<int32_t>(dst.dictionary.size());
        dst.dictionary.push_back(src.dictionary[code]);
      }
      dst.codes.push_back(remap[code]);
    }
  }
  StatusOr<Relation> result = Relation::Create(
      relation.schema(), std::move(columns), relation.num_rows());
  // Invariant: re-validating a relation we just built cannot fail.
  // tane-lint: allow(tane-check)
  TANE_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace tane
