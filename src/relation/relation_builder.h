#ifndef TANE_RELATION_RELATION_BUILDER_H_
#define TANE_RELATION_RELATION_BUILDER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relation/relation.h"
#include "relation/schema.h"
#include "util/status.h"

namespace tane {

/// Incrementally builds a dictionary-encoded Relation from string rows.
///
///   RelationBuilder builder(schema);
///   builder.AddRow({"1", "a", "$", "Flower"});
///   ...
///   StatusOr<Relation> rel = std::move(builder).Build();
class RelationBuilder {
 public:
  explicit RelationBuilder(Schema schema);

  /// Appends a row. The number of fields must equal the schema width.
  Status AddRow(const std::vector<std::string>& fields);
  Status AddRow(const std::vector<std::string_view>& fields);

  /// Appends a row of already-encoded codes; new codes extend the dictionary
  /// with synthesized strings "v<code>". Useful for generators that work in
  /// code space directly.
  Status AddEncodedRow(const std::vector<int32_t>& codes);

  int64_t num_rows() const { return num_rows_; }

  /// Finalizes the relation. The builder is left empty.
  StatusOr<Relation> Build() &&;

 private:
  int32_t Encode(int column, std::string_view value);

  Schema schema_;
  std::vector<Column> columns_;
  std::vector<std::unordered_map<std::string, int32_t>> dictionaries_;
  int64_t num_rows_ = 0;
};

}  // namespace tane

#endif  // TANE_RELATION_RELATION_BUILDER_H_
