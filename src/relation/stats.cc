#include "relation/stats.h"

#include <cmath>
#include <cstdio>

namespace tane {

std::vector<int> RelationStats::constant_columns() const {
  std::vector<int> out;
  for (const ColumnStats& column : columns) {
    if (column.is_constant) out.push_back(column.column);
  }
  return out;
}

std::vector<int> RelationStats::unique_columns() const {
  std::vector<int> out;
  for (const ColumnStats& column : columns) {
    if (column.is_unique) out.push_back(column.column);
  }
  return out;
}

RelationStats ComputeStats(const Relation& relation) {
  RelationStats stats;
  stats.rows = relation.num_rows();
  stats.columns.reserve(relation.num_columns());

  for (int c = 0; c < relation.num_columns(); ++c) {
    const Column& column = relation.column(c);
    ColumnStats out;
    out.column = c;
    out.name = relation.schema().name(c);

    std::vector<int64_t> counts(column.cardinality(), 0);
    for (int32_t code : column.codes) ++counts[code];

    int32_t top_code = -1;
    for (size_t code = 0; code < counts.size(); ++code) {
      if (counts[code] == 0) continue;
      ++out.distinct;
      if (counts[code] > out.top_count) {
        out.top_count = counts[code];
        top_code = static_cast<int32_t>(code);
      }
      const double p = static_cast<double>(counts[code]) /
                       static_cast<double>(stats.rows);
      out.entropy_bits -= p * std::log2(p);
    }
    if (top_code >= 0) out.top_value = column.dictionary[top_code];
    out.is_constant = stats.rows > 0 && out.distinct == 1;
    out.is_unique = out.distinct == stats.rows && stats.rows > 0;
    if (stats.rows == 0) out.entropy_bits = 0.0;
    stats.columns.push_back(std::move(out));
  }
  return stats;
}

std::string FormatStats(const RelationStats& stats) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-20s %10s %10s %8s %-16s %8s\n",
                "column", "distinct", "top-count", "entropy", "top-value",
                "flags");
  out += line;
  for (const ColumnStats& column : stats.columns) {
    std::string flags;
    if (column.is_constant) flags += "constant ";
    if (column.is_unique) flags += "unique";
    std::string top = column.top_value.substr(0, 16);
    std::snprintf(line, sizeof(line), "%-20s %10lld %10lld %8.2f %-16s %8s\n",
                  column.name.substr(0, 20).c_str(),
                  static_cast<long long>(column.distinct),
                  static_cast<long long>(column.top_count),
                  column.entropy_bits, top.c_str(), flags.c_str());
    out += line;
  }
  return out;
}

}  // namespace tane
