#ifndef TANE_RELATION_CSV_H_
#define TANE_RELATION_CSV_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "relation/relation.h"
#include "util/status.h"

namespace tane {

/// Options for CSV parsing. The defaults parse RFC-4180-style files with a
/// header row, which is how UCI-style datasets are normally distributed.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// If true, leading/trailing whitespace around unquoted fields is removed.
  bool trim_whitespace = false;
  /// Rows with the wrong number of fields fail the parse when false,
  /// otherwise they are skipped.
  bool skip_malformed_rows = false;
};

/// Parses CSV text into a Relation. Supports quoted fields with embedded
/// delimiters, escaped quotes (""), and embedded newlines, plus both \n and
/// \r\n line endings.
StatusOr<Relation> ReadCsvString(std::string_view text,
                                 const CsvOptions& options = {});

/// Reads and parses a CSV file from disk.
StatusOr<Relation> ReadCsvFile(const std::string& path,
                               const CsvOptions& options = {});

/// Serializes a relation as CSV (with header) to `out`, quoting fields that
/// need it. Round-trips through ReadCsvString.
void WriteCsv(const Relation& relation, std::ostream& out,
              char delimiter = ',');

/// Convenience: serializes to a string.
std::string WriteCsvString(const Relation& relation, char delimiter = ',');

}  // namespace tane

#endif  // TANE_RELATION_CSV_H_
