#include "relation/schema.h"

#include <unordered_set>

namespace tane {

StatusOr<Schema> Schema::Create(std::vector<std::string> column_names) {
  if (column_names.size() > static_cast<size_t>(kMaxAttributes)) {
    return Status::InvalidArgument(
        "schema has " + std::to_string(column_names.size()) +
        " columns; at most " + std::to_string(kMaxAttributes) +
        " are supported");
  }
  std::unordered_set<std::string_view> seen;
  for (const std::string& name : column_names) {
    if (name.empty()) {
      return Status::InvalidArgument("schema contains an empty column name");
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("duplicate column name: " + name);
    }
  }
  return Schema(std::move(column_names));
}

StatusOr<Schema> Schema::CreateUnnamed(int n) {
  if (n < 0) return Status::InvalidArgument("negative column count");
  std::vector<std::string> names;
  names.reserve(n);
  for (int i = 0; i < n; ++i) names.push_back("col" + std::to_string(i));
  return Create(std::move(names));
}

int Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace tane
