#include "relation/csv.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include "relation/relation_builder.h"
#include "util/strings.h"

namespace tane {
namespace {

// Pulls one CSV record (possibly spanning multiple physical lines inside
// quotes) starting at *pos. Returns false at end of input. Fields are
// appended to `fields`.
bool NextRecord(std::string_view text, size_t* pos, char delimiter,
                std::vector<std::string>* fields, Status* status) {
  fields->clear();
  if (*pos >= text.size()) return false;
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char ch = text[i];
    saw_any = true;
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(ch);
      }
      continue;
    }
    if (ch == '"') {
      in_quotes = true;
    } else if (ch == delimiter) {
      fields->push_back(std::move(field));
      field.clear();
    } else if (ch == '\n' || ch == '\r') {
      if (ch == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      ++i;
      break;
    } else {
      field.push_back(ch);
    }
  }
  if (in_quotes) {
    *status = Status::InvalidArgument("unterminated quoted field in CSV");
    return false;
  }
  if (!saw_any) return false;
  fields->push_back(std::move(field));
  *pos = i;
  return true;
}

void TrimFields(std::vector<std::string>* fields) {
  for (std::string& f : *fields) {
    std::string_view stripped = StripWhitespace(f);
    if (stripped.size() != f.size()) f = std::string(stripped);
  }
}

}  // namespace

StatusOr<Relation> ReadCsvString(std::string_view text,
                                 const CsvOptions& options) {
  size_t pos = 0;
  std::vector<std::string> fields;
  Status parse_status = Status::OK();

  // Establish the schema from the header (or the width of the first row).
  if (!NextRecord(text, &pos, options.delimiter, &fields, &parse_status)) {
    if (!parse_status.ok()) return parse_status;
    return Status::InvalidArgument("empty CSV input");
  }
  if (options.trim_whitespace) TrimFields(&fields);

  Schema schema;
  size_t first_data_pos = pos;
  if (options.has_header) {
    TANE_ASSIGN_OR_RETURN(schema, Schema::Create(fields));
  } else {
    TANE_ASSIGN_OR_RETURN(schema,
                          Schema::CreateUnnamed(static_cast<int>(fields.size())));
    first_data_pos = 0;  // re-read the first record as data
  }

  RelationBuilder builder(std::move(schema));
  pos = first_data_pos;
  if (!options.has_header) pos = 0;
  int64_t line = options.has_header ? 1 : 0;
  while (NextRecord(text, &pos, options.delimiter, &fields, &parse_status)) {
    ++line;
    if (options.trim_whitespace) TrimFields(&fields);
    Status row_status = builder.AddRow(fields);
    if (!row_status.ok()) {
      if (options.skip_malformed_rows) continue;
      return Status::InvalidArgument("CSV record " + std::to_string(line) +
                                     ": " + row_status.message());
    }
  }
  if (!parse_status.ok()) return parse_status;
  return std::move(builder).Build();
}

StatusOr<Relation> ReadCsvFile(const std::string& path,
                               const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open file: " + path);
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) return Status::IoError("error reading file: " + path);
  return ReadCsvString(contents.str(), options);
}

namespace {

bool NeedsQuoting(const std::string& field, char delimiter) {
  for (char ch : field) {
    if (ch == delimiter || ch == '"' || ch == '\n' || ch == '\r') return true;
  }
  return false;
}

void WriteField(const std::string& field, char delimiter, std::ostream& out) {
  if (!NeedsQuoting(field, delimiter)) {
    out << field;
    return;
  }
  out << '"';
  for (char ch : field) {
    if (ch == '"') out << '"';
    out << ch;
  }
  out << '"';
}

}  // namespace

void WriteCsv(const Relation& relation, std::ostream& out, char delimiter) {
  const Schema& schema = relation.schema();
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out << delimiter;
    WriteField(schema.name(c), delimiter, out);
  }
  out << '\n';
  for (int64_t row = 0; row < relation.num_rows(); ++row) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out << delimiter;
      WriteField(relation.value(row, c), delimiter, out);
    }
    out << '\n';
  }
}

std::string WriteCsvString(const Relation& relation, char delimiter) {
  std::ostringstream out;
  WriteCsv(relation, out, delimiter);
  return out.str();
}

}  // namespace tane
