#ifndef TANE_RELATION_RELATION_H_
#define TANE_RELATION_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relation/schema.h"
#include "util/status.h"

namespace tane {

/// A single dictionary-encoded column: `codes[row]` indexes into
/// `dictionary`, which maps each code to its original string value. Codes
/// are dense in [0, dictionary.size()).
struct Column {
  std::vector<int32_t> codes;
  std::vector<std::string> dictionary;

  /// Number of distinct values in this column.
  int64_t cardinality() const {
    return static_cast<int64_t>(dictionary.size());
  }
};

/// An immutable, columnar, dictionary-encoded relation instance.
///
/// All dependency-discovery algorithms in this library operate on integer
/// codes only; the dictionaries exist to relate results back to the source
/// data. Equal codes within a column correspond to equal source values, so
/// the partition structure of the encoded relation is identical to that of
/// the original relation — which is the only property TANE depends on.
class Relation {
 public:
  Relation() = default;

  /// Assembles a relation from already-encoded columns. All columns must
  /// have `num_rows` codes in range; use RelationBuilder for the common
  /// string-input path.
  static StatusOr<Relation> Create(Schema schema, std::vector<Column> columns,
                                   int64_t num_rows);

  const Schema& schema() const { return schema_; }
  int num_columns() const { return schema_.num_columns(); }
  int64_t num_rows() const { return num_rows_; }

  const Column& column(int c) const { return columns_[c]; }

  /// The encoded value of `row` in column `c`.
  int32_t code(int64_t row, int c) const { return columns_[c].codes[row]; }

  /// The source string of `row` in column `c`.
  const std::string& value(int64_t row, int c) const {
    return columns_[c].dictionary[columns_[c].codes[row]];
  }

  /// True when rows `a` and `b` agree on column `c`.
  bool Agrees(int64_t a, int64_t b, int c) const {
    return code(a, c) == code(b, c);
  }

  /// Rough resident size, used by memory-budget accounting in benches.
  int64_t EstimatedBytes() const;

 private:
  Relation(Schema schema, std::vector<Column> columns, int64_t num_rows)
      : schema_(std::move(schema)),
        columns_(std::move(columns)),
        num_rows_(num_rows) {}

  Schema schema_;
  std::vector<Column> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace tane

#endif  // TANE_RELATION_RELATION_H_
