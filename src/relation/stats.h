#ifndef TANE_RELATION_STATS_H_
#define TANE_RELATION_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relation/relation.h"

namespace tane {

/// Summary statistics of one column, computed in a single pass over its
/// codes. The profiling front door of the library: the numbers a user looks
/// at before (and after) running dependency discovery.
struct ColumnStats {
  int column = 0;
  std::string name;
  /// Distinct values actually occurring (≤ dictionary size).
  int64_t distinct = 0;
  /// True when every row carries the same value (a ∅ → A dependency).
  bool is_constant = false;
  /// True when no value repeats (the column is a unary key).
  bool is_unique = false;
  /// The most frequent value and its count.
  std::string top_value;
  int64_t top_count = 0;
  /// Shannon entropy of the value distribution, in bits.
  double entropy_bits = 0.0;
};

/// Relation-level profile.
struct RelationStats {
  int64_t rows = 0;
  std::vector<ColumnStats> columns;

  /// Indices of constant / unique columns, ascending.
  std::vector<int> constant_columns() const;
  std::vector<int> unique_columns() const;
};

/// Profiles every column of `relation`. O(|r|·|R|).
RelationStats ComputeStats(const Relation& relation);

/// Renders a fixed-width table of the profile for terminal display.
std::string FormatStats(const RelationStats& stats);

}  // namespace tane

#endif  // TANE_RELATION_STATS_H_
