#include "relation/relation.h"

namespace tane {

StatusOr<Relation> Relation::Create(Schema schema, std::vector<Column> columns,
                                    int64_t num_rows) {
  if (static_cast<int>(columns.size()) != schema.num_columns()) {
    return Status::InvalidArgument(
        "column count does not match schema: " +
        std::to_string(columns.size()) + " vs " +
        std::to_string(schema.num_columns()));
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    const Column& col = columns[c];
    if (static_cast<int64_t>(col.codes.size()) != num_rows) {
      return Status::InvalidArgument("column " + schema.name(int(c)) +
                                     " has wrong row count");
    }
    const int32_t card = static_cast<int32_t>(col.dictionary.size());
    for (int32_t code : col.codes) {
      if (code < 0 || code >= card) {
        return Status::InvalidArgument("column " + schema.name(int(c)) +
                                       " contains an out-of-range code");
      }
    }
  }
  return Relation(std::move(schema), std::move(columns), num_rows);
}

int64_t Relation::EstimatedBytes() const {
  int64_t total = 0;
  for (const Column& col : columns_) {
    total += static_cast<int64_t>(col.codes.size()) * sizeof(int32_t);
    for (const std::string& s : col.dictionary) {
      total += static_cast<int64_t>(s.capacity()) + sizeof(std::string);
    }
  }
  return total;
}

}  // namespace tane
