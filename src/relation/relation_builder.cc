#include "relation/relation_builder.h"

#include <utility>

namespace tane {

RelationBuilder::RelationBuilder(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_columns());
  dictionaries_.resize(schema_.num_columns());
}

int32_t RelationBuilder::Encode(int column, std::string_view value) {
  auto& dict = dictionaries_[column];
  auto it = dict.find(std::string(value));
  if (it != dict.end()) return it->second;
  int32_t code = static_cast<int32_t>(columns_[column].dictionary.size());
  columns_[column].dictionary.emplace_back(value);
  dict.emplace(std::string(value), code);
  return code;
}

Status RelationBuilder::AddRow(const std::vector<std::string>& fields) {
  std::vector<std::string_view> views(fields.begin(), fields.end());
  return AddRow(views);
}

Status RelationBuilder::AddRow(const std::vector<std::string_view>& fields) {
  if (static_cast<int>(fields.size()) != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(fields.size()) + " fields, expected " +
        std::to_string(schema_.num_columns()));
  }
  for (int c = 0; c < schema_.num_columns(); ++c) {
    columns_[c].codes.push_back(Encode(c, fields[c]));
  }
  ++num_rows_;
  return Status::OK();
}

Status RelationBuilder::AddEncodedRow(const std::vector<int32_t>& codes) {
  if (static_cast<int>(codes.size()) != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(codes.size()) + " codes, expected " +
        std::to_string(schema_.num_columns()));
  }
  for (int32_t code : codes) {
    if (code < 0) return Status::InvalidArgument("negative code");
  }
  for (int c = 0; c < schema_.num_columns(); ++c) {
    Column& col = columns_[c];
    // Extend the dictionary densely up to the new code.
    while (static_cast<int32_t>(col.dictionary.size()) <= codes[c]) {
      col.dictionary.push_back(
          "v" + std::to_string(col.dictionary.size()));
    }
    col.codes.push_back(codes[c]);
  }
  ++num_rows_;
  return Status::OK();
}

StatusOr<Relation> RelationBuilder::Build() && {
  return Relation::Create(std::move(schema_), std::move(columns_), num_rows_);
}

}  // namespace tane
