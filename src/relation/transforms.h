#ifndef TANE_RELATION_TRANSFORMS_H_
#define TANE_RELATION_TRANSFORMS_H_

#include <cstdint>
#include <vector>

#include "relation/relation.h"
#include "util/random.h"
#include "util/status.h"

namespace tane {

/// Builds the paper's "×n" scaled dataset: `copies` concatenated copies of
/// `relation`, with every value in copy k suffixed by a copy-unique string
/// ("#k"). Rows from different copies therefore never agree on any
/// attribute, so the set of functional dependencies (and each dependency's
/// g3 error) is exactly that of the original relation while the row count
/// grows by the factor `copies`.
StatusOr<Relation> ConcatenateCopies(const Relation& relation, int copies);

/// Restricts `relation` to the given column indices, in the given order.
StatusOr<Relation> ProjectColumns(const Relation& relation,
                                  const std::vector<int>& columns);

/// Keeps the first `n` rows (or all rows if the relation is shorter).
StatusOr<Relation> HeadRows(const Relation& relation, int64_t n);

/// Uniform row sample without replacement of size min(n, num_rows), in the
/// original row order. Deterministic given `rng`.
StatusOr<Relation> SampleRows(const Relation& relation, int64_t n, Rng& rng);

/// Re-encodes every column so that dictionary codes are assigned in first-
/// occurrence order and unused dictionary entries are dropped. The partition
/// structure is unchanged; useful after projection or sampling.
Relation CompactDictionaries(const Relation& relation);

}  // namespace tane

#endif  // TANE_RELATION_TRANSFORMS_H_
