#ifndef TANE_RELATION_SCHEMA_H_
#define TANE_RELATION_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace tane {

/// Maximum number of attributes a relation may have. Attribute sets are
/// represented as 64-bit masks (see lattice/attribute_set.h); the largest
/// schema in the paper's evaluation has 60 attributes.
inline constexpr int kMaxAttributes = 64;

/// An ordered list of uniquely named attributes (columns).
class Schema {
 public:
  Schema() = default;

  /// Builds a schema from column names. Fails if there are more than
  /// kMaxAttributes columns, duplicate names, or empty names.
  static StatusOr<Schema> Create(std::vector<std::string> column_names);

  /// Builds a schema with `n` generated names "col0".."col{n-1}".
  static StatusOr<Schema> CreateUnnamed(int n);

  int num_columns() const { return static_cast<int>(names_.size()); }
  const std::string& name(int column) const { return names_[column]; }
  const std::vector<std::string>& names() const { return names_; }

  /// Index of the column called `name`, or -1 if absent.
  int IndexOf(std::string_view name) const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.names_ == b.names_;
  }

 private:
  explicit Schema(std::vector<std::string> names) : names_(std::move(names)) {}

  std::vector<std::string> names_;
};

}  // namespace tane

#endif  // TANE_RELATION_SCHEMA_H_
