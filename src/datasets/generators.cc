#include "datasets/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "relation/relation_builder.h"
#include "util/random.h"

namespace tane {
namespace {

// Mixes several column codes into one derived code deterministically.
int32_t DeriveCode(const std::vector<int32_t>& row,
                   const std::vector<int>& sources, int64_t cardinality,
                   uint64_t salt) {
  uint64_t h = salt;
  for (int source : sources) {
    h = SplitMix64(h ^ static_cast<uint64_t>(row[source]));
  }
  return static_cast<int32_t>(h % static_cast<uint64_t>(cardinality));
}

}  // namespace

StatusOr<Relation> GenerateSynthetic(const SyntheticSpec& spec) {
  if (spec.rows < 0) return Status::InvalidArgument("negative row count");
  std::vector<std::string> names;
  for (const ColumnSpec& column : spec.base) {
    if (column.cardinality < 1) {
      return Status::InvalidArgument("column " + column.name +
                                     " has cardinality < 1");
    }
    names.push_back(column.name);
  }
  const int num_base = static_cast<int>(spec.base.size());
  for (const DerivedColumnSpec& column : spec.derived) {
    if (column.cardinality < 1) {
      return Status::InvalidArgument("column " + column.name +
                                     " has cardinality < 1");
    }
    if (column.noise < 0.0 || column.noise > 1.0) {
      return Status::InvalidArgument("column " + column.name +
                                     " has noise outside [0, 1]");
    }
    for (int source : column.sources) {
      if (source < 0 || source >= num_base) {
        return Status::OutOfRange("derived column " + column.name +
                                  " references column " +
                                  std::to_string(source));
      }
    }
    if (column.threshold_fraction < 0.0 || column.threshold_fraction > 1.0) {
      return Status::InvalidArgument("column " + column.name +
                                     " has threshold outside [0, 1]");
    }
    if (column.threshold_fraction > 0.0 && column.sources.size() != 1) {
      return Status::InvalidArgument(
          "column " + column.name +
          " uses a threshold but does not have exactly one source");
    }
    names.push_back(column.name);
  }

  if (spec.duplicate_fraction < 0.0 || spec.duplicate_fraction > 1.0) {
    return Status::InvalidArgument("duplicate_fraction outside [0, 1]");
  }

  TANE_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(names)));
  RelationBuilder builder(std::move(schema));
  Rng rng(spec.seed);

  std::vector<std::vector<int32_t>> produced;
  std::vector<int32_t> row(spec.base.size() + spec.derived.size());
  for (int64_t i = 0; i < spec.rows; ++i) {
    if (spec.duplicate_fraction > 0.0 && !produced.empty() &&
        rng.NextBernoulli(spec.duplicate_fraction)) {
      const std::vector<int32_t>& copy =
          produced[rng.NextBounded(produced.size())];
      TANE_RETURN_IF_ERROR(builder.AddEncodedRow(copy));
      continue;
    }
    for (size_t c = 0; c < spec.base.size(); ++c) {
      const ColumnSpec& column = spec.base[c];
      row[c] = static_cast<int32_t>(
          column.zipf > 0.0
              ? rng.NextZipf(column.cardinality, column.zipf)
              : rng.NextBounded(column.cardinality));
    }
    for (size_t d = 0; d < spec.derived.size(); ++d) {
      const DerivedColumnSpec& column = spec.derived[d];
      int32_t code;
      if (column.threshold_fraction > 0.0) {
        const ColumnSpec& source = spec.base[column.sources[0]];
        code = row[column.sources[0]] <
                       column.threshold_fraction *
                           static_cast<double>(source.cardinality)
                   ? 1
                   : 0;
      } else {
        code = DeriveCode(row, column.sources, column.cardinality,
                          /*salt=*/spec.seed + 0x9e37 + d);
      }
      if (column.noise > 0.0 && rng.NextBernoulli(column.noise)) {
        code = static_cast<int32_t>(rng.NextBounded(column.cardinality));
      }
      row[spec.base.size() + d] = code;
    }
    TANE_RETURN_IF_ERROR(builder.AddEncodedRow(row));
    if (spec.duplicate_fraction > 0.0) produced.push_back(row);
  }
  return std::move(builder).Build();
}

StatusOr<Relation> GenerateUniform(int64_t rows, int cols,
                                   int64_t cardinality, uint64_t seed) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.seed = seed;
  for (int c = 0; c < cols; ++c) {
    spec.base.push_back({"col" + std::to_string(c), cardinality, 0.0});
  }
  return GenerateSynthetic(spec);
}

StatusOr<Relation> GenerateDistinctTuples(
    int64_t rows, const std::vector<int64_t>& domain_sizes,
    int64_t class_cardinality, uint64_t seed,
    const std::vector<std::string>& names) {
  if (domain_sizes.empty()) {
    return Status::InvalidArgument("need at least one domain");
  }
  if (class_cardinality < 1) {
    return Status::InvalidArgument("class cardinality must be >= 1");
  }
  // The product space must be large enough to host `rows` distinct tuples.
  double log_space = 0.0;
  for (int64_t size : domain_sizes) {
    if (size < 1) return Status::InvalidArgument("domain size < 1");
    log_space += std::log2(static_cast<double>(size));
  }
  if (log_space >= 63) {
    return Status::InvalidArgument(
        "product space must fit in 63 bits for distinct-tuple sampling");
  }
  if (static_cast<double>(rows) > std::exp2(log_space)) {
    return Status::InvalidArgument("product space smaller than row count");
  }

  std::vector<std::string> column_names = names;
  if (column_names.empty()) {
    for (size_t c = 0; c < domain_sizes.size(); ++c) {
      column_names.push_back("pos" + std::to_string(c));
    }
    column_names.push_back("class");
  }
  if (column_names.size() != domain_sizes.size() + 1) {
    return Status::InvalidArgument("need one name per domain plus the class");
  }
  TANE_ASSIGN_OR_RETURN(Schema schema, Schema::Create(column_names));

  Rng rng(seed);
  // Sample distinct mixed-radix encodings of tuples, then decode. The
  // rejection loop terminates fast because the benches keep rows well below
  // the product-space size.
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(rows * 2);
  std::vector<uint64_t> encodings;
  encodings.reserve(rows);
  uint64_t space = 1;
  for (int64_t size : domain_sizes) space *= static_cast<uint64_t>(size);
  while (static_cast<int64_t>(encodings.size()) < rows) {
    const uint64_t enc = rng.NextBounded(space);
    if (chosen.insert(enc).second) encodings.push_back(enc);
  }
  std::sort(encodings.begin(), encodings.end());

  RelationBuilder builder(std::move(schema));
  std::vector<int32_t> row(domain_sizes.size() + 1);
  for (uint64_t enc : encodings) {
    uint64_t rest = enc;
    for (size_t c = 0; c < domain_sizes.size(); ++c) {
      row[c] = static_cast<int32_t>(rest % domain_sizes[c]);
      rest /= domain_sizes[c];
    }
    // Class: a deterministic, seed-salted function of the tuple.
    row[domain_sizes.size()] = static_cast<int32_t>(
        SplitMix64(enc ^ seed) % static_cast<uint64_t>(class_cardinality));
    TANE_RETURN_IF_ERROR(builder.AddEncodedRow(row));
  }
  return std::move(builder).Build();
}

}  // namespace tane
