#include "datasets/paper_datasets.h"

#include <algorithm>

#include "datasets/generators.h"
#include "util/logging.h"

namespace tane {
namespace {

// Table 1 of the paper. Negative times mean "not reported" or "infeasible".
const PaperDatasetInfo kInfos[] = {
    {PaperDataset::kLymphography, "Lymphography", 148, 19, 2730, 68.2, 24.0,
     88.0},
    {PaperDataset::kHepatitis, "Hepatitis", 155, 20, 8250, 29.6, 14.1, 663.0},
    {PaperDataset::kWisconsinBreastCancer, "Wisconsin breast cancer", 699, 11,
     46, 0.76, 0.25, 15.0},
    {PaperDataset::kChess, "Chess", 28056, 7, 1, 3.63, 2.03, 6685.0},
    {PaperDataset::kAdult, "Adult", 48842, 15, 85, 1451.0, -1.0, -1.0},
};

// Lymphography stand-in: a latent-factor model. Six skewed "symptom group"
// columns drive thirteen noisy observation columns. Fully independent
// columns at 148 rows would make nearly every 4-attribute set a key and
// inflate the minimal-FD count to ~70k; the correlation structure plus
// Zipf-skewed value distributions bring it into the regime of the real
// dataset (paper: N = 2730; this stand-in: N ≈ 2.5k at the default seed).
SyntheticSpec LymphographySpec(int64_t rows, uint64_t seed) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.seed = seed;
  for (int i = 0; i < 6; ++i) {
    spec.base.push_back(
        {"latent" + std::to_string(i), 4 + (i % 3) * 2, 1.4});
  }
  for (int i = 0; i < 13; ++i) {
    spec.derived.push_back(
        {"obs" + std::to_string(i), {i % 6}, 3 + (i % 4), 0.08});
  }
  return spec;
}

// Hepatitis stand-in: seven wide numeric-like "measurement" columns (age,
// bilirubin, albumin, ...) plus thirteen boolean indicator columns, each a
// noisy, skewed threshold discretization of one measurement — matching the
// UCI schema's cardinality profile and an FD count in the paper's regime
// (paper: N = 8250; stand-in: N ≈ 6.3k at the default seed).
SyntheticSpec HepatitisSpec(int64_t rows, uint64_t seed) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.seed = seed;
  const int64_t measurement_cards[7] = {50, 26, 40, 30, 60, 20, 10};
  for (int i = 0; i < 7; ++i) {
    spec.base.push_back(
        {"meas" + std::to_string(i), measurement_cards[i], 0.8});
  }
  for (int i = 0; i < 13; ++i) {
    DerivedColumnSpec flag;
    flag.name = "flag" + std::to_string(i);
    flag.sources = {i % 7};
    flag.cardinality = 2;
    flag.noise = 0.06;
    // Indicator flags are skewed like real symptom columns (~15-30%
    // positive), which is what lets small-lhs approximate rules cover them
    // at moderate ε.
    flag.threshold_fraction = 0.15 + 0.02 * (i % 7);
    spec.derived.push_back(flag);
  }
  return spec;
}

// Wisconsin breast cancer stand-in: a near-unique sample id, nine cytology
// scores in 1..10 (skewed toward benign-low values like the original), and
// a class determined by the scores up to a small error rate. The id column
// being almost a key and the planted class dependency give the relation the
// original's small-N structure.
SyntheticSpec WisconsinSpec(int64_t rows, uint64_t seed) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.seed = seed;
  // ~8% duplicate ids, like the original's repeated sample codes.
  spec.base.push_back({"id", std::max<int64_t>(1, (rows * 92) / 100), 0.0});
  for (int c = 0; c < 9; ++c) {
    spec.base.push_back({"score" + std::to_string(c), 10, 1.1});
  }
  spec.derived.push_back({"class", {1, 2, 3, 4}, 2, 0.03});
  return spec;
}

// Adult stand-in: census-like cardinalities, with fnlwgt near-unique and
// education-num planted as a function of education (a real FD in the UCI
// data); income depends weakly on several attributes.
SyntheticSpec AdultSpec(int64_t rows, uint64_t seed) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.seed = seed;
  spec.base.push_back({"age", 74, 0.7});
  spec.base.push_back({"workclass", 9, 1.2});
  spec.base.push_back({"fnlwgt", std::max<int64_t>(1, (rows * 60) / 100), 0.0});
  spec.base.push_back({"education", 16, 0.9});
  spec.base.push_back({"marital_status", 7, 1.0});
  spec.base.push_back({"occupation", 15, 0.6});
  spec.base.push_back({"relationship", 6, 0.8});
  spec.base.push_back({"race", 5, 1.6});
  spec.base.push_back({"sex", 2, 0.4});
  spec.base.push_back({"capital_gain", 120, 2.2});
  spec.base.push_back({"capital_loss", 99, 2.2});
  spec.base.push_back({"hours_per_week", 96, 1.4});
  spec.base.push_back({"native_country", 42, 2.0});
  spec.derived.push_back({"education_num", {3}, 16, 0.0});
  spec.derived.push_back({"income", {0, 3, 5}, 2, 0.25});
  // The UCI Adult data contains duplicate records, so nothing is a key;
  // this removes the key-derived dependencies and brings N near the
  // paper's small count.
  spec.duplicate_fraction = 0.002;
  return spec;
}

}  // namespace

const std::vector<PaperDatasetInfo>& AllPaperDatasets() {
  // Leaked singleton so the table outlives static destruction of callers.
  // tane-lint: allow(naked-new)
  static const std::vector<PaperDatasetInfo>* infos =
      new std::vector<PaperDatasetInfo>(std::begin(kInfos), std::end(kInfos));
  return *infos;
}

const PaperDatasetInfo& GetPaperDatasetInfo(PaperDataset dataset) {
  for (const PaperDatasetInfo& info : AllPaperDatasets()) {
    if (info.dataset == dataset) return info;
  }
  // Invariant: every PaperDataset enumerator has a kInfos row.
  // tane-lint: allow(tane-check)
  TANE_CHECK(false) << "unknown dataset enum";
  return kInfos[0];
}

StatusOr<Relation> MakePaperDataset(PaperDataset dataset, int64_t rows,
                                    uint64_t seed) {
  const PaperDatasetInfo& info = GetPaperDatasetInfo(dataset);
  if (rows <= 0) rows = info.rows;
  switch (dataset) {
    case PaperDataset::kLymphography:
      return GenerateSynthetic(LymphographySpec(rows, seed));
    case PaperDataset::kHepatitis:
      return GenerateSynthetic(HepatitisSpec(rows, seed));
    case PaperDataset::kWisconsinBreastCancer:
      return GenerateSynthetic(WisconsinSpec(rows, seed));
    case PaperDataset::kChess:
      // KRKPA7-style enumerated endgame positions: six 8-valued position
      // attributes sampled without replacement (so they form a key) and a
      // class with 18 outcomes determined by the position.
      return GenerateDistinctTuples(
          rows, {8, 8, 8, 8, 8, 8}, 18, seed,
          {"wk_file", "wk_rank", "wr_file", "wr_rank", "bk_file", "bk_rank",
           "depth"});
    case PaperDataset::kAdult:
      return GenerateSynthetic(AdultSpec(rows, seed));
  }
  return Status::InvalidArgument("unknown dataset");
}

StatusOr<PaperDataset> ParsePaperDatasetName(const std::string& name) {
  if (name == "lymphography") return PaperDataset::kLymphography;
  if (name == "hepatitis") return PaperDataset::kHepatitis;
  if (name == "wbc" || name == "breast-cancer") {
    return PaperDataset::kWisconsinBreastCancer;
  }
  if (name == "chess") return PaperDataset::kChess;
  if (name == "adult") return PaperDataset::kAdult;
  return Status::NotFound("unknown dataset name: " + name);
}

}  // namespace tane
