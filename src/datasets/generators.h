#ifndef TANE_DATASETS_GENERATORS_H_
#define TANE_DATASETS_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relation/relation.h"
#include "util/status.h"

namespace tane {

/// An independently drawn categorical column.
struct ColumnSpec {
  std::string name;
  /// Number of distinct values the column draws from.
  int64_t cardinality = 2;
  /// Zipf skew; 0 draws uniformly, larger values concentrate mass on few
  /// codes (realistic for categorical survey data).
  double zipf = 0.0;
};

/// A column functionally determined by `sources` up to noise: its value is
/// a deterministic hash of the source codes reduced to `cardinality`, and
/// each row's value is replaced by a uniform random one with probability
/// `noise`. With noise = 0 this plants the exact FD sources → column; with
/// small noise it plants an approximate dependency whose g3 error is close
/// to the noise rate.
struct DerivedColumnSpec {
  std::string name;
  std::vector<int> sources;  // indices into the base columns
  int64_t cardinality = 2;
  double noise = 0.0;
  /// When positive (and there is exactly one source), the column is a
  /// *threshold discretization* instead of a hash: value 1 iff the source
  /// code is below `threshold_fraction` of its cardinality, else 0. This
  /// produces skewed indicator flags (e.g. ~25% positives at 0.25), the
  /// shape of real medical yes/no attributes.
  double threshold_fraction = 0.0;
};

/// A full synthetic-relation recipe: base columns drawn independently,
/// derived columns appended after them (derived columns may only reference
/// base columns).
struct SyntheticSpec {
  int64_t rows = 0;
  std::vector<ColumnSpec> base;
  std::vector<DerivedColumnSpec> derived;
  uint64_t seed = 1;
  /// Fraction of rows that are verbatim copies of an earlier row (like the
  /// duplicate records in the UCI Adult data). Any positive value destroys
  /// all keys of the relation — duplicates agree on every attribute — while
  /// leaving dependency validity untouched.
  double duplicate_fraction = 0.0;
};

/// Materializes `spec` into a relation. Deterministic in `spec.seed`.
StatusOr<Relation> GenerateSynthetic(const SyntheticSpec& spec);

/// Uniform random categorical relation: `cols` columns of equal
/// `cardinality`, rows drawn independently.
StatusOr<Relation> GenerateUniform(int64_t rows, int cols,
                                   int64_t cardinality, uint64_t seed);

/// A relation whose rows are *distinct* tuples over per-column domains
/// (sampled without replacement from the product space), plus one trailing
/// "class" column that is a deterministic function of the tuple. This
/// mirrors enumerated game databases such as the UCI chess endgame set: the
/// position attributes form a key and determine the class exactly.
StatusOr<Relation> GenerateDistinctTuples(
    int64_t rows, const std::vector<int64_t>& domain_sizes,
    int64_t class_cardinality, uint64_t seed,
    const std::vector<std::string>& names = {});

}  // namespace tane

#endif  // TANE_DATASETS_GENERATORS_H_
