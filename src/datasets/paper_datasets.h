#ifndef TANE_DATASETS_PAPER_DATASETS_H_
#define TANE_DATASETS_PAPER_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relation/relation.h"
#include "util/status.h"

namespace tane {

/// The UCI datasets of the paper's evaluation (§7). The originals are not
/// redistributable inside this repository, so each is replaced by a
/// deterministic synthetic stand-in with the same row count, column count,
/// and a comparable column-cardinality / correlation profile (see
/// DESIGN.md, "Substitutions"). The FD *count* therefore differs from the
/// UCI numbers, but the dataset shape — FD-dense small relations versus
/// key-like wide columns versus enumerated game positions — is preserved.
enum class PaperDataset {
  kLymphography,
  kHepatitis,
  kWisconsinBreastCancer,
  kChess,
  kAdult,
};

/// Static facts about a paper dataset: its dimensions and the numbers the
/// paper reports for it (used by the bench harness to print the
/// paper-vs-measured comparison).
struct PaperDatasetInfo {
  PaperDataset dataset;
  const char* name;
  int64_t rows;
  int columns;
  /// The paper's N (minimal FDs found), Table 1. -1 when not reported.
  int64_t paper_num_fds;
  /// Paper wall times in seconds, Table 1. <0 when not reported/infeasible.
  double paper_tane_seconds;
  double paper_tane_mem_seconds;
  double paper_fdep_seconds;
};

/// Facts for every PaperDataset, in enum order.
const std::vector<PaperDatasetInfo>& AllPaperDatasets();

/// Info for one dataset.
const PaperDatasetInfo& GetPaperDatasetInfo(PaperDataset dataset);

/// Materializes the synthetic stand-in, optionally scaled to a different
/// row count (rows <= 0 keeps the paper's row count). Deterministic in
/// `seed`.
StatusOr<Relation> MakePaperDataset(PaperDataset dataset, int64_t rows = 0,
                                    uint64_t seed = 42);

/// Parses the dataset name used on bench command lines ("lymphography",
/// "hepatitis", "wbc", "chess", "adult").
StatusOr<PaperDataset> ParsePaperDatasetName(const std::string& name);

}  // namespace tane

#endif  // TANE_DATASETS_PAPER_DATASETS_H_
