#include "analysis/normalization.h"

#include <algorithm>

#include "analysis/closure.h"

namespace tane {
namespace {

// Projects `fds` onto `attributes`: keeps X → A with X ∪ {A} ⊆ attributes.
// (A correct projection computes closures of subsets; for the simple
// decomposition heuristic here, restriction of the discovered minimal FDs
// is the conventional approximation and is what profiling tools report.)
std::vector<FunctionalDependency> RestrictFds(
    const std::vector<FunctionalDependency>& fds, AttributeSet attributes) {
  std::vector<FunctionalDependency> restricted;
  for (const FunctionalDependency& fd : fds) {
    if (attributes.ContainsAll(fd.lhs) && attributes.Contains(fd.rhs)) {
      restricted.push_back(fd);
    }
  }
  return restricted;
}

// Finds one BCNF-violating fd within `attributes`, if any.
const FunctionalDependency* FindViolationIn(
    AttributeSet attributes, const std::vector<FunctionalDependency>& fds) {
  for (const FunctionalDependency& fd : fds) {
    if (fd.lhs.Contains(fd.rhs)) continue;
    if (!Closure(fd.lhs, fds).ContainsAll(attributes)) {
      return &fd;
    }
  }
  return nullptr;
}

}  // namespace

std::vector<BcnfViolation> FindBcnfViolations(
    int num_attributes, const std::vector<FunctionalDependency>& fds) {
  const AttributeSet full = AttributeSet::FullSet(num_attributes);
  std::vector<BcnfViolation> violations;
  for (const FunctionalDependency& fd : fds) {
    if (fd.lhs.Contains(fd.rhs)) continue;
    const AttributeSet closure = Closure(fd.lhs, fds);
    if (closure != full) {
      violations.push_back({fd, closure});
    }
  }
  return violations;
}

std::vector<DecomposedRelation> DecomposeToBcnf(
    int num_attributes, const std::vector<FunctionalDependency>& fds,
    int max_fragments) {
  // Classic recursive split, driven with an explicit worklist: a fragment
  // with a violating X → … is replaced by (X⁺ ∩ fragment) and
  // (fragment − X⁺) ∪ X, both of which are re-examined.
  std::vector<DecomposedRelation> done;
  std::vector<DecomposedRelation> worklist = {
      {AttributeSet::FullSet(num_attributes), AttributeSet()}};

  while (!worklist.empty()) {
    DecomposedRelation fragment = worklist.back();
    worklist.pop_back();
    const std::vector<FunctionalDependency> local =
        RestrictFds(fds, fragment.attributes);
    const FunctionalDependency* violation =
        static_cast<int>(done.size() + worklist.size()) + 2 <= max_fragments
            ? FindViolationIn(fragment.attributes, local)
            : nullptr;
    if (violation == nullptr) {
      done.push_back(fragment);
      continue;
    }
    const AttributeSet closure =
        Closure(violation->lhs, local).Intersect(fragment.attributes);
    worklist.push_back({closure, violation->lhs});
    worklist.push_back(
        {fragment.attributes.Difference(closure).Union(violation->lhs),
         fragment.anchor_lhs});
  }
  return done;
}

std::string DescribeDecomposition(
    const Schema& schema, const std::vector<DecomposedRelation>& fragments) {
  std::string out;
  for (size_t i = 0; i < fragments.size(); ++i) {
    out += "R" + std::to_string(i) + " = " +
           fragments[i].attributes.ToString(schema);
    if (!fragments[i].anchor_lhs.empty()) {
      out += "  (key: " + fragments[i].anchor_lhs.ToString(schema) + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace tane
